package flow

import (
	"net/netip"
	"sync"
	"testing"

	"github.com/amlight/intddos/internal/netsim"
)

func shardKey(i int) Key {
	return Key{
		Src:     netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}),
		Dst:     netip.AddrFrom4([4]byte{192, 168, 0, 1}),
		SrcPort: uint16(1024 + i),
		DstPort: 80,
		Proto:   netsim.TCP,
	}
}

func TestKeyHashStableAndSpread(t *testing.T) {
	k := shardKey(7)
	if k.Hash() != k.Hash() {
		t.Fatal("hash not deterministic")
	}
	if k.Shard(1) != 0 {
		t.Fatal("single-shard mapping must be 0")
	}
	// Distinct tuples should spread: over 4096 keys and 8 shards, no
	// shard should be empty and none should hold the vast majority.
	const keys, shards = 4096, 8
	counts := make([]int, shards)
	for i := 0; i < keys; i++ {
		counts[shardKey(i).Shard(shards)]++
	}
	for s, n := range counts {
		if n == 0 {
			t.Errorf("shard %d empty", s)
		}
		if n > keys/2 {
			t.Errorf("shard %d holds %d of %d keys", s, n, keys)
		}
	}
}

// TestShardedTableMatchesTable drives the same observation stream
// through a plain Table and a ShardedTable and compares the visible
// per-flow state.
func TestShardedTableMatchesTable(t *testing.T) {
	for _, shards := range []int{1, 4} {
		plain := NewTable()
		sharded := NewShardedTable(shards)
		for i := 0; i < 500; i++ {
			pi := PacketInfo{
				Key:    shardKey(i % 17),
				Length: 100 + i%7,
				At:     netsim.Time(i) * netsim.Millisecond,
			}
			plain.Observe(pi)
			sharded.Observe(pi)
		}
		if plain.Len() != sharded.Len() {
			t.Fatalf("shards=%d: len %d != %d", shards, sharded.Len(), plain.Len())
		}
		if plain.Created != sharded.Created() {
			t.Fatalf("shards=%d: created %d != %d", shards, sharded.Created(), plain.Created)
		}
		plain.Range(func(want *State) bool {
			found := sharded.Get(want.Key, func(got *State) {
				if got.Updates != want.Updates || got.Size.Sum() != want.Size.Sum() ||
					got.LastAt != want.LastAt || got.IAT.Sum() != want.IAT.Sum() {
					t.Errorf("shards=%d: state mismatch for %s", shards, want.Key)
				}
			})
			if !found {
				t.Errorf("shards=%d: flow %s missing", shards, want.Key)
			}
			return true
		})
	}
}

func TestShardedTableSweep(t *testing.T) {
	st := NewShardedTable(4)
	st.SetIdleTimeout(10 * netsim.Millisecond)
	for i := 0; i < 32; i++ {
		st.Observe(PacketInfo{Key: shardKey(i), Length: 64, At: netsim.Time(i % 2)})
	}
	if got := st.Sweep(netsim.Second); got != 32 {
		t.Fatalf("swept %d, want 32", got)
	}
	if st.Len() != 0 {
		t.Fatalf("len after sweep = %d", st.Len())
	}
}

// TestShardedTableConcurrent exercises cross-shard writers under the
// race detector, including the ObserveFunc feature-extraction path.
func TestShardedTableConcurrent(t *testing.T) {
	st := NewShardedTable(8)
	set := INTFeatures()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]float64, 0, len(set))
			for i := 0; i < 200; i++ {
				pi := PacketInfo{Key: shardKey(w*200 + i%50), Length: 64, At: netsim.Time(i)}
				st.ObserveFunc(pi, func(s *State) { buf = s.Features(buf[:0], set) })
			}
		}(w)
	}
	wg.Wait()
	if st.Len() == 0 {
		t.Fatal("no flows recorded")
	}
}
