package flow

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestStatsBasics(t *testing.T) {
	var s Stats
	if s.Mean() != 0 || s.Std() != 0 || s.Sum() != 0 || s.Last() != 0 || s.Count() != 0 {
		t.Error("zero-value Stats not all-zero")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		s.Add(x)
	}
	if s.Count() != 8 {
		t.Errorf("Count = %d", s.Count())
	}
	if s.Last() != 9 {
		t.Errorf("Last = %v", s.Last())
	}
	if s.Sum() != 40 {
		t.Errorf("Sum = %v", s.Sum())
	}
	if s.Mean() != 5 {
		t.Errorf("Mean = %v", s.Mean())
	}
	if got := s.Std(); math.Abs(got-2) > 1e-12 {
		t.Errorf("Std = %v, want 2 (classic example)", got)
	}
}

func TestStatsSingleObservation(t *testing.T) {
	var s Stats
	s.Add(42)
	if s.Mean() != 42 || s.Std() != 0 || s.Var() != 0 {
		t.Errorf("single obs: mean=%v std=%v", s.Mean(), s.Std())
	}
}

func TestStatsMatchesTwoPass(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]float64, 1000)
	var s Stats
	for i := range xs {
		xs[i] = rng.NormFloat64()*37 + 100
		s.Add(xs[i])
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	mean := sum / float64(len(xs))
	var m2 float64
	for _, x := range xs {
		m2 += (x - mean) * (x - mean)
	}
	std := math.Sqrt(m2 / float64(len(xs)))
	if math.Abs(s.Mean()-mean) > 1e-9 {
		t.Errorf("mean %v vs two-pass %v", s.Mean(), mean)
	}
	if math.Abs(s.Std()-std) > 1e-9 {
		t.Errorf("std %v vs two-pass %v", s.Std(), std)
	}
}

func TestStatsPropertyNonNegativeVariance(t *testing.T) {
	f := func(xs []float64) bool {
		var s Stats
		for _, x := range xs {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				continue
			}
			// keep magnitudes sane to avoid float overflow artifacts
			s.Add(math.Mod(x, 1e9))
		}
		return s.Var() >= 0 || math.IsNaN(s.Var()) == false
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestStatsPropertyMeanWithinRange(t *testing.T) {
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		var s Stats
		lo, hi := math.Inf(1), math.Inf(-1)
		for _, v := range raw {
			x := float64(v)
			s.Add(x)
			lo = math.Min(lo, x)
			hi = math.Max(hi, x)
		}
		return s.Mean() >= lo-1e-9 && s.Mean() <= hi+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
