package flow

// FeatureID names one extractable feature. The *Cum/*Avg/*Std
// variants mirror the paper's Table V subscripts: cumulative,
// average, and standard deviation of the per-packet series. The
// cumulative inter-arrival time is the flow duration (Table II note).
type FeatureID int

// Feature identifiers.
const (
	FProto FeatureID = iota
	FPktSize
	FPktSizeCum
	FPktSizeAvg
	FPktSizeStd
	FIAT
	FIATCum
	FIATAvg
	FIATStd
	FQueue
	FQueueAvg
	FQueueStd
	FCount
	FPPS
	FBPS
	FHopLat
	FHopLatAvg
	FHopLatStd
	FSrcPort
	FDstPort
	numFeatureIDs
)

// featureNames indexes display names by FeatureID.
var featureNames = [numFeatureIDs]string{
	"Protocol",
	"Packet Size", "Packet Size_cum", "Packet Size_avg", "Packet Size_std",
	"Inter Arrival Time", "Inter Arrival Time_cum", "Inter Arrival Time_avg", "Inter Arrival Time_std",
	"Queue Occupancy", "Queue Occupancy_avg", "Queue Occupancy_std",
	"Packet Count", "Packets/s", "Bytes/s",
	"Hop Latency", "Hop Latency_avg", "Hop Latency_std",
	"Source Port", "Destination Port",
}

// String returns the feature's display name.
func (f FeatureID) String() string {
	if f < 0 || f >= numFeatureIDs {
		return "unknown"
	}
	return featureNames[f]
}

// FeatureSet is an ordered selection of features forming the model's
// input vector.
type FeatureSet []FeatureID

// Names returns display names in vector order.
func (fs FeatureSet) Names() []string {
	out := make([]string, len(fs))
	for i, f := range fs {
		out[i] = f.String()
	}
	return out
}

// Index returns the vector position of f, or -1.
func (fs FeatureSet) Index(f FeatureID) int {
	for i, g := range fs {
		if g == f {
			return i
		}
	}
	return -1
}

// INTFeatures returns the 15 packet- and flow-level features the
// paper's testbed models consume (Table II INT column minus hop
// latency, which §IV-B2 excludes for scale-consistency reasons).
func INTFeatures() FeatureSet {
	return FeatureSet{
		FProto,
		FPktSize, FPktSizeCum, FPktSizeAvg, FPktSizeStd,
		FIAT, FIATCum, FIATAvg, FIATStd,
		FQueue, FQueueAvg, FQueueStd,
		FCount, FPPS, FBPS,
	}
}

// SFlowFeatures returns the features derivable from sampled sFlow
// data: the INT set minus the telemetry-only queue occupancy
// variants.
func SFlowFeatures() FeatureSet {
	return FeatureSet{
		FProto,
		FPktSize, FPktSizeCum, FPktSizeAvg, FPktSizeStd,
		FIAT, FIATCum, FIATAvg, FIATStd,
		FCount, FPPS, FBPS,
	}
}

// INTFeaturesWithHopLatency returns the full Table II INT column
// including the hop-latency variants, for the ablation that restores
// the feature the paper dropped.
func INTFeaturesWithHopLatency() FeatureSet {
	return append(INTFeatures(), FHopLat, FHopLatAvg, FHopLatStd)
}

// AvailabilityRow is one row of the paper's Table II: a feature
// family and whether each monitoring source provides it.
type AvailabilityRow struct {
	Feature string
	INT     bool
	SFlow   bool
}

// Availability reproduces Table II: the feature families and their
// availability under INT versus sFlow.
func Availability() []AvailabilityRow {
	return []AvailabilityRow{
		{"Source & Destination IP", true, true},
		{"Source & Destination Port", true, true},
		{"Protocol", true, true},
		{"Queue Occupancy*", true, false},
		{"Hop Latency*", true, false},
		{"Packet Size*", true, true},
		{"Inter Arrival Time*", true, true},
		{"Packets & Bytes per Second", true, true},
	}
}
