package flow

import (
	"math"
	"net/netip"
	"sync"
	"testing"

	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/sflow"
	"github.com/amlight/intddos/internal/telemetry"
)

var (
	clientA = netip.MustParseAddr("172.16.1.1")
	server  = netip.MustParseAddr("10.10.1.100")
)

func tcpKey(sport uint16) Key {
	return Key{Src: clientA, Dst: server, SrcPort: sport, DstPort: 80, Proto: netsim.TCP}
}

// intObs builds an INT observation n·gap nanoseconds into a flow.
func intObs(k Key, at netsim.Time, ingress netsim.Time, length int, depth uint32) PacketInfo {
	return PacketInfo{
		Key: k, Length: length, At: at, HasTelemetry: true,
		IngressTS: netsim.Wrap32(ingress), EgressTS: netsim.Wrap32(ingress + 500),
		QueueDepth: depth, HopLatencyNs: 500,
	}
}

func TestTableCreatesAndUpdates(t *testing.T) {
	tbl := NewTable()
	var newCount, updCount int
	tbl.OnNew = func(*State) { newCount++ }
	tbl.OnUpdate = func(*State) { updCount++ }

	k := tcpKey(1000)
	st, isNew := tbl.Observe(intObs(k, 100, 100, 500, 2))
	if !isNew || st == nil {
		t.Fatal("first observation should create")
	}
	st2, isNew2 := tbl.Observe(intObs(k, 200, 200, 700, 4))
	if isNew2 {
		t.Fatal("second observation created a new record")
	}
	if st2 != st {
		t.Fatal("records differ for same key")
	}
	if newCount != 1 || updCount != 1 {
		t.Errorf("callbacks new=%d upd=%d, want 1/1", newCount, updCount)
	}
	if tbl.Len() != 1 || tbl.Created != 1 {
		t.Errorf("len=%d created=%d", tbl.Len(), tbl.Created)
	}
}

func TestStatePacketLevelReplacedFlowLevelAccumulated(t *testing.T) {
	tbl := NewTable()
	k := tcpKey(1001)
	tbl.Observe(intObs(k, 100, 1000, 500, 2))
	st, _ := tbl.Observe(intObs(k, 200, 3000, 700, 6))
	// Packet-level: last values replaced.
	if st.Feature(FPktSize) != 700 {
		t.Errorf("FPktSize = %v, want 700 (replaced)", st.Feature(FPktSize))
	}
	if st.Feature(FQueue) != 6 {
		t.Errorf("FQueue = %v, want 6", st.Feature(FQueue))
	}
	// Flow-level: accumulated.
	if st.Feature(FPktSizeCum) != 1200 {
		t.Errorf("FPktSizeCum = %v, want 1200", st.Feature(FPktSizeCum))
	}
	if st.Feature(FPktSizeAvg) != 600 {
		t.Errorf("FPktSizeAvg = %v, want 600", st.Feature(FPktSizeAvg))
	}
	if st.Feature(FCount) != 2 {
		t.Errorf("FCount = %v, want 2", st.Feature(FCount))
	}
}

func TestStateIATFromHardwareStamps(t *testing.T) {
	tbl := NewTable()
	k := tcpKey(1002)
	tbl.Observe(intObs(k, 0, 1000, 100, 0))
	tbl.Observe(intObs(k, 0, 4000, 100, 0))
	st, _ := tbl.Observe(intObs(k, 0, 9000, 100, 0))
	if st.IAT.Count() != 2 {
		t.Fatalf("IAT observations = %d, want 2", st.IAT.Count())
	}
	if st.Feature(FIAT) != 5000 {
		t.Errorf("FIAT = %v, want 5000", st.Feature(FIAT))
	}
	if st.Feature(FIATCum) != 8000 {
		t.Errorf("FIATCum (duration) = %v, want 8000", st.Feature(FIATCum))
	}
	if st.Feature(FIATAvg) != 4000 {
		t.Errorf("FIATAvg = %v, want 4000", st.Feature(FIATAvg))
	}
}

func TestStateIATWrapAware(t *testing.T) {
	tbl := NewTable()
	k := tcpKey(1003)
	// Consecutive ingress times straddling a 32-bit wrap.
	t0 := netsim.WrapPeriod - 100
	t1 := netsim.WrapPeriod + 400
	tbl.Observe(intObs(k, 0, t0, 100, 0))
	st, _ := tbl.Observe(intObs(k, 0, t1, 100, 0))
	if got := st.Feature(FIAT); got != 500 {
		t.Errorf("wrap-aware IAT = %v, want 500", got)
	}

	// Naive mode gets it catastrophically wrong.
	NaiveIAT = true
	defer func() { NaiveIAT = false }()
	tbl2 := NewTable()
	tbl2.Observe(intObs(k, 0, t0, 100, 0))
	st2, _ := tbl2.Observe(intObs(k, 0, t1, 100, 0))
	if got := st2.Feature(FIAT); got == 500 {
		t.Error("naive IAT accidentally correct across wrap — ablation broken")
	}
}

func TestStateSFlowFallbackIAT(t *testing.T) {
	tbl := NewTable()
	k := tcpKey(1004)
	mk := func(at netsim.Time) PacketInfo {
		return PacketInfo{Key: k, Length: 100, At: at} // no telemetry
	}
	tbl.Observe(mk(1000))
	tbl.Observe(mk(2500))
	st, _ := tbl.Observe(mk(6000))
	if st.IAT.Count() != 2 {
		t.Fatalf("IAT count = %d, want 2", st.IAT.Count())
	}
	if st.Feature(FIAT) != 3500 {
		t.Errorf("FIAT = %v, want 3500 (collector clock)", st.Feature(FIAT))
	}
	if st.Feature(FIATCum) != 5000 {
		t.Errorf("duration = %v, want 5000", st.Feature(FIATCum))
	}
	// No telemetry → queue features stay zero.
	if st.Feature(FQueue) != 0 || st.Feature(FQueueAvg) != 0 {
		t.Error("queue features nonzero without telemetry")
	}
}

func TestStateRates(t *testing.T) {
	tbl := NewTable()
	k := tcpKey(1005)
	tbl.Observe(intObs(k, 0, 0, 1000, 0))
	st, _ := tbl.Observe(intObs(k, 0, netsim.Second, 1000, 0))
	// 2 packets over 1 s → 2 pps; 2000 bytes over 1 s → 2000 B/s.
	if got := st.Feature(FPPS); math.Abs(got-2) > 1e-9 {
		t.Errorf("PPS = %v, want 2", got)
	}
	if got := st.Feature(FBPS); math.Abs(got-2000) > 1e-9 {
		t.Errorf("BPS = %v, want 2000", got)
	}
}

func TestStateSinglePacketFlowRatesZero(t *testing.T) {
	tbl := NewTable()
	st, _ := tbl.Observe(intObs(tcpKey(1006), 0, 0, 40, 0))
	if st.Feature(FPPS) != 0 || st.Feature(FBPS) != 0 {
		t.Error("single-packet flow should have zero rates")
	}
	if st.Feature(FIATStd) != 0 {
		t.Error("single-packet flow should have zero IAT std")
	}
}

func TestFeatureVectorOrder(t *testing.T) {
	tbl := NewTable()
	st, _ := tbl.Observe(intObs(tcpKey(1007), 0, 0, 333, 7))
	set := INTFeatures()
	vec := st.Features(nil, set)
	if len(vec) != 15 {
		t.Fatalf("INT vector length = %d, want 15", len(vec))
	}
	if vec[set.Index(FPktSize)] != 333 {
		t.Error("FPktSize misplaced in vector")
	}
	if vec[set.Index(FQueue)] != 7 {
		t.Error("FQueue misplaced in vector")
	}
	if vec[set.Index(FProto)] != float64(netsim.TCP) {
		t.Error("FProto misplaced in vector")
	}
}

func TestSFlowFeatureSetExcludesTelemetry(t *testing.T) {
	set := SFlowFeatures()
	if len(set) != 12 {
		t.Fatalf("sFlow set length = %d, want 12", len(set))
	}
	for _, f := range []FeatureID{FQueue, FQueueAvg, FQueueStd, FHopLat} {
		if set.Index(f) != -1 {
			t.Errorf("sFlow set contains telemetry feature %v", f)
		}
	}
}

func TestAvailabilityTable(t *testing.T) {
	rows := Availability()
	if len(rows) != 8 {
		t.Fatalf("Table II rows = %d, want 8", len(rows))
	}
	sflowMissing := 0
	for _, r := range rows {
		if !r.INT {
			t.Errorf("INT missing %s — INT provides every family", r.Feature)
		}
		if !r.SFlow {
			sflowMissing++
		}
	}
	if sflowMissing != 2 {
		t.Errorf("sFlow missing %d families, want 2 (queue occupancy, hop latency)", sflowMissing)
	}
}

func TestTableSweepEvictsIdleFlows(t *testing.T) {
	tbl := NewTable()
	tbl.IdleTimeout = 100
	tbl.Observe(intObs(tcpKey(1), 50, 0, 100, 0))
	tbl.Observe(intObs(tcpKey(2), 180, 0, 100, 0))
	n := tbl.Sweep(200)
	if n != 1 {
		t.Fatalf("evicted %d, want 1", n)
	}
	if tbl.Get(tcpKey(1)) != nil {
		t.Error("idle flow survived sweep")
	}
	if tbl.Get(tcpKey(2)) == nil {
		t.Error("active flow evicted")
	}
	if tbl.Evicted != 1 {
		t.Errorf("Evicted stat = %d", tbl.Evicted)
	}
}

func TestTableSweepDisabledByDefault(t *testing.T) {
	tbl := NewTable()
	tbl.Observe(intObs(tcpKey(1), 0, 0, 100, 0))
	if n := tbl.Sweep(netsim.Time(1) << 60); n != 0 {
		t.Errorf("sweep with no timeout evicted %d", n)
	}
}

func TestTableRange(t *testing.T) {
	tbl := NewTable()
	for i := uint16(0); i < 10; i++ {
		tbl.Observe(intObs(tcpKey(i), 0, 0, 100, 0))
	}
	seen := 0
	tbl.Range(func(st *State) bool { seen++; return true })
	if seen != 10 {
		t.Errorf("Range visited %d, want 10", seen)
	}
	seen = 0
	tbl.Range(func(st *State) bool { seen++; return seen < 3 })
	if seen != 3 {
		t.Errorf("early-stop Range visited %d, want 3", seen)
	}
}

func TestTruthAccounting(t *testing.T) {
	tbl := NewTable()
	k := tcpKey(9)
	pi := intObs(k, 0, 0, 100, 0)
	pi.Label = true
	pi.AttackType = "synflood"
	st, _ := tbl.Observe(pi)
	if st.AttackObs != 1 || !st.LastTruth || st.AttackType != "synflood" {
		t.Errorf("truth = %+v", st)
	}
	pi2 := intObs(k, 1, 1000, 100, 0)
	tbl.Observe(pi2)
	if st.AttackObs != 1 || st.LastTruth {
		t.Error("benign follow-up mis-accounted")
	}
}

func TestFromINTNormalization(t *testing.T) {
	r := &telemetry.Report{
		Src: clientA, Dst: server, SrcPort: 5, DstPort: 80, Proto: netsim.TCP,
		Flags: netsim.FlagSYN, Length: 123,
		Hops: []telemetry.HopMetadata{
			{QueueDepth: 3, IngressTS: 100, EgressTS: 400},
			{QueueDepth: 9, IngressTS: 600, EgressTS: 1100},
		},
		Truth: telemetry.Truth{Label: true, AttackType: "synscan"},
	}
	pi := FromINT(r, 7777)
	if !pi.HasTelemetry {
		t.Fatal("INT observation lost telemetry flag")
	}
	if pi.QueueDepth != 9 || pi.IngressTS != 600 {
		t.Errorf("sink-hop selection wrong: %+v", pi)
	}
	if pi.HopLatencyNs != 300+500 {
		t.Errorf("hop latency = %d, want 800", pi.HopLatencyNs)
	}
	if pi.At != 7777 || pi.Length != 123 || !pi.Label || pi.AttackType != "synscan" {
		t.Errorf("normalization lost fields: %+v", pi)
	}
}

func TestFromSFlowNormalization(t *testing.T) {
	s := &sflow.FlowSample{
		Src: clientA, Dst: server, SrcPort: 5, DstPort: 80, Proto: netsim.UDP,
		Length: 88, Truth: sflow.Truth{Label: true, AttackType: "udpscan"},
	}
	pi := FromSFlow(s, 1234)
	if pi.HasTelemetry {
		t.Error("sFlow observation claims telemetry")
	}
	if pi.Key.Proto != netsim.UDP || pi.Length != 88 || pi.At != 1234 {
		t.Errorf("normalization wrong: %+v", pi)
	}
	if !pi.Label || pi.AttackType != "udpscan" {
		t.Errorf("truth lost: %+v", pi)
	}
}

func TestFeatureNames(t *testing.T) {
	if FIATCum.String() != "Inter Arrival Time_cum" {
		t.Errorf("FIATCum name = %q", FIATCum.String())
	}
	if FeatureID(-1).String() != "unknown" || FeatureID(999).String() != "unknown" {
		t.Error("out-of-range feature names")
	}
	names := INTFeatures().Names()
	if len(names) != 15 || names[0] != "Protocol" {
		t.Errorf("names = %v", names)
	}
}

func TestSweepFiresOnEvict(t *testing.T) {
	tbl := NewTable()
	tbl.IdleTimeout = 100
	evicted := map[Key]int{}
	tbl.OnEvict = func(k Key) { evicted[k]++ }

	idle, live := tcpKey(2000), tcpKey(2001)
	tbl.Observe(intObs(idle, 100, 100, 500, 2))
	tbl.Observe(intObs(live, 900, 900, 500, 2))

	if n := tbl.Sweep(1000); n != 1 {
		t.Fatalf("swept %d, want 1", n)
	}
	if evicted[idle] != 1 || evicted[live] != 0 {
		t.Errorf("OnEvict fired %v, want exactly once for the idle flow", evicted)
	}
	if tbl.Get(idle) != nil || tbl.Get(live) == nil {
		t.Error("wrong record evicted")
	}
	// The hook observes the record already gone from the table.
	tbl.OnEvict = func(k Key) {
		if tbl.Get(k) != nil {
			t.Errorf("OnEvict saw %s still in the table", k)
		}
	}
	if n := tbl.Sweep(5000); n != 1 {
		t.Fatalf("second sweep removed %d, want 1", n)
	}
}

// TestStateSnapshotRoundTrip proves a restored record continues
// bit-identically: after the same follow-up observations, every
// feature of the restored record equals the original's — including
// the std/IAT terms that depend on the unexported Welford and
// wrap-tracking state.
func TestStateSnapshotRoundTrip(t *testing.T) {
	k := tcpKey(3000)
	orig := NewTable()
	orig.Observe(intObs(k, 100, 1000, 500, 2))
	orig.Observe(intObs(k, 200, 3500, 700, 6))

	sn := orig.Get(k).Snapshot()
	rest := NewTable()
	rest.Insert(RestoreState(sn))
	if rest.Created != 1 || rest.Len() != 1 {
		t.Fatalf("insert accounting: created=%d len=%d", rest.Created, rest.Len())
	}

	// Continue both copies with identical observations — including one
	// whose 32-bit ingress stamp wraps, exercising lastIngress.
	follow := []PacketInfo{
		intObs(k, 300, 7000, 900, 3),
		intObs(k, 400, netsim.Time(1)<<32+500, 400, 8),
	}
	for _, pi := range follow {
		orig.Observe(pi)
		rest.Observe(pi)
	}
	set := INTFeatures()
	a := orig.Get(k).Features(nil, set)
	b := rest.Get(k).Features(nil, set)
	for i := range a {
		if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
			t.Errorf("feature %s diverged after restore: %v vs %v", set[i], a[i], b[i])
		}
	}
	if sn2 := rest.Get(k).Snapshot(); len(follow) > 0 {
		_ = sn2 // restored record remains snapshot-able
	}
}

func TestShardedTableExportRestore(t *testing.T) {
	const shards = 4
	src := NewShardedTable(shards)
	var keys []Key
	for i := 0; i < 32; i++ {
		k := tcpKey(uint16(4000 + i))
		keys = append(keys, k)
		src.Observe(intObs(k, 100, 1000, 500, 2))
		src.Observe(intObs(k, 200, 2500, 700, 4))
	}

	dst := NewShardedTable(shards)
	for i := 0; i < shards; i++ {
		if err := dst.RestoreShard(i, src.ExportShard(i)); err != nil {
			t.Fatalf("restore shard %d: %v", i, err)
		}
	}
	if dst.Len() != src.Len() {
		t.Fatalf("restored %d flows, want %d", dst.Len(), src.Len())
	}
	set := INTFeatures()
	for _, k := range keys {
		var a, b []float64
		src.Get(k, func(st *State) { a = st.Features(nil, set) })
		if !dst.Get(k, func(st *State) { b = st.Features(nil, set) }) {
			t.Fatalf("flow %s missing after restore", k)
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Errorf("%s feature %s diverged: %v vs %v", k, set[i], a[i], b[i])
			}
		}
	}

	// Wrong-shard and out-of-range restores fail loud.
	if err := dst.RestoreShard(0, src.ExportShard(1)); err == nil && src.ExportShard(1) != nil && len(src.ExportShard(1)) > 0 {
		t.Error("cross-shard restore accepted")
	}
	if err := dst.RestoreShard(shards, nil); err == nil {
		t.Error("out-of-range restore accepted")
	}
	if src.ExportShard(-1) != nil || src.ExportShard(shards) != nil {
		t.Error("out-of-range export returned data")
	}
}

func TestShardedTableSetOnEvict(t *testing.T) {
	tbl := NewShardedTable(4)
	tbl.SetIdleTimeout(100)
	var mu sync.Mutex
	evicted := map[Key]int{}
	tbl.SetOnEvict(func(k Key) {
		mu.Lock()
		evicted[k]++
		mu.Unlock()
	})
	for i := 0; i < 16; i++ {
		tbl.Observe(intObs(tcpKey(uint16(5000+i)), 100, 1000, 500, 2))
	}
	if n := tbl.Sweep(1000); n != 16 {
		t.Fatalf("swept %d, want 16", n)
	}
	if len(evicted) != 16 {
		t.Errorf("OnEvict fired for %d flows, want 16", len(evicted))
	}
	for k, n := range evicted {
		if n != 1 {
			t.Errorf("OnEvict fired %d times for %s", n, k)
		}
	}
}
