package flow

import (
	"github.com/amlight/intddos/internal/netsim"
)

// State is one flow record: packet-level fields replaced by the
// newest packet, flow-level aggregates accumulated in place.
type State struct {
	Key Key

	// RegisteredAt is when the flow's record was created (collector
	// clock); the paper's prediction latency is measured from it.
	RegisteredAt netsim.Time
	// LastAt is the most recent observation time.
	LastAt netsim.Time
	// Updates counts observations folded into the record.
	Updates int

	// Size, IAT, Queue, and HopLat are the per-packet series feeding
	// the Table II feature variants. IAT observations exist from the
	// second packet on.
	Size   Stats
	IAT    Stats
	Queue  Stats
	HopLat Stats

	// lastIngress supports wrap-aware inter-arrival computation from
	// the 32-bit hardware stamps.
	lastIngress  netsim.Timestamp32
	haveIngress  bool
	hasTelemetry bool

	// AttackObs counts observations with ground-truth attack labels;
	// the flow's majority label is used in evaluation.
	AttackObs int
	// LastTruth is the most recent observation's ground truth.
	LastTruth bool
	// AttackType is the most recent non-benign workload name seen.
	AttackType string
}

// StateSnapshot is the exported, serializable view of a flow record:
// every field — including the unexported wrap-tracking state — so a
// restored record produces bit-identical features for all subsequent
// observations. It is the unit the checkpoint subsystem persists.
type StateSnapshot struct {
	Key          Key
	RegisteredAt netsim.Time
	LastAt       netsim.Time
	Updates      int

	Size   StatsSnapshot
	IAT    StatsSnapshot
	Queue  StatsSnapshot
	HopLat StatsSnapshot

	LastIngress  netsim.Timestamp32
	HaveIngress  bool
	HasTelemetry bool

	AttackObs  int
	LastTruth  bool
	AttackType string
}

// Snapshot exports the record's full state.
func (st *State) Snapshot() StateSnapshot {
	return StateSnapshot{
		Key:          st.Key,
		RegisteredAt: st.RegisteredAt,
		LastAt:       st.LastAt,
		Updates:      st.Updates,
		Size:         st.Size.Snapshot(),
		IAT:          st.IAT.Snapshot(),
		Queue:        st.Queue.Snapshot(),
		HopLat:       st.HopLat.Snapshot(),
		LastIngress:  st.lastIngress,
		HaveIngress:  st.haveIngress,
		HasTelemetry: st.hasTelemetry,
		AttackObs:    st.AttackObs,
		LastTruth:    st.LastTruth,
		AttackType:   st.AttackType,
	}
}

// RestoreState rebuilds a flow record from a snapshot.
func RestoreState(sn StateSnapshot) *State {
	return &State{
		Key:          sn.Key,
		RegisteredAt: sn.RegisteredAt,
		LastAt:       sn.LastAt,
		Updates:      sn.Updates,
		Size:         RestoreStats(sn.Size),
		IAT:          RestoreStats(sn.IAT),
		Queue:        RestoreStats(sn.Queue),
		HopLat:       RestoreStats(sn.HopLat),
		lastIngress:  sn.LastIngress,
		haveIngress:  sn.HaveIngress,
		hasTelemetry: sn.HasTelemetry,
		AttackObs:    sn.AttackObs,
		LastTruth:    sn.LastTruth,
		AttackType:   sn.AttackType,
	}
}

// NaiveIAT switches inter-arrival computation to the unsigned naive
// subtraction for the wraparound ablation benchmark; the default is
// wrap-aware. Package-level because it parameterizes an experiment,
// not a deployment.
var NaiveIAT = false

// Update folds one observation into the record.
func (st *State) Update(pi PacketInfo) {
	prevAt := st.LastAt
	st.Updates++
	st.LastAt = pi.At
	st.Size.Add(float64(pi.Length))
	if pi.HasTelemetry {
		st.hasTelemetry = true
		st.Queue.Add(float64(pi.QueueDepth))
		st.HopLat.Add(float64(pi.HopLatencyNs))
		if st.haveIngress {
			var d netsim.Time
			if NaiveIAT {
				d = netsim.NaiveDiff(st.lastIngress, pi.IngressTS)
			} else {
				d = netsim.WrapDiff(st.lastIngress, pi.IngressTS)
			}
			st.IAT.Add(float64(d))
		}
		st.lastIngress = pi.IngressTS
		st.haveIngress = true
	} else if st.Updates > 1 {
		// sFlow has no hardware stamps; inter-arrival falls back to
		// the collector clock between sampled packets.
		st.IAT.Add(float64(pi.At - prevAt))
	}
	if pi.Label {
		st.AttackObs++
		st.AttackType = pi.AttackType
	}
	st.LastTruth = pi.Label
}

// Duration returns the cumulative inter-arrival time — the flow
// duration as the paper defines it.
func (st *State) Duration() netsim.Time { return netsim.Time(st.IAT.Sum()) }

// Feature returns the current value of a single feature.
func (st *State) Feature(f FeatureID) float64 {
	switch f {
	case FProto:
		return float64(st.Key.Proto)
	case FPktSize:
		return st.Size.Last()
	case FPktSizeCum:
		return st.Size.Sum()
	case FPktSizeAvg:
		return st.Size.Mean()
	case FPktSizeStd:
		return st.Size.Std()
	case FIAT:
		return st.IAT.Last()
	case FIATCum:
		return st.IAT.Sum()
	case FIATAvg:
		return st.IAT.Mean()
	case FIATStd:
		return st.IAT.Std()
	case FQueue:
		return st.Queue.Last()
	case FQueueAvg:
		return st.Queue.Mean()
	case FQueueStd:
		return st.Queue.Std()
	case FCount:
		return float64(st.Updates)
	case FPPS:
		if d := st.IAT.Sum(); d > 0 {
			return float64(st.Updates) / (d / float64(netsim.Second))
		}
		return 0
	case FBPS:
		if d := st.IAT.Sum(); d > 0 {
			return st.Size.Sum() / (d / float64(netsim.Second))
		}
		return 0
	case FHopLat:
		return st.HopLat.Last()
	case FHopLatAvg:
		return st.HopLat.Mean()
	case FHopLatStd:
		return st.HopLat.Std()
	case FSrcPort:
		return float64(st.Key.SrcPort)
	case FDstPort:
		return float64(st.Key.DstPort)
	default:
		return 0
	}
}

// Features appends the feature vector for set to dst and returns it.
func (st *State) Features(dst []float64, set FeatureSet) []float64 {
	for _, f := range set {
		dst = append(dst, st.Feature(f))
	}
	return dst
}

// Table is the Data Processor's flow store: one State per Flow ID,
// with idle eviction to bound memory against spoofed-source floods
// that mint millions of one-packet flows.
type Table struct {
	flows map[Key]*State

	// IdleTimeout evicts flows not updated for this long when Sweep
	// runs. Zero disables eviction.
	IdleTimeout netsim.Time

	// OnNew fires when a record is created; OnUpdate fires on every
	// subsequent update (the CentralServer's change feed — §III-3:
	// the server reacts to updates of existing records, not to brand
	// new entries).
	OnNew    func(*State)
	OnUpdate func(*State)
	// OnEvict fires for every record Sweep removes, after the record
	// has left the table. It is the hook downstream state keyed by the
	// same flow — database rows, vote windows — uses to die with the
	// table entry, so idle eviction bounds memory everywhere at once
	// instead of only here.
	OnEvict func(Key)

	// Stats
	Created int
	Evicted int
}

// NewTable constructs an empty flow table.
func NewTable() *Table {
	return &Table{flows: make(map[Key]*State)}
}

// Len returns the number of live flow records.
func (t *Table) Len() int { return len(t.flows) }

// Get returns the record for k, or nil.
func (t *Table) Get(k Key) *State { return t.flows[k] }

// Observe folds one observation into its flow record, creating it if
// needed. It returns the record and whether it was just created.
func (t *Table) Observe(pi PacketInfo) (*State, bool) {
	st, ok := t.flows[pi.Key]
	if !ok {
		st = &State{Key: pi.Key, RegisteredAt: pi.At}
		t.flows[pi.Key] = st
		t.Created++
		st.Update(pi)
		if t.OnNew != nil {
			t.OnNew(st)
		}
		return st, true
	}
	st.Update(pi)
	if t.OnUpdate != nil {
		t.OnUpdate(st)
	}
	return st, false
}

// Sweep evicts records idle at now for longer than IdleTimeout and
// returns how many were removed. OnEvict, when set, fires once per
// removed record.
func (t *Table) Sweep(now netsim.Time) int {
	if t.IdleTimeout <= 0 {
		return 0
	}
	n := 0
	for k, st := range t.flows {
		if now-st.LastAt > t.IdleTimeout {
			delete(t.flows, k)
			n++
			if t.OnEvict != nil {
				t.OnEvict(k)
			}
		}
	}
	t.Evicted += n
	return n
}

// Insert adds a restored record to the table without firing OnNew —
// the restore path's counterpart to Observe. An existing record for
// the same key is replaced.
func (t *Table) Insert(st *State) {
	if _, ok := t.flows[st.Key]; !ok {
		t.Created++
	}
	t.flows[st.Key] = st
}

// Delete removes the record for k without firing OnEvict — the
// restore path's counterpart to Sweep, used when replaying a
// checkpoint delta's removal list. Reports whether a record existed.
func (t *Table) Delete(k Key) bool {
	if _, ok := t.flows[k]; !ok {
		return false
	}
	delete(t.flows, k)
	return true
}

// Range calls fn for every live record; returning false stops early.
func (t *Table) Range(fn func(*State) bool) {
	for _, st := range t.flows {
		if !fn(st) {
			return
		}
	}
}
