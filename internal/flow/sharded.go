package flow

import (
	"fmt"
	"sync"

	"github.com/amlight/intddos/internal/netsim"
)

// ShardedTable is a lock-striped flow table: N independent Tables,
// each behind its own mutex, with flows routed by Key.Hash. Unlike
// the plain Table — which relies on its caller for synchronization —
// a ShardedTable is safe for concurrent use, and two observations of
// flows on different shards never contend.
//
// With one shard it degenerates to a mutex around a single Table,
// i.e. exactly the legacy concurrency shape of core.Live.
type ShardedTable struct {
	shards []tableShard

	// track enables per-shard dirty/removed bookkeeping for
	// incremental checkpoints (SetDeltaTracking). Read on the observe
	// hot path; written only before concurrent use begins.
	track bool

	// onContention, when set, runs every time an observation finds its
	// shard's mutex already held. Set it before concurrent use begins
	// (SetContentionHook); core.Live points it at an obs counter.
	onContention func()
}

// SetContentionHook installs fn as the table's contention callback.
// Not safe to call concurrently with Observe.
func (t *ShardedTable) SetContentionHook(fn func()) { t.onContention = fn }

type tableShard struct {
	mu    sync.Mutex
	table *Table

	// Delta-checkpoint bookkeeping, maintained only while tracking is
	// on (SetDeltaTracking): keys written since the last export, and
	// keys evicted since the last export. A key lives in at most one
	// set — the last action wins — so an incremental capture exports
	// exactly the difference against its parent snapshot.
	dirty   map[Key]struct{}
	removed map[Key]struct{}
}

// NewShardedTable builds a striped table with n shards (n < 1 is
// treated as 1).
func NewShardedTable(n int) *ShardedTable {
	if n < 1 {
		n = 1
	}
	st := &ShardedTable{shards: make([]tableShard, n)}
	for i := range st.shards {
		st.shards[i].table = NewTable()
		st.shards[i].dirty = make(map[Key]struct{})
		st.shards[i].removed = make(map[Key]struct{})
	}
	return st
}

// SetDeltaTracking turns per-shard dirty/removed tracking on or off.
// Enable it before concurrent use begins (it is read on the observe
// hot path) and before the state an incremental export should diff
// against is captured; turning it on clears any stale marks.
func (t *ShardedTable) SetDeltaTracking(on bool) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		s.dirty = make(map[Key]struct{})
		s.removed = make(map[Key]struct{})
		s.mu.Unlock()
	}
	t.track = on
}

// Shards returns the stripe count.
func (t *ShardedTable) Shards() int { return len(t.shards) }

// ShardFor returns the shard index key routes to.
func (t *ShardedTable) ShardFor(key Key) int { return key.Shard(len(t.shards)) }

// SetIdleTimeout configures idle eviction on every shard.
func (t *ShardedTable) SetIdleTimeout(d netsim.Time) {
	for i := range t.shards {
		t.shards[i].mu.Lock()
		t.shards[i].table.IdleTimeout = d
		t.shards[i].mu.Unlock()
	}
}

// SetOnEvict installs fn as every shard's eviction hook. fn runs
// under the evicting shard's lock and must not call back into the
// table. The installed hook also feeds the delta-checkpoint removal
// set: a sweep eviction must reach the next incremental snapshot as a
// removal, or a restored chain would resurrect the flow.
func (t *ShardedTable) SetOnEvict(fn func(Key)) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		s.table.OnEvict = func(k Key) {
			if t.track {
				s.removed[k] = struct{}{}
				delete(s.dirty, k)
			}
			if fn != nil {
				fn(k)
			}
		}
		s.mu.Unlock()
	}
}

// ExportShard snapshots every record on one shard for checkpointing.
// Out-of-range shards yield nil. With delta tracking on, a full
// export resets the shard's dirty/removed marks — it is the new base
// an incremental export diffs against.
func (t *ShardedTable) ExportShard(shard int) []StateSnapshot {
	return t.ExportShardInto(shard, nil)
}

// ExportShardInto is ExportShard reusing dst's backing array when its
// capacity suffices. The checkpoint writer passes the previous
// capture's (already encoded, now dead) export back in, so a
// steady-state capture appends into warm memory instead of allocating
// — and zeroing — hundreds of megabytes inside the barrier. Callers
// must ensure nothing else still reads dst.
func (t *ShardedTable) ExportShardInto(shard int, dst []StateSnapshot) []StateSnapshot {
	if shard < 0 || shard >= len(t.shards) {
		return nil
	}
	s := &t.shards[shard]
	s.mu.Lock()
	defer s.mu.Unlock()
	out := dst[:0]
	if cap(out) < s.table.Len() {
		out = make([]StateSnapshot, 0, s.table.Len())
	}
	s.table.Range(func(st *State) bool {
		out = append(out, st.Snapshot())
		return true
	})
	if t.track {
		s.dirty = make(map[Key]struct{})
		s.removed = make(map[Key]struct{})
	}
	return out
}

// ExportShardDelta snapshots only the records written since the
// previous export on one shard, plus the keys evicted since then, and
// resets the marks — the capture side of an incremental checkpoint.
// Requires SetDeltaTracking(true); out-of-range shards yield nil.
func (t *ShardedTable) ExportShardDelta(shard int) (states []StateSnapshot, removed []Key) {
	if shard < 0 || shard >= len(t.shards) {
		return nil, nil
	}
	s := &t.shards[shard]
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.dirty) > 0 {
		states = make([]StateSnapshot, 0, len(s.dirty))
		for k := range s.dirty {
			if st := s.table.Get(k); st != nil {
				states = append(states, st.Snapshot())
			}
		}
	}
	if len(s.removed) > 0 {
		removed = make([]Key, 0, len(s.removed))
		for k := range s.removed {
			removed = append(removed, k)
		}
	}
	s.dirty = make(map[Key]struct{})
	s.removed = make(map[Key]struct{})
	return states, removed
}

// RestoreShard inserts restored records into one shard. Records whose
// key does not hash onto the shard are rejected — a snapshot taken at
// a different shard count must fail loud, not scatter flows onto the
// wrong stripes.
func (t *ShardedTable) RestoreShard(shard int, states []StateSnapshot) error {
	if shard < 0 || shard >= len(t.shards) {
		return fmt.Errorf("flow: restore shard %d out of range (have %d)", shard, len(t.shards))
	}
	for _, sn := range states {
		if got := sn.Key.Shard(len(t.shards)); got != shard {
			return fmt.Errorf("flow: restored record %s hashes to shard %d, not %d (snapshot from a different shard count?)",
				sn.Key, got, shard)
		}
	}
	s := &t.shards[shard]
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, sn := range states {
		s.table.Insert(RestoreState(sn))
	}
	return nil
}

// RestoreShardDelta replays one incremental snapshot's changes on top
// of the shard's current state: removals first, then upserts — the
// order that lets a flow evicted and re-created within one delta
// interval survive the replay. Keys are validated against the shard
// hash exactly like RestoreShard.
func (t *ShardedTable) RestoreShardDelta(shard int, states []StateSnapshot, removed []Key) error {
	if shard < 0 || shard >= len(t.shards) {
		return fmt.Errorf("flow: restore shard %d out of range (have %d)", shard, len(t.shards))
	}
	for _, sn := range states {
		if got := sn.Key.Shard(len(t.shards)); got != shard {
			return fmt.Errorf("flow: restored record %s hashes to shard %d, not %d (snapshot from a different shard count?)",
				sn.Key, got, shard)
		}
	}
	for _, k := range removed {
		if got := k.Shard(len(t.shards)); got != shard {
			return fmt.Errorf("flow: removed key %s hashes to shard %d, not %d (snapshot from a different shard count?)",
				k, got, shard)
		}
	}
	s := &t.shards[shard]
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range removed {
		s.table.Delete(k)
	}
	for _, sn := range states {
		s.table.Insert(RestoreState(sn))
	}
	return nil
}

// Observe folds one observation into its flow's shard and reports
// whether the record was created. The *State must not be retained —
// use ObserveFunc to read it safely.
func (t *ShardedTable) Observe(pi PacketInfo) (created bool) {
	_, created = t.observe(pi, nil)
	return created
}

// ObserveFunc folds one observation into its flow's shard and invokes
// fn on the updated record while the shard lock is held, so fn can
// extract features without racing other writers. fn must not block or
// call back into the table.
func (t *ShardedTable) ObserveFunc(pi PacketInfo, fn func(*State)) (created bool) {
	_, created = t.observe(pi, fn)
	return created
}

func (t *ShardedTable) observe(pi PacketInfo, fn func(*State)) (*State, bool) {
	s := &t.shards[pi.Key.Shard(len(t.shards))]
	if !s.mu.TryLock() {
		if t.onContention != nil {
			t.onContention()
		}
		s.mu.Lock()
	}
	defer s.mu.Unlock()
	st, created := s.table.Observe(pi)
	if t.track {
		s.dirty[pi.Key] = struct{}{}
		delete(s.removed, pi.Key)
	}
	if fn != nil {
		fn(st)
	}
	return st, created
}

// Get invokes fn on the record for k under the shard lock and reports
// whether the record exists. fn may be nil for a bare existence check.
func (t *ShardedTable) Get(k Key, fn func(*State)) bool {
	s := &t.shards[k.Shard(len(t.shards))]
	s.mu.Lock()
	defer s.mu.Unlock()
	st := s.table.Get(k)
	if st == nil {
		return false
	}
	if fn != nil {
		fn(st)
	}
	return true
}

// Len returns the number of live flow records across all shards.
func (t *ShardedTable) Len() int {
	n := 0
	for i := range t.shards {
		t.shards[i].mu.Lock()
		n += t.shards[i].table.Len()
		t.shards[i].mu.Unlock()
	}
	return n
}

// ShardLen returns the number of live records on one shard.
func (t *ShardedTable) ShardLen(shard int) int {
	s := &t.shards[shard]
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.table.Len()
}

// Created sums per-shard creation counts.
func (t *ShardedTable) Created() int {
	n := 0
	for i := range t.shards {
		t.shards[i].mu.Lock()
		n += t.shards[i].table.Created
		t.shards[i].mu.Unlock()
	}
	return n
}

// Sweep evicts idle records on every shard and returns the total
// removed. Shards are swept one at a time, so writers to other shards
// proceed during the pass.
func (t *ShardedTable) Sweep(now netsim.Time) int {
	n := 0
	for i := range t.shards {
		t.shards[i].mu.Lock()
		n += t.shards[i].table.Sweep(now)
		t.shards[i].mu.Unlock()
	}
	return n
}

// Range calls fn for every live record under its shard's lock;
// returning false stops early. fn must not call back into the table.
func (t *ShardedTable) Range(fn func(*State) bool) {
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		stop := false
		s.table.Range(func(st *State) bool {
			if !fn(st) {
				stop = true
				return false
			}
			return true
		})
		s.mu.Unlock()
		if stop {
			return
		}
	}
}
