package flow

import (
	"fmt"
	"net/netip"

	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/sflow"
	"github.com/amlight/intddos/internal/telemetry"
)

// Key is the Flow ID: the five-tuple {source IP, destination IP,
// source port, destination port, protocol} the paper (and [17])
// identifies flows by.
type Key struct {
	Src     netip.Addr
	Dst     netip.Addr
	SrcPort uint16
	DstPort uint16
	Proto   netsim.Proto
}

// String renders the key in the repository's canonical flow notation.
func (k Key) String() string {
	return fmt.Sprintf("%s:%d>%s:%d/%s", k.Src, k.SrcPort, k.Dst, k.DstPort, k.Proto)
}

// Hash returns a stable FNV-1a hash of the five-tuple. Every sharded
// structure in the pipeline (flow tables, the database, the dispatch
// to prediction workers) derives its shard from this one value, so a
// flow lands on the same shard at every layer.
func (k Key) Hash() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	src, dst := k.Src.As16(), k.Dst.As16()
	for _, b := range src {
		h = (h ^ uint64(b)) * prime64
	}
	for _, b := range dst {
		h = (h ^ uint64(b)) * prime64
	}
	h = (h ^ uint64(k.SrcPort>>8)) * prime64
	h = (h ^ uint64(k.SrcPort&0xFF)) * prime64
	h = (h ^ uint64(k.DstPort>>8)) * prime64
	h = (h ^ uint64(k.DstPort&0xFF)) * prime64
	h = (h ^ uint64(k.Proto)) * prime64
	// FNV-1a's low bits disperse poorly under modulo sharding; run a
	// 64-bit avalanche finalizer so every output bit depends on every
	// input byte.
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// Shard maps the key onto one of n shards (n must be positive).
func (k Key) Shard(n int) int { return int(k.Hash() % uint64(n)) }

// PacketInfo is one monitored packet observation, normalized from
// either monitoring source. Telemetry fields are valid only when
// HasTelemetry is set (INT); sFlow observations carry header fields
// alone — the Table II gap between the two tools.
type PacketInfo struct {
	Key    Key
	Length int
	Flags  netsim.TCPFlags

	// At is the collector-local arrival time of the observation (the
	// only full-resolution clock available; INT's own stamps are
	// 32-bit and wrap).
	At netsim.Time

	// HasTelemetry marks INT observations.
	HasTelemetry bool
	// IngressTS/EgressTS are the sink-hop 32-bit hardware timestamps.
	IngressTS netsim.Timestamp32
	EgressTS  netsim.Timestamp32
	// QueueDepth is the sink-hop queue occupancy at dequeue.
	QueueDepth uint32
	// HopLatencyNs is the total path residence time.
	HopLatencyNs uint64

	// Ground truth for training/evaluation bookkeeping.
	Label      bool
	AttackType string
}

// FromINT normalizes a decoded INT report received at time at. Queue
// occupancy and timestamps are taken from the last hop (the sink
// switch), which in the testbed is the hop closest to the victim;
// hop latency sums the whole stack.
func FromINT(r *telemetry.Report, at netsim.Time) PacketInfo {
	pi := PacketInfo{
		Key: Key{
			Src: r.Src, Dst: r.Dst,
			SrcPort: r.SrcPort, DstPort: r.DstPort, Proto: r.Proto,
		},
		Length:       int(r.Length),
		Flags:        r.Flags,
		At:           at,
		HasTelemetry: true,
		HopLatencyNs: uint64(r.PathLatency()),
		Label:        r.Truth.Label,
		AttackType:   r.Truth.AttackType,
	}
	if h, ok := r.LastHop(); ok {
		pi.IngressTS = h.IngressTS
		pi.EgressTS = h.EgressTS
		pi.QueueDepth = h.QueueDepth
	}
	return pi
}

// FromSFlow normalizes an sFlow flow sample received at time at.
func FromSFlow(s *sflow.FlowSample, at netsim.Time) PacketInfo {
	return PacketInfo{
		Key: Key{
			Src: s.Src, Dst: s.Dst,
			SrcPort: s.SrcPort, DstPort: s.DstPort, Proto: s.Proto,
		},
		Length:     int(s.Length),
		Flags:      s.Flags,
		At:         at,
		Label:      s.Truth.Label,
		AttackType: s.Truth.AttackType,
	}
}
