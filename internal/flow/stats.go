// Package flow implements the paper's Data Processor: 5-tuple flow
// identification, per-flow running statistics, and the packet- and
// flow-level feature vectors of Table II that feed the ML models.
//
// A flow record keeps one row per Flow ID, updated in place as new
// packets arrive — packet-level fields are replaced by the newest
// packet while flow-level aggregates accumulate, exactly the record
// semantics Section III-2 describes.
package flow

import "math"

// Stats accumulates a streaming series with Welford's online
// algorithm: last value, sum, mean, and standard deviation in O(1)
// per update with no stored history.
type Stats struct {
	n    int
	last float64
	sum  float64
	mean float64
	m2   float64
}

// Add folds x into the series.
func (s *Stats) Add(x float64) {
	s.n++
	s.last = x
	s.sum += x
	delta := x - s.mean
	s.mean += delta / float64(s.n)
	s.m2 += delta * (x - s.mean)
}

// Count returns the number of observations.
func (s *Stats) Count() int { return s.n }

// Last returns the most recent observation, or 0 before any.
func (s *Stats) Last() float64 { return s.last }

// Sum returns the cumulative total.
func (s *Stats) Sum() float64 { return s.sum }

// Mean returns the running mean, or 0 before any observation.
func (s *Stats) Mean() float64 { return s.mean }

// StatsSnapshot is the exported, serializable view of a Stats
// accumulator — every term of Welford's recurrence, so a restored
// series continues bit-identically from where the original left off.
type StatsSnapshot struct {
	N    int
	Last float64
	Sum  float64
	Mean float64
	M2   float64
}

// Snapshot exports the accumulator's full state.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{N: s.n, Last: s.last, Sum: s.sum, Mean: s.mean, M2: s.m2}
}

// RestoreStats rebuilds an accumulator from a snapshot.
func RestoreStats(sn StatsSnapshot) Stats {
	return Stats{n: sn.N, last: sn.Last, sum: sn.Sum, mean: sn.Mean, m2: sn.M2}
}

// Var returns the population variance, or 0 with fewer than two
// observations.
func (s *Stats) Var() float64 {
	if s.n < 2 {
		return 0
	}
	return s.m2 / float64(s.n)
}

// Std returns the population standard deviation.
func (s *Stats) Std() float64 { return math.Sqrt(s.Var()) }
