// Package mitigate implements the flow-rule generation hooks the
// paper leaves as future work (§III footnote 2; cf. Aslam et al.'s
// ONOS flood defender): it turns attack decisions from the detection
// mechanism into expiring drop rules a programmable data plane could
// install. Detection remains the paper's scope; this module exists so
// a deployment has somewhere to send its verdicts.
package mitigate

import (
	"fmt"
	"sort"

	"github.com/amlight/intddos/internal/core"
	"github.com/amlight/intddos/internal/flow"
	"github.com/amlight/intddos/internal/netsim"
)

// RuleScope selects what a generated rule matches.
type RuleScope int

// Rule scopes, narrowest first.
const (
	// ScopeFlow drops the exact 5-tuple.
	ScopeFlow RuleScope = iota
	// ScopeSource drops everything from the offending source address
	// (the right scope for scans and SlowLoris; useless against
	// spoofed floods).
	ScopeSource
)

// Rule is one generated drop rule.
type Rule struct {
	Scope     RuleScope
	Key       flow.Key // fully meaningful for ScopeFlow; Src for ScopeSource
	CreatedAt netsim.Time
	ExpiresAt netsim.Time
	Hits      int
}

// String renders the rule like a flow-table entry.
func (r Rule) String() string {
	switch r.Scope {
	case ScopeSource:
		return fmt.Sprintf("drop src=%s until %v", r.Key.Src, r.ExpiresAt)
	default:
		return fmt.Sprintf("drop %s until %v", r.Key, r.ExpiresAt)
	}
}

// Config parameterizes rule generation.
type Config struct {
	// TTL is the rule lifetime; refreshed when the same target is
	// re-flagged (default 5 s virtual).
	TTL netsim.Time
	// SourceThreshold escalates to a source-scoped rule once this
	// many distinct flows from one source have been flagged
	// (default 3).
	SourceThreshold int
	// MaxRules bounds the table; new rules are rejected beyond it
	// (default 10000).
	MaxRules int
}

// Generator turns decisions into rules.
type Generator struct {
	cfg Config

	rules      map[string]*Rule
	flowsBySrc map[string]map[flow.Key]bool

	// Stats
	Generated int
	Escalated int // source-scope escalations
	Rejected  int // dropped at MaxRules
}

// NewGenerator builds a generator; zero-valued config fields take
// defaults.
func NewGenerator(cfg Config) *Generator {
	if cfg.TTL <= 0 {
		cfg.TTL = 5 * netsim.Second
	}
	if cfg.SourceThreshold <= 0 {
		cfg.SourceThreshold = 3
	}
	if cfg.MaxRules <= 0 {
		cfg.MaxRules = 10000
	}
	return &Generator{
		cfg:        cfg,
		rules:      make(map[string]*Rule),
		flowsBySrc: make(map[string]map[flow.Key]bool),
	}
}

// HandleDecision consumes one mechanism decision; benign decisions
// are ignored. Wire it to core.Mechanism.OnDecision.
func (g *Generator) HandleDecision(d core.Decision) {
	if d.Label != 1 {
		return
	}
	src := d.Key.Src.String()
	flows := g.flowsBySrc[src]
	if flows == nil {
		flows = make(map[flow.Key]bool)
		g.flowsBySrc[src] = flows
	}
	flows[d.Key] = true

	if len(flows) >= g.cfg.SourceThreshold {
		g.install("src:"+src, Rule{Scope: ScopeSource, Key: flow.Key{Src: d.Key.Src}}, d.At, true)
		return
	}
	g.install("flow:"+d.Key.String(), Rule{Scope: ScopeFlow, Key: d.Key}, d.At, false)
}

// install adds or refreshes a rule.
func (g *Generator) install(id string, r Rule, now netsim.Time, escalation bool) {
	if existing, ok := g.rules[id]; ok {
		existing.ExpiresAt = now + g.cfg.TTL
		existing.Hits++
		return
	}
	if len(g.rules) >= g.cfg.MaxRules {
		g.Rejected++
		return
	}
	r.CreatedAt = now
	r.ExpiresAt = now + g.cfg.TTL
	r.Hits = 1
	g.rules[id] = &r
	g.Generated++
	if escalation {
		g.Escalated++
	}
}

// Expire removes rules past their TTL at now, returning how many were
// dropped.
func (g *Generator) Expire(now netsim.Time) int {
	n := 0
	for id, r := range g.rules {
		if now >= r.ExpiresAt {
			delete(g.rules, id)
			n++
		}
	}
	return n
}

// Match reports whether a packet with the given key would be dropped
// under the current rule set at time now.
func (g *Generator) Match(k flow.Key, now netsim.Time) bool {
	if r, ok := g.rules["src:"+k.Src.String()]; ok && now < r.ExpiresAt {
		r.Hits++
		return true
	}
	if r, ok := g.rules["flow:"+k.String()]; ok && now < r.ExpiresAt {
		r.Hits++
		return true
	}
	return false
}

// Rules returns the active rules sorted by creation time.
func (g *Generator) Rules() []Rule {
	out := make([]Rule, 0, len(g.rules))
	for _, r := range g.rules {
		out = append(out, *r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].CreatedAt < out[j].CreatedAt })
	return out
}

// Len returns the number of installed rules.
func (g *Generator) Len() int { return len(g.rules) }

// Compile translates one generated rule into the data-plane ACL form.
func Compile(r Rule) netsim.ACLRule {
	out := netsim.ACLRule{Src: r.Key.Src, ExpiresAt: r.ExpiresAt}
	if r.Scope == ScopeFlow {
		out.Dst = r.Key.Dst
		out.SrcPort = r.Key.SrcPort
		out.DstPort = r.Key.DstPort
		out.Proto = r.Key.Proto
	}
	return out
}

// InstallInto wires the generator to a switch ACL: every newly
// generated or escalated rule is compiled and installed in the data
// plane as it is created. Returns the wrapped decision handler to
// hook to core.Mechanism.OnDecision.
func (g *Generator) InstallInto(acl *netsim.ACL) func(core.Decision) {
	installed := map[string]bool{}
	return func(d core.Decision) {
		g.HandleDecision(d)
		for id, r := range g.rules {
			if !installed[id] {
				installed[id] = true
				acl.Install(Compile(*r))
			}
		}
	}
}
