package mitigate

import (
	"net/netip"
	"testing"

	"github.com/amlight/intddos/internal/core"
	"github.com/amlight/intddos/internal/flow"
	"github.com/amlight/intddos/internal/netsim"
)

func attacker(sport uint16) flow.Key {
	return flow.Key{
		Src: netip.MustParseAddr("203.0.113.77"), Dst: netip.MustParseAddr("10.0.0.2"),
		SrcPort: sport, DstPort: 80, Proto: netsim.TCP,
	}
}

func decision(k flow.Key, label int, at netsim.Time) core.Decision {
	return core.Decision{Key: k, Label: label, At: at}
}

func TestGeneratorIgnoresBenign(t *testing.T) {
	g := NewGenerator(Config{})
	g.HandleDecision(decision(attacker(1), 0, 0))
	if g.Len() != 0 {
		t.Errorf("benign decision generated %d rules", g.Len())
	}
}

func TestGeneratorFlowRule(t *testing.T) {
	g := NewGenerator(Config{TTL: netsim.Second})
	k := attacker(1)
	g.HandleDecision(decision(k, 1, 100))
	if g.Len() != 1 {
		t.Fatalf("rules = %d", g.Len())
	}
	if !g.Match(k, 200) {
		t.Error("flagged flow not matched")
	}
	if g.Match(attacker(2), 200) {
		t.Error("unrelated flow matched")
	}
	// Expiry.
	if g.Match(k, 100+netsim.Second+1) {
		t.Error("expired rule still matches")
	}
}

func TestGeneratorEscalatesToSource(t *testing.T) {
	g := NewGenerator(Config{SourceThreshold: 3})
	for p := uint16(1); p <= 3; p++ {
		g.HandleDecision(decision(attacker(p), 1, netsim.Time(p)))
	}
	if g.Escalated != 1 {
		t.Fatalf("escalations = %d, want 1", g.Escalated)
	}
	// Any flow from that source now matches, even a fresh port.
	if !g.Match(attacker(999), 10) {
		t.Error("source rule did not cover new flow")
	}
}

func TestGeneratorRefreshExtendsTTL(t *testing.T) {
	g := NewGenerator(Config{TTL: 100})
	k := attacker(1)
	g.HandleDecision(decision(k, 1, 0))
	g.HandleDecision(decision(k, 1, 80)) // refresh at t=80 → expires 180
	if !g.Match(k, 150) {
		t.Error("refreshed rule expired early")
	}
	if g.Generated != 1 {
		t.Errorf("generated = %d, want 1 (refresh, not new)", g.Generated)
	}
}

func TestGeneratorExpireSweep(t *testing.T) {
	g := NewGenerator(Config{TTL: 100})
	g.HandleDecision(decision(attacker(1), 1, 0))
	g.HandleDecision(decision(attacker(2), 1, 500))
	if n := g.Expire(300); n != 1 {
		t.Errorf("expired = %d, want 1", n)
	}
	if g.Len() != 1 {
		t.Errorf("rules = %d after sweep", g.Len())
	}
}

func TestGeneratorMaxRules(t *testing.T) {
	g := NewGenerator(Config{MaxRules: 2, SourceThreshold: 100})
	for p := uint16(1); p <= 5; p++ {
		k := attacker(p)
		k.Src = netip.AddrFrom4([4]byte{10, 1, 0, byte(p)}) // distinct sources
		g.HandleDecision(decision(k, 1, 0))
	}
	if g.Len() != 2 {
		t.Errorf("rules = %d, want cap 2", g.Len())
	}
	if g.Rejected != 3 {
		t.Errorf("rejected = %d, want 3", g.Rejected)
	}
}

func TestRulesSortedAndRendered(t *testing.T) {
	g := NewGenerator(Config{SourceThreshold: 2})
	g.HandleDecision(decision(attacker(1), 1, 10))
	g.HandleDecision(decision(attacker(2), 1, 20)) // escalates
	rules := g.Rules()
	if len(rules) != 2 {
		t.Fatalf("rules = %d", len(rules))
	}
	if rules[0].CreatedAt > rules[1].CreatedAt {
		t.Error("rules not sorted by creation")
	}
	foundSrc := false
	for _, r := range rules {
		if r.Scope == ScopeSource {
			foundSrc = true
			if r.String() == "" || r.String()[:8] != "drop src" {
				t.Errorf("render = %q", r.String())
			}
		}
	}
	if !foundSrc {
		t.Error("no source-scoped rule after escalation")
	}
}
