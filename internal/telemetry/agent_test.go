package telemetry

import (
	"net/netip"
	"testing"

	"github.com/amlight/intddos/internal/netsim"
)

// intTestbed builds the Figure 6 single-switch topology: source host
// on port 1, target on port 2, external loop between ports 3 and 4,
// collector on port 5. Data path: 1 → 3 →(loop)→ 4 → 2, so each
// packet transits the switch twice and accumulates two hops.
type intTestbed struct {
	eng       *netsim.Engine
	src, dst  *netsim.Host
	sw        *netsim.Switch
	agent     *Agent
	collector *Collector
}

func newINTTestbed(t *testing.T, sampler Sampler) *intTestbed {
	t.Helper()
	eng := netsim.NewEngine()
	src := netsim.NewHost(eng, "source", netip.MustParseAddr("10.0.0.1"))
	dst := netsim.NewHost(eng, "target", netip.MustParseAddr("10.0.0.2"))
	colHost := netsim.NewHost(eng, "collector", netip.MustParseAddr("10.0.0.5"))
	sw := netsim.NewSwitch(eng, netsim.DefaultSwitchConfig(1))

	fwd := netsim.NewStaticForwarder()
	fwd.ByIngress[1] = 3 // first pass: out the loop
	fwd.ByIngress[4] = 2 // second pass: toward the target
	sw.Forwarder = fwd

	src.Attach(netsim.Microsecond, sw.Port(1))
	sw.Connect(3, netsim.Microsecond, sw.Port(4)) // external loopback cable
	sw.Connect(2, netsim.Microsecond, dst)

	collector := NewCollector(eng)
	colHost.OnReceive = collector.Receive
	reportWire := netsim.NewLink(eng, netsim.Microsecond, colHost)
	sw.Connect(5, netsim.Microsecond, colHost)

	agent := NewAgent(eng, sw, AgentConfig{
		SourcePorts:   []uint16{3},
		SinkPorts:     []uint16{2},
		CollectorAddr: colHost.Addr,
		ReportWire:    reportWire,
		Sampler:       sampler,
		DomainID:      1,
	})
	return &intTestbed{eng: eng, src: src, dst: dst, sw: sw, agent: agent, collector: collector}
}

func (tb *intTestbed) sendTCP(n int) {
	// Pace packets so bursts fit the egress queues.
	for i := 0; i < n; i++ {
		tb.src.SendAt(netsim.Time(i)*10*netsim.Microsecond, &netsim.Packet{
			Dst: tb.dst.Addr, SrcPort: 40000, DstPort: 80,
			Proto: netsim.TCP, Flags: netsim.FlagSYN, Length: 400,
			Label: true, AttackType: "synflood",
		})
	}
}

func TestAgentEndToEndReport(t *testing.T) {
	tb := newINTTestbed(t, nil)
	var reports []*Report
	tb.collector.OnReport = func(r *Report, at netsim.Time) { reports = append(reports, r) }
	tb.sendTCP(1)
	tb.eng.Run()

	if tb.dst.Received != 1 {
		t.Fatalf("target received %d, want 1", tb.dst.Received)
	}
	if len(reports) != 1 {
		t.Fatalf("collector got %d reports, want 1", len(reports))
	}
	r := reports[0]
	if len(r.Hops) != 2 {
		t.Fatalf("hops = %d, want 2 (double transit through the loop)", len(r.Hops))
	}
	if r.Hops[0].EgressPort != 3 || r.Hops[1].EgressPort != 2 {
		t.Errorf("hop egress ports = %d,%d, want 3,2", r.Hops[0].EgressPort, r.Hops[1].EgressPort)
	}
	if r.Length != 400 {
		t.Errorf("report length = %d, want original 400", r.Length)
	}
	if r.Proto != netsim.TCP || !r.Flags.Has(netsim.FlagSYN) {
		t.Errorf("proto/flags = %v/%v", r.Proto, r.Flags)
	}
	if !r.Truth.Label || r.Truth.AttackType != "synflood" {
		t.Errorf("truth bookkeeping lost: %+v", r.Truth)
	}
}

func TestAgentStripsOverheadBeforeDelivery(t *testing.T) {
	tb := newINTTestbed(t, nil)
	var deliveredLen int
	tb.dst.OnReceive = func(p *netsim.Packet) { deliveredLen = p.Length }
	tb.sendTCP(1)
	tb.eng.Run()
	if deliveredLen != 400 {
		t.Errorf("delivered length = %d, want 400 (INT stripped at sink)", deliveredLen)
	}
	if tb.agent.OverheadB == 0 {
		t.Error("no INT overhead accounted — header was never added")
	}
	// Header once + metadata twice (two hops).
	wantOverhead := int64(HeaderLen + 2*InstAll.BytesPerHop())
	if tb.agent.OverheadB != wantOverhead {
		t.Errorf("overhead = %d, want %d", tb.agent.OverheadB, wantOverhead)
	}
}

func TestAgentEveryPacketInstrumented(t *testing.T) {
	tb := newINTTestbed(t, nil)
	tb.sendTCP(50)
	tb.eng.Run()
	if tb.agent.Instrumented != 50 {
		t.Errorf("instrumented = %d, want 50", tb.agent.Instrumented)
	}
	if tb.collector.Received != 50 {
		t.Errorf("collector received = %d, want 50", tb.collector.Received)
	}
	if tb.collector.SeqGaps != 0 {
		t.Errorf("seq gaps = %d, want 0", tb.collector.SeqGaps)
	}
}

func TestAgentProbabilisticSampling(t *testing.T) {
	tb := newINTTestbed(t, NewProbabilistic(0.25, 7))
	tb.sendTCP(2000)
	tb.eng.Run()
	got := tb.agent.Instrumented
	if got < 400 || got > 600 {
		t.Errorf("instrumented = %d of 2000 at p=0.25, want ≈500", got)
	}
	if tb.collector.Received != got {
		t.Errorf("collector received %d, want %d", tb.collector.Received, got)
	}
	// All packets still delivered regardless of sampling.
	if tb.dst.Received != 2000 {
		t.Errorf("target received %d, want 2000", tb.dst.Received)
	}
}

func TestAgentEveryNthSampling(t *testing.T) {
	tb := newINTTestbed(t, &EveryNth{N: 10})
	tb.sendTCP(100)
	tb.eng.Run()
	if tb.agent.Instrumented != 10 {
		t.Errorf("instrumented = %d, want 10", tb.agent.Instrumented)
	}
}

func TestAgentReportsNotThemselvesInstrumented(t *testing.T) {
	// Reports leave via port 5, which is neither source nor sink; but
	// even if report datagrams crossed a source port they must not be
	// tagged. Simulate by making every port a source port.
	tb := newINTTestbed(t, nil)
	cfgPorts := []uint16{2, 3, 5}
	agent2 := NewAgent(tb.eng, tb.sw, AgentConfig{
		SourcePorts: cfgPorts, SinkPorts: nil,
	})
	tb.sendTCP(5)
	tb.eng.Run()
	// agent2 must not have instrumented the 5 report datagrams (they
	// carry Payload). It may instrument data packets on port 2.
	if agent2.Instrumented > 10 {
		t.Errorf("second agent instrumented %d, suspicious", agent2.Instrumented)
	}
	if tb.collector.DecodeErrors != 0 {
		t.Errorf("decode errors = %d", tb.collector.DecodeErrors)
	}
}

func TestAgentMaxHopsBudget(t *testing.T) {
	eng := netsim.NewEngine()
	src := netsim.NewHost(eng, "src", netip.MustParseAddr("10.0.0.1"))
	dst := netsim.NewHost(eng, "dst", netip.MustParseAddr("10.0.0.2"))
	colHost := netsim.NewHost(eng, "col", netip.MustParseAddr("10.0.0.5"))
	collector := NewCollector(eng)
	colHost.OnReceive = collector.Receive

	sw := netsim.NewSwitch(eng, netsim.DefaultSwitchConfig(1))
	fwd := netsim.NewStaticForwarder()
	// Loop through the switch 4 times: 1→3, 4→5... use ports 1..8.
	fwd.ByIngress[1] = 3
	fwd.ByIngress[4] = 6
	fwd.ByIngress[7] = 8
	sw.Forwarder = fwd
	src.Attach(0, sw.Port(1))
	sw.Connect(3, 0, sw.Port(4))
	sw.Connect(6, 0, sw.Port(7))
	sw.Connect(8, 0, dst)

	wire := netsim.NewLink(eng, 0, colHost)
	agent := NewAgent(eng, sw, AgentConfig{
		SourcePorts: []uint16{3}, SinkPorts: []uint16{8},
		MaxHops: 2, ReportWire: wire, CollectorAddr: colHost.Addr,
	})
	var rep *Report
	collector.OnReport = func(r *Report, _ netsim.Time) { rep = r }
	src.Send(&netsim.Packet{Dst: dst.Addr, Proto: netsim.UDP, Length: 300})
	eng.Run()
	if rep == nil {
		t.Fatal("no report")
	}
	if len(rep.Hops) != 2 {
		t.Errorf("hops = %d, want 2 (MaxHops budget)", len(rep.Hops))
	}
	_ = agent
}

func TestCollectorSeqGapDetection(t *testing.T) {
	eng := netsim.NewEngine()
	c := NewCollector(eng)
	mk := func(seq uint64) *netsim.Packet {
		r := &Report{Seq: seq, Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2")}
		return &netsim.Packet{Payload: r.Encode(InstAll)}
	}
	c.Receive(mk(1))
	c.Receive(mk(2))
	c.Receive(mk(5)) // 3, 4 lost
	if c.SeqGaps != 2 {
		t.Errorf("SeqGaps = %d, want 2", c.SeqGaps)
	}
	if c.Received != 3 {
		t.Errorf("Received = %d, want 3", c.Received)
	}
}

func TestCollectorDecodeErrorCounting(t *testing.T) {
	eng := netsim.NewEngine()
	c := NewCollector(eng)
	c.Receive(&netsim.Packet{Payload: []byte("garbage")})
	if c.DecodeErrors != 1 || c.Received != 0 {
		t.Errorf("errors=%d received=%d, want 1/0", c.DecodeErrors, c.Received)
	}
}
