package telemetry

import (
	"net/netip"
	"testing"

	"github.com/amlight/intddos/internal/netsim"
)

// TestMultiSwitchChain exercises the real source → transit → sink
// division of labour across three separate switches, as in the
// paper's Figure 1 (rather than the testbed's single-switch loop):
// sw1 inserts the header, sw2 pushes transit metadata, sw3 extracts
// and exports.
func TestMultiSwitchChain(t *testing.T) {
	eng := netsim.NewEngine()
	src := netsim.NewHost(eng, "src", netip.MustParseAddr("10.0.0.1"))
	dst := netsim.NewHost(eng, "dst", netip.MustParseAddr("10.0.0.2"))
	colHost := netsim.NewHost(eng, "col", netip.MustParseAddr("10.0.0.5"))
	col := NewCollector(eng)
	colHost.OnReceive = col.Receive

	mk := func(id uint32) *netsim.Switch {
		sw := netsim.NewSwitch(eng, netsim.DefaultSwitchConfig(id))
		fwd := netsim.NewStaticForwarder()
		fwd.ByDst[dst.Addr] = 2
		sw.Forwarder = fwd
		return sw
	}
	sw1, sw2, sw3 := mk(1), mk(2), mk(3)
	src.Attach(netsim.Microsecond, sw1.Port(1))
	sw1.Connect(2, netsim.Microsecond, sw2.Port(1))
	sw2.Connect(2, netsim.Microsecond, sw3.Port(1))
	sw3.Connect(2, netsim.Microsecond, dst)

	wire := netsim.NewLink(eng, netsim.Microsecond, colHost)
	// Source role on sw1 only.
	NewAgent(eng, sw1, AgentConfig{SourcePorts: []uint16{2}})
	// Pure transit on sw2: no source or sink ports; it still pushes
	// metadata for tagged packets.
	NewAgent(eng, sw2, AgentConfig{})
	// Sink role on sw3 exports to the collector.
	sink := NewAgent(eng, sw3, AgentConfig{
		SinkPorts: []uint16{2}, CollectorAddr: colHost.Addr, ReportWire: wire,
	})

	var rep *Report
	col.OnReport = func(r *Report, _ netsim.Time) { rep = r }
	src.Send(&netsim.Packet{Dst: dst.Addr, Proto: netsim.TCP, Flags: netsim.FlagSYN, Length: 400})
	eng.Run()

	if dst.Received != 1 {
		t.Fatalf("delivered = %d", dst.Received)
	}
	if rep == nil {
		t.Fatal("no report at collector")
	}
	if len(rep.Hops) != 3 {
		t.Fatalf("hops = %d, want 3 (one per switch)", len(rep.Hops))
	}
	for i, want := range []uint32{1, 2, 3} {
		if rep.Hops[i].SwitchID != want {
			t.Errorf("hop %d from switch %d, want %d", i, rep.Hops[i].SwitchID, want)
		}
	}
	// Timestamps increase monotonically along the path.
	for i := 1; i < len(rep.Hops); i++ {
		if netsim.WrapDiff(rep.Hops[i-1].EgressTS, rep.Hops[i].IngressTS) <= 0 {
			t.Errorf("hop %d ingress not after hop %d egress", i, i-1)
		}
	}
	if sink.Reports != 1 {
		t.Errorf("sink reports = %d", sink.Reports)
	}
	if rep.Length != 400 {
		t.Errorf("reported length = %d, want original 400", rep.Length)
	}
	// The delivered packet is restored to its original size.
	_ = sw2
}

// TestMultiSwitchChainOverheadGrowsPerHop verifies the wire overhead
// accounting across a chain: header once plus metadata at each hop.
func TestMultiSwitchChainOverheadGrowsPerHop(t *testing.T) {
	eng := netsim.NewEngine()
	src := netsim.NewHost(eng, "src", netip.MustParseAddr("10.0.0.1"))
	dst := netsim.NewHost(eng, "dst", netip.MustParseAddr("10.0.0.2"))

	mk := func(id uint32) *netsim.Switch {
		sw := netsim.NewSwitch(eng, netsim.DefaultSwitchConfig(id))
		fwd := netsim.NewStaticForwarder()
		fwd.ByDst[dst.Addr] = 2
		sw.Forwarder = fwd
		return sw
	}
	sw1, sw2 := mk(1), mk(2)
	src.Attach(0, sw1.Port(1))
	sw1.Connect(2, 0, sw2.Port(1))

	// Capture the packet size on the middle link, after source but
	// before sink.
	var midLen int
	sw2.OnForward = func(p *netsim.Packet, _ netsim.HopRecord, _ uint16) { midLen = p.Length }
	sw2.Connect(2, 0, dst)

	a1 := NewAgent(eng, sw1, AgentConfig{SourcePorts: []uint16{2}})
	src.Send(&netsim.Packet{Dst: dst.Addr, Proto: netsim.UDP, Length: 100})
	eng.Run()

	want := 100 + HeaderLen + InstAll.BytesPerHop()
	if midLen != want {
		t.Errorf("mid-chain length = %d, want %d (payload+header+1 hop)", midLen, want)
	}
	if a1.OverheadB != int64(HeaderLen+InstAll.BytesPerHop()) {
		t.Errorf("source overhead = %d", a1.OverheadB)
	}
}
