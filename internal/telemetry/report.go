package telemetry

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"strconv"

	"github.com/amlight/intddos/internal/netsim"
)

// reportMagic brands the start of a sink→collector report datagram.
const reportMagic uint32 = 0x494E5452 // "INTR"

// Report is the telemetry record the sink switch exports to the INT
// collector for one packet: the IP/transport header fields the
// paper's INT Data Collection module reads, plus the full hop
// metadata stack.
type Report struct {
	// Seq is the sink-assigned report sequence number, used to detect
	// collector-side loss.
	Seq uint64

	// Packet header fields (the paper's packet-level features).
	Src     netip.Addr
	Dst     netip.Addr
	SrcPort uint16
	DstPort uint16
	Proto   netsim.Proto
	Flags   netsim.TCPFlags
	Length  uint16 // original packet length, before INT overhead

	// Hops is the metadata stack in path order (source hop first).
	Hops []HopMetadata

	// Source identifies the transport endpoint the report arrived
	// from (the exporting device's address). It is attached by the
	// receiving collector, NOT serialized: sequence numbers are only
	// meaningful per exporter, so dedup/reorder state must be keyed
	// by source, never shared across interleaved agent streams.
	Source string

	// Truth carries generator ground truth for accounting only; it is
	// NOT serialized — a real collector never sees labels.
	Truth Truth
}

// Truth is label metadata attached in simulation for training and
// evaluation bookkeeping.
type Truth struct {
	Label      bool
	AttackType string
	SentAt     netsim.Time
}

// LastHop returns the sink-side hop (last pushed) and true, or zero
// and false for an empty stack.
func (r *Report) LastHop() (HopMetadata, bool) {
	if len(r.Hops) == 0 {
		return HopMetadata{}, false
	}
	return r.Hops[len(r.Hops)-1], true
}

// FirstHop returns the source-side hop and true, or zero and false.
func (r *Report) FirstHop() (HopMetadata, bool) {
	if len(r.Hops) == 0 {
		return HopMetadata{}, false
	}
	return r.Hops[0], true
}

// SourceKey returns the identity sequence tracking is keyed by: the
// sink switch that assigned the sequence number when the metadata
// stack names one (robust even when several exporters share a relay
// address), the transport source otherwise.
func (r *Report) SourceKey() string {
	if h, ok := r.LastHop(); ok {
		return "sw" + strconv.FormatUint(uint64(h.SwitchID), 10)
	}
	return r.Source
}

// FiveTuple renders the canonical flow identity string, matching
// netsim.Packet.FiveTuple.
func (r *Report) FiveTuple() string {
	return fmt.Sprintf("%s:%d>%s:%d/%s", r.Src, r.SrcPort, r.Dst, r.DstPort, r.Proto)
}

// PathLatency sums wrap-aware per-hop residence times across the
// stack. End-to-end link delays are not visible to INT.
func (r *Report) PathLatency() netsim.Time {
	var total netsim.Time
	for _, h := range r.Hops {
		total += netsim.WrapDiff(h.IngressTS, h.EgressTS)
	}
	return total
}

// Encode serializes the report (without Truth) to wire form using the
// full instruction set layout:
//
//	magic(4) seq(8) src(4) dst(4) sport(2) dport(2) proto(1) flags(1)
//	len(2) hopCount(1) inst(2) hops(inst.BytesPerHop() each)
//
// Only IPv4 addresses are supported, matching the deployment.
func (r *Report) Encode(inst Instruction) []byte {
	buf := make([]byte, 0, 31+len(r.Hops)*inst.BytesPerHop())
	var w8 [8]byte
	binary.BigEndian.PutUint32(w8[:4], reportMagic)
	buf = append(buf, w8[:4]...)
	binary.BigEndian.PutUint64(w8[:], r.Seq)
	buf = append(buf, w8[:]...)
	src := r.Src.As4()
	dst := r.Dst.As4()
	buf = append(buf, src[:]...)
	buf = append(buf, dst[:]...)
	binary.BigEndian.PutUint16(w8[:2], r.SrcPort)
	buf = append(buf, w8[:2]...)
	binary.BigEndian.PutUint16(w8[:2], r.DstPort)
	buf = append(buf, w8[:2]...)
	buf = append(buf, byte(r.Proto), byte(r.Flags))
	binary.BigEndian.PutUint16(w8[:2], r.Length)
	buf = append(buf, w8[:2]...)
	buf = append(buf, byte(len(r.Hops)))
	binary.BigEndian.PutUint16(w8[:2], uint16(inst))
	buf = append(buf, w8[:2]...)
	for _, h := range r.Hops {
		buf = EncodeHop(buf, inst, h)
	}
	return buf
}

// DecodeReport parses a wire-form report produced by Encode.
func DecodeReport(buf []byte) (*Report, error) {
	if len(buf) < 31 {
		return nil, ErrShortBuffer
	}
	if binary.BigEndian.Uint32(buf[:4]) != reportMagic {
		return nil, fmt.Errorf("telemetry: bad report magic %#x", binary.BigEndian.Uint32(buf[:4]))
	}
	r := &Report{}
	r.Seq = binary.BigEndian.Uint64(buf[4:12])
	r.Src = netip.AddrFrom4([4]byte(buf[12:16]))
	r.Dst = netip.AddrFrom4([4]byte(buf[16:20]))
	r.SrcPort = binary.BigEndian.Uint16(buf[20:22])
	r.DstPort = binary.BigEndian.Uint16(buf[22:24])
	r.Proto = netsim.Proto(buf[24])
	r.Flags = netsim.TCPFlags(buf[25])
	r.Length = binary.BigEndian.Uint16(buf[26:28])
	hopCount := int(buf[28])
	inst := Instruction(binary.BigEndian.Uint16(buf[29:31]))
	rest := buf[31:]
	r.Hops = make([]HopMetadata, 0, hopCount)
	for i := 0; i < hopCount; i++ {
		var (
			h   HopMetadata
			err error
		)
		h, rest, err = DecodeHop(rest, inst)
		if err != nil {
			return nil, fmt.Errorf("telemetry: hop %d: %w", i, err)
		}
		r.Hops = append(r.Hops, h)
	}
	return r, nil
}
