package telemetry

import (
	"errors"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/obs"
)

// NetCollector is a real INT collector: it terminates report
// datagrams on a UDP socket — the same wire format the sink switch
// exports in simulation — and hands decoded reports to a subscriber.
// It is the ingestion point for running the detection pipeline
// against an actual telemetry feed instead of the simulator.
type NetCollector struct {
	conn *net.UDPConn

	// OnReport receives each decoded report with the wall-clock
	// arrival time (nanoseconds, in the repository's Time domain).
	// Called from the receive goroutine; keep it fast or hand off.
	OnReport func(r *Report, at netsim.Time)

	// MaxDatagram bounds the receive buffer (default 64 KiB).
	MaxDatagram int

	// ReadRetries bounds how many consecutive non-timeout read errors
	// the loop tolerates, with exponential backoff between attempts,
	// before giving up on the socket (default 5; negative: none). A
	// transient kernel error (ECONNREFUSED from a previous send, a
	// momentary buffer condition) no longer kills the collector.
	ReadRetries int
	// ReadRetryBackoff is the initial delay after a failed read,
	// doubling per consecutive failure (default 10ms) up to
	// ReadRetryMax (default 1s).
	ReadRetryBackoff time.Duration
	ReadRetryMax     time.Duration

	quit chan struct{}
	wg   sync.WaitGroup

	// Stats (atomics: safe to read while running).
	Received     atomic.Int64
	DecodeErrors atomic.Int64
	ReadErrors   atomic.Int64
}

// ListenReports opens a UDP socket on addr ("127.0.0.1:0" picks a
// free port). Call Start to begin receiving and Close to stop.
func ListenReports(addr string) (*NetCollector, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.ListenUDP("udp", ua)
	if err != nil {
		return nil, err
	}
	return &NetCollector{
		conn:             conn,
		MaxDatagram:      64 << 10,
		ReadRetries:      5,
		ReadRetryBackoff: 10 * time.Millisecond,
		quit:             make(chan struct{}),
	}, nil
}

// Addr returns the bound address (useful with port 0).
func (c *NetCollector) Addr() net.Addr { return c.conn.LocalAddr() }

// Instrument exposes the collector's receive statistics on reg. The
// existing atomics back the counters directly, so Instrument can be
// called before or after Start.
func (c *NetCollector) Instrument(reg *obs.Registry) {
	reg.CounterFunc("intddos_telemetry_reports_received_total", func() float64 {
		return float64(c.Received.Load())
	})
	reg.CounterFunc("intddos_telemetry_report_decode_errors_total", func() float64 {
		return float64(c.DecodeErrors.Load())
	})
	reg.CounterFunc("intddos_collector_read_errors", func() float64 {
		return float64(c.ReadErrors.Load())
	})
}

// Start launches the receive loop.
func (c *NetCollector) Start() {
	c.wg.Add(1)
	go c.loop()
}

// loop receives and decodes datagrams until Close. Timeouts are the
// idle path (the read deadline exists to observe quit); other read
// errors are counted and retried with exponential backoff up to
// ReadRetries consecutive failures before the loop gives up.
func (c *NetCollector) loop() {
	defer c.wg.Done()
	buf := make([]byte, c.MaxDatagram)
	consecErrs := 0
	for {
		// A read deadline lets the loop observe quit promptly. A
		// deadline that cannot be set means the socket is broken — and
		// without one the read below could block forever — so the
		// failure joins the read-error/retry path instead of being
		// ignored.
		err := c.conn.SetReadDeadline(time.Now().Add(250 * time.Millisecond))
		var n int
		var raddr *net.UDPAddr
		if err == nil {
			n, raddr, err = c.conn.ReadFromUDP(buf)
		}
		select {
		case <-c.quit:
			return
		default:
		}
		if err != nil {
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				continue
			}
			c.ReadErrors.Add(1)
			if consecErrs >= c.ReadRetries {
				return
			}
			consecErrs++
			timer := time.NewTimer(retryDelay(c.ReadRetryBackoff, c.ReadRetryMax, consecErrs))
			select {
			case <-c.quit:
				timer.Stop()
				return
			case <-timer.C:
			}
			continue
		}
		consecErrs = 0
		rep, derr := DecodeReport(buf[:n])
		if derr != nil {
			c.DecodeErrors.Add(1)
			continue
		}
		// Stamp the exporter's transport identity so downstream
		// sequence tracking is keyed per source, never shared across
		// interleaved agent streams.
		if raddr != nil {
			rep.Source = raddr.String()
		}
		c.Received.Add(1)
		if c.OnReport != nil {
			c.OnReport(rep, netsim.Time(time.Now().UnixNano()))
		}
	}
}

// retryDelay returns the backoff before the n-th consecutive retry
// (n ≥ 1): base doubled per prior failure, clamped to max. Doubling by
// repeated shift-by-one with the clamp inside the loop keeps a large
// retry budget (ReadRetries of 64 or more) from shifting the duration
// past 63 bits — `base << 63` is zero or negative, which would turn
// the backoff into a hot spin exactly when the socket is sickest.
func retryDelay(base, max time.Duration, n int) time.Duration {
	if base <= 0 {
		base = 10 * time.Millisecond
	}
	if max <= 0 {
		max = time.Second
	}
	if base >= max {
		return max
	}
	d := base
	for i := 1; i < n && d < max; i++ {
		d <<= 1
	}
	if d > max || d <= 0 {
		d = max
	}
	return d
}

// Close stops the receive loop and releases the socket.
func (c *NetCollector) Close() error {
	close(c.quit)
	err := c.conn.Close()
	c.wg.Wait()
	return err
}

// ReportSender ships encoded reports to a collector over UDP — the
// sink-switch side of a real deployment, and the test harness for
// NetCollector.
type ReportSender struct {
	conn *net.UDPConn
	inst Instruction
}

// DialReports connects a sender to a collector address, encoding hop
// metadata with the given instruction set (0 selects InstAll).
func DialReports(addr string, inst Instruction) (*ReportSender, error) {
	ua, err := net.ResolveUDPAddr("udp", addr)
	if err != nil {
		return nil, err
	}
	conn, err := net.DialUDP("udp", nil, ua)
	if err != nil {
		return nil, err
	}
	if inst == 0 {
		inst = InstAll
	}
	return &ReportSender{conn: conn, inst: inst}, nil
}

// Send encodes and transmits one report.
func (s *ReportSender) Send(r *Report) error {
	_, err := s.conn.Write(r.Encode(s.inst))
	return err
}

// Close releases the socket.
func (s *ReportSender) Close() error { return s.conn.Close() }
