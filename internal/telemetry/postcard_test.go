package telemetry

import (
	"net/netip"
	"testing"

	"github.com/amlight/intddos/internal/netsim"
)

// postcardTestbed wires the Figure 6 loop with a configurable INT
// mode and a tiny queue on the target-facing port so overload drops
// packets between the two monitored hops.
func postcardTestbed(t *testing.T, mode Mode, port2Cap int) (*netsim.Engine, *netsim.Host, *netsim.Host, *Agent, *Collector) {
	t.Helper()
	eng := netsim.NewEngine()
	src := netsim.NewHost(eng, "src", netip.MustParseAddr("10.0.0.1"))
	dst := netsim.NewHost(eng, "dst", netip.MustParseAddr("10.0.0.2"))
	colHost := netsim.NewHost(eng, "col", netip.MustParseAddr("10.0.0.5"))
	col := NewCollector(eng)
	colHost.OnReceive = col.Receive

	cfg := netsim.DefaultSwitchConfig(1)
	cfg.QueueCapPackets = port2Cap
	sw := netsim.NewSwitch(eng, cfg)
	fwd := netsim.NewStaticForwarder()
	fwd.ByIngress[1] = 3
	fwd.ByIngress[4] = 2
	sw.Forwarder = fwd
	src.Attach(0, sw.Port(1))
	sw.Connect(3, 0, sw.Port(4))
	sw.Connect(2, 0, dst)

	agent := NewAgent(eng, sw, AgentConfig{
		Mode:          mode,
		SourcePorts:   []uint16{3},
		SinkPorts:     []uint16{2},
		CollectorAddr: colHost.Addr,
		ReportWire:    netsim.NewLink(eng, 0, colHost),
	})
	return eng, src, dst, agent, col
}

func TestPostcardExportsPerHop(t *testing.T) {
	eng, src, dst, agent, col := postcardTestbed(t, ModePostcard, 512)
	var hopCounts []int
	col.OnReport = func(r *Report, _ netsim.Time) { hopCounts = append(hopCounts, len(r.Hops)) }
	src.Send(&netsim.Packet{Dst: dst.Addr, Proto: netsim.TCP, Length: 500})
	eng.Run()
	// Two monitored egresses → two single-hop reports.
	if len(hopCounts) != 2 {
		t.Fatalf("reports = %d, want 2", len(hopCounts))
	}
	for i, n := range hopCounts {
		if n != 1 {
			t.Errorf("report %d has %d hops, want 1", i, n)
		}
	}
	if agent.OverheadB != 0 {
		t.Errorf("postcard added %d bytes to data packets, want 0", agent.OverheadB)
	}
	if dst.Received != 1 {
		t.Errorf("delivered = %d", dst.Received)
	}
}

func TestPostcardNoInPacketState(t *testing.T) {
	eng, src, dst, _, _ := postcardTestbed(t, ModePostcard, 512)
	var deliveredLen int
	var aux any
	dst.OnReceive = func(p *netsim.Packet) { deliveredLen = p.Length; aux = p.Aux }
	src.Send(&netsim.Packet{Dst: dst.Addr, Proto: netsim.TCP, Length: 321})
	eng.Run()
	if deliveredLen != 321 {
		t.Errorf("delivered length = %d, want 321 untouched", deliveredLen)
	}
	if aux != nil {
		t.Error("postcard left state attached to the packet")
	}
}

// TestPostcardSurvivesDownstreamLoss is the mode's headline property:
// when the sink-facing queue drops packets, embed mode loses their
// entire telemetry while postcard mode keeps the upstream hop's view.
func TestPostcardSurvivesDownstreamLoss(t *testing.T) {
	const n = 60
	burst := func(eng *netsim.Engine, src *netsim.Host, dst *netsim.Host) {
		for i := 0; i < n; i++ {
			src.Send(&netsim.Packet{Dst: dst.Addr, Proto: netsim.TCP, Length: 1500})
		}
		eng.Run()
	}

	engE, srcE, dstE, _, colE := postcardTestbed(t, ModeEmbed, 8)
	burst(engE, srcE, dstE)
	engP, srcP, dstP, _, colP := postcardTestbed(t, ModePostcard, 8)
	burst(engP, srcP, dstP)

	if dstE.Received >= n {
		t.Fatal("no loss induced — queue cap too large for the test")
	}
	// Embed: one report per *delivered* packet.
	if colE.Received != dstE.Received {
		t.Errorf("embed reports = %d, delivered = %d", colE.Received, dstE.Received)
	}
	// Postcard: the first hop (port 3) saw every packet, so reports
	// exceed deliveries.
	if colP.Received <= dstP.Received {
		t.Errorf("postcard reports = %d not above deliveries %d", colP.Received, dstP.Received)
	}
	if colP.Received <= colE.Received {
		t.Errorf("postcard (%d) should out-report embed (%d) under loss", colP.Received, colE.Received)
	}
}

func TestPostcardIgnoresUnmonitoredPorts(t *testing.T) {
	eng := netsim.NewEngine()
	src := netsim.NewHost(eng, "src", netip.MustParseAddr("10.0.0.1"))
	dst := netsim.NewHost(eng, "dst", netip.MustParseAddr("10.0.0.2"))
	sw := netsim.NewSwitch(eng, netsim.DefaultSwitchConfig(1))
	fwd := netsim.NewStaticForwarder()
	fwd.ByDst[dst.Addr] = 2
	sw.Forwarder = fwd
	src.Attach(0, sw.Port(1))
	sw.Connect(2, 0, dst)
	agent := NewAgent(eng, sw, AgentConfig{
		Mode:        ModePostcard,
		SourcePorts: []uint16{7}, // not on the path
	})
	src.Send(&netsim.Packet{Dst: dst.Addr, Proto: netsim.UDP, Length: 100})
	eng.Run()
	if agent.Reports != 0 {
		t.Errorf("unmonitored egress produced %d reports", agent.Reports)
	}
}
