package telemetry

import (
	"net/netip"
	"testing"

	"github.com/amlight/intddos/internal/netsim"
)

func sampleReport() *Report {
	return &Report{
		Seq:     42,
		Src:     netip.MustParseAddr("192.0.2.1"),
		Dst:     netip.MustParseAddr("198.51.100.7"),
		SrcPort: 51234,
		DstPort: 80,
		Proto:   netsim.TCP,
		Flags:   netsim.FlagSYN,
		Length:  1500,
		Hops: []HopMetadata{
			{SwitchID: 1, IngressPort: 1, EgressPort: 3, HopLatency: 900, QueueDepth: 4, IngressTS: 1000, EgressTS: 1900},
			{SwitchID: 1, IngressPort: 4, EgressPort: 2, HopLatency: 700, QueueDepth: 2, IngressTS: 2500, EgressTS: 3200},
		},
	}
}

func TestReportRoundTrip(t *testing.T) {
	r := sampleReport()
	buf := r.Encode(InstAll)
	got, err := DecodeReport(buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != r.Seq || got.Src != r.Src || got.Dst != r.Dst ||
		got.SrcPort != r.SrcPort || got.DstPort != r.DstPort ||
		got.Proto != r.Proto || got.Flags != r.Flags || got.Length != r.Length {
		t.Errorf("header fields differ: got %+v", got)
	}
	if len(got.Hops) != 2 {
		t.Fatalf("hops = %d, want 2", len(got.Hops))
	}
	for i := range r.Hops {
		if got.Hops[i] != r.Hops[i] {
			t.Errorf("hop %d = %+v, want %+v", i, got.Hops[i], r.Hops[i])
		}
	}
}

func TestReportDecodeErrors(t *testing.T) {
	if _, err := DecodeReport(nil); err == nil {
		t.Error("nil buffer accepted")
	}
	buf := sampleReport().Encode(InstAll)
	buf[0] = 'X'
	if _, err := DecodeReport(buf); err == nil {
		t.Error("bad magic accepted")
	}
	good := sampleReport().Encode(InstAll)
	if _, err := DecodeReport(good[:len(good)-5]); err == nil {
		t.Error("truncated hop stack accepted")
	}
}

func TestReportFiveTupleMatchesPacket(t *testing.T) {
	r := sampleReport()
	p := &netsim.Packet{
		Src: r.Src, Dst: r.Dst, SrcPort: r.SrcPort, DstPort: r.DstPort, Proto: r.Proto,
	}
	if r.FiveTuple() != p.FiveTuple() {
		t.Errorf("report five-tuple %q != packet five-tuple %q", r.FiveTuple(), p.FiveTuple())
	}
}

func TestReportPathLatencyWrapAware(t *testing.T) {
	r := &Report{Hops: []HopMetadata{
		{IngressTS: 0xFFFFFF00, EgressTS: 0x00000100}, // crosses the wrap: 0x200 ns
		{IngressTS: 1000, EgressTS: 1500},             // 500 ns
	}}
	if got := r.PathLatency(); got != 0x200+500 {
		t.Errorf("PathLatency = %d, want %d", got, 0x200+500)
	}
}

func TestReportHopAccessors(t *testing.T) {
	r := sampleReport()
	first, ok := r.FirstHop()
	if !ok || first.IngressTS != 1000 {
		t.Errorf("FirstHop = %+v ok=%v", first, ok)
	}
	last, ok := r.LastHop()
	if !ok || last.IngressTS != 2500 {
		t.Errorf("LastHop = %+v ok=%v", last, ok)
	}
	empty := &Report{}
	if _, ok := empty.FirstHop(); ok {
		t.Error("FirstHop on empty stack reported ok")
	}
	if _, ok := empty.LastHop(); ok {
		t.Error("LastHop on empty stack reported ok")
	}
}

func TestReportTruthNotSerialized(t *testing.T) {
	r := sampleReport()
	r.Truth = Truth{Label: true, AttackType: "synflood"}
	got, err := DecodeReport(r.Encode(InstAll))
	if err != nil {
		t.Fatal(err)
	}
	if got.Truth.Label || got.Truth.AttackType != "" {
		t.Error("ground-truth labels leaked onto the wire")
	}
}
