package telemetry

import (
	"fmt"
	"net/netip"
	"testing"

	"github.com/amlight/intddos/internal/netsim"
)

func TestSeqTrackerInOrder(t *testing.T) {
	tr := NewSeqTracker(8, 0)
	for seq := uint64(1); seq <= 100; seq++ {
		res := tr.Observe("a", seq)
		if res.Verdict != SeqAccept || res.Gaps != 0 {
			t.Fatalf("seq %d: %+v, want clean accept", seq, res)
		}
	}
}

func TestSeqTrackerDuplicateAndReorder(t *testing.T) {
	tr := NewSeqTracker(8, 0)
	tr.Observe("a", 1)
	tr.Observe("a", 2)
	if res := tr.Observe("a", 2); res.Verdict != SeqDuplicate {
		t.Errorf("repeat of newest = %v, want duplicate", res.Verdict)
	}
	res := tr.Observe("a", 5) // 3, 4 provisionally lost
	if res.Verdict != SeqAccept || res.Gaps != 2 {
		t.Errorf("jump = %+v, want accept with 2 gaps", res)
	}
	res = tr.Observe("a", 3) // late arrival heals one
	if res.Verdict != SeqReordered || !res.Healed {
		t.Errorf("late 3 = %+v, want reordered+healed", res)
	}
	if res := tr.Observe("a", 3); res.Verdict != SeqDuplicate {
		t.Errorf("repeat of reordered = %v, want duplicate", res.Verdict)
	}
	if res := tr.Observe("a", 4); res.Verdict != SeqReordered || !res.Healed {
		t.Errorf("late 4 = %+v, want reordered+healed", res)
	}
}

func TestSeqTrackerStaleBeyondWindow(t *testing.T) {
	tr := NewSeqTracker(8, 0)
	tr.Observe("a", 1)
	tr.Observe("a", 50) // within reset jump; 48 provisional gaps
	if res := tr.Observe("a", 42); res.Verdict != SeqStale {
		t.Errorf("seq 42 at highest 50, window 8 = %v, want stale", res.Verdict)
	}
	if res := tr.Observe("a", 43); res.Verdict != SeqReordered {
		t.Errorf("seq 43 (window edge) = %v, want reordered", res.Verdict)
	}
}

func TestSeqTrackerPerSourceIndependence(t *testing.T) {
	tr := NewSeqTracker(8, 0)
	// Two interleaved in-order streams: no gaps, no reorders.
	for seq := uint64(1); seq <= 50; seq++ {
		for _, src := range []string{"a", "b"} {
			res := tr.Observe(src, seq)
			if res.Verdict != SeqAccept || res.Gaps != 0 {
				t.Fatalf("%s/%d: %+v, want clean accept", src, seq, res)
			}
		}
	}
	if tr.SourceCount() != 2 {
		t.Errorf("sources = %d, want 2", tr.SourceCount())
	}
}

func TestSeqTrackerStreamReset(t *testing.T) {
	tr := NewSeqTracker(8, 0)
	tr.Observe("a", 100000)
	res := tr.Observe("a", 1) // agent restart: seq re-zeroed
	if res.Verdict != SeqStale {
		t.Fatalf("restart low seq = %v, want stale (backward)", res.Verdict)
	}
	// Forward jumps beyond the reset threshold re-seed instead of
	// inferring a million losses.
	res = tr.Observe("a", 200000)
	if res.Verdict != SeqAccept || res.Gaps != 0 {
		t.Fatalf("huge forward jump = %+v, want reset accept with 0 gaps", res)
	}
	if tr.Resets() != 1 {
		t.Errorf("resets = %d, want 1", tr.Resets())
	}
}

func TestSeqTrackerBoundedSources(t *testing.T) {
	tr := NewSeqTracker(8, 16)
	for i := 0; i < 100; i++ {
		tr.Observe(fmt.Sprintf("src-%d", i), 1)
	}
	if tr.SourceCount() > 16 {
		t.Errorf("sources = %d, want <= 16", tr.SourceCount())
	}
	if tr.Evictions() != 100-16 {
		t.Errorf("evictions = %d, want %d", tr.Evictions(), 100-16)
	}
	// The most recently active source survives eviction pressure.
	res := tr.Observe("src-99", 2)
	if res.Verdict != SeqAccept || res.Gaps != 0 {
		t.Errorf("hot source lost its state: %+v", res)
	}
}

// TestCollectorInterleavedAgentsNoFalseGaps is the regression test
// for the shared-lastSeq bug: two agents exporting independent
// sequence streams into one collector must produce zero inferred
// gaps, where the old single-lastSeq accounting inflated SeqGaps on
// every interleaving.
func TestCollectorInterleavedAgentsNoFalseGaps(t *testing.T) {
	eng := netsim.NewEngine()
	c := NewCollector(eng)
	var accepted int
	c.OnReport = func(*Report, netsim.Time) { accepted++ }
	mk := func(sw uint32, seq uint64) *netsim.Packet {
		r := &Report{
			Seq: seq,
			Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2"),
			Hops: []HopMetadata{{SwitchID: sw}},
		}
		return &netsim.Packet{Payload: r.Encode(InstAll)}
	}
	// Interleave two in-order exporter streams, switch IDs 1 and 2.
	const n = 200
	for seq := uint64(1); seq <= n; seq++ {
		c.Receive(mk(1, seq))
		c.Receive(mk(2, seq))
	}
	if c.SeqGaps != 0 {
		t.Errorf("SeqGaps = %d on two clean interleaved streams, want 0", c.SeqGaps)
	}
	if c.Duplicates != 0 || c.Stale != 0 || c.Reordered != 0 {
		t.Errorf("dup/stale/reordered = %d/%d/%d, want 0/0/0", c.Duplicates, c.Stale, c.Reordered)
	}
	if accepted != 2*n || c.Accepted() != 2*n {
		t.Errorf("accepted %d (ledger %d), want %d", accepted, c.Accepted(), 2*n)
	}
	if c.Sources() != 2 {
		t.Errorf("tracked sources = %d, want 2", c.Sources())
	}
}

func TestCollectorSuppressesDuplicatesAndStale(t *testing.T) {
	eng := netsim.NewEngine()
	c := NewCollector(eng)
	c.ReorderWindow = 4
	var accepted []uint64
	c.OnReport = func(r *Report, _ netsim.Time) { accepted = append(accepted, r.Seq) }
	mk := func(seq uint64) *netsim.Packet {
		r := &Report{Seq: seq, Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2"),
			Hops: []HopMetadata{{SwitchID: 7}}}
		return &netsim.Packet{Payload: r.Encode(InstAll)}
	}
	for _, seq := range []uint64{1, 2, 2, 10, 9, 9, 3, 10} {
		c.Receive(mk(seq))
	}
	// 2(dup), 3(stale: 10-3 >= 4), second 9 (dup), second 10 (dup).
	if c.Duplicates != 3 {
		t.Errorf("Duplicates = %d, want 3", c.Duplicates)
	}
	if c.Stale != 1 {
		t.Errorf("Stale = %d, want 1", c.Stale)
	}
	if c.Reordered != 1 || c.Healed != 1 {
		t.Errorf("Reordered/Healed = %d/%d, want 1/1", c.Reordered, c.Healed)
	}
	want := []uint64{1, 2, 10, 9}
	if len(accepted) != len(want) {
		t.Fatalf("accepted %v, want %v", accepted, want)
	}
	for i := range want {
		if accepted[i] != want[i] {
			t.Fatalf("accepted %v, want %v", accepted, want)
		}
	}
	if c.Accepted() != len(want) {
		t.Errorf("Accepted() = %d, want %d", c.Accepted(), len(want))
	}
}
