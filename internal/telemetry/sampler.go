package telemetry

import (
	"math/rand"

	"github.com/amlight/intddos/internal/netsim"
)

// Sampler decides which packets the INT source instruments. The
// AmLight deployment instruments every packet; probabilistic and
// every-Nth samplers implement the PINT-style overhead reductions the
// paper cites as future work ([30], [31]).
type Sampler interface {
	// Sample reports whether p should carry INT.
	Sample(p *netsim.Packet) bool
}

// AllPackets instruments every packet (the paper's deployment mode).
type AllPackets struct{}

// Sample implements Sampler.
func (AllPackets) Sample(*netsim.Packet) bool { return true }

// Probabilistic instruments each packet independently with
// probability P, using a seeded source for reproducibility.
type Probabilistic struct {
	P   float64
	rng *rand.Rand
}

// NewProbabilistic builds a sampler selecting packets with probability
// p from a deterministic seed.
func NewProbabilistic(p float64, seed int64) *Probabilistic {
	return &Probabilistic{P: p, rng: rand.New(rand.NewSource(seed))}
}

// Sample implements Sampler.
func (s *Probabilistic) Sample(*netsim.Packet) bool { return s.rng.Float64() < s.P }

// EveryNth instruments one packet in every N, counter-based, matching
// the mechanism sFlow uses but applied to INT insertion.
type EveryNth struct {
	N     int
	count int
}

// Sample implements Sampler.
func (s *EveryNth) Sample(*netsim.Packet) bool {
	s.count++
	if s.count >= s.N {
		s.count = 0
		return true
	}
	return false
}
