// Package telemetry implements In-band Network Telemetry (INT) over
// the netsim fabric: an INT-MD style header and per-hop metadata wire
// format, source/transit/sink switch roles, telemetry reports, and a
// collector. It reproduces the paper's Figure 1 data path — the
// source switch inserts an INT header naming the telemetry to gather,
// transit switches push hop metadata, and the sink extracts the stack
// and exports it to the INT collector.
//
// Timestamps are truncated to 32-bit nanoseconds exactly as Tofino
// hardware exports them, reproducing the ~4.3 s wraparound limitation
// the paper discusses in §V.
package telemetry

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/amlight/intddos/internal/netsim"
)

// Instruction is the INT instruction bitmap: which metadata each hop
// must push. Bit positions follow the INT v2.1 spec ordering for the
// fields the paper consumes.
type Instruction uint16

// Instruction bits.
const (
	InstSwitchID  Instruction = 1 << 15 // node id
	InstPorts     Instruction = 1 << 14 // level-1 ingress/egress port ids
	InstHopLat    Instruction = 1 << 13 // hop latency
	InstQueue     Instruction = 1 << 12 // queue id + occupancy
	InstIngressTS Instruction = 1 << 11 // ingress timestamp
	InstEgressTS  Instruction = 1 << 10 // egress timestamp
)

// InstAll requests every metadata field the paper's deployment
// collects (queue occupancy, ingress time, egress time) plus the
// identification fields.
const InstAll = InstSwitchID | InstPorts | InstHopLat | InstQueue | InstIngressTS | InstEgressTS

// Has reports whether all bits of mask are requested.
func (i Instruction) Has(mask Instruction) bool { return i&mask == mask }

// WordsPerHop returns the per-hop metadata length in 4-byte words for
// this instruction set.
func (i Instruction) WordsPerHop() int {
	n := 0
	for _, bit := range []Instruction{InstSwitchID, InstPorts, InstHopLat, InstQueue, InstIngressTS, InstEgressTS} {
		if i.Has(bit) {
			n++
		}
	}
	return n
}

// BytesPerHop returns the per-hop metadata length in bytes.
func (i Instruction) BytesPerHop() int { return 4 * i.WordsPerHop() }

// Version is the INT header version this implementation encodes.
const Version = 2

// HeaderLen is the fixed INT-MD shim+header length in bytes.
const HeaderLen = 12

// Header is the INT-MD header inserted by the source switch.
type Header struct {
	Version      uint8
	HopML        uint8 // per-hop metadata length in 4-byte words
	RemainingHop uint8 // hops still allowed to push metadata
	Instructions Instruction
	DomainID     uint32 // observation domain
}

// HopMetadata is one hop's pushed telemetry, after decoding. Fields
// not requested by the instruction bitmap are zero.
type HopMetadata struct {
	SwitchID    uint32
	IngressPort uint16
	EgressPort  uint16
	HopLatency  uint32 // ns
	QueueID     uint8
	QueueDepth  uint32 // packets; Tofino reports cells, the paper uses depth
	IngressTS   netsim.Timestamp32
	EgressTS    netsim.Timestamp32
}

// Errors returned by decoding.
var (
	ErrShortBuffer = errors.New("telemetry: buffer too short")
	ErrBadVersion  = errors.New("telemetry: unsupported INT version")
	ErrBadHopML    = errors.New("telemetry: hop metadata length mismatch")
)

// EncodeHeader appends the wire form of h to dst and returns the
// extended slice.
func EncodeHeader(dst []byte, h Header) []byte {
	var b [HeaderLen]byte
	b[0] = h.Version << 4
	b[1] = 0 // flags: no discard, no exceeded
	b[2] = h.HopML
	b[3] = h.RemainingHop
	binary.BigEndian.PutUint16(b[4:6], uint16(h.Instructions))
	binary.BigEndian.PutUint32(b[8:12], h.DomainID)
	return append(dst, b[:]...)
}

// DecodeHeader parses an INT header from the front of buf, returning
// the header and the remaining bytes.
func DecodeHeader(buf []byte) (Header, []byte, error) {
	if len(buf) < HeaderLen {
		return Header{}, nil, ErrShortBuffer
	}
	h := Header{
		Version:      buf[0] >> 4,
		HopML:        buf[2],
		RemainingHop: buf[3],
		Instructions: Instruction(binary.BigEndian.Uint16(buf[4:6])),
		DomainID:     binary.BigEndian.Uint32(buf[8:12]),
	}
	if h.Version != Version {
		return Header{}, nil, fmt.Errorf("%w: %d", ErrBadVersion, h.Version)
	}
	if int(h.HopML) != h.Instructions.WordsPerHop() {
		return Header{}, nil, ErrBadHopML
	}
	return h, buf[HeaderLen:], nil
}

// EncodeHop appends one hop's metadata, honouring the instruction
// bitmap's field order (most significant bit first, per the spec).
func EncodeHop(dst []byte, inst Instruction, m HopMetadata) []byte {
	var w [4]byte
	if inst.Has(InstSwitchID) {
		binary.BigEndian.PutUint32(w[:], m.SwitchID)
		dst = append(dst, w[:]...)
	}
	if inst.Has(InstPorts) {
		binary.BigEndian.PutUint16(w[:2], m.IngressPort)
		binary.BigEndian.PutUint16(w[2:], m.EgressPort)
		dst = append(dst, w[:]...)
	}
	if inst.Has(InstHopLat) {
		binary.BigEndian.PutUint32(w[:], m.HopLatency)
		dst = append(dst, w[:]...)
	}
	if inst.Has(InstQueue) {
		binary.BigEndian.PutUint32(w[:], uint32(m.QueueID)<<24|m.QueueDepth&0x00FFFFFF)
		dst = append(dst, w[:]...)
	}
	if inst.Has(InstIngressTS) {
		binary.BigEndian.PutUint32(w[:], uint32(m.IngressTS))
		dst = append(dst, w[:]...)
	}
	if inst.Has(InstEgressTS) {
		binary.BigEndian.PutUint32(w[:], uint32(m.EgressTS))
		dst = append(dst, w[:]...)
	}
	return dst
}

// DecodeHop parses one hop's metadata from buf according to inst,
// returning the metadata and the remaining bytes.
func DecodeHop(buf []byte, inst Instruction) (HopMetadata, []byte, error) {
	need := inst.BytesPerHop()
	if len(buf) < need {
		return HopMetadata{}, nil, ErrShortBuffer
	}
	var m HopMetadata
	off := 0
	next := func() []byte { b := buf[off : off+4]; off += 4; return b }
	if inst.Has(InstSwitchID) {
		m.SwitchID = binary.BigEndian.Uint32(next())
	}
	if inst.Has(InstPorts) {
		b := next()
		m.IngressPort = binary.BigEndian.Uint16(b[:2])
		m.EgressPort = binary.BigEndian.Uint16(b[2:])
	}
	if inst.Has(InstHopLat) {
		m.HopLatency = binary.BigEndian.Uint32(next())
	}
	if inst.Has(InstQueue) {
		v := binary.BigEndian.Uint32(next())
		m.QueueID = uint8(v >> 24)
		m.QueueDepth = v & 0x00FFFFFF
	}
	if inst.Has(InstIngressTS) {
		m.IngressTS = netsim.Timestamp32(binary.BigEndian.Uint32(next()))
	}
	if inst.Has(InstEgressTS) {
		m.EgressTS = netsim.Timestamp32(binary.BigEndian.Uint32(next()))
	}
	return m, buf[off:], nil
}

// HopFromRecord converts a simulator ground-truth hop record into the
// metadata a real INT hop would push, truncating timestamps to the
// 32-bit hardware domain.
func HopFromRecord(h netsim.HopRecord) HopMetadata {
	return HopMetadata{
		SwitchID:    h.SwitchID,
		IngressPort: h.IngressPort,
		EgressPort:  h.EgressPort,
		HopLatency:  uint32(h.EgressTime - h.IngressTime),
		QueueDepth:  uint32(h.QueueDepth),
		IngressTS:   netsim.Wrap32(h.IngressTime),
		EgressTS:    netsim.Wrap32(h.EgressTime),
	}
}
