package telemetry

import "github.com/amlight/intddos/internal/netsim"

// Microburst is one detected queue-buildup event: a contiguous run of
// telemetry reports whose queue occupancy stays at or above the
// detector threshold.
type Microburst struct {
	SwitchID  uint32
	Start     netsim.Time // collector time of the first hot report
	End       netsim.Time // collector time of the last hot report
	PeakDepth uint32
	Packets   int // reports inside the burst
}

// Duration returns the burst length as observed at the collector.
func (m Microburst) Duration() netsim.Time { return m.End - m.Start }

// MicroburstDetector reproduces AmLight's per-packet-telemetry
// microburst detection (Bezerra et al., NOMS 2023), the paper's
// reference [8]: it watches the queue-occupancy stream from INT
// reports and coalesces above-threshold runs into burst events.
// It is an extension module — the DDoS paper builds on the same
// telemetry feed.
type MicroburstDetector struct {
	// Threshold is the queue depth (packets) that marks congestion.
	Threshold uint32
	// Quiet closes a burst after this long without a hot report.
	Quiet netsim.Time
	// OnBurst fires when a burst closes.
	OnBurst func(Microburst)

	open   map[uint32]*Microburst // per switch
	Bursts []Microburst
}

// NewMicroburstDetector builds a detector with the given threshold
// and quiet period.
func NewMicroburstDetector(threshold uint32, quiet netsim.Time) *MicroburstDetector {
	return &MicroburstDetector{
		Threshold: threshold,
		Quiet:     quiet,
		open:      make(map[uint32]*Microburst),
	}
}

// Observe consumes one telemetry report at collector time at. Hook it
// to Collector.OnReport (possibly chained with other consumers).
func (d *MicroburstDetector) Observe(r *Report, at netsim.Time) {
	for _, hop := range r.Hops {
		d.observeHop(hop, at)
	}
}

// observeHop folds one hop's queue sample into the per-switch state.
func (d *MicroburstDetector) observeHop(hop HopMetadata, at netsim.Time) {
	cur := d.open[hop.SwitchID]
	// Close a stale burst first.
	if cur != nil && at-cur.End > d.Quiet {
		d.close(hop.SwitchID)
		cur = nil
	}
	if hop.QueueDepth < d.Threshold {
		return
	}
	if cur == nil {
		cur = &Microburst{SwitchID: hop.SwitchID, Start: at}
		d.open[hop.SwitchID] = cur
	}
	cur.End = at
	cur.Packets++
	if hop.QueueDepth > cur.PeakDepth {
		cur.PeakDepth = hop.QueueDepth
	}
}

// close finalizes the open burst for a switch.
func (d *MicroburstDetector) close(switchID uint32) {
	cur := d.open[switchID]
	if cur == nil {
		return
	}
	delete(d.open, switchID)
	d.Bursts = append(d.Bursts, *cur)
	if d.OnBurst != nil {
		d.OnBurst(*cur)
	}
}

// Flush closes every open burst (end of capture).
func (d *MicroburstDetector) Flush() {
	for id := range d.open {
		d.close(id)
	}
}
