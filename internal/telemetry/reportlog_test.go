package telemetry

import (
	"bytes"
	"errors"
	"io"
	"net/netip"
	"testing"

	"github.com/amlight/intddos/internal/netsim"
)

func logReport(seq uint64, hops int) *Report {
	r := &Report{
		Seq: seq,
		Src: netip.MustParseAddr("10.1.1.1"), Dst: netip.MustParseAddr("10.2.2.2"),
		SrcPort: uint16(seq), DstPort: 80, Proto: netsim.TCP, Length: 1500,
	}
	for h := 0; h < hops; h++ {
		r.Hops = append(r.Hops, HopMetadata{
			SwitchID: uint32(h + 1), QueueDepth: uint32(h),
			IngressTS: netsim.Timestamp32(100 * seq), EgressTS: netsim.Timestamp32(100*seq + 50),
		})
	}
	return r
}

func TestReportLogRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	l, err := NewReportLog(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(1); i <= 100; i++ {
		if err := l.Append(logReport(i, 2)); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Flush(); err != nil {
		t.Fatal(err)
	}
	if l.Written != 100 {
		t.Errorf("written = %d", l.Written)
	}
	if bpr := l.BytesPerReport(); bpr < 40 || bpr > 200 {
		t.Errorf("bytes/report = %v, implausible", bpr)
	}

	lr, err := OpenReportLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := lr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 100 {
		t.Fatalf("read %d reports", len(got))
	}
	for i, r := range got {
		if r.Seq != uint64(i+1) || len(r.Hops) != 2 {
			t.Fatalf("report %d = %+v", i, r)
		}
	}
}

func TestReportLogRejectsGarbage(t *testing.T) {
	if _, err := OpenReportLog(bytes.NewReader([]byte("garbage bytes here"))); err == nil {
		t.Error("bad magic accepted")
	}
	var buf bytes.Buffer
	l, _ := NewReportLog(&buf, 0)
	l.Append(logReport(1, 1))
	l.Flush()
	// Truncate mid-record.
	trunc := buf.Bytes()[:buf.Len()-5]
	lr, err := OpenReportLog(bytes.NewReader(trunc))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lr.ReadAll(); err == nil {
		t.Error("truncated log read cleanly")
	}
}

func TestReportLogEmptyLog(t *testing.T) {
	var buf bytes.Buffer
	l, _ := NewReportLog(&buf, 0)
	l.Flush()
	lr, err := OpenReportLog(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := lr.Next(); !errors.Is(err, io.EOF) {
		t.Errorf("empty log Next err = %v, want EOF", err)
	}
}

func TestReportLogSubsetInstructions(t *testing.T) {
	// The paper's three-field deployment (queue occupancy + both
	// timestamps) stores far less per hop than the full set.
	var full, slim bytes.Buffer
	lf, _ := NewReportLog(&full, InstAll)
	ls, _ := NewReportLog(&slim, InstQueue|InstIngressTS|InstEgressTS)
	for i := uint64(1); i <= 50; i++ {
		lf.Append(logReport(i, 2))
		ls.Append(logReport(i, 2))
	}
	lf.Flush()
	ls.Flush()
	if ls.Bytes >= lf.Bytes {
		t.Errorf("slim log %d B not below full %d B", ls.Bytes, lf.Bytes)
	}
	// Slim round trip preserves the stored fields.
	lr, err := OpenReportLog(&slim)
	if err != nil {
		t.Fatal(err)
	}
	got, err := lr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if got[0].Hops[0].QueueDepth != 0 && got[0].Hops[1].QueueDepth != 1 {
		t.Errorf("queue depths lost: %+v", got[0].Hops)
	}
	if got[0].Hops[0].SwitchID != 0 {
		t.Errorf("switch id unexpectedly stored under slim instructions")
	}
}
