package telemetry

import (
	"testing"
	"testing/quick"

	"github.com/amlight/intddos/internal/netsim"
)

func TestInstructionWordsPerHop(t *testing.T) {
	cases := []struct {
		inst Instruction
		want int
	}{
		{0, 0},
		{InstSwitchID, 1},
		{InstSwitchID | InstQueue, 2},
		{InstAll, 6},
	}
	for _, c := range cases {
		if got := c.inst.WordsPerHop(); got != c.want {
			t.Errorf("WordsPerHop(%#x) = %d, want %d", uint16(c.inst), got, c.want)
		}
		if got := c.inst.BytesPerHop(); got != 4*c.want {
			t.Errorf("BytesPerHop(%#x) = %d, want %d", uint16(c.inst), got, 4*c.want)
		}
	}
}

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{
		Version:      Version,
		HopML:        uint8(InstAll.WordsPerHop()),
		RemainingHop: 8,
		Instructions: InstAll,
		DomainID:     0xDEADBEEF,
	}
	buf := EncodeHeader(nil, h)
	if len(buf) != HeaderLen {
		t.Fatalf("encoded length %d, want %d", len(buf), HeaderLen)
	}
	got, rest, err := DecodeHeader(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Errorf("rest = %d bytes, want 0", len(rest))
	}
	if got != h {
		t.Errorf("round trip = %+v, want %+v", got, h)
	}
}

func TestDecodeHeaderErrors(t *testing.T) {
	if _, _, err := DecodeHeader(make([]byte, 5)); err == nil {
		t.Error("short buffer accepted")
	}
	h := Header{Version: Version, HopML: uint8(InstAll.WordsPerHop()), Instructions: InstAll}
	buf := EncodeHeader(nil, h)
	buf[0] = 0x10 // version 1
	if _, _, err := DecodeHeader(buf); err == nil {
		t.Error("bad version accepted")
	}
	buf = EncodeHeader(nil, h)
	buf[2] = 3 // hopML inconsistent with instructions
	if _, _, err := DecodeHeader(buf); err == nil {
		t.Error("bad hopML accepted")
	}
}

func TestHopRoundTripFullInstructions(t *testing.T) {
	m := HopMetadata{
		SwitchID:    7,
		IngressPort: 1,
		EgressPort:  2,
		HopLatency:  12345,
		QueueID:     3,
		QueueDepth:  991,
		IngressTS:   0xFFFFFFF0,
		EgressTS:    0x00000010,
	}
	buf := EncodeHop(nil, InstAll, m)
	if len(buf) != InstAll.BytesPerHop() {
		t.Fatalf("encoded %d bytes, want %d", len(buf), InstAll.BytesPerHop())
	}
	got, rest, err := DecodeHop(buf, InstAll)
	if err != nil {
		t.Fatal(err)
	}
	if len(rest) != 0 {
		t.Errorf("rest = %d bytes", len(rest))
	}
	if got != m {
		t.Errorf("round trip = %+v, want %+v", got, m)
	}
}

func TestHopRoundTripSubsetInstructions(t *testing.T) {
	inst := InstQueue | InstIngressTS | InstEgressTS // the paper's 3 fields
	m := HopMetadata{QueueDepth: 55, IngressTS: 100, EgressTS: 200}
	buf := EncodeHop(nil, inst, m)
	if len(buf) != 12 {
		t.Fatalf("encoded %d bytes, want 12", len(buf))
	}
	got, _, err := DecodeHop(buf, inst)
	if err != nil {
		t.Fatal(err)
	}
	if got != m {
		t.Errorf("round trip = %+v, want %+v", got, m)
	}
}

func TestDecodeHopShortBuffer(t *testing.T) {
	if _, _, err := DecodeHop(make([]byte, 3), InstAll); err == nil {
		t.Error("short hop buffer accepted")
	}
}

func TestHopRoundTripProperty(t *testing.T) {
	f := func(swid uint32, inPort, egPort uint16, lat, depth uint32, its, ets uint32) bool {
		m := HopMetadata{
			SwitchID:    swid,
			IngressPort: inPort,
			EgressPort:  egPort,
			HopLatency:  lat,
			QueueDepth:  depth & 0x00FFFFFF, // 24-bit field on the wire
			IngressTS:   netsim.Timestamp32(its),
			EgressTS:    netsim.Timestamp32(ets),
		}
		buf := EncodeHop(nil, InstAll, m)
		got, _, err := DecodeHop(buf, InstAll)
		return err == nil && got == m
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestHopFromRecordTruncatesTimestamps(t *testing.T) {
	rec := netsim.HopRecord{
		SwitchID:    1,
		IngressPort: 1,
		EgressPort:  2,
		IngressTime: netsim.WrapPeriod + 100, // past one wrap
		EgressTime:  netsim.WrapPeriod + 500,
		QueueDepth:  9,
	}
	m := HopFromRecord(rec)
	if m.IngressTS != 100 || m.EgressTS != 500 {
		t.Errorf("timestamps = %d/%d, want 100/500 (wrapped)", m.IngressTS, m.EgressTS)
	}
	if m.HopLatency != 400 {
		t.Errorf("hop latency = %d, want 400", m.HopLatency)
	}
	if m.QueueDepth != 9 {
		t.Errorf("queue depth = %d, want 9", m.QueueDepth)
	}
}
