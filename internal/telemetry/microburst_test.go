package telemetry

import (
	"testing"

	"github.com/amlight/intddos/internal/netsim"
)

func hotReport(depth uint32) *Report {
	return &Report{Hops: []HopMetadata{{SwitchID: 1, QueueDepth: depth}}}
}

func TestMicroburstDetectsRun(t *testing.T) {
	d := NewMicroburstDetector(10, netsim.Millisecond)
	var got []Microburst
	d.OnBurst = func(m Microburst) { got = append(got, m) }

	// Cold, then a hot run, then cold again past the quiet period.
	d.Observe(hotReport(2), 0)
	d.Observe(hotReport(15), 100*netsim.Microsecond)
	d.Observe(hotReport(30), 200*netsim.Microsecond)
	d.Observe(hotReport(12), 300*netsim.Microsecond)
	d.Observe(hotReport(1), 5*netsim.Millisecond) // quiet elapsed → closes
	if len(got) != 1 {
		t.Fatalf("bursts = %d, want 1", len(got))
	}
	b := got[0]
	if b.Packets != 3 || b.PeakDepth != 30 {
		t.Errorf("burst = %+v", b)
	}
	if b.Start != 100*netsim.Microsecond || b.End != 300*netsim.Microsecond {
		t.Errorf("bounds = %v-%v", b.Start, b.End)
	}
	if b.Duration() != 200*netsim.Microsecond {
		t.Errorf("duration = %v", b.Duration())
	}
}

func TestMicroburstSeparatesEvents(t *testing.T) {
	d := NewMicroburstDetector(10, netsim.Millisecond)
	d.Observe(hotReport(20), 0)
	d.Observe(hotReport(20), 100*netsim.Microsecond)
	// Long gap, second burst.
	d.Observe(hotReport(25), 10*netsim.Millisecond)
	d.Flush()
	if len(d.Bursts) != 2 {
		t.Fatalf("bursts = %d, want 2", len(d.Bursts))
	}
	if d.Bursts[0].Packets != 2 || d.Bursts[1].Packets != 1 {
		t.Errorf("bursts = %+v", d.Bursts)
	}
}

func TestMicroburstPerSwitchIsolation(t *testing.T) {
	d := NewMicroburstDetector(10, netsim.Millisecond)
	r := &Report{Hops: []HopMetadata{
		{SwitchID: 1, QueueDepth: 20},
		{SwitchID: 2, QueueDepth: 30},
	}}
	d.Observe(r, 0)
	d.Flush()
	if len(d.Bursts) != 2 {
		t.Fatalf("bursts = %d, want one per switch", len(d.Bursts))
	}
	seen := map[uint32]bool{}
	for _, b := range d.Bursts {
		seen[b.SwitchID] = true
	}
	if !seen[1] || !seen[2] {
		t.Errorf("switch coverage = %v", seen)
	}
}

func TestMicroburstBelowThresholdIgnored(t *testing.T) {
	d := NewMicroburstDetector(10, netsim.Millisecond)
	for i := 0; i < 100; i++ {
		d.Observe(hotReport(9), netsim.Time(i)*netsim.Microsecond)
	}
	d.Flush()
	if len(d.Bursts) != 0 {
		t.Errorf("bursts = %d from sub-threshold depths", len(d.Bursts))
	}
}

func TestMicroburstFlushClosesOpen(t *testing.T) {
	d := NewMicroburstDetector(10, netsim.Millisecond)
	d.Observe(hotReport(50), 0)
	if len(d.Bursts) != 0 {
		t.Fatal("burst closed prematurely")
	}
	d.Flush()
	if len(d.Bursts) != 1 || d.Bursts[0].PeakDepth != 50 {
		t.Errorf("bursts = %+v", d.Bursts)
	}
}
