package telemetry

import "sync"

// SeqVerdict classifies one report against its source's sequence
// window.
type SeqVerdict uint8

const (
	// SeqAccept: in-order (or first-of-source) report; deliver.
	SeqAccept SeqVerdict = iota
	// SeqReordered: late but within the acceptance window and not
	// seen before; deliver. The pipeline tolerates reordering up to
	// the window size.
	SeqReordered
	// SeqDuplicate: already delivered (same source and sequence);
	// suppress so one report never becomes two decisions.
	SeqDuplicate
	// SeqStale: older than the acceptance window; reject. Its loss
	// was already inferred when the window moved past it, and
	// admitting it now would reorder the flow's history arbitrarily.
	SeqStale
)

// String names the verdict.
func (v SeqVerdict) String() string {
	switch v {
	case SeqAccept:
		return "accept"
	case SeqReordered:
		return "reordered"
	case SeqDuplicate:
		return "duplicate"
	case SeqStale:
		return "stale"
	default:
		return "unknown"
	}
}

// SeqResult is one Observe outcome: the verdict plus the gap
// accounting delta it implies.
type SeqResult struct {
	Verdict SeqVerdict
	// Gaps is how many sequence numbers were newly inferred lost
	// (counted eagerly when the window head advances past them; a
	// later reordered arrival heals the inference).
	Gaps int
	// Healed reports that a previously inferred loss arrived after
	// all: honest losses so far are gaps_total - healed_total.
	Healed bool
}

// SeqTracker classifies report sequence numbers per source: exactly
// one acceptance per (source, seq), reorder tolerance up to a window,
// stale rejection beyond it, and eager loss inference with healing.
// Sources live in a bounded map with least-recently-active eviction,
// so an address-spoofing flood cannot grow tracker state without
// bound. Safe for concurrent use.
//
// A forward jump larger than several windows is treated as a stream
// reset (an agent restart re-zeroes its sequence counter, and a
// restarted capture replays from one): the source's window is
// re-seeded without inferring millions of losses.
type SeqTracker struct {
	mu         sync.Mutex
	window     uint64
	maxSources int
	resetJump  uint64
	clock      uint64
	sources    map[string]*seqSource

	resets    int
	evictions int
}

// seqSource is one source's window state: the highest sequence
// accepted and a ring bitmap of seen-flags for the window below it.
type seqSource struct {
	highest uint64
	base    uint64 // first sequence observed; below it, no gap was counted
	bits    []uint64
	touched uint64 // tracker clock at last observation (eviction order)
}

func (s *seqSource) idx(seq, window uint64) (word int, mask uint64) {
	i := seq % window
	return int(i >> 6), 1 << (i & 63)
}

func (s *seqSource) seen(seq, window uint64) bool {
	w, m := s.idx(seq, window)
	return s.bits[w]&m != 0
}

func (s *seqSource) set(seq, window uint64) {
	w, m := s.idx(seq, window)
	s.bits[w] |= m
}

func (s *seqSource) clear(seq, window uint64) {
	w, m := s.idx(seq, window)
	s.bits[w] &^= m
}

// NewSeqTracker builds a tracker with the given acceptance window
// (reports older than window behind a source's highest sequence are
// stale) and source bound (≤ 0 selects 1024).
func NewSeqTracker(window, maxSources int) *SeqTracker {
	if window < 1 {
		window = 1
	}
	if maxSources <= 0 {
		maxSources = 1024
	}
	w := uint64(window)
	reset := 4 * w
	if reset < 256 {
		reset = 256
	}
	return &SeqTracker{
		window:     w,
		maxSources: maxSources,
		resetJump:  reset,
		sources:    make(map[string]*seqSource),
	}
}

// Window returns the acceptance window size.
func (t *SeqTracker) Window() int { return int(t.window) }

// Observe classifies one (source, sequence) observation.
func (t *SeqTracker) Observe(src string, seq uint64) SeqResult {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.clock++
	s, ok := t.sources[src]
	if !ok {
		s = t.admit(src)
		s.highest, s.base = seq, seq
		s.set(seq, t.window)
		s.touched = t.clock
		return SeqResult{Verdict: SeqAccept}
	}
	s.touched = t.clock
	switch {
	case seq == s.highest:
		return SeqResult{Verdict: SeqDuplicate}
	case seq > s.highest:
		d := seq - s.highest
		if d >= t.resetJump {
			// Stream reset: re-seed rather than infer d-1 losses.
			t.resets++
			for i := range s.bits {
				s.bits[i] = 0
			}
			s.highest, s.base = seq, seq
			s.set(seq, t.window)
			return SeqResult{Verdict: SeqAccept}
		}
		// The sequences in (highest, seq) are provisionally lost;
		// their window slots open as unseen so a reordered arrival
		// can still heal them.
		if d >= t.window {
			for i := range s.bits {
				s.bits[i] = 0
			}
		} else {
			for x := s.highest + 1; x < seq; x++ {
				s.clear(x, t.window)
			}
		}
		s.highest = seq
		s.set(seq, t.window)
		return SeqResult{Verdict: SeqAccept, Gaps: int(d - 1)}
	default:
		d := s.highest - seq
		if d >= t.window {
			return SeqResult{Verdict: SeqStale}
		}
		if s.seen(seq, t.window) {
			return SeqResult{Verdict: SeqDuplicate}
		}
		s.set(seq, t.window)
		// Heal only if this sequence's loss was counted (it lies
		// above the source's first observation).
		return SeqResult{Verdict: SeqReordered, Healed: seq > s.base}
	}
}

// admit returns a fresh source slot, evicting the least-recently
// active source when the bound is reached.
func (t *SeqTracker) admit(src string) *seqSource {
	if len(t.sources) >= t.maxSources {
		var coldest string
		var min uint64
		first := true
		for name, s := range t.sources {
			if first || s.touched < min {
				coldest, min, first = name, s.touched, false
			}
		}
		delete(t.sources, coldest)
		t.evictions++
	}
	s := &seqSource{bits: make([]uint64, (t.window+63)>>6)}
	t.sources[src] = s
	return s
}

// SourceCount returns how many sources are currently tracked.
func (t *SeqTracker) SourceCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.sources)
}

// Resets returns how many stream resets (huge forward jumps) were
// absorbed.
func (t *SeqTracker) Resets() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.resets
}

// Evictions returns how many sources were evicted at the bound.
func (t *SeqTracker) Evictions() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.evictions
}
