package telemetry

import (
	"testing"

	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/obs"
)

func TestCollectorInstrument(t *testing.T) {
	eng := netsim.NewEngine()
	col := NewCollector(eng)
	reg := obs.NewRegistry()
	col.Instrument(reg)

	good := sampleReport()
	col.Receive(&netsim.Packet{Payload: good.Encode(InstAll)})
	bad := sampleReport()
	bad.Seq = good.Seq + 3 // two reports inferred lost
	col.Receive(&netsim.Packet{Payload: bad.Encode(InstAll)})
	col.Receive(&netsim.Packet{Payload: []byte{0xff}}) // undecodable

	s := reg.Snapshot()
	if got := s.Counters["intddos_telemetry_reports_decoded_total"]; got != 2 {
		t.Errorf("decoded = %d, want 2", got)
	}
	if got := s.Counters["intddos_telemetry_reports_dropped_total"]; got != 1 {
		t.Errorf("dropped = %d, want 1", got)
	}
	if got := s.Counters["intddos_telemetry_seq_gaps_total"]; got != 2 {
		t.Errorf("seq gaps = %d, want 2", got)
	}
	// Obs counters mirror the event-loop stats.
	if col.Received != 2 || col.DecodeErrors != 1 || col.SeqGaps != 2 {
		t.Errorf("plain stats = %d/%d/%d", col.Received, col.DecodeErrors, col.SeqGaps)
	}
}

func TestNetCollectorInstrument(t *testing.T) {
	col, err := ListenReports("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer col.Close()
	reg := obs.NewRegistry()
	col.Instrument(reg)
	col.Received.Add(5)
	col.DecodeErrors.Add(1)

	s := reg.Snapshot()
	if got := s.Counters["intddos_telemetry_reports_received_total"]; got != 5 {
		t.Errorf("received = %d, want 5", got)
	}
	if got := s.Counters["intddos_telemetry_report_decode_errors_total"]; got != 1 {
		t.Errorf("decode errors = %d, want 1", got)
	}
}
