package telemetry

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"github.com/amlight/intddos/internal/netsim"
)

func netRig(t *testing.T) (*NetCollector, *ReportSender) {
	t.Helper()
	col, err := ListenReports("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { col.Close() })
	snd, err := DialReports(col.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { snd.Close() })
	return col, snd
}

func netReport(seq uint64) *Report {
	return &Report{
		Seq: seq,
		Src: netip.MustParseAddr("192.0.2.1"), Dst: netip.MustParseAddr("198.51.100.2"),
		SrcPort: 1234, DstPort: 80, Proto: netsim.TCP, Length: 777,
		Hops: []HopMetadata{{SwitchID: 4, QueueDepth: 9, IngressTS: 100, EgressTS: 300}},
	}
}

func waitCount(t *testing.T, d time.Duration, get func() int64, want int64) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if get() >= want {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return get() >= want
}

func TestNetCollectorReceivesReports(t *testing.T) {
	col, snd := netRig(t)
	var mu sync.Mutex
	var got []*Report
	col.OnReport = func(r *Report, at netsim.Time) {
		mu.Lock()
		got = append(got, r)
		mu.Unlock()
		if at <= 0 {
			t.Error("non-positive arrival time")
		}
	}
	col.Start()
	for i := uint64(1); i <= 10; i++ {
		if err := snd.Send(netReport(i)); err != nil {
			t.Fatal(err)
		}
	}
	if !waitCount(t, 3*time.Second, col.Received.Load, 10) {
		t.Fatalf("received = %d, want 10", col.Received.Load())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 10 {
		t.Fatalf("callbacks = %d", len(got))
	}
	r := got[0]
	if r.DstPort != 80 || len(r.Hops) != 1 || r.Hops[0].QueueDepth != 9 {
		t.Errorf("decoded report = %+v", r)
	}
}

func TestNetCollectorCountsGarbage(t *testing.T) {
	col, snd := netRig(t)
	col.Start()
	// Raw garbage straight at the socket.
	if _, err := snd.conn.Write([]byte("definitely not a report")); err != nil {
		t.Fatal(err)
	}
	if !waitCount(t, 3*time.Second, col.DecodeErrors.Load, 1) {
		t.Fatalf("decode errors = %d", col.DecodeErrors.Load())
	}
	if col.Received.Load() != 0 {
		t.Errorf("received = %d", col.Received.Load())
	}
}

func TestNetCollectorRetriesTransientReadErrors(t *testing.T) {
	col, err := ListenReports("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	col.ReadRetries = 2
	col.ReadRetryBackoff = time.Millisecond
	col.Start()
	// Yank the socket out from under the loop: every subsequent read
	// fails immediately with a non-timeout error, so the loop burns
	// its whole retry budget and then gives up.
	col.conn.Close()
	want := int64(col.ReadRetries) + 1 // initial failure + retries
	if !waitCount(t, 3*time.Second, col.ReadErrors.Load, want) {
		t.Fatalf("read errors = %d, want >= %d", col.ReadErrors.Load(), want)
	}
	done := make(chan struct{})
	go func() { col.wg.Wait(); close(done) }()
	select {
	case <-done: // loop exited after exhausting the budget
	case <-time.After(3 * time.Second):
		t.Fatal("receive loop still running after retry budget exhausted")
	}
	if got := col.ReadErrors.Load(); got != want {
		t.Errorf("read errors = %d after exit, want exactly %d", got, want)
	}
}

func TestRetryDelayCappedAtLargeBudget(t *testing.T) {
	base, max := time.Millisecond, time.Second
	prev := time.Duration(0)
	for n := 1; n <= 200; n++ {
		d := retryDelay(base, max, n)
		if d <= 0 || d > max {
			t.Fatalf("retryDelay(%v, %v, %d) = %v, out of (0, %v]", base, max, n, d, max)
		}
		if d < prev {
			t.Fatalf("retryDelay not monotone at n=%d: %v < %v", n, d, prev)
		}
		prev = d
	}
	// The regime the old `base << (n-1)` overflowed in: a retry budget
	// of 64+ must still produce a real wait, not zero or negative.
	for _, n := range []int{63, 64, 65, 100} {
		if d := retryDelay(base, max, n); d != max {
			t.Errorf("retryDelay(.., %d) = %v, want capped at %v", n, d, max)
		}
	}
	if d := retryDelay(0, 0, 1); d != 10*time.Millisecond {
		t.Errorf("defaulted base = %v, want 10ms", d)
	}
	if d := retryDelay(2*time.Second, time.Second, 1); d != time.Second {
		t.Errorf("base above max = %v, want clamped to max", d)
	}
}

func TestNetCollectorSurvivesLargeRetryBudget(t *testing.T) {
	col, err := ListenReports("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	// A budget past 64 drives the backoff exponent beyond the width of
	// time.Duration; with the shift uncapped this loop would spin with
	// zero (or negative) delays instead of backing off.
	col.ReadRetries = 80
	col.ReadRetryBackoff = time.Microsecond
	col.ReadRetryMax = 200 * time.Microsecond
	col.Start()
	col.conn.Close()
	want := int64(col.ReadRetries) + 1
	if !waitCount(t, 10*time.Second, col.ReadErrors.Load, want) {
		t.Fatalf("read errors = %d, want %d", col.ReadErrors.Load(), want)
	}
	done := make(chan struct{})
	go func() { col.wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("receive loop still running after exhausting a 80-retry budget")
	}
	if got := col.ReadErrors.Load(); got != want {
		t.Errorf("read errors = %d after exit, want exactly %d", got, want)
	}
}

// TestDecodeReportDoesNotAliasBuffer pins the receive-path contract
// the collector relies on: NetCollector.loop reuses one receive
// buffer for every datagram, so a decoded report handed to OnReport
// must not retain any view of it.
func TestDecodeReportDoesNotAliasBuffer(t *testing.T) {
	orig := netReport(7)
	orig.Hops = append(orig.Hops, HopMetadata{SwitchID: 9, QueueDepth: 2, IngressTS: 400, EgressTS: 900})
	wire := orig.Encode(InstAll)

	buf := append([]byte(nil), wire...)
	rep, err := DecodeReport(buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := range buf { // the next datagram overwrites the buffer
		buf[i] = 0xFF
	}
	fresh, err := DecodeReport(wire)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Seq != fresh.Seq || rep.Src != fresh.Src || rep.Dst != fresh.Dst ||
		rep.SrcPort != fresh.SrcPort || rep.DstPort != fresh.DstPort ||
		rep.Length != fresh.Length || len(rep.Hops) != len(fresh.Hops) {
		t.Fatalf("report mutated by buffer reuse:\n got %+v\nwant %+v", rep, fresh)
	}
	for i := range rep.Hops {
		if rep.Hops[i] != fresh.Hops[i] {
			t.Fatalf("hop %d mutated by buffer reuse: %+v vs %+v", i, rep.Hops[i], fresh.Hops[i])
		}
	}
}

func TestNetCollectorCloseUnblocks(t *testing.T) {
	col, err := ListenReports("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	col.Start()
	done := make(chan struct{})
	go func() { col.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("Close did not unblock the receive loop")
	}
}
