package telemetry

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"github.com/amlight/intddos/internal/netsim"
)

func netRig(t *testing.T) (*NetCollector, *ReportSender) {
	t.Helper()
	col, err := ListenReports("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { col.Close() })
	snd, err := DialReports(col.Addr().String(), 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { snd.Close() })
	return col, snd
}

func netReport(seq uint64) *Report {
	return &Report{
		Seq: seq,
		Src: netip.MustParseAddr("192.0.2.1"), Dst: netip.MustParseAddr("198.51.100.2"),
		SrcPort: 1234, DstPort: 80, Proto: netsim.TCP, Length: 777,
		Hops: []HopMetadata{{SwitchID: 4, QueueDepth: 9, IngressTS: 100, EgressTS: 300}},
	}
}

func waitCount(t *testing.T, d time.Duration, get func() int64, want int64) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if get() >= want {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return get() >= want
}

func TestNetCollectorReceivesReports(t *testing.T) {
	col, snd := netRig(t)
	var mu sync.Mutex
	var got []*Report
	col.OnReport = func(r *Report, at netsim.Time) {
		mu.Lock()
		got = append(got, r)
		mu.Unlock()
		if at <= 0 {
			t.Error("non-positive arrival time")
		}
	}
	col.Start()
	for i := uint64(1); i <= 10; i++ {
		if err := snd.Send(netReport(i)); err != nil {
			t.Fatal(err)
		}
	}
	if !waitCount(t, 3*time.Second, col.Received.Load, 10) {
		t.Fatalf("received = %d, want 10", col.Received.Load())
	}
	mu.Lock()
	defer mu.Unlock()
	if len(got) != 10 {
		t.Fatalf("callbacks = %d", len(got))
	}
	r := got[0]
	if r.DstPort != 80 || len(r.Hops) != 1 || r.Hops[0].QueueDepth != 9 {
		t.Errorf("decoded report = %+v", r)
	}
}

func TestNetCollectorCountsGarbage(t *testing.T) {
	col, snd := netRig(t)
	col.Start()
	// Raw garbage straight at the socket.
	if _, err := snd.conn.Write([]byte("definitely not a report")); err != nil {
		t.Fatal(err)
	}
	if !waitCount(t, 3*time.Second, col.DecodeErrors.Load, 1) {
		t.Fatalf("decode errors = %d", col.DecodeErrors.Load())
	}
	if col.Received.Load() != 0 {
		t.Errorf("received = %d", col.Received.Load())
	}
}

func TestNetCollectorRetriesTransientReadErrors(t *testing.T) {
	col, err := ListenReports("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	col.ReadRetries = 2
	col.ReadRetryBackoff = time.Millisecond
	col.Start()
	// Yank the socket out from under the loop: every subsequent read
	// fails immediately with a non-timeout error, so the loop burns
	// its whole retry budget and then gives up.
	col.conn.Close()
	want := int64(col.ReadRetries) + 1 // initial failure + retries
	if !waitCount(t, 3*time.Second, col.ReadErrors.Load, want) {
		t.Fatalf("read errors = %d, want >= %d", col.ReadErrors.Load(), want)
	}
	done := make(chan struct{})
	go func() { col.wg.Wait(); close(done) }()
	select {
	case <-done: // loop exited after exhausting the budget
	case <-time.After(3 * time.Second):
		t.Fatal("receive loop still running after retry budget exhausted")
	}
	if got := col.ReadErrors.Load(); got != want {
		t.Errorf("read errors = %d after exit, want exactly %d", got, want)
	}
}

func TestNetCollectorCloseUnblocks(t *testing.T) {
	col, err := ListenReports("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	col.Start()
	done := make(chan struct{})
	go func() { col.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(3 * time.Second):
		t.Fatal("Close did not unblock the receive loop")
	}
}
