package telemetry

import (
	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/obs"
)

// Collector is the INT collector: it terminates report datagrams,
// decodes them, tracks loss via sequence gaps, and hands decoded
// reports to a subscriber. It corresponds to the "INT Collector" box
// in the paper's Figures 1 and 2.
type Collector struct {
	eng *netsim.Engine

	// OnReport receives each decoded report with the collector-local
	// arrival time. This local timestamp is what gives the pipeline a
	// full-resolution clock — the paper notes INT itself carries only
	// 32-bit wrapped stamps with no day/hour component.
	OnReport func(r *Report, at netsim.Time)

	// Stats
	Received     int
	DecodeErrors int
	SeqGaps      int // reports inferred lost from sequence discontinuities
	lastSeq      uint64

	// Obs mirrors (nil-safe; set by Instrument). The plain-int stats
	// above are only safe to read from the event loop; these counters
	// are safe to scrape concurrently.
	decoded *obs.Counter
	dropped *obs.Counter
	gaps    *obs.Counter
}

// Instrument registers concurrent-scrape-safe counters for the
// collector's decode statistics on reg. Call before the simulation
// starts.
func (c *Collector) Instrument(reg *obs.Registry) {
	c.decoded = reg.Counter("intddos_telemetry_reports_decoded_total")
	c.dropped = reg.Counter("intddos_telemetry_reports_dropped_total")
	c.gaps = reg.Counter("intddos_telemetry_seq_gaps_total")
}

// NewCollector constructs a collector on eng.
func NewCollector(eng *netsim.Engine) *Collector {
	return &Collector{eng: eng}
}

// Receive implements netsim.Receiver: decode a report datagram.
func (c *Collector) Receive(p *netsim.Packet) {
	rep, err := DecodeReport(p.Payload)
	if err != nil {
		c.DecodeErrors++
		c.dropped.Inc()
		return
	}
	c.Received++
	c.decoded.Inc()
	if c.lastSeq != 0 && rep.Seq > c.lastSeq+1 {
		c.SeqGaps += int(rep.Seq - c.lastSeq - 1)
		c.gaps.Add(int64(rep.Seq - c.lastSeq - 1))
	}
	if rep.Seq > c.lastSeq {
		c.lastSeq = rep.Seq
	}
	// Re-attach simulation ground truth carried on the datagram.
	rep.Truth = Truth{Label: p.Label, AttackType: p.AttackType, SentAt: p.SentAt}
	p.DeliveredAt = c.eng.Now()
	if c.OnReport != nil {
		c.OnReport(rep, p.DeliveredAt)
	}
}
