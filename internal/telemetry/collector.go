package telemetry

import (
	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/obs"
)

// Collector is the INT collector: it terminates report datagrams,
// decodes them, classifies each against its source's sequence window
// (duplicate suppression, reorder tolerance, stale rejection, loss
// inference), and hands accepted reports to a subscriber. It
// corresponds to the "INT Collector" box in the paper's Figures 1
// and 2, hardened for the adverse WAN links the AmLight deployment
// actually crosses.
type Collector struct {
	eng *netsim.Engine

	// OnReport receives each accepted report with the collector-local
	// arrival time. This local timestamp is what gives the pipeline a
	// full-resolution clock — the paper notes INT itself carries only
	// 32-bit wrapped stamps with no day/hour component. Duplicate and
	// stale reports are suppressed before this callback.
	OnReport func(r *Report, at netsim.Time)

	// ReorderWindow is the per-source acceptance window: a report up
	// to this many sequence numbers behind its source's newest is
	// accepted out of order; older is stale (default 64).
	ReorderWindow int
	// MaxSources bounds the per-source tracking map; beyond it the
	// least-recently-active source is evicted (default 1024).
	MaxSources int

	// Stats. Sequence state is tracked per source (the sink switch
	// assigns sequence numbers per exporter), so interleaved
	// multi-agent streams do not inflate SeqGaps.
	Received     int
	DecodeErrors int
	SeqGaps      int // reports inferred lost from per-source sequence gaps
	Healed       int // inferred losses that later arrived reordered
	Duplicates   int // reports suppressed as duplicates
	Stale        int // reports rejected as older than the window
	Reordered    int // reports accepted out of order
	seqs         *SeqTracker

	// Obs mirrors (nil-safe; set by Instrument). The plain-int stats
	// above are only safe to read from the event loop; these counters
	// are safe to scrape concurrently.
	decoded   *obs.Counter
	dropped   *obs.Counter
	gaps      *obs.Counter
	healed    *obs.Counter
	dup       *obs.Counter
	stale     *obs.Counter
	reordered *obs.Counter
}

// Instrument registers concurrent-scrape-safe counters for the
// collector's decode statistics on reg. Call before the simulation
// starts.
func (c *Collector) Instrument(reg *obs.Registry) {
	c.decoded = reg.Counter("intddos_telemetry_reports_decoded_total")
	c.dropped = reg.Counter("intddos_telemetry_reports_dropped_total")
	c.gaps = reg.Counter("intddos_telemetry_seq_gaps_total")
	c.healed = reg.Counter("intddos_telemetry_seq_healed_total")
	c.dup = reg.Counter("intddos_telemetry_reports_duplicate_total")
	c.stale = reg.Counter("intddos_telemetry_reports_stale_total")
	c.reordered = reg.Counter("intddos_telemetry_reports_reordered_total")
}

// NewCollector constructs a collector on eng.
func NewCollector(eng *netsim.Engine) *Collector {
	return &Collector{eng: eng}
}

// Accepted is how many decoded reports were delivered to OnReport:
// received minus the duplicate and stale suppressions.
func (c *Collector) Accepted() int { return c.Received - c.Duplicates - c.Stale }

// Sources returns how many report sources the collector is tracking.
func (c *Collector) Sources() int {
	if c.seqs == nil {
		return 0
	}
	return c.seqs.SourceCount()
}

// tracker lazily builds the per-source sequence tracker.
func (c *Collector) tracker() *SeqTracker {
	if c.seqs == nil {
		w := c.ReorderWindow
		if w <= 0 {
			w = 64
		}
		c.seqs = NewSeqTracker(w, c.MaxSources)
	}
	return c.seqs
}

// Receive implements netsim.Receiver: decode a report datagram and
// classify it against its source's sequence window.
func (c *Collector) Receive(p *netsim.Packet) {
	rep, err := DecodeReport(p.Payload)
	if err != nil {
		c.DecodeErrors++
		c.dropped.Inc()
		return
	}
	c.Received++
	c.decoded.Inc()
	if rep.Source == "" && p.Src.IsValid() {
		rep.Source = p.Src.String()
	}
	res := c.tracker().Observe(rep.SourceKey(), rep.Seq)
	if res.Gaps > 0 {
		c.SeqGaps += res.Gaps
		c.gaps.Add(int64(res.Gaps))
	}
	switch res.Verdict {
	case SeqDuplicate:
		c.Duplicates++
		c.dup.Inc()
		return
	case SeqStale:
		c.Stale++
		c.stale.Inc()
		return
	case SeqReordered:
		c.Reordered++
		c.reordered.Inc()
		if res.Healed {
			c.Healed++
			c.healed.Inc()
		}
	}
	// Re-attach simulation ground truth carried on the datagram.
	rep.Truth = Truth{Label: p.Label, AttackType: p.AttackType, SentAt: p.SentAt}
	p.DeliveredAt = c.eng.Now()
	if c.OnReport != nil {
		c.OnReport(rep, p.DeliveredAt)
	}
}
