package telemetry

import (
	"github.com/amlight/intddos/internal/netsim"
)

// Collector is the INT collector: it terminates report datagrams,
// decodes them, tracks loss via sequence gaps, and hands decoded
// reports to a subscriber. It corresponds to the "INT Collector" box
// in the paper's Figures 1 and 2.
type Collector struct {
	eng *netsim.Engine

	// OnReport receives each decoded report with the collector-local
	// arrival time. This local timestamp is what gives the pipeline a
	// full-resolution clock — the paper notes INT itself carries only
	// 32-bit wrapped stamps with no day/hour component.
	OnReport func(r *Report, at netsim.Time)

	// Stats
	Received     int
	DecodeErrors int
	SeqGaps      int // reports inferred lost from sequence discontinuities
	lastSeq      uint64
}

// NewCollector constructs a collector on eng.
func NewCollector(eng *netsim.Engine) *Collector {
	return &Collector{eng: eng}
}

// Receive implements netsim.Receiver: decode a report datagram.
func (c *Collector) Receive(p *netsim.Packet) {
	rep, err := DecodeReport(p.Payload)
	if err != nil {
		c.DecodeErrors++
		return
	}
	c.Received++
	if c.lastSeq != 0 && rep.Seq > c.lastSeq+1 {
		c.SeqGaps += int(rep.Seq - c.lastSeq - 1)
	}
	if rep.Seq > c.lastSeq {
		c.lastSeq = rep.Seq
	}
	// Re-attach simulation ground truth carried on the datagram.
	rep.Truth = Truth{Label: p.Label, AttackType: p.AttackType, SentAt: p.SentAt}
	p.DeliveredAt = c.eng.Now()
	if c.OnReport != nil {
		c.OnReport(rep, p.DeliveredAt)
	}
}
