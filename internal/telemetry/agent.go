package telemetry

import (
	"net/netip"

	"github.com/amlight/intddos/internal/netsim"
)

// intState is the in-flight INT header + metadata stack attached to a
// packet between source and sink, standing in for bytes a hardware
// deployment would embed in the packet itself.
type intState struct {
	header  Header
	hops    []HopMetadata
	origLen int // packet length before INT overhead was added
}

// Mode selects how telemetry leaves the network.
type Mode int

const (
	// ModeEmbed is classic INT-MD: metadata rides inside the packet
	// from source to sink, where it is extracted and exported. A
	// packet lost before the sink loses its whole telemetry stack.
	ModeEmbed Mode = iota
	// ModePostcard is INT-XD-style per-hop export: every monitored
	// hop sends its own single-hop report straight to the collector,
	// adding no bytes to data packets and surviving downstream loss.
	ModePostcard
)

// AgentConfig parameterizes a switch-attached INT agent. A single
// switch may act as source on some egress ports and sink on others,
// exactly as the testbed switch does with its port 3↔4 loop.
type AgentConfig struct {
	// Mode selects embed (INT-MD, default) or postcard (INT-XD)
	// telemetry export.
	Mode Mode
	// SourcePorts are egress ports where untagged packets get an INT
	// header inserted.
	SourcePorts []uint16
	// SinkPorts are egress ports where the metadata stack is
	// extracted and exported to the collector before final delivery.
	SinkPorts []uint16
	// Instructions selects the metadata each hop pushes.
	Instructions Instruction
	// MaxHops bounds the metadata stack (the INT remaining-hop-count).
	MaxHops int
	// DomainID tags the observation domain in the header.
	DomainID uint32
	// Sampler selects packets for instrumentation at the source; nil
	// means every packet (the deployment default).
	Sampler Sampler
	// CollectorAddr is the destination of report datagrams.
	CollectorAddr netip.Addr
	// ReportWire carries encoded reports to the collector (the port-5
	// link in the testbed topology). If nil the agent counts reports
	// but exports nothing.
	ReportWire *netsim.Link
}

// Agent attaches INT source/transit/sink behaviour to a netsim
// switch via its OnForward hook.
type Agent struct {
	eng *netsim.Engine
	sw  *netsim.Switch
	cfg AgentConfig

	source map[uint16]bool
	sink   map[uint16]bool
	seq    uint64

	// Stats
	Instrumented int // packets tagged at source
	HopsPushed   int
	Reports      int   // reports exported at sink
	OverheadB    int64 // total INT bytes added on the wire
}

// NewAgent wires an agent onto sw. It chains any existing OnForward
// hook so multiple observers can coexist (e.g. INT and sFlow on the
// same switch).
func NewAgent(eng *netsim.Engine, sw *netsim.Switch, cfg AgentConfig) *Agent {
	if cfg.Instructions == 0 {
		cfg.Instructions = InstAll
	}
	if cfg.MaxHops == 0 {
		cfg.MaxHops = 8
	}
	if cfg.Sampler == nil {
		cfg.Sampler = AllPackets{}
	}
	a := &Agent{
		eng:    eng,
		sw:     sw,
		cfg:    cfg,
		source: make(map[uint16]bool, len(cfg.SourcePorts)),
		sink:   make(map[uint16]bool, len(cfg.SinkPorts)),
	}
	for _, p := range cfg.SourcePorts {
		a.source[p] = true
	}
	for _, p := range cfg.SinkPorts {
		a.sink[p] = true
	}
	prev := sw.OnForward
	sw.OnForward = func(p *netsim.Packet, hop netsim.HopRecord, egress uint16) {
		a.onForward(p, hop, egress)
		if prev != nil {
			prev(p, hop, egress)
		}
	}
	return a
}

// onForward implements the source/transit/sink pipeline for one
// forwarded packet.
func (a *Agent) onForward(p *netsim.Packet, hop netsim.HopRecord, egress uint16) {
	if a.cfg.Mode == ModePostcard {
		a.postcard(p, hop, egress)
		return
	}
	st, tagged := p.Aux.(*intState)

	// Source role: insert header on untagged packets leaving a source
	// port, subject to sampling.
	if !tagged && a.source[egress] {
		if p.Payload != nil || !a.cfg.Sampler.Sample(p) {
			return // never instrument report datagrams or unsampled packets
		}
		st = &intState{
			header: Header{
				Version:      Version,
				HopML:        uint8(a.cfg.Instructions.WordsPerHop()),
				RemainingHop: uint8(a.cfg.MaxHops),
				Instructions: a.cfg.Instructions,
				DomainID:     a.cfg.DomainID,
			},
			origLen: p.Length,
		}
		p.Aux = st
		p.INTEnabled = true
		p.Length += HeaderLen
		a.OverheadB += HeaderLen
		a.Instrumented++
		tagged = true
	}
	if !tagged {
		return
	}

	// Source and transit roles push this hop's metadata if the
	// remaining-hop budget allows.
	if len(st.hops) < int(st.header.RemainingHop) {
		st.hops = append(st.hops, HopFromRecord(hop))
		p.Length += st.header.Instructions.BytesPerHop()
		a.OverheadB += int64(st.header.Instructions.BytesPerHop())
		a.HopsPushed++
	}

	// Sink role: extract the stack, restore the packet, export a
	// report toward the collector.
	if a.sink[egress] {
		a.exportEmbedded(p, st)
	}
}

// exportEmbedded finishes the INT-MD path at the sink: strip the
// in-packet state, restore the original length, export the report.
func (a *Agent) exportEmbedded(p *netsim.Packet, st *intState) {
	a.seq++
	rep := &Report{
		Seq:     a.seq,
		Src:     p.Src,
		Dst:     p.Dst,
		SrcPort: p.SrcPort,
		DstPort: p.DstPort,
		Proto:   p.Proto,
		Flags:   p.Flags,
		Length:  uint16(st.origLen),
		Hops:    st.hops,
	}
	p.Length = st.origLen
	p.Aux = nil
	p.INTEnabled = false
	a.export(rep, st.header.Instructions, p)
}

// postcard implements the INT-XD path: one single-hop report per
// monitored egress, nothing embedded in the data packet.
func (a *Agent) postcard(p *netsim.Packet, hop netsim.HopRecord, egress uint16) {
	if p.Payload != nil {
		return
	}
	if !a.source[egress] && !a.sink[egress] {
		return
	}
	if !a.cfg.Sampler.Sample(p) {
		return
	}
	a.seq++
	a.Instrumented++
	rep := &Report{
		Seq:     a.seq,
		Src:     p.Src,
		Dst:     p.Dst,
		SrcPort: p.SrcPort,
		DstPort: p.DstPort,
		Proto:   p.Proto,
		Flags:   p.Flags,
		Length:  uint16(p.Length),
		Hops:    []HopMetadata{HopFromRecord(hop)},
	}
	a.export(rep, a.cfg.Instructions, p)
}

// export encodes rep and ships it toward the collector, carrying the
// data packet's ground-truth bookkeeping.
func (a *Agent) export(rep *Report, inst Instruction, p *netsim.Packet) {
	a.Reports++
	if a.cfg.ReportWire == nil {
		return
	}
	buf := rep.Encode(inst)
	a.cfg.ReportWire.Send(&netsim.Packet{
		ID:      a.eng.NextPacketID(),
		Src:     p.Dst, // report originates at the exporting device
		Dst:     a.cfg.CollectorAddr,
		Proto:   netsim.UDP,
		Length:  len(buf) + 42, // UDP/IP/Ethernet framing
		Payload: buf,
		SentAt:  a.eng.Now(),
		// Ground-truth bookkeeping for training/eval only.
		Label:      p.Label,
		AttackType: p.AttackType,
	})
}
