package telemetry

import (
	"math/rand"
	"net/netip"
	"reflect"
	"sync"
	"testing"
	"time"

	"github.com/amlight/intddos/internal/netsim"
)

// TestNetCollectorImpairedWire drives the UDP collector through an
// adversarial wire — datagrams reordered within a bounded window,
// duplicated, and truncated mid-report — and checks the properties
// that must survive any impairment: the receive loop never panics,
// every decoded report is byte-faithful to what its exporter sent (no
// cross-datagram state bleeds through the reused receive buffer), and
// the downstream sequence tracker's ledger closes exactly against the
// scrambles injected.
func TestNetCollectorImpairedWire(t *testing.T) {
	col, snd := netRig(t)

	rig := struct {
		sync.Mutex
		tracker  *SeqTracker
		accepted int
		dups     int
		stale    int
		badBody  int
	}{tracker: NewSeqTracker(64, 0)}

	mkReport := func(seq uint64) *Report {
		// Per-seq field values so corruption of any byte is visible.
		return &Report{
			Seq:     seq,
			Src:     netip.AddrFrom4([4]byte{10, 0, byte(seq >> 8), byte(seq)}),
			Dst:     netip.MustParseAddr("198.51.100.2"),
			SrcPort: uint16(1024 + seq), DstPort: 80,
			Proto: netsim.UDP, Length: uint16(64 + seq%1000),
			Hops: []HopMetadata{
				{SwitchID: 4, QueueDepth: uint32(seq % 7919), IngressTS: netsim.Timestamp32(seq), EgressTS: netsim.Timestamp32(seq + 40)},
			},
		}
	}
	col.OnReport = func(r *Report, _ netsim.Time) {
		rig.Lock()
		defer rig.Unlock()
		want := mkReport(r.Seq)
		got := *r
		got.Source = "" // attached by the collector, not on the wire
		if !reflect.DeepEqual(&got, want) {
			rig.badBody++
		}
		switch rig.tracker.Observe(r.SourceKey(), r.Seq).Verdict {
		case SeqDuplicate:
			rig.dups++
		case SeqStale:
			rig.stale++
		default:
			rig.accepted++
		}
	}
	col.Start()

	const n = 400
	rng := rand.New(rand.NewSource(7))
	var sent, truncated, dupd, lost int
	unique := map[uint64]bool{}

	// Bounded-window reorder buffer: datagrams leave in random order
	// from a window of 4.
	var window [][]byte
	ship := func(b []byte) {
		window = append(window, b)
		if len(window) < 4 {
			return
		}
		i := rng.Intn(len(window))
		d := window[i]
		window = append(window[:i], window[i+1:]...)
		if _, err := snd.conn.Write(d); err != nil {
			t.Fatal(err)
		}
		sent++
		time.Sleep(50 * time.Microsecond) // keep loopback buffers honest
	}

	for seq := uint64(1); seq <= n; seq++ {
		wire := mkReport(seq).Encode(InstAll)
		switch roll := rng.Float64(); {
		case roll < 0.05: // wire loss: nothing arrives
			lost++
		case roll < 0.15: // truncation: a cut copy arrives, whole report is gone
			truncated++
			lost++
			ship(wire[:1+rng.Intn(len(wire)-1)])
		case roll < 0.20: // duplication: two full copies
			dupd++
			unique[seq] = true
			ship(wire)
			ship(append([]byte(nil), wire...))
		default:
			unique[seq] = true
			ship(wire)
		}
	}
	for len(window) > 0 { // flush the reorder buffer
		i := rng.Intn(len(window))
		d := window[i]
		window = append(window[:i], window[i+1:]...)
		if _, err := snd.conn.Write(d); err != nil {
			t.Fatal(err)
		}
		sent++
	}

	deadline := func() int64 { return col.Received.Load() + col.DecodeErrors.Load() }
	if !waitCount(t, 10*time.Second, deadline, int64(sent)) {
		t.Fatalf("drained %d of %d datagrams", deadline(), sent)
	}

	if got := col.DecodeErrors.Load(); got != int64(truncated) {
		t.Errorf("decode errors = %d, want %d (one per truncated datagram)", got, truncated)
	}
	goodWrites := sent - truncated
	if got := col.Received.Load(); got != int64(goodWrites) {
		t.Errorf("received = %d, want %d", got, goodWrites)
	}

	rig.Lock()
	defer rig.Unlock()
	if rig.badBody != 0 {
		t.Errorf("%d decoded reports did not match their exporter's bytes", rig.badBody)
	}
	if rig.accepted != len(unique) {
		t.Errorf("accepted = %d, want %d unique delivered reports", rig.accepted, len(unique))
	}
	if rig.dups != dupd {
		t.Errorf("duplicate suppressions = %d, want %d injected duplicates", rig.dups, dupd)
	}
	if rig.stale != 0 {
		t.Errorf("stale rejections = %d, want 0 (reorder window 4 << tracker window 64)", rig.stale)
	}
	// Ledger closure: every callback is accounted exactly once.
	if rig.accepted+rig.dups+rig.stale != goodWrites {
		t.Errorf("callback ledger open: %d+%d+%d != %d",
			rig.accepted, rig.dups, rig.stale, goodWrites)
	}
	_ = lost // lost datagrams never reach the socket; nothing to assert
}
