package telemetry

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ReportLog persists a telemetry report stream as a length-prefixed
// binary log. The paper's §V identifies storage as a core INT
// challenge — one minute of AmLight telemetry is ~30 GB — so the
// log exists both as the archival path and as the substrate for
// measuring bytes-per-report against that figure.
type ReportLog struct {
	w    *bufio.Writer
	inst Instruction

	// Stats
	Written int
	Bytes   int64
}

const (
	logMagic   uint32 = 0x494E544C // "INTL"
	logVersion uint8  = 1
)

// NewReportLog starts a log on w, encoding hop metadata with inst
// (0 selects InstAll).
func NewReportLog(w io.Writer, inst Instruction) (*ReportLog, error) {
	if inst == 0 {
		inst = InstAll
	}
	l := &ReportLog{w: bufio.NewWriter(w), inst: inst}
	var hdr [7]byte
	binary.BigEndian.PutUint32(hdr[:4], logMagic)
	hdr[4] = logVersion
	binary.BigEndian.PutUint16(hdr[5:7], uint16(inst))
	if _, err := l.w.Write(hdr[:]); err != nil {
		return nil, err
	}
	l.Bytes += int64(len(hdr))
	return l, nil
}

// Append writes one report.
func (l *ReportLog) Append(r *Report) error {
	buf := r.Encode(l.inst)
	var lp [4]byte
	binary.BigEndian.PutUint32(lp[:], uint32(len(buf)))
	if _, err := l.w.Write(lp[:]); err != nil {
		return err
	}
	if _, err := l.w.Write(buf); err != nil {
		return err
	}
	l.Written++
	l.Bytes += int64(len(lp) + len(buf))
	return nil
}

// Flush commits buffered records.
func (l *ReportLog) Flush() error { return l.w.Flush() }

// BytesPerReport returns the average on-disk record size.
func (l *ReportLog) BytesPerReport() float64 {
	if l.Written == 0 {
		return 0
	}
	return float64(l.Bytes) / float64(l.Written)
}

// ReportLogReader iterates a log produced by ReportLog.
type ReportLogReader struct {
	r    *bufio.Reader
	inst Instruction
}

// OpenReportLog validates the header and returns a reader.
func OpenReportLog(r io.Reader) (*ReportLogReader, error) {
	br := bufio.NewReader(r)
	var hdr [7]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("telemetry: log header: %w", err)
	}
	if binary.BigEndian.Uint32(hdr[:4]) != logMagic {
		return nil, errors.New("telemetry: bad log magic")
	}
	if hdr[4] != logVersion {
		return nil, fmt.Errorf("telemetry: unsupported log version %d", hdr[4])
	}
	return &ReportLogReader{
		r:    br,
		inst: Instruction(binary.BigEndian.Uint16(hdr[5:7])),
	}, nil
}

// Next returns the next report, or io.EOF at a clean end of log.
func (lr *ReportLogReader) Next() (*Report, error) {
	var lp [4]byte
	if _, err := io.ReadFull(lr.r, lp[:]); err != nil {
		if errors.Is(err, io.EOF) {
			return nil, io.EOF
		}
		return nil, fmt.Errorf("telemetry: log record prefix: %w", err)
	}
	n := binary.BigEndian.Uint32(lp[:])
	if n > 1<<20 {
		return nil, fmt.Errorf("telemetry: implausible record size %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(lr.r, buf); err != nil {
		return nil, fmt.Errorf("telemetry: log record body: %w", err)
	}
	return DecodeReport(buf)
}

// ReadAll drains the log.
func (lr *ReportLogReader) ReadAll() ([]*Report, error) {
	var out []*Report
	for {
		r, err := lr.Next()
		if errors.Is(err, io.EOF) {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, r)
	}
}
