package obs

import (
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func get(t *testing.T, srv *httptest.Server, path string) (int, string) {
	t.Helper()
	resp, err := http.Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestHandlerEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("requests_total").Add(5)
	reg.Gauge("queue_depth").Set(2)
	reg.Histogram("lat_seconds", nil).Observe(0.01)
	tr := reg.Tracer("pipeline", 1, 4)
	sp := tr.Sample("10.0.0.1:1>10.0.0.2:80/tcp")
	sp.Stage("predict", time.Now().Add(-time.Millisecond))
	tr.Finish(sp)

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	code, body := get(t, srv, "/metrics")
	if code != 200 {
		t.Fatalf("/metrics = %d", code)
	}
	for _, want := range []string{"requests_total 5", "queue_depth 2", "lat_seconds_count 1"} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	code, body = get(t, srv, "/healthz")
	if code != 200 || !strings.Contains(body, "ok") {
		t.Errorf("/healthz = %d %q", code, body)
	}

	code, body = get(t, srv, "/traces")
	if code != 200 || !strings.Contains(body, "predict=") {
		t.Errorf("/traces = %d %q", code, body)
	}

	code, body = get(t, srv, "/debug/pprof/")
	if code != 200 || !strings.Contains(body, "goroutine") {
		t.Errorf("/debug/pprof/ = %d", code)
	}

	code, body = get(t, srv, "/")
	if code != 200 || !strings.Contains(body, "/metrics") {
		t.Errorf("index = %d %q", code, body)
	}
	if code, _ := get(t, srv, "/nope"); code != 404 {
		t.Errorf("unknown path = %d, want 404", code)
	}
}

func TestListenAndServe(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("up_total").Inc()
	srv, err := reg.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if !strings.Contains(string(body), "up_total 1") {
		t.Errorf("metrics body = %q", body)
	}
}
