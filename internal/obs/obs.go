// Package obs is the repository's dependency-free observability
// layer: a metrics registry (counters, gauges, fixed-bucket latency
// histograms, one-label vectors), a sampled span tracer for per-stage
// pipeline timings, a Prometheus-text/pprof HTTP handler, and a
// Snapshot API for end-of-run summaries.
//
// The paper reports its real-time behaviour post hoc (Table VI:
// average/max prediction time, per-attack misclassification counts);
// obs makes the same quantities continuously readable from the live
// pipeline. Hot-path primitives are lock-free (atomics only) and all
// instrument types are nil-safe, so an uninstrumented component pays
// one branch per event.
package obs

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric. Nil-safe.
type Counter struct {
	name string
	v    atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Add increases the counter by n (negative deltas are ignored to
// keep the counter monotone).
func (c *Counter) Add(n int64) {
	if c == nil || n <= 0 {
		return
	}
	c.v.Add(n)
}

// Value returns the current count.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a settable instantaneous value. Nil-safe.
type Gauge struct {
	name string
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.bits.Store(floatBits(v))
}

// Value returns the stored value.
func (g *Gauge) Value() float64 {
	if g == nil {
		return 0
	}
	return floatFromBits(g.bits.Load())
}

// GaugeVec is a family of gauges keyed by one label value. Children
// are either settable (With) or computed on read (WithFunc) — the
// latter suits values owned elsewhere, like per-shard journal depths.
type GaugeVec struct {
	name  string
	label string

	mu   sync.Mutex
	kids map[string]*Gauge
	fns  map[string]func() float64
}

// With returns the settable child gauge for the label value, creating
// it on first use. Nil-safe: a nil vec returns a nil (no-op) gauge.
func (v *GaugeVec) With(value string) *Gauge {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	g, ok := v.kids[value]
	if !ok {
		g = &Gauge{name: v.name}
		v.kids[value] = g
	}
	return g
}

// WithFunc exposes a computed child under the label value. The first
// registration for a value wins; later ones are ignored. Nil-safe.
func (v *GaugeVec) WithFunc(value string, fn func() float64) {
	if v == nil {
		return
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if _, ok := v.fns[value]; !ok {
		v.fns[value] = fn
	}
}

// Values returns the current per-label values, settable and computed
// children merged (computed wins on a value collision).
func (v *GaugeVec) Values() map[string]float64 {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	kids := make(map[string]*Gauge, len(v.kids))
	for val, g := range v.kids {
		kids[val] = g
	}
	fns := make(map[string]func() float64, len(v.fns))
	for val, fn := range v.fns {
		fns[val] = fn
	}
	v.mu.Unlock()
	// Callbacks run outside the vec lock: they may read pipeline state
	// whose owners also register children during scrapes.
	out := make(map[string]float64, len(kids)+len(fns))
	for val, g := range kids {
		out[val] = g.Value()
	}
	for val, fn := range fns {
		out[val] = fn()
	}
	return out
}

func (v *GaugeVec) labelValues() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	vals := make([]string, 0, len(v.kids)+len(v.fns))
	for val := range v.kids {
		vals = append(vals, val)
	}
	for val := range v.fns {
		if _, dup := v.kids[val]; !dup {
			vals = append(vals, val)
		}
	}
	sort.Strings(vals)
	return vals
}

// value reads one child by label value (computed children win).
func (v *GaugeVec) value(val string) float64 {
	v.mu.Lock()
	fn := v.fns[val]
	g := v.kids[val]
	v.mu.Unlock()
	if fn != nil {
		return fn()
	}
	return g.Value()
}

// CounterVec is a family of counters keyed by one label value.
type CounterVec struct {
	name  string
	label string

	mu   sync.Mutex
	kids map[string]*Counter
}

// With returns the child counter for the label value, creating it on
// first use. Nil-safe: a nil vec returns a nil (no-op) counter.
func (v *CounterVec) With(value string) *Counter {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.kids[value]
	if !ok {
		c = &Counter{name: v.name}
		v.kids[value] = c
	}
	return c
}

// Values returns the current per-label counts.
func (v *CounterVec) Values() map[string]int64 {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make(map[string]int64, len(v.kids))
	for val, c := range v.kids {
		out[val] = c.Value()
	}
	return out
}

func (v *CounterVec) labelValues() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	vals := make([]string, 0, len(v.kids))
	for val := range v.kids {
		vals = append(vals, val)
	}
	sort.Strings(vals)
	return vals
}

// Registry names and owns a set of metrics. Registration is
// idempotent: asking for an existing name returns the existing
// instrument (kind mismatches panic — they are programming errors).
// A registry is scoped to one pipeline instance; sharing one between
// two pipelines merges their counts.
type Registry struct {
	mu          sync.Mutex
	counters    map[string]*Counter
	counterFns  map[string]func() float64
	gauges      map[string]*Gauge
	gaugeFns    map[string]func() float64
	gaugeVecs   map[string]*GaugeVec
	counterVecs map[string]*CounterVec
	hists       map[string]*Histogram
	histVecs    map[string]*HistogramVec
	tracers     map[string]*Tracer
	kinds       map[string]string
	healthFn    func() Health

	// Diagnostic surfaces (see events.go, journey.go, bundle.go,
	// and internal/obs/prof for the attribution producer).
	events   *EventLog
	journeys *Journeys
	attribFn func(topN int) string
	bundle   []bundleEntry
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:    make(map[string]*Counter),
		counterFns:  make(map[string]func() float64),
		gauges:      make(map[string]*Gauge),
		gaugeFns:    make(map[string]func() float64),
		gaugeVecs:   make(map[string]*GaugeVec),
		counterVecs: make(map[string]*CounterVec),
		hists:       make(map[string]*Histogram),
		histVecs:    make(map[string]*HistogramVec),
		tracers:     make(map[string]*Tracer),
		kinds:       make(map[string]string),
	}
}

// claim records name as kind, panicking on cross-kind reuse.
func (r *Registry) claim(name, kind string) bool {
	if prev, ok := r.kinds[name]; ok {
		if prev != kind {
			panic(fmt.Sprintf("obs: metric %q re-registered as %s (was %s)", name, kind, prev))
		}
		return false
	}
	r.kinds[name] = kind
	return true
}

// Counter registers (or fetches) a counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.claim(name, "counter") {
		r.counters[name] = &Counter{name: name}
	}
	return r.counters[name]
}

// CounterFunc exposes an externally maintained monotone value (for
// example an existing atomic counter) under name. The first
// registration wins; later ones are ignored.
func (r *Registry) CounterFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.claim(name, "counterfunc") {
		r.counterFns[name] = fn
	}
}

// Gauge registers (or fetches) a settable gauge.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.claim(name, "gauge") {
		r.gauges[name] = &Gauge{name: name}
	}
	return r.gauges[name]
}

// GaugeFunc exposes a computed instantaneous value under name (for
// example a channel depth). The callback runs on the scrape/snapshot
// goroutine and must be safe to call concurrently with the pipeline.
// The first registration wins; later ones are ignored.
func (r *Registry) GaugeFunc(name string, fn func() float64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.claim(name, "gaugefunc") {
		r.gaugeFns[name] = fn
	}
}

// GaugeVec registers (or fetches) a one-label gauge family.
func (r *Registry) GaugeVec(name, label string) *GaugeVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.claim(name, "gaugevec") {
		r.gaugeVecs[name] = &GaugeVec{
			name: name, label: label,
			kids: make(map[string]*Gauge),
			fns:  make(map[string]func() float64),
		}
	}
	return r.gaugeVecs[name]
}

// CounterVec registers (or fetches) a one-label counter family.
func (r *Registry) CounterVec(name, label string) *CounterVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.claim(name, "countervec") {
		r.counterVecs[name] = &CounterVec{name: name, label: label, kids: make(map[string]*Counter)}
	}
	return r.counterVecs[name]
}

// Histogram registers (or fetches) a histogram with the given bucket
// upper bounds (nil selects LatencyBuckets).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.claim(name, "histogram") {
		if bounds == nil {
			bounds = LatencyBuckets()
		}
		r.hists[name] = newHistogram(name, bounds)
	}
	return r.hists[name]
}

// HistogramVec registers (or fetches) a one-label histogram family.
func (r *Registry) HistogramVec(name, label string, bounds []float64) *HistogramVec {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.claim(name, "histogramvec") {
		if bounds == nil {
			bounds = LatencyBuckets()
		}
		r.histVecs[name] = newHistogramVec(name, label, bounds)
	}
	return r.histVecs[name]
}

// Tracer registers (or fetches) a sampled span tracer.
func (r *Registry) Tracer(name string, sampleEvery, keep int) *Tracer {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.claim(name, "tracer") {
		r.tracers[name] = newTracer(name, sampleEvery, keep)
	}
	return r.tracers[name]
}

func floatBits(v float64) uint64 { return math.Float64bits(v) }

func floatFromBits(b uint64) float64 { return math.Float64frombits(b) }
