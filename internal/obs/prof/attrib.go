// Package prof is the bottleneck-attribution subsystem: it turns the
// runtime's mutex/block profiles into a report that names pipeline
// stages instead of stack frames, captures periodic profile snapshots
// into a bounded on-disk ring, and feeds both into the obs registry's
// /debug/attrib endpoint and diagnostic bundles.
//
// ROADMAP item 1 observed shard scaling flat from 0 to 8 shards while
// every contention counter read zero — the TryLock-based counters only
// see a held mutex at the instant of acquisition, and nothing mapped
// blocked time back to the stage that paid it. The runtime already
// records every contended mutex unlock and every blocking event; prof
// surfaces that record with pipeline names attached, so "what
// serializes the pipeline" is a measurement, not a guess.
package prof

import (
	"bytes"
	"fmt"
	"runtime"
	"runtime/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Row is one attributed stack in a contention report.
type Row struct {
	// Kind is "mutex" (lock contention: time waiters spent blocked on
	// a sync primitive, recorded at Unlock) or "block" (time goroutines
	// spent blocked on channels and sync primitives, recorded when the
	// goroutine resumes).
	Kind string `json:"kind"`
	// Stage is the pipeline stage the stack attributes to (see
	// PipelineStages), or "other".
	Stage string `json:"stage"`
	// Count is the number of sampled events, scaled by the sampling
	// rate for mutex rows; Seconds the blocked time they cover.
	Count   int64   `json:"count"`
	Seconds float64 `json:"seconds"`
	// Frames is the stack, innermost first, trimmed of runtime/sync
	// plumbing frames.
	Frames []string `json:"frames,omitempty"`
}

// stackKey identifies a row across reports for Diff.
func (r Row) stackKey() string {
	return r.Kind + "|" + strings.Join(r.Frames, "<")
}

// Report is a contention-attribution snapshot: the cumulative mutex
// and block profiles since process start (or a Diff of two snapshots),
// mapped to pipeline stages.
type Report struct {
	// MutexFraction and BlockRateNs record the sampling configuration
	// the rows were captured under.
	MutexFraction int `json:"mutex_fraction"`
	BlockRateNs   int `json:"block_rate_ns"`
	// Rows are sorted by Seconds descending.
	Rows []Row `json:"rows"`
}

// StageRule maps a substring of a stack frame to a pipeline stage
// name. Rules are tried in order, each against every frame (innermost
// outward); the first rule with a matching frame wins. Rule order is
// therefore priority: named pipeline functions come before the
// generic runtime channel buckets, so "blocked in select inside the
// ingester" attributes to the ingest stage, not to the catch-all
// queue bucket.
type StageRule struct {
	Match string
	Stage string
}

// PipelineStages are the attribution rules for this repository's
// pipeline: the known serialization suspects first (the shared
// prediction log, per-shard store mutexes, the decision log in
// finish), then coarser package-level buckets.
func PipelineStages() []StageRule {
	return []StageRule{
		{"store.(*ShardedDB).AppendPrediction", "store.prediction_log"},
		{"store.(*DB).AppendPrediction", "store.prediction_log"},
		{"store.(*ShardedDB).Predictions", "store.prediction_merge"},
		{"store.MergePredictions", "store.prediction_merge"},
		{"store.(*DB).UpsertFlow", "store.shard_upsert"},
		{"store.(*DB).PollUpdates", "store.journal_poll"},
		{"store.(*DB).TrimJournal", "store.journal_poll"},
		{"store.(*DB).PollGlobal", "store.journal_poll"},
		{"store.(*DB).TrimGlobal", "store.journal_poll"},
		{"store.(*ShardedDB).PollGlobal", "store.journal_poll"},
		{"store.(*DB).JournalLen", "store.journal_scan"},
		{"store.(*DB).FlowCount", "store.journal_scan"},
		{"flow.(*ShardedTable)", "flow.table"},
		{"core.(*Live).finish", "core.finish"},
		{"core.(*Live).IngestAsync", "core.ingest_demux"},
		{"core.(*Live).ingester", "core.ingest"},
		{"core.(*Live).Ingest", "core.ingest"},
		{"core.(*Live).upsertFlow", "core.ingest"},
		{"core.(*Live).shardPoller", "core.poll"},
		{"core.(*Live).pollOnce", "core.poll"},
		// Triage rules precede core.predict: triageBatch calls scoreBatch
		// for fall-through rows, so a stack blocked under the cascade
		// attributes to the triage stage, not the generic predict bucket.
		{"core.(*Live).triageBatch", "core.triage"},
		{"ml.(*Cascade)", "core.triage"},
		{"sketch.(*Sketch)", "core.triage"},
		{"core.(*Live).predictBatch", "core.predict"},
		{"core.(*Live).fillBatch", "worker.queue_recv"},
		{"core.(*Live).runWorker", "worker.queue_recv"},
		{"telemetry.", "telemetry.ingest"},
		// Harness and runtime background stacks block on channels too;
		// keep them out of the worker-starvation buckets.
		{"testing.", "other"},
		{"runtime.unique_runtime_registerUniqueMapCleanup", "other"},
		{"runtime.gcBgMarkWorker", "other"},
		{"runtime.chanrecv", "worker.queue_recv"},
		{"runtime.chansend", "worker.queue_send"},
		{"runtime.selectgo", "worker.queue_select"},
		{"obs.(*Journeys)", "obs.journeys"},
		{"obs.(*EventLog)", "obs.events"},
		{"obs.", "obs.scrape"},
	}
}

// attribute maps a stack to its stage: rules in priority order, each
// tried against every frame, first rule with a matching frame wins.
func attribute(frames []string, rules []StageRule) string {
	for _, r := range rules {
		for _, f := range frames {
			if strings.Contains(f, r.Match) {
				return r.Stage
			}
		}
	}
	return "other"
}

// cyclesPerSecond is parsed once from the runtime's own profile
// header (the "cycles/second=N" field of the debug=1 text format);
// mutex/block profile records count blocked time in these cycles.
var (
	cpsOnce sync.Once
	cps     float64
)

func cyclesPerSecond() float64 {
	cpsOnce.Do(func() {
		cps = 1e9 // safe fallback: treat cycles as nanoseconds
		p := pprof.Lookup("mutex")
		if p == nil {
			return
		}
		var buf bytes.Buffer
		if err := p.WriteTo(&buf, 1); err != nil {
			return
		}
		const marker = "cycles/second="
		s := buf.String()
		i := strings.Index(s, marker)
		if i < 0 {
			return
		}
		s = s[i+len(marker):]
		if j := strings.IndexAny(s, " \n"); j >= 0 {
			s = s[:j]
		}
		if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
			cps = v
		}
	})
	return cps
}

// trimFrames drops the innermost runtime/sync plumbing (sync.(*Mutex).
// Lock, runtime.gopark, ...) so the first frame shown is the caller
// that actually waited, and caps the stack at eight frames.
func trimFrames(frames []string) []string {
	i := 0
	for i < len(frames)-1 {
		f := frames[i]
		if strings.HasPrefix(f, "sync.") || strings.HasPrefix(f, "internal/sync.") ||
			(strings.HasPrefix(f, "runtime.") && !strings.HasPrefix(f, "runtime.chan") &&
				!strings.HasPrefix(f, "runtime.selectgo")) {
			i++
			continue
		}
		break
	}
	out := frames[i:]
	if len(out) > 8 {
		out = out[:8]
	}
	return out
}

// symbolize resolves one profile record's PCs to function names.
func symbolize(stk []uintptr) []string {
	frames := runtime.CallersFrames(stk)
	var out []string
	for {
		f, more := frames.Next()
		if f.Function != "" {
			out = append(out, shortFunc(f.Function)+":"+strconv.Itoa(f.Line))
		}
		if !more {
			break
		}
	}
	return out
}

// shortFunc drops the module path prefix from a fully qualified
// function name: "github.com/amlight/intddos/internal/store.(*DB).
// UpsertFlow" becomes "store.(*DB).UpsertFlow".
func shortFunc(fn string) string {
	if i := strings.LastIndex(fn, "/"); i >= 0 {
		return fn[i+1:]
	}
	return fn
}

// collect reads one runtime profile via read (runtime.MutexProfile or
// runtime.BlockProfile), growing the buffer until it fits.
func collect(read func([]runtime.BlockProfileRecord) (int, bool)) []runtime.BlockProfileRecord {
	n, _ := read(nil)
	for {
		recs := make([]runtime.BlockProfileRecord, n+50)
		got, ok := read(recs)
		if ok {
			return recs[:got]
		}
		n = got
	}
}

// Attribution captures the current cumulative mutex and block
// profiles and maps every stack to a pipeline stage. topN <= 0 keeps
// every row. rules == nil selects PipelineStages.
func Attribution(topN int, rules []StageRule) *Report {
	if rules == nil {
		rules = PipelineStages()
	}
	rep := &Report{
		MutexFraction: runtime.SetMutexProfileFraction(-1),
		BlockRateNs:   blockRate(),
	}
	cps := cyclesPerSecond()

	// Mutex profile: each record's Count/Cycles are sampled 1-in-
	// fraction, so scale back up to estimated totals.
	scale := int64(rep.MutexFraction)
	if scale < 1 {
		scale = 1
	}
	byKey := make(map[string]int)
	addRecord := func(kind string, rec runtime.BlockProfileRecord, mult int64) {
		if rec.Count == 0 && rec.Cycles == 0 {
			return
		}
		frames := trimFrames(symbolize(rec.Stack()))
		row := Row{
			Kind:    kind,
			Stage:   attribute(frames, rules),
			Count:   rec.Count * mult,
			Seconds: float64(rec.Cycles*mult) / cps,
			Frames:  frames,
		}
		k := row.stackKey()
		if i, ok := byKey[k]; ok {
			rep.Rows[i].Count += row.Count
			rep.Rows[i].Seconds += row.Seconds
			return
		}
		byKey[k] = len(rep.Rows)
		rep.Rows = append(rep.Rows, row)
	}
	for _, rec := range collect(runtime.MutexProfile) {
		addRecord("mutex", rec, scale)
	}
	for _, rec := range collect(runtime.BlockProfile) {
		addRecord("block", rec, 1)
	}

	sort.SliceStable(rep.Rows, func(i, j int) bool { return rep.Rows[i].Seconds > rep.Rows[j].Seconds })
	if topN > 0 && len(rep.Rows) > topN {
		rep.Rows = rep.Rows[:topN]
	}
	return rep
}

// Diff returns after minus before, row by stack, dropping rows that
// did not grow. Both reports must be un-truncated (topN <= 0) for the
// subtraction to be exact.
func Diff(before, after *Report) *Report {
	prev := make(map[string]Row, len(before.Rows))
	for _, r := range before.Rows {
		prev[r.stackKey()] = r
	}
	out := &Report{MutexFraction: after.MutexFraction, BlockRateNs: after.BlockRateNs}
	for _, r := range after.Rows {
		if p, ok := prev[r.stackKey()]; ok {
			r.Count -= p.Count
			r.Seconds -= p.Seconds
		}
		if r.Count <= 0 && r.Seconds <= 0 {
			continue
		}
		if r.Seconds < 0 {
			r.Seconds = 0
		}
		out.Rows = append(out.Rows, r)
	}
	sort.SliceStable(out.Rows, func(i, j int) bool { return out.Rows[i].Seconds > out.Rows[j].Seconds })
	return out
}

// Top returns the first n rows (all rows when n <= 0).
func (r *Report) Top(n int) []Row {
	if n <= 0 || n > len(r.Rows) {
		n = len(r.Rows)
	}
	return r.Rows[:n]
}

// StageTotals aggregates rows by (kind, stage), sorted by blocked
// seconds descending.
func (r *Report) StageTotals() []Row {
	idx := make(map[string]int)
	var out []Row
	for _, row := range r.Rows {
		k := row.Kind + "|" + row.Stage
		if i, ok := idx[k]; ok {
			out[i].Count += row.Count
			out[i].Seconds += row.Seconds
			continue
		}
		idx[k] = len(out)
		out = append(out, Row{Kind: row.Kind, Stage: row.Stage, Count: row.Count, Seconds: row.Seconds})
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Seconds > out[j].Seconds })
	return out
}

// Format renders the report as the /debug/attrib text: stage totals
// first, then the top stacks.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# contention attribution (mutex fraction 1/%d, block rate %dns)\n",
		r.MutexFraction, r.BlockRateNs)
	if len(r.Rows) == 0 {
		b.WriteString("# no blocked-time samples recorded\n")
		return b.String()
	}
	b.WriteString("\n== blocked time by pipeline stage ==\n")
	fmt.Fprintf(&b, "%-6s %-24s %12s %10s\n", "KIND", "STAGE", "SECONDS", "COUNT")
	for _, row := range r.StageTotals() {
		fmt.Fprintf(&b, "%-6s %-24s %12.6f %10d\n", row.Kind, row.Stage, row.Seconds, row.Count)
	}
	b.WriteString("\n== top stacks by blocked time ==\n")
	for _, row := range r.Rows {
		fmt.Fprintf(&b, "%-6s %-24s %12.6f %10d  %s\n",
			row.Kind, row.Stage, row.Seconds, row.Count, strings.Join(row.Frames, " < "))
	}
	return b.String()
}
