package prof

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"github.com/amlight/intddos/internal/obs"
)

// Default sampling configuration for always-on production profiling:
// 1 in 100 contended mutex events and one block sample per 10µs of
// blocked time keep overhead well under the 5% budget while still
// catching any contention hot enough to flatten throughput.
const (
	DefaultMutexFraction = 100
	DefaultBlockRateNs   = 10_000
	DefaultInterval      = 30 * time.Second
	DefaultCPUWindow     = 2 * time.Second
	DefaultKeep          = 4
)

// Process-global sampling-rate bookkeeping. Rates are process-wide
// runtime state, but many pipelines (and tests) start and stop
// independently, so enables are refcounted: the first enable saves
// the pre-existing configuration, the last disable restores it.
var (
	rateMu       sync.Mutex
	rateUsers    int
	prevMutex    int
	curBlockRate int
)

// blockRate reports the rate most recently applied through this
// package (the runtime offers no getter).
func blockRate() int {
	rateMu.Lock()
	defer rateMu.Unlock()
	return curBlockRate
}

// EnableRates applies mutex/block profile sampling rates and returns
// an idempotent restore function. A non-positive rate leaves that
// profile's configuration untouched. Enables nest; the outermost
// restore reinstates the pre-enable state.
func EnableRates(mutexFraction, blockRateNs int) func() {
	rateMu.Lock()
	rateUsers++
	if rateUsers == 1 {
		prevMutex = runtime.SetMutexProfileFraction(-1)
	}
	if mutexFraction > 0 {
		runtime.SetMutexProfileFraction(mutexFraction)
	}
	if blockRateNs > 0 {
		runtime.SetBlockProfileRate(blockRateNs)
		curBlockRate = blockRateNs
	}
	rateMu.Unlock()
	var once sync.Once
	return func() {
		once.Do(func() {
			rateMu.Lock()
			defer rateMu.Unlock()
			rateUsers--
			if rateUsers == 0 {
				runtime.SetMutexProfileFraction(prevMutex)
				runtime.SetBlockProfileRate(0)
				curBlockRate = 0
			}
		})
	}
}

// Config parameterizes a Profiler.
type Config struct {
	// MutexFraction samples 1-in-N contended mutex events (0 selects
	// DefaultMutexFraction, negative leaves the runtime setting
	// untouched). BlockRateNs records one blocking event sample per
	// that many nanoseconds of blocked time (0 selects
	// DefaultBlockRateNs, negative leaves the setting untouched).
	MutexFraction int
	BlockRateNs   int

	// Dir, when set, enables periodic on-disk profile captures into a
	// bounded ring of files (<kind>-<seq>.pprof, Keep newest retained
	// per kind).
	Dir       string
	Interval  time.Duration // capture period (default 30s)
	CPUWindow time.Duration // CPU profile length per capture (default 2s)
	Keep      int           // snapshots retained per kind (default 4)

	// Rules override the stage-attribution table (nil selects
	// PipelineStages).
	Rules []StageRule

	// Registry, when set, gets the attribution report (/debug/attrib),
	// pprof snapshots in diagnostic bundles, and capture counters.
	Registry *obs.Registry
}

// Profiler owns always-on contention profiling for one pipeline:
// sampling rates held enabled for its lifetime, an optional on-disk
// capture ring, and the attribution wiring on the obs registry.
type Profiler struct {
	cfg     Config
	restore func()
	quit    chan struct{}
	wg      sync.WaitGroup

	mu  sync.Mutex
	seq int

	captures    *obs.Counter
	captureErrs *obs.Counter
}

// Start enables profiling per cfg. It always succeeds in enabling
// rates and registry wiring; a capture directory that cannot be
// created is the only error path.
func Start(cfg Config) (*Profiler, error) {
	if cfg.MutexFraction == 0 {
		cfg.MutexFraction = DefaultMutexFraction
	}
	if cfg.BlockRateNs == 0 {
		cfg.BlockRateNs = DefaultBlockRateNs
	}
	if cfg.Interval <= 0 {
		cfg.Interval = DefaultInterval
	}
	if cfg.CPUWindow <= 0 {
		cfg.CPUWindow = DefaultCPUWindow
	}
	if cfg.CPUWindow > cfg.Interval/2 {
		cfg.CPUWindow = cfg.Interval / 2
	}
	if cfg.Keep <= 0 {
		cfg.Keep = DefaultKeep
	}
	p := &Profiler{cfg: cfg, quit: make(chan struct{})}
	if cfg.Dir != "" {
		if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
			return nil, fmt.Errorf("prof: capture dir: %w", err)
		}
	}
	p.restore = EnableRates(cfg.MutexFraction, cfg.BlockRateNs)
	if reg := cfg.Registry; reg != nil {
		rules := cfg.Rules
		reg.SetAttribution(func(topN int) string {
			return Attribution(topN, rules).Format()
		})
		for _, kind := range []string{"mutex", "block", "goroutine", "heap"} {
			kind := kind
			reg.AddBundleFile("profiles/"+kind+".pb.gz", func() ([]byte, error) {
				return snapshotProfile(kind)
			})
		}
		p.captures = reg.Counter("intddos_prof_captures_total")
		p.captureErrs = reg.Counter("intddos_prof_capture_errors_total")
		reg.GaugeFunc("intddos_prof_mutex_fraction", func() float64 {
			return float64(runtime.SetMutexProfileFraction(-1))
		})
		reg.GaugeFunc("intddos_prof_block_rate_ns", func() float64 {
			return float64(blockRate())
		})
	}
	if cfg.Dir != "" {
		p.wg.Add(1)
		go p.loop()
	}
	return p, nil
}

// Stop halts the capture loop and restores the pre-Start sampling
// rates. Safe to call more than once.
func (p *Profiler) Stop() {
	if p == nil {
		return
	}
	p.mu.Lock()
	quit := p.quit
	p.quit = nil
	p.mu.Unlock()
	if quit == nil {
		return
	}
	close(quit)
	p.wg.Wait()
	p.restore()
}

// Attribution returns the current attribution report under the
// profiler's rules.
func (p *Profiler) Attribution(topN int) *Report {
	var rules []StageRule
	if p != nil {
		rules = p.cfg.Rules
	}
	return Attribution(topN, rules)
}

func (p *Profiler) loop() {
	defer p.wg.Done()
	p.mu.Lock()
	quit := p.quit
	p.mu.Unlock()
	t := time.NewTicker(p.cfg.Interval)
	defer t.Stop()
	for {
		select {
		case <-quit:
			return
		case <-t.C:
			if err := p.CaptureNow(); err != nil {
				p.captureErrs.Inc()
			} else {
				p.captures.Inc()
			}
		}
	}
}

// CaptureNow writes one snapshot of every profile kind (plus a short
// CPU profile) into the capture ring, pruning each kind to Keep files.
func (p *Profiler) CaptureNow() error {
	if p == nil || p.cfg.Dir == "" {
		return fmt.Errorf("prof: no capture directory configured")
	}
	p.mu.Lock()
	p.seq++
	seq := p.seq
	quit := p.quit
	p.mu.Unlock()

	var firstErr error
	for _, kind := range []string{"mutex", "block", "goroutine", "heap"} {
		data, err := snapshotProfile(kind)
		if err == nil {
			err = os.WriteFile(p.file(kind, seq), data, 0o644)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
		p.prune(kind)
	}

	// CPU is windowed rather than cumulative; a concurrent profile
	// (e.g. someone hitting /debug/pprof/profile) makes StartCPUProfile
	// fail, which just skips this round's CPU capture.
	f, err := os.Create(p.file("cpu", seq))
	if err == nil {
		if err := pprof.StartCPUProfile(f); err == nil {
			select {
			case <-time.After(p.cfg.CPUWindow):
			case <-quit:
			}
			pprof.StopCPUProfile()
			f.Close()
		} else {
			f.Close()
			os.Remove(f.Name())
		}
		p.prune("cpu")
	} else if firstErr == nil {
		firstErr = err
	}
	return firstErr
}

func (p *Profiler) file(kind string, seq int) string {
	return filepath.Join(p.cfg.Dir, fmt.Sprintf("%s-%06d.pprof", kind, seq))
}

// prune keeps the newest Keep snapshots of one kind.
func (p *Profiler) prune(kind string) {
	matches, err := filepath.Glob(filepath.Join(p.cfg.Dir, kind+"-*.pprof"))
	if err != nil || len(matches) <= p.cfg.Keep {
		return
	}
	sort.Strings(matches) // zero-padded sequence numbers sort chronologically
	for _, old := range matches[:len(matches)-p.cfg.Keep] {
		os.Remove(old)
	}
}

// snapshotProfile serializes one named runtime profile in the binary
// pprof format.
func snapshotProfile(kind string) ([]byte, error) {
	prof := pprof.Lookup(kind)
	if prof == nil {
		return nil, fmt.Errorf("prof: unknown profile %q", kind)
	}
	var buf bytes.Buffer
	if err := prof.WriteTo(&buf, 0); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
