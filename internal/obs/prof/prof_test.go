package prof

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/amlight/intddos/internal/obs"
)

// grindMutex produces real lock contention: every goroutine holds the
// mutex long enough that the others observably block on it. The
// function name anchors the attribution test's custom stage rule.
func grindMutex(workers, rounds int) {
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				mu.Lock()
				time.Sleep(50 * time.Microsecond)
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestAttributionSeesInducedContention(t *testing.T) {
	restore := EnableRates(1, 100)
	defer restore()

	before := Attribution(0, nil)
	grindMutex(4, 40)
	rules := append([]StageRule{{Match: "prof.grindMutex", Stage: "test.grind"}}, PipelineStages()...)
	diff := Diff(before, Attribution(0, rules))

	var hit *Row
	for i := range diff.Rows {
		if diff.Rows[i].Stage == "test.grind" {
			hit = &diff.Rows[i]
			break
		}
	}
	if hit == nil {
		t.Fatalf("no row attributed to test.grind; rows: %v", diff.Rows)
	}
	if hit.Count <= 0 || hit.Seconds <= 0 {
		t.Errorf("attributed row has count=%d seconds=%f, want positive", hit.Count, hit.Seconds)
	}
	// The trimmed stack's first frame is the caller that waited, not
	// sync.(*Mutex).Lock plumbing.
	if len(hit.Frames) == 0 || strings.HasPrefix(hit.Frames[0], "sync.") {
		t.Errorf("frames not trimmed: %v", hit.Frames)
	}

	totals := diff.StageTotals()
	if len(totals) == 0 || totals[0].Seconds <= 0 {
		t.Errorf("stage totals empty or zero: %v", totals)
	}
	text := diff.Format()
	for _, want := range []string{"blocked time by pipeline stage", "top stacks by blocked time", "test.grind"} {
		if !strings.Contains(text, want) {
			t.Errorf("Format() missing %q:\n%s", want, text)
		}
	}
}

func TestEnableRatesNesting(t *testing.T) {
	base := runtime.SetMutexProfileFraction(-1)
	r1 := EnableRates(7, 1000)
	if got := runtime.SetMutexProfileFraction(-1); got != 7 {
		t.Errorf("fraction after first enable = %d, want 7", got)
	}
	r2 := EnableRates(13, 2000)
	if got := runtime.SetMutexProfileFraction(-1); got != 13 {
		t.Errorf("fraction after nested enable = %d, want 13", got)
	}
	r2()
	r2() // idempotent
	if got := runtime.SetMutexProfileFraction(-1); got != 13 {
		t.Errorf("fraction after inner restore = %d, want 13 (outer still holds)", got)
	}
	r1()
	if got := runtime.SetMutexProfileFraction(-1); got != base {
		t.Errorf("fraction after full restore = %d, want %d", got, base)
	}
	if blockRate() != 0 {
		t.Errorf("block rate after full restore = %d, want 0", blockRate())
	}
}

func TestProfilerCaptureRing(t *testing.T) {
	dir := t.TempDir()
	p, err := Start(Config{
		Dir:       dir,
		Interval:  time.Hour, // no periodic firing during the test
		CPUWindow: 10 * time.Millisecond,
		Keep:      2,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	for i := 0; i < 3; i++ {
		if err := p.CaptureNow(); err != nil {
			t.Fatalf("capture %d: %v", i, err)
		}
	}
	for _, kind := range []string{"mutex", "block", "goroutine", "heap", "cpu"} {
		matches, _ := filepath.Glob(filepath.Join(dir, kind+"-*.pprof"))
		if len(matches) != 2 {
			t.Errorf("%s snapshots = %d, want pruned to 2: %v", kind, len(matches), matches)
		}
	}
	// Snapshots are non-empty binary pprof payloads (gzip magic).
	matches, _ := filepath.Glob(filepath.Join(dir, "mutex-*.pprof"))
	data, err := os.ReadFile(matches[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
		t.Errorf("mutex snapshot does not look like a pprof gzip payload: % x", data[:min(8, len(data))])
	}
}

func TestProfilerRegistryWiring(t *testing.T) {
	reg := obs.NewRegistry()
	p, err := Start(Config{MutexFraction: 2, BlockRateNs: 500, Registry: reg})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Stop()

	if report, ok := reg.Attribution(5); !ok || !strings.Contains(report, "contention attribution") {
		t.Errorf("registry attribution = %v %q", ok, report)
	}
	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	for _, want := range []string{"intddos_prof_mutex_fraction 2", "intddos_prof_block_rate_ns 500"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("prof gauges missing %q", want)
		}
	}
	if err := reg.WriteBundle(io.Discard); err != nil {
		t.Fatalf("bundle with profile snapshots: %v", err)
	}

	// Stop is idempotent and restores rates.
	p.Stop()
	p.Stop()
	var nilP *Profiler
	nilP.Stop()
}
