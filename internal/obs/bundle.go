package obs

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"
)

// bundleEntry is one extra file a component contributes to diagnostic
// bundles (profiles from internal/obs/prof, the pipeline's resolved
// config, ...).
type bundleEntry struct {
	name string
	fn   func() ([]byte, error)
}

// AddBundleFile registers an extra file for WriteBundle under name
// (slash-separated paths allowed, e.g. "profiles/mutex.pb.gz"). The
// callback runs at bundle time on the requesting goroutine. The first
// registration for a name wins.
func (r *Registry) AddBundleFile(name string, fn func() ([]byte, error)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, e := range r.bundle {
		if e.name == name {
			return
		}
	}
	r.bundle = append(r.bundle, bundleEntry{name: name, fn: fn})
}

// SetAttribution installs the contention-attribution renderer served
// on /debug/attrib and embedded in bundles (see internal/obs/prof).
// The last registration wins.
func (r *Registry) SetAttribution(fn func(topN int) string) {
	r.mu.Lock()
	r.attribFn = fn
	r.mu.Unlock()
}

// Attribution renders the contention-attribution report, reporting
// whether a producer is installed.
func (r *Registry) Attribution(topN int) (string, bool) {
	r.mu.Lock()
	fn := r.attribFn
	r.mu.Unlock()
	if fn == nil {
		return "", false
	}
	return fn(topN), true
}

// WriteBundle writes a diagnostic bundle — a gzipped tarball of
// everything needed to diagnose the pipeline after the fact: a
// metrics snapshot (Prometheus text and human summary), health state,
// the structured event tail, sampled flow journeys, the contention
// attribution report, and whatever extra files components registered
// with AddBundleFile (profiles, resolved config). A failing extra
// file becomes <name>.error inside the bundle instead of failing the
// whole capture: bundles are pulled when things are already wrong.
func (r *Registry) WriteBundle(w io.Writer) error {
	gz := gzip.NewWriter(w)
	tw := tar.NewWriter(gz)
	now := time.Now()

	add := func(name string, data []byte) error {
		hdr := &tar.Header{
			Name:    name,
			Mode:    0o644,
			Size:    int64(len(data)),
			ModTime: now,
		}
		if err := tw.WriteHeader(hdr); err != nil {
			return err
		}
		_, err := tw.Write(data)
		return err
	}

	var meta bytes.Buffer
	fmt.Fprintf(&meta, "captured: %s\n", now.UTC().Format(time.RFC3339Nano))
	fmt.Fprintf(&meta, "go: %s %s/%s\n", runtime.Version(), runtime.GOOS, runtime.GOARCH)
	fmt.Fprintf(&meta, "pid: %d\n", os.Getpid())
	fmt.Fprintf(&meta, "gomaxprocs: %d\n", runtime.GOMAXPROCS(0))
	fmt.Fprintf(&meta, "numcpu: %d\n", runtime.NumCPU())
	fmt.Fprintf(&meta, "goroutines: %d\n", runtime.NumGoroutine())
	if err := add("meta.txt", meta.Bytes()); err != nil {
		return err
	}

	var prom bytes.Buffer
	r.WritePrometheus(&prom)
	if err := add("metrics.prom", prom.Bytes()); err != nil {
		return err
	}
	if err := add("metrics.txt", []byte(r.Snapshot().FormatSummary())); err != nil {
		return err
	}

	var health bytes.Buffer
	if h, ok := r.Health(); ok {
		fmt.Fprintln(&health, h.State)
		for _, d := range h.Detail {
			fmt.Fprintln(&health, d)
		}
	} else {
		fmt.Fprintln(&health, "ok (no health callback wired)")
	}
	if err := add("health.txt", health.Bytes()); err != nil {
		return err
	}

	r.mu.Lock()
	events := r.events
	journeys := r.journeys
	attribFn := r.attribFn
	extras := append([]bundleEntry(nil), r.bundle...)
	r.mu.Unlock()

	var ev bytes.Buffer
	if err := events.WriteJSONL(&ev); err != nil {
		return err
	}
	if err := add("events.jsonl", ev.Bytes()); err != nil {
		return err
	}

	if journeys != nil {
		var jb bytes.Buffer
		journeys.WriteText(&jb)
		if err := add("journeys.txt", jb.Bytes()); err != nil {
			return err
		}
	}

	if attribFn != nil {
		if err := add("attrib.txt", []byte(attribFn(32))); err != nil {
			return err
		}
	}

	for _, e := range extras {
		data, err := e.fn()
		if err != nil {
			if aerr := add(e.name+".error", []byte(err.Error()+"\n")); aerr != nil {
				return aerr
			}
			continue
		}
		if err := add(e.name, data); err != nil {
			return err
		}
	}

	if err := tw.Close(); err != nil {
		return err
	}
	return gz.Close()
}
