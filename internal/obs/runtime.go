package obs

import (
	"math"
	"runtime/metrics"
	"sync"
	"time"
)

// runtimeMetricNames are the runtime/metrics series the registry
// mirrors. Names are looked up against metrics.All() at registration,
// so a name this Go version does not export is simply skipped instead
// of reading as garbage.
var runtimeMetricNames = []string{
	"/sched/goroutines:goroutines",
	"/sched/latencies:seconds",
	"/sched/pauses/total/gc:seconds",
	"/gc/cycles/total:gc-cycles",
	"/gc/heap/allocs:bytes",
	"/gc/heap/goal:bytes",
	"/memory/classes/heap/objects:bytes",
	"/memory/classes/total:bytes",
}

// runtimeSampler batches runtime/metrics reads: one metrics.Read per
// refresh window serves every registered gauge, so a /metrics scrape
// does not pay N stop-the-world-free-but-not-free reads.
type runtimeSampler struct {
	mu      sync.Mutex
	last    time.Time
	samples []metrics.Sample
	idx     map[string]int
}

const runtimeRefresh = 100 * time.Millisecond

func newRuntimeSampler(names []string) *runtimeSampler {
	supported := make(map[string]bool)
	for _, d := range metrics.All() {
		supported[d.Name] = true
	}
	s := &runtimeSampler{idx: make(map[string]int)}
	for _, n := range names {
		if !supported[n] {
			continue
		}
		s.idx[n] = len(s.samples)
		s.samples = append(s.samples, metrics.Sample{Name: n})
	}
	return s
}

func (s *runtimeSampler) has(name string) bool {
	_, ok := s.idx[name]
	return ok
}

func (s *runtimeSampler) refreshLocked() {
	if time.Since(s.last) < runtimeRefresh {
		return
	}
	metrics.Read(s.samples)
	s.last = time.Now()
}

// value returns a scalar series as float64 (histograms yield their
// total event count).
func (s *runtimeSampler) value(name string) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.idx[name]
	if !ok {
		return 0
	}
	s.refreshLocked()
	v := s.samples[i].Value
	switch v.Kind() {
	case metrics.KindUint64:
		return float64(v.Uint64())
	case metrics.KindFloat64:
		return v.Float64()
	case metrics.KindFloat64Histogram:
		var n uint64
		for _, c := range v.Float64Histogram().Counts {
			n += c
		}
		return float64(n)
	}
	return 0
}

// quantile returns the q-quantile of a histogram series, approximated
// by the upper edge of the bucket the quantile falls in.
func (s *runtimeSampler) quantile(name string, q float64) float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	i, ok := s.idx[name]
	if !ok {
		return 0
	}
	s.refreshLocked()
	v := s.samples[i].Value
	if v.Kind() != metrics.KindFloat64Histogram {
		return 0
	}
	return histQuantile(v.Float64Histogram(), q)
}

func histQuantile(h *metrics.Float64Histogram, q float64) float64 {
	if h == nil || len(h.Counts) == 0 {
		return 0
	}
	var total uint64
	for _, c := range h.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var cum uint64
	for i, c := range h.Counts {
		cum += c
		if cum > target {
			// Bucket i spans Buckets[i]..Buckets[i+1]; report the finite
			// edge nearest the mass.
			hi := h.Buckets[i+1]
			if math.IsInf(hi, 1) { // +Inf bucket: fall back to the lower edge
				return h.Buckets[i]
			}
			return hi
		}
	}
	return h.Buckets[len(h.Buckets)-1]
}

// RegisterRuntimeMetrics mirrors the Go runtime's own telemetry —
// goroutine count, heap size, GC pause and scheduler-latency
// distributions — into reg, next to the pipeline metrics. Repeated
// registration on the same registry is a no-op. Reads are batched and
// cached for 100ms, so scrape cost stays one metrics.Read.
func RegisterRuntimeMetrics(reg *Registry) {
	s := newRuntimeSampler(runtimeMetricNames)
	gauge := func(metric string) func() float64 {
		return func() float64 { return s.value(metric) }
	}
	if s.has("/sched/goroutines:goroutines") {
		reg.GaugeFunc("go_goroutines", gauge("/sched/goroutines:goroutines"))
	}
	if s.has("/memory/classes/heap/objects:bytes") {
		reg.GaugeFunc("go_heap_objects_bytes", gauge("/memory/classes/heap/objects:bytes"))
	}
	if s.has("/memory/classes/total:bytes") {
		reg.GaugeFunc("go_memory_total_bytes", gauge("/memory/classes/total:bytes"))
	}
	if s.has("/gc/heap/goal:bytes") {
		reg.GaugeFunc("go_gc_heap_goal_bytes", gauge("/gc/heap/goal:bytes"))
	}
	if s.has("/gc/cycles/total:gc-cycles") {
		reg.CounterFunc("go_gc_cycles_total", gauge("/gc/cycles/total:gc-cycles"))
	}
	if s.has("/gc/heap/allocs:bytes") {
		reg.CounterFunc("go_gc_heap_allocs_bytes_total", gauge("/gc/heap/allocs:bytes"))
	}
	quantiles := func(name, metric string) {
		vec := reg.GaugeVec(name, "quantile")
		for _, q := range []struct {
			label string
			q     float64
		}{{"0.5", 0.5}, {"0.9", 0.9}, {"0.99", 0.99}} {
			q := q
			vec.WithFunc(q.label, func() float64 { return s.quantile(metric, q.q) })
		}
	}
	if s.has("/sched/latencies:seconds") {
		quantiles("go_sched_latency_seconds", "/sched/latencies:seconds")
	}
	if s.has("/sched/pauses/total/gc:seconds") {
		quantiles("go_gc_pause_seconds", "/sched/pauses/total/gc:seconds")
		reg.CounterFunc("go_gc_pauses_total", gauge("/sched/pauses/total/gc:seconds"))
	}
}
