package obs

import (
	"archive/tar"
	"bytes"
	"compress/gzip"
	"encoding/json"
	"errors"
	"io"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestEventLogRingAndRendering(t *testing.T) {
	l := NewEventLog(4)
	for i := 0; i < 6; i++ {
		l.Append(Event{Msg: "ev", Attrs: map[string]string{"i": string(rune('a' + i))}})
	}
	recent := l.Recent()
	if len(recent) != 4 {
		t.Fatalf("ring kept %d events, want 4", len(recent))
	}
	if recent[0].Attrs["i"] != "c" || recent[3].Attrs["i"] != "f" {
		t.Errorf("ring tail = %v..%v, want c..f", recent[0].Attrs["i"], recent[3].Attrs["i"])
	}
	if l.Total() != 6 || l.Dropped() != 2 {
		t.Errorf("total=%d dropped=%d, want 6, 2", l.Total(), l.Dropped())
	}
	// Sequence numbers are assigned monotonically at append.
	for i := 1; i < len(recent); i++ {
		if recent[i].Seq != recent[i-1].Seq+1 {
			t.Errorf("seq not monotonic: %d then %d", recent[i-1].Seq, recent[i].Seq)
		}
	}

	ev := Event{
		Time:  time.Date(2026, 2, 3, 4, 5, 6, 0, time.UTC),
		Level: "INFO", Msg: "worker restarted",
		Attrs: map[string]string{"worker": "2", "component": "worker"},
	}
	want := "2026-02-03T04:05:06Z INFO worker restarted component=worker worker=2"
	if got := ev.String(); got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
}

func TestEventLogSlogHandler(t *testing.T) {
	l := NewEventLog(0)
	log := l.Logger()
	log.Debug("chatter") // below Info: dropped
	log.Info("checkpoint written", "path", "/tmp/x", "bytes", 123)
	log.WithGroup("store").With("shard", 3).Warn("slow", "op", "upsert")

	recent := l.Recent()
	if len(recent) != 2 {
		t.Fatalf("kept %d events, want 2 (debug dropped)", len(recent))
	}
	if recent[0].Msg != "checkpoint written" || recent[0].Attrs["bytes"] != "123" {
		t.Errorf("event 0 = %+v", recent[0])
	}
	if recent[1].Level != "WARN" || recent[1].Attrs["store.shard"] != "3" || recent[1].Attrs["store.op"] != "upsert" {
		t.Errorf("grouped attrs = %+v", recent[1].Attrs)
	}

	// Nil logs discard without panicking.
	var nilLog *EventLog
	nilLog.Logger().Info("into the void")
	nilLog.Append(Event{Msg: "x"})
	if nilLog.Recent() != nil || nilLog.Total() != 0 {
		t.Error("nil EventLog should be inert")
	}
}

func TestEventLogJSONL(t *testing.T) {
	l := NewEventLog(0)
	l.Logger().Info("pipeline started", "shards", 4)
	var buf bytes.Buffer
	if err := l.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var ev Event
	if err := json.Unmarshal(buf.Bytes(), &ev); err != nil {
		t.Fatalf("jsonl line not valid JSON: %v (%q)", err, buf.String())
	}
	if ev.Msg != "pipeline started" || ev.Attrs["shards"] != "4" {
		t.Errorf("decoded = %+v", ev)
	}
}

func TestJourneysLifecycle(t *testing.T) {
	js := NewJourneys(1, 8)
	if !js.ShouldSample() {
		t.Fatal("sampleEvery=1 must sample everything")
	}
	js.Begin("flowA", 1, "ingest")
	if js.Active() != 1 {
		t.Fatalf("active = %d, want 1", js.Active())
	}
	js.Hop("flowA", 1, "journal")
	js.Hop("flowA", 1, "poll")
	js.Hop("flowB", 9, "poll") // unfollowed: no-op
	js.Complete("flowA", 1, "vote")
	if js.Active() != 0 {
		t.Fatalf("active after complete = %d, want 0", js.Active())
	}

	js.Begin("flowB", 2, "ingest")
	js.Abort("flowB", 2, "shed")

	recent := js.Recent()
	if len(recent) != 2 {
		t.Fatalf("finished = %d, want 2", len(recent))
	}
	a, b := recent[0], recent[1]
	if a.Flow != "flowA" || !a.Done || a.Aborted != "" {
		t.Errorf("journey A = %+v", a)
	}
	for _, hop := range []string{"ingest", "journal", "poll", "vote"} {
		if _, ok := a.Hop(hop); !ok {
			t.Errorf("journey A missing hop %q: %v", hop, a.Hops)
		}
	}
	if a.Total() < 0 {
		t.Errorf("total = %v", a.Total())
	}
	if b.Aborted != "shed" {
		t.Errorf("journey B aborted = %q, want shed", b.Aborted)
	}
	completed, aborted, evicted := js.Stats()
	if completed != 1 || aborted != 1 || evicted != 0 {
		t.Errorf("stats = %d/%d/%d, want 1/1/0", completed, aborted, evicted)
	}

	var buf bytes.Buffer
	js.WriteText(&buf)
	if !strings.Contains(buf.String(), "flowA") || !strings.Contains(buf.String(), "aborted=shed") {
		t.Errorf("WriteText = %q", buf.String())
	}
}

func TestJourneysSamplingRate(t *testing.T) {
	js := NewJourneys(4, 8)
	sampled := 0
	for i := 0; i < 400; i++ {
		if js.ShouldSample() {
			sampled++
		}
	}
	if sampled != 100 {
		t.Errorf("sampled %d of 400 at 1-in-4, want 100", sampled)
	}
}

func TestJourneysEvictsWhenFull(t *testing.T) {
	js := NewJourneys(1, 1) // maxActive = 4
	for i := 0; i < 6; i++ {
		js.Begin("flow", i, "ingest")
	}
	if js.Active() != 4 {
		t.Errorf("active = %d, want capped at 4", js.Active())
	}
	_, _, evicted := js.Stats()
	if evicted != 2 {
		t.Errorf("evicted = %d, want 2", evicted)
	}
}

func TestJourneysNilSafe(t *testing.T) {
	var js *Journeys
	if js.ShouldSample() || js.Active() != 0 || js.SampleEvery() != 0 {
		t.Error("nil sampler should be inert")
	}
	js.Begin("f", 1, "ingest")
	js.Hop("f", 1, "poll")
	js.Complete("f", 1, "vote")
	js.Abort("f", 1, "shed")
	js.WriteText(io.Discard)
	if js.Recent() != nil {
		t.Error("nil Recent should be nil")
	}
}

func TestJourneysConcurrent(t *testing.T) {
	js := NewJourneys(1, 16)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				seq := g*1000 + i
				js.Begin("f", seq, "ingest")
				js.Hop("f", seq, "poll")
				if i%2 == 0 {
					js.Complete("f", seq, "vote")
				} else {
					js.Abort("f", seq, "shed")
				}
			}
		}()
	}
	wg.Wait()
	completed, aborted, evicted := js.Stats()
	if completed+aborted+evicted+uint64(js.Active()) != 800 {
		t.Errorf("accounting leak: completed=%d aborted=%d evicted=%d active=%d",
			completed, aborted, evicted, js.Active())
	}
}

func TestRegisterRuntimeMetrics(t *testing.T) {
	reg := NewRegistry()
	RegisterRuntimeMetrics(reg)
	RegisterRuntimeMetrics(reg) // idempotent

	var buf bytes.Buffer
	reg.WritePrometheus(&buf)
	body := buf.String()
	for _, want := range []string{"go_goroutines", "go_heap_objects_bytes", "go_gc_cycles_total", "go_sched_latency_seconds"} {
		if !strings.Contains(body, want) {
			t.Errorf("runtime metrics missing %q", want)
		}
	}
	// Sanity: the process has at least one goroutine and a live heap.
	snap := reg.Snapshot()
	if g := snap.Gauges["go_goroutines"]; g < 1 {
		t.Errorf("go_goroutines = %v", g)
	}
	if h := snap.Gauges["go_heap_objects_bytes"]; h <= 0 {
		t.Errorf("go_heap_objects_bytes = %v", h)
	}
}

// readBundle decodes a bundle into name → content.
func readBundle(t *testing.T, raw []byte) map[string][]byte {
	t.Helper()
	gz, err := gzip.NewReader(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("bundle is not gzip: %v", err)
	}
	tr := tar.NewReader(gz)
	files := map[string][]byte{}
	for {
		hdr, err := tr.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("bundle tar: %v", err)
		}
		data, err := io.ReadAll(tr)
		if err != nil {
			t.Fatal(err)
		}
		files[hdr.Name] = data
	}
	return files
}

func TestWriteBundleRoundTrip(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("intddos_reports_total").Add(7)
	reg.Events().Logger().Info("pipeline started", "shards", 2)
	js := NewJourneys(1, 4)
	js.Begin("f", 1, "ingest")
	js.Complete("f", 1, "vote")
	reg.SetFlowJourneys(js)
	reg.SetAttribution(func(topN int) string { return "attrib report top=" + string(rune('0'+topN%10)) })
	reg.AddBundleFile("profiles/mutex.pb.gz", func() ([]byte, error) { return []byte{1, 2, 3}, nil })
	reg.AddBundleFile("broken.bin", func() ([]byte, error) { return nil, errors.New("boom") })
	reg.AddBundleFile("broken.bin", func() ([]byte, error) { return []byte("dup"), nil }) // first wins

	var buf bytes.Buffer
	if err := reg.WriteBundle(&buf); err != nil {
		t.Fatal(err)
	}
	files := readBundle(t, buf.Bytes())

	for _, want := range []string{"meta.txt", "metrics.prom", "metrics.txt", "health.txt", "events.jsonl", "journeys.txt", "attrib.txt", "profiles/mutex.pb.gz", "broken.bin.error"} {
		if _, ok := files[want]; !ok {
			t.Errorf("bundle missing %s (have %v)", want, keys(files))
		}
	}
	if !strings.Contains(string(files["metrics.prom"]), "intddos_reports_total 7") {
		t.Errorf("metrics.prom = %q", files["metrics.prom"])
	}
	if !strings.Contains(string(files["events.jsonl"]), "pipeline started") {
		t.Errorf("events.jsonl = %q", files["events.jsonl"])
	}
	if !strings.Contains(string(files["journeys.txt"]), "flow journeys") {
		t.Errorf("journeys.txt = %q", files["journeys.txt"])
	}
	if !bytes.Equal(files["profiles/mutex.pb.gz"], []byte{1, 2, 3}) {
		t.Errorf("extra file corrupted: %v", files["profiles/mutex.pb.gz"])
	}
	if !strings.Contains(string(files["broken.bin.error"]), "boom") {
		t.Errorf("error entry = %q", files["broken.bin.error"])
	}
}

func keys(m map[string][]byte) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestDiagnosticEndpoints(t *testing.T) {
	reg := NewRegistry()
	reg.Events().Logger().Info("worker restarted", "worker", "1")
	js := NewJourneys(1, 4)
	js.Begin("f", 1, "ingest")
	js.Complete("f", 1, "vote")
	reg.SetFlowJourneys(js)
	reg.SetAttribution(func(topN int) string { return "== blocked time by pipeline stage ==" })

	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	code, body := get(t, srv, "/debug/events")
	if code != 200 || !strings.Contains(body, "worker restarted") {
		t.Errorf("/debug/events = %d %q", code, body)
	}
	code, body = get(t, srv, "/debug/events?format=json")
	if code != 200 || !strings.Contains(body, `"msg":"worker restarted"`) {
		t.Errorf("/debug/events?format=json = %d %q", code, body)
	}
	code, body = get(t, srv, "/traces/flow")
	if code != 200 || !strings.Contains(body, "vote") {
		t.Errorf("/traces/flow = %d %q", code, body)
	}
	code, body = get(t, srv, "/debug/attrib")
	if code != 200 || !strings.Contains(body, "blocked time by pipeline stage") {
		t.Errorf("/debug/attrib = %d %q", code, body)
	}

	resp, err := srv.Client().Get(srv.URL + "/debug/bundle")
	if err != nil {
		t.Fatal(err)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("/debug/bundle = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/gzip" {
		t.Errorf("bundle content-type = %q", ct)
	}
	files := readBundle(t, raw)
	if _, ok := files["meta.txt"]; !ok {
		t.Errorf("bundle over HTTP missing meta.txt: %v", keys(files))
	}

	// An empty registry still serves the endpoints, with hints.
	bare := httptest.NewServer(NewRegistry().Handler())
	defer bare.Close()
	if code, body := get(t, bare, "/traces/flow"); code != 200 || !strings.Contains(body, "no flow-journey sampler") {
		t.Errorf("bare /traces/flow = %d %q", code, body)
	}
	if code, body := get(t, bare, "/debug/attrib"); code != 200 || !strings.Contains(body, "no attribution producer") {
		t.Errorf("bare /debug/attrib = %d %q", code, body)
	}
}
