package obs

import (
	"math"
	"math/rand"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAndGauge(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("c_total")
	c.Inc()
	c.Add(4)
	c.Add(-3) // ignored: counters are monotone
	if got := c.Value(); got != 5 {
		t.Errorf("counter = %d, want 5", got)
	}
	if reg.Counter("c_total") != c {
		t.Error("re-registration returned a different counter")
	}
	g := reg.Gauge("g")
	g.Set(2.5)
	if got := g.Value(); got != 2.5 {
		t.Errorf("gauge = %v, want 2.5", got)
	}
}

func TestNilSafety(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var cv *CounterVec
	var hv *HistogramVec
	var tr *Tracer
	var sp *Trace
	c.Inc()
	c.Add(3)
	g.Set(1)
	h.Observe(1)
	h.Since(time.Now())
	cv.With("x").Inc()
	hv.With("x").Observe(1)
	sp = tr.Sample("flow")
	sp.Stage("s", time.Now())
	tr.Finish(sp)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 {
		t.Error("nil instruments produced values")
	}
	if s := h.Snapshot(); s.Count != 0 {
		t.Error("nil histogram snapshot non-empty")
	}
}

func TestKindMismatchPanics(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("x")
	defer func() {
		if recover() == nil {
			t.Error("no panic on kind mismatch")
		}
	}()
	reg.Gauge("x")
}

func TestCounterVec(t *testing.T) {
	reg := NewRegistry()
	v := reg.CounterVec("decisions_total", "attack_type")
	v.With("synflood").Add(3)
	v.With("benign").Inc()
	v.With("synflood").Inc()
	vals := v.Values()
	if vals["synflood"] != 4 || vals["benign"] != 1 {
		t.Errorf("vec values = %v", vals)
	}
}

func TestHistogramPointMass(t *testing.T) {
	h := newHistogram("h", LatencyBuckets())
	for i := 0; i < 1000; i++ {
		h.Observe(0.0042)
	}
	s := h.Snapshot()
	if s.Count != 1000 {
		t.Fatalf("count = %d", s.Count)
	}
	if s.Min != 0.0042 || s.Max != 0.0042 {
		t.Errorf("min/max = %v/%v", s.Min, s.Max)
	}
	// Every quantile of a point mass is the point: min/max clamping
	// must make this exact despite the wide covering bucket.
	for _, q := range []float64{0.01, 0.5, 0.95, 0.99, 1} {
		if got := s.Quantile(q); got != 0.0042 {
			t.Errorf("q%.2f = %v, want 0.0042", q, got)
		}
	}
	if math.Abs(s.Mean()-0.0042) > 1e-12 {
		t.Errorf("mean = %v", s.Mean())
	}
}

func TestHistogramUniformQuantiles(t *testing.T) {
	// Fine uniform buckets over [0,1): interpolation should recover
	// the true quantiles of a uniform sample to within a bucket width.
	bounds := make([]float64, 100)
	for i := range bounds {
		bounds[i] = float64(i+1) / 100
	}
	h := newHistogram("u", bounds)
	rng := rand.New(rand.NewSource(7))
	const n = 200000
	for i := 0; i < n; i++ {
		h.Observe(rng.Float64())
	}
	s := h.Snapshot()
	for _, q := range []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.99} {
		got := s.Quantile(q)
		if math.Abs(got-q) > 0.015 {
			t.Errorf("uniform q%.2f = %v (err %v)", q, got, math.Abs(got-q))
		}
	}
}

func TestHistogramExponentialQuantiles(t *testing.T) {
	// Exponential(rate=1) against the latency ladder: quantile error
	// should stay within the covering bucket's width.
	h := newHistogram("e", LatencyBuckets())
	rng := rand.New(rand.NewSource(11))
	const n = 100000
	for i := 0; i < n; i++ {
		h.Observe(rng.ExpFloat64())
	}
	s := h.Snapshot()
	for _, q := range []float64{0.5, 0.9, 0.99} {
		want := -math.Log(1 - q) // true quantile of Exp(1)
		got := s.Quantile(q)
		// Tolerance: one bucket step on the 1-2.5-5 ladder is at most
		// 2.5x, so require the estimate within a factor of 2.5.
		if got < want/2.5 || got > want*2.5 {
			t.Errorf("exp q%.2f = %v, want ~%v", q, got, want)
		}
	}
	if s.Quantile(1) != s.Max {
		t.Errorf("q1 = %v, max = %v", s.Quantile(1), s.Max)
	}
}

func TestHistogramEmptyAndEdgeQuantiles(t *testing.T) {
	h := newHistogram("h", LatencyBuckets())
	if !math.IsNaN(h.Snapshot().Quantile(0.5)) {
		t.Error("empty quantile not NaN")
	}
	h.Observe(123) // beyond the last bound: overflow bucket
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 123 {
		t.Errorf("overflow-bucket median = %v, want 123 (clamped to max)", got)
	}
	if s.Counts[len(s.Counts)-1] != 1 {
		t.Error("observation not in +Inf bucket")
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := newHistogram("c", LatencyBuckets())
	var wg sync.WaitGroup
	const workers, per = 8, 10000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < per; i++ {
				h.Observe(rng.Float64())
			}
		}(w)
	}
	wg.Wait()
	s := h.Snapshot()
	if s.Count != workers*per {
		t.Errorf("count = %d, want %d", s.Count, workers*per)
	}
	var sumBuckets uint64
	for _, c := range s.Counts {
		sumBuckets += c
	}
	if sumBuckets != s.Count {
		t.Errorf("bucket sum %d != count %d", sumBuckets, s.Count)
	}
}

func TestHistogramVec(t *testing.T) {
	reg := NewRegistry()
	v := reg.HistogramVec("stage_seconds", "stage", nil)
	v.With("ingest").Observe(0.001)
	v.With("ingest").Observe(0.002)
	v.With("vote").Observe(0.1)
	snaps := v.Snapshots()
	if snaps["ingest"].Count != 2 || snaps["vote"].Count != 1 {
		t.Errorf("vec snapshots = %+v", snaps)
	}
}

func TestTracerSampling(t *testing.T) {
	tr := newTracer("t", 4, 8)
	sampled := 0
	for i := 0; i < 100; i++ {
		sp := tr.Sample("flow")
		if sp == nil {
			continue
		}
		sampled++
		start := time.Now()
		sp.StageAt("a", start, start.Add(time.Millisecond))
		sp.StageAt("b", start.Add(time.Millisecond), start.Add(3*time.Millisecond))
		tr.Finish(sp)
	}
	if sampled != 25 {
		t.Errorf("sampled %d of 100 at 1-in-4", sampled)
	}
	recent := tr.Recent()
	if len(recent) != 8 {
		t.Errorf("ring holds %d, want 8", len(recent))
	}
	// Ring keeps the newest: IDs must be the last 8 issued.
	if recent[0].ID >= recent[len(recent)-1].ID {
		t.Errorf("ring order wrong: first=%d last=%d", recent[0].ID, recent[len(recent)-1].ID)
	}
	got := recent[0]
	if len(got.Stages) != 2 || got.Stages[0].Stage != "a" {
		t.Errorf("stages = %+v", got.Stages)
	}
	if got.Total() < 3*time.Millisecond {
		t.Errorf("total = %v, want >= 3ms", got.Total())
	}
	if !strings.Contains(got.String(), "a=1ms") {
		t.Errorf("render = %q", got.String())
	}
}

func TestSnapshotIncludesVecChildren(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("plain_total").Add(2)
	reg.CounterVec("per_type_total", "attack_type").With("synflood").Add(7)
	reg.Gauge("depth").Set(3)
	reg.GaugeFunc("computed", func() float64 { return 9 })
	reg.CounterFunc("mirrored_total", func() float64 { return 11 })
	reg.Histogram("lat_seconds", nil).Observe(0.5)
	reg.HistogramVec("stage_seconds", "stage", nil).With("vote").Observe(0.25)

	s := reg.Snapshot()
	if s.Counters["plain_total"] != 2 {
		t.Error("plain counter missing")
	}
	if s.Counters[`per_type_total{attack_type="synflood"}`] != 7 {
		t.Errorf("vec child missing: %v", s.Counters)
	}
	if s.Gauges["depth"] != 3 || s.Gauges["computed"] != 9 {
		t.Errorf("gauges = %v", s.Gauges)
	}
	if s.Counters["mirrored_total"] != 11 {
		t.Error("counter func missing")
	}
	if h, ok := s.Histogram("lat_seconds"); !ok || h.Count != 1 {
		t.Error("histogram missing")
	}
	if h, ok := s.Histogram(`stage_seconds{stage="vote"}`); !ok || h.Count != 1 {
		t.Error("histogram vec child missing")
	}
}

func TestWritePrometheusFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("b_total").Add(3)
	reg.CounterVec("a_total", "kind").With("x").Inc()
	reg.Gauge("depth").Set(4)
	h := reg.Histogram("lat_seconds", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()

	for _, want := range []string{
		"# TYPE a_total counter\na_total{kind=\"x\"} 1\n",
		"# TYPE b_total counter\nb_total 3\n",
		"# TYPE depth gauge\ndepth 4\n",
		"lat_seconds_bucket{le=\"0.1\"} 1\n",
		"lat_seconds_bucket{le=\"1\"} 2\n",
		"lat_seconds_bucket{le=\"+Inf\"} 3\n",
		"lat_seconds_count 3\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
	// Families must come out sorted for scrape diff stability.
	if strings.Index(out, "a_total") > strings.Index(out, "b_total") {
		t.Error("families not sorted")
	}
}

func TestFormatLatencySummary(t *testing.T) {
	reg := NewRegistry()
	v := reg.HistogramVec("lat", "attack_type", nil)
	for i := 0; i < 100; i++ {
		v.With("synflood").Observe(0.010)
	}
	v.With("empty")
	out := FormatLatencySummary("LATENCY", v.Snapshots())
	if !strings.Contains(out, "synflood") || !strings.Contains(out, "0.0100") {
		t.Errorf("summary = %q", out)
	}
	if !strings.Contains(out, "empty") {
		t.Error("empty label row missing")
	}
}

func TestSnapshotFormatSummary(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("c_total").Add(2)
	reg.Histogram("h_seconds", nil).Observe(0.1)
	out := reg.Snapshot().FormatSummary()
	if !strings.Contains(out, "c_total") || !strings.Contains(out, "p99=") {
		t.Errorf("summary = %q", out)
	}
}

func TestGaugeVec(t *testing.T) {
	reg := NewRegistry()
	gv := reg.GaugeVec("shard_depth", "shard")
	gv.With("0").Set(3)
	gv.With("1").Set(7)
	depth := 11.0
	gv.WithFunc("2", func() float64 { return depth })
	gv.WithFunc("2", func() float64 { return -1 }) // first registration wins

	vals := gv.Values()
	if vals["0"] != 3 || vals["1"] != 7 || vals["2"] != 11 {
		t.Errorf("values = %v", vals)
	}
	if reg.GaugeVec("shard_depth", "shard") != gv {
		t.Error("re-registration returned a different vec")
	}

	snap := reg.Snapshot()
	if got := snap.Gauges[`shard_depth{shard="2"}`]; got != 11 {
		t.Errorf("snapshot child = %v, want 11", got)
	}

	var b strings.Builder
	reg.WritePrometheus(&b)
	out := b.String()
	for _, want := range []string{
		"# TYPE shard_depth gauge",
		`shard_depth{shard="0"} 3`,
		`shard_depth{shard="1"} 7`,
		`shard_depth{shard="2"} 11`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q:\n%s", want, out)
		}
	}

	var nilVec *GaugeVec
	nilVec.With("x").Set(1)
	nilVec.WithFunc("y", func() float64 { return 1 })
	if nilVec.Values() != nil {
		t.Error("nil vec produced values")
	}
}
