package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Snapshot is a point-in-time copy of every metric in a registry.
// Vector children appear under `name{label="value"}` keys next to the
// scalar metrics, so a snapshot is a flat, serializable view.
type Snapshot struct {
	Counters   map[string]int64
	Gauges     map[string]float64
	Histograms map[string]HistogramSnapshot
}

// Snapshot captures the registry. Gauge callbacks run on the calling
// goroutine.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{
		Counters:   make(map[string]int64),
		Gauges:     make(map[string]float64),
		Histograms: make(map[string]HistogramSnapshot),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, fn := range r.counterFns {
		s.Counters[name] = int64(fn())
	}
	for name, v := range r.counterVecs {
		for val, n := range v.Values() {
			s.Counters[childKey(name, v.label, val)] = n
		}
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, fn := range r.gaugeFns {
		s.Gauges[name] = fn()
	}
	for name, v := range r.gaugeVecs {
		for val, g := range v.Values() {
			s.Gauges[childKey(name, v.label, val)] = g
		}
	}
	for name, h := range r.hists {
		s.Histograms[name] = h.Snapshot()
	}
	for name, v := range r.histVecs {
		for val, hs := range v.Snapshots() {
			s.Histograms[childKey(name, v.label, val)] = hs
		}
	}
	return s
}

// Histogram returns the named histogram snapshot (vector children use
// the `name{label="value"}` key form).
func (s Snapshot) Histogram(name string) (HistogramSnapshot, bool) {
	h, ok := s.Histograms[name]
	return h, ok
}

func childKey(name, label, value string) string {
	return fmt.Sprintf("%s{%s=%q}", name, label, value)
}

// WritePrometheus renders every metric in the Prometheus text
// exposition format (families sorted by name; label values sorted).
func (r *Registry) WritePrometheus(w io.Writer) {
	r.mu.Lock()
	type family struct {
		name string
		emit func(io.Writer)
	}
	var fams []family
	for name, c := range r.counters {
		c := c
		fams = append(fams, family{name, func(w io.Writer) {
			fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", c.name, c.name, c.Value())
		}})
	}
	for name, fn := range r.counterFns {
		name, fn := name, fn
		fams = append(fams, family{name, func(w io.Writer) {
			fmt.Fprintf(w, "# TYPE %s counter\n%s %s\n", name, name, formatFloat(fn()))
		}})
	}
	for name, v := range r.counterVecs {
		v := v
		fams = append(fams, family{name, func(w io.Writer) {
			fmt.Fprintf(w, "# TYPE %s counter\n", v.name)
			for _, val := range v.labelValues() {
				fmt.Fprintf(w, "%s{%s=%q} %d\n", v.name, v.label, val, v.With(val).Value())
			}
		}})
	}
	for name, g := range r.gauges {
		g := g
		fams = append(fams, family{name, func(w io.Writer) {
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", g.name, g.name, formatFloat(g.Value()))
		}})
	}
	for name, fn := range r.gaugeFns {
		name, fn := name, fn
		fams = append(fams, family{name, func(w io.Writer) {
			fmt.Fprintf(w, "# TYPE %s gauge\n%s %s\n", name, name, formatFloat(fn()))
		}})
	}
	for name, v := range r.gaugeVecs {
		v := v
		fams = append(fams, family{name, func(w io.Writer) {
			fmt.Fprintf(w, "# TYPE %s gauge\n", v.name)
			for _, val := range v.labelValues() {
				fmt.Fprintf(w, "%s{%s=%q} %s\n", v.name, v.label, val, formatFloat(v.value(val)))
			}
		}})
	}
	for name, h := range r.hists {
		h := h
		fams = append(fams, family{name, func(w io.Writer) {
			writePromHistogram(w, h.name, "", "", h.Snapshot())
		}})
	}
	for name, v := range r.histVecs {
		v := v
		fams = append(fams, family{name, func(w io.Writer) {
			fmt.Fprintf(w, "# TYPE %s histogram\n", v.name)
			for _, val := range v.labelValues() {
				writePromHistogramBody(w, v.name, v.label, val, v.With(val).Snapshot())
			}
		}})
	}
	r.mu.Unlock()

	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for _, f := range fams {
		f.emit(w)
	}
}

func writePromHistogram(w io.Writer, name, label, value string, s HistogramSnapshot) {
	fmt.Fprintf(w, "# TYPE %s histogram\n", name)
	writePromHistogramBody(w, name, label, value, s)
}

func writePromHistogramBody(w io.Writer, name, label, value string, s HistogramSnapshot) {
	extra := ""
	if label != "" {
		extra = fmt.Sprintf("%s=%q,", label, value)
	}
	var cum uint64
	for i, bound := range s.Bounds {
		cum += s.Counts[i]
		fmt.Fprintf(w, "%s_bucket{%sle=%q} %d\n", name, extra, formatFloat(bound), cum)
	}
	cum += s.Counts[len(s.Bounds)]
	fmt.Fprintf(w, "%s_bucket{%sle=\"+Inf\"} %d\n", name, extra, cum)
	sel := ""
	if label != "" {
		sel = fmt.Sprintf("{%s=%q}", label, value)
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, sel, formatFloat(s.Sum))
	fmt.Fprintf(w, "%s_count%s %d\n", name, sel, s.Count)
}

// formatFloat renders a metric value the way Prometheus expects.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// FormatLatencySummary renders a Table-VI-style percentile table from
// per-label histogram snapshots (label rows sorted by name; values in
// seconds).
func FormatLatencySummary(title string, byLabel map[string]HistogramSnapshot) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-12s %8s %12s %12s %12s %12s %12s\n",
		"Type", "Count", "p50(s)", "p95(s)", "p99(s)", "Max(s)", "Mean(s)")
	names := make([]string, 0, len(byLabel))
	for name := range byLabel {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := byLabel[name]
		if s.Count == 0 {
			fmt.Fprintf(&b, "%-12s %8d %12s %12s %12s %12s %12s\n",
				name, 0, "-", "-", "-", "-", "-")
			continue
		}
		fmt.Fprintf(&b, "%-12s %8d %12.4f %12.4f %12.4f %12.4f %12.4f\n",
			name, s.Count, s.Quantile(0.50), s.Quantile(0.95), s.Quantile(0.99), s.Max, s.Mean())
	}
	return b.String()
}

// FormatSummary renders a snapshot as a compact human-readable block:
// counters and gauges first (sorted), then one percentile line per
// histogram.
func (s Snapshot) FormatSummary() string {
	var b strings.Builder
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "%-48s %d\n", name, s.Counters[name])
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Fprintf(&b, "%-48s %s\n", name, formatFloat(s.Gauges[name]))
	}
	names = names[:0]
	for name := range s.Histograms {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		h := s.Histograms[name]
		if h.Count == 0 {
			fmt.Fprintf(&b, "%-48s empty\n", name)
			continue
		}
		fmt.Fprintf(&b, "%-48s count=%d p50=%.6fs p95=%.6fs p99=%.6fs max=%.6fs\n",
			name, h.Count, h.Quantile(0.50), h.Quantile(0.95), h.Quantile(0.99), h.Max)
	}
	return b.String()
}
