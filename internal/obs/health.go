package obs

// Health is a pipeline's self-reported liveness: one of the states
// "healthy" (full fidelity), "degraded" (best-effort answers under
// partial failure — an unhealthy ensemble member, recent worker
// restarts, store retries), or "shedding" (load or failures are
// costing records — queues full, a worker permanently down). Detail
// lines carry whatever the pipeline wants operators to see: per-model
// health, accounting counters, recent state transitions.
type Health struct {
	State  string
	Detail []string
}

// Health state names.
const (
	StateHealthy  = "healthy"
	StateDegraded = "degraded"
	StateShedding = "shedding"
)

// SetHealth installs the callback /healthz reports. The callback runs
// on the scrape goroutine and must be safe to call concurrently with
// the pipeline. The last registration wins (a registry serves one
// pipeline; re-wiring on restart is allowed). A registry without a
// health callback reports plain "ok" for backward compatibility.
func (r *Registry) SetHealth(fn func() Health) {
	r.mu.Lock()
	r.healthFn = fn
	r.mu.Unlock()
}

// Health returns the current health report and whether a callback is
// installed.
func (r *Registry) Health() (Health, bool) {
	r.mu.Lock()
	fn := r.healthFn
	r.mu.Unlock()
	if fn == nil {
		return Health{}, false
	}
	return fn(), true
}
