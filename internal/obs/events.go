package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"sort"
	"sync"
	"time"
)

// Event is one structured pipeline event: a worker restart, a health
// transition, a checkpoint landing, a shed decision. Events replace
// the ad-hoc log.Printf / transition-string logging the pipeline grew
// up with: every noteworthy state change is appended here once, with
// machine-readable attributes, and rendered wherever it is needed
// (/debug/events, health detail, diagnostic bundles).
type Event struct {
	Seq   uint64            `json:"seq"`
	Time  time.Time         `json:"time"`
	Level string            `json:"level"`
	Msg   string            `json:"msg"`
	Attrs map[string]string `json:"attrs,omitempty"`
}

// String renders the event as one log line:
//
//	2026-02-03T04:05:06Z INFO worker restarted component=worker worker=2
func (e Event) String() string {
	s := fmt.Sprintf("%s %s %s", e.Time.UTC().Format(time.RFC3339), e.Level, e.Msg)
	keys := make([]string, 0, len(e.Attrs))
	for k := range e.Attrs {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		s += fmt.Sprintf(" %s=%s", k, e.Attrs[k])
	}
	return s
}

// DefaultEventKeep is the event ring capacity when NewEventLog is
// given no size.
const DefaultEventKeep = 256

// EventLog is a bounded in-memory ring of structured events. It is
// the sink behind Logger(): components log through the standard
// log/slog API and the tail stays queryable in-process. All methods
// are nil-safe.
type EventLog struct {
	mu      sync.Mutex
	ring    []Event
	next    int
	seq     uint64
	dropped uint64
}

// NewEventLog returns a ring retaining the last keep events
// (keep <= 0 selects DefaultEventKeep).
func NewEventLog(keep int) *EventLog {
	if keep <= 0 {
		keep = DefaultEventKeep
	}
	return &EventLog{ring: make([]Event, 0, keep)}
}

// Append stores one event, assigning its sequence number. Zero times
// are stamped with the current wall clock.
func (l *EventLog) Append(ev Event) {
	if l == nil {
		return
	}
	if ev.Time.IsZero() {
		ev.Time = time.Now()
	}
	if ev.Level == "" {
		ev.Level = slog.LevelInfo.String()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	l.seq++
	ev.Seq = l.seq
	if len(l.ring) < cap(l.ring) {
		l.ring = append(l.ring, ev)
		return
	}
	l.ring[l.next] = ev
	l.next = (l.next + 1) % cap(l.ring)
	l.dropped++
}

// Recent returns the retained events, oldest first.
func (l *EventLog) Recent() []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Event, 0, len(l.ring))
	out = append(out, l.ring[l.next:]...)
	out = append(out, l.ring[:l.next]...)
	return out
}

// Total returns how many events were ever appended; Dropped how many
// of those have since been evicted from the ring.
func (l *EventLog) Total() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Dropped returns the number of events evicted from the ring.
func (l *EventLog) Dropped() uint64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Logger returns a *slog.Logger whose records land in the ring. A nil
// EventLog yields a logger that discards everything, so components can
// log unconditionally.
func (l *EventLog) Logger() *slog.Logger {
	return slog.New(&eventHandler{log: l})
}

// WriteText renders the retained tail as log lines, oldest first.
func (l *EventLog) WriteText(w io.Writer) {
	if l == nil {
		return
	}
	for _, ev := range l.Recent() {
		fmt.Fprintln(w, ev.String())
	}
}

// WriteJSONL renders the retained tail as one JSON object per line.
func (l *EventLog) WriteJSONL(w io.Writer) error {
	if l == nil {
		return nil
	}
	enc := json.NewEncoder(w)
	for _, ev := range l.Recent() {
		if err := enc.Encode(ev); err != nil {
			return err
		}
	}
	return nil
}

// eventHandler adapts EventLog to slog.Handler. Group names prefix
// attribute keys ("group.key"); levels below Info are dropped so debug
// chatter cannot wash the operational tail out of the ring.
type eventHandler struct {
	log    *EventLog
	attrs  []slog.Attr
	prefix string
}

func (h *eventHandler) Enabled(_ context.Context, level slog.Level) bool {
	return h.log != nil && level >= slog.LevelInfo
}

func (h *eventHandler) Handle(_ context.Context, r slog.Record) error {
	ev := Event{Time: r.Time, Level: r.Level.String(), Msg: r.Message}
	if len(h.attrs) > 0 || r.NumAttrs() > 0 {
		ev.Attrs = make(map[string]string, len(h.attrs)+r.NumAttrs())
	}
	for _, a := range h.attrs {
		addAttr(ev.Attrs, h.prefix, a)
	}
	r.Attrs(func(a slog.Attr) bool {
		addAttr(ev.Attrs, h.prefix, a)
		return true
	})
	h.log.Append(ev)
	return nil
}

func addAttr(into map[string]string, prefix string, a slog.Attr) {
	v := a.Value.Resolve()
	if v.Kind() == slog.KindGroup {
		for _, ga := range v.Group() {
			addAttr(into, prefix+a.Key+".", ga)
		}
		return
	}
	if a.Key == "" {
		return
	}
	into[prefix+a.Key] = v.String()
}

func (h *eventHandler) WithAttrs(attrs []slog.Attr) slog.Handler {
	nh := &eventHandler{log: h.log, prefix: h.prefix}
	nh.attrs = append(append([]slog.Attr(nil), h.attrs...), attrs...)
	return nh
}

func (h *eventHandler) WithGroup(name string) slog.Handler {
	if name == "" {
		return h
	}
	return &eventHandler{log: h.log, attrs: h.attrs, prefix: h.prefix + name + "."}
}

// Events returns the registry's event log, creating it on first use.
func (r *Registry) Events() *EventLog {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.events == nil {
		r.events = NewEventLog(0)
	}
	return r.events
}
