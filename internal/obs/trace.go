package obs

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// StageTiming is one timed segment of a traced record's journey
// through the pipeline.
type StageTiming struct {
	Stage    string
	Start    time.Time
	Duration time.Duration
}

// Trace is the recorded journey of one sampled flow record. A trace
// is owned by whichever goroutine currently holds the record (the
// pipeline hands records stage to stage over channels, which provides
// the happens-before edges), so its methods take no lock. All methods
// are nil-safe: the unsampled common case carries a nil *Trace.
type Trace struct {
	ID     uint64
	Flow   string
	Began  time.Time
	Ended  time.Time
	Stages []StageTiming
}

// Stage appends a timed segment running from start to now.
func (t *Trace) Stage(name string, start time.Time) {
	t.StageAt(name, start, time.Now())
}

// StageAt appends a timed segment with explicit endpoints.
func (t *Trace) StageAt(name string, start, end time.Time) {
	if t == nil {
		return
	}
	if t.Began.IsZero() || start.Before(t.Began) {
		t.Began = start
	}
	t.Stages = append(t.Stages, StageTiming{Stage: name, Start: start, Duration: end.Sub(start)})
}

// Total returns the wall time from the first stage start to the
// latest recorded endpoint (the newest stage end, or Ended if later).
func (t *Trace) Total() time.Duration {
	if t == nil || len(t.Stages) == 0 {
		return 0
	}
	end := t.Ended
	for _, s := range t.Stages {
		if se := s.Start.Add(s.Duration); se.After(end) {
			end = se
		}
	}
	return end.Sub(t.Began)
}

// String renders the trace as one line, e.g.
//
//	#12 10.0.0.1:7>10.0.0.2:80/tcp total=1.2ms journal=0.3ms queue=0.1ms predict=0.7ms vote=0.1ms
func (t *Trace) String() string {
	if t == nil {
		return "<unsampled>"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "#%d %s total=%v", t.ID, t.Flow, t.Total().Round(time.Microsecond))
	for _, s := range t.Stages {
		fmt.Fprintf(&b, " %s=%v", s.Stage, s.Duration.Round(time.Microsecond))
	}
	return b.String()
}

// Tracer samples one in every N records through the pipeline and
// keeps the most recent completed traces in a ring buffer. The
// sampling decision is a single atomic increment, so the unsampled
// hot path stays cheap.
type Tracer struct {
	name  string
	every uint64
	n     atomic.Uint64
	ids   atomic.Uint64

	mu      sync.Mutex
	ring    []Trace
	next    int
	sampled uint64
}

// newTracer builds a tracer sampling 1-in-every records, retaining
// the last keep completed traces (defaults: 64, 32).
func newTracer(name string, sampleEvery, keep int) *Tracer {
	if sampleEvery <= 0 {
		sampleEvery = 64
	}
	if keep <= 0 {
		keep = 32
	}
	return &Tracer{name: name, every: uint64(sampleEvery), ring: make([]Trace, 0, keep)}
}

// Sample returns a fresh *Trace for 1-in-N calls and nil otherwise.
// Nil-safe: a nil tracer never samples.
func (t *Tracer) Sample(flow string) *Trace {
	if t == nil {
		return nil
	}
	if t.n.Add(1)%t.every != 1 && t.every != 1 {
		return nil
	}
	return &Trace{ID: t.ids.Add(1), Flow: flow}
}

// Finish stamps the trace and stores it in the ring buffer.
func (t *Tracer) Finish(tr *Trace) {
	if t == nil || tr == nil {
		return
	}
	tr.Ended = time.Now()
	t.mu.Lock()
	defer t.mu.Unlock()
	t.sampled++
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, *tr)
		return
	}
	t.ring[t.next] = *tr
	t.next = (t.next + 1) % cap(t.ring)
}

// Recent returns the retained traces, oldest first.
func (t *Tracer) Recent() []Trace {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Trace, 0, len(t.ring))
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// SampledCount returns how many traces completed since start.
func (t *Tracer) SampledCount() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.sampled
}
