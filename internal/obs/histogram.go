package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Histogram is a fixed-bucket distribution summary tuned for hot-path
// latency recording: Observe is lock-free (one atomic add per bucket
// plus CAS loops for sum/min/max) and allocation-free, so it can sit
// on the prediction path without perturbing what it measures.
//
// Buckets are cumulative-upper-bound style (Prometheus classic): a
// value v lands in the first bucket whose bound is >= v; values above
// every bound land in an implicit +Inf overflow bucket. Quantiles are
// estimated by linear interpolation inside the covering bucket,
// clamped to the observed min/max.
type Histogram struct {
	name   string
	bounds []float64       // sorted upper bounds (seconds for latency use)
	counts []atomic.Uint64 // len(bounds)+1; last is the +Inf bucket

	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits
	minBits atomic.Uint64 // float64 bits, +Inf until first Observe
	maxBits atomic.Uint64 // float64 bits, -Inf until first Observe
}

// LatencyBuckets returns the default latency bucket bounds: a 1-2.5-5
// decade ladder from 1µs to 60s (24 buckets), wide enough to cover
// both the sub-millisecond Go inference path and the multi-second
// backlog latencies of the paper's Table VI.
func LatencyBuckets() []float64 {
	// Bounds are spelled out as decimal literals: multiplying a base by
	// 2.5 yields floats like 2.4999999999999998e-06 whose rendering
	// pollutes the /metrics `le` labels.
	return []float64{
		1e-6, 2.5e-6, 5e-6,
		1e-5, 2.5e-5, 5e-5,
		1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3,
		1e-2, 2.5e-2, 5e-2,
		1e-1, 2.5e-1, 5e-1,
		1, 2.5, 5,
		10, 30, 60,
	}
}

// newHistogram builds a histogram with the given bucket upper bounds
// (copied and sorted; duplicates removed).
func newHistogram(name string, bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	dedup := bs[:0]
	for i, b := range bs {
		if i == 0 || b != bs[i-1] {
			dedup = append(dedup, b)
		}
	}
	h := &Histogram{
		name:   name,
		bounds: dedup,
		counts: make([]atomic.Uint64, len(dedup)+1),
	}
	h.minBits.Store(math.Float64bits(math.Inf(1)))
	h.maxBits.Store(math.Float64bits(math.Inf(-1)))
	return h
}

// Observe records one value. Safe for concurrent use; nil-safe so
// uninstrumented call sites cost a single branch.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	addFloat(&h.sumBits, v)
	casFloat(&h.minBits, v, func(cur float64) bool { return v < cur })
	casFloat(&h.maxBits, v, func(cur float64) bool { return v > cur })
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Since records the elapsed wall time from start, in seconds.
func (h *Histogram) Since(start time.Time) { h.ObserveDuration(time.Since(start)) }

// Count returns the number of observations so far.
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// addFloat atomically adds v to a float64 stored as bits.
func addFloat(bits *atomic.Uint64, v float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// casFloat atomically replaces the stored float with v while better
// reports v should win against the current value.
func casFloat(bits *atomic.Uint64, v float64, better func(cur float64) bool) {
	for {
		old := bits.Load()
		if !better(math.Float64frombits(old)) {
			return
		}
		if bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// HistogramSnapshot is a point-in-time copy of a histogram.
type HistogramSnapshot struct {
	Name   string
	Bounds []float64 // upper bounds; Counts has one extra +Inf slot
	Counts []uint64
	Count  uint64
	Sum    float64
	Min    float64 // +Inf when empty
	Max    float64 // -Inf when empty
}

// Snapshot copies the histogram state. The per-bucket counts are read
// without a global lock, so under concurrent writes the snapshot is a
// consistent-enough view (bucket sums may trail Count by in-flight
// observations).
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	s := HistogramSnapshot{
		Name:   h.name,
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]uint64, len(h.counts)),
		Sum:    math.Float64frombits(h.sumBits.Load()),
		Min:    math.Float64frombits(h.minBits.Load()),
		Max:    math.Float64frombits(h.maxBits.Load()),
	}
	var total uint64
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		total += c
	}
	s.Count = total
	return s
}

// Mean returns the average observation, or NaN when empty.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return math.NaN()
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0 < q <= 1) by linear
// interpolation within the covering bucket, clamped to the observed
// min/max so single-point distributions report exactly. Returns NaN
// when the histogram is empty.
func (s HistogramSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 || math.IsNaN(q) {
		return math.NaN()
	}
	if q <= 0 {
		return s.Min
	}
	if q >= 1 {
		return s.Max
	}
	rank := q * float64(s.Count)
	var cum uint64
	lower := s.Min
	for i, c := range s.Counts {
		if c == 0 {
			if i < len(s.Bounds) && s.Bounds[i] > lower {
				lower = s.Bounds[i]
			}
			continue
		}
		if float64(cum+c) >= rank {
			upper := s.Max
			if i < len(s.Bounds) && s.Bounds[i] < upper {
				upper = s.Bounds[i]
			}
			if lower > upper {
				lower = upper
			}
			frac := (rank - float64(cum)) / float64(c)
			v := lower + (upper-lower)*frac
			if v < s.Min {
				v = s.Min
			}
			if v > s.Max {
				v = s.Max
			}
			return v
		}
		cum += c
		if i < len(s.Bounds) && s.Bounds[i] > lower {
			lower = s.Bounds[i]
		}
	}
	return s.Max
}

// HistogramVec is a family of histograms keyed by one label value
// (e.g. per attack type or per pipeline stage). Child lookup takes a
// mutex; cache the child when a call site is hot.
type HistogramVec struct {
	name   string
	label  string
	bounds []float64

	mu   sync.Mutex
	kids map[string]*Histogram
}

func newHistogramVec(name, label string, bounds []float64) *HistogramVec {
	return &HistogramVec{
		name:   name,
		label:  label,
		bounds: append([]float64(nil), bounds...),
		kids:   make(map[string]*Histogram),
	}
}

// With returns the child histogram for the label value, creating it
// on first use. Nil-safe: a nil vec returns a nil (no-op) histogram.
func (v *HistogramVec) With(value string) *Histogram {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.kids[value]
	if !ok {
		h = newHistogram(v.name, v.bounds)
		v.kids[value] = h
	}
	return h
}

// Snapshots returns a snapshot per label value.
func (v *HistogramVec) Snapshots() map[string]HistogramSnapshot {
	if v == nil {
		return nil
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	out := make(map[string]HistogramSnapshot, len(v.kids))
	for val, h := range v.kids {
		out[val] = h.Snapshot()
	}
	return out
}

// labelValues returns the sorted label values present.
func (v *HistogramVec) labelValues() []string {
	v.mu.Lock()
	defer v.mu.Unlock()
	vals := make([]string, 0, len(v.kids))
	for val := range v.kids {
		vals = append(vals, val)
	}
	sort.Strings(vals)
	return vals
}
