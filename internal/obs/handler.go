package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"time"
)

// Handler returns the registry's HTTP surface:
//
//	/metrics       Prometheus text exposition format
//	/healthz       pipeline health: healthy/degraded + detail (200),
//	               shedding + detail (503), or "ok" when no health
//	               callback is wired (SetHealth)
//	/traces        recent sampled pipeline traces, one per line
//	/traces/flow   recent sampled flow journeys (per-hop timestamps)
//	/debug/attrib  contention attribution report (?top=N)
//	/debug/events  structured event tail (?format=json for JSONL)
//	/debug/bundle  diagnostic bundle (tar.gz download)
//	/debug/pprof   the standard Go profiling endpoints
//	/              an index of the above
func (r *Registry) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		h, ok := r.Health()
		if !ok {
			fmt.Fprintln(w, "ok")
			return
		}
		// Degraded still serves best-effort answers, so it stays 200
		// for liveness probes; shedding is losing records and returns
		// 503 so orchestrators can react.
		if h.State == StateShedding {
			w.WriteHeader(http.StatusServiceUnavailable)
		}
		fmt.Fprintln(w, h.State)
		for _, d := range h.Detail {
			fmt.Fprintln(w, d)
		}
	})
	mux.HandleFunc("/traces", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		r.mu.Lock()
		names := make([]string, 0, len(r.tracers))
		tracers := make([]*Tracer, 0, len(r.tracers))
		for name := range r.tracers {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			tracers = append(tracers, r.tracers[name])
		}
		r.mu.Unlock()
		for i, t := range tracers {
			fmt.Fprintf(w, "# tracer %s (1 in %d, %d sampled)\n", names[i], t.every, t.SampledCount())
			for _, tr := range t.Recent() {
				fmt.Fprintln(w, tr.String())
			}
		}
	})
	mux.HandleFunc("/traces/flow", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		js := r.FlowJourneys()
		if js == nil {
			fmt.Fprintln(w, "# no flow-journey sampler wired (core.LiveConfig.JourneySampleEvery)")
			return
		}
		js.WriteText(w)
	})
	mux.HandleFunc("/debug/attrib", func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		topN := 20
		if s := req.URL.Query().Get("top"); s != "" {
			if n, err := strconv.Atoi(s); err == nil && n > 0 {
				topN = n
			}
		}
		report, ok := r.Attribution(topN)
		if !ok {
			fmt.Fprintln(w, "# no attribution producer wired (internal/obs/prof)")
			return
		}
		fmt.Fprint(w, report)
	})
	mux.HandleFunc("/debug/events", func(w http.ResponseWriter, req *http.Request) {
		ev := r.Events()
		if req.URL.Query().Get("format") == "json" {
			w.Header().Set("Content-Type", "application/x-ndjson")
			ev.WriteJSONL(w)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintf(w, "# events (%d total, %d evicted)\n", ev.Total(), ev.Dropped())
		ev.WriteText(w)
	})
	mux.HandleFunc("/debug/bundle", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/gzip")
		w.Header().Set("Content-Disposition",
			fmt.Sprintf("attachment; filename=%q",
				"intddos-diag-"+time.Now().UTC().Format("20060102T150405")+"Z.tar.gz"))
		if err := r.WriteBundle(w); err != nil {
			// Headers are gone; all we can do is cut the stream short so
			// the client sees a truncated archive instead of a valid one.
			return
		}
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	mux.HandleFunc("/", func(w http.ResponseWriter, req *http.Request) {
		if req.URL.Path != "/" {
			http.NotFound(w, req)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "intddos observability endpoints:")
		for _, p := range []string{
			"/metrics", "/healthz", "/traces", "/traces/flow",
			"/debug/attrib", "/debug/events", "/debug/bundle", "/debug/pprof/",
		} {
			fmt.Fprintln(w, "  "+p)
		}
	})
	return mux
}

// Server is a running observability HTTP listener.
type Server struct {
	lis net.Listener
	srv *http.Server
}

// ListenAndServe starts serving the registry's Handler on addr
// (":9090", "127.0.0.1:0", ...) in a background goroutine. Close the
// returned server to stop.
func (r *Registry) ListenAndServe(addr string) (*Server, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: r.Handler(), ReadHeaderTimeout: 5 * time.Second}
	go srv.Serve(lis)
	return &Server{lis: lis, srv: srv}, nil
}

// Addr returns the bound address (useful with port 0).
func (s *Server) Addr() string { return s.lis.Addr().String() }

// Close stops the listener and in-flight handlers.
func (s *Server) Close() error { return s.srv.Close() }
