package obs

import (
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// JourneyHop is one timestamped waypoint of a sampled record's path
// through the pipeline.
type JourneyHop struct {
	Name string    `json:"hop"`
	At   time.Time `json:"at"`
}

// Journey is the recorded end-to-end path of one sampled flow update:
// ingest → journal → poll → batch → predict → vote, with a wall-clock
// stamp at every hop. Unlike Trace (per-stage durations measured by
// whoever holds the record), a Journey follows one identified record
// across goroutine handoffs, so queueing between stages is visible as
// inter-hop gaps.
type Journey struct {
	ID   uint64 `json:"id"`
	Flow string `json:"flow"`
	Seq  int    `json:"seq"`
	// Hops are in arrival order. Aborted carries the reason the record
	// left the pipeline early ("shed", "panic", ...), empty on a
	// completed journey.
	Hops    []JourneyHop `json:"hops"`
	Aborted string       `json:"aborted,omitempty"`
	Done    bool         `json:"done"`
}

// Total returns the wall time from the first hop to the last.
func (j Journey) Total() time.Duration {
	if len(j.Hops) < 2 {
		return 0
	}
	return j.Hops[len(j.Hops)-1].At.Sub(j.Hops[0].At)
}

// Hop returns the timestamp of the named hop and whether it was
// recorded.
func (j Journey) Hop(name string) (time.Time, bool) {
	for _, h := range j.Hops {
		if h.Name == name {
			return h.At, true
		}
	}
	return time.Time{}, false
}

// String renders the journey as one line, hop offsets relative to the
// first hop:
//
//	#3 10.0.0.1:7>10.0.0.2:80/tcp seq=5 total=1.2ms ingest+0s journal+8µs poll+1ms ... vote+1.2ms
func (j Journey) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "#%d %s seq=%d total=%v", j.ID, j.Flow, j.Seq, j.Total().Round(time.Microsecond))
	if j.Aborted != "" {
		fmt.Fprintf(&b, " aborted=%s", j.Aborted)
	} else if !j.Done {
		b.WriteString(" in-flight")
	}
	for _, h := range j.Hops {
		fmt.Fprintf(&b, " %s+%v", h.Name, h.At.Sub(j.Hops[0].At).Round(time.Microsecond))
	}
	return b.String()
}

// Journey bookkeeping defaults.
const (
	DefaultJourneySampleEvery = 256
	DefaultJourneyKeep        = 64
)

// Journeys samples 1-in-N flow updates at ingest and follows each
// sampled record hop by hop until it is decided or leaves the pipeline.
// The unsampled hot path pays one atomic increment (ShouldSample) and
// later call sites one atomic load (Active() == 0 short-circuits the
// per-hop map lookups when nothing is being followed). All methods are
// nil-safe.
type Journeys struct {
	every     uint64
	maxActive int

	n       atomic.Uint64
	ids     atomic.Uint64
	activeN atomic.Int64

	mu        sync.Mutex
	active    map[string]*Journey
	ring      []Journey
	next      int
	completed uint64
	aborted   uint64
	evicted   uint64
}

// NewJourneys builds a sampler following 1-in-sampleEvery records
// (<= 0 selects DefaultJourneySampleEvery; 1 follows everything) and
// retaining the last keep finished journeys (<= 0 selects
// DefaultJourneyKeep).
func NewJourneys(sampleEvery, keep int) *Journeys {
	if sampleEvery <= 0 {
		sampleEvery = DefaultJourneySampleEvery
	}
	if keep <= 0 {
		keep = DefaultJourneyKeep
	}
	return &Journeys{
		every:     uint64(sampleEvery),
		maxActive: 4 * keep,
		active:    make(map[string]*Journey),
		ring:      make([]Journey, 0, keep),
	}
}

// SampleEvery returns the sampling interval (0 for a nil sampler).
func (js *Journeys) SampleEvery() int {
	if js == nil {
		return 0
	}
	return int(js.every)
}

// ShouldSample decides whether the next ingested record is followed.
func (js *Journeys) ShouldSample() bool {
	if js == nil {
		return false
	}
	return js.n.Add(1)%js.every == 1 || js.every == 1
}

// Active returns the number of journeys currently in flight. Call
// sites use Active() == 0 to skip building hop keys entirely.
func (js *Journeys) Active() int64 {
	if js == nil {
		return 0
	}
	return js.activeN.Load()
}

func journeyKey(flow string, seq int) string {
	return flow + "#" + fmt.Sprint(seq)
}

// Begin starts following the record identified by (flow, seq) and
// records its first hop. If the active set is full, the oldest entry
// is evicted into the finished ring as aborted ("evicted").
func (js *Journeys) Begin(flow string, seq int, hop string) {
	if js == nil {
		return
	}
	now := time.Now()
	js.mu.Lock()
	defer js.mu.Unlock()
	if len(js.active) >= js.maxActive {
		// Evict the entry with the lowest ID: the longest-followed
		// record, which is the most likely to have leaked.
		var oldest string
		var oldestID uint64
		for k, j := range js.active {
			if oldest == "" || j.ID < oldestID {
				oldest, oldestID = k, j.ID
			}
		}
		js.finishLocked(oldest, "", "evicted")
		js.evicted++
	}
	j := &Journey{
		ID:   js.ids.Add(1),
		Flow: flow,
		Seq:  seq,
		Hops: []JourneyHop{{Name: hop, At: now}},
	}
	js.active[journeyKey(flow, seq)] = j
	js.activeN.Store(int64(len(js.active)))
}

// Hop stamps the named hop on an in-flight journey (a no-op for
// unfollowed records).
func (js *Journeys) Hop(flow string, seq int, hop string) {
	if js == nil || js.activeN.Load() == 0 {
		return
	}
	now := time.Now()
	js.mu.Lock()
	defer js.mu.Unlock()
	if j, ok := js.active[journeyKey(flow, seq)]; ok {
		j.Hops = append(j.Hops, JourneyHop{Name: hop, At: now})
	}
}

// Complete stamps the final hop and moves the journey into the
// finished ring.
func (js *Journeys) Complete(flow string, seq int, hop string) {
	if js == nil || js.activeN.Load() == 0 {
		return
	}
	js.mu.Lock()
	defer js.mu.Unlock()
	if js.finishLocked(journeyKey(flow, seq), hop, "") {
		js.completed++
	}
}

// Abort records that the followed record left the pipeline early
// (shed, panic, worker down, ...) and moves it into the finished ring.
func (js *Journeys) Abort(flow string, seq int, reason string) {
	if js == nil || js.activeN.Load() == 0 {
		return
	}
	js.mu.Lock()
	defer js.mu.Unlock()
	if js.finishLocked(journeyKey(flow, seq), "", reason) {
		js.aborted++
	}
}

// finishLocked retires one active journey into the ring. Caller holds
// js.mu.
func (js *Journeys) finishLocked(key, hop, aborted string) bool {
	j, ok := js.active[key]
	if !ok {
		return false
	}
	delete(js.active, key)
	js.activeN.Store(int64(len(js.active)))
	if hop != "" {
		j.Hops = append(j.Hops, JourneyHop{Name: hop, At: time.Now()})
	}
	j.Aborted = aborted
	j.Done = true
	if len(js.ring) < cap(js.ring) {
		js.ring = append(js.ring, *j)
		return true
	}
	js.ring[js.next] = *j
	js.next = (js.next + 1) % cap(js.ring)
	return true
}

// Recent returns the finished journeys, oldest first.
func (js *Journeys) Recent() []Journey {
	if js == nil {
		return nil
	}
	js.mu.Lock()
	defer js.mu.Unlock()
	out := make([]Journey, 0, len(js.ring))
	out = append(out, js.ring[js.next:]...)
	out = append(out, js.ring[:js.next]...)
	return out
}

// Stats returns lifetime completed/aborted/evicted journey counts.
func (js *Journeys) Stats() (completed, aborted, evicted uint64) {
	if js == nil {
		return 0, 0, 0
	}
	js.mu.Lock()
	defer js.mu.Unlock()
	return js.completed, js.aborted, js.evicted
}

// WriteText renders sampler state and the finished tail, oldest first.
func (js *Journeys) WriteText(w io.Writer) {
	if js == nil {
		return
	}
	completed, aborted, evicted := js.Stats()
	fmt.Fprintf(w, "# flow journeys (1 in %d; active=%d completed=%d aborted=%d evicted=%d)\n",
		js.SampleEvery(), js.Active(), completed, aborted, evicted)
	for _, j := range js.Recent() {
		fmt.Fprintln(w, j.String())
	}
}

// SetFlowJourneys publishes the pipeline's journey sampler on the
// registry so /traces/flow and diagnostic bundles can read it. The
// last registration wins (one registry serves one pipeline).
func (r *Registry) SetFlowJourneys(js *Journeys) {
	r.mu.Lock()
	r.journeys = js
	r.mu.Unlock()
}

// FlowJourneys returns the published journey sampler (nil when none).
func (r *Registry) FlowJourneys() *Journeys {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.journeys
}
