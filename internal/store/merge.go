package store

// MergeCursor is the merge-on-read view over per-shard prediction
// logs: a k-way merge by the global decision sequence stamped at
// append time. Every input log must be Seq-sorted — AppendPrediction
// guarantees it by taking the stamp inside the shard's log lock — and
// the merged stream is then the one total order a single shared log
// would have recorded: strictly increasing Seq, no duplicates, no
// losses. The linearization property tests pin exactly this contract.
//
// A cursor reads snapshots, not the live store; take the snapshots
// under a quiesced store (the checkpoint barrier) or accept that
// appends racing the snapshot are simply not part of the view.
type MergeCursor struct {
	logs [][]PredictionRecord
	pos  []int
}

// NewMergeCursor returns a cursor over the given Seq-sorted logs. The
// slices are read, never mutated.
func NewMergeCursor(logs [][]PredictionRecord) *MergeCursor {
	return &MergeCursor{logs: logs, pos: make([]int, len(logs))}
}

// Next returns the record with the smallest Seq among the unconsumed
// heads, or ok=false when every log is exhausted.
func (c *MergeCursor) Next() (rec PredictionRecord, ok bool) {
	best := -1
	for i, log := range c.logs {
		if c.pos[i] >= len(log) {
			continue
		}
		if best < 0 || log[c.pos[i]].Seq < c.logs[best][c.pos[best]].Seq {
			best = i
		}
	}
	if best < 0 {
		return PredictionRecord{}, false
	}
	rec = c.logs[best][c.pos[best]]
	c.pos[best]++
	return rec, true
}

// Remaining returns how many records the cursor has not yet yielded.
func (c *MergeCursor) Remaining() int {
	n := 0
	for i, log := range c.logs {
		n += len(log) - c.pos[i]
	}
	return n
}

// MergePredictions drains a MergeCursor over logs into one slice in
// global decision order.
func MergePredictions(logs [][]PredictionRecord) []PredictionRecord {
	c := NewMergeCursor(logs)
	out := make([]PredictionRecord, 0, c.Remaining())
	for {
		rec, ok := c.Next()
		if !ok {
			return out
		}
		out = append(out, rec)
	}
}
