package store

import (
	"net/netip"
	"testing"

	"github.com/amlight/intddos/internal/flow"
	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/obs"
)

func key(p uint16) flow.Key {
	return flow.Key{
		Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2"),
		SrcPort: p, DstPort: 80, Proto: netsim.TCP,
	}
}

func TestUpsertCreatesAndUpdates(t *testing.T) {
	db := New()
	created := db.UpsertFlow(key(1), []float64{1, 2}, 10, 10, 1, false, "benign")
	if !created {
		t.Fatal("first upsert should create")
	}
	created = db.UpsertFlow(key(1), []float64{3, 4}, 10, 20, 2, false, "benign")
	if created {
		t.Fatal("second upsert should update")
	}
	rec, ok := db.Flow(key(1))
	if !ok {
		t.Fatal("flow missing")
	}
	if rec.Version != 2 || rec.Updates != 2 || rec.Features[0] != 3 {
		t.Errorf("record = %+v", rec)
	}
	if rec.RegisteredAt != 10 || rec.UpdatedAt != 20 {
		t.Errorf("times = %v/%v", rec.RegisteredAt, rec.UpdatedAt)
	}
	if db.FlowCount() != 1 {
		t.Errorf("count = %d", db.FlowCount())
	}
}

func TestFlowReturnsCopy(t *testing.T) {
	db := New()
	db.UpsertFlow(key(1), []float64{1}, 0, 0, 1, false, "")
	rec, _ := db.Flow(key(1))
	rec.Features[0] = 999
	rec2, _ := db.Flow(key(1))
	if rec2.Features[0] != 1 {
		t.Error("Flow exposed internal storage")
	}
}

func TestJournalPolling(t *testing.T) {
	db := New()
	db.UpsertFlow(key(1), []float64{1}, 0, 0, 1, false, "")
	db.UpsertFlow(key(2), []float64{2}, 0, 0, 1, false, "")
	db.UpsertFlow(key(1), []float64{3}, 0, 1, 2, false, "")

	recs, cur := db.PollUpdates(0, 10)
	if len(recs) != 3 {
		t.Fatalf("polled %d, want 3 (JournalNew default)", len(recs))
	}
	if recs[2].Features[0] != 3 {
		t.Errorf("last journal entry features = %v", recs[2].Features)
	}
	// Nothing new: cursor stable, empty result.
	recs2, cur2 := db.PollUpdates(cur, 10)
	if len(recs2) != 0 || cur2 != cur {
		t.Errorf("idle poll returned %d entries, cursor %d→%d", len(recs2), cur, cur2)
	}
	// New write resumes from cursor.
	db.UpsertFlow(key(2), []float64{4}, 0, 2, 2, false, "")
	recs3, _ := db.PollUpdates(cur, 10)
	if len(recs3) != 1 || recs3[0].Features[0] != 4 {
		t.Errorf("incremental poll = %+v", recs3)
	}
}

func TestJournalBatchLimit(t *testing.T) {
	db := New()
	for i := 0; i < 10; i++ {
		db.UpsertFlow(key(uint16(i)), []float64{float64(i)}, 0, 0, 1, false, "")
	}
	recs, cur := db.PollUpdates(0, 4)
	if len(recs) != 4 {
		t.Fatalf("batch = %d, want 4", len(recs))
	}
	recs2, _ := db.PollUpdates(cur, 100)
	if len(recs2) != 6 {
		t.Errorf("remainder = %d, want 6", len(recs2))
	}
}

func TestJournalSkipsNewWhenConfigured(t *testing.T) {
	db := New()
	db.JournalNew = false
	db.UpsertFlow(key(1), []float64{1}, 0, 0, 1, false, "")
	if recs, _ := db.PollUpdates(0, 10); len(recs) != 0 {
		t.Fatalf("new entry journaled despite JournalNew=false")
	}
	db.UpsertFlow(key(1), []float64{2}, 0, 1, 2, false, "")
	recs, _ := db.PollUpdates(0, 10)
	if len(recs) != 1 {
		t.Fatalf("update not journaled: %d", len(recs))
	}
}

func TestTrimJournal(t *testing.T) {
	db := New()
	for i := 0; i < 5; i++ {
		db.UpsertFlow(key(uint16(i)), []float64{1}, 0, 0, 1, false, "")
	}
	recs, cur := db.PollUpdates(0, 3)
	db.TrimJournal(cur)
	if db.JournalLen() != 2 {
		t.Errorf("journal len after trim = %d, want 2", db.JournalLen())
	}
	// Polling after trim still works from the cursor.
	recs2, _ := db.PollUpdates(cur, 10)
	if len(recs2) != 2 {
		t.Errorf("post-trim poll = %d, want 2", len(recs2))
	}
	_ = recs
}

func TestPredictionLog(t *testing.T) {
	db := New()
	db.AppendPrediction(PredictionRecord{Key: key(1), Label: 1, At: 5, Latency: 2, Truth: true})
	db.AppendPrediction(PredictionRecord{Key: key(2), Label: 0, At: 6, Latency: 1})
	if db.PredictionCount() != 2 {
		t.Fatalf("count = %d", db.PredictionCount())
	}
	preds := db.Predictions()
	if preds[0].Label != 1 || preds[1].Label != 0 {
		t.Errorf("log = %+v", preds)
	}
	// Copy semantics.
	preds[0].Label = 99
	if db.Predictions()[0].Label == 99 {
		t.Error("Predictions exposed internal storage")
	}
}

func TestDeleteFlow(t *testing.T) {
	db := New()
	db.UpsertFlow(key(1), []float64{1}, 0, 0, 1, false, "")
	db.DeleteFlow(key(1))
	if _, ok := db.Flow(key(1)); ok {
		t.Error("flow survived delete")
	}
	// Re-upsert after delete is a create again.
	if !db.UpsertFlow(key(1), []float64{1}, 0, 0, 1, false, "") {
		t.Error("re-create after delete not flagged as created")
	}
}

func TestInstrument(t *testing.T) {
	db := New()
	reg := obs.NewRegistry()
	db.Instrument(reg)
	db.UpsertFlow(key(1), []float64{1}, 0, 0, 1, false, "")
	db.UpsertFlow(key(1), []float64{2}, 0, 1, 2, false, "")

	s := reg.Snapshot()
	if got := s.Gauges["intddos_store_flows"]; got != 1 {
		t.Errorf("flows gauge = %v, want 1", got)
	}
	if got := s.Gauges["intddos_store_journal_length"]; got != 2 {
		t.Errorf("journal gauge = %v, want 2", got)
	}
	if h, ok := s.Histogram("intddos_store_upsert_seconds"); !ok || h.Count != 2 {
		t.Errorf("upsert histogram count = %d, want 2", h.Count)
	}
	db.TrimJournal(2)
	if got := reg.Snapshot().Gauges["intddos_store_journal_length"]; got != 0 {
		t.Errorf("journal gauge after trim = %v, want 0", got)
	}
}
