// Package store implements the database of the paper's Figure 2: a
// keyed flow-record table the Data Processor writes feature snapshots
// into, an update journal the CentralServer polls, and a prediction
// log holding final labels with their prediction latencies.
//
// The store is safe for concurrent use; in simulation it is driven
// from the single-threaded event loop, but the live mode drives it
// from multiple goroutines.
package store

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/amlight/intddos/internal/flow"
	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/obs"
)

// FlowRecord is one database row: the newest feature snapshot for a
// Flow ID plus bookkeeping.
type FlowRecord struct {
	Key flow.Key
	// Features is the snapshot taken at the observation that produced
	// this version.
	Features []float64
	// RegisteredAt is the record creation time; UpdatedAt the newest
	// observation time. The paper measures prediction latency from
	// the packet's registration in the record.
	RegisteredAt netsim.Time
	UpdatedAt    netsim.Time
	// Updates counts observations folded into the flow so far.
	Updates int
	// Version increments on every write of this record.
	Version uint64

	// Ground truth bookkeeping (never seen by models).
	Truth      bool
	AttackType string
}

// PredictionRecord is one logged final decision.
type PredictionRecord struct {
	Key   flow.Key
	Label int
	// At is when the decision was produced; Latency is At minus the
	// snapshot's registration time (§III-2's Prediction Latency).
	At      netsim.Time
	Latency netsim.Time
	// Votes are the per-model raw outputs behind the ensemble result.
	Votes []int

	// Seq is the global decision sequence number, stamped under the
	// owning shard's prediction-log lock at append time from a counter
	// shared across shards. Each per-shard log is therefore Seq-sorted,
	// and a k-way merge by Seq reconstructs the one global append order
	// the legacy shared log recorded directly.
	Seq uint64

	Truth      bool
	AttackType string
}

// Store is the database contract the detection pipeline runs
// against. Two implementations exist: DB, the paper-faithful single
// mutex around one flow map (the shape of the original Python
// deployment's one database), and ShardedDB, N lock-striped DB shards
// for multi-core ingest. The journal is exposed per shard — Shards,
// PollShard, TrimShard — so a poller per shard never touches a global
// lock; a single-shard store is polled exactly like the legacy
// PollUpdates/TrimJournal pair.
type Store interface {
	// UpsertFlow writes a feature snapshot for key, returning whether
	// the record was created. The features slice is copied.
	UpsertFlow(key flow.Key, features []float64, registeredAt, updatedAt netsim.Time, updates int, truth bool, attackType string) (created bool)
	// Flow returns a copy of the record for key and whether it exists.
	Flow(key flow.Key) (FlowRecord, bool)
	// FlowCount returns the number of live flow records.
	FlowCount() int
	// DeleteFlow removes a flow record (eviction passthrough).
	DeleteFlow(key flow.Key)

	// Shards returns the journal stripe count (1 for the legacy DB).
	Shards() int
	// PollShard returns up to max journal entries after cursor on one
	// shard and the new cursor — the CentralServer's change feed.
	PollShard(shard int, cursor uint64, max int) ([]FlowRecord, uint64)
	// TrimShard drops one shard's journal entries at or before cursor.
	TrimShard(shard int, cursor uint64)
	// PollGlobal returns up to max journal entries after cursor in
	// global ingest order — entries are stamped with a global sequence
	// shared across shards at write time, and the sharded store merges
	// its per-shard journals by that stamp. The single-threaded
	// simulated mechanism polls this feed so its queue order is
	// independent of the shard count; the live pipeline polls per
	// shard.
	PollGlobal(cursor uint64, max int) ([]FlowRecord, uint64)
	// TrimGlobal drops journal entries at or before cursor in the
	// global order, across all shards.
	TrimGlobal(cursor uint64)
	// JournalLen returns unconsumed journal entries across all shards.
	JournalLen() int

	// AppendPrediction logs a final decision; Predictions copies the
	// log in append order; PredictionCount returns its size.
	AppendPrediction(p PredictionRecord)
	Predictions() []PredictionRecord
	PredictionCount() int

	// SetJournalNew controls whether brand-new records enter the
	// journal (see DB.JournalNew).
	SetJournalNew(on bool)
	// Instrument registers the store's metrics on reg.
	Instrument(reg *obs.Registry)
}

// Fallible is the optional error-surfacing side of a Store: writes
// and polls that can fail transiently — fault-injected stores today,
// network- or disk-backed stores tomorrow. The in-memory DB and
// ShardedDB never fail and do not implement it; consumers type-assert
// and fall back to the infallible methods. Callers of the Try paths
// are expected to retry with backoff and to account for writes they
// ultimately drop.
type Fallible interface {
	// TryUpsertFlow is UpsertFlow with a transient-failure path. On
	// error the write did not happen and may be retried.
	TryUpsertFlow(key flow.Key, features []float64, registeredAt, updatedAt netsim.Time, updates int, truth bool, attackType string) (created bool, err error)
	// TryPollShard is PollShard with a transient-failure path. On
	// error no journal entries were consumed; the cursor is unchanged
	// and the poll may be retried.
	TryPollShard(shard int, cursor uint64, max int) ([]FlowRecord, uint64, error)
}

// journalEntry marks one update available to pollers.
type journalEntry struct {
	seq  uint64     // dense per-shard sequence (PollShard indexes by it)
	gseq uint64     // global ingest sequence, shared across shards
	rec  FlowRecord // snapshot by value at write time
}

// DB is the in-memory database. Its state is split across three
// locks so the hot paths never serialize on each other: mu guards the
// flow map (ingest's record work), jmu the journal and sequence
// counters (ingest's append vs. the pollers), and pmu the prediction
// log (the workers). UpsertFlow nests jmu inside mu — the map update
// and journal append of one flow stay atomic, preserving per-flow
// journal order — and no path takes jmu or pmu and then mu, so the
// order is acyclic.
type DB struct {
	mu    sync.Mutex
	flows map[flow.Key]*FlowRecord

	// featWidth is the running sum of len(Features) across flows,
	// maintained on every insert/update/delete so a full export can
	// size its feature slab without a pre-pass over the whole map —
	// that pre-pass ran inside the checkpoint barrier. Guarded by mu.
	featWidth int

	// Delta-checkpoint bookkeeping, maintained only while track is on
	// (SetDeltaTracking): keys upserted since the last export, and keys
	// deleted since the last export. A key lives in at most one set —
	// the last action wins. Guarded by mu, like the flow map the marks
	// describe.
	track   bool
	dirty   map[flow.Key]struct{}
	removed map[flow.Key]struct{}

	jmu     sync.Mutex
	journal []journalEntry
	seq     uint64

	pmu   sync.Mutex
	preds []PredictionRecord
	// predMark is the Seq of the newest prediction included in the last
	// export; an incremental export ships only records after it.
	// Guarded by pmu.
	predMark uint64

	// gseqCtr stamps journal entries with the global ingest sequence
	// and predCtr stamps prediction records with the global decision
	// sequence. A standalone DB owns both; the shards of a ShardedDB
	// share one of each, which is what makes the per-shard journals
	// and prediction logs mergeable into one total order.
	gseqCtr *atomic.Uint64
	predCtr *atomic.Uint64

	// JournalNew controls whether brand-new records enter the
	// journal. The strict reading of §III-3 has the CentralServer
	// skip new entries and react only to updates; the testbed results
	// (per-packet predictions from the first packet on, Figure 7)
	// require true, the default used by the mechanism.
	JournalNew bool

	// UpsertLatency, when set, observes the wall-clock duration of
	// every UpsertFlow call in seconds (nil-safe; set by Instrument).
	UpsertLatency *obs.Histogram

	// Contention, when set, counts UpsertFlow calls that found the
	// mutex already held (nil-safe; set by Instrument and by
	// ShardedDB.Instrument to quantify residual intra-shard
	// contention).
	Contention *obs.Counter

	// PredContention, when set, counts AppendPrediction calls that
	// found the prediction-log mutex already held (nil-safe; set by
	// Instrument and by ShardedDB.Instrument). With per-shard logs
	// only workers finishing flows of the same shard can collide here.
	PredContention *obs.Counter
}

// Instrument registers the database's metrics on reg: the journal
// backlog and live-record gauges, the upsert latency histogram, and
// the lock-contention counters. Call once per database;
// re-registration on the same registry is a no-op for the gauges.
func (db *DB) Instrument(reg *obs.Registry) {
	reg.GaugeFunc("intddos_store_journal_length", func() float64 { return float64(db.JournalLen()) })
	reg.GaugeFunc("intddos_store_flows", func() float64 { return float64(db.FlowCount()) })
	reg.GaugeFunc("intddos_store_predictions_logged", func() float64 { return float64(db.PredictionCount()) })
	db.UpsertLatency = reg.Histogram("intddos_store_upsert_seconds", nil)
	db.Contention = reg.Counter("intddos_store_lock_contention_total")
	db.PredContention = reg.Counter("intddos_store_predlog_contention_total")
}

// New returns an empty database that journals new records.
func New() *DB {
	return &DB{
		flows:      make(map[flow.Key]*FlowRecord),
		JournalNew: true,
		gseqCtr:    new(atomic.Uint64),
		predCtr:    new(atomic.Uint64),
	}
}

// UpsertFlow writes a feature snapshot for key, returning whether the
// record was created. The features slice is copied.
func (db *DB) UpsertFlow(key flow.Key, features []float64, registeredAt, updatedAt netsim.Time, updates int, truth bool, attackType string) (created bool) {
	if db.UpsertLatency != nil {
		defer db.UpsertLatency.Since(time.Now())
	}
	if !db.mu.TryLock() {
		db.Contention.Inc() // nil-safe
		db.mu.Lock()
	}
	defer db.mu.Unlock()
	rec, ok := db.flows[key]
	if !ok {
		rec = &FlowRecord{Key: key, RegisteredAt: registeredAt}
		db.flows[key] = rec
		created = true
	}
	db.featWidth += len(features) - len(rec.Features)
	rec.Features = append(rec.Features[:0], features...)
	rec.UpdatedAt = updatedAt
	rec.Updates = updates
	rec.Version++
	rec.Truth = truth
	rec.AttackType = attackType
	if db.track {
		db.dirty[key] = struct{}{}
		delete(db.removed, key)
	}
	if !created || db.JournalNew {
		snap := *rec
		snap.Features = append([]float64(nil), rec.Features...)
		// The journal has its own lock so pollers reading the feed never
		// block the map work above; nesting jmu here (still under mu)
		// keeps one flow's appends in its upsert order. The global
		// stamp is taken inside jmu, so this journal stays gseq-sorted.
		db.jmu.Lock()
		db.seq++
		db.journal = append(db.journal, journalEntry{seq: db.seq, gseq: db.gseqCtr.Add(1), rec: snap})
		db.jmu.Unlock()
	}
	return created
}

// Flow returns a copy of the record for key and whether it exists.
func (db *DB) Flow(key flow.Key) (FlowRecord, bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	rec, ok := db.flows[key]
	if !ok {
		return FlowRecord{}, false
	}
	snap := *rec
	snap.Features = append([]float64(nil), rec.Features...)
	return snap, true
}

// FlowCount returns the number of live flow records.
func (db *DB) FlowCount() int {
	db.mu.Lock()
	defer db.mu.Unlock()
	return len(db.flows)
}

// PollUpdates returns up to max journal entries after cursor and the
// new cursor — the CentralServer's change feed (§III-3 step 4).
func (db *DB) PollUpdates(cursor uint64, max int) ([]FlowRecord, uint64) {
	db.jmu.Lock()
	defer db.jmu.Unlock()
	// Binary-search-free scan from the tail would be O(n); the journal
	// is append-only with dense sequence numbers, so index directly.
	if len(db.journal) == 0 {
		return nil, cursor
	}
	first := db.journal[0].seq
	start := int(cursor - first + 1)
	if start < 0 {
		start = 0
	}
	if start >= len(db.journal) {
		return nil, cursor
	}
	end := start + max
	if max <= 0 || end > len(db.journal) {
		end = len(db.journal)
	}
	out := make([]FlowRecord, 0, end-start)
	for _, e := range db.journal[start:end] {
		out = append(out, e.rec)
	}
	return out, db.journal[end-1].seq
}

// TrimJournal drops journal entries at or before cursor, bounding
// memory once every poller has passed them.
func (db *DB) TrimJournal(cursor uint64) {
	db.jmu.Lock()
	defer db.jmu.Unlock()
	i := 0
	for i < len(db.journal) && db.journal[i].seq <= cursor {
		i++
	}
	db.journal = append(db.journal[:0], db.journal[i:]...)
}

// JournalLen returns the number of unconsumed journal entries.
func (db *DB) JournalLen() int {
	db.jmu.Lock()
	defer db.jmu.Unlock()
	return len(db.journal)
}

// pollGlobalEntries returns up to max journal entries whose global
// stamp is after cursor. The journal is gseq-sorted (the stamp is
// taken under jmu at append), so the start is a binary search and the
// result a contiguous run.
func (db *DB) pollGlobalEntries(cursor uint64, max int) []journalEntry {
	db.jmu.Lock()
	defer db.jmu.Unlock()
	start := sort.Search(len(db.journal), func(i int) bool { return db.journal[i].gseq > cursor })
	if start >= len(db.journal) {
		return nil
	}
	end := len(db.journal)
	if max > 0 && start+max < end {
		end = start + max
	}
	return append([]journalEntry(nil), db.journal[start:end]...)
}

// PollGlobal returns up to max journal entries after cursor in global
// ingest order and the new cursor. For the single-journal DB the
// global order is the journal order.
func (db *DB) PollGlobal(cursor uint64, max int) ([]FlowRecord, uint64) {
	entries := db.pollGlobalEntries(cursor, max)
	if len(entries) == 0 {
		return nil, cursor
	}
	out := make([]FlowRecord, 0, len(entries))
	for _, e := range entries {
		out = append(out, e.rec)
	}
	return out, entries[len(entries)-1].gseq
}

// TrimGlobal drops journal entries whose global stamp is at or before
// cursor.
func (db *DB) TrimGlobal(cursor uint64) {
	db.jmu.Lock()
	defer db.jmu.Unlock()
	i := 0
	for i < len(db.journal) && db.journal[i].gseq <= cursor {
		i++
	}
	db.journal = append(db.journal[:0], db.journal[i:]...)
}

// AppendPrediction logs a final decision (§III-2 step 8), stamping it
// with the next global decision sequence number. The stamp is taken
// inside the log's lock, so the log is always Seq-sorted — the
// invariant the merge-on-read cursor depends on.
func (db *DB) AppendPrediction(p PredictionRecord) {
	if !db.pmu.TryLock() {
		db.PredContention.Inc() // nil-safe
		db.pmu.Lock()
	}
	defer db.pmu.Unlock()
	p.Seq = db.predCtr.Add(1)
	db.preds = append(db.preds, p)
}

// Predictions returns a copy of the prediction log.
func (db *DB) Predictions() []PredictionRecord {
	db.pmu.Lock()
	defer db.pmu.Unlock()
	out := make([]PredictionRecord, len(db.preds))
	copy(out, db.preds)
	return out
}

// PredictionCount returns the size of the prediction log.
func (db *DB) PredictionCount() int {
	db.pmu.Lock()
	defer db.pmu.Unlock()
	return len(db.preds)
}

// DeleteFlow removes a flow record (eviction passthrough).
func (db *DB) DeleteFlow(key flow.Key) {
	db.mu.Lock()
	defer db.mu.Unlock()
	rec, ok := db.flows[key]
	if !ok {
		return
	}
	db.featWidth -= len(rec.Features)
	delete(db.flows, key)
	if db.track {
		db.removed[key] = struct{}{}
		delete(db.dirty, key)
	}
}

// Shards returns 1: the legacy database is a single journal stripe.
func (db *DB) Shards() int { return 1 }

// PollShard is PollUpdates on the store's only stripe, giving DB the
// same per-shard polling surface as ShardedDB. A shard other than 0 —
// e.g. a cursor restored from a checkpoint taken at a different shard
// count — yields no entries and leaves the cursor unchanged rather
// than panicking: the poller observes an empty feed and the restore
// path reports the mismatch.
func (db *DB) PollShard(shard int, cursor uint64, max int) ([]FlowRecord, uint64) {
	if shard != 0 {
		return nil, cursor
	}
	return db.PollUpdates(cursor, max)
}

// TrimShard is TrimJournal on the store's only stripe; out-of-range
// shards are a no-op for the same reason PollShard returns empty.
func (db *DB) TrimShard(shard int, cursor uint64) {
	if shard != 0 {
		return
	}
	db.TrimJournal(cursor)
}

// SetJournalNew toggles journaling of brand-new records.
func (db *DB) SetJournalNew(on bool) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.JournalNew = on
}

var _ Store = (*DB)(nil)
