package store

import (
	"strconv"
	"sync"

	"github.com/amlight/intddos/internal/flow"
	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/obs"
)

// ShardedDB stripes the database by flow.Key hash: N independent DB
// shards, each with its own mutex, flow map, journal, and sequence
// counter, plus one shared prediction log. Ingest for flows on
// different shards never contends, and each shard's journal is polled
// through its own cursor, so per-shard pollers scale with cores —
// the partitioned per-bucket state AMON-style multi-gigabit monitors
// use, applied to the paper's one-database design.
//
// With one shard, a ShardedDB is a thin wrapper around a single DB
// and observably identical to it (the differential tests assert
// this), which keeps the paper's Table VI reproduction bit-exact at
// N=1.
type ShardedDB struct {
	shards []*DB

	predMu sync.Mutex
	preds  []PredictionRecord

	// predContention counts AppendPrediction calls that found predMu
	// already held (nil-safe; set by Instrument). The prediction log
	// is global across shards, so this is the store's prime
	// serialization suspect under multi-worker load.
	predContention *obs.Counter
}

// NewSharded returns an empty database striped over n shards (n < 1
// is treated as 1) that journals new records.
func NewSharded(n int) *ShardedDB {
	if n < 1 {
		n = 1
	}
	s := &ShardedDB{shards: make([]*DB, n)}
	for i := range s.shards {
		s.shards[i] = New()
	}
	return s
}

// shardFor routes a key to its shard.
func (s *ShardedDB) shardFor(key flow.Key) *DB {
	return s.shards[key.Shard(len(s.shards))]
}

// ShardFor returns the shard index key routes to (exported for the
// dispatch layer, which must agree with the store on placement).
func (s *ShardedDB) ShardFor(key flow.Key) int { return key.Shard(len(s.shards)) }

// Shards returns the stripe count.
func (s *ShardedDB) Shards() int { return len(s.shards) }

// UpsertFlow writes a feature snapshot into the key's shard.
func (s *ShardedDB) UpsertFlow(key flow.Key, features []float64, registeredAt, updatedAt netsim.Time, updates int, truth bool, attackType string) bool {
	return s.shardFor(key).UpsertFlow(key, features, registeredAt, updatedAt, updates, truth, attackType)
}

// Flow returns a copy of the record for key and whether it exists.
func (s *ShardedDB) Flow(key flow.Key) (FlowRecord, bool) { return s.shardFor(key).Flow(key) }

// FlowCount sums live flow records across shards.
func (s *ShardedDB) FlowCount() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.FlowCount()
	}
	return n
}

// DeleteFlow removes a flow record from its shard.
func (s *ShardedDB) DeleteFlow(key flow.Key) { s.shardFor(key).DeleteFlow(key) }

// PollShard returns up to max journal entries after cursor on one
// shard and the new cursor. Each shard has independent, dense
// sequence numbers; a cursor is only meaningful for the shard it came
// from. An out-of-range shard — a stale index from a checkpoint taken
// at a different -shards value — yields no entries and an unchanged
// cursor instead of panicking.
func (s *ShardedDB) PollShard(shard int, cursor uint64, max int) ([]FlowRecord, uint64) {
	if shard < 0 || shard >= len(s.shards) {
		return nil, cursor
	}
	return s.shards[shard].PollUpdates(cursor, max)
}

// TrimShard drops one shard's journal entries at or before cursor;
// out-of-range shards are a no-op.
func (s *ShardedDB) TrimShard(shard int, cursor uint64) {
	if shard < 0 || shard >= len(s.shards) {
		return
	}
	s.shards[shard].TrimJournal(cursor)
}

// JournalLen sums unconsumed journal entries across shards.
func (s *ShardedDB) JournalLen() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.JournalLen()
	}
	return n
}

// ShardJournalLen returns one shard's unconsumed journal length.
func (s *ShardedDB) ShardJournalLen(shard int) int { return s.shards[shard].JournalLen() }

// AppendPrediction logs a final decision. The prediction log is
// global — one append-ordered history, like the legacy DB — because
// decisions are already serialized per flow and the evaluation reads
// the log as a whole.
func (s *ShardedDB) AppendPrediction(p PredictionRecord) {
	if !s.predMu.TryLock() {
		s.predContention.Inc() // nil-safe
		s.predMu.Lock()
	}
	defer s.predMu.Unlock()
	s.preds = append(s.preds, p)
}

// Predictions returns a copy of the prediction log.
func (s *ShardedDB) Predictions() []PredictionRecord {
	s.predMu.Lock()
	defer s.predMu.Unlock()
	out := make([]PredictionRecord, len(s.preds))
	copy(out, s.preds)
	return out
}

// PredictionCount returns the size of the prediction log.
func (s *ShardedDB) PredictionCount() int {
	s.predMu.Lock()
	defer s.predMu.Unlock()
	return len(s.preds)
}

// SetJournalNew toggles journaling of brand-new records on every
// shard.
func (s *ShardedDB) SetJournalNew(on bool) {
	for _, sh := range s.shards {
		sh.SetJournalNew(on)
	}
}

// Instrument registers the striped database's metrics on reg: the
// aggregate gauges the legacy DB exposes, a per-shard journal-length
// gauge family, a shard-imbalance gauge (max/mean flow count across
// shards; 1.0 is a perfect spread), and a lock-contention counter
// shared by all shards. The shared upsert-latency histogram is wired
// into every shard.
func (s *ShardedDB) Instrument(reg *obs.Registry) {
	reg.GaugeFunc("intddos_store_journal_length", func() float64 { return float64(s.JournalLen()) })
	reg.GaugeFunc("intddos_store_flows", func() float64 { return float64(s.FlowCount()) })
	reg.GaugeFunc("intddos_store_predictions_logged", func() float64 { return float64(s.PredictionCount()) })
	reg.GaugeFunc("intddos_store_shards", func() float64 { return float64(len(s.shards)) })
	reg.GaugeFunc("intddos_store_shard_imbalance", s.Imbalance)
	perShard := reg.GaugeVec("intddos_store_shard_journal_length", "shard")
	hist := reg.Histogram("intddos_store_upsert_seconds", nil)
	contention := reg.Counter("intddos_store_lock_contention_total")
	s.predContention = reg.Counter("intddos_store_predlog_contention_total")
	for i, sh := range s.shards {
		sh := sh
		perShard.WithFunc(strconv.Itoa(i), func() float64 { return float64(sh.JournalLen()) })
		sh.UpsertLatency = hist
		sh.Contention = contention
	}
}

// Imbalance returns max/mean of per-shard flow counts: 1.0 means
// flows are spread evenly, len(shards) means one shard holds
// everything. Zero when the store is empty.
func (s *ShardedDB) Imbalance() float64 {
	max, total := 0, 0
	for _, sh := range s.shards {
		n := sh.FlowCount()
		total += n
		if n > max {
			max = n
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(s.shards))
	return float64(max) / mean
}

var _ Store = (*ShardedDB)(nil)
