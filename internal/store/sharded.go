package store

import (
	"strconv"
	"sync/atomic"

	"github.com/amlight/intddos/internal/flow"
	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/obs"
)

// ShardedDB stripes the database by flow.Key hash: N independent DB
// shards, each with its own locks, flow map, journal, and prediction
// log. Ingest, polling, and decision logging for flows on different
// shards never contend — the partitioned per-bucket state AMON-style
// multi-gigabit monitors use, applied to the paper's one-database
// design. The only cross-shard state is a pair of atomic sequence
// counters: every journal entry carries a global ingest stamp and
// every prediction a global decision stamp, so the per-shard logs are
// mergeable into the exact total orders the legacy single-lock layout
// recorded directly (PollGlobal, Predictions).
//
// With one shard, a ShardedDB is a thin wrapper around a single DB
// and observably identical to it (the differential tests assert
// this), which keeps the paper's Table VI reproduction bit-exact at
// N=1.
type ShardedDB struct {
	shards []*DB

	// gseqCtr/predCtr are the shared global stamps, installed into
	// every shard so stamping happens under the owning shard's lock.
	gseqCtr *atomic.Uint64
	predCtr *atomic.Uint64
}

// NewSharded returns an empty database striped over n shards (n < 1
// is treated as 1) that journals new records.
func NewSharded(n int) *ShardedDB {
	if n < 1 {
		n = 1
	}
	s := &ShardedDB{
		shards:  make([]*DB, n),
		gseqCtr: new(atomic.Uint64),
		predCtr: new(atomic.Uint64),
	}
	for i := range s.shards {
		sh := New()
		sh.gseqCtr = s.gseqCtr
		sh.predCtr = s.predCtr
		s.shards[i] = sh
	}
	return s
}

// shardFor routes a key to its shard.
func (s *ShardedDB) shardFor(key flow.Key) *DB {
	return s.shards[key.Shard(len(s.shards))]
}

// ShardFor returns the shard index key routes to (exported for the
// dispatch layer, which must agree with the store on placement).
func (s *ShardedDB) ShardFor(key flow.Key) int { return key.Shard(len(s.shards)) }

// Shards returns the stripe count.
func (s *ShardedDB) Shards() int { return len(s.shards) }

// UpsertFlow writes a feature snapshot into the key's shard.
func (s *ShardedDB) UpsertFlow(key flow.Key, features []float64, registeredAt, updatedAt netsim.Time, updates int, truth bool, attackType string) bool {
	return s.shardFor(key).UpsertFlow(key, features, registeredAt, updatedAt, updates, truth, attackType)
}

// Flow returns a copy of the record for key and whether it exists.
func (s *ShardedDB) Flow(key flow.Key) (FlowRecord, bool) { return s.shardFor(key).Flow(key) }

// FlowCount sums live flow records across shards.
func (s *ShardedDB) FlowCount() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.FlowCount()
	}
	return n
}

// DeleteFlow removes a flow record from its shard.
func (s *ShardedDB) DeleteFlow(key flow.Key) { s.shardFor(key).DeleteFlow(key) }

// PollShard returns up to max journal entries after cursor on one
// shard and the new cursor. Each shard has independent, dense
// sequence numbers; a cursor is only meaningful for the shard it came
// from. An out-of-range shard — a stale index from a checkpoint taken
// at a different -shards value — yields no entries and an unchanged
// cursor instead of panicking.
func (s *ShardedDB) PollShard(shard int, cursor uint64, max int) ([]FlowRecord, uint64) {
	if shard < 0 || shard >= len(s.shards) {
		return nil, cursor
	}
	return s.shards[shard].PollUpdates(cursor, max)
}

// TrimShard drops one shard's journal entries at or before cursor;
// out-of-range shards are a no-op.
func (s *ShardedDB) TrimShard(shard int, cursor uint64) {
	if shard < 0 || shard >= len(s.shards) {
		return
	}
	s.shards[shard].TrimJournal(cursor)
}

// PollGlobal returns up to max journal entries after cursor in global
// ingest order: a k-way merge of the per-shard journals by their
// global stamp. Each shard's journal is gseq-sorted, so the merge
// reconstructs the exact interleaving a single shared journal would
// have recorded. The returned cursor is the stamp of the last entry.
func (s *ShardedDB) PollGlobal(cursor uint64, max int) ([]FlowRecord, uint64) {
	heads := make([][]journalEntry, len(s.shards))
	for i, sh := range s.shards {
		heads[i] = sh.pollGlobalEntries(cursor, max)
	}
	out := make([]FlowRecord, 0, max)
	for max <= 0 || len(out) < max {
		best := -1
		for i, h := range heads {
			if len(h) == 0 {
				continue
			}
			if best < 0 || h[0].gseq < heads[best][0].gseq {
				best = i
			}
		}
		if best < 0 {
			break
		}
		cursor = heads[best][0].gseq
		out = append(out, heads[best][0].rec)
		heads[best] = heads[best][1:]
	}
	if len(out) == 0 {
		return nil, cursor
	}
	return out, cursor
}

// TrimGlobal drops entries at or before cursor (global order) from
// every shard's journal.
func (s *ShardedDB) TrimGlobal(cursor uint64) {
	for _, sh := range s.shards {
		sh.TrimGlobal(cursor)
	}
}

// JournalLen sums unconsumed journal entries across shards.
func (s *ShardedDB) JournalLen() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.JournalLen()
	}
	return n
}

// ShardJournalLen returns one shard's unconsumed journal length.
func (s *ShardedDB) ShardJournalLen(shard int) int { return s.shards[shard].JournalLen() }

// AppendPrediction logs a final decision into the key's shard.
// PR 2 kept one global log behind one mutex — the store's top
// serialization point once workers scaled; decisions of flows on
// different shards now never contend. The shared decision-sequence
// stamp (taken under the shard's log lock) is what lets Predictions
// reconstruct the global append order.
func (s *ShardedDB) AppendPrediction(p PredictionRecord) {
	s.shardFor(p.Key).AppendPrediction(p)
}

// Predictions returns the prediction log in global decision order: a
// merge-on-read of the Seq-sorted per-shard logs (see MergeCursor).
func (s *ShardedDB) Predictions() []PredictionRecord {
	logs := make([][]PredictionRecord, len(s.shards))
	for i, sh := range s.shards {
		logs[i] = sh.Predictions()
	}
	return MergePredictions(logs)
}

// ShardPredictions returns one shard's prediction log in Seq order
// (the unit the checkpoint format persists per shard).
func (s *ShardedDB) ShardPredictions(shard int) []PredictionRecord {
	if shard < 0 || shard >= len(s.shards) {
		return nil
	}
	return s.shards[shard].Predictions()
}

// PredictionCount sums the per-shard prediction logs.
func (s *ShardedDB) PredictionCount() int {
	n := 0
	for _, sh := range s.shards {
		n += sh.PredictionCount()
	}
	return n
}

// SetJournalNew toggles journaling of brand-new records on every
// shard.
func (s *ShardedDB) SetJournalNew(on bool) {
	for _, sh := range s.shards {
		sh.SetJournalNew(on)
	}
}

// Instrument registers the striped database's metrics on reg: the
// aggregate gauges the legacy DB exposes, a per-shard journal-length
// gauge family, a shard-imbalance gauge (max/mean flow count across
// shards; 1.0 is a perfect spread), and a lock-contention counter
// shared by all shards. The shared upsert-latency histogram is wired
// into every shard.
func (s *ShardedDB) Instrument(reg *obs.Registry) {
	reg.GaugeFunc("intddos_store_journal_length", func() float64 { return float64(s.JournalLen()) })
	reg.GaugeFunc("intddos_store_flows", func() float64 { return float64(s.FlowCount()) })
	reg.GaugeFunc("intddos_store_predictions_logged", func() float64 { return float64(s.PredictionCount()) })
	reg.GaugeFunc("intddos_store_shards", func() float64 { return float64(len(s.shards)) })
	reg.GaugeFunc("intddos_store_shard_imbalance", s.Imbalance)
	perShard := reg.GaugeVec("intddos_store_shard_journal_length", "shard")
	hist := reg.Histogram("intddos_store_upsert_seconds", nil)
	contention := reg.Counter("intddos_store_lock_contention_total")
	predContention := reg.Counter("intddos_store_predlog_contention_total")
	for i, sh := range s.shards {
		sh := sh
		perShard.WithFunc(strconv.Itoa(i), func() float64 { return float64(sh.JournalLen()) })
		sh.UpsertLatency = hist
		sh.Contention = contention
		sh.PredContention = predContention
	}
}

// Imbalance returns max/mean of per-shard flow counts: 1.0 means
// flows are spread evenly, len(shards) means one shard holds
// everything. Zero when the store is empty.
func (s *ShardedDB) Imbalance() float64 {
	max, total := 0, 0
	for _, sh := range s.shards {
		n := sh.FlowCount()
		total += n
		if n > max {
			max = n
		}
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(s.shards))
	return float64(max) / mean
}

var _ Store = (*ShardedDB)(nil)
