package store

import (
	"net/netip"
	"strings"
	"testing"

	"github.com/amlight/intddos/internal/flow"
	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/obs"
)

func testKey(i int) flow.Key {
	return flow.Key{
		Src:     netip.AddrFrom4([4]byte{10, 0, byte(i >> 8), byte(i)}),
		Dst:     netip.AddrFrom4([4]byte{192, 168, 0, 1}),
		SrcPort: uint16(1024 + i),
		DstPort: 80,
		Proto:   netsim.TCP,
	}
}

func TestShardedBasics(t *testing.T) {
	s := NewSharded(4)
	if s.Shards() != 4 {
		t.Fatalf("Shards() = %d", s.Shards())
	}
	for i := 0; i < 64; i++ {
		created := s.UpsertFlow(testKey(i), []float64{float64(i)}, 1, 2, 1, false, "")
		if !created {
			t.Fatalf("flow %d not created", i)
		}
	}
	if s.FlowCount() != 64 {
		t.Fatalf("FlowCount = %d", s.FlowCount())
	}
	if s.JournalLen() != 64 {
		t.Fatalf("JournalLen = %d", s.JournalLen())
	}
	// Per-shard journal lengths must sum to the total and agree with
	// key placement.
	sum := 0
	for i := 0; i < s.Shards(); i++ {
		sum += s.ShardJournalLen(i)
	}
	if sum != 64 {
		t.Fatalf("per-shard sum = %d", sum)
	}
	rec, ok := s.Flow(testKey(3))
	if !ok || rec.Features[0] != 3 {
		t.Fatalf("Flow(3) = %+v ok=%v", rec, ok)
	}
	s.DeleteFlow(testKey(3))
	if _, ok := s.Flow(testKey(3)); ok {
		t.Fatal("flow 3 survived delete")
	}

	// Poll each shard to exhaustion; union must be all 64 upserts.
	seen := 0
	for sh := 0; sh < s.Shards(); sh++ {
		cursor := uint64(0)
		for {
			recs, cur := s.PollShard(sh, cursor, 10)
			if len(recs) == 0 {
				break
			}
			seen += len(recs)
			cursor = cur
			s.TrimShard(sh, cur)
		}
	}
	if seen != 64 {
		t.Fatalf("polled %d records, want 64", seen)
	}
	if s.JournalLen() != 0 {
		t.Fatalf("journal not drained: %d", s.JournalLen())
	}
}

func TestShardedPredictionsGlobalOrder(t *testing.T) {
	s := NewSharded(4)
	for i := 0; i < 10; i++ {
		s.AppendPrediction(PredictionRecord{Key: testKey(i), Label: i % 2})
	}
	preds := s.Predictions()
	if len(preds) != 10 || s.PredictionCount() != 10 {
		t.Fatalf("predictions = %d", len(preds))
	}
	for i, p := range preds {
		if p.Key != testKey(i) {
			t.Fatalf("prediction %d out of append order", i)
		}
	}
}

func TestShardedInstrument(t *testing.T) {
	s := NewSharded(2)
	reg := obs.NewRegistry()
	s.Instrument(reg)
	for i := 0; i < 32; i++ {
		s.UpsertFlow(testKey(i), []float64{1}, 1, 2, 1, false, "")
	}
	snap := reg.Snapshot()
	if got := snap.Gauges["intddos_store_flows"]; got != 32 {
		t.Errorf("flows gauge = %v", got)
	}
	if got := snap.Gauges["intddos_store_shards"]; got != 2 {
		t.Errorf("shards gauge = %v", got)
	}
	imb := snap.Gauges["intddos_store_shard_imbalance"]
	if imb < 1 || imb > 2 {
		t.Errorf("imbalance = %v, want within [1,2]", imb)
	}
	// Per-shard journal gauges must sum to the aggregate.
	perShard := 0.0
	for name, v := range snap.Gauges {
		if strings.HasPrefix(name, "intddos_store_shard_journal_length{") {
			perShard += v
		}
	}
	if perShard != snap.Gauges["intddos_store_journal_length"] {
		t.Errorf("per-shard journal sum %v != aggregate %v",
			perShard, snap.Gauges["intddos_store_journal_length"])
	}
	if h, ok := snap.Histogram("intddos_store_upsert_seconds"); !ok || h.Count != 32 {
		t.Errorf("upsert histogram count = %+v", h)
	}
}

func TestShardedImbalanceEmpty(t *testing.T) {
	if got := NewSharded(4).Imbalance(); got != 0 {
		t.Fatalf("empty imbalance = %v", got)
	}
}

func TestPollShardOutOfRangeIsEmpty(t *testing.T) {
	// A stale shard index — e.g. a cursor restored from a checkpoint
	// taken at a different -shards value — must fail cleanly, not
	// panic the poller.
	db := New()
	db.UpsertFlow(key(1), []float64{1}, 0, 0, 1, false, "")
	for _, sh := range []int{-1, 1, 7} {
		if recs, cur := db.PollShard(sh, 42, 10); recs != nil || cur != 42 {
			t.Errorf("DB.PollShard(%d) = %v, %d; want empty, cursor unchanged", sh, recs, cur)
		}
		db.TrimShard(sh, 99) // must not panic or trim shard 0
	}
	if db.JournalLen() != 1 {
		t.Error("out-of-range trim touched the real journal")
	}

	s := NewSharded(4)
	s.UpsertFlow(key(2), []float64{1}, 0, 0, 1, false, "")
	for _, sh := range []int{-1, 4, 100} {
		if recs, cur := s.PollShard(sh, 7, 10); recs != nil || cur != 7 {
			t.Errorf("ShardedDB.PollShard(%d) = %v, %d; want empty, cursor unchanged", sh, recs, cur)
		}
		s.TrimShard(sh, 99)
	}
	if s.JournalLen() != 1 {
		t.Error("out-of-range trim touched a real journal")
	}
}
