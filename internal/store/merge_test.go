// Property tests for the merge-on-read prediction log: per-shard logs
// stamped from a shared counter must merge back into exactly the one
// total order a single shared log would have recorded — strictly
// increasing Seq, no duplicates, no losses, per-writer program order
// intact — under sequential replay and under concurrent appenders
// with the race detector watching.
package store

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"github.com/amlight/intddos/internal/netsim"
)

// TestMergeCursorReconstructsTotalOrder partitions a known global
// sequence 1..n into k Seq-sorted logs at random and requires the
// cursor to emit exactly 1..n again: the merge is the inverse of any
// order-preserving partition.
func TestMergeCursorReconstructsTotalOrder(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(400)
		k := 1 + rng.Intn(9)
		logs := make([][]PredictionRecord, k)
		for seq := uint64(1); seq <= uint64(n); seq++ {
			i := rng.Intn(k)
			logs[i] = append(logs[i], PredictionRecord{Seq: seq, Label: int(seq)})
		}
		c := NewMergeCursor(logs)
		if got := c.Remaining(); got != n {
			t.Fatalf("seed %d: Remaining = %d, want %d", seed, got, n)
		}
		for want := uint64(1); want <= uint64(n); want++ {
			rec, ok := c.Next()
			if !ok {
				t.Fatalf("seed %d: cursor dry at %d of %d", seed, want, n)
			}
			if rec.Seq != want {
				t.Fatalf("seed %d: merged Seq %d, want %d", seed, rec.Seq, want)
			}
		}
		if _, ok := c.Next(); ok {
			t.Fatalf("seed %d: cursor yielded past the end", seed)
		}
		if got := c.Remaining(); got != 0 {
			t.Fatalf("seed %d: Remaining after drain = %d", seed, got)
		}
	}
}

// TestMergedPredictionsLinearize is the concurrent half of the
// contract: W appenders hammer a ShardedDB over keys spanning every
// shard, and the merged log must be a linearization — gapless strictly
// increasing Seq covering every append exactly once, with each
// appender's program order preserved. Runs under -race in make check.
func TestMergedPredictionsLinearize(t *testing.T) {
	for _, nShards := range []int{1, 4, 8} {
		t.Run(fmt.Sprintf("shards=%d", nShards), func(t *testing.T) {
			const writers, perWriter = 8, 400
			db := NewSharded(nShards)
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					rng := rand.New(rand.NewSource(int64(1000*nShards + w)))
					for i := 0; i < perWriter; i++ {
						db.AppendPrediction(PredictionRecord{
							Key:   testKey(rng.Intn(4 * nShards)),
							Label: w,
							At:    netsim.Time(i),
						})
					}
				}(w)
			}
			wg.Wait()

			merged := db.Predictions()
			if len(merged) != writers*perWriter {
				t.Fatalf("merged log holds %d records, want %d", len(merged), writers*perWriter)
			}
			// Gapless strictly increasing stamps: every append got a
			// unique Seq and none went missing.
			seen := make(map[[2]int]bool, len(merged))
			lastPerWriter := make([]netsim.Time, writers)
			for i := range lastPerWriter {
				lastPerWriter[i] = -1
			}
			for i, p := range merged {
				if want := uint64(i + 1); p.Seq != want {
					t.Fatalf("merged[%d].Seq = %d, want %d (total order broken)", i, p.Seq, want)
				}
				id := [2]int{p.Label, int(p.At)}
				if seen[id] {
					t.Fatalf("record writer=%d i=%d merged twice", p.Label, p.At)
				}
				seen[id] = true
				// Program order: writer p.Label appended At=0,1,2,... each
				// append completing before the next began, so the merged
				// stream must keep that subsequence in order.
				if p.At <= lastPerWriter[p.Label] {
					t.Fatalf("writer %d: append %d merged before %d", p.Label, lastPerWriter[p.Label], p.At)
				}
				lastPerWriter[p.Label] = p.At
			}
			// Every per-shard log the merge read is itself Seq-sorted.
			for s := 0; s < nShards; s++ {
				log := db.ShardPredictions(s)
				for i := 1; i < len(log); i++ {
					if log[i].Seq <= log[i-1].Seq {
						t.Fatalf("shard %d log not Seq-sorted at %d", s, i)
					}
				}
			}
		})
	}
}

// TestMergedPredictionsMatchSingleLogOracle replays one deterministic
// append sequence into the legacy single-log DB and into ShardedDBs
// of several widths: the sharded stores' merged logs must equal the
// legacy log element for element — the single shared log is the
// oracle the merge-on-read view is checked against.
func TestMergedPredictionsMatchSingleLogOracle(t *testing.T) {
	appends := func(db Store, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < 1500; i++ {
			db.AppendPrediction(PredictionRecord{
				Key:        testKey(rng.Intn(17)),
				Label:      rng.Intn(2),
				At:         netsim.Time(i),
				Latency:    netsim.Time(rng.Intn(1000)),
				Votes:      []int{rng.Intn(2), rng.Intn(2), rng.Intn(2)},
				Truth:      rng.Intn(2) == 0,
				AttackType: fmt.Sprintf("type%d", rng.Intn(3)),
			})
		}
	}
	for seed := int64(0); seed < 3; seed++ {
		oracle := New()
		appends(oracle, seed)
		want := oracle.Predictions()
		for _, nShards := range []int{1, 2, 8} {
			sharded := NewSharded(nShards)
			appends(sharded, seed)
			got := sharded.Predictions()
			if !reflect.DeepEqual(want, got) {
				t.Errorf("seed %d shards %d: merged log diverged from single-log oracle (%d vs %d records)",
					seed, nShards, len(got), len(want))
			}
			if got := sharded.PredictionCount(); got != len(want) {
				t.Errorf("seed %d shards %d: PredictionCount = %d, want %d", seed, nShards, got, len(want))
			}
		}
	}
}
