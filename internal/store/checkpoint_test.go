package store

import (
	"reflect"
	"testing"
)

// TestExportImportRoundTrip proves an exported shard reloads into a
// fresh store with identical observable state: flow records, journal
// feed, sequence continuity, and prediction log.
func TestExportImportRoundTrip(t *testing.T) {
	src := NewSharded(4)
	for i := uint16(0); i < 64; i++ {
		src.UpsertFlow(key(i), []float64{float64(i), 2, 3}, 10, 20, 1, i%2 == 0, "synflood")
		src.UpsertFlow(key(i), []float64{float64(i), 4, 5}, 10, 30, 2, i%2 == 0, "synflood")
	}
	src.AppendPrediction(PredictionRecord{Key: key(1), Label: 1, At: 99, Latency: 5, Votes: []int{1, 0, 1}})
	// Consume part of shard 0's journal so the export carries a
	// non-trivial tail + cursor state.
	_, cur := src.PollShard(0, 0, 5)
	src.TrimShard(0, cur)

	dst := NewSharded(4)
	for i := 0; i < 4; i++ {
		if err := dst.ImportShard(i, src.ExportShard(i)); err != nil {
			t.Fatalf("import shard %d: %v", i, err)
		}
	}
	dst.ImportPredictions(src.Predictions())

	if dst.FlowCount() != src.FlowCount() {
		t.Fatalf("flow count %d, want %d", dst.FlowCount(), src.FlowCount())
	}
	if dst.JournalLen() != src.JournalLen() {
		t.Fatalf("journal len %d, want %d", dst.JournalLen(), src.JournalLen())
	}
	for i := uint16(0); i < 64; i++ {
		a, okA := src.Flow(key(i))
		b, okB := dst.Flow(key(i))
		if okA != okB || !reflect.DeepEqual(a, b) {
			t.Fatalf("flow %d diverged: %+v vs %+v", i, a, b)
		}
	}
	if !reflect.DeepEqual(src.Predictions(), dst.Predictions()) {
		t.Error("prediction log diverged")
	}
	// Polling the restored journal from a fresh cursor yields exactly
	// the unconsumed tail, and new writes continue the sequence.
	for sh := 0; sh < 4; sh++ {
		wantRecs, wantCur := src.PollShard(sh, 0, 0)
		gotRecs, gotCur := dst.PollShard(sh, 0, 0)
		if gotCur != wantCur || !reflect.DeepEqual(gotRecs, wantRecs) {
			t.Fatalf("shard %d poll diverged", sh)
		}
	}
	kNew := key(9000)
	dst.UpsertFlow(kNew, []float64{7}, 50, 50, 1, false, "")
	sh := dst.ShardFor(kNew)
	_, before := src.PollShard(sh, 0, 0)
	recs, after := dst.PollShard(sh, 0, 0)
	if after != before+1 || len(recs) == 0 || recs[len(recs)-1].Key != kNew {
		t.Errorf("post-restore write broke sequence continuity: cursor %d->%d", before, after)
	}

	// Imports are deep copies: mutating the export must not reach dst.
	ex := src.ExportShard(0)
	fresh := NewSharded(4)
	if err := fresh.ImportShard(0, ex); err != nil {
		t.Fatal(err)
	}
	if len(ex.Flows) > 0 {
		before, _ := fresh.Flow(ex.Flows[0].Key)
		ex.Flows[0].Features[0] = -1
		after, _ := fresh.Flow(ex.Flows[0].Key)
		if !reflect.DeepEqual(before, after) {
			t.Error("import aliased the export's feature slice")
		}
	}

	// Shard-count mismatch fails loud.
	if err := NewSharded(2).ImportShard(3, ex); err == nil {
		t.Error("out-of-range import accepted")
	}
	if err := New().ImportShard(1, ex); err == nil {
		t.Error("DB import of shard 1 accepted")
	}
}
