// Differential tests: drive the legacy single-lock DB and a ShardedDB
// with the same randomized, interleaved operation sequence and assert
// the two are observably identical — same visible flow state, same
// per-flow journal semantics, same prediction log. This is the
// contract that makes sharding a deployment substitution rather than
// a semantic change to the paper's mechanism.
package store

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"github.com/amlight/intddos/internal/flow"
	"github.com/amlight/intddos/internal/netsim"
)

// diffHarness holds one store plus the polling state a CentralServer
// would keep for it — per-shard cursors for the striped poll surface
// and a global cursor for the merged journal order.
type diffHarness struct {
	db           Store
	cursors      []uint64
	gcursor      uint64
	polled       map[flow.Key][]FlowRecord // journal entries seen, per flow
	globalPolled []FlowRecord              // merged-order journal stream
}

func newDiffHarness(db Store) *diffHarness {
	return &diffHarness{
		db:      db,
		cursors: make([]uint64, db.Shards()),
		polled:  make(map[flow.Key][]FlowRecord),
	}
}

// pollAll drains every shard's journal into the per-flow history.
func (h *diffHarness) pollAll(batch int, trim bool) {
	for s := 0; s < h.db.Shards(); s++ {
		for {
			recs, cur := h.db.PollShard(s, h.cursors[s], batch)
			if len(recs) == 0 {
				if trim {
					// Entries consumed by earlier no-trim polls still
					// occupy the journal until trimmed to the cursor.
					h.db.TrimShard(s, h.cursors[s])
				}
				break
			}
			for _, r := range recs {
				h.polled[r.Key] = append(h.polled[r.Key], r)
			}
			h.cursors[s] = cur
			if trim {
				h.db.TrimShard(s, cur)
			}
		}
	}
}

// pollGlobalOnce advances the global cursor by one bounded poll,
// appending to the merged-order stream; trim optionally follows the
// cursor like the simulated CentralServer does.
func (h *diffHarness) pollGlobalOnce(batch int, trim bool) {
	recs, cur := h.db.PollGlobal(h.gcursor, batch)
	h.globalPolled = append(h.globalPolled, recs...)
	h.gcursor = cur
	if trim {
		h.db.TrimGlobal(cur)
	}
}

// applyOp runs one deterministic operation against a store.
func applyOp(rng *rand.Rand, h *diffHarness, keys []flow.Key, step int) {
	key := keys[rng.Intn(len(keys))]
	switch op := rng.Intn(10); {
	case op < 6: // upsert dominates, like the real ingest path
		feats := []float64{float64(step), float64(rng.Intn(100))}
		h.db.UpsertFlow(key, feats, netsim.Time(step), netsim.Time(step+1),
			step, step%3 == 0, "synflood")
	case op < 8: // poll a partial batch without trimming
		h.pollAll(1+rng.Intn(4), false)
	case op < 9: // poll and trim
		h.pollAll(1+rng.Intn(4), true)
	default:
		h.db.DeleteFlow(key)
	}
}

// applyGlobalOp runs one deterministic operation against a store
// driven the way the simulated mechanism drives it: global-order
// polls and a prediction log alongside the ingest writes.
func applyGlobalOp(rng *rand.Rand, h *diffHarness, keys []flow.Key, step int) {
	key := keys[rng.Intn(len(keys))]
	switch op := rng.Intn(10); {
	case op < 5:
		feats := []float64{float64(step), float64(rng.Intn(100))}
		h.db.UpsertFlow(key, feats, netsim.Time(step), netsim.Time(step+1),
			step, step%3 == 0, "synflood")
	case op < 7: // global poll without trim
		h.pollGlobalOnce(1+rng.Intn(4), false)
	case op < 8: // global poll and trim
		h.pollGlobalOnce(1+rng.Intn(4), true)
	case op < 9: // log a decision
		h.db.AppendPrediction(PredictionRecord{
			Key: key, Label: rng.Intn(2), At: netsim.Time(step),
			Latency: netsim.Time(rng.Intn(500)), Votes: []int{rng.Intn(2), rng.Intn(2)},
			Truth: step%3 == 0, AttackType: "synflood",
		})
	default:
		h.db.DeleteFlow(key)
	}
}

// TestDifferentialShardedVsLegacy replays identical operation
// sequences into a legacy DB and ShardedDBs of several widths.
func TestDifferentialShardedVsLegacy(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		for seed := int64(0); seed < 4; seed++ {
			t.Run(fmt.Sprintf("shards=%d/seed=%d", shards, seed), func(t *testing.T) {
				keys := make([]flow.Key, 13)
				for i := range keys {
					keys[i] = testKey(i)
				}
				legacy := newDiffHarness(New())
				sharded := newDiffHarness(NewSharded(shards))

				// Two independent RNGs with the same seed: each harness
				// consumes randomness identically.
				rngA := rand.New(rand.NewSource(seed))
				rngB := rand.New(rand.NewSource(seed))
				for step := 0; step < 2000; step++ {
					applyOp(rngA, legacy, keys, step)
					applyOp(rngB, sharded, keys, step)
				}
				legacy.pollAll(64, true)
				sharded.pollAll(64, true)

				assertStoresEqual(t, legacy, sharded, keys)
			})
		}
	}
}

// TestDifferentialGlobalPollAndPredictions replays identical
// sequences of upserts, global-order polls, prediction appends, and
// deletes into a legacy DB and ShardedDBs of several widths: the
// merged global journal stream and the merged prediction log must be
// identical element for element — cross-flow order included. This is
// the store-level contract behind Table VI's byte-identity at every
// shard count.
func TestDifferentialGlobalPollAndPredictions(t *testing.T) {
	for _, shards := range []int{1, 2, 8} {
		for seed := int64(0); seed < 4; seed++ {
			t.Run(fmt.Sprintf("shards=%d/seed=%d", shards, seed), func(t *testing.T) {
				keys := make([]flow.Key, 13)
				for i := range keys {
					keys[i] = testKey(i)
				}
				legacy := newDiffHarness(New())
				sharded := newDiffHarness(NewSharded(shards))
				rngA := rand.New(rand.NewSource(seed))
				rngB := rand.New(rand.NewSource(seed))
				for step := 0; step < 2000; step++ {
					applyGlobalOp(rngA, legacy, keys, step)
					applyGlobalOp(rngB, sharded, keys, step)
				}
				// Drain both global streams completely.
				for {
					before := len(legacy.globalPolled)
					legacy.pollGlobalOnce(64, true)
					sharded.pollGlobalOnce(64, true)
					if len(legacy.globalPolled) == before {
						break
					}
				}

				wantStream := projectKeyedJournal(legacy.globalPolled)
				gotStream := projectKeyedJournal(sharded.globalPolled)
				if !reflect.DeepEqual(wantStream, gotStream) {
					t.Errorf("global poll streams differ (%d vs %d records)", len(gotStream), len(wantStream))
				}
				if !reflect.DeepEqual(legacy.db.Predictions(), sharded.db.Predictions()) {
					t.Errorf("prediction logs differ (%d vs %d records)",
						sharded.db.PredictionCount(), legacy.db.PredictionCount())
				}
				if l, s := legacy.db.JournalLen(), sharded.db.JournalLen(); l != s {
					t.Errorf("JournalLen after global drain: legacy %d, sharded %d", l, s)
				}
			})
		}
	}
}

// assertStoresEqual compares every observable surface of two stores.
func assertStoresEqual(t *testing.T, want, got *diffHarness, keys []flow.Key) {
	t.Helper()
	if want.db.FlowCount() != got.db.FlowCount() {
		t.Errorf("FlowCount: legacy %d, sharded %d", want.db.FlowCount(), got.db.FlowCount())
	}
	if want.db.JournalLen() != got.db.JournalLen() {
		t.Errorf("JournalLen after drain: legacy %d, sharded %d",
			want.db.JournalLen(), got.db.JournalLen())
	}
	for _, key := range keys {
		wr, wok := want.db.Flow(key)
		gr, gok := got.db.Flow(key)
		if wok != gok {
			t.Errorf("%s: exists legacy=%v sharded=%v", key, wok, gok)
			continue
		}
		if wok {
			// Version numbers are per-shard bookkeeping; everything the
			// pipeline reads must match exactly.
			wr.Version, gr.Version = 0, 0
			if !reflect.DeepEqual(wr, gr) {
				t.Errorf("%s: record mismatch\nlegacy:  %+v\nsharded: %+v", key, wr, gr)
			}
		}
		// Journal semantics: the same per-flow update sequence, in the
		// same order, must have been observable through polling.
		wj, gj := projectJournal(want.polled[key]), projectJournal(got.polled[key])
		if !reflect.DeepEqual(wj, gj) {
			t.Errorf("%s: journal sequences differ\nlegacy:  %v\nsharded: %v", key, wj, gj)
		}
	}
}

// projectKeyedJournal renders a polled stream with flow identity kept
// — the projection for global-order comparisons, where cross-flow
// interleaving is exactly what is under test.
func projectKeyedJournal(recs []FlowRecord) []string {
	out := make([]string, 0, len(recs))
	for _, r := range recs {
		out = append(out, fmt.Sprintf("k=%s u=%d t=%v feat=%v truth=%v",
			r.Key, r.Updates, r.UpdatedAt, r.Features, r.Truth))
	}
	return out
}

// projectJournal reduces polled records to the fields the prediction
// path consumes, dropping cross-flow ordering artifacts.
func projectJournal(recs []FlowRecord) []string {
	out := make([]string, 0, len(recs))
	for _, r := range recs {
		out = append(out, fmt.Sprintf("u=%d t=%v feat=%v truth=%v", r.Updates, r.UpdatedAt, r.Features, r.Truth))
	}
	return out
}

// TestDifferentialConcurrent hammers both stores with concurrent
// writers and per-shard pollers under the race detector, then checks
// that per-flow journal order survived. Cross-flow order is
// unspecified under concurrency; per-flow order is the invariant the
// vote window needs.
func TestDifferentialConcurrent(t *testing.T) {
	for _, db := range []Store{New(), NewSharded(8)} {
		db := db
		t.Run(fmt.Sprintf("shards=%d", db.Shards()), func(t *testing.T) {
			const writers, perWriter, flows = 8, 500, 16
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					// Each writer owns two flows so per-flow updates are
					// strictly ordered at the source.
					for i := 0; i < perWriter; i++ {
						key := testKey(w*2 + i%2)
						db.UpsertFlow(key, []float64{float64(i)}, 0, netsim.Time(i), i, false, "")
					}
				}(w)
			}
			// Concurrent per-shard pollers drain while writes happen.
			history := make(chan FlowRecord, writers*perWriter)
			var pollWg sync.WaitGroup
			stop := make(chan struct{})
			for s := 0; s < db.Shards(); s++ {
				pollWg.Add(1)
				go func(s int) {
					defer pollWg.Done()
					cursor := uint64(0)
					for {
						recs, cur := db.PollShard(s, cursor, 32)
						for _, r := range recs {
							history <- r
						}
						if cur != cursor {
							cursor = cur
							db.TrimShard(s, cursor)
							continue
						}
						select {
						case <-stop:
							// One final drain after writers finished.
							recs, cur = db.PollShard(s, cursor, 1<<20)
							for _, r := range recs {
								history <- r
							}
							return
						default:
						}
					}
				}(s)
			}
			wg.Wait()
			close(stop)
			pollWg.Wait()
			close(history)

			perFlow := make(map[flow.Key][]int)
			for r := range history {
				perFlow[r.Key] = append(perFlow[r.Key], r.Updates)
			}
			if len(perFlow) != flows {
				t.Fatalf("saw %d flows, want %d", len(perFlow), flows)
			}
			for key, seq := range perFlow {
				for i := 1; i < len(seq); i++ {
					if seq[i] <= seq[i-1] {
						t.Fatalf("%s: journal order violated at %d: %v", key, i, seq)
					}
				}
			}
		})
	}
}
