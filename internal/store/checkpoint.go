package store

import (
	"fmt"
	"sync/atomic"

	"github.com/amlight/intddos/internal/flow"
)

// JournalEntry is one exported journal row: the dense per-shard
// sequence number, the global ingest stamp shared across shards, and
// the record snapshot taken at write time. It is the unit the
// checkpoint subsystem persists so a restored store resumes polling
// exactly where the crashed process left off. GSeq is zero in exports
// decoded from version-1 snapshots (the format predates the stamp);
// ImportShard synthesizes fresh stamps for those, preserving
// per-shard order.
type JournalEntry struct {
	Seq  uint64
	GSeq uint64
	Rec  FlowRecord
}

// ShardExport is one shard's complete durable state: live flow
// records, the unconsumed journal tail, the shard's sequence counter,
// and — since snapshot version 2 — the shard's prediction log in Seq
// order. Everything is deep-copied — mutating an export never touches
// the store.
type ShardExport struct {
	Flows   []FlowRecord
	Journal []JournalEntry
	Seq     uint64
	Preds   []PredictionRecord
}

// Checkpointable is the optional export/import surface of a store.
// The in-memory DB and ShardedDB implement it; fault-injection
// wrappers deliberately do not (a checkpoint must read the real
// state, not a fault-shaped view), so consumers capture the concrete
// store before wrapping.
type Checkpointable interface {
	// ExportShard deep-copies one shard's durable state.
	// Out-of-range shards yield a zero export.
	ExportShard(shard int) ShardExport
	// ImportShard loads an export into one shard, replacing its
	// state. It fails when the shard index is out of range — the
	// checkpointed shard count must match the store's.
	ImportShard(shard int, ex ShardExport) error
	// ImportPredictions replaces the whole prediction log with a
	// restored global-order history — the version-1 snapshot layout,
	// where the log was one shared section. Version-2 snapshots carry
	// predictions per shard inside ShardExport instead.
	ImportPredictions(preds []PredictionRecord)
}

// cloneRecord deep-copies a flow record (Features is the only
// reference field).
func cloneRecord(rec FlowRecord) FlowRecord {
	snap := rec
	snap.Features = append([]float64(nil), rec.Features...)
	return snap
}

// clonePrediction deep-copies a prediction record (Votes is the only
// reference field).
func clonePrediction(p PredictionRecord) PredictionRecord {
	snap := p
	snap.Votes = append([]int(nil), p.Votes...)
	return snap
}

// raiseCounter lifts an atomic sequence counter to at least v, so
// stamps taken after a restore never collide with restored ones. The
// restore path is single-threaded, but the CAS keeps this safe to
// call at any time.
func raiseCounter(ctr *atomic.Uint64, v uint64) {
	for {
		cur := ctr.Load()
		if cur >= v || ctr.CompareAndSwap(cur, v) {
			return
		}
	}
}

// ExportShard deep-copies the DB's durable state (the legacy DB is
// its own single shard).
func (db *DB) ExportShard(shard int) ShardExport {
	if shard != 0 {
		return ShardExport{}
	}
	var ex ShardExport
	db.mu.Lock()
	ex.Flows = make([]FlowRecord, 0, len(db.flows))
	for _, rec := range db.flows {
		ex.Flows = append(ex.Flows, cloneRecord(*rec))
	}
	db.mu.Unlock()
	db.jmu.Lock()
	ex.Journal = make([]JournalEntry, 0, len(db.journal))
	for _, e := range db.journal {
		ex.Journal = append(ex.Journal, JournalEntry{Seq: e.seq, GSeq: e.gseq, Rec: cloneRecord(e.rec)})
	}
	ex.Seq = db.seq
	db.jmu.Unlock()
	db.pmu.Lock()
	ex.Preds = make([]PredictionRecord, 0, len(db.preds))
	for _, p := range db.preds {
		ex.Preds = append(ex.Preds, clonePrediction(p))
	}
	db.pmu.Unlock()
	return ex
}

// ImportShard replaces the DB's durable state with an export. Journal
// entries without a global stamp (version-1 snapshots) get fresh ones
// in journal order; the shared counters are raised past every
// restored stamp so post-restore writes continue the sequences.
func (db *DB) ImportShard(shard int, ex ShardExport) error {
	if shard != 0 {
		return fmt.Errorf("store: import shard %d out of range (DB has exactly one)", shard)
	}
	db.mu.Lock()
	db.flows = make(map[flow.Key]*FlowRecord, len(ex.Flows))
	for _, rec := range ex.Flows {
		snap := cloneRecord(rec)
		db.flows[rec.Key] = &snap
	}
	db.mu.Unlock()
	db.jmu.Lock()
	db.journal = make([]journalEntry, 0, len(ex.Journal))
	for _, e := range ex.Journal {
		g := e.GSeq
		if g == 0 {
			g = db.gseqCtr.Add(1)
		} else {
			raiseCounter(db.gseqCtr, g)
		}
		db.journal = append(db.journal, journalEntry{seq: e.Seq, gseq: g, rec: cloneRecord(e.Rec)})
	}
	db.seq = ex.Seq
	db.jmu.Unlock()
	db.pmu.Lock()
	db.preds = make([]PredictionRecord, 0, len(ex.Preds))
	for _, p := range ex.Preds {
		db.preds = append(db.preds, clonePrediction(p))
		raiseCounter(db.predCtr, p.Seq)
	}
	db.pmu.Unlock()
	return nil
}

// ImportPredictions replaces the prediction log with a restored
// global-order history (version-1 snapshot layout). Records without a
// Seq stamp are stamped in input order.
func (db *DB) ImportPredictions(preds []PredictionRecord) {
	db.pmu.Lock()
	defer db.pmu.Unlock()
	db.preds = make([]PredictionRecord, 0, len(preds))
	for _, p := range preds {
		if p.Seq == 0 {
			p.Seq = db.predCtr.Add(1)
		} else {
			raiseCounter(db.predCtr, p.Seq)
		}
		db.preds = append(db.preds, clonePrediction(p))
	}
}

// ExportShard deep-copies one shard's durable state.
func (s *ShardedDB) ExportShard(shard int) ShardExport {
	if shard < 0 || shard >= len(s.shards) {
		return ShardExport{}
	}
	return s.shards[shard].ExportShard(0)
}

// ImportShard loads an export into one shard.
func (s *ShardedDB) ImportShard(shard int, ex ShardExport) error {
	if shard < 0 || shard >= len(s.shards) {
		return fmt.Errorf("store: import shard %d out of range (have %d)", shard, len(s.shards))
	}
	return s.shards[shard].ImportShard(0, ex)
}

// ImportPredictions replaces every shard's prediction log with a
// restored global-order history (version-1 snapshot layout, one
// shared log): records are routed to their key's shard, and records
// without a Seq stamp are stamped in input order — input order is the
// global order, so each shard's log comes out Seq-sorted and the
// merge-on-read reconstructs exactly the restored history.
func (s *ShardedDB) ImportPredictions(preds []PredictionRecord) {
	for _, sh := range s.shards {
		sh.pmu.Lock()
		sh.preds = nil
		sh.pmu.Unlock()
	}
	for _, p := range preds {
		sh := s.shardFor(p.Key)
		sh.pmu.Lock()
		if p.Seq == 0 {
			p.Seq = s.predCtr.Add(1)
		} else {
			raiseCounter(s.predCtr, p.Seq)
		}
		sh.preds = append(sh.preds, clonePrediction(p))
		sh.pmu.Unlock()
	}
}

var (
	_ Checkpointable = (*DB)(nil)
	_ Checkpointable = (*ShardedDB)(nil)
)
