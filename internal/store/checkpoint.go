package store

import (
	"fmt"
	"sort"
	"sync/atomic"

	"github.com/amlight/intddos/internal/flow"
)

// JournalEntry is one exported journal row: the dense per-shard
// sequence number, the global ingest stamp shared across shards, and
// the record snapshot taken at write time. It is the unit the
// checkpoint subsystem persists so a restored store resumes polling
// exactly where the crashed process left off. GSeq is zero in exports
// decoded from version-1 snapshots (the format predates the stamp);
// ImportShard synthesizes fresh stamps for those, preserving
// per-shard order.
type JournalEntry struct {
	Seq  uint64
	GSeq uint64
	Rec  FlowRecord
}

// ShardExport is one shard's complete durable state: live flow
// records, the unconsumed journal tail, the shard's sequence counter,
// and — since snapshot version 2 — the shard's prediction log in Seq
// order. Everything is deep-copied — mutating an export never touches
// the store.
type ShardExport struct {
	Flows   []FlowRecord
	Journal []JournalEntry
	Seq     uint64
	Preds   []PredictionRecord

	// slab is the shared backing array behind Flows' Features slices.
	// It is retained only so ExportShardInto can recycle it when the
	// export it came from is dead; nothing reads it.
	slab []float64
}

// Checkpointable is the optional export/import surface of a store.
// The in-memory DB and ShardedDB implement it; fault-injection
// wrappers deliberately do not (a checkpoint must read the real
// state, not a fault-shaped view), so consumers capture the concrete
// store before wrapping.
type Checkpointable interface {
	// ExportShard deep-copies one shard's durable state.
	// Out-of-range shards yield a zero export.
	ExportShard(shard int) ShardExport
	// ImportShard loads an export into one shard, replacing its
	// state. It fails when the shard index is out of range — the
	// checkpointed shard count must match the store's.
	ImportShard(shard int, ex ShardExport) error
	// ImportPredictions replaces the whole prediction log with a
	// restored global-order history — the version-1 snapshot layout,
	// where the log was one shared section. Version-2 snapshots carry
	// predictions per shard inside ShardExport instead.
	ImportPredictions(preds []PredictionRecord)
}

// ShardDeltaExport is one shard's state difference against the
// previous export: records upserted since then, keys deleted since
// then, the complete current journal tail (the tail replaces the
// restored one — entries polled and trimmed since the parent must not
// reappear), the shard's sequence counter, and the predictions logged
// since then. Like ShardExport, everything is deep-copied.
type ShardDeltaExport struct {
	Flows   []FlowRecord
	Removed []flow.Key
	Journal []JournalEntry
	Seq     uint64
	Preds   []PredictionRecord
}

// DeltaCheckpointable is the incremental-checkpoint surface of a
// store: per-shard dirty tracking so an export under the capture
// barrier copies only what changed. Every export — full or delta —
// resets the marks, so consecutive delta exports chain: each one is
// the difference against whichever export came before it.
type DeltaCheckpointable interface {
	Checkpointable
	// SetDeltaTracking turns dirty/removed tracking on or off and
	// clears any stale marks. Enable it before the state an
	// incremental export diffs against is captured.
	SetDeltaTracking(on bool)
	// ExportShardDelta deep-copies one shard's changes since the
	// previous export and resets the shard's marks. Out-of-range
	// shards yield a zero export.
	ExportShardDelta(shard int) ShardDeltaExport
	// ApplyShardDelta replays a delta export on top of the shard's
	// current state: removals first, then upserts; the journal tail
	// and sequence counter are replaced, predictions appended.
	ApplyShardDelta(shard int, d ShardDeltaExport) error
}

// cloneRecord deep-copies a flow record (Features is the only
// reference field).
func cloneRecord(rec FlowRecord) FlowRecord {
	snap := rec
	snap.Features = append([]float64(nil), rec.Features...)
	return snap
}

// clonePrediction deep-copies a prediction record (Votes is the only
// reference field).
func clonePrediction(p PredictionRecord) PredictionRecord {
	snap := p
	snap.Votes = append([]int(nil), p.Votes...)
	return snap
}

// raiseCounter lifts an atomic sequence counter to at least v, so
// stamps taken after a restore never collide with restored ones. The
// restore path is single-threaded, but the CAS keeps this safe to
// call at any time.
func raiseCounter(ctr *atomic.Uint64, v uint64) {
	for {
		cur := ctr.Load()
		if cur >= v || ctr.CompareAndSwap(cur, v) {
			return
		}
	}
}

// SetDeltaTracking turns the DB's dirty/removed bookkeeping on or off
// and clears any stale marks (see DeltaCheckpointable).
func (db *DB) SetDeltaTracking(on bool) {
	db.mu.Lock()
	db.track = on
	db.dirty = make(map[flow.Key]struct{})
	db.removed = make(map[flow.Key]struct{})
	db.mu.Unlock()
	db.pmu.Lock()
	db.predMark = 0
	db.pmu.Unlock()
}

// ExportShard deep-copies the DB's durable state (the legacy DB is
// its own single shard). With delta tracking on, a full export resets
// the dirty/removed marks and the prediction mark — it is the new
// base an incremental export diffs against.
func (db *DB) ExportShard(shard int) ShardExport {
	return db.ExportShardInto(shard, ShardExport{})
}

// ExportShardInto is ExportShard reusing pre's backing arrays where
// their capacity suffices. The checkpoint writer hands the previous
// capture's export — already encoded to disk, no longer read — back
// in, so the copy under the barrier lands in warm memory instead of
// freshly allocated (and kernel-zeroed) pages. Callers must ensure
// nothing else still reads pre.
func (db *DB) ExportShardInto(shard int, pre ShardExport) ShardExport {
	if shard != 0 {
		return ShardExport{}
	}
	var ex ShardExport
	db.mu.Lock()
	ex.Flows = pre.Flows[:0]
	if cap(ex.Flows) < len(db.flows) {
		ex.Flows = make([]FlowRecord, 0, len(db.flows))
	}
	// One slab for every record's features instead of a per-record
	// allocation — at a million flows the difference is the capture
	// barrier's hold time. featWidth is maintained on every mutation,
	// so sizing the slab costs no pre-pass over the map (that pass
	// also ran inside the barrier). Each record's slice is capped, so
	// records stay independent even if the slab ever regrew.
	slab := pre.slab[:0]
	if cap(slab) < db.featWidth {
		slab = make([]float64, 0, db.featWidth)
	}
	for _, rec := range db.flows {
		snap := *rec
		start := len(slab)
		slab = append(slab, rec.Features...)
		snap.Features = slab[start:len(slab):len(slab)]
		ex.Flows = append(ex.Flows, snap)
	}
	ex.slab = slab
	if db.track {
		db.dirty = make(map[flow.Key]struct{})
		db.removed = make(map[flow.Key]struct{})
	}
	db.mu.Unlock()
	db.jmu.Lock()
	ex.Journal = pre.Journal[:0]
	if cap(ex.Journal) < len(db.journal) {
		ex.Journal = make([]JournalEntry, 0, len(db.journal))
	}
	for _, e := range db.journal {
		ex.Journal = append(ex.Journal, JournalEntry{Seq: e.seq, GSeq: e.gseq, Rec: cloneRecord(e.rec)})
	}
	ex.Seq = db.seq
	db.jmu.Unlock()
	db.pmu.Lock()
	ex.Preds = pre.Preds[:0]
	if cap(ex.Preds) < len(db.preds) {
		ex.Preds = make([]PredictionRecord, 0, len(db.preds))
	}
	for _, p := range db.preds {
		ex.Preds = append(ex.Preds, clonePrediction(p))
	}
	if db.track && len(db.preds) > 0 {
		db.predMark = db.preds[len(db.preds)-1].Seq
	}
	db.pmu.Unlock()
	return ex
}

// ExportShardDelta deep-copies the DB's changes since the previous
// export and resets the marks (see DeltaCheckpointable). The journal
// tail is always exported whole: it is already the sliding window the
// pollers haven't consumed, and replacing it on apply is what keeps
// trimmed entries from reappearing.
func (db *DB) ExportShardDelta(shard int) ShardDeltaExport {
	if shard != 0 {
		return ShardDeltaExport{}
	}
	var d ShardDeltaExport
	db.mu.Lock()
	if len(db.dirty) > 0 {
		d.Flows = make([]FlowRecord, 0, len(db.dirty))
		for k := range db.dirty {
			if rec, ok := db.flows[k]; ok {
				d.Flows = append(d.Flows, cloneRecord(*rec))
			}
		}
	}
	if len(db.removed) > 0 {
		d.Removed = make([]flow.Key, 0, len(db.removed))
		for k := range db.removed {
			d.Removed = append(d.Removed, k)
		}
	}
	db.dirty = make(map[flow.Key]struct{})
	db.removed = make(map[flow.Key]struct{})
	db.mu.Unlock()
	db.jmu.Lock()
	d.Journal = make([]JournalEntry, 0, len(db.journal))
	for _, e := range db.journal {
		d.Journal = append(d.Journal, JournalEntry{Seq: e.seq, GSeq: e.gseq, Rec: cloneRecord(e.rec)})
	}
	d.Seq = db.seq
	db.jmu.Unlock()
	db.pmu.Lock()
	// The log is Seq-sorted (stamps are taken under pmu), so the new
	// tail is the run after the mark.
	start := sort.Search(len(db.preds), func(i int) bool { return db.preds[i].Seq > db.predMark })
	if start < len(db.preds) {
		d.Preds = make([]PredictionRecord, 0, len(db.preds)-start)
		for _, p := range db.preds[start:] {
			d.Preds = append(d.Preds, clonePrediction(p))
		}
	}
	if len(db.preds) > 0 {
		db.predMark = db.preds[len(db.preds)-1].Seq
	}
	db.pmu.Unlock()
	return d
}

// ApplyShardDelta replays a delta export on top of the DB's current
// state (see DeltaCheckpointable). The restore path applies deltas
// base-first, so after the last one the DB matches the crashed
// process's state at its final capture.
func (db *DB) ApplyShardDelta(shard int, d ShardDeltaExport) error {
	if shard != 0 {
		return fmt.Errorf("store: apply delta shard %d out of range (DB has exactly one)", shard)
	}
	db.mu.Lock()
	for _, k := range d.Removed {
		if old, ok := db.flows[k]; ok {
			db.featWidth -= len(old.Features)
		}
		delete(db.flows, k)
	}
	for _, rec := range d.Flows {
		snap := cloneRecord(rec)
		if old, ok := db.flows[rec.Key]; ok {
			db.featWidth -= len(old.Features)
		}
		db.featWidth += len(snap.Features)
		db.flows[rec.Key] = &snap
	}
	if db.track {
		db.dirty = make(map[flow.Key]struct{})
		db.removed = make(map[flow.Key]struct{})
	}
	db.mu.Unlock()
	db.jmu.Lock()
	db.journal = make([]journalEntry, 0, len(d.Journal))
	for _, e := range d.Journal {
		raiseCounter(db.gseqCtr, e.GSeq)
		db.journal = append(db.journal, journalEntry{seq: e.Seq, gseq: e.GSeq, rec: cloneRecord(e.Rec)})
	}
	db.seq = d.Seq
	db.jmu.Unlock()
	db.pmu.Lock()
	for _, p := range d.Preds {
		db.preds = append(db.preds, clonePrediction(p))
		raiseCounter(db.predCtr, p.Seq)
	}
	if n := len(db.preds); db.track && n > 0 {
		db.predMark = db.preds[n-1].Seq
	}
	db.pmu.Unlock()
	return nil
}

// ImportShard replaces the DB's durable state with an export. Journal
// entries without a global stamp (version-1 snapshots) get fresh ones
// in journal order; the shared counters are raised past every
// restored stamp so post-restore writes continue the sequences.
func (db *DB) ImportShard(shard int, ex ShardExport) error {
	if shard != 0 {
		return fmt.Errorf("store: import shard %d out of range (DB has exactly one)", shard)
	}
	db.mu.Lock()
	db.flows = make(map[flow.Key]*FlowRecord, len(ex.Flows))
	db.featWidth = 0
	for _, rec := range ex.Flows {
		snap := cloneRecord(rec)
		db.featWidth += len(snap.Features)
		db.flows[rec.Key] = &snap
	}
	if db.track {
		db.dirty = make(map[flow.Key]struct{})
		db.removed = make(map[flow.Key]struct{})
	}
	db.mu.Unlock()
	db.jmu.Lock()
	db.journal = make([]journalEntry, 0, len(ex.Journal))
	for _, e := range ex.Journal {
		g := e.GSeq
		if g == 0 {
			g = db.gseqCtr.Add(1)
		} else {
			raiseCounter(db.gseqCtr, g)
		}
		db.journal = append(db.journal, journalEntry{seq: e.Seq, gseq: g, rec: cloneRecord(e.Rec)})
	}
	db.seq = ex.Seq
	db.jmu.Unlock()
	db.pmu.Lock()
	db.preds = make([]PredictionRecord, 0, len(ex.Preds))
	for _, p := range ex.Preds {
		db.preds = append(db.preds, clonePrediction(p))
		raiseCounter(db.predCtr, p.Seq)
	}
	if n := len(db.preds); db.track && n > 0 {
		db.predMark = db.preds[n-1].Seq
	}
	db.pmu.Unlock()
	return nil
}

// ImportPredictions replaces the prediction log with a restored
// global-order history (version-1 snapshot layout). Records without a
// Seq stamp are stamped in input order.
func (db *DB) ImportPredictions(preds []PredictionRecord) {
	db.pmu.Lock()
	defer db.pmu.Unlock()
	db.preds = make([]PredictionRecord, 0, len(preds))
	for _, p := range preds {
		if p.Seq == 0 {
			p.Seq = db.predCtr.Add(1)
		} else {
			raiseCounter(db.predCtr, p.Seq)
		}
		db.preds = append(db.preds, clonePrediction(p))
	}
}

// ExportShard deep-copies one shard's durable state.
func (s *ShardedDB) ExportShard(shard int) ShardExport {
	if shard < 0 || shard >= len(s.shards) {
		return ShardExport{}
	}
	return s.shards[shard].ExportShard(0)
}

// ExportShardInto deep-copies one shard's durable state, reusing a
// dead prior export's backing arrays (see DB.ExportShardInto).
func (s *ShardedDB) ExportShardInto(shard int, pre ShardExport) ShardExport {
	if shard < 0 || shard >= len(s.shards) {
		return ShardExport{}
	}
	return s.shards[shard].ExportShardInto(0, pre)
}

// ImportShard loads an export into one shard.
func (s *ShardedDB) ImportShard(shard int, ex ShardExport) error {
	if shard < 0 || shard >= len(s.shards) {
		return fmt.Errorf("store: import shard %d out of range (have %d)", shard, len(s.shards))
	}
	return s.shards[shard].ImportShard(0, ex)
}

// SetDeltaTracking toggles dirty/removed tracking on every shard.
func (s *ShardedDB) SetDeltaTracking(on bool) {
	for _, sh := range s.shards {
		sh.SetDeltaTracking(on)
	}
}

// ExportShardDelta deep-copies one shard's changes since the previous
// export and resets its marks.
func (s *ShardedDB) ExportShardDelta(shard int) ShardDeltaExport {
	if shard < 0 || shard >= len(s.shards) {
		return ShardDeltaExport{}
	}
	return s.shards[shard].ExportShardDelta(0)
}

// ApplyShardDelta replays a delta export on top of one shard.
func (s *ShardedDB) ApplyShardDelta(shard int, d ShardDeltaExport) error {
	if shard < 0 || shard >= len(s.shards) {
		return fmt.Errorf("store: apply delta shard %d out of range (have %d)", shard, len(s.shards))
	}
	return s.shards[shard].ApplyShardDelta(0, d)
}

// ImportPredictions replaces every shard's prediction log with a
// restored global-order history (version-1 snapshot layout, one
// shared log): records are routed to their key's shard, and records
// without a Seq stamp are stamped in input order — input order is the
// global order, so each shard's log comes out Seq-sorted and the
// merge-on-read reconstructs exactly the restored history.
func (s *ShardedDB) ImportPredictions(preds []PredictionRecord) {
	for _, sh := range s.shards {
		sh.pmu.Lock()
		sh.preds = nil
		sh.pmu.Unlock()
	}
	for _, p := range preds {
		sh := s.shardFor(p.Key)
		sh.pmu.Lock()
		if p.Seq == 0 {
			p.Seq = s.predCtr.Add(1)
		} else {
			raiseCounter(s.predCtr, p.Seq)
		}
		sh.preds = append(sh.preds, clonePrediction(p))
		sh.pmu.Unlock()
	}
}

var (
	_ Checkpointable      = (*DB)(nil)
	_ Checkpointable      = (*ShardedDB)(nil)
	_ DeltaCheckpointable = (*DB)(nil)
	_ DeltaCheckpointable = (*ShardedDB)(nil)
)
