package store

import (
	"fmt"

	"github.com/amlight/intddos/internal/flow"
)

// JournalEntry is one exported journal row: the dense per-shard
// sequence number plus the record snapshot taken at write time. It is
// the unit the checkpoint subsystem persists so a restored store
// resumes polling exactly where the crashed process left off.
type JournalEntry struct {
	Seq uint64
	Rec FlowRecord
}

// ShardExport is one shard's complete durable state: live flow
// records, the unconsumed journal tail, and the shard's sequence
// counter. Everything is deep-copied — mutating an export never
// touches the store.
type ShardExport struct {
	Flows   []FlowRecord
	Journal []JournalEntry
	Seq     uint64
}

// Checkpointable is the optional export/import surface of a store.
// The in-memory DB and ShardedDB implement it; fault-injection
// wrappers deliberately do not (a checkpoint must read the real
// state, not a fault-shaped view), so consumers capture the concrete
// store before wrapping.
type Checkpointable interface {
	// ExportShard deep-copies one shard's durable state.
	// Out-of-range shards yield a zero export.
	ExportShard(shard int) ShardExport
	// ImportShard loads an export into one shard, replacing its
	// state. It fails when the shard index is out of range — the
	// checkpointed shard count must match the store's.
	ImportShard(shard int, ex ShardExport) error
	// ImportPredictions replaces the prediction log with a restored
	// history.
	ImportPredictions(preds []PredictionRecord)
}

// cloneRecord deep-copies a flow record (Features is the only
// reference field).
func cloneRecord(rec FlowRecord) FlowRecord {
	snap := rec
	snap.Features = append([]float64(nil), rec.Features...)
	return snap
}

// ExportShard deep-copies the DB's durable state (the legacy DB is
// its own single shard).
func (db *DB) ExportShard(shard int) ShardExport {
	if shard != 0 {
		return ShardExport{}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	ex := ShardExport{
		Flows:   make([]FlowRecord, 0, len(db.flows)),
		Journal: make([]JournalEntry, 0, len(db.journal)),
		Seq:     db.seq,
	}
	for _, rec := range db.flows {
		ex.Flows = append(ex.Flows, cloneRecord(*rec))
	}
	for _, e := range db.journal {
		ex.Journal = append(ex.Journal, JournalEntry{Seq: e.seq, Rec: cloneRecord(e.rec)})
	}
	return ex
}

// ImportShard replaces the DB's durable state with an export.
func (db *DB) ImportShard(shard int, ex ShardExport) error {
	if shard != 0 {
		return fmt.Errorf("store: import shard %d out of range (DB has exactly one)", shard)
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	db.flows = make(map[flow.Key]*FlowRecord, len(ex.Flows))
	for _, rec := range ex.Flows {
		snap := cloneRecord(rec)
		db.flows[rec.Key] = &snap
	}
	db.journal = make([]journalEntry, 0, len(ex.Journal))
	for _, e := range ex.Journal {
		db.journal = append(db.journal, journalEntry{seq: e.Seq, rec: cloneRecord(e.Rec)})
	}
	db.seq = ex.Seq
	return nil
}

// ImportPredictions replaces the prediction log with a restored
// history.
func (db *DB) ImportPredictions(preds []PredictionRecord) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.preds = append(db.preds[:0:0], preds...)
}

// ExportShard deep-copies one shard's durable state.
func (s *ShardedDB) ExportShard(shard int) ShardExport {
	if shard < 0 || shard >= len(s.shards) {
		return ShardExport{}
	}
	return s.shards[shard].ExportShard(0)
}

// ImportShard loads an export into one shard.
func (s *ShardedDB) ImportShard(shard int, ex ShardExport) error {
	if shard < 0 || shard >= len(s.shards) {
		return fmt.Errorf("store: import shard %d out of range (have %d)", shard, len(s.shards))
	}
	return s.shards[shard].ImportShard(0, ex)
}

// ImportPredictions replaces the global prediction log with a
// restored history.
func (s *ShardedDB) ImportPredictions(preds []PredictionRecord) {
	s.predMu.Lock()
	defer s.predMu.Unlock()
	s.preds = append(s.preds[:0:0], preds...)
}

var (
	_ Checkpointable = (*DB)(nil)
	_ Checkpointable = (*ShardedDB)(nil)
)
