package experiment

import (
	"fmt"

	"github.com/amlight/intddos/internal/ml"
	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/traffic"
)

// TimelinePoint is one bucket of the Figure 5 timeline.
type TimelinePoint struct {
	T     netsim.Time // bucket start
	Rows  int         // observations in the bucket
	Truth float64     // fraction of rows with attack ground truth
	Pred  float64     // fraction of rows the RF model called attack
}

// Figure5 is the real-data-versus-RF-predictions comparison: the
// same timeline seen through INT (every packet) and through sampled
// sFlow, with the attack episodes marked. The paper's headline
// observation — sFlow has no data at all inside the SlowLoris
// episodes — appears here as zero-row buckets.
type Figure5 struct {
	Episodes  traffic.Schedule
	Horizon   netsim.Time
	Buckets   int
	SFlowRate int
	INT       []TimelinePoint
	SFlow     []TimelinePoint
}

// RunFigure5 trains an RF per monitoring source on its 90% split and
// sweeps predictions across the full capture timeline. Use a capture
// collected at CoverageSFlowRate so sampling fidelity matches the
// production deployment.
func RunFigure5(c *Capture, buckets int, seed int64) (*Figure5, error) {
	if buckets <= 0 {
		buckets = 240
	}
	horizon := c.Workload.Horizon()
	// Episode-length flooring can push the last episodes slightly past
	// the nominal capture end; the timeline must cover them.
	if n := len(c.Workload.Schedule); n > 0 {
		if end := c.Workload.Schedule[n-1].End; end > horizon {
			horizon = end + 50*netsim.Millisecond
		}
	}
	fig := &Figure5{
		Episodes:  c.Workload.Schedule,
		Horizon:   horizon,
		Buckets:   buckets,
		SFlowRate: c.Config.SFlowRate,
	}
	spec := StageOneModels()[0] // RF
	for _, src := range []struct {
		name string
		data *ml.Dataset
		out  *[]TimelinePoint
	}{{"INT", c.INT, &fig.INT}, {"sFlow", c.SFlow, &fig.SFlow}} {
		train, _ := src.data.Split(0.1, seed)
		fitTrain := train
		if spec.TrainCap > 0 {
			fitTrain = train.Subsample(spec.TrainCap, seed)
		}
		model, scaler, err := FitModel(spec, fitTrain, seed)
		if err != nil {
			return nil, fmt.Errorf("figure 5 %s: %w", src.name, err)
		}
		pred := predictAll(model, scaler.Transform(src.data.X))
		*src.out = bucketize(src.data, pred, fig.Horizon, buckets)
	}
	return fig, nil
}

// bucketize folds time-stamped rows into fixed-width buckets.
func bucketize(d *ml.Dataset, pred []int, horizon netsim.Time, buckets int) []TimelinePoint {
	width := horizon / netsim.Time(buckets)
	if width <= 0 {
		width = 1
	}
	out := make([]TimelinePoint, buckets)
	for b := range out {
		out[b].T = netsim.Time(b) * width
	}
	for i := range d.X {
		b := int(netsim.Time(d.Meta[i].At) / width)
		if b < 0 {
			b = 0
		}
		if b >= buckets {
			b = buckets - 1
		}
		out[b].Rows++
		out[b].Truth += float64(d.Y[i])
		out[b].Pred += float64(pred[i])
	}
	for b := range out {
		if out[b].Rows > 0 {
			out[b].Truth /= float64(out[b].Rows)
			out[b].Pred /= float64(out[b].Rows)
		}
	}
	return out
}

// CoverageOfType sums rows inside episodes of one attack type, used
// by tests to assert the SlowLoris-invisibility property.
func (f *Figure5) CoverageOfType(points []TimelinePoint, typ string) int {
	total := 0
	for _, p := range points {
		if p.Rows == 0 {
			continue
		}
		mid := p.T + f.Horizon/netsim.Time(f.Buckets)/2
		if f.Episodes.ActiveAt(mid) == typ {
			total += p.Rows
		}
	}
	return total
}
