package experiment

import (
	"errors"
	"fmt"

	"github.com/amlight/intddos/internal/ml"
	"github.com/amlight/intddos/internal/ml/bayes"
	"github.com/amlight/intddos/internal/ml/forest"
	"github.com/amlight/intddos/internal/ml/knn"
	"github.com/amlight/intddos/internal/ml/neural"
)

// errUntrainedNN reports serialization of a never-fitted network.
var errUntrainedNN = errors.New("experiment: marshal of untrained NN")

// ModelSpec names a model family and how to build and budget it.
type ModelSpec struct {
	Name string
	// New builds an untrained classifier.
	New func(seed int64) ml.Classifier
	// TrainCap/TestCap subsample oversized datasets, the paper's own
	// device for keeping training tractable (§IV-B3: a subset
	// sufficed; KNN used one thousandth of the sample).
	TrainCap int
	TestCap  int
}

// adaptiveNN wraps the MLP so the epoch budget scales inversely with
// training-set size: tiny datasets (e.g. the sampled sFlow feed) need
// many more passes to converge than the bulk INT feed.
type adaptiveNN struct {
	cfg neural.Config
	net *neural.Network
}

func newAdaptiveNN(cfg neural.Config) *adaptiveNN { return &adaptiveNN{cfg: cfg} }

func (a *adaptiveNN) Name() string { return a.cfg.DisplayName }

func (a *adaptiveNN) Fit(X [][]float64, y []int) error {
	cfg := a.cfg
	if n := len(X); n > 0 {
		cfg.Epochs = 30
		if budget := 500000 / n; budget > cfg.Epochs {
			cfg.Epochs = budget
		}
		if cfg.Epochs > 600 {
			cfg.Epochs = 600
		}
	}
	a.net = neural.New(cfg)
	return a.net.Fit(X, y)
}

func (a *adaptiveNN) Predict(x []float64) int {
	if a.net == nil {
		return 0
	}
	return a.net.Predict(x)
}

// PredictBatch implements ml.BatchClassifier directly on the wrapped
// network's batched forward pass instead of falling through a sample
// loop; an untrained wrapper labels everything benign, like Predict.
func (a *adaptiveNN) PredictBatch(X [][]float64) []int {
	if a.net == nil {
		return make([]int, len(X))
	}
	return a.net.PredictBatch(X)
}

// PredictProbaBatch delegates to the wrapped network's batch path.
func (a *adaptiveNN) PredictProbaBatch(X [][]float64) []float64 {
	if a.net == nil {
		return make([]float64, len(X))
	}
	return a.net.PredictProbaBatch(X)
}

// Proba exposes the wrapped network's attack score.
func (a *adaptiveNN) Proba(x []float64) float64 {
	if a.net == nil {
		return 0
	}
	return a.net.Proba(x)
}

// Every model family ships the amortized batch contract; a missing
// implementation is a compile error here rather than a silent
// fallthrough to the sample loop.
var (
	_ ml.BatchClassifier = (*forest.Forest)(nil)
	_ ml.BatchClassifier = (*bayes.GaussianNB)(nil)
	_ ml.BatchClassifier = (*knn.KNN)(nil)
	_ ml.BatchClassifier = (*neural.Network)(nil)
	_ ml.BatchClassifier = (*adaptiveNN)(nil)

	_ ml.BatchProbaClassifier = (*forest.Forest)(nil)
	_ ml.BatchProbaClassifier = (*bayes.GaussianNB)(nil)
	_ ml.BatchProbaClassifier = (*neural.Network)(nil)
	_ ml.BatchProbaClassifier = (*adaptiveNN)(nil)
)

// MarshalBinary delegates to the trained network.
func (a *adaptiveNN) MarshalBinary() ([]byte, error) {
	if a.net == nil {
		return nil, errUntrainedNN
	}
	return a.net.MarshalBinary()
}

// UnmarshalBinary restores the wrapped network.
func (a *adaptiveNN) UnmarshalBinary(buf []byte) error {
	net := neural.New(a.cfg)
	if err := net.UnmarshalBinary(buf); err != nil {
		return err
	}
	a.net = net
	return nil
}

// StageOneModels returns the four §IV-B model families: Random
// Forest, Gaussian Naive Bayes, K-Nearest Neighbors, and the shallow
// 32-16-8 Neural Network.
func StageOneModels() []ModelSpec {
	return []ModelSpec{
		{Name: "RF", New: func(seed int64) ml.Classifier { return forest.New(forest.Default(seed)) }, TrainCap: 40000},
		{Name: "GNB", New: func(int64) ml.Classifier { return bayes.New() }},
		{Name: "KNN", New: func(int64) ml.Classifier { return knn.New(5) }, TrainCap: 3000, TestCap: 15000},
		{Name: "NN", New: func(seed int64) ml.Classifier { return newAdaptiveNN(neural.ShallowNN(seed)) }, TrainCap: 40000},
	}
}

// StageTwoModels returns the §IV-C testbed ensemble members: MLP
// (64-32-16), RF, and GNB. KNN is dropped for its prediction cost,
// as in the paper.
func StageTwoModels() []ModelSpec {
	return []ModelSpec{
		{Name: "MLP", New: func(seed int64) ml.Classifier { return neural.New(neural.MLP(seed)) }, TrainCap: 40000},
		{Name: "RF", New: func(seed int64) ml.Classifier { return forest.New(forest.Default(seed)) }, TrainCap: 40000},
		{Name: "GNB", New: func(int64) ml.Classifier { return bayes.New() }},
	}
}

// EvalResult is one Table III/IV row.
type EvalResult struct {
	Data      string // "INT" or "sFlow"
	Model     string
	Scores    ml.Scores
	Confusion ml.ConfusionMatrix
	TrainRows int
	TestRows  int
}

// predictAll scores through the model's amortized batch path
// (ml.PredictBatch dispatches on ml.BatchClassifier).
func predictAll(c ml.Classifier, X [][]float64) []int {
	return ml.PredictBatch(c, X)
}

// TrainEval fits spec on train (after standardization) and scores it
// on test, honouring the spec's subsampling caps.
func TrainEval(spec ModelSpec, train, test *ml.Dataset, seed int64) (EvalResult, error) {
	if spec.TrainCap > 0 {
		train = train.Subsample(spec.TrainCap, seed)
	}
	if spec.TestCap > 0 {
		test = test.Subsample(spec.TestCap, seed+1)
	}
	model, scaler, err := FitModel(spec, train, seed)
	if err != nil {
		return EvalResult{}, err
	}
	pred := predictAll(model, scaler.Transform(test.X))
	m := ml.Confusion(test.Y, pred)
	return EvalResult{
		Model:     spec.Name,
		Scores:    ml.Score(test.Y, pred),
		Confusion: m,
		TrainRows: train.Len(),
		TestRows:  test.Len(),
	}, nil
}

// FitModel standardizes train and fits a fresh model, returning both
// the classifier and the scaler the paper's Prediction module would
// load alongside it.
func FitModel(spec ModelSpec, train *ml.Dataset, seed int64) (ml.Classifier, *ml.StandardScaler, error) {
	scaler := &ml.StandardScaler{}
	Z, err := scaler.FitTransform(train.X)
	if err != nil {
		return nil, nil, fmt.Errorf("experiment: scale %s: %w", spec.Name, err)
	}
	model := spec.New(seed)
	if err := model.Fit(Z, train.Y); err != nil {
		return nil, nil, fmt.Errorf("experiment: fit %s: %w", spec.Name, err)
	}
	return model, scaler, nil
}
