package experiment

import (
	"strings"
	"testing"

	"github.com/amlight/intddos/internal/ml"
	"github.com/amlight/intddos/internal/traffic"
)

// tinyCapture is shared across tests; collection is deterministic.
var tinyCapture *Capture

func capture(t *testing.T) *Capture {
	t.Helper()
	if tinyCapture == nil {
		c, err := Collect(DataConfig{Scale: traffic.ScaleTiny, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		tinyCapture = c
	}
	return tinyCapture
}

func TestCollectProducesBothDatasets(t *testing.T) {
	c := capture(t)
	if c.INT.Len() == 0 || c.SFlow.Len() == 0 {
		t.Fatalf("INT=%d sFlow=%d rows", c.INT.Len(), c.SFlow.Len())
	}
	// INT sees every delivered packet.
	if c.INT.Len() != c.Delivered {
		t.Errorf("INT rows %d != delivered %d", c.INT.Len(), c.Delivered)
	}
	// sFlow is roughly 1-in-rate.
	want := c.Delivered / c.Config.SFlowRate
	if c.SFlow.Len() < want/2 || c.SFlow.Len() > want*2 {
		t.Errorf("sFlow rows %d, want ≈%d", c.SFlow.Len(), want)
	}
	if err := c.INT.Validate(); err != nil {
		t.Error(err)
	}
	if err := c.SFlow.Validate(); err != nil {
		t.Error(err)
	}
	if c.INT.Features() != 15 || c.SFlow.Features() != 12 {
		t.Errorf("feature widths %d/%d, want 15/12", c.INT.Features(), c.SFlow.Features())
	}
}

func TestCollectDeterministic(t *testing.T) {
	a, err := Collect(DataConfig{Scale: traffic.ScaleTiny, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Collect(DataConfig{Scale: traffic.ScaleTiny, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.INT.Len() != b.INT.Len() || a.SFlow.Len() != b.SFlow.Len() {
		t.Fatal("same-seed collections differ in size")
	}
	for i := range a.INT.X {
		for j := range a.INT.X[i] {
			if a.INT.X[i][j] != b.INT.X[i][j] {
				t.Fatalf("INT row %d feature %d differs", i, j)
			}
		}
	}
}

func TestSplitAtTimeAndDropType(t *testing.T) {
	c := capture(t)
	cut := c.DayCut(5)
	before, after := SplitAtTime(c.INT, cut)
	if before.Len()+after.Len() != c.INT.Len() {
		t.Error("time split lost rows")
	}
	for i := range after.Meta {
		if after.Meta[i].At < cut {
			t.Fatal("after-partition row before cut")
		}
	}
	noLoris := DropType(c.INT, traffic.SlowLoris)
	for i := range noLoris.Meta {
		if noLoris.Meta[i].Type == traffic.SlowLoris {
			t.Fatal("DropType left a slowloris row")
		}
	}
	if noLoris.Len() >= c.INT.Len() {
		t.Error("DropType removed nothing")
	}
}

func TestTableIRunner(t *testing.T) {
	c := capture(t)
	rows := RunTableI(c)
	if len(rows) != 11 {
		t.Fatalf("Table I rows = %d, want 11", len(rows))
	}
	for _, r := range rows {
		if r.Packets == 0 {
			t.Errorf("episode %s at %v has no packets", r.Type, r.Start)
		}
	}
	out := FormatTableI(rows)
	if !strings.Contains(out, "synflood") || !strings.Contains(out, "TABLE I") {
		t.Error("Table I rendering incomplete")
	}
}

func TestTableIIRunner(t *testing.T) {
	rows := RunTableII()
	out := FormatTableII(rows)
	if !strings.Contains(out, "Queue Occupancy*") {
		t.Error("Table II rendering missing queue row")
	}
	// Exactly the two telemetry-only families are sFlow-unavailable.
	missing := strings.Count(out, " X")
	if missing != 2 {
		t.Errorf("sFlow-unavailable rows = %d, want 2", missing)
	}
}

func TestTableIIIShapes(t *testing.T) {
	c := capture(t)
	res, err := RunTableIII(c, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 8 {
		t.Fatalf("rows = %d, want 8 (4 models × 2 sources)", len(res.Rows))
	}
	byKey := map[string]EvalResult{}
	for _, r := range res.Rows {
		byKey[r.Data+"/"+r.Model] = r
	}
	// Headline shapes: RF and KNN on INT ≥ 0.97 at tiny scale; every
	// model beats a coin flip; the RF/INT confusion matrix is the
	// Figure 3 artifact.
	if a := byKey["INT/RF"].Scores.Accuracy; a < 0.97 {
		t.Errorf("INT/RF accuracy = %v", a)
	}
	if a := byKey["INT/KNN"].Scores.Accuracy; a < 0.95 {
		t.Errorf("INT/KNN accuracy = %v", a)
	}
	for k, r := range byKey {
		if r.Scores.Accuracy < 0.55 {
			t.Errorf("%s accuracy = %v — below coin flip", k, r.Scores.Accuracy)
		}
	}
	if res.RFConfusionINT.Total() == 0 || res.RFConfusionSFlow.Total() == 0 {
		t.Error("figure 3/4 confusion matrices empty")
	}
	out := FormatEvalRows("t3", res.Rows)
	if !strings.Contains(out, "INT") || !strings.Contains(out, "sFlow") {
		t.Error("rendering incomplete")
	}
}

func TestTableIVZeroDayShapes(t *testing.T) {
	c := capture(t)
	rows, err := RunTableIV(c, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 8 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.Data == "INT" && r.Model == "RF" && r.Scores.Accuracy < 0.95 {
			t.Errorf("zero-day INT/RF accuracy = %v", r.Scores.Accuracy)
		}
	}
}

func TestTableVImportance(t *testing.T) {
	c := capture(t)
	rows, err := RunTableV(c, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("models = %d", len(rows))
	}
	for _, r := range rows {
		if len(r.Top) != 5 {
			t.Errorf("%s top features = %d, want 5", r.Model, len(r.Top))
		}
		for _, f := range r.Top {
			if f.Name == "" {
				t.Errorf("%s has unnamed feature", r.Model)
			}
		}
	}
	out := FormatTableV(rows)
	if !strings.Contains(out, "RF") {
		t.Error("rendering incomplete")
	}
}

func TestFigure5Coverage(t *testing.T) {
	c := capture(t)
	fig, err := RunFigure5(c, 120, 42)
	if err != nil {
		t.Fatal(err)
	}
	// INT covers every attack type, including SlowLoris.
	for _, typ := range traffic.AttackTypes {
		if fig.CoverageOfType(fig.INT, typ) == 0 {
			t.Errorf("INT has no coverage of %s", typ)
		}
	}
	// sFlow must cover the high-volume attacks; SlowLoris coverage is
	// seed-dependent at tiny scale, asserted at the small scale in the
	// integration test instead.
	if fig.CoverageOfType(fig.SFlow, traffic.SYNFlood) == 0 {
		t.Error("sFlow missed every flood bucket")
	}
	out := FormatFigure5(fig)
	if !strings.Contains(out, "INT:") || !strings.Contains(out, "sFlow:") {
		t.Error("rendering incomplete")
	}
	if len(fig.INT) != 120 || len(fig.SFlow) != 120 {
		t.Errorf("bucket counts %d/%d", len(fig.INT), len(fig.SFlow))
	}
}

func TestFeatureAblation(t *testing.T) {
	c := capture(t)
	withQ, withoutQ, err := FeatureAblation(c, 42)
	if err != nil {
		t.Fatal(err)
	}
	if withQ.Scores.Accuracy < 0.9 || withoutQ.Scores.Accuracy < 0.9 {
		t.Errorf("ablation accuracies %v / %v", withQ.Scores.Accuracy, withoutQ.Scores.Accuracy)
	}
	if withQ.TestRows != withoutQ.TestRows {
		t.Error("ablation arms saw different test sets")
	}
}

func TestEpisodeCoverageRunner(t *testing.T) {
	c := capture(t)
	rows := RunEpisodeCoverage(c)
	if len(rows) != 11 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		if r.INTPackets == 0 {
			t.Errorf("INT missed episode %s at %v", r.Episode.Type, r.Episode.Start)
		}
	}
	out := FormatEpisodeCoverage(rows, c.Config.SFlowRate)
	if !strings.Contains(out, "slowloris") {
		t.Error("rendering incomplete")
	}
}

func TestTableVILive(t *testing.T) {
	res, err := RunTableVI(LiveConfig{
		Scale:          traffic.ScaleTiny,
		Seed:           42,
		PacketsPerType: 250,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("Table VI rows = %d, want 5", len(res.Rows))
	}
	byType := map[string]float64{}
	var benignAvg, attackAvgMax float64
	for _, r := range res.Rows {
		byType[r.Type] = r.Accuracy
		if r.Total == 0 {
			t.Errorf("%s scored no decisions", r.Type)
		}
		if r.Type == traffic.Benign {
			benignAvg = r.AvgLatency.Seconds()
		} else if r.Type != traffic.SlowLoris {
			if v := r.AvgLatency.Seconds(); v > attackAvgMax {
				attackAvgMax = v
			}
		}
	}
	// Shape assertions from the paper: attacks detected well, and the
	// benign replay's prediction latency dominated by backlog.
	for _, typ := range []string{traffic.SYNScan, traffic.UDPScan, traffic.SYNFlood} {
		if byType[typ] < 0.9 {
			t.Errorf("%s accuracy = %v, want ≥0.9", typ, byType[typ])
		}
	}
	if byType[traffic.SlowLoris] < 0.6 {
		t.Errorf("zero-day slowloris accuracy = %v", byType[traffic.SlowLoris])
	}
	if benignAvg < attackAvgMax {
		t.Errorf("benign avg latency %vs not above attack max %vs", benignAvg, attackAvgMax)
	}
	if !strings.Contains(FormatTableVI(res), "TABLE VI") {
		t.Error("rendering incomplete")
	}
	if !strings.Contains(FormatFigure7(res, traffic.SlowLoris, 80), "FIGURE 7") {
		t.Error("figure 7 rendering incomplete")
	}
}

func TestTrainEvalErrors(t *testing.T) {
	spec := StageOneModels()[0]
	empty := &ml.Dataset{}
	if _, err := TrainEval(spec, empty, empty, 1); err == nil {
		t.Error("empty training set accepted")
	}
}

func TestHopLatencyAblation(t *testing.T) {
	with, without, err := HopLatencyAblation(DataConfig{Scale: traffic.ScaleTiny, Seed: 42}, 42)
	if err != nil {
		t.Fatal(err)
	}
	if with.Scores.Accuracy < 0.95 || without.Scores.Accuracy < 0.95 {
		t.Errorf("ablation accuracies %v / %v", with.Scores.Accuracy, without.Scores.Accuracy)
	}
	if with.TestRows != without.TestRows {
		t.Error("ablation arms saw different test sets")
	}
	// The 18-feature arm actually used the extended vector.
	if with.Data == without.Data {
		t.Error("arm labels identical")
	}
}

func TestRunROC(t *testing.T) {
	c := capture(t)
	rows, err := RunROC(c, 42)
	if err != nil {
		t.Fatal(err)
	}
	// RF, GNB, NN on two sources.
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	for _, r := range rows {
		if r.AUC < 0.9 {
			t.Errorf("%s/%s AUC = %v", r.Data, r.Model, r.AUC)
		}
		if r.Best.TPR < r.Best.FPR {
			t.Errorf("%s/%s best point below chance: %+v", r.Data, r.Model, r.Best)
		}
		if len(r.Curve) < 2 {
			t.Errorf("%s/%s curve too short", r.Data, r.Model)
		}
	}
	if !strings.Contains(FormatROC(rows), "AUC") {
		t.Error("rendering incomplete")
	}
}

func TestFormatTableVMatrix(t *testing.T) {
	rows := []TableVRow{
		{Model: "RF", Top: []ml.FeatureImportance{{Name: "A"}, {Name: "B"}}},
		{Model: "GNB", Top: []ml.FeatureImportance{{Name: "A"}, {Name: "C"}}},
	}
	out := FormatTableVMatrix(rows)
	if !strings.Contains(out, "RF") || !strings.Contains(out, "GNB") {
		t.Error("model columns missing")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// Header, column row, then 3 feature rows (A, B, C).
	if len(lines) != 5 {
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// A appears in both models and must come first.
	if !strings.HasPrefix(lines[2], "A") {
		t.Errorf("shared feature not ranked first:\n%s", out)
	}
	if !strings.Contains(lines[2], "Y") {
		t.Errorf("no checkmarks:\n%s", out)
	}
}
