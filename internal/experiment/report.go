package experiment

import (
	"fmt"
	"sort"
	"strings"

	"github.com/amlight/intddos/internal/core"
	"github.com/amlight/intddos/internal/flow"
	"github.com/amlight/intddos/internal/ml"
	"github.com/amlight/intddos/internal/netsim"
)

// FormatTableI renders the attack schedule like the paper's Table I.
func FormatTableI(rows []TableIRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE I: Simulated Attack Flows (compressed timeline)\n")
	fmt.Fprintf(&b, "%-10s %14s %14s %10s\n", "Attack", "Start", "End", "Packets")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %14v %14v %10d\n", r.Type, r.Start, r.End, r.Packets)
	}
	return b.String()
}

// FormatTableII renders the feature-availability matrix.
func FormatTableII(rows []flow.AvailabilityRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE II: Features used to detect DDoS attacks\n")
	fmt.Fprintf(&b, "%-28s %5s %6s\n", "Feature", "INT", "sFlow")
	mark := func(v bool) string {
		if v {
			return "Y"
		}
		return "X"
	}
	for _, r := range rows {
		fmt.Fprintf(&b, "%-28s %5s %6s\n", r.Feature, mark(r.INT), mark(r.SFlow))
	}
	b.WriteString("Note: * includes packet-level, cumulative, average, and std variants.\n")
	return b.String()
}

// FormatEvalRows renders Table III/IV-style model comparison rows.
func FormatEvalRows(title string, rows []EvalResult) string {
	var b strings.Builder
	fmt.Fprintln(&b, title)
	fmt.Fprintf(&b, "%-6s %-5s %9s %8s %10s %9s %8s %8s\n",
		"Data", "Model", "Accuracy", "Recall", "Precision", "F1-score", "Train", "Test")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %-5s %9.4f %8.4f %10.4f %9.4f %8d %8d\n",
			r.Data, r.Model, r.Scores.Accuracy, r.Scores.Recall, r.Scores.Precision, r.Scores.F1,
			r.TrainRows, r.TestRows)
	}
	return b.String()
}

// FormatConfusion renders a Figure 3/4-style confusion matrix.
func FormatConfusion(title string, m ml.ConfusionMatrix) string {
	var b strings.Builder
	fmt.Fprintln(&b, title)
	fmt.Fprintf(&b, "%18s %12s %12s\n", "", "pred benign", "pred attack")
	fmt.Fprintf(&b, "%18s %12d %12d\n", "true benign", m.TN, m.FP)
	fmt.Fprintf(&b, "%18s %12d %12d\n", "true attack", m.FN, m.TP)
	fmt.Fprintf(&b, "accuracy %.4f over %d rows\n", m.Accuracy(), m.Total())
	return b.String()
}

// FormatTableV renders the per-model top-five feature importances.
func FormatTableV(rows []TableVRow) string {
	var b strings.Builder
	fmt.Fprintln(&b, "TABLE V: Five most important features per model (INT data)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-4s:", r.Model)
		for _, f := range r.Top {
			fmt.Fprintf(&b, "  %s (%.3f)", f.Name, f.Value)
		}
		fmt.Fprintln(&b)
	}
	return b.String()
}

// FormatTableVMatrix renders Table V in the paper's layout: one row
// per feature that makes any model's top five, one checkmark column
// per model.
func FormatTableVMatrix(rows []TableVRow) string {
	type stat struct {
		count int
		first int
	}
	inTop := make(map[string]map[string]bool, len(rows))
	stats := map[string]stat{}
	order := []string{}
	for _, r := range rows {
		inTop[r.Model] = make(map[string]bool, len(r.Top))
		for rank, f := range r.Top {
			inTop[r.Model][f.Name] = true
			s, seen := stats[f.Name]
			if !seen {
				order = append(order, f.Name)
				s.first = rank
			}
			s.count++
			stats[f.Name] = s
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		si, sj := stats[order[i]], stats[order[j]]
		if si.count != sj.count {
			return si.count > sj.count
		}
		return si.first < sj.first
	})

	var b strings.Builder
	b.WriteString("TABLE V: The five most important features per model (INT data)\n")
	fmt.Fprintf(&b, "%-26s", "Feature")
	for _, r := range rows {
		fmt.Fprintf(&b, " %5s", r.Model)
	}
	b.WriteByte('\n')
	for _, name := range order {
		fmt.Fprintf(&b, "%-26s", name)
		for _, r := range rows {
			mark := "-"
			if inTop[r.Model][name] {
				mark = "Y"
			}
			fmt.Fprintf(&b, " %5s", mark)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// FormatTableVI renders the live automated-detection results.
func FormatTableVI(res *LiveResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "TABLE VI: Automated DDoS detection (ensemble %s, train rows %d)\n",
		strings.Join(res.Ensemble, "+"), res.TrainRows)
	fmt.Fprintf(&b, "%-10s %9s %16s %12s %12s %12s\n",
		"Type", "Accuracy", "Misclassified", "AvgPred(s)", "MaxPred(s)", "P99Pred(s)")
	for _, r := range res.Rows {
		fmt.Fprintf(&b, "%-10s %9.4f %9d/%-6d %12.2f %12.2f %12.2f\n",
			r.Type, r.Accuracy, r.Misclassified, r.Total,
			r.AvgLatency.Seconds(), r.MaxLatency.Seconds(), r.P99Latency.Seconds())
	}
	return b.String()
}

// FormatFigure5 renders the timeline as two character strips, one
// per monitoring source. Legend: '.' no observations in the bucket,
// '_' benign observed & predicted benign, '#' attack observed &
// predicted attack, '!' attack observed but missed, '+' false alarm.
// A ruler marks episode positions (s/u/f/l by attack type).
func FormatFigure5(fig *Figure5) string {
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 5: Real data vs RF predictions (sFlow rate 1/%d, %d buckets over %v)\n",
		fig.SFlowRate, fig.Buckets, fig.Horizon)
	b.WriteString("episodes: " + episodeRuler(fig) + "\n")
	b.WriteString("INT:      " + strip(fig.INT) + "\n")
	b.WriteString("sFlow:    " + strip(fig.SFlow) + "\n")
	b.WriteString("legend: . no data | _ benign | # attack detected | ! attack missed | + false alarm\n")
	return b.String()
}

// episodeRuler draws one character per bucket naming the active
// episode type.
func episodeRuler(fig *Figure5) string {
	width := fig.Horizon / netsim.Time(fig.Buckets)
	out := make([]byte, fig.Buckets)
	for i := range out {
		mid := netsim.Time(i)*width + width/2
		switch fig.Episodes.ActiveAt(mid) {
		case "synscan":
			out[i] = 's'
		case "udpscan":
			out[i] = 'u'
		case "synflood":
			out[i] = 'f'
		case "slowloris":
			out[i] = 'l'
		default:
			out[i] = ' '
		}
	}
	return string(out)
}

// strip renders one monitoring source's timeline.
func strip(points []TimelinePoint) string {
	out := make([]byte, len(points))
	for i, p := range points {
		switch {
		case p.Rows == 0:
			out[i] = '.'
		case p.Truth >= 0.5 && p.Pred >= 0.5:
			out[i] = '#'
		case p.Truth >= 0.5:
			out[i] = '!'
		case p.Pred >= 0.5:
			out[i] = '+'
		default:
			out[i] = '_'
		}
	}
	return string(out)
}

// FormatFigure7 renders the per-decision strip for one flow type:
// '.' for correct decisions, 'x' for misclassifications, in decision
// order. The paper's observation — errors cluster at flow starts —
// shows up as 'x' runs near the left edge.
func FormatFigure7(res *LiveResult, typ string, width int) string {
	ds := res.Decisions[typ]
	if width <= 0 {
		width = 100
	}
	var b strings.Builder
	fmt.Fprintf(&b, "FIGURE 7 (%s): %d decisions, 'x' marks misclassifications\n", typ, len(ds))
	line := 0
	for i, d := range ds {
		if d.Correct() {
			b.WriteByte('.')
		} else {
			b.WriteByte('x')
		}
		line++
		if line == width && i != len(ds)-1 {
			b.WriteByte('\n')
			line = 0
		}
	}
	b.WriteByte('\n')
	return b.String()
}

// FormatEpisodeCoverage renders the per-episode capture counts.
func FormatEpisodeCoverage(rows []EpisodeCoverage, rate int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Episode coverage (sFlow 1/%d):\n", rate)
	fmt.Fprintf(&b, "%-10s %14s %14s %12s %14s\n", "Attack", "Start", "End", "INT pkts", "sFlow samples")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %14v %14v %12d %14d\n",
			r.Episode.Type, r.Episode.Start, r.Episode.End, r.INTPackets, r.SFlowSamples)
	}
	return b.String()
}

// FormatDecisionSummary renders a compact per-type summary used by
// the live CLI.
func FormatDecisionSummary(rows []core.TypeResult) string {
	var b strings.Builder
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s acc=%.4f mis=%d/%d avg=%v max=%v\n",
			r.Type, r.Accuracy, r.Misclassified, r.Total, r.AvgLatency, r.MaxLatency)
	}
	return b.String()
}
