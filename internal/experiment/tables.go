package experiment

import (
	"fmt"

	"github.com/amlight/intddos/internal/flow"
	"github.com/amlight/intddos/internal/ml"
	"github.com/amlight/intddos/internal/ml/forest"
	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/traffic"
)

// TableIRow is one episode of the simulated attack schedule.
type TableIRow struct {
	Type    string
	Start   netsim.Time
	End     netsim.Time
	Packets int
}

// RunTableI returns the workload's attack schedule with per-episode
// packet counts — the reproduction of Table I on the compressed
// timeline.
func RunTableI(c *Capture) []TableIRow {
	rows := make([]TableIRow, 0, len(c.Workload.Schedule))
	for _, ep := range c.Workload.Schedule {
		row := TableIRow{Type: ep.Type, Start: ep.Start, End: ep.End}
		for i := range c.Workload.Records {
			r := &c.Workload.Records[i]
			if r.Label && r.AttackType == ep.Type && r.At >= ep.Start && r.At < ep.End {
				row.Packets++
			}
		}
		rows = append(rows, row)
	}
	return rows
}

// RunTableII returns the Table II feature-availability matrix.
func RunTableII() []flow.AvailabilityRow { return flow.Availability() }

// TableIIIResult bundles the Table III rows with the RF confusion
// matrices behind Figures 3 and 4.
type TableIIIResult struct {
	Rows []EvalResult
	// RFConfusionINT is Figure 3; RFConfusionSFlow Figure 4.
	RFConfusionINT   ml.ConfusionMatrix
	RFConfusionSFlow ml.ConfusionMatrix
}

// RunTableIII trains the four stage-1 models on INT and sFlow data
// with the paper's 90:10 random split and scores them.
func RunTableIII(c *Capture, seed int64) (*TableIIIResult, error) {
	out := &TableIIIResult{}
	for _, src := range []struct {
		name string
		data *ml.Dataset
	}{{"INT", c.INT}, {"sFlow", c.SFlow}} {
		train, test := src.data.Split(0.1, seed)
		for _, spec := range StageOneModels() {
			res, err := TrainEval(spec, train, test, seed)
			if err != nil {
				return nil, fmt.Errorf("table III %s/%s: %w", src.name, spec.Name, err)
			}
			res.Data = src.name
			out.Rows = append(out.Rows, res)
			if spec.Name == "RF" {
				if src.name == "INT" {
					out.RFConfusionINT = res.Confusion
				} else {
					out.RFConfusionSFlow = res.Confusion
				}
			}
		}
	}
	return out, nil
}

// RunTableIV reproduces the zero-day experiment: flows up to June 10
// (days 0–4) train the models; June 11 (day 5) — whose attacks are
// SYN floods plus the never-trained SlowLoris — is the test set.
func RunTableIV(c *Capture, seed int64) ([]EvalResult, error) {
	cut := c.DayCut(5)
	var out []EvalResult
	for _, src := range []struct {
		name string
		data *ml.Dataset
	}{{"INT", c.INT}, {"sFlow", c.SFlow}} {
		train, test := SplitAtTime(src.data, cut)
		for _, spec := range StageOneModels() {
			res, err := TrainEval(spec, train, test, seed)
			if err != nil {
				return nil, fmt.Errorf("table IV %s/%s: %w", src.name, spec.Name, err)
			}
			res.Data = src.name
			out = append(out, res)
		}
	}
	return out, nil
}

// TableVRow lists one model's five most important features.
type TableVRow struct {
	Model string
	Top   []ml.FeatureImportance
}

// RunTableV computes per-model feature importance on the INT data:
// native Gini importance for RF, permutation importance for the
// rest, and returns each model's top five.
func RunTableV(c *Capture, seed int64) ([]TableVRow, error) {
	train, test := c.INT.Split(0.1, seed)
	probe := test.Subsample(2000, seed+2)
	var out []TableVRow
	for _, spec := range StageOneModels() {
		fitTrain := train
		if spec.TrainCap > 0 {
			fitTrain = train.Subsample(spec.TrainCap, seed)
		}
		model, scaler, err := FitModel(spec, fitTrain, seed)
		if err != nil {
			return nil, fmt.Errorf("table V %s: %w", spec.Name, err)
		}
		var imps []ml.FeatureImportance
		if rf, ok := model.(*forest.Forest); ok {
			for j, v := range rf.Importances() {
				imps = append(imps, ml.FeatureImportance{Index: j, Name: c.INT.Names[j], Value: v})
			}
		} else {
			p := probe
			if spec.Name == "KNN" {
				p = probe.Subsample(500, seed+3)
			}
			imps = ml.PermutationImportance(model, scaler.Transform(p.X), p.Y, c.INT.Names, seed)
		}
		out = append(out, TableVRow{Model: spec.Name, Top: ml.TopK(imps, 5)})
	}
	return out, nil
}

// FeatureAblation contrasts INT with and without the telemetry-only
// queue-occupancy features, quantifying what the Table II advantage
// is worth (a design-choice ablation from DESIGN.md §6).
func FeatureAblation(c *Capture, seed int64) (withQueue, withoutQueue EvalResult, err error) {
	spec := StageOneModels()[0] // RF
	train, test := c.INT.Split(0.1, seed)
	withQueue, err = TrainEval(spec, train, test, seed)
	if err != nil {
		return
	}
	withQueue.Data = "INT (15 features)"

	// Project out the queue features.
	keep := []int{}
	noQ := flow.SFlowFeatures()
	for _, f := range noQ {
		keep = append(keep, c.INTFeatures.Index(f))
	}
	project := func(d *ml.Dataset) *ml.Dataset {
		out := &ml.Dataset{Names: noQ.Names(), Y: d.Y, Meta: d.Meta}
		out.X = make([][]float64, len(d.X))
		for i, row := range d.X {
			pr := make([]float64, len(keep))
			for j, k := range keep {
				pr[j] = row[k]
			}
			out.X[i] = pr
		}
		return out
	}
	withoutQueue, err = TrainEval(spec, project(train), project(test), seed)
	withoutQueue.Data = "INT minus queue features"
	return
}

// HopLatencyAblation restores the hop-latency feature variants the
// paper excluded (§IV-B2, for scale-consistency reasons) and measures
// what they are worth: it collects a capture with the 18-feature
// vector, trains RF on it, and on its projection back to the paper's
// 15 features.
func HopLatencyAblation(cfg DataConfig, seed int64) (with, without EvalResult, err error) {
	cfg.INTSet = flow.INTFeaturesWithHopLatency()
	c, err := Collect(cfg)
	if err != nil {
		return
	}
	spec := StageOneModels()[0] // RF
	train, test := c.INT.Split(0.1, seed)
	with, err = TrainEval(spec, train, test, seed)
	if err != nil {
		return
	}
	with.Data = "INT + hop latency (18 features)"

	plain := flow.INTFeatures()
	keep := make([]int, len(plain))
	for i, f := range plain {
		keep[i] = c.INTFeatures.Index(f)
	}
	project := func(d *ml.Dataset) *ml.Dataset {
		out := &ml.Dataset{Names: plain.Names(), Y: d.Y, Meta: d.Meta}
		out.X = make([][]float64, len(d.X))
		for i, row := range d.X {
			pr := make([]float64, len(keep))
			for j, k := range keep {
				pr[j] = row[k]
			}
			out.X[i] = pr
		}
		return out
	}
	without, err = TrainEval(spec, project(train), project(test), seed)
	without.Data = "INT (paper's 15 features)"
	return
}

// EpisodeCoverage reports, for each Table I episode, how many packets
// each monitoring source captured — the quantitative backing for
// Figure 5's "sFlow missed SlowLoris" observation.
type EpisodeCoverage struct {
	Episode      traffic.Episode
	INTPackets   int
	SFlowSamples int
}

// RunEpisodeCoverage computes per-episode capture counts.
func RunEpisodeCoverage(c *Capture) []EpisodeCoverage {
	out := make([]EpisodeCoverage, len(c.Workload.Schedule))
	for i, ep := range c.Workload.Schedule {
		out[i].Episode = ep
	}
	count := func(d *ml.Dataset, bump func(i int)) {
		for r := range d.X {
			if d.Y[r] != 1 {
				continue
			}
			at := netsim.Time(d.Meta[r].At)
			// Observations land slightly after emission, so attribute
			// each row to the most recent episode of its type that had
			// started by then.
			for i := len(c.Workload.Schedule) - 1; i >= 0; i-- {
				ep := c.Workload.Schedule[i]
				if d.Meta[r].Type == ep.Type && at >= ep.Start {
					bump(i)
					break
				}
			}
		}
	}
	count(c.INT, func(i int) { out[i].INTPackets++ })
	count(c.SFlow, func(i int) { out[i].SFlowSamples++ })
	return out
}
