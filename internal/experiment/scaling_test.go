package experiment

import (
	"strings"
	"testing"

	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/traffic"
)

func TestScalingStudyShapes(t *testing.T) {
	cfg := ScalingConfig{
		Scale:       traffic.ScaleTiny,
		Seed:        42,
		Packets:     400,
		ServiceTime: 5 * netsim.Millisecond, // 200 predictions/s
		QueueCap:    200,
		OfferedPPS:  []float64{50, 400, 4000},
	}
	points, err := RunScalingStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 3 {
		t.Fatalf("points = %d", len(points))
	}
	under, at, over := points[0], points[1], points[2]

	// Under capacity: everything decided, no shedding, low latency.
	if under.Decisions != 400 || under.Dropped != 0 {
		t.Errorf("underload: decided=%d dropped=%d", under.Decisions, under.Dropped)
	}
	if under.AvgLatency > 50*netsim.Millisecond {
		t.Errorf("underload avg latency = %v", under.AvgLatency)
	}

	// Latency must grow monotonically with offered load.
	if !(under.AvgLatency < at.AvgLatency && at.AvgLatency < over.AvgLatency) {
		t.Errorf("latency not increasing: %v, %v, %v",
			under.AvgLatency, at.AvgLatency, over.AvgLatency)
	}

	// Far over capacity: the bounded queue must shed load and the
	// backlog must hit the cap.
	if over.Dropped == 0 {
		t.Error("overload shed nothing despite queue cap")
	}
	if over.MaxBacklog < cfg.QueueCap {
		t.Errorf("overload backlog = %d, want ≥ cap %d", over.MaxBacklog, cfg.QueueCap)
	}
	if over.Decisions+over.Dropped != 400 {
		t.Errorf("overload decided %d + dropped %d != 400", over.Decisions, over.Dropped)
	}

	out := FormatScaling(points, cfg)
	if !strings.Contains(out, "SCALING STUDY") || !strings.Contains(out, "Offered") {
		t.Error("rendering incomplete")
	}
}

func TestScalingDefaultSweep(t *testing.T) {
	cfg := ScalingConfig{Scale: traffic.ScaleTiny, Seed: 1, Packets: 120, ServiceTime: 2 * netsim.Millisecond}
	points, err := RunScalingStudy(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 7 {
		t.Errorf("default sweep = %d points, want 7", len(points))
	}
}
