package experiment

import (
	"strings"
	"testing"

	"github.com/amlight/intddos/internal/traffic"
)

// liveAcc extracts per-type accuracy from a result.
func liveAcc(res *LiveResult) map[string]float64 {
	out := map[string]float64{}
	for _, r := range res.Rows {
		out[r.Type] = r.Accuracy
	}
	return out
}

func TestLiveVoteWindowAblation(t *testing.T) {
	base := LiveConfig{Scale: traffic.ScaleTiny, Seed: 42, PacketsPerType: 250}

	smoothed, err := RunTableVI(base)
	if err != nil {
		t.Fatal(err)
	}
	raw := base
	raw.VoteWindow = 1
	unsmoothed, err := RunTableVI(raw)
	if err != nil {
		t.Fatal(err)
	}
	sAcc, uAcc := liveAcc(smoothed), liveAcc(unsmoothed)
	// Both configurations must work; smoothing must not make any
	// attack type materially worse, and it exists to suppress
	// isolated flips (§IV-C4).
	for _, typ := range traffic.AttackTypes {
		if sAcc[typ]+0.05 < uAcc[typ] {
			t.Errorf("%s: smoothing hurt accuracy %v → %v", typ, uAcc[typ], sAcc[typ])
		}
		if uAcc[typ] < 0.5 {
			t.Errorf("%s unsmoothed accuracy = %v", typ, uAcc[typ])
		}
	}
}

func TestLiveSingleModelEnsemble(t *testing.T) {
	cfg := LiveConfig{
		Scale: traffic.ScaleTiny, Seed: 42, PacketsPerType: 200,
		Ensemble:    StageTwoModels()[1:2], // RF alone
		ModelQuorum: 1,
	}
	res, err := RunTableVI(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Ensemble) != 1 || res.Ensemble[0] != "RF" {
		t.Fatalf("ensemble = %v", res.Ensemble)
	}
	acc := liveAcc(res)
	for _, typ := range []string{traffic.SYNScan, traffic.SYNFlood} {
		if acc[typ] < 0.9 {
			t.Errorf("single-RF %s accuracy = %v", typ, acc[typ])
		}
	}
}

func TestLiveQuorumClamped(t *testing.T) {
	cfg := LiveConfig{Ensemble: StageTwoModels()[:1], ModelQuorum: 3}
	cfg.fillDefaults()
	if cfg.ModelQuorum != 1 {
		t.Errorf("quorum = %d for 1-model ensemble, want clamp to 1", cfg.ModelQuorum)
	}
}

func TestRunMitigation(t *testing.T) {
	rows, err := RunMitigation(LiveConfig{
		Scale: traffic.ScaleTiny, Seed: 42, PacketsPerType: 400,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4 attack types", len(rows))
	}
	byType := map[string]MitigationResult{}
	for _, r := range rows {
		byType[r.AttackType] = r
	}
	// Single-source scans must be largely suppressed after source
	// escalation.
	for _, typ := range []string{traffic.SYNScan, traffic.UDPScan} {
		r := byType[typ]
		if r.Suppression < 0.5 {
			t.Errorf("%s suppression = %.2f, want ≥0.5 (single source)", typ, r.Suppression)
		}
		if r.Escalations == 0 {
			t.Errorf("%s never escalated to a source rule", typ)
		}
		if r.TimeToFirstRule <= 0 {
			t.Errorf("%s has no first-rule time", typ)
		}
	}
	// Spoofed floods defeat per-flow rules: suppression must be poor —
	// the known limitation that motivates upstream filtering.
	if r := byType[traffic.SYNFlood]; r.Suppression > 0.5 {
		t.Errorf("spoofed flood suppression = %.2f — should remain poor", r.Suppression)
	}
	// Accounting adds up.
	for _, r := range rows {
		if r.Delivered+r.DroppedByACL > r.TotalPackets {
			t.Errorf("%s: delivered %d + dropped %d > total %d",
				r.AttackType, r.Delivered, r.DroppedByACL, r.TotalPackets)
		}
	}
	if !strings.Contains(FormatMitigation(rows), "Suppression") {
		t.Error("rendering incomplete")
	}
}
