// Package experiment contains the runners that regenerate every
// table and figure of the paper's evaluation (§IV) on the simulated
// substrate: workload construction, monitored capture through the
// INT/sFlow testbed, model training and scoring, and the live
// automated-detection runs.
package experiment

import (
	"fmt"

	"github.com/amlight/intddos/internal/fault"
	"github.com/amlight/intddos/internal/flow"
	"github.com/amlight/intddos/internal/ml"
	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/sflow"
	"github.com/amlight/intddos/internal/telemetry"
	"github.com/amlight/intddos/internal/testbed"
	"github.com/amlight/intddos/internal/traffic"
)

// DataConfig parameterizes a monitored capture.
type DataConfig struct {
	// Scale selects the workload preset (traffic.ScaleTiny/Small/Full).
	Scale string
	// Seed drives workload generation and sampling.
	Seed int64
	// SFlowRate is the 1-in-N sampling rate; zero picks
	// TablesSFlowRate(Scale).
	SFlowRate int
	// INTSet overrides the INT feature vector; nil selects the
	// paper's 15 features (flow.INTFeatures). Used by the
	// hop-latency ablation, which restores the feature §IV-B2
	// excluded.
	INTSet flow.FeatureSet

	// Netem impairs the rig's links during the capture (see
	// testbed.Config.Netem); nil leaves the capture byte-identical to
	// an unimpaired run. NetemSeed drives the impairment RNGs.
	Netem     fault.NetemSpec
	NetemSeed int64
	// ReorderWindow overrides the INT collector's per-source
	// acceptance window (0: the collector default of 64) — the knob
	// the impairment sweep tightens.
	ReorderWindow int
}

// The paper runs one sFlow feed (production 1/4096) for both the
// model tables and the episode-coverage figure. Compressing the
// five-day capture ~500× makes that impossible with a single rate:
// either the sampled dataset is too small to train on, or SlowLoris
// no longer slips through sampling. The experiments therefore bracket
// the production configuration with two rates (see EXPERIMENTS.md).

// TablesSFlowRate preserves the paper's *samples-per-class* volumes
// for the Table III/IV model comparisons.
func TablesSFlowRate(scale string) int {
	switch scale {
	case traffic.ScaleTiny:
		return 16
	case traffic.ScaleFull:
		return 256
	default:
		return 64
	}
}

// CoverageSFlowRate preserves the paper's *samples-per-episode*
// proportions (SlowLoris below one expected sample) for Figure 5 and
// the episode-coverage analysis.
func CoverageSFlowRate(scale string) int {
	switch scale {
	case traffic.ScaleTiny:
		return 64
	case traffic.ScaleFull:
		return 2048
	default:
		return 512
	}
}

// Capture is a fully monitored workload: the ground-truth records
// plus the per-observation feature datasets each monitoring source
// produced.
type Capture struct {
	Config   DataConfig
	Workload *traffic.Workload

	// INT has one row per telemetry report (every packet); SFlow one
	// row per sampled packet.
	INT   *ml.Dataset
	SFlow *ml.Dataset

	INTFeatures   flow.FeatureSet
	SFlowFeatures flow.FeatureSet

	// Stats
	Delivered    int
	INTReports   int
	SFlowSamples int

	// Impairment accounting: per-link ledgers for every impaired link
	// (empty on a clean capture) and the INT collector's sequence
	// classification counts.
	LinkStats  map[string]netsim.ImpairStats
	Duplicates int
	Stale      int
	Reordered  int
	SeqGaps    int
	Healed     int
}

// Collect replays the workload through the Figure 6 testbed with both
// monitoring stacks attached and materializes their datasets.
func Collect(cfg DataConfig) (*Capture, error) {
	if cfg.SFlowRate == 0 {
		cfg.SFlowRate = TablesSFlowRate(cfg.Scale)
	}
	w := traffic.Build(traffic.ConfigForScale(cfg.Scale, cfg.Seed))
	if len(w.Records) == 0 {
		return nil, fmt.Errorf("experiment: empty workload at scale %q", cfg.Scale)
	}

	tb := testbed.New(testbed.Config{
		EnableSFlow: true,
		SFlowRate:   cfg.SFlowRate,
		Seed:        cfg.Seed,
		Netem:       cfg.Netem,
		NetemSeed:   cfg.NetemSeed,
	})
	tb.Collector.ReorderWindow = cfg.ReorderWindow

	intSet := cfg.INTSet
	if intSet == nil {
		intSet = flow.INTFeatures()
	}
	c := &Capture{
		Config:        cfg,
		Workload:      w,
		INT:           &ml.Dataset{},
		SFlow:         &ml.Dataset{},
		INTFeatures:   intSet,
		SFlowFeatures: flow.SFlowFeatures(),
	}
	c.INT.Names = c.INTFeatures.Names()
	c.SFlow.Names = c.SFlowFeatures.Names()

	intTable := flow.NewTable()
	sfTable := flow.NewTable()

	tb.Collector.OnReport = func(r *telemetry.Report, at netsim.Time) {
		c.INTReports++
		pi := flow.FromINT(r, at)
		st, _ := intTable.Observe(pi)
		appendRow(c.INT, st, c.INTFeatures, pi)
	}
	tb.SFlowCollector.OnFlowSample = func(s *sflow.FlowSample, at netsim.Time) {
		c.SFlowSamples++
		pi := flow.FromSFlow(s, at)
		st, _ := sfTable.Observe(pi)
		appendRow(c.SFlow, st, c.SFlowFeatures, pi)
	}

	rp := tb.Replayer(w.Records)
	rp.Start()
	tb.Run()
	c.Delivered = tb.Target.Received
	c.LinkStats = tb.ImpairedStats()
	c.Duplicates = tb.Collector.Duplicates
	c.Stale = tb.Collector.Stale
	c.Reordered = tb.Collector.Reordered
	c.SeqGaps = tb.Collector.SeqGaps
	c.Healed = tb.Collector.Healed
	return c, nil
}

// appendRow snapshots one observation into a dataset.
func appendRow(d *ml.Dataset, st *flow.State, set flow.FeatureSet, pi flow.PacketInfo) {
	label := 0
	if pi.Label {
		label = 1
	}
	d.Append(st.Features(nil, set), label, ml.RowMeta{At: int64(pi.At), Type: pi.AttackType})
}

// DayCut returns the virtual time where day d starts, for the
// zero-day train/test split.
func (c *Capture) DayCut(d int) int64 {
	return int64(netsim.Time(d) * c.Workload.Config.DayLen)
}

// SplitAtTime partitions a dataset by observation time.
func SplitAtTime(d *ml.Dataset, cut int64) (before, after *ml.Dataset) {
	var idxB, idxA []int
	for i := range d.X {
		if d.Meta[i].At < cut {
			idxB = append(idxB, i)
		} else {
			idxA = append(idxA, i)
		}
	}
	return d.Select(idxB), d.Select(idxA)
}

// DropType removes rows of one attack type (used to hold SlowLoris
// out of the stage-2 training set).
func DropType(d *ml.Dataset, typ string) *ml.Dataset {
	var idx []int
	for i := range d.X {
		if d.Meta[i].Type != typ {
			idx = append(idx, i)
		}
	}
	return d.Select(idx)
}
