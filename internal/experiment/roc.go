package experiment

import (
	"fmt"
	"strings"

	"github.com/amlight/intddos/internal/ml"
)

// ROCRow is one model/source operating-characteristic summary.
type ROCRow struct {
	Data  string
	Model string
	AUC   float64
	// Best is the Youden-optimal operating point.
	Best ml.ROCPoint
	// Curve is the full sweep (for CSV/plotting).
	Curve []ml.ROCPoint
}

// RunROC computes ROC curves and AUC for the probability-capable
// stage-one models (RF, GNB, NN) on both monitoring sources — an
// evaluation-depth extension beyond the paper's fixed-threshold
// metrics.
func RunROC(c *Capture, seed int64) ([]ROCRow, error) {
	var out []ROCRow
	for _, src := range []struct {
		name string
		data *ml.Dataset
	}{{"INT", c.INT}, {"sFlow", c.SFlow}} {
		train, test := src.data.Split(0.1, seed)
		for _, spec := range StageOneModels() {
			if spec.Name == "KNN" {
				continue // no continuous score
			}
			fitTrain := train
			if spec.TrainCap > 0 {
				fitTrain = train.Subsample(spec.TrainCap, seed)
			}
			model, scaler, err := FitModel(spec, fitTrain, seed)
			if err != nil {
				return nil, fmt.Errorf("roc %s/%s: %w", src.name, spec.Name, err)
			}
			pc, ok := probaOf(model)
			if !ok {
				continue
			}
			scores := ml.ScoreRows(pc, scaler.Transform(test.X))
			curve := ml.ROC(test.Y, scores)
			if curve == nil {
				continue
			}
			out = append(out, ROCRow{
				Data:  src.name,
				Model: spec.Name,
				AUC:   ml.AUC(curve),
				Best:  ml.BestThreshold(curve),
				Curve: curve,
			})
		}
	}
	return out, nil
}

// probaOf unwraps probability access, including the adaptive NN
// wrapper.
func probaOf(c ml.Classifier) (ml.ProbaClassifier, bool) {
	if pc, ok := c.(ml.ProbaClassifier); ok {
		return pc, true
	}
	if a, ok := c.(*adaptiveNN); ok && a.net != nil {
		return a.net, true
	}
	return nil, false
}

// FormatROC renders the AUC summary.
func FormatROC(rows []ROCRow) string {
	var b strings.Builder
	b.WriteString("ROC ANALYSIS: threshold-free model comparison (extension)\n")
	fmt.Fprintf(&b, "%-6s %-5s %8s %16s %8s %8s\n", "Data", "Model", "AUC", "Best threshold", "TPR", "FPR")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-6s %-5s %8.4f %16.4g %8.4f %8.4f\n",
			r.Data, r.Model, r.AUC, r.Best.Threshold, r.Best.TPR, r.Best.FPR)
	}
	return b.String()
}
