package experiment

import (
	"path/filepath"
	"testing"

	"github.com/amlight/intddos/internal/ml"
)

// TestEnsembleBundleRoundTrip trains every model family, saves the
// bundle, reloads it, and verifies prediction equivalence row by row
// — the Prediction module's load path.
func TestEnsembleBundleRoundTrip(t *testing.T) {
	c := capture(t)
	train, test := c.INT.Split(0.1, 42)
	small := train.Subsample(4000, 42)

	scaler := &ml.StandardScaler{}
	Z, err := scaler.FitTransform(small.X)
	if err != nil {
		t.Fatal(err)
	}
	var models []ml.Classifier
	for _, spec := range StageOneModels() {
		m := spec.New(42)
		fitTrain := Z
		fitY := small.Y
		if spec.Name == "KNN" {
			sub := small.Subsample(500, 42)
			fitTrain = scaler.Transform(sub.X)
			fitY = sub.Y
		}
		if err := m.Fit(fitTrain, fitY); err != nil {
			t.Fatalf("fit %s: %v", spec.Name, err)
		}
		models = append(models, m)
	}

	path := filepath.Join(t.TempDir(), "ensemble.bundle")
	if err := SaveEnsemble(path, models, scaler, c.INT.Names); err != nil {
		t.Fatal(err)
	}
	bundle, err := LoadEnsemble(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(bundle.Models) != len(models) {
		t.Fatalf("loaded %d models, want %d", len(bundle.Models), len(models))
	}
	if len(bundle.FeatureNames) != 15 {
		t.Errorf("feature names = %d", len(bundle.FeatureNames))
	}
	for j := range scaler.Mean {
		if bundle.Scaler.Mean[j] != scaler.Mean[j] || bundle.Scaler.Std[j] != scaler.Std[j] {
			t.Fatalf("scaler coefficient %d differs after round trip", j)
		}
	}

	probe := test.Subsample(500, 7)
	Zp := scaler.Transform(probe.X)
	for i, orig := range models {
		loaded := bundle.Models[i]
		if loaded.Name() != orig.Name() {
			t.Errorf("model %d name %q != %q", i, loaded.Name(), orig.Name())
		}
		for r, x := range Zp {
			if got, want := loaded.Predict(x), orig.Predict(x); got != want {
				t.Fatalf("%s: prediction differs at row %d after round trip (%d vs %d)",
					orig.Name(), r, got, want)
			}
		}
	}
}

func TestModelFactoryUnknown(t *testing.T) {
	if _, err := ModelFactory("SVM"); err == nil {
		t.Error("unknown family accepted")
	}
	for _, name := range []string{"RF", "GNB", "KNN", "NN", "MLP"} {
		if _, err := ModelFactory(name); err != nil {
			t.Errorf("factory rejected %s: %v", name, err)
		}
	}
}

func TestBundleRejectsGarbage(t *testing.T) {
	if _, err := ml.ReadBundleBytes([]byte("not a bundle at all"), ModelFactory); err == nil {
		t.Error("garbage bundle accepted")
	}
}

func TestUntrainedModelsRefuseMarshal(t *testing.T) {
	for _, spec := range StageOneModels() {
		m := spec.New(1)
		bm, ok := m.(ml.BinaryModel)
		if !ok {
			t.Fatalf("%s does not implement BinaryModel", spec.Name)
		}
		if _, err := bm.MarshalBinary(); err == nil {
			t.Errorf("untrained %s marshaled without error", spec.Name)
		}
	}
}
