package experiment

import (
	"fmt"
	"sort"
	"strings"

	"github.com/amlight/intddos/internal/core"
	"github.com/amlight/intddos/internal/ml"
	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/testbed"
	"github.com/amlight/intddos/internal/trace"
	"github.com/amlight/intddos/internal/traffic"
)

// ScalingConfig parameterizes the processing-capability study the
// paper's §V motivates: how the single-server prediction pipeline
// behaves as offered load approaches and passes its service rate.
type ScalingConfig struct {
	Scale string
	Seed  int64
	// Packets per sweep point (default 2000).
	Packets int
	// ServiceTime is the per-prediction cost (default 10 ms → a
	// 100 predictions/s pipeline, Python-like).
	ServiceTime netsim.Time
	// QueueCap bounds the prediction queue so overload sheds load
	// instead of queueing without bound (default 1000).
	QueueCap int
	// OfferedPPS lists the sweep points; empty selects a default
	// sweep bracketing the service rate.
	OfferedPPS []float64
}

// ScalingPoint is one sweep measurement.
type ScalingPoint struct {
	OfferedPPS    float64
	Packets       int
	Decisions     int
	Dropped       int
	MaxBacklog    int
	AvgLatency    netsim.Time
	P99Latency    netsim.Time
	MaxLatency    netsim.Time
	ThroughputPPS float64 // decisions per virtual second of the run
}

// effective resolves zero-valued fields to their defaults.
func (cfg ScalingConfig) effective() ScalingConfig {
	if cfg.Packets <= 0 {
		cfg.Packets = 2000
	}
	if cfg.ServiceTime <= 0 {
		cfg.ServiceTime = 10 * netsim.Millisecond
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 1000
	}
	if len(cfg.OfferedPPS) == 0 {
		service := 1.0 / cfg.ServiceTime.Seconds()
		cfg.OfferedPPS = []float64{
			0.25 * service, 0.5 * service, 0.8 * service,
			service, 2 * service, 5 * service, 20 * service,
		}
	}
	return cfg
}

// RunScalingStudy sweeps offered load through the live mechanism and
// reports latency, backlog, and shed load per point.
func RunScalingStudy(cfg ScalingConfig) ([]ScalingPoint, error) {
	cfg = cfg.effective()

	// One trained model suffices: the study measures the pipeline,
	// not the classifier.
	capture, err := Collect(DataConfig{Scale: cfg.Scale, Seed: cfg.Seed})
	if err != nil {
		return nil, err
	}
	train, _ := capture.INT.Split(0.1, cfg.Seed)
	model, scaler, err := FitModel(StageOneModels()[0], train.Subsample(20000, cfg.Seed), cfg.Seed)
	if err != nil {
		return nil, err
	}

	// The replayed segment: a benign slice re-paced uniformly to the
	// target rate so every sweep point sees identical packet content.
	src := recordsOfType(capture.Workload, traffic.Benign, cfg.Packets, false)
	if len(src) == 0 {
		return nil, fmt.Errorf("experiment: no benign records for scaling study")
	}

	var out []ScalingPoint
	for _, pps := range cfg.OfferedPPS {
		recs := repace(src, pps)
		pt, err := runScalingPoint(recs, pps, model, scaler, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, pt)
	}
	return out, nil
}

// repace rewrites record timestamps to a uniform inter-packet gap
// matching the offered rate.
func repace(recs []trace.Record, pps float64) []trace.Record {
	gap := netsim.Time(float64(netsim.Second) / pps)
	out := make([]trace.Record, len(recs))
	copy(out, recs)
	for i := range out {
		out[i].At = netsim.Time(i) * gap
	}
	return out
}

// runScalingPoint replays one paced stream through a fresh mechanism.
func runScalingPoint(recs []trace.Record, pps float64, model ml.Classifier, scaler *ml.StandardScaler, cfg ScalingConfig) (ScalingPoint, error) {
	tb := testbed.New(testbed.Config{})
	mech, err := core.New(tb.Eng, core.Config{
		Models:      []ml.Classifier{model},
		Scaler:      scaler,
		ServiceTime: cfg.ServiceTime,
		QueueCap:    cfg.QueueCap,
	})
	if err != nil {
		return ScalingPoint{}, err
	}
	tb.Collector.OnReport = mech.HandleReport
	mech.Start()
	rp := tb.Replayer(recs)
	rp.Start()

	// Run until the queue drains or a generous deadline passes.
	replayDur := netsim.Time(float64(len(recs)) * float64(netsim.Second) / pps)
	deadline := replayDur + netsim.Time(len(recs))*cfg.ServiceTime + 5*netsim.Second
	start := tb.Eng.Now()
	for tb.Eng.Now() < deadline && len(mech.Decisions)+mech.DroppedPolls < len(recs) {
		tb.RunUntil(tb.Eng.Now() + 250*netsim.Millisecond)
	}
	elapsed := tb.Eng.Now() - start

	pt := ScalingPoint{
		OfferedPPS: pps,
		Packets:    len(recs),
		Decisions:  len(mech.Decisions),
		Dropped:    mech.DroppedPolls,
		MaxBacklog: mech.MaxQueue,
	}
	if len(mech.Decisions) > 0 {
		lats := make([]netsim.Time, 0, len(mech.Decisions))
		var sum netsim.Time
		for _, d := range mech.Decisions {
			lats = append(lats, d.Latency)
			sum += d.Latency
			if d.Latency > pt.MaxLatency {
				pt.MaxLatency = d.Latency
			}
		}
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		pt.AvgLatency = sum / netsim.Time(len(lats))
		pt.P99Latency = lats[len(lats)*99/100]
	}
	if elapsed > 0 {
		pt.ThroughputPPS = float64(pt.Decisions) / elapsed.Seconds()
	}
	return pt, nil
}

// FormatScaling renders the sweep like a scalability table.
func FormatScaling(points []ScalingPoint, cfg ScalingConfig) string {
	cfg = cfg.effective()
	var b strings.Builder
	fmt.Fprintf(&b, "SCALING STUDY: prediction pipeline under offered load (service %v/prediction, queue cap %d)\n",
		cfg.ServiceTime, cfg.QueueCap)
	fmt.Fprintf(&b, "%12s %10s %10s %9s %12s %12s %12s %14s\n",
		"Offered pps", "Decided", "Shed", "Backlog", "AvgPred", "P99Pred", "MaxPred", "Throughput/s")
	for _, p := range points {
		fmt.Fprintf(&b, "%12.0f %10d %10d %9d %12v %12v %12v %14.1f\n",
			p.OfferedPPS, p.Decisions, p.Dropped, p.MaxBacklog,
			p.AvgLatency, p.P99Latency, p.MaxLatency, p.ThroughputPPS)
	}
	return b.String()
}
