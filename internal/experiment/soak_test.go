package experiment

import (
	"testing"

	"github.com/amlight/intddos/internal/traffic"
)

// TestSoakSmoke is the `make soak-smoke` gate: a bounded soak at tiny
// scale — impaired wire, scrambled feed, internal faults — that must
// keep both accounting ledgers closed and degrade accuracy gracefully.
func TestSoakSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("soak smoke skipped in -short")
	}
	cfg := SoakConfig{
		Scale:          traffic.ScaleTiny,
		Seed:           42,
		Passes:         2,
		PacketsPerType: 400,
	}
	r, err := RunSoak(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Log("\n" + FormatSoak(r))
	if !r.ReportLedgerClosed {
		t.Errorf("report ledger open: %d reports != %d dup + %d stale + %d fault drops + %d snapshots",
			r.Reports, r.Duplicates, r.Stale, r.FaultDrops, r.Snapshots)
	}
	if !r.PipelineClosed {
		t.Errorf("pipeline ledger open: %d polled != %d decided + %d shed + %d abandoned",
			r.Polled, r.Decided, r.Shed, r.Abandoned)
	}
	// The adversity demonstrably fired: the wire lost and duplicated,
	// the feed scrambles produced suppressions.
	if ls := r.LinkStats["agent->collector"]; ls.Lost == 0 || !ls.Closed() {
		t.Errorf("wire impairment did not fire or its ledger is open: %+v", ls)
	}
	if r.Duplicates == 0 {
		t.Error("no duplicate suppressions over a duplicating wire + scrambled feed")
	}
	if r.Stale == 0 {
		t.Error("no stale rejections despite deep stragglers in the feed")
	}
	if r.CleanAccuracy <= 0 || r.CleanAccuracy > 1 || r.SoakAccuracy <= 0 || r.SoakAccuracy > 1 {
		t.Fatalf("accuracies out of range: clean=%v soak=%v", r.CleanAccuracy, r.SoakAccuracy)
	}
	if r.DeltaPP < -10 {
		t.Errorf("soak accuracy fell %.2f pp below clean, bound is -10", -r.DeltaPP)
	}
}
