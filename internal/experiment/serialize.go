package experiment

import (
	"fmt"

	"github.com/amlight/intddos/internal/ml"
	"github.com/amlight/intddos/internal/ml/bayes"
	"github.com/amlight/intddos/internal/ml/forest"
	"github.com/amlight/intddos/internal/ml/knn"
	"github.com/amlight/intddos/internal/ml/neural"
)

// ModelFactory reconstructs empty models by family name for bundle
// loading. "NN" and "MLP" both map to the neural implementation; the
// display name is restored from the stream itself.
func ModelFactory(name string) (ml.BinaryModel, error) {
	switch name {
	case "RF":
		return forest.New(forest.Config{}), nil
	case "GNB":
		return bayes.New(), nil
	case "KNN":
		return knn.New(0), nil
	case "NN", "MLP":
		return neural.New(neural.Config{DisplayName: name}), nil
	default:
		return nil, fmt.Errorf("unknown model family %q", name)
	}
}

// SaveEnsemble writes trained models plus their shared scaler to a
// bundle file — the artifact the paper's Prediction module loads at
// initialization.
func SaveEnsemble(path string, models []ml.Classifier, scaler *ml.StandardScaler, featureNames []string) error {
	b := &ml.Bundle{FeatureNames: featureNames, Scaler: scaler}
	for _, m := range models {
		bm, ok := m.(ml.BinaryModel)
		if !ok {
			return fmt.Errorf("experiment: model %s is not serializable", m.Name())
		}
		b.Models = append(b.Models, bm)
	}
	return ml.SaveBundle(path, b)
}

// LoadEnsemble restores a bundle written by SaveEnsemble.
func LoadEnsemble(path string) (*ml.Bundle, error) {
	return ml.LoadBundle(path, ModelFactory)
}
