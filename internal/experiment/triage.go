package experiment

import (
	"fmt"
	"sort"
	"strings"

	"github.com/amlight/intddos/internal/core"
	"github.com/amlight/intddos/internal/trace"
	"github.com/amlight/intddos/internal/traffic"
)

// TriageSweepConfig parameterizes the exit-rate/accuracy sweep over
// benign fraction × stage-0 threshold.
type TriageSweepConfig struct {
	// Live supplies the base stage-2 settings (scale, seed, pacing).
	// Its Triage* fields are ignored; the sweep sets them per cell.
	Live LiveConfig
	// BenignFracs are the benign shares of each mixed replay stream
	// (default 0.50, 0.80, 0.95 — the benchmark's benign-heavy mix
	// last).
	BenignFracs []float64
	// Thresholds are the stage-0 confidence cutoffs swept per
	// fraction (default 0.90, 0.95, 0.99). Each fraction also runs a
	// triage-off baseline the deltas are measured against.
	Thresholds []float64
}

// TriageCell is one sweep measurement: a benign fraction replayed
// with one threshold (0 = the triage-off baseline).
type TriageCell struct {
	BenignFrac    float64
	Threshold     float64
	Rows          int
	ExitRate      float64 // fraction of decisions with Stage > 0
	Accuracy      float64
	AccuracyDelta float64 // percentage points vs the baseline at this fraction
}

// TriageSweep is the full grid plus the ensemble it ran on.
type TriageSweep struct {
	Cells    []TriageCell
	Ensemble []string
}

func (cfg *TriageSweepConfig) fillDefaults() {
	cfg.Live.fillDefaults()
	if len(cfg.BenignFracs) == 0 {
		cfg.BenignFracs = []float64{0.50, 0.80, 0.95}
	}
	if len(cfg.Thresholds) == 0 {
		cfg.Thresholds = []float64{0.90, 0.95, 0.99}
	}
}

// mixedRecords builds one replay stream of n records with the given
// benign share; the attack remainder is spread evenly over the
// workload's attack types. Records are re-based and merged by their
// capture timestamps so the stream interleaves like real traffic.
func mixedRecords(w *traffic.Workload, n int, benignFrac float64) []trace.Record {
	nBenign := int(float64(n)*benignFrac + 0.5)
	if nBenign > n {
		nBenign = n
	}
	nAttack := n - nBenign
	out := append([]trace.Record(nil), recordsOfType(w, traffic.Benign, nBenign, true)...)
	if nAttack > 0 {
		per := nAttack / len(traffic.AttackTypes)
		extra := nAttack % len(traffic.AttackTypes)
		for i, typ := range traffic.AttackTypes {
			want := per
			if i < extra {
				want++
			}
			out = append(out, recordsOfType(w, typ, want, true)...)
		}
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].At < out[j].At })
	return out
}

// RunTriageSweep trains the stage-2 ensemble once, then replays mixed
// benign/attack streams through the live mechanism at every (benign
// fraction, threshold) pair, measuring the cascade's exit rate and
// the accuracy cost against a triage-off baseline on the identical
// stream.
func RunTriageSweep(cfg TriageSweepConfig) (*TriageSweep, error) {
	cfg.fillDefaults()
	w := traffic.Build(traffic.ConfigForScale(cfg.Live.Scale, cfg.Live.Seed))
	models, scaler, names, _, err := trainStageTwo(cfg.Live, w)
	if err != nil {
		return nil, err
	}
	sweep := &TriageSweep{Ensemble: names}
	for _, frac := range cfg.BenignFracs {
		recs := mixedRecords(w, cfg.Live.PacketsPerType, frac)
		if len(recs) == 0 {
			return nil, fmt.Errorf("triage sweep: empty stream at benign fraction %g", frac)
		}
		base := cfg.Live
		base.Triage = false
		baseDec, err := replayLive(recs, 1.0, models, scaler, base)
		if err != nil {
			return nil, fmt.Errorf("triage sweep baseline frac=%g: %w", frac, err)
		}
		baseCell := summarizeCell(frac, 0, baseDec)
		sweep.Cells = append(sweep.Cells, baseCell)
		for _, th := range cfg.Thresholds {
			run := cfg.Live
			run.Triage = true
			run.TriageThreshold = th
			run.fillDefaults() // resolve TriageModel default
			dec, err := replayLive(recs, 1.0, models, scaler, run)
			if err != nil {
				return nil, fmt.Errorf("triage sweep frac=%g th=%g: %w", frac, th, err)
			}
			cell := summarizeCell(frac, th, dec)
			cell.AccuracyDelta = (cell.Accuracy - baseCell.Accuracy) * 100
			sweep.Cells = append(sweep.Cells, cell)
		}
	}
	return sweep, nil
}

func summarizeCell(frac, th float64, dec []core.Decision) TriageCell {
	cell := TriageCell{BenignFrac: frac, Threshold: th, Rows: len(dec)}
	if len(dec) == 0 {
		return cell
	}
	correct, exited := 0, 0
	for _, d := range dec {
		if d.Correct() {
			correct++
		}
		if d.Stage > 0 {
			exited++
		}
	}
	cell.Accuracy = float64(correct) / float64(len(dec))
	cell.ExitRate = float64(exited) / float64(len(dec))
	return cell
}

// FormatTriageSweep renders the grid as the EXPERIMENTS.md table.
func FormatTriageSweep(s *TriageSweep) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Triage sweep (ensemble %s)\n", strings.Join(s.Ensemble, "+"))
	fmt.Fprintf(&b, "%-12s %-10s %6s %10s %10s %8s\n",
		"benign_frac", "threshold", "rows", "exit_rate", "accuracy", "Δacc_pp")
	for _, c := range s.Cells {
		th := fmt.Sprintf("%.2f", c.Threshold)
		delta := fmt.Sprintf("%+.2f", c.AccuracyDelta)
		if c.Threshold == 0 {
			th, delta = "off", "—"
		}
		fmt.Fprintf(&b, "%-12.2f %-10s %6d %10.3f %10.4f %8s\n",
			c.BenignFrac, th, c.Rows, c.ExitRate, c.Accuracy, delta)
	}
	return b.String()
}
