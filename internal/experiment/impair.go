package experiment

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"github.com/amlight/intddos/internal/fault"
	"github.com/amlight/intddos/internal/testbed"
)

// ImpairConfig parameterizes the adverse-network sweep: the Table
// III/IV experiments re-run over a grid of link impairments on the
// report wire, quantifying how much accuracy the detection pipeline
// loses when the telemetry path drops, duplicates, and reorders.
type ImpairConfig struct {
	Scale string
	Seed  int64
	// NetemSeed drives the impairment RNGs (default: Seed).
	NetemSeed int64
	// ReorderWindow is the collector's per-source acceptance window
	// for every row, baseline included (default 8 — deliberately
	// tight, so the sweep also exercises stale rejection).
	ReorderWindow int
	// Models names the stage-1 models to evaluate (default RF and
	// GNB: one strong and one cheap learner bracket the ensemble).
	Models []string
	// Points overrides the impairment grid; nil selects the default.
	// An empty Spec is the clean baseline and is always prepended when
	// absent.
	Points []ImpairPoint
	// Quick trims the grid to baseline + the acceptance point (CI
	// smoke).
	Quick bool
}

// ImpairPoint is one grid point: a name and the netem sub-clauses
// applied to the agent→collector report wire.
type ImpairPoint struct {
	Name string `json:"name"`
	Spec string `json:"spec"`
}

// defaultImpairPoints is the sweep grid. The "loss1-dup0.1" point is
// the acceptance criterion: Table III macro accuracy must stay within
// 5 pp of baseline at 1% loss + 0.1% dup with reorder window 8.
func defaultImpairPoints() []ImpairPoint {
	return []ImpairPoint{
		{Name: "baseline", Spec: ""},
		{Name: "loss0.5", Spec: "loss=0.5%"},
		{Name: "loss1-dup0.1", Spec: "loss=1%,dup=0.1%"},
		{Name: "jitter-reorder", Spec: "delay=20us,jitter=40us,reorder=5%"},
		{Name: "heavy", Spec: "loss=2%,dup=0.5%,delay=20us,jitter=40us"},
	}
}

// ImpairRow is one grid point's outcome.
type ImpairRow struct {
	Name string `json:"name"`
	Spec string `json:"spec"`

	// Capture accounting.
	INTRows   int `json:"int_rows"`
	Sent      int `json:"link_sent"`
	Delivered int `json:"link_delivered"`
	Lost      int `json:"link_lost"`
	Dupd      int `json:"link_duplicated"`
	Reordered int `json:"link_reordered"`

	// Collector classification.
	ColDup   int `json:"collector_duplicates"`
	ColStale int `json:"collector_stale"`
	SeqGaps  int `json:"collector_seq_gaps"`
	Healed   int `json:"collector_healed"`

	// Accuracy: Table III macro (mean accuracy over the configured
	// models, 90:10 split, INT data) and Table IV zero-day (RF,
	// day-5 cut), with deltas vs the baseline row in percentage
	// points.
	MacroAccuracy float64 `json:"macro_accuracy"`
	ZeroDay       float64 `json:"zero_day_accuracy"`
	DeltaMacroPP  float64 `json:"delta_macro_pp"`
	DeltaZeroPP   float64 `json:"delta_zero_pp"`

	// AccountingClosed: the link ledger closes AND every report the
	// link delivered is a collector acceptance or suppression.
	AccountingClosed bool `json:"accounting_closed"`
}

// ImpairResult is the sweep artifact.
type ImpairResult struct {
	Scale         string      `json:"scale"`
	Seed          int64       `json:"seed"`
	ReorderWindow int         `json:"reorder_window"`
	Models        []string    `json:"models"`
	Rows          []ImpairRow `json:"rows"`
}

// RunImpairmentSweep runs the Table III/IV experiments across the
// impairment grid. Row 0 is always the clean baseline the deltas are
// measured against.
func RunImpairmentSweep(cfg ImpairConfig) (*ImpairResult, error) {
	if cfg.NetemSeed == 0 {
		cfg.NetemSeed = cfg.Seed
	}
	if cfg.ReorderWindow <= 0 {
		cfg.ReorderWindow = 8
	}
	if len(cfg.Models) == 0 {
		cfg.Models = []string{"RF", "GNB"}
	}
	points := cfg.Points
	if points == nil {
		points = defaultImpairPoints()
	}
	if len(points) == 0 || points[0].Spec != "" {
		points = append([]ImpairPoint{{Name: "baseline"}}, points...)
	}
	if cfg.Quick {
		points = []ImpairPoint{{Name: "baseline"}, {Name: "loss1-dup0.1", Spec: "loss=1%,dup=0.1%"}}
	}

	specs, err := selectModels(cfg.Models)
	if err != nil {
		return nil, err
	}

	out := &ImpairResult{
		Scale: cfg.Scale, Seed: cfg.Seed,
		ReorderWindow: cfg.ReorderWindow, Models: cfg.Models,
	}
	for _, pt := range points {
		row, err := runImpairPoint(cfg, specs, pt)
		if err != nil {
			return nil, fmt.Errorf("impair %s: %w", pt.Name, err)
		}
		out.Rows = append(out.Rows, *row)
	}
	base := out.Rows[0]
	for i := range out.Rows {
		out.Rows[i].DeltaMacroPP = (out.Rows[i].MacroAccuracy - base.MacroAccuracy) * 100
		out.Rows[i].DeltaZeroPP = (out.Rows[i].ZeroDay - base.ZeroDay) * 100
	}
	return out, nil
}

// selectModels resolves model names against the stage-1 roster.
func selectModels(names []string) ([]ModelSpec, error) {
	roster := StageOneModels()
	var specs []ModelSpec
	for _, name := range names {
		found := false
		for _, spec := range roster {
			if spec.Name == name {
				specs = append(specs, spec)
				found = true
				break
			}
		}
		if !found {
			return nil, fmt.Errorf("experiment: unknown model %q", name)
		}
	}
	return specs, nil
}

// runImpairPoint captures the workload once under the point's
// impairment and evaluates the configured models on it.
func runImpairPoint(cfg ImpairConfig, specs []ModelSpec, pt ImpairPoint) (*ImpairRow, error) {
	dc := DataConfig{
		Scale: cfg.Scale, Seed: cfg.Seed,
		NetemSeed:     cfg.NetemSeed,
		ReorderWindow: cfg.ReorderWindow,
	}
	if pt.Spec != "" {
		spec, err := fault.ParseNetem(
			fmt.Sprintf("netem[link=%s]:%s", testbed.LinkAgentCollector, pt.Spec))
		if err != nil {
			return nil, err
		}
		dc.Netem = spec
	}
	c, err := Collect(dc)
	if err != nil {
		return nil, err
	}

	row := &ImpairRow{
		Name: pt.Name, Spec: pt.Spec,
		INTRows:  c.INT.Len(),
		ColDup:   c.Duplicates,
		ColStale: c.Stale,
		SeqGaps:  c.SeqGaps,
		Healed:   c.Healed,
	}
	row.AccountingClosed = true
	if ls, ok := c.LinkStats[testbed.LinkAgentCollector]; ok {
		row.Sent, row.Delivered = ls.Sent, ls.Delivered
		row.Lost, row.Dupd, row.Reordered = ls.Lost, ls.Duplicated, ls.Reordered
		// Closure: the link ledger balances, and every delivered
		// report is exactly one acceptance or suppression.
		row.AccountingClosed = ls.Closed() &&
			ls.Delivered == c.INTReports+c.Duplicates+c.Stale
	}

	var sum float64
	for _, spec := range specs {
		train, test := c.INT.Split(0.1, cfg.Seed)
		res, err := TrainEval(spec, train, test, cfg.Seed)
		if err != nil {
			return nil, err
		}
		sum += res.Scores.Accuracy
	}
	row.MacroAccuracy = sum / float64(len(specs))

	// Zero-day: RF across the day-5 cut (Table IV's protocol).
	train, test := SplitAtTime(c.INT, c.DayCut(5))
	res, err := TrainEval(StageOneModels()[0], train, test, cfg.Seed)
	if err != nil {
		return nil, err
	}
	row.ZeroDay = res.Scores.Accuracy
	return row, nil
}

// WriteImpairJSON writes the sweep artifact (validated by
// `diagcheck -impair`).
func WriteImpairJSON(path string, r *ImpairResult) error {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(buf, '\n'), 0o644)
}

// FormatImpairmentSweep renders the sweep as a text table.
func FormatImpairmentSweep(r *ImpairResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "IMPAIRMENT SWEEP: scale=%s seed=%d reorder_window=%d models=%s\n",
		r.Scale, r.Seed, r.ReorderWindow, strings.Join(r.Models, "+"))
	fmt.Fprintf(&b, "%-16s %-34s %8s %8s %8s %8s %9s %9s %8s\n",
		"point", "netem[link=agent->collector]", "rows", "lost", "dup", "stale",
		"macro", "Δmacro", "ledger")
	for _, row := range r.Rows {
		spec := row.Spec
		if spec == "" {
			spec = "(none)"
		}
		ledger := "CLOSED"
		if !row.AccountingClosed {
			ledger = "LEAK"
		}
		fmt.Fprintf(&b, "%-16s %-34s %8d %8d %8d %8d %8.2f%% %+8.2f %8s\n",
			row.Name, spec, row.INTRows, row.Lost, row.ColDup, row.ColStale,
			row.MacroAccuracy*100, row.DeltaMacroPP, ledger)
	}
	b.WriteString("Δmacro is percentage points vs the baseline row; the ledger closes when\n")
	b.WriteString("link Delivered == Sent - Lost - RateDropped + Duplicated and every delivered\n")
	b.WriteString("report is exactly one collector acceptance or suppression.\n")
	return b.String()
}
