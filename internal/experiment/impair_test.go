package experiment

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"github.com/amlight/intddos/internal/traffic"
)

func TestImpairmentSweepQuick(t *testing.T) {
	r, err := RunImpairmentSweep(ImpairConfig{Scale: traffic.ScaleTiny, Seed: 42, Quick: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Rows) != 2 || r.Rows[0].Spec != "" {
		t.Fatalf("quick sweep rows = %+v, want baseline + acceptance point", r.Rows)
	}
	base, imp := r.Rows[0], r.Rows[1]
	if base.Lost != 0 || base.ColDup != 0 || base.ColStale != 0 {
		t.Errorf("baseline saw impairment: %+v", base)
	}
	if imp.Lost == 0 {
		t.Errorf("no loss at 1%%: %+v", imp)
	}
	if imp.Dupd == 0 || imp.ColDup == 0 {
		t.Errorf("no duplication at 0.1%% over a tiny-scale capture: %+v", imp)
	}
	for _, row := range r.Rows {
		if !row.AccountingClosed {
			t.Errorf("row %s: accounting open: %+v", row.Name, row)
		}
		if row.MacroAccuracy <= 0 || row.MacroAccuracy > 1 {
			t.Errorf("row %s: macro accuracy %v out of (0,1]", row.Name, row.MacroAccuracy)
		}
	}
	// The acceptance bound: within -5 pp of baseline at 1% loss +
	// 0.1% dup with reorder window 8.
	if imp.DeltaMacroPP < -5 {
		t.Errorf("macro accuracy degraded %.2f pp at the acceptance point, bound is -5", imp.DeltaMacroPP)
	}

	// Artifact round-trips.
	path := filepath.Join(t.TempDir(), "impair.json")
	if err := WriteImpairJSON(path, r); err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back ImpairResult
	if err := json.Unmarshal(buf, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Rows) != len(r.Rows) || back.Rows[1].Name != r.Rows[1].Name {
		t.Errorf("artifact did not round-trip: %+v", back)
	}
	if FormatImpairmentSweep(r) == "" {
		t.Error("empty formatted sweep")
	}
}

func TestImpairmentSweepRejectsUnknownModel(t *testing.T) {
	_, err := RunImpairmentSweep(ImpairConfig{Scale: traffic.ScaleTiny, Seed: 1, Models: []string{"nope"}})
	if err == nil {
		t.Fatal("unknown model accepted")
	}
}
