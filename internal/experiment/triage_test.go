package experiment

import (
	"math"
	"strings"
	"testing"

	"github.com/amlight/intddos/internal/ml"
)

// TestCascadeTableIIIDelta is the offline (Table III) half of the
// accuracy bound: on the 90:10 INT split, gating the MLP+RF+GNB vote
// behind an RF stage 0 at the default 0.95 threshold must stay within
// 2 percentage points of the full ensemble's accuracy while exiting a
// substantial share of the test rows.
func TestCascadeTableIIIDelta(t *testing.T) {
	c := capture(t)
	train, test := c.INT.Split(0.1, 42)
	train = train.Subsample(40000, 42)
	scaler := &ml.StandardScaler{}
	Z, err := scaler.FitTransform(train.X)
	if err != nil {
		t.Fatal(err)
	}
	var models []ml.Classifier
	var stage0 ml.BatchProbaClassifier
	for _, spec := range StageTwoModels() {
		m := spec.New(42)
		if err := m.Fit(Z, train.Y); err != nil {
			t.Fatalf("fit %s: %v", spec.Name, err)
		}
		models = append(models, m)
		if spec.Name == "RF" {
			stage0 = m.(ml.BatchProbaClassifier)
		}
	}
	X := scaler.Transform(test.X)

	// Full ensemble: 2-of-3 majority vote, the Table VI quorum.
	_, ones := ml.EnsembleVotes(models, X)
	full := make([]int, len(X))
	for i, n := range ones {
		if n >= 2 {
			full[i] = 1
		}
	}

	// Cascade: RF stage 0 at the default threshold; fall-through rows
	// keep the full-ensemble verdict.
	cas := &ml.Cascade{Stages: []ml.CascadeStage{{Name: "RF", Model: stage0, Threshold: 0.95}}}
	stage, label := cas.TriageBatch(X, nil, nil)
	tiered := make([]int, len(X))
	exited := 0
	for i := range X {
		if stage[i] > 0 {
			tiered[i] = label[i]
			exited++
		} else {
			tiered[i] = full[i]
		}
	}

	accFull := ml.Score(test.Y, full).Accuracy
	accTiered := ml.Score(test.Y, tiered).Accuracy
	delta := (accTiered - accFull) * 100
	t.Logf("ensemble %.4f, cascade %.4f (%+.2f pp), exit %d/%d (%.1f%%)",
		accFull, accTiered, delta, exited, len(X), 100*float64(exited)/float64(len(X)))
	if math.Abs(delta) > 2.0 {
		t.Errorf("cascade accuracy moved %.2f pp from the ensemble, bound is ±2.0 pp", delta)
	}
	if float64(exited) < 0.5*float64(len(X)) {
		t.Errorf("cascade exited only %d/%d rows; the tier is not earning its keep", exited, len(X))
	}
}

// TestTriageModelResolution pins the name matching and the unknown-
// name error path.
func TestTriageModelResolution(t *testing.T) {
	cfg := LiveConfig{Triage: true, TriageModel: "NOPE"}
	cfg.fillDefaults()
	w := capture(t).Workload
	models, _, _, _, err := trainStageTwo(LiveConfig{Scale: "tiny", Seed: 42, PacketsPerType: 250,
		TrainPacketsPerType: 1000, ServiceTime: 1, PollInterval: 1, AttackUtilization: 0.4,
		VoteWindow: 3, ModelQuorum: 2, Ensemble: StageTwoModels()}, w)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := triageModelFor(cfg, models); err == nil || !strings.Contains(err.Error(), "NOPE") {
		t.Errorf("unknown triage model accepted: %v", err)
	}
	cfg.TriageModel = "GNB"
	m, err := triageModelFor(cfg, models)
	if err != nil || m == nil || m.Name() != "GNB" {
		t.Errorf("triageModelFor(GNB) = %v, %v", m, err)
	}
	cfg.Triage = false
	if m, err := triageModelFor(cfg, models); m != nil || err != nil {
		t.Errorf("triage off should resolve to nil, got %v, %v", m, err)
	}
}

// TestTriageSweepTiny smoke-tests the sweep grid end to end at a
// single cell per axis and checks its invariants: baselines exit
// nothing, triage cells report exit rates in [0, 1], and the
// formatter renders one line per cell.
func TestTriageSweepTiny(t *testing.T) {
	sweep, err := RunTriageSweep(TriageSweepConfig{
		Live:        LiveConfig{Scale: "tiny", Seed: 42, PacketsPerType: 200},
		BenignFracs: []float64{0.8},
		Thresholds:  []float64{0.95},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(sweep.Cells) != 2 {
		t.Fatalf("cells = %d, want 2 (baseline + one threshold)", len(sweep.Cells))
	}
	base, on := sweep.Cells[0], sweep.Cells[1]
	if base.Threshold != 0 || base.ExitRate != 0 {
		t.Errorf("baseline cell = %+v, want threshold 0 and no exits", base)
	}
	if on.Rows == 0 || on.ExitRate < 0 || on.ExitRate > 1 {
		t.Errorf("triage cell = %+v", on)
	}
	out := FormatTriageSweep(sweep)
	if lines := strings.Count(out, "\n"); lines != 4 {
		t.Errorf("formatted sweep has %d lines, want 4 (title + header + 2 cells):\n%s", lines, out)
	}
}
