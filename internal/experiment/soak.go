package experiment

import (
	"fmt"
	"math/rand"
	"strings"
	"time"

	"github.com/amlight/intddos/internal/core"
	"github.com/amlight/intddos/internal/fault"
	"github.com/amlight/intddos/internal/ml"
	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/telemetry"
	"github.com/amlight/intddos/internal/testbed"
	"github.com/amlight/intddos/internal/traffic"
)

// SoakConfig parameterizes a long-running resilience run: the live
// pipeline fed for several passes over the diurnal workload's INT
// reports, with the report wire impaired (netem), the feed scrambled
// (duplicates, bounded reordering, stale stragglers), and a fault
// schedule firing inside the pipeline — all deterministic under the
// seeds.
type SoakConfig struct {
	Scale string
	Seed  int64
	// Passes is how many times the workload's reports replay through
	// the pipeline (default 3). Each pass offsets the sequence space
	// far enough that the dedup tracker re-seeds cleanly, as a
	// restarted exporter would.
	Passes int
	// PacketsPerType bounds each pass (default 500 reports per flow
	// type).
	PacketsPerType int

	// Netem is the sub-clause impairment for the agent→collector
	// report wire during materialization (default
	// "loss=1%,dup=0.1%,delay=20us,jitter=40us"; "-" disables).
	Netem     string
	NetemSeed int64

	// FaultSpec fires inside the pipeline (default
	// "drop=0.005,store.err=0.02"; "-" disables). FaultSeed seeds it.
	FaultSpec string
	FaultSeed int64

	// DedupWindow is the pipeline's per-source window (default 16).
	DedupWindow int
	// Shards/Workers size the pipeline (defaults 4 and 2).
	Shards  int
	Workers int

	// MaxAccuracyLossPP is the soak invariant: the scrambled run's
	// decision accuracy may trail the clean run's by at most this many
	// percentage points (default 10).
	MaxAccuracyLossPP float64
}

// SoakResult summarizes the run and its two closure invariants.
type SoakResult struct {
	Ensemble []string
	Passes   int

	// Report ledger (the soak pipeline).
	Reports, Duplicates, Stale, Reordered, SeqGaps int64
	FaultDrops                                     int64
	Snapshots, Polled, Decided, Shed, Abandoned    int64

	// ReportLedgerClosed: every report is a suppression, a fault
	// drop, or an accepted ingest. PipelineClosed: every polled record
	// is a decision, a shed, or a reasoned abandonment.
	ReportLedgerClosed bool
	PipelineClosed     bool

	// LinkStats is the materialization wire's impairment ledger.
	LinkStats map[string]netsim.ImpairStats

	// Accuracy of the scrambled soak vs an unimpaired single-pass
	// feed of the same pipeline configuration.
	CleanAccuracy float64
	SoakAccuracy  float64
	DeltaPP       float64

	Health       string
	FaultSummary string
}

// soakScrambler injects feed-side adversity deterministically: a
// bounded reorder buffer, immediate duplicate re-emissions, and deep
// stale re-emissions from a history ring.
type soakScrambler struct {
	rng     *rand.Rand
	window  []*telemetry.Report
	history []*telemetry.Report
	emit    func(*telemetry.Report)
}

func (s *soakScrambler) feed(r *telemetry.Report) {
	s.window = append(s.window, r)
	if len(s.window) < 4 {
		return
	}
	i := s.rng.Intn(len(s.window))
	out := s.window[i]
	s.window = append(s.window[:i], s.window[i+1:]...)
	s.out(out)
}

func (s *soakScrambler) out(r *telemetry.Report) {
	s.emit(r)
	s.history = append(s.history, r)
	if len(s.history) > 64 {
		s.history = s.history[1:]
	}
	switch roll := s.rng.Float64(); {
	case roll < 0.02: // duplicate: same report again, back to back
		s.emit(r)
	case roll < 0.04 && len(s.history) == 64: // stale straggler from deep history
		s.emit(s.history[0])
	}
}

func (s *soakScrambler) flush() {
	for len(s.window) > 0 {
		i := s.rng.Intn(len(s.window))
		out := s.window[i]
		s.window = append(s.window[:i], s.window[i+1:]...)
		s.out(out)
	}
}

// RunSoak trains the stage-2 ensemble once, then drives two pipelines
// with it: a clean single-pass baseline, and the soak — several
// passes of netem-impaired, feed-scrambled reports under an internal
// fault schedule — asserting that accounting still closes and
// accuracy degrades gracefully.
func RunSoak(cfg SoakConfig) (*SoakResult, error) {
	if cfg.Passes <= 0 {
		cfg.Passes = 3
	}
	if cfg.PacketsPerType <= 0 {
		cfg.PacketsPerType = 500
	}
	switch cfg.Netem {
	case "":
		cfg.Netem = "loss=1%,dup=0.1%,delay=20us,jitter=40us"
	case "-":
		cfg.Netem = ""
	}
	switch cfg.FaultSpec {
	case "":
		cfg.FaultSpec = "drop=0.005,store.err=0.02"
	case "-":
		cfg.FaultSpec = ""
	}
	if cfg.DedupWindow <= 0 {
		cfg.DedupWindow = 16
	}
	if cfg.Shards == 0 {
		cfg.Shards = 4
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	if cfg.MaxAccuracyLossPP <= 0 {
		cfg.MaxAccuracyLossPP = 10
	}

	lcfg := LiveConfig{Scale: cfg.Scale, Seed: cfg.Seed, PacketsPerType: cfg.PacketsPerType}
	lcfg.fillDefaults()
	w := traffic.Build(traffic.ConfigForScale(cfg.Scale, cfg.Seed))
	models, scaler, names, _, err := trainStageTwo(lcfg, w)
	if err != nil {
		return nil, err
	}

	maxReports := (len(traffic.AttackTypes) + 1) * cfg.PacketsPerType
	cleanReports, _, err := soakMaterialize(w, maxReports, "", 0)
	if err != nil {
		return nil, err
	}
	impReports, linkStats, err := soakMaterialize(w, maxReports, cfg.Netem, cfg.NetemSeed)
	if err != nil {
		return nil, err
	}

	res := &SoakResult{Ensemble: names, Passes: cfg.Passes, LinkStats: linkStats}

	// Clean baseline: one unimpaired pass, no scrambling, no faults.
	res.CleanAccuracy, _, err = soakFeed(models, scaler, cfg, nil, func(emit func(*telemetry.Report)) {
		for _, r := range cleanReports {
			emit(r)
		}
	})
	if err != nil {
		return nil, err
	}

	// The soak: Passes × impaired reports, scrambled, under faults.
	injector, err := fault.Parse(cfg.FaultSpec, cfg.FaultSeed)
	if err != nil {
		return nil, err
	}
	var live *core.Live
	res.SoakAccuracy, live, err = soakFeed(models, scaler, cfg, injector, func(emit func(*telemetry.Report)) {
		sc := &soakScrambler{rng: rand.New(rand.NewSource(cfg.Seed + 7)), emit: emit}
		for pass := 0; pass < cfg.Passes; pass++ {
			// Each pass jumps the sequence space like a restarted
			// exporter; the dedup tracker absorbs it as a stream reset.
			offset := uint64(pass) << 32
			for _, r := range impReports {
				r2 := *r
				r2.Seq += offset
				sc.feed(&r2)
			}
			sc.flush()
		}
	})
	if err != nil {
		return nil, err
	}
	res.Reports = live.Reports.Load()
	res.Duplicates = live.Duplicates.Load()
	res.Stale = live.StaleReps.Load()
	res.Reordered = live.Reordered.Load()
	res.SeqGaps = live.SeqGaps.Load()
	res.FaultDrops = injector.SiteCount(fault.SiteDrop)
	res.Snapshots = live.Snapshots.Load()
	res.Polled = live.Polled.Load()
	res.Decided = int64(live.DecisionCount())
	res.Shed = live.Shed.Load()
	res.Abandoned = live.Abandoned.Load()
	res.Health = live.Health().String()
	res.FaultSummary = injector.Summary()
	res.ReportLedgerClosed = res.Reports ==
		res.Duplicates+res.Stale+res.FaultDrops+res.Snapshots
	res.PipelineClosed = res.Polled == res.Decided+res.Shed+res.Abandoned
	res.DeltaPP = (res.SoakAccuracy - res.CleanAccuracy) * 100
	return res, nil
}

// soakMaterialize replays the workload through the testbed (optionally
// netem-impaired on the report wire) and returns the sink's reports.
func soakMaterialize(w *traffic.Workload, maxReports int, netem string, netemSeed int64) ([]*telemetry.Report, map[string]netsim.ImpairStats, error) {
	tcfg := testbed.Config{NetemSeed: netemSeed}
	if netem != "" {
		spec, err := fault.ParseNetem(
			fmt.Sprintf("netem[link=%s]:%s", testbed.LinkAgentCollector, netem))
		if err != nil {
			return nil, nil, err
		}
		tcfg.Netem = spec
	}
	tb := testbed.New(tcfg)
	var reports []*telemetry.Report
	tb.Collector.OnReport = func(r *telemetry.Report, _ netsim.Time) {
		if len(reports) < maxReports {
			reports = append(reports, r)
		}
	}
	rp := tb.Replayer(w.Records)
	rp.MaxPackets = maxReports
	rp.Start()
	tb.Run()
	if len(reports) == 0 {
		return nil, nil, fmt.Errorf("soak: no INT reports collected")
	}
	return reports, tb.ImpairedStats(), nil
}

// soakFeed runs one pipeline configuration over the feed at wall-clock
// pace, settles it, and returns its decision accuracy against ground
// truth plus the (stopped) pipeline for ledger inspection.
func soakFeed(models []ml.Classifier, scaler *ml.StandardScaler, cfg SoakConfig, injector *fault.Injector, feed func(emit func(*telemetry.Report))) (float64, *core.Live, error) {
	live, err := core.NewLive(core.LiveConfig{
		Models:               models,
		Scaler:               scaler,
		Shards:               cfg.Shards,
		Workers:              cfg.Workers,
		Fault:                injector,
		DedupWindow:          cfg.DedupWindow,
		WorkerRestartBackoff: time.Millisecond,
		StoreRetryBackoff:    200 * time.Microsecond,
	})
	if err != nil {
		return 0, nil, err
	}
	live.Start()
	fed := 0
	feed(func(r *telemetry.Report) {
		live.HandleReport(r)
		if fed++; fed%128 == 127 {
			time.Sleep(time.Millisecond) // pace so pollers keep up
		}
	})
	// Settle: ingest backlog drained, every snapshot polled or
	// store-dropped, every polled record resolved — bounded, because a
	// soak must not hang.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if live.IngestBacklog() == 0 &&
			live.Polled.Load()+live.StoreDropped.Load() >= live.Snapshots.Load() &&
			live.Polled.Load() == int64(live.DecisionCount())+live.Shed.Load()+live.Abandoned.Load() {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	live.Stop()
	decs := live.Decisions()
	if len(decs) == 0 {
		return 0, nil, fmt.Errorf("soak: pipeline produced no decisions")
	}
	correct := 0
	for _, d := range decs {
		if d.Correct() {
			correct++
		}
	}
	return float64(correct) / float64(len(decs)), live, nil
}

// FormatSoak renders a soak run's summary.
func FormatSoak(r *SoakResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "SOAK RUN: ensemble %s, %d passes\n", strings.Join(r.Ensemble, "+"), r.Passes)
	for name, ls := range r.LinkStats {
		fmt.Fprintf(&b, "  wire %s: sent=%d delivered=%d lost=%d dup=%d reordered=%d\n",
			name, ls.Sent, ls.Delivered, ls.Lost, ls.Duplicated, ls.Reordered)
	}
	fmt.Fprintf(&b, "  reports=%d dup=%d stale=%d reordered=%d gaps=%d fault_drops=%d snapshots=%d\n",
		r.Reports, r.Duplicates, r.Stale, r.Reordered, r.SeqGaps, r.FaultDrops, r.Snapshots)
	fmt.Fprintf(&b, "  polled=%d decided=%d shed=%d abandoned=%d\n", r.Polled, r.Decided, r.Shed, r.Abandoned)
	closed := func(ok bool) string {
		if ok {
			return "CLOSED"
		}
		return "LEAK"
	}
	fmt.Fprintf(&b, "  report ledger: %s (reports == dup + stale + fault drops + snapshots)\n",
		closed(r.ReportLedgerClosed))
	fmt.Fprintf(&b, "  pipeline ledger: %s (polled == decided + shed + abandoned)\n",
		closed(r.PipelineClosed))
	fmt.Fprintf(&b, "  accuracy: clean=%.2f%% soak=%.2f%% (Δ %+.2f pp)\n",
		r.CleanAccuracy*100, r.SoakAccuracy*100, r.DeltaPP)
	fmt.Fprintf(&b, "  faults fired: %s; final health: %s\n", r.FaultSummary, r.Health)
	return b.String()
}
