package experiment

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync/atomic"
	"time"

	"github.com/amlight/intddos/internal/core"
	"github.com/amlight/intddos/internal/fault"
	"github.com/amlight/intddos/internal/ml"
	"github.com/amlight/intddos/internal/ml/bayes"
	"github.com/amlight/intddos/internal/ml/forest"
	"github.com/amlight/intddos/internal/ml/knn"
	"github.com/amlight/intddos/internal/ml/neural"
	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/telemetry"
	"github.com/amlight/intddos/internal/testbed"
	"github.com/amlight/intddos/internal/traffic"
)

// Every ensemble member reports its trained input width, so the live
// runtime can reject a model/scaler bundle whose shapes disagree at
// construction instead of panicking a worker at the first batch.
var (
	_ ml.FeatureCounter = (*forest.Forest)(nil)
	_ ml.FeatureCounter = (*bayes.GaussianNB)(nil)
	_ ml.FeatureCounter = (*knn.KNN)(nil)
	_ ml.FeatureCounter = (*neural.Network)(nil)
)

// ChaosConfig parameterizes a chaos replay: the Table VI training
// setup, driven through the wall-clock runtime under a deterministic
// fault schedule.
type ChaosConfig struct {
	Scale string
	Seed  int64
	// PacketsPerType bounds the replay (default 1000 INT reports per
	// flow type).
	PacketsPerType int
	// FaultSpec is the schedule, in the fault clause grammar
	// ("drop=0.01,store.err=0.1,panic=0.02", ...).
	FaultSpec string
	// FaultSeed seeds the schedule for deterministic replay.
	FaultSeed int64
	// Shards/Workers size the pipeline (defaults 4 and 2).
	Shards  int
	Workers int
	// DrainOnStop selects the shutdown policy under test.
	DrainOnStop bool
	// CheckpointDir, when set, makes the run crash-recoverable: the
	// pipeline resumes from the newest checkpoint in the directory and
	// snapshots into it every CheckpointEvery (plus once on Stop when
	// periodic checkpointing is off). CheckpointFullEvery sets the
	// full-snapshot cadence — every Nth checkpoint is full, the rest
	// incremental deltas (0/1: every checkpoint full).
	CheckpointDir       string
	CheckpointEvery     time.Duration
	CheckpointFullEvery int

	// DiagBundleDir, when set, captures a diagnostic bundle (profiles,
	// metrics, health, events — see obs.Registry.WriteBundle) into the
	// directory when the run fails its accounting invariant, so a
	// flaky chaos failure leaves its evidence behind.
	DiagBundleDir string
}

// ChaosResult summarizes how the live pipeline degraded — and what it
// still delivered — under an injected fault schedule.
type ChaosResult struct {
	Ensemble []string

	Reports, Snapshots, Polled int64
	Decided, Shed, Abandoned   int64
	AbandonedByReason          map[string]int64

	StoreRetries, StoreDropped    int64
	WorkerRestarts, ModelFailures int64
	Health                        string
	Transitions                   []string
	FaultSummary                  string
	TaintedFlows                  int
	// Checkpoints counts snapshots written; Restored describes the
	// checkpoint the run resumed from (nil on a fresh boot).
	Checkpoints int64
	Restored    *core.RestoreSummary
	// AccountingClosed is the chaos invariant: every polled record
	// ended as a decision, a shed, or a reasoned abandonment.
	AccountingClosed bool
	// DiagBundle is the path of the diagnostic bundle captured when
	// the invariant failed (empty otherwise).
	DiagBundle string
}

// RunChaos trains the stage-2 ensemble, replays the mixed workload's
// INT reports through the wall-clock runtime under the given fault
// schedule, and reports the degradation summary. With an empty
// FaultSpec it is a clean run (useful as the comparison baseline).
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	if cfg.PacketsPerType <= 0 {
		cfg.PacketsPerType = 1000
	}
	if cfg.Shards == 0 {
		cfg.Shards = 4
	}
	if cfg.Workers == 0 {
		cfg.Workers = 2
	}
	injector, err := fault.Parse(cfg.FaultSpec, cfg.FaultSeed)
	if err != nil {
		return nil, err
	}

	lcfg := LiveConfig{Scale: cfg.Scale, Seed: cfg.Seed, PacketsPerType: cfg.PacketsPerType}
	lcfg.fillDefaults()
	w := traffic.Build(traffic.ConfigForScale(cfg.Scale, cfg.Seed))
	models, scaler, names, _, err := trainStageTwo(lcfg, w)
	if err != nil {
		return nil, err
	}

	// Materialize the sink's INT reports once; the live loop replays
	// them at wall-clock pace.
	maxReports := (len(traffic.AttackTypes) + 1) * cfg.PacketsPerType
	var reports []*telemetry.Report
	tb := testbed.New(testbed.Config{})
	tb.Collector.OnReport = func(r *telemetry.Report, _ netsim.Time) {
		if len(reports) < maxReports {
			reports = append(reports, r)
		}
	}
	rp := tb.Replayer(w.Records)
	rp.MaxPackets = maxReports
	rp.Start()
	tb.Run()
	if len(reports) == 0 {
		return nil, fmt.Errorf("chaos: no INT reports collected")
	}

	live, err := core.NewLive(core.LiveConfig{
		Models:               models,
		Scaler:               scaler,
		Shards:               cfg.Shards,
		Workers:              cfg.Workers,
		Fault:                injector,
		DrainOnStop:          cfg.DrainOnStop,
		WorkerRestartBackoff: time.Millisecond,
		StoreRetryBackoff:    200 * time.Microsecond,
		CheckpointDir:        cfg.CheckpointDir,
		CheckpointEvery:      cfg.CheckpointEvery,
		CheckpointFullEvery:  cfg.CheckpointFullEvery,
	})
	if err != nil {
		return nil, err
	}
	live.Start()
	for i, r := range reports {
		live.HandleReport(r)
		if i%128 == 127 {
			time.Sleep(time.Millisecond) // pace so pollers keep up
		}
	}
	// Settle: every snapshot polled or dropped, every polled record
	// resolved — bounded, because chaos runs must not hang. A restored
	// run additionally drains the pre-crash journal backlog, which the
	// Snapshots bound does not see.
	deadline := time.Now().Add(30 * time.Second)
	for time.Now().Before(deadline) {
		if live.Polled.Load()+live.StoreDropped.Load() >= live.Snapshots.Load() &&
			(live.Restore() == nil || live.DB.JournalLen() == 0) &&
			live.Polled.Load() == int64(live.DecisionCount())+live.Shed.Load()+live.Abandoned.Load() {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if cfg.CheckpointDir != "" && cfg.CheckpointEvery <= 0 {
		// No periodic checkpointer: take the final snapshot explicitly
		// so a follow-up run resumes from the end of this one.
		if _, _, err := live.WriteCheckpoint(); err != nil {
			return nil, err
		}
	}
	live.Stop()

	res := &ChaosResult{
		Ensemble:          names,
		Reports:           live.Reports.Load(),
		Snapshots:         live.Snapshots.Load(),
		Polled:            live.Polled.Load(),
		Decided:           int64(live.DecisionCount()),
		Shed:              live.Shed.Load(),
		Abandoned:         live.Abandoned.Load(),
		AbandonedByReason: live.AbandonedByReason(),
		StoreRetries:      live.StoreRetries.Load(),
		StoreDropped:      live.StoreDropped.Load(),
		WorkerRestarts:    live.WorkerRestarts.Load(),
		ModelFailures:     live.ModelFailures.Load(),
		Health:            live.Health().String(),
		Transitions:       live.HealthTransitions(),
		FaultSummary:      injector.Summary(),
		TaintedFlows:      injector.TaintCount(),
		Checkpoints:       live.Checkpoints.Load(),
		Restored:          live.Restore(),
	}
	res.AccountingClosed = res.Polled == res.Decided+res.Shed+res.Abandoned
	if !res.AccountingClosed && cfg.DiagBundleDir != "" {
		if path, err := writeDiagBundle(cfg.DiagBundleDir, live); err == nil {
			res.DiagBundle = path
		}
	}
	return res, nil
}

// writeDiagBundle captures the pipeline's diagnostic bundle into dir,
// returning the file written. Filenames carry the pid and a sequence
// suffix instead of a timestamp so repeated failures in one process
// never overwrite each other.
func writeDiagBundle(dir string, live *core.Live) (string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return "", err
	}
	seq := diagBundleSeq.Add(1)
	path := filepath.Join(dir, fmt.Sprintf("chaos-%d-%03d.tar.gz", os.Getpid(), seq))
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	if err := live.Obs().WriteBundle(f); err != nil {
		f.Close()
		os.Remove(path)
		return "", err
	}
	return path, f.Close()
}

var diagBundleSeq atomic.Int64

// FormatChaos renders a chaos run's degradation summary.
func FormatChaos(r *ChaosResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "CHAOS RUN: ensemble %s\n", strings.Join(r.Ensemble, "+"))
	fmt.Fprintf(&b, "  reports=%d snapshots=%d polled=%d\n", r.Reports, r.Snapshots, r.Polled)
	fmt.Fprintf(&b, "  decided=%d shed=%d abandoned=%d", r.Decided, r.Shed, r.Abandoned)
	if len(r.AbandonedByReason) > 0 {
		reasons := make([]string, 0, len(r.AbandonedByReason))
		for reason := range r.AbandonedByReason {
			reasons = append(reasons, reason)
		}
		sort.Strings(reasons)
		b.WriteString(" (")
		for i, reason := range reasons {
			if i > 0 {
				b.WriteString(", ")
			}
			fmt.Fprintf(&b, "%s=%d", reason, r.AbandonedByReason[reason])
		}
		b.WriteString(")")
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "  store: retries=%d dropped=%d; workers: restarts=%d; models: failures=%d\n",
		r.StoreRetries, r.StoreDropped, r.WorkerRestarts, r.ModelFailures)
	fmt.Fprintf(&b, "  faults fired: %s; tainted flows: %d\n", r.FaultSummary, r.TaintedFlows)
	if rs := r.Restored; rs != nil {
		fmt.Fprintf(&b, "  restored: seq=%d flows=%d store_flows=%d journal_pending=%d windows=%d predictions=%d\n",
			rs.Seq, rs.Flows, rs.StoreFlows, rs.JournalPending, rs.Windows, rs.Predictions)
	}
	if r.Checkpoints > 0 {
		fmt.Fprintf(&b, "  checkpoints written: %d\n", r.Checkpoints)
	}
	fmt.Fprintf(&b, "  final health: %s\n", r.Health)
	for _, tr := range r.Transitions {
		fmt.Fprintf(&b, "    transition: %s\n", tr)
	}
	if r.AccountingClosed {
		b.WriteString("  accounting: CLOSED (polled == decided + shed + abandoned)\n")
	} else {
		fmt.Fprintf(&b, "  accounting: LEAK (%d polled != %d decided + %d shed + %d abandoned)\n",
			r.Polled, r.Decided, r.Shed, r.Abandoned)
	}
	if r.DiagBundle != "" {
		fmt.Fprintf(&b, "  diagnostic bundle: %s\n", r.DiagBundle)
	}
	return b.String()
}
