package experiment

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"github.com/amlight/intddos/internal/ml"
	"github.com/amlight/intddos/internal/netsim"
)

// CSV exports mirror the text renderings in machine-readable form so
// the tables and figure series can be re-plotted outside Go.

// WriteEvalCSV writes Table III/IV-style rows.
func WriteEvalCSV(w io.Writer, rows []EvalResult) error {
	cw := csv.NewWriter(w)
	cw.Write([]string{"data", "model", "accuracy", "recall", "precision", "f1", "train_rows", "test_rows"})
	for _, r := range rows {
		cw.Write([]string{
			r.Data, r.Model,
			f(r.Scores.Accuracy), f(r.Scores.Recall), f(r.Scores.Precision), f(r.Scores.F1),
			itoa(r.TrainRows), itoa(r.TestRows),
		})
	}
	cw.Flush()
	return cw.Error()
}

// WriteTableICSV writes the episode schedule.
func WriteTableICSV(w io.Writer, rows []TableIRow) error {
	cw := csv.NewWriter(w)
	cw.Write([]string{"attack", "start_ns", "end_ns", "packets"})
	for _, r := range rows {
		cw.Write([]string{r.Type, itoa64(int64(r.Start)), itoa64(int64(r.End)), itoa(r.Packets)})
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure5CSV writes the timeline buckets for both sources.
func WriteFigure5CSV(w io.Writer, fig *Figure5) error {
	cw := csv.NewWriter(w)
	cw.Write([]string{"source", "bucket_start_ns", "rows", "truth_frac", "pred_frac", "active_episode"})
	width := fig.Horizon / netsim.Time(fig.Buckets)
	emit := func(src string, points []TimelinePoint) {
		for _, p := range points {
			mid := p.T + width/2
			cw.Write([]string{
				src, itoa64(int64(p.T)), itoa(p.Rows),
				f(p.Truth), f(p.Pred), fig.Episodes.ActiveAt(mid),
			})
		}
	}
	emit("int", fig.INT)
	emit("sflow", fig.SFlow)
	cw.Flush()
	return cw.Error()
}

// WriteTableVICSV writes the live-detection summary.
func WriteTableVICSV(w io.Writer, res *LiveResult) error {
	cw := csv.NewWriter(w)
	cw.Write([]string{"type", "accuracy", "misclassified", "total", "avg_pred_s", "max_pred_s", "p99_pred_s"})
	for _, r := range res.Rows {
		cw.Write([]string{
			r.Type, f(r.Accuracy), itoa(r.Misclassified), itoa(r.Total),
			f(r.AvgLatency.Seconds()), f(r.MaxLatency.Seconds()), f(r.P99Latency.Seconds()),
		})
	}
	cw.Flush()
	return cw.Error()
}

// WriteFigure7CSV writes the per-decision series for one flow type.
func WriteFigure7CSV(w io.Writer, res *LiveResult, typ string) error {
	cw := csv.NewWriter(w)
	cw.Write([]string{"index", "flow_seq", "label", "truth", "correct", "latency_ns"})
	for i, d := range res.Decisions[typ] {
		truth := 0
		if d.Truth {
			truth = 1
		}
		cw.Write([]string{
			itoa(i), itoa(d.Seq), itoa(d.Label), itoa(truth),
			fmt.Sprintf("%t", d.Correct()), itoa64(int64(d.Latency)),
		})
	}
	cw.Flush()
	return cw.Error()
}

// WriteScalingCSV writes the load sweep.
func WriteScalingCSV(w io.Writer, points []ScalingPoint) error {
	cw := csv.NewWriter(w)
	cw.Write([]string{"offered_pps", "decided", "shed", "max_backlog", "avg_pred_ns", "p99_pred_ns", "max_pred_ns", "throughput_pps"})
	for _, p := range points {
		cw.Write([]string{
			f(p.OfferedPPS), itoa(p.Decisions), itoa(p.Dropped), itoa(p.MaxBacklog),
			itoa64(int64(p.AvgLatency)), itoa64(int64(p.P99Latency)), itoa64(int64(p.MaxLatency)),
			f(p.ThroughputPPS),
		})
	}
	cw.Flush()
	return cw.Error()
}

// WriteDatasetCSV exports a feature dataset (header row of feature
// names plus label/type/time columns) for external ML tooling.
func WriteDatasetCSV(w io.Writer, d *ml.Dataset) error {
	cw := csv.NewWriter(w)
	header := append(append([]string{}, d.Names...), "label", "attack_type", "at_ns")
	cw.Write(header)
	row := make([]string, 0, len(header))
	for i := range d.X {
		row = row[:0]
		for _, v := range d.X[i] {
			row = append(row, f(v))
		}
		typ, at := "", int64(0)
		if i < len(d.Meta) {
			typ, at = d.Meta[i].Type, d.Meta[i].At
		}
		row = append(row, itoa(d.Y[i]), typ, itoa64(at))
		cw.Write(row)
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile creates path and runs the writer against it.
func WriteCSVFile(dir, name string, fn func(io.Writer) error) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	fp, err := os.Create(filepath.Join(dir, name))
	if err != nil {
		return err
	}
	if err := fn(fp); err != nil {
		fp.Close()
		return err
	}
	return fp.Close()
}

func f(v float64) string    { return fmt.Sprintf("%g", v) }
func itoa(v int) string     { return fmt.Sprintf("%d", v) }
func itoa64(v int64) string { return fmt.Sprintf("%d", v) }
