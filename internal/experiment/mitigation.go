package experiment

import (
	"fmt"
	"strings"

	"github.com/amlight/intddos/internal/core"
	"github.com/amlight/intddos/internal/mitigate"
	"github.com/amlight/intddos/internal/ml"
	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/testbed"
	"github.com/amlight/intddos/internal/trace"
	"github.com/amlight/intddos/internal/traffic"
)

// MitigationResult summarizes one attack replay with the mitigation
// loop closed: detection decisions compile into ACL drop rules in the
// data plane, and the attack's remaining reach is measured.
type MitigationResult struct {
	AttackType      string
	TotalPackets    int
	Delivered       int // attack packets that reached the target
	DroppedByACL    int
	Suppression     float64 // fraction of the attack discarded in-network
	RulesInstalled  int
	Escalations     int
	TimeToFirstRule netsim.Time // from first attack packet
}

// RunMitigation closes the loop the paper leaves as future work: the
// mechanism's decisions feed the flow-rule generator, generated rules
// are compiled into the switch's ingress ACL, and each attack type's
// suppression is measured. The expected shape: single-source attacks
// (scans, SlowLoris) are cut off after source escalation, while
// spoofed floods defeat per-flow rules — the classic limitation that
// motivates upstream filtering.
func RunMitigation(cfg LiveConfig) ([]MitigationResult, error) {
	cfg.fillDefaults()
	w := traffic.Build(traffic.ConfigForScale(cfg.Scale, cfg.Seed))
	models, scaler, _, _, err := trainStageTwo(cfg, w)
	if err != nil {
		return nil, err
	}

	var out []MitigationResult
	for _, typ := range traffic.AttackTypes {
		recs := recordsOfType(w, typ, cfg.PacketsPerType, true)
		if len(recs) == 0 {
			return nil, fmt.Errorf("mitigation: no %s records", typ)
		}
		res, err := runMitigationType(typ, recs, replaySpeed(typ, recs, cfg), models, scaler, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// runMitigationType replays one attack with the ACL loop armed.
func runMitigationType(typ string, recs []trace.Record, speed float64, models []ml.Classifier, scaler *ml.StandardScaler, cfg LiveConfig) (MitigationResult, error) {
	tb := testbed.New(testbed.Config{})
	// Interpose the ACL ahead of the testbed's forwarding.
	aclFwd := netsim.NewACLForwarder(tb.Eng, tb.Switch.Forwarder)
	tb.Switch.Forwarder = aclFwd

	mech, err := core.New(tb.Eng, core.Config{
		Models:       models,
		Scaler:       scaler,
		PollInterval: cfg.PollInterval,
		ServiceTime:  cfg.ServiceTime,
		ModelQuorum:  cfg.ModelQuorum,
		VoteWindow:   cfg.VoteWindow,
	})
	if err != nil {
		return MitigationResult{}, err
	}
	tb.Collector.OnReport = mech.HandleReport

	gen := mitigate.NewGenerator(mitigate.Config{TTL: netsim.Time(1) << 50})
	var firstRule netsim.Time
	install := gen.InstallInto(aclFwd.ACL)
	mech.OnDecision = func(d core.Decision) {
		before := aclFwd.ACL.Installed
		install(d)
		if firstRule == 0 && aclFwd.ACL.Installed > before {
			firstRule = tb.Eng.Now()
		}
	}
	mech.Start()

	attackDelivered := 0
	tb.Target.OnReceive = func(p *netsim.Packet) {
		if p.Label {
			attackDelivered++
		}
	}

	rp := tb.Replayer(recs)
	rp.Speed = speed
	rp.MaxPackets = cfg.PacketsPerType
	rp.Start()
	deadline := netsim.Time(float64(recs[len(recs)-1].At)/speed) +
		netsim.Time(len(recs))*cfg.ServiceTime*4 + 2*netsim.Second
	for tb.Eng.Now() < deadline && rp.Sent() < len(recs) {
		tb.RunUntil(tb.Eng.Now() + 100*netsim.Millisecond)
	}
	tb.RunUntil(tb.Eng.Now() + 2*netsim.Second) // drain

	res := MitigationResult{
		AttackType:     typ,
		TotalPackets:   rp.Sent(),
		Delivered:      attackDelivered,
		DroppedByACL:   aclFwd.Dropped,
		RulesInstalled: gen.Generated,
		Escalations:    gen.Escalated,
	}
	if res.TotalPackets > 0 {
		res.Suppression = float64(res.DroppedByACL) / float64(res.TotalPackets)
	}
	if firstRule > 0 && len(recs) > 0 {
		res.TimeToFirstRule = firstRule
	}
	return res, nil
}

// FormatMitigation renders the suppression summary.
func FormatMitigation(rows []MitigationResult) string {
	var b strings.Builder
	b.WriteString("MITIGATION (extension): detection decisions compiled into data-plane drop rules\n")
	fmt.Fprintf(&b, "%-10s %9s %10s %10s %12s %7s %12s %16s\n",
		"Attack", "Packets", "Delivered", "ACL-drop", "Suppression", "Rules", "Escalations", "FirstRule")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-10s %9d %10d %10d %11.1f%% %7d %12d %16v\n",
			r.AttackType, r.TotalPackets, r.Delivered, r.DroppedByACL,
			100*r.Suppression, r.RulesInstalled, r.Escalations, r.TimeToFirstRule)
	}
	return b.String()
}
