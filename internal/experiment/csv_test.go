package experiment

import (
	"bytes"
	"encoding/csv"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"github.com/amlight/intddos/internal/core"
	"github.com/amlight/intddos/internal/ml"
	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/traffic"
)

// parseCSV decodes and sanity-checks a rendered CSV.
func parseCSV(t *testing.T, buf *bytes.Buffer) [][]string {
	t.Helper()
	rows, err := csv.NewReader(buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 2 {
		t.Fatalf("csv has %d rows", len(rows))
	}
	return rows
}

func TestWriteEvalCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteEvalCSV(&buf, []EvalResult{
		{Data: "INT", Model: "RF", Scores: ml.Scores{Accuracy: 0.99, F1: 0.98}, TrainRows: 10, TestRows: 5},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if rows[0][0] != "data" || rows[1][0] != "INT" || rows[1][1] != "RF" {
		t.Errorf("rows = %v", rows)
	}
}

func TestWriteTableICSVAndFigure5CSV(t *testing.T) {
	c := capture(t)
	var buf bytes.Buffer
	if err := WriteTableICSV(&buf, RunTableI(c)); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 12 { // header + 11 episodes
		t.Errorf("table1 rows = %d", len(rows))
	}

	fig, err := RunFigure5(c, 60, 42)
	if err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := WriteFigure5CSV(&buf, fig); err != nil {
		t.Fatal(err)
	}
	rows = parseCSV(t, &buf)
	if len(rows) != 1+2*60 {
		t.Errorf("figure5 rows = %d, want 121", len(rows))
	}
	seen := map[string]bool{}
	for _, r := range rows[1:] {
		seen[r[0]] = true
	}
	if !seen["int"] || !seen["sflow"] {
		t.Errorf("sources = %v", seen)
	}
}

func TestWriteTableVIAndFigure7CSV(t *testing.T) {
	res := &LiveResult{
		Rows: []core.TypeResult{{Type: "benign", Total: 2, Accuracy: 1, AvgLatency: netsim.Second}},
		Decisions: map[string][]core.Decision{
			"benign": {{Label: 0, Truth: false, Latency: 5}, {Label: 1, Truth: false, Latency: 7, Seq: 1}},
		},
	}
	var buf bytes.Buffer
	if err := WriteTableVICSV(&buf, res); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if rows[1][0] != "benign" || rows[1][4] != "1" {
		t.Errorf("table6 rows = %v", rows)
	}
	buf.Reset()
	if err := WriteFigure7CSV(&buf, res, "benign"); err != nil {
		t.Fatal(err)
	}
	rows = parseCSV(t, &buf)
	if len(rows) != 3 {
		t.Fatalf("figure7 rows = %d", len(rows))
	}
	if rows[2][4] != "false" { // second decision is a false alarm
		t.Errorf("correctness column = %v", rows[2])
	}
}

func TestWriteScalingCSV(t *testing.T) {
	var buf bytes.Buffer
	err := WriteScalingCSV(&buf, []ScalingPoint{
		{OfferedPPS: 100, Decisions: 50, Dropped: 2, MaxBacklog: 9, AvgLatency: 10, ThroughputPPS: 49.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if rows[1][0] != "100" || rows[1][1] != "50" {
		t.Errorf("rows = %v", rows)
	}
}

func TestWriteDatasetCSV(t *testing.T) {
	d := &ml.Dataset{Names: []string{"a", "b"}}
	d.Append([]float64{1, 2}, 1, ml.RowMeta{At: 7, Type: traffic.SYNScan})
	d.Append([]float64{3, 4}, 0, ml.RowMeta{At: 9, Type: traffic.Benign})
	var buf bytes.Buffer
	if err := WriteDatasetCSV(&buf, d); err != nil {
		t.Fatal(err)
	}
	rows := parseCSV(t, &buf)
	if len(rows) != 3 || len(rows[0]) != 5 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[1][2] != "1" || rows[1][3] != traffic.SYNScan || rows[2][3] != traffic.Benign {
		t.Errorf("label/type columns = %v", rows)
	}
}

func TestWriteCSVFile(t *testing.T) {
	dir := filepath.Join(t.TempDir(), "nested", "out")
	err := WriteCSVFile(dir, "x.csv", func(w io.Writer) error {
		_, e := w.Write([]byte("a,b\n1,2\n"))
		return e
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(filepath.Join(dir, "x.csv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(got), "a,b") {
		t.Errorf("file = %q", got)
	}
}
