package experiment

import (
	"fmt"

	"github.com/amlight/intddos/internal/core"
	"github.com/amlight/intddos/internal/flow"
	"github.com/amlight/intddos/internal/ml"
	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/telemetry"
	"github.com/amlight/intddos/internal/testbed"
	"github.com/amlight/intddos/internal/trace"
	"github.com/amlight/intddos/internal/traffic"
)

// LiveConfig parameterizes the stage-2 automated-detection experiment
// (§IV-C → Table VI and Figure 7).
type LiveConfig struct {
	Scale string
	Seed  int64
	// PacketsPerType bounds each live replay, the paper's ≈2500
	// packets per flow type (default 2500).
	PacketsPerType int
	// TrainPacketsPerType bounds each type's training replay
	// (default 4×PacketsPerType).
	TrainPacketsPerType int
	// ServiceTime is the Prediction module's per-item cost (default
	// 10 ms, standing in for the paper's Python inference + IPC).
	ServiceTime netsim.Time
	// PollInterval is the CentralServer polling period (default 2 ms).
	PollInterval netsim.Time
	// VoteWindow overrides the last-N smoothing window (default 3,
	// §IV-C4); 1 disables smoothing for the ablation.
	VoteWindow int
	// ModelQuorum overrides the ensemble vote threshold (default 2).
	ModelQuorum int
	// Ensemble overrides the member set; nil selects StageTwoModels.
	Ensemble []ModelSpec
	// AttackUtilization paces scan/flood/SlowLoris replays so the
	// prediction queue runs at roughly this utilization (default 0.4),
	// mirroring the paper's intentionally lowered attack replay rates
	// (§V: "much lower packet rate levels ... to run experiments
	// smoothly"). Benign replays keep their captured density, which is
	// what drives the paper's large benign prediction times. The same
	// pacing is applied when building the training capture, exactly as
	// the paper pre-trains on data replayed through the testbed
	// (§IV-C2).
	AttackUtilization float64
	// Shards selects the mechanism's database layout: zero is the
	// paper's single-lock store, n >= 1 a ShardedDB with n shards.
	// Table VI is bit-identical between the two at n=1 — the golden
	// tests pin that.
	Shards int
	// PredictBatch sizes the Prediction module's scoring micro-batch:
	// up to this many queued records are standardized and voted in one
	// amortized ensemble call, while service completions still consume
	// one result per ServiceTime. Decisions, votes, and latencies are
	// identical at every batch size — the golden tests pin Table VI
	// byte-for-byte at 1 and 32. Zero or one is the paper-faithful
	// record-at-a-time default.
	PredictBatch int
	// Triage enables the tiered cascade: a count-min/entropy sketch
	// plus a single cheap stage-0 model early-exits confident records
	// before the full ensemble vote. Off (the default) is the exact
	// paper pipeline — the golden tests pin that byte-for-byte.
	Triage bool
	// TriageThreshold is the stage-0 confidence |2p-1| needed to
	// early-exit; zero resolves to core.DefaultTriageThreshold when
	// Triage is set. A negative value keeps the cascade wired in but
	// inert (every record falls through), which the property tests use
	// to pin the split/merge plumbing to the legacy path.
	TriageThreshold float64
	// TriageModel names the ensemble member serving stage 0 (matched
	// case-sensitively against the trained model names, e.g. "RF").
	// Empty selects RF: its vote-fraction probabilities are calibrated
	// enough to gate on, where GNB's saturate to 0/1 even on zero-day
	// attacks it has never seen.
	TriageModel string
}

// fillDefaults resolves zero-valued fields.
func (cfg *LiveConfig) fillDefaults() {
	if cfg.PacketsPerType <= 0 {
		cfg.PacketsPerType = 2500
	}
	if cfg.TrainPacketsPerType <= 0 {
		cfg.TrainPacketsPerType = 4 * cfg.PacketsPerType
	}
	if cfg.ServiceTime <= 0 {
		cfg.ServiceTime = 10 * netsim.Millisecond
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 2 * netsim.Millisecond
	}
	if cfg.AttackUtilization <= 0 {
		cfg.AttackUtilization = 0.4
	}
	if cfg.VoteWindow <= 0 {
		cfg.VoteWindow = 3
	}
	if cfg.ModelQuorum <= 0 {
		cfg.ModelQuorum = 2
	}
	if cfg.Ensemble == nil {
		cfg.Ensemble = StageTwoModels()
	}
	if cfg.ModelQuorum > len(cfg.Ensemble) {
		cfg.ModelQuorum = (len(cfg.Ensemble) + 1) / 2
	}
	if cfg.Triage {
		if cfg.TriageThreshold == 0 {
			cfg.TriageThreshold = core.DefaultTriageThreshold
		}
		if cfg.TriageModel == "" {
			cfg.TriageModel = "RF"
		}
	}
}

// LiveResult is the stage-2 outcome.
type LiveResult struct {
	// Rows is Table VI, sorted by type name.
	Rows []core.TypeResult
	// Decisions holds each replay's full decision log (Figure 7).
	Decisions map[string][]core.Decision
	// TrainRows is the ensemble's training-set size (SlowLoris held
	// out as the zero-day attack).
	TrainRows int
	// Ensemble lists the member model names.
	Ensemble []string
}

// RunTableVI trains the MLP+RF+GNB ensemble on testbed replays with
// SlowLoris held out, then replays each flow type live through the
// automated mechanism and reports per-type accuracy and prediction
// times.
func RunTableVI(cfg LiveConfig) (*LiveResult, error) {
	cfg.fillDefaults()
	w := traffic.Build(traffic.ConfigForScale(cfg.Scale, cfg.Seed))
	models, scaler, names, trainRows, err := trainStageTwo(cfg, w)
	if err != nil {
		return nil, err
	}

	result := &LiveResult{
		Decisions: make(map[string][]core.Decision),
		TrainRows: trainRows,
		Ensemble:  names,
	}

	// Live stage: replay each flow type through a fresh testbed +
	// mechanism, drawing test packets from the tail of the capture so
	// they are disjoint from the training replays where volume allows.
	types := append([]string{traffic.Benign}, traffic.AttackTypes...)
	var allRows []core.Decision
	for _, typ := range types {
		recs := recordsOfType(w, typ, cfg.PacketsPerType, true)
		if len(recs) == 0 {
			return nil, fmt.Errorf("table VI: no %s records in workload", typ)
		}
		decisions, err := replayLive(recs, replaySpeed(typ, recs, cfg), models, scaler, cfg)
		if err != nil {
			return nil, fmt.Errorf("table VI replay %s: %w", typ, err)
		}
		result.Decisions[typ] = decisions
		allRows = append(allRows, decisions...)
	}
	result.Rows = core.SummarizeByType(allRows)
	return result, nil
}

// trainStageTwo pre-trains the ensemble offline on testbed replays of
// each flow type except the zero-day SlowLoris, using the same
// per-type pacing the live runs will see (§IV-C2: the training set is
// itself produced by replaying captured data through the rig).
func trainStageTwo(cfg LiveConfig, w *traffic.Workload) (models []ml.Classifier, scaler *ml.StandardScaler, names []string, trainRows int, err error) {
	train := &ml.Dataset{Names: flow.INTFeatures().Names()}
	trainTypes := []string{traffic.Benign, traffic.SYNScan, traffic.UDPScan, traffic.SYNFlood}
	for _, typ := range trainTypes {
		recs := recordsOfType(w, typ, cfg.TrainPacketsPerType, false)
		if len(recs) == 0 {
			return nil, nil, nil, 0, fmt.Errorf("stage 2: no %s records to train on", typ)
		}
		collectPaced(recs, replaySpeed(typ, recs, cfg), train)
	}
	base := train.Subsample(40000, cfg.Seed)
	scaler = &ml.StandardScaler{}
	// One shared scaler, as the Prediction module loads a single set
	// of transformation coefficients.
	Z, err := scaler.FitTransform(base.X)
	if err != nil {
		return nil, nil, nil, 0, err
	}
	for _, spec := range cfg.Ensemble {
		model := spec.New(cfg.Seed)
		if err := model.Fit(Z, base.Y); err != nil {
			return nil, nil, nil, 0, fmt.Errorf("stage 2 fit %s: %w", spec.Name, err)
		}
		models = append(models, model)
		names = append(names, model.Name())
	}
	return models, scaler, names, base.Len(), nil
}

// recordsOfType extracts up to n records of one workload type,
// re-based to start at time zero. fromEnd takes the capture's tail
// instead of its head.
func recordsOfType(w *traffic.Workload, typ string, n int, fromEnd bool) []trace.Record {
	var all []trace.Record
	for i := range w.Records {
		if w.Records[i].AttackType == typ {
			all = append(all, w.Records[i])
		}
	}
	if len(all) == 0 {
		return nil
	}
	if n > len(all) {
		n = len(all)
	}
	var out []trace.Record
	if fromEnd {
		out = append(out, all[len(all)-n:]...)
	} else {
		out = append(out, all[:n]...)
	}
	base := out[0].At
	for i := range out {
		out[i].At -= base
	}
	return out
}

// replaySpeed picks the tcpreplay pacing per flow type: benign keeps
// its captured density; attack replays are slowed to the configured
// prediction-queue utilization, as the paper did (§V).
func replaySpeed(typ string, recs []trace.Record, cfg LiveConfig) float64 {
	if typ == traffic.Benign {
		return 1.0
	}
	natural := recs[len(recs)-1].At - recs[0].At
	if natural <= 0 {
		natural = netsim.Millisecond
	}
	desired := netsim.Time(float64(len(recs)) * float64(cfg.ServiceTime) / cfg.AttackUtilization)
	speed := float64(natural) / float64(desired)
	if speed > 1 {
		speed = 1 // never accelerate beyond the captured timing
	}
	return speed
}

// collectPaced replays records through a bare testbed (no mechanism)
// and appends the resulting INT feature rows to dst.
func collectPaced(recs []trace.Record, speed float64, dst *ml.Dataset) {
	tb := testbed.New(testbed.Config{})
	table := flow.NewTable()
	set := flow.INTFeatures()
	tb.Collector.OnReport = func(r *telemetry.Report, at netsim.Time) {
		pi := flow.FromINT(r, at)
		st, _ := table.Observe(pi)
		appendRow(dst, st, set, pi)
	}
	rp := tb.Replayer(recs)
	rp.Speed = speed
	rp.Start()
	tb.Run()
}

// triageModelFor resolves cfg.TriageModel against the trained
// ensemble; nil (with no error) when triage is off.
func triageModelFor(cfg LiveConfig, models []ml.Classifier) (ml.Classifier, error) {
	if !cfg.Triage || cfg.TriageModel == "" {
		return nil, nil
	}
	for _, m := range models {
		if m.Name() == cfg.TriageModel {
			return m, nil
		}
	}
	var names []string
	for _, m := range models {
		names = append(names, m.Name())
	}
	return nil, fmt.Errorf("triage model %q not in trained ensemble %v", cfg.TriageModel, names)
}

// replayLive runs one flow type through a fresh testbed + mechanism.
func replayLive(recs []trace.Record, speed float64, models []ml.Classifier, scaler *ml.StandardScaler, cfg LiveConfig) ([]core.Decision, error) {
	tb := testbed.New(testbed.Config{})
	tm, err := triageModelFor(cfg, models)
	if err != nil {
		return nil, err
	}
	mech, err := core.New(tb.Eng, core.Config{
		Models:          models,
		Scaler:          scaler,
		PollInterval:    cfg.PollInterval,
		ServiceTime:     cfg.ServiceTime,
		ModelQuorum:     cfg.ModelQuorum,
		VoteWindow:      cfg.VoteWindow,
		Shards:          cfg.Shards,
		PredictBatch:    cfg.PredictBatch,
		Triage:          cfg.Triage,
		TriageThreshold: cfg.TriageThreshold,
		TriageModel:     tm,
	})
	if err != nil {
		return nil, err
	}
	tb.Collector.OnReport = mech.HandleReport
	mech.Start()

	rp := tb.Replayer(recs)
	rp.Speed = speed
	rp.MaxPackets = cfg.PacketsPerType
	rp.Start()

	// Run until every replayed packet has been decided (drain the
	// backlog), with a generous deadline guard.
	deadline := netsim.Time(float64(len(recs))*float64(cfg.ServiceTime)*4) + 2*netsim.Second
	horizon := netsim.Time(float64(recs[len(recs)-1].At)/speed) + deadline
	for tb.Eng.Now() < horizon && len(mech.Decisions) < len(recs) {
		step := tb.Eng.Now() + 100*netsim.Millisecond
		tb.RunUntil(step)
	}
	return mech.Decisions, nil
}
