// Fuzz target for the sFlow datagram parser: decoding arbitrary
// bytes never panics, and a successfully decoded sample re-encodes to
// exactly the bytes it was parsed from (the wire format has no
// optional fields, so byte-level round trips must be exact).
package sflow

import (
	"bytes"
	"fmt"
	"net/netip"
	"os"
	"path/filepath"
	"testing"

	"github.com/amlight/intddos/internal/netsim"
)

func seedFlowSample() *FlowSample {
	return &FlowSample{
		Seq: 9, SampleRate: DefaultSampleRate, SamplePool: 8192, Drops: 1,
		InputPort: 3, OutputPort: 4,
		Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("192.168.0.9"),
		SrcPort: 4321, DstPort: 80, Proto: netsim.TCP, Flags: netsim.FlagSYN, Length: 512,
	}
}

func seedCounterSample() *CounterSample {
	return &CounterSample{Seq: 10, Port: 2, InPkts: 100, OutPkts: 90, InBytes: 150000, OutBytes: 120000, Drops: 3}
}

func FuzzDecode(f *testing.F) {
	f.Add(EncodeFlowSample(seedFlowSample()))
	f.Add(EncodeCounterSample(seedCounterSample()))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		s, c, err := Decode(data)
		if err != nil {
			return
		}
		if (s == nil) == (c == nil) {
			t.Fatalf("decode returned s=%v c=%v: want exactly one", s, c)
		}
		var re []byte
		if s != nil {
			re = EncodeFlowSample(s)
		} else {
			re = EncodeCounterSample(c)
		}
		// Decode ignores any trailer beyond the fixed record length.
		if len(data) < len(re) || !bytes.Equal(re, data[:len(re)]) {
			t.Fatalf("re-encode differs from input prefix:\n%x\n%x", re, data)
		}
	})
}

// TestFuzzSeedCorpus materializes the in-code seeds as committed
// corpus files under testdata/fuzz/.
func TestFuzzSeedCorpus(t *testing.T) {
	writeCorpusEntry(t, "FuzzDecode", fmt.Sprintf("[]byte(%q)\n", EncodeFlowSample(seedFlowSample())))
	writeCorpusEntry(t, "FuzzDecode", fmt.Sprintf("[]byte(%q)\n", EncodeCounterSample(seedCounterSample())))
}

// writeCorpusEntry writes one Go fuzz corpus file (format "go test
// fuzz v1"), content-addressed so repeated runs are idempotent.
func writeCorpusEntry(t *testing.T, fuzzName, args string) {
	t.Helper()
	dir := filepath.Join("testdata", "fuzz", fuzzName)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	content := []byte("go test fuzz v1\n" + args)
	sum := uint64(14695981039346656037)
	for _, b := range content {
		sum = (sum ^ uint64(b)) * 1099511628211
	}
	path := filepath.Join(dir, fmt.Sprintf("seed-%016x", sum))
	if old, err := os.ReadFile(path); err == nil && bytes.Equal(old, content) {
		return
	}
	if err := os.WriteFile(path, content, 0o644); err != nil {
		t.Fatal(err)
	}
}
