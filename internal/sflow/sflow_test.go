package sflow

import (
	"net/netip"
	"testing"
	"testing/quick"

	"github.com/amlight/intddos/internal/netsim"
)

func sampleFlow() *FlowSample {
	return &FlowSample{
		Seq:        9,
		SampleRate: 4096,
		SamplePool: 4100,
		Drops:      1,
		InputPort:  1,
		OutputPort: 2,
		Src:        netip.MustParseAddr("192.0.2.10"),
		Dst:        netip.MustParseAddr("198.51.100.20"),
		SrcPort:    55555,
		DstPort:    443,
		Proto:      netsim.TCP,
		Flags:      netsim.FlagSYN | netsim.FlagACK,
		Length:     1500,
	}
}

func TestFlowSampleRoundTrip(t *testing.T) {
	s := sampleFlow()
	fs, cs, err := Decode(EncodeFlowSample(s))
	if err != nil {
		t.Fatal(err)
	}
	if cs != nil {
		t.Fatal("decoded as counter sample")
	}
	want := *s
	if *fs != want {
		t.Errorf("round trip = %+v, want %+v", *fs, want)
	}
}

func TestCounterSampleRoundTrip(t *testing.T) {
	c := &CounterSample{Seq: 4, Port: 3, InPkts: 100, OutPkts: 90, InBytes: 5000, OutBytes: 4500, Drops: 10}
	fs, got, err := Decode(EncodeCounterSample(c))
	if err != nil {
		t.Fatal(err)
	}
	if fs != nil {
		t.Fatal("decoded as flow sample")
	}
	if *got != *c {
		t.Errorf("round trip = %+v, want %+v", *got, *c)
	}
}

func TestDecodeErrors(t *testing.T) {
	if _, _, err := Decode(nil); err == nil {
		t.Error("nil accepted")
	}
	if _, _, err := Decode([]byte("XXXXXXXX")); err == nil {
		t.Error("bad magic accepted")
	}
	buf := EncodeFlowSample(sampleFlow())
	if _, _, err := Decode(buf[:20]); err == nil {
		t.Error("truncated flow sample accepted")
	}
	buf[5] = 99
	if _, _, err := Decode(buf); err == nil {
		t.Error("unknown record type accepted")
	}
	buf[4] = 4 // version
	if _, _, err := Decode(buf); err == nil {
		t.Error("bad version accepted")
	}
}

func TestFlowSampleRoundTripProperty(t *testing.T) {
	f := func(seq uint64, rate, pool uint32, sport, dport uint16, length uint16) bool {
		s := &FlowSample{
			Seq: seq, SampleRate: rate, SamplePool: pool,
			Src: netip.MustParseAddr("10.1.2.3"), Dst: netip.MustParseAddr("10.4.5.6"),
			SrcPort: sport, DstPort: dport, Proto: netsim.UDP, Length: length,
		}
		got, _, err := Decode(EncodeFlowSample(s))
		return err == nil && *got == *s
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// sflowTestbed: host a → switch(port 1 → 2) → host b, sFlow agent at
// the configured rate exporting toward a collector host.
func sflowTestbed(t *testing.T, cfg AgentConfig) (*netsim.Engine, *netsim.Host, *netsim.Host, *Agent, *Collector) {
	t.Helper()
	eng := netsim.NewEngine()
	a := netsim.NewHost(eng, "a", netip.MustParseAddr("10.0.0.1"))
	b := netsim.NewHost(eng, "b", netip.MustParseAddr("10.0.0.2"))
	colHost := netsim.NewHost(eng, "col", netip.MustParseAddr("10.0.0.9"))
	col := NewCollector(eng)
	colHost.OnReceive = col.Receive
	sw := netsim.NewSwitch(eng, netsim.DefaultSwitchConfig(1))
	fwd := netsim.NewStaticForwarder()
	fwd.ByDst[b.Addr] = 2
	sw.Forwarder = fwd
	a.Attach(0, sw.Port(1))
	sw.Connect(2, 0, b)
	cfg.CollectorAddr = colHost.Addr
	cfg.Wire = netsim.NewLink(eng, netsim.Microsecond, colHost)
	agent := NewAgent(eng, sw, cfg)
	return eng, a, b, agent, col
}

func TestAgentDeterministicSampling(t *testing.T) {
	eng, a, b, agent, col := sflowTestbed(t, AgentConfig{SampleRate: 10, Deterministic: true})
	for i := 0; i < 100; i++ {
		a.SendAt(netsim.Time(i)*100*netsim.Microsecond, &netsim.Packet{
			Dst: b.Addr, Proto: netsim.TCP, Length: 500,
		})
	}
	eng.Run()
	if agent.Observed != 100 {
		t.Errorf("observed = %d, want 100", agent.Observed)
	}
	if agent.Sampled != 10 {
		t.Errorf("sampled = %d, want 10 (1-in-10 of 100)", agent.Sampled)
	}
	if col.FlowSamples != 10 {
		t.Errorf("collector flow samples = %d, want 10", col.FlowSamples)
	}
}

func TestAgentRandomizedSamplingMean(t *testing.T) {
	eng, a, b, agent, _ := sflowTestbed(t, AgentConfig{SampleRate: 16, Seed: 3})
	n := 8000
	for i := 0; i < n; i++ {
		a.SendAt(netsim.Time(i)*20*netsim.Microsecond, &netsim.Packet{
			Dst: b.Addr, Proto: netsim.UDP, Length: 200,
		})
	}
	eng.Run()
	want := n / 16
	if agent.Sampled < want*7/10 || agent.Sampled > want*13/10 {
		t.Errorf("sampled = %d of %d at 1/16, want ≈%d", agent.Sampled, n, want)
	}
}

func TestAgentSamplePoolAccounting(t *testing.T) {
	eng, a, b, _, col := sflowTestbed(t, AgentConfig{SampleRate: 10, Deterministic: true})
	var pools []uint32
	col.OnFlowSample = func(s *FlowSample, _ netsim.Time) { pools = append(pools, s.SamplePool) }
	for i := 0; i < 30; i++ {
		a.SendAt(netsim.Time(i)*100*netsim.Microsecond, &netsim.Packet{
			Dst: b.Addr, Proto: netsim.TCP, Length: 500,
		})
	}
	eng.Run()
	if len(pools) != 3 {
		t.Fatalf("samples = %d, want 3", len(pools))
	}
	for _, p := range pools {
		if p != 10 {
			t.Errorf("sample pool = %d, want 10", p)
		}
	}
}

func TestAgentTruthPropagation(t *testing.T) {
	eng, a, b, _, col := sflowTestbed(t, AgentConfig{SampleRate: 1, Deterministic: true})
	var got []Truth
	col.OnFlowSample = func(s *FlowSample, _ netsim.Time) { got = append(got, s.Truth) }
	a.Send(&netsim.Packet{Dst: b.Addr, Proto: netsim.TCP, Length: 100, Label: true, AttackType: "synscan"})
	eng.Run()
	if len(got) != 1 || !got[0].Label || got[0].AttackType != "synscan" {
		t.Errorf("truth = %+v", got)
	}
}

func TestAgentLowRateFlowEscapesSampling(t *testing.T) {
	// The paper's core sFlow limitation: a SlowLoris-style flow with
	// few packets is invisible at 1/4096 sampling. Send 50 packets
	// through an agent sampling 1/4096: expect zero samples.
	eng, a, b, agent, _ := sflowTestbed(t, AgentConfig{SampleRate: 4096, Deterministic: true})
	for i := 0; i < 50; i++ {
		a.SendAt(netsim.Time(i)*netsim.Millisecond, &netsim.Packet{
			Dst: b.Addr, Proto: netsim.TCP, Length: 80, Label: true, AttackType: "slowloris",
		})
	}
	eng.Run()
	if agent.Sampled != 0 {
		t.Errorf("sampled = %d, want 0 — low-rate flow must escape 1/4096 sampling", agent.Sampled)
	}
}

func TestAgentCounterExport(t *testing.T) {
	eng, a, b, _, col := sflowTestbed(t, AgentConfig{
		SampleRate: 4096, Deterministic: true, CounterInterval: 10 * netsim.Millisecond,
	})
	for i := 0; i < 20; i++ {
		a.SendAt(netsim.Time(i)*netsim.Millisecond, &netsim.Packet{
			Dst: b.Addr, Proto: netsim.UDP, Length: 400,
		})
	}
	eng.RunUntil(25 * netsim.Millisecond)
	if col.CounterSamples == 0 {
		t.Fatal("no counter samples exported")
	}
	// 2 polls × 8 ports
	if col.CounterSamples != 16 {
		t.Errorf("counter samples = %d, want 16", col.CounterSamples)
	}
}

func TestCollectorDecodeErrorCount(t *testing.T) {
	eng := netsim.NewEngine()
	col := NewCollector(eng)
	col.Receive(&netsim.Packet{Payload: []byte("junk!")})
	if col.DecodeErrors != 1 {
		t.Errorf("decode errors = %d, want 1", col.DecodeErrors)
	}
}
