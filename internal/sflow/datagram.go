// Package sflow implements the sampled-flow monitoring substrate the
// paper compares INT against: a counter-based sampling agent embedded
// in a switch (1-in-4096 in the AmLight deployment) and a collector
// that decodes the exported datagrams.
//
// Only header-level flow samples and periodic interface counter
// samples are modelled — the two record types the paper's analysis
// consumes. The wire format is a compact sFlow-v5-style layout rather
// than the full XDR encoding; what matters for the comparison is the
// sampling semantics, which are reproduced exactly.
package sflow

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"

	"github.com/amlight/intddos/internal/netsim"
)

// DefaultSampleRate is the production sampling rate at AmLight: one
// packet in every 4096.
const DefaultSampleRate = 4096

const (
	datagramMagic uint32 = 0x53464C57 // "SFLW"
	version       uint8  = 5

	recFlowSample    uint8 = 1
	recCounterSample uint8 = 2
)

// FlowSample is one sampled packet's header snapshot. Unlike INT,
// there is no per-hop telemetry — no queue occupancy, no hop
// timestamps (the Table II difference driving the paper's
// comparison).
type FlowSample struct {
	Seq        uint64
	SampleRate uint32 // 1-in-SampleRate
	SamplePool uint32 // packets observed since the previous sample
	Drops      uint32 // samples dropped by the agent
	InputPort  uint16
	OutputPort uint16

	Src     netip.Addr
	Dst     netip.Addr
	SrcPort uint16
	DstPort uint16
	Proto   netsim.Proto
	Flags   netsim.TCPFlags
	Length  uint16

	// Truth carries generator ground truth for accounting; it is not
	// serialized.
	Truth Truth
}

// Truth is label metadata used only for training and evaluation.
type Truth struct {
	Label      bool
	AttackType string
	SentAt     netsim.Time
}

// FiveTuple renders the canonical flow identity string.
func (s *FlowSample) FiveTuple() string {
	return fmt.Sprintf("%s:%d>%s:%d/%s", s.Src, s.SrcPort, s.Dst, s.DstPort, s.Proto)
}

// CounterSample is a periodic interface counter export.
type CounterSample struct {
	Seq      uint64
	Port     uint16
	InPkts   uint64
	OutPkts  uint64
	InBytes  uint64
	OutBytes uint64
	Drops    uint64
}

// ErrShort reports a truncated datagram.
var ErrShort = errors.New("sflow: datagram too short")

// EncodeFlowSample serializes s to wire form.
func EncodeFlowSample(s *FlowSample) []byte {
	buf := make([]byte, 0, 48)
	var w8 [8]byte
	binary.BigEndian.PutUint32(w8[:4], datagramMagic)
	buf = append(buf, w8[:4]...)
	buf = append(buf, version, recFlowSample)
	binary.BigEndian.PutUint64(w8[:], s.Seq)
	buf = append(buf, w8[:]...)
	binary.BigEndian.PutUint32(w8[:4], s.SampleRate)
	buf = append(buf, w8[:4]...)
	binary.BigEndian.PutUint32(w8[:4], s.SamplePool)
	buf = append(buf, w8[:4]...)
	binary.BigEndian.PutUint32(w8[:4], s.Drops)
	buf = append(buf, w8[:4]...)
	binary.BigEndian.PutUint16(w8[:2], s.InputPort)
	buf = append(buf, w8[:2]...)
	binary.BigEndian.PutUint16(w8[:2], s.OutputPort)
	buf = append(buf, w8[:2]...)
	src, dst := s.Src.As4(), s.Dst.As4()
	buf = append(buf, src[:]...)
	buf = append(buf, dst[:]...)
	binary.BigEndian.PutUint16(w8[:2], s.SrcPort)
	buf = append(buf, w8[:2]...)
	binary.BigEndian.PutUint16(w8[:2], s.DstPort)
	buf = append(buf, w8[:2]...)
	buf = append(buf, byte(s.Proto), byte(s.Flags))
	binary.BigEndian.PutUint16(w8[:2], s.Length)
	buf = append(buf, w8[:2]...)
	return buf
}

// EncodeCounterSample serializes c to wire form.
func EncodeCounterSample(c *CounterSample) []byte {
	buf := make([]byte, 0, 56)
	var w8 [8]byte
	binary.BigEndian.PutUint32(w8[:4], datagramMagic)
	buf = append(buf, w8[:4]...)
	buf = append(buf, version, recCounterSample)
	binary.BigEndian.PutUint64(w8[:], c.Seq)
	buf = append(buf, w8[:]...)
	binary.BigEndian.PutUint16(w8[:2], c.Port)
	buf = append(buf, w8[:2]...)
	for _, v := range []uint64{c.InPkts, c.OutPkts, c.InBytes, c.OutBytes, c.Drops} {
		binary.BigEndian.PutUint64(w8[:], v)
		buf = append(buf, w8[:]...)
	}
	return buf
}

// Decode parses a datagram, returning exactly one of a flow sample or
// a counter sample.
func Decode(buf []byte) (*FlowSample, *CounterSample, error) {
	if len(buf) < 6 {
		return nil, nil, ErrShort
	}
	if binary.BigEndian.Uint32(buf[:4]) != datagramMagic {
		return nil, nil, fmt.Errorf("sflow: bad magic %#x", binary.BigEndian.Uint32(buf[:4]))
	}
	if buf[4] != version {
		return nil, nil, fmt.Errorf("sflow: unsupported version %d", buf[4])
	}
	switch buf[5] {
	case recFlowSample:
		if len(buf) < 46 {
			return nil, nil, ErrShort
		}
		s := &FlowSample{
			Seq:        binary.BigEndian.Uint64(buf[6:14]),
			SampleRate: binary.BigEndian.Uint32(buf[14:18]),
			SamplePool: binary.BigEndian.Uint32(buf[18:22]),
			Drops:      binary.BigEndian.Uint32(buf[22:26]),
			InputPort:  binary.BigEndian.Uint16(buf[26:28]),
			OutputPort: binary.BigEndian.Uint16(buf[28:30]),
			Src:        netip.AddrFrom4([4]byte(buf[30:34])),
			Dst:        netip.AddrFrom4([4]byte(buf[34:38])),
			SrcPort:    binary.BigEndian.Uint16(buf[38:40]),
			DstPort:    binary.BigEndian.Uint16(buf[40:42]),
			Proto:      netsim.Proto(buf[42]),
			Flags:      netsim.TCPFlags(buf[43]),
			Length:     binary.BigEndian.Uint16(buf[44:46]),
		}
		return s, nil, nil
	case recCounterSample:
		if len(buf) < 56 {
			return nil, nil, ErrShort
		}
		c := &CounterSample{
			Seq:  binary.BigEndian.Uint64(buf[6:14]),
			Port: binary.BigEndian.Uint16(buf[14:16]),
		}
		vals := buf[16:]
		c.InPkts = binary.BigEndian.Uint64(vals[0:8])
		c.OutPkts = binary.BigEndian.Uint64(vals[8:16])
		c.InBytes = binary.BigEndian.Uint64(vals[16:24])
		c.OutBytes = binary.BigEndian.Uint64(vals[24:32])
		c.Drops = binary.BigEndian.Uint64(vals[32:40])
		return nil, c, nil
	default:
		return nil, nil, fmt.Errorf("sflow: unknown record type %d", buf[5])
	}
}
