package sflow

import (
	"net/netip"

	"github.com/amlight/intddos/internal/netsim"
)

// AgentConfig parameterizes a switch-attached sFlow agent.
type AgentConfig struct {
	// SampleRate selects 1-in-N packet sampling; zero means the
	// AmLight production default of 1/4096.
	SampleRate int
	// Deterministic makes the agent sample exactly every Nth packet.
	// When false the agent draws a fresh geometric skip after each
	// sample (the sFlow-spec randomized countdown), seeded by Seed.
	Deterministic bool
	// Seed drives the randomized countdown.
	Seed int64
	// CounterInterval, if nonzero, exports interface counter samples
	// this often.
	CounterInterval netsim.Time
	// Ports restricts observation to packets egressing the listed
	// ports, like enabling sFlow on specific interfaces; empty means
	// every port.
	Ports []uint16
	// CollectorAddr is the destination of datagrams.
	CollectorAddr netip.Addr
	// Wire carries encoded datagrams to the collector. If nil samples
	// are counted but not exported.
	Wire *netsim.Link
}

// Agent samples forwarded packets at a fixed rate and exports flow
// samples, mirroring a device-resident sFlow agent.
type Agent struct {
	eng *netsim.Engine
	sw  *netsim.Switch
	cfg AgentConfig

	rng       interface{ Int63n(int64) int64 }
	ports     map[uint16]bool
	countdown int
	pool      uint32
	seq       uint64
	ctrSeq    uint64

	// Stats
	Observed int // packets seen by the agent
	Sampled  int // flow samples exported
}

// NewAgent wires an sFlow agent onto sw, chaining any existing
// OnForward hook.
func NewAgent(eng *netsim.Engine, sw *netsim.Switch, cfg AgentConfig) *Agent {
	if cfg.SampleRate <= 0 {
		cfg.SampleRate = DefaultSampleRate
	}
	a := &Agent{eng: eng, sw: sw, cfg: cfg, rng: netsim.NewRNG(cfg.Seed)}
	if len(cfg.Ports) > 0 {
		a.ports = make(map[uint16]bool, len(cfg.Ports))
		for _, p := range cfg.Ports {
			a.ports[p] = true
		}
	}
	a.resetCountdown()
	prev := sw.OnForward
	sw.OnForward = func(p *netsim.Packet, hop netsim.HopRecord, egress uint16) {
		a.observe(p, hop, egress)
		if prev != nil {
			prev(p, hop, egress)
		}
	}
	if cfg.CounterInterval > 0 {
		eng.After(cfg.CounterInterval, a.exportCounters)
	}
	return a
}

// resetCountdown arms the next sample: exactly N packets away in
// deterministic mode, uniform in [1, 2N-1] otherwise (mean N, per the
// sFlow spec's unbiased countdown).
func (a *Agent) resetCountdown() {
	if a.cfg.Deterministic {
		a.countdown = a.cfg.SampleRate
		return
	}
	a.countdown = 1 + int(a.rng.Int63n(int64(2*a.cfg.SampleRate-1)))
}

// observe runs on every forwarded packet.
func (a *Agent) observe(p *netsim.Packet, hop netsim.HopRecord, egress uint16) {
	if p.Payload != nil {
		return // never sample telemetry/control datagrams
	}
	if a.ports != nil && !a.ports[egress] {
		return
	}
	a.Observed++
	a.pool++
	a.countdown--
	if a.countdown > 0 {
		return
	}
	a.resetCountdown()
	a.seq++
	s := &FlowSample{
		Seq:        a.seq,
		SampleRate: uint32(a.cfg.SampleRate),
		SamplePool: a.pool,
		InputPort:  hop.IngressPort,
		OutputPort: egress,
		Src:        p.Src,
		Dst:        p.Dst,
		SrcPort:    p.SrcPort,
		DstPort:    p.DstPort,
		Proto:      p.Proto,
		Flags:      p.Flags,
		Length:     uint16(p.Length),
	}
	a.pool = 0
	a.Sampled++
	if a.cfg.Wire != nil {
		buf := EncodeFlowSample(s)
		a.cfg.Wire.Send(&netsim.Packet{
			ID:      a.eng.NextPacketID(),
			Dst:     a.cfg.CollectorAddr,
			Proto:   netsim.UDP,
			Length:  len(buf) + 42,
			Payload: buf,
			SentAt:  a.eng.Now(),
			// Ground truth for evaluation bookkeeping only.
			Label:      p.Label,
			AttackType: p.AttackType,
		})
	}
}

// exportCounters emits one counter sample per switch port, then
// re-arms itself.
func (a *Agent) exportCounters() {
	for port := 1; port <= a.sw.Config().Ports; port++ {
		q := a.sw.Queue(uint16(port))
		a.ctrSeq++
		c := &CounterSample{
			Seq:     a.ctrSeq,
			Port:    uint16(port),
			OutPkts: uint64(q.Dequeued),
			Drops:   uint64(q.Drops),
		}
		if a.cfg.Wire != nil {
			buf := EncodeCounterSample(c)
			a.cfg.Wire.Send(&netsim.Packet{
				ID:      a.eng.NextPacketID(),
				Dst:     a.cfg.CollectorAddr,
				Proto:   netsim.UDP,
				Length:  len(buf) + 42,
				Payload: buf,
				SentAt:  a.eng.Now(),
			})
		}
	}
	a.eng.After(a.cfg.CounterInterval, a.exportCounters)
}
