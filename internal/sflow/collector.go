package sflow

import "github.com/amlight/intddos/internal/netsim"

// Collector terminates sFlow datagrams and hands decoded samples to
// subscribers.
type Collector struct {
	eng *netsim.Engine

	// OnFlowSample receives each decoded flow sample with its
	// collector-local arrival time.
	OnFlowSample func(s *FlowSample, at netsim.Time)
	// OnCounterSample receives periodic counter exports.
	OnCounterSample func(c *CounterSample, at netsim.Time)

	// Stats
	FlowSamples    int
	CounterSamples int
	DecodeErrors   int
}

// NewCollector constructs a collector on eng.
func NewCollector(eng *netsim.Engine) *Collector {
	return &Collector{eng: eng}
}

// Receive implements netsim.Receiver.
func (c *Collector) Receive(p *netsim.Packet) {
	fs, cs, err := Decode(p.Payload)
	if err != nil {
		c.DecodeErrors++
		return
	}
	at := c.eng.Now()
	switch {
	case fs != nil:
		c.FlowSamples++
		fs.Truth = Truth{Label: p.Label, AttackType: p.AttackType, SentAt: p.SentAt}
		if c.OnFlowSample != nil {
			c.OnFlowSample(fs, at)
		}
	case cs != nil:
		c.CounterSamples++
		if c.OnCounterSample != nil {
			c.OnCounterSample(cs, at)
		}
	}
}
