package fault

import (
	"strings"
	"testing"
	"time"
)

func TestParseNetemFullSection(t *testing.T) {
	spec, err := ParseNetem("netem[link=agent->collector]:delay=2ms,jitter=1ms,loss=0.5%,dup=0.1%,rate=100mbit")
	if err != nil {
		t.Fatalf("ParseNetem: %v", err)
	}
	li, ok := spec.For("agent->collector")
	if !ok {
		t.Fatalf("no entry for agent->collector: %v", spec)
	}
	want := LinkImpairment{
		Delay: 2 * time.Millisecond, Jitter: time.Millisecond,
		Loss: 0.005, Dup: 0.001, RateBps: 100_000_000,
	}
	if li != want {
		t.Errorf("impairment = %+v, want %+v", li, want)
	}
}

func TestParseNetemWildcardAndMultiSection(t *testing.T) {
	spec, err := ParseNetem("netem[link=*]:loss=1%;netem[link=agent->collector]:reorder=0.05,limit=16,rate=512kbit")
	if err != nil {
		t.Fatalf("ParseNetem: %v", err)
	}
	if li, ok := spec.For("source->switch"); !ok || li.Loss != 0.01 {
		t.Errorf("wildcard lookup = %+v/%v, want loss=0.01 via *", li, ok)
	}
	li, _ := spec.For("agent->collector")
	if li.Reorder != 0.05 || li.Limit != 16 || li.RateBps != 512_000 {
		t.Errorf("exact entry = %+v", li)
	}
	if li.Loss != 0 {
		t.Errorf("exact entry inherited wildcard loss: %+v", li)
	}
}

func TestParseNetemRoundTrip(t *testing.T) {
	in := "netem[link=agent->collector]:delay=2ms,jitter=1ms,loss=0.005,dup=0.001,rate=100mbit,limit=32;netem[link=*]:reorder=0.1"
	spec, err := ParseNetem(in)
	if err != nil {
		t.Fatalf("ParseNetem: %v", err)
	}
	again, err := ParseNetem(spec.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", spec.String(), err)
	}
	if again.String() != spec.String() {
		t.Errorf("round trip: %q != %q", again.String(), spec.String())
	}
}

func TestParseSpecComposesFaultAndNetem(t *testing.T) {
	spec, err := ParseSpec("drop=0.01,netem[link=agent->collector]:delay=2ms,loss=0.5%,store.err=0.1,delay=5ms@0.2")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if spec.Drop != 0.01 || spec.StoreErr != 0.1 {
		t.Errorf("fault clauses lost: %+v", spec)
	}
	// The bare-DUR delay and the loss attach to the open netem
	// section; the DUR@P delay after store.err is a fault clause.
	li, ok := spec.Netem.For("agent->collector")
	if !ok || li.Delay != 2*time.Millisecond || li.Loss != 0.005 {
		t.Errorf("netem section = %+v/%v", li, ok)
	}
	if spec.Delay != 5*time.Millisecond || spec.DelayP != 0.2 {
		t.Errorf("fault delay = %v@%v, want 5ms@0.2", spec.Delay, spec.DelayP)
	}
	// Round-trip the combined spec.
	again, err := ParseSpec(spec.String())
	if err != nil {
		t.Fatalf("reparse %q: %v", spec.String(), err)
	}
	if again.String() != spec.String() {
		t.Errorf("round trip: %q != %q", again.String(), spec.String())
	}
}

func TestParseSpecSemicolonClosesNetemSection(t *testing.T) {
	// After ';' the "delay" belongs to the fault grammar again, so a
	// bare DUR (no @P) must fail rather than silently attach.
	if _, err := ParseSpec("netem[link=a]:loss=1%;delay=2ms"); err == nil {
		t.Errorf("bare delay after ';' should be a fault-grammar error")
	}
	spec, err := ParseSpec("netem[link=a]:loss=1%;delay=2ms@0.5")
	if err != nil {
		t.Fatalf("ParseSpec: %v", err)
	}
	if spec.DelayP != 0.5 {
		t.Errorf("fault delay not parsed after section close: %+v", spec)
	}
}

func TestParseNetemRejectsFaultClauses(t *testing.T) {
	if _, err := ParseNetem("drop=0.1"); err == nil {
		t.Errorf("ParseNetem accepted a fault clause")
	}
	if _, err := ParseNetem("netem[link=a]:loss=1%,drop=0.1"); err == nil {
		t.Errorf("ParseNetem accepted a mixed spec")
	}
}

// TestParseErrorsNameClauseAndPosition is the table-driven coverage
// for the positional parse errors, including the netem sub-clauses.
func TestParseErrorsNameClauseAndPosition(t *testing.T) {
	cases := []struct {
		spec string
		// want are substrings the error must carry: the clause text
		// and its position, so a typo in a long schedule is findable.
		want []string
	}{
		{"drop=2", []string{`clause 1`, `"drop=2"`, "offset 0"}},
		{"drop=0.1,bogus=1", []string{`clause 2`, `"bogus=1"`, "offset 9", "unknown clause"}},
		{"drop=0.1,delay=5x@0.1", []string{`clause 2`, `"delay=5x@0.1"`, "offset 9"}},
		{"drop=0.1 corrupt", []string{`clause 2`, `"corrupt"`, "offset 9", "name=value"}},
		{"model.fail=@0.5", []string{`clause 1`, "model.fail=NAME@P"}},
		{"netem[link=]:loss=1%", []string{`clause 1`, "link=NAME"}},
		{"netem[link=a]loss=1%", []string{`clause 1`, "':'"}},
		{"netem[broken", []string{`clause 1`, "netem[link=NAME]"}},
		{"netem[link=a]:loss=200%", []string{`clause 1`, "[0%,100%]"}},
		{"netem[link=a]:loss=1%,dup=nope", []string{`clause 2`, `"dup=nope"`, "offset 22"}},
		{"netem[link=a]:jitter=-1ms", []string{`clause 1`, "negative duration"}},
		{"netem[link=a]:rate=0mbit", []string{`clause 1`, "positive"}},
		{"netem[link=a]:rate=fast", []string{`clause 1`, "bad rate"}},
		{"netem[link=a]:limit=0", []string{`clause 1`, "positive"}},
		{"netem[link=a]:limit=1,reorder=1.5", []string{`clause 2`, "offset 22", "[0,1]"}},
	}
	for _, tc := range cases {
		_, err := ParseSpec(tc.spec)
		if err == nil {
			t.Errorf("ParseSpec(%q): want error", tc.spec)
			continue
		}
		for _, w := range tc.want {
			if !strings.Contains(err.Error(), w) {
				t.Errorf("ParseSpec(%q) error %q missing %q", tc.spec, err, w)
			}
		}
	}
}

func TestParseRateUnits(t *testing.T) {
	cases := []struct {
		in   string
		want int64
	}{
		{"100mbit", 100_000_000},
		{"1gbit", 1_000_000_000},
		{"512kbit", 512_000},
		{"800bit", 800},
		{"9600", 9600},
		{"1.5mbit", 1_500_000},
		{"100MBIT", 100_000_000},
	}
	for _, tc := range cases {
		got, err := parseRate(tc.in)
		if err != nil || got != tc.want {
			t.Errorf("parseRate(%q) = %d, %v; want %d", tc.in, got, err, tc.want)
		}
	}
}
