package fault

import (
	"errors"
	"net/netip"
	"testing"
	"time"

	"github.com/amlight/intddos/internal/flow"
	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/store"
	"github.com/amlight/intddos/internal/telemetry"
)

func TestParseSpecRoundTrip(t *testing.T) {
	in := "drop=0.01,corrupt=0.02,delay=2ms@0.03,store.err=0.04," +
		"store.stall=5ms@0.05,panic=0.06,model.fail=GNB@0.5,model.fail=*@0.1,latency=1ms@0.07"
	spec, err := ParseSpec(in)
	if err != nil {
		t.Fatal(err)
	}
	if spec.Drop != 0.01 || spec.Corrupt != 0.02 || spec.DelayP != 0.03 ||
		spec.Delay != 2*time.Millisecond || spec.StoreErr != 0.04 ||
		spec.StoreStall != 5*time.Millisecond || spec.StoreStallP != 0.05 ||
		spec.WorkerPanic != 0.06 || spec.PredictLatency != time.Millisecond ||
		spec.PredictLatencyP != 0.07 {
		t.Errorf("parsed spec = %+v", spec)
	}
	if spec.ModelFail["GNB"] != 0.5 || spec.ModelFail["*"] != 0.1 {
		t.Errorf("model.fail = %v", spec.ModelFail)
	}
	again, err := ParseSpec(spec.String())
	if err != nil {
		t.Fatalf("round trip: %v", err)
	}
	if again.String() != spec.String() {
		t.Errorf("round trip: %q != %q", again.String(), spec.String())
	}
}

func TestParseSpecSeparatorsAndEmpty(t *testing.T) {
	spec, err := ParseSpec("drop=0.5; corrupt=0.25\npanic=1")
	if err != nil {
		t.Fatal(err)
	}
	if spec.Drop != 0.5 || spec.Corrupt != 0.25 || spec.WorkerPanic != 1 {
		t.Errorf("spec = %+v", spec)
	}
	empty, err := ParseSpec("")
	if err != nil || !empty.Zero() {
		t.Errorf("empty spec = %+v, err %v", empty, err)
	}
	if in, err := Parse("", 1); err != nil || in != nil {
		t.Errorf("Parse(\"\") = %v, %v; want nil injector", in, err)
	}
}

func TestParseSpecErrors(t *testing.T) {
	for _, bad := range []string{
		"drop",            // no value
		"drop=2",          // probability out of range
		"drop=x",          // not a number
		"delay=0.5",       // missing DUR@P
		"delay=-1ms@0.5",  // negative duration
		"model.fail=0.5",  // missing NAME@
		"warp.core=0.5",   // unknown clause
		"store.stall=5ms", // missing @P
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("ParseSpec(%q): want error", bad)
		}
	}
}

func TestDeterministicPerSite(t *testing.T) {
	spec := Spec{Drop: 0.3, StoreErr: 0.2}
	a, b := New(spec, 42), New(spec, 42)
	for i := 0; i < 500; i++ {
		if a.DropReport() != b.DropReport() {
			t.Fatalf("drop decision %d diverged under the same seed", i)
		}
	}
	// Sites draw from independent streams: consuming one site's RNG
	// must not shift another's decisions.
	for i := 0; i < 100; i++ {
		a.DropReport() // advance only a's drop stream
	}
	for i := 0; i < 500; i++ {
		if (a.StoreErr() == nil) != (b.StoreErr() == nil) {
			t.Fatalf("store decision %d diverged after unrelated draws", i)
		}
	}
	c := New(spec, 43)
	same := true
	for i := 0; i < 500; i++ {
		if a.DropReport() != c.DropReport() {
			same = false
		}
	}
	if same {
		t.Error("different seeds produced an identical 500-draw schedule")
	}
}

func TestNilInjectorInjectsNothing(t *testing.T) {
	var in *Injector
	r := &telemetry.Report{Length: 7}
	if in.DropReport() || in.CorruptReport(r) || in.WorkerPanicNow() {
		t.Error("nil injector fired")
	}
	if in.ReportDelay() != 0 || in.StoreStall() != 0 || in.PredictDelay() != 0 {
		t.Error("nil injector delayed")
	}
	if in.StoreErr() != nil || in.ModelFail("GNB") {
		t.Error("nil injector errored")
	}
	in.Taint("k")
	if in.IsTainted("k") || in.TaintCount() != 0 {
		t.Error("nil injector tainted")
	}
	if in.Counts() != nil || in.SiteCount(SiteDrop) != 0 {
		t.Error("nil injector counted")
	}
	if in.Summary() != "no faults fired" {
		t.Errorf("summary = %q", in.Summary())
	}
}

func TestCorruptReportScramblesDeterministically(t *testing.T) {
	mk := func() *telemetry.Report {
		return &telemetry.Report{
			Length: 1000,
			Hops:   []telemetry.HopMetadata{{QueueDepth: 9}},
		}
	}
	a, b := New(Spec{Corrupt: 1}, 7), New(Spec{Corrupt: 1}, 7)
	ra, rb := mk(), mk()
	if !a.CorruptReport(ra) || !b.CorruptReport(rb) {
		t.Fatal("corrupt at p=1 did not fire")
	}
	if ra.Length == 1000 && ra.Hops[0].QueueDepth == 9 {
		t.Error("corruption changed nothing")
	}
	if ra.Length != rb.Length || ra.Hops[0].QueueDepth != rb.Hops[0].QueueDepth {
		t.Error("same seed corrupted differently")
	}
	if a.SiteCount(SiteCorrupt) != 1 {
		t.Errorf("corrupt count = %d", a.SiteCount(SiteCorrupt))
	}
}

func faultKey(p uint16) flow.Key {
	return flow.Key{
		Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2"),
		SrcPort: p, DstPort: 80, Proto: netsim.TCP,
	}
}

func TestStoreWrapperInjectsOnFalliblePathsOnly(t *testing.T) {
	in := New(Spec{StoreErr: 1}, 1)
	db := WrapStore(store.New(), in)
	if _, err := db.TryUpsertFlow(faultKey(1), []float64{1}, 0, 0, 1, false, ""); !errors.Is(err, ErrInjected) {
		t.Fatalf("TryUpsertFlow error = %v, want ErrInjected", err)
	}
	if _, _, err := db.TryPollShard(0, 0, 10); !errors.Is(err, ErrInjected) {
		t.Fatalf("TryPollShard error = %v, want ErrInjected", err)
	}
	// The plain Store interface has no error returns, so those paths
	// must keep working even at store.err=1.
	if !db.UpsertFlow(faultKey(2), []float64{1}, 0, 0, 1, false, "") {
		t.Fatal("plain UpsertFlow failed")
	}
	recs, _ := db.PollShard(0, 0, 10)
	if len(recs) != 1 {
		t.Fatalf("plain PollShard = %d records, want 1", len(recs))
	}
	if db.FlowCount() != 1 {
		t.Errorf("flow count = %d", db.FlowCount())
	}
	if got := in.SiteCount(SiteStoreErr); got != 2 {
		t.Errorf("store_err fired %d times, want 2", got)
	}
}

func TestStoreWrapperCleanWhenNoStoreFaults(t *testing.T) {
	in := New(Spec{Drop: 1}, 1) // faults elsewhere only
	db := WrapStore(store.New(), in)
	if _, err := db.TryUpsertFlow(faultKey(1), []float64{1}, 0, 0, 1, false, ""); err != nil {
		t.Fatalf("TryUpsertFlow = %v", err)
	}
	recs, _, err := db.TryPollShard(0, 0, 10)
	if err != nil || len(recs) != 1 {
		t.Fatalf("TryPollShard = %d recs, %v", len(recs), err)
	}
}

// stubModel is a trivial classifier for wrapper tests.
type stubModel struct {
	name     string
	panicky  bool
	features int
}

func (s *stubModel) Name() string                     { return s.name }
func (s *stubModel) Fit(X [][]float64, y []int) error { return nil }
func (s *stubModel) Predict(x []float64) int {
	if s.panicky {
		panic("stub model exploded")
	}
	if x[0] > 0 {
		return 1
	}
	return 0
}
func (s *stubModel) Features() int { return s.features }

func TestModelWrapperInjectsScoringFailures(t *testing.T) {
	in := New(Spec{ModelFail: map[string]float64{"A": 1}}, 1)
	a := WrapModel(&stubModel{name: "A"}, in)
	b := WrapModel(&stubModel{name: "B"}, in)
	X := [][]float64{{1}, {-1}}
	if _, err := a.TryPredictBatch(X); !errors.Is(err, ErrInjected) {
		t.Fatalf("model A error = %v, want ErrInjected", err)
	}
	labels, err := b.TryPredictBatch(X)
	if err != nil {
		t.Fatalf("model B (untargeted) error = %v", err)
	}
	if len(labels) != 2 || labels[0] != 1 || labels[1] != 0 {
		t.Errorf("model B labels = %v", labels)
	}
	// The plain batch path stays fault-free: experiments and training
	// see the original model.
	if got := a.PredictBatch(X); got[0] != 1 || got[1] != 0 {
		t.Errorf("plain PredictBatch = %v", got)
	}
	if a.Name() != "A" || a.Features() != 0 {
		t.Errorf("delegation: name=%s features=%d", a.Name(), a.Features())
	}
}

func TestModelWrapperWildcardAndOverride(t *testing.T) {
	in := New(Spec{ModelFail: map[string]float64{"*": 1, "B": 0}}, 1)
	a := WrapModel(&stubModel{name: "A"}, in)
	b := WrapModel(&stubModel{name: "B"}, in)
	if _, err := a.TryPredictBatch([][]float64{{1}}); err == nil {
		t.Error("wildcard did not hit model A")
	}
	if _, err := b.TryPredictBatch([][]float64{{1}}); err != nil {
		t.Errorf("named override did not exempt model B: %v", err)
	}
}

func TestModelWrapperContainsPanics(t *testing.T) {
	in := New(Spec{}, 1)
	m := WrapModel(&stubModel{name: "boom", panicky: true}, in)
	labels, err := m.TryPredictBatch([][]float64{{1}})
	if err == nil || labels != nil {
		t.Fatalf("panicking model: labels=%v err=%v, want contained error", labels, err)
	}
}

func TestTaintTracking(t *testing.T) {
	in := New(Spec{Drop: 1}, 1)
	k1, k2 := faultKey(1).String(), faultKey(2).String()
	in.Taint(k1)
	in.Taint(k1)
	if !in.IsTainted(k1) || in.IsTainted(k2) {
		t.Error("taint membership wrong")
	}
	if in.TaintCount() != 1 {
		t.Errorf("taint count = %d", in.TaintCount())
	}
}

func TestSummaryAndCounts(t *testing.T) {
	in := New(Spec{Drop: 1, WorkerPanic: 1}, 1)
	in.DropReport()
	in.DropReport()
	in.WorkerPanicNow()
	if got := in.Summary(); got != "drop=2 worker_panic=1" {
		t.Errorf("summary = %q", got)
	}
	if in.Counts()[SiteDrop] != 2 {
		t.Errorf("counts = %v", in.Counts())
	}
}
