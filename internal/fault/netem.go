package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// LinkImpairment is one link's netem parameters in the clause
// grammar's units: durations for delay/jitter, probabilities for
// loss/dup/reorder, bits per second for the rate cap. The netsim
// layer converts it into a netsim.Impairment at wiring time, so this
// package stays independent of the simulator.
type LinkImpairment struct {
	Delay   time.Duration
	Jitter  time.Duration
	Loss    float64
	Dup     float64
	Reorder float64
	RateBps int64
	// Limit bounds the rate-cap queue in packets (0: the netsim
	// default of 64).
	Limit int
}

// Zero reports whether the impairment changes nothing.
func (li LinkImpairment) Zero() bool {
	return li.Delay == 0 && li.Jitter == 0 && li.Loss == 0 &&
		li.Dup == 0 && li.Reorder == 0 && li.RateBps == 0
}

// String renders the impairment's sub-clauses in the netem grammar.
func (li LinkImpairment) String() string {
	var parts []string
	add := func(format string, args ...any) { parts = append(parts, fmt.Sprintf(format, args...)) }
	if li.Delay > 0 {
		add("delay=%v", li.Delay)
	}
	if li.Jitter > 0 {
		add("jitter=%v", li.Jitter)
	}
	if li.Loss > 0 {
		add("loss=%v", li.Loss)
	}
	if li.Dup > 0 {
		add("dup=%v", li.Dup)
	}
	if li.Reorder > 0 {
		add("reorder=%v", li.Reorder)
	}
	if li.RateBps > 0 {
		add("rate=%s", formatRate(li.RateBps))
	}
	if li.Limit > 0 {
		add("limit=%d", li.Limit)
	}
	return strings.Join(parts, ",")
}

// NetemSpec maps link names to impairments. The key "*" is a
// wildcard matching every link without an exact entry. The zero/nil
// value impairs nothing.
type NetemSpec map[string]LinkImpairment

// Zero reports whether the spec impairs nothing.
func (n NetemSpec) Zero() bool {
	for _, li := range n {
		if !li.Zero() {
			return false
		}
	}
	return true
}

// For returns the impairment for the named link: an exact entry
// first, the "*" wildcard otherwise.
func (n NetemSpec) For(link string) (LinkImpairment, bool) {
	if li, ok := n[link]; ok {
		return li, true
	}
	li, ok := n["*"]
	return li, ok
}

// String renders the spec in the netem clause grammar, links in
// sorted order; ParseNetem round-trips it.
func (n NetemSpec) String() string {
	links := make([]string, 0, len(n))
	for link := range n {
		links = append(links, link)
	}
	sort.Strings(links)
	var parts []string
	for _, link := range links {
		parts = append(parts, fmt.Sprintf("netem[link=%s]:%s", link, n[link].String()))
	}
	return strings.Join(parts, ";")
}

// ParseNetem parses a standalone netem spec — the -netem CLI flag's
// grammar, which is the netem subset of the full fault-spec grammar
// (see ParseSpec):
//
//	netemspec := section (";" section)*
//	section   := "netem[link=" LINK "]:" sub ("," sub)*
//	sub       := "delay=" DUR | "jitter=" DUR | "loss=" PCT
//	           | "dup=" PCT | "reorder=" PCT | "rate=" RATE
//	           | "limit=" N
//	LINK      := link name ("agent->collector", ...) or "*"
//	PCT       := probability as a percentage ("0.5%") or a plain
//	             fraction in [0,1] ("0.005")
//	RATE      := bits per second with an optional tc-style unit:
//	             "100mbit", "512kbit", "1gbit", "800bit", or a bare
//	             number of bit/s
//
// for example "netem[link=agent->collector]:delay=2ms,jitter=1ms,
// loss=0.5%,dup=0.1%,rate=100mbit". An empty string parses to the
// nil (impair-nothing) spec.
func ParseNetem(s string) (NetemSpec, error) {
	if strings.TrimSpace(s) == "" {
		return nil, nil
	}
	spec, err := ParseSpec(s)
	if err != nil {
		return nil, err
	}
	if !spec.OnlyNetem() {
		return nil, fmt.Errorf("fault: netem spec %q contains non-netem clauses %q", s, spec.String())
	}
	return spec.Netem, nil
}

// netemKeys are the sub-clause names that attach to an open netem
// section. "delay" is shared with the fault grammar and is
// disambiguated by shape: fault delay is DUR@P, netem delay is DUR.
var netemKeys = map[string]bool{
	"delay": true, "jitter": true, "loss": true, "dup": true,
	"reorder": true, "rate": true, "limit": true,
}

// parseNetemSub applies one sub-clause to a link's impairment.
func parseNetemSub(li *LinkImpairment, name, val string) error {
	switch name {
	case "delay", "jitter":
		d, err := time.ParseDuration(val)
		if err != nil {
			return err
		}
		if d < 0 {
			return fmt.Errorf("negative duration %v", d)
		}
		if name == "delay" {
			li.Delay = d
		} else {
			li.Jitter = d
		}
	case "loss", "dup", "reorder":
		p, err := parsePct(val)
		if err != nil {
			return err
		}
		switch name {
		case "loss":
			li.Loss = p
		case "dup":
			li.Dup = p
		case "reorder":
			li.Reorder = p
		}
	case "rate":
		r, err := parseRate(val)
		if err != nil {
			return err
		}
		li.RateBps = r
	case "limit":
		n, err := strconv.Atoi(val)
		if err != nil {
			return err
		}
		if n <= 0 {
			return fmt.Errorf("limit %d must be positive", n)
		}
		li.Limit = n
	default:
		return fmt.Errorf("unknown netem sub-clause %q", name)
	}
	return nil
}

// parsePct parses a probability written either as a percentage
// ("0.5%" → 0.005) or as a plain fraction in [0,1].
func parsePct(s string) (float64, error) {
	if pct, ok := strings.CutSuffix(s, "%"); ok {
		v, err := strconv.ParseFloat(pct, 64)
		if err != nil {
			return 0, err
		}
		if v < 0 || v > 100 {
			return 0, fmt.Errorf("percentage %v%% outside [0%%,100%%]", v)
		}
		return v / 100, nil
	}
	return parseProb(s)
}

// rateUnits maps tc-style rate suffixes to bits per second.
var rateUnits = []struct {
	suffix string
	mult   int64
}{
	{"gbit", 1_000_000_000},
	{"mbit", 1_000_000},
	{"kbit", 1_000},
	{"bit", 1},
}

// parseRate parses a tc-style rate ("100mbit", "1gbit", bare bit/s).
func parseRate(s string) (int64, error) {
	lower := strings.ToLower(s)
	mult := int64(1)
	num := lower
	for _, u := range rateUnits {
		if v, ok := strings.CutSuffix(lower, u.suffix); ok {
			mult, num = u.mult, v
			break
		}
	}
	v, err := strconv.ParseFloat(num, 64)
	if err != nil {
		return 0, fmt.Errorf("bad rate %q: %w", s, err)
	}
	r := int64(v * float64(mult))
	if r <= 0 {
		return 0, fmt.Errorf("rate %q must be positive", s)
	}
	return r, nil
}

// formatRate renders bits per second with the largest exact tc unit.
func formatRate(bps int64) string {
	for _, u := range rateUnits {
		if u.mult > 1 && bps%u.mult == 0 {
			return fmt.Sprintf("%d%s", bps/u.mult, u.suffix)
		}
	}
	return fmt.Sprintf("%dbit", bps)
}
