// Package fault is the repository's deterministic fault-injection
// layer: a seed-driven Injector that decides, site by site, when the
// faults of a Spec fire, plus wrappers that thread those decisions
// into the store (transient errors, shard stalls), the models
// (per-model scoring failures, injected latency), and the telemetry
// feed (report drop, corruption, delay). The live pipeline (core.Live)
// consumes the injector directly for worker panics and telemetry
// faults and through the wrappers for everything else.
//
// Determinism: every fault site owns its own RNG seeded from the
// master seed hashed with the site name, so the decision sequence at
// each site is a pure function of (seed, call count) — independent of
// goroutine interleaving across sites. The chaos tests replay the
// same seed to get the same schedule.
//
// Accounting: the injector counts every fired fault per site and
// keeps a taint set of flow keys whose records a fault touched. A
// chaos run can therefore separate flows with faulted history from
// fault-free flows and assert the latter decide bit-identically to a
// no-fault run.
//
// All methods are nil-safe: a nil *Injector injects nothing, so the
// hot path pays one branch when fault injection is off.
package fault

import (
	"errors"
	"hash/fnv"
	"math/rand"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"github.com/amlight/intddos/internal/telemetry"
)

// ErrInjected is the transient error injected into store operations
// and model scoring calls. Consumers should treat it like any other
// transient failure: retry, back off, or degrade.
var ErrInjected = errors.New("fault: injected transient error")

// InjectedPanic is the value injected worker panics carry, so panic
// recovery can tell a scheduled fault from a genuine bug in logs.
type InjectedPanic struct{ Site string }

func (p InjectedPanic) Error() string { return "fault: injected panic at " + p.Site }

// Fault site names, used for per-site RNG derivation and counts.
const (
	SiteDrop           = "drop"
	SiteCorrupt        = "corrupt"
	SiteDelay          = "delay"
	SiteStoreErr       = "store_err"
	SiteStoreStall     = "store_stall"
	SiteWorkerPanic    = "worker_panic"
	SiteModelFail      = "model_fail"
	SitePredictLatency = "predict_latency"
)

// Sites lists every fault site name, in stable order.
func Sites() []string {
	return []string{
		SiteDrop, SiteCorrupt, SiteDelay, SiteStoreErr, SiteStoreStall,
		SiteWorkerPanic, SiteModelFail, SitePredictLatency,
	}
}

// site is one fault point's private RNG and fire counter.
type site struct {
	mu    sync.Mutex
	rng   *rand.Rand
	fired atomic.Int64
}

// roll draws one uniform [0,1) variate.
func (s *site) roll() float64 {
	s.mu.Lock()
	v := s.rng.Float64()
	s.mu.Unlock()
	return v
}

// fraction draws a uniform scaling factor in (0,1]; used to spread
// injected delays instead of firing a single fixed duration.
func (s *site) fraction() float64 {
	s.mu.Lock()
	v := 1 - s.rng.Float64()
	s.mu.Unlock()
	return v
}

// Injector decides when the faults of a Spec fire. Construct with
// New; the zero value and nil inject nothing. Safe for concurrent
// use.
type Injector struct {
	spec Spec
	seed int64

	sites map[string]*site

	taintMu sync.Mutex
	tainted map[string]struct{}
}

// New builds an injector for the spec with per-site RNGs derived from
// seed.
func New(spec Spec, seed int64) *Injector {
	in := &Injector{
		spec:    spec,
		seed:    seed,
		sites:   make(map[string]*site, 8),
		tainted: make(map[string]struct{}),
	}
	for _, name := range Sites() {
		in.sites[name] = &site{rng: rand.New(rand.NewSource(deriveSeed(seed, name)))}
	}
	return in
}

// Parse is ParseSpec + New in one call.
func Parse(specStr string, seed int64) (*Injector, error) {
	spec, err := ParseSpec(specStr)
	if err != nil {
		return nil, err
	}
	if spec.Zero() {
		return nil, nil
	}
	return New(spec, seed), nil
}

// deriveSeed mixes the site name into the master seed (FNV-1a), so
// each site's decision stream is independent of the others.
func deriveSeed(seed int64, name string) int64 {
	h := fnv.New64a()
	h.Write([]byte(name))
	return seed ^ int64(h.Sum64())
}

// Spec returns the injector's schedule (zero for nil).
func (in *Injector) Spec() Spec {
	if in == nil {
		return Spec{}
	}
	return in.spec
}

// Seed returns the master seed.
func (in *Injector) Seed() int64 {
	if in == nil {
		return 0
	}
	return in.seed
}

// hit fires the site with probability p, counting fired faults.
func (in *Injector) hit(name string, p float64) bool {
	if in == nil || p <= 0 {
		return false
	}
	s := in.sites[name]
	if p < 1 && s.roll() >= p {
		return false
	}
	s.fired.Add(1)
	return true
}

// DropReport reports whether the next telemetry report should be
// dropped before ingestion.
func (in *Injector) DropReport() bool {
	return in.hit(SiteDrop, in.Spec().Drop)
}

// CorruptReport scrambles the report's payload fields in place with
// the spec's corruption probability, returning whether it fired. The
// scramble is drawn from the site RNG, so a seeded schedule corrupts
// the same way every run.
func (in *Injector) CorruptReport(r *telemetry.Report) bool {
	if !in.hit(SiteCorrupt, in.Spec().Corrupt) {
		return false
	}
	s := in.sites[SiteCorrupt]
	s.mu.Lock()
	r.Length ^= uint16(s.rng.Intn(1 << 16))
	for i := range r.Hops {
		r.Hops[i].QueueDepth ^= uint32(s.rng.Intn(1 << 16))
	}
	s.mu.Unlock()
	return true
}

// ReportDelay returns how long to delay the next report's ingestion
// (zero: no delay).
func (in *Injector) ReportDelay() time.Duration {
	if !in.hit(SiteDelay, in.Spec().DelayP) {
		return 0
	}
	return time.Duration(float64(in.spec.Delay) * in.sites[SiteDelay].fraction())
}

// StoreErr returns ErrInjected when a transient store failure fires.
func (in *Injector) StoreErr() error {
	if in.hit(SiteStoreErr, in.Spec().StoreErr) {
		return ErrInjected
	}
	return nil
}

// StoreStall returns how long the next store operation should stall.
func (in *Injector) StoreStall() time.Duration {
	if !in.hit(SiteStoreStall, in.Spec().StoreStallP) {
		return 0
	}
	return time.Duration(float64(in.spec.StoreStall) * in.sites[SiteStoreStall].fraction())
}

// WorkerPanicNow reports whether a prediction worker should panic at
// the start of its next micro-batch.
func (in *Injector) WorkerPanicNow() bool {
	return in.hit(SiteWorkerPanic, in.Spec().WorkerPanic)
}

// ModelFail reports whether the named model's next scoring call
// should fail. A "*" entry in the spec applies to every model; a
// named entry overrides it.
func (in *Injector) ModelFail(name string) bool {
	spec := in.Spec()
	if len(spec.ModelFail) == 0 {
		return false
	}
	p, ok := spec.ModelFail[name]
	if !ok {
		p, ok = spec.ModelFail["*"]
		if !ok {
			return false
		}
	}
	return in.hit(SiteModelFail, p)
}

// PredictDelay returns the injected latency for the next model
// scoring call (zero: none).
func (in *Injector) PredictDelay() time.Duration {
	if !in.hit(SitePredictLatency, in.Spec().PredictLatencyP) {
		return 0
	}
	return time.Duration(float64(in.spec.PredictLatency) * in.sites[SitePredictLatency].fraction())
}

// Taint marks a flow key as touched by a fault. The pipeline taints
// every key whose record a fault dropped, corrupted, delayed,
// abandoned, or scored under a degraded ensemble, so chaos tests can
// compare only fault-free flows against a clean run.
func (in *Injector) Taint(key string) {
	if in == nil {
		return
	}
	in.taintMu.Lock()
	in.tainted[key] = struct{}{}
	in.taintMu.Unlock()
}

// IsTainted reports whether a fault touched the key's history.
func (in *Injector) IsTainted(key string) bool {
	if in == nil {
		return false
	}
	in.taintMu.Lock()
	_, ok := in.tainted[key]
	in.taintMu.Unlock()
	return ok
}

// TaintCount returns the number of tainted flow keys.
func (in *Injector) TaintCount() int {
	if in == nil {
		return 0
	}
	in.taintMu.Lock()
	n := len(in.tainted)
	in.taintMu.Unlock()
	return n
}

// Counts returns fired-fault counts per site (only sites that fired).
func (in *Injector) Counts() map[string]int64 {
	if in == nil {
		return nil
	}
	out := make(map[string]int64)
	for name, s := range in.sites {
		if n := s.fired.Load(); n > 0 {
			out[name] = n
		}
	}
	return out
}

// SiteCount returns how many times one site fired (0 for nil).
func (in *Injector) SiteCount(name string) int64 {
	if in == nil {
		return 0
	}
	s, ok := in.sites[name]
	if !ok {
		return 0
	}
	return s.fired.Load()
}

// Summary renders the fired-fault counts as one line, stable order.
func (in *Injector) Summary() string {
	counts := in.Counts()
	if len(counts) == 0 {
		return "no faults fired"
	}
	names := make([]string, 0, len(counts))
	for name := range counts {
		names = append(names, name)
	}
	sort.Strings(names)
	out := ""
	for i, name := range names {
		if i > 0 {
			out += " "
		}
		out += name + "=" + strconv.FormatInt(counts[name], 10)
	}
	return out
}
