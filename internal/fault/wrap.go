package fault

import (
	"fmt"
	"time"

	"github.com/amlight/intddos/internal/flow"
	"github.com/amlight/intddos/internal/ml"
	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/obs"
	"github.com/amlight/intddos/internal/store"
)

// Store wraps a store.Store with injected shard stalls and — on the
// store.Fallible paths — transient errors. The plain Store methods
// stall but cannot fail (the interface has no error returns), so
// consumers that want the full fault surface must use TryUpsertFlow
// and TryPollShard; core.Live does.
type Store struct {
	inner store.Store
	in    *Injector
}

// WrapStore wraps s with the injector's store faults. A nil injector
// returns a wrapper that behaves exactly like s.
func WrapStore(s store.Store, in *Injector) *Store {
	return &Store{inner: s, in: in}
}

// Unwrap returns the wrapped store.
func (s *Store) Unwrap() store.Store { return s.inner }

// stall sleeps through an injected shard stall, if one fires.
func (s *Store) stall() {
	if d := s.in.StoreStall(); d > 0 {
		time.Sleep(d)
	}
}

// UpsertFlow stalls, then writes through.
func (s *Store) UpsertFlow(key flow.Key, features []float64, registeredAt, updatedAt netsim.Time, updates int, truth bool, attackType string) bool {
	s.stall()
	return s.inner.UpsertFlow(key, features, registeredAt, updatedAt, updates, truth, attackType)
}

// TryUpsertFlow stalls, then fails transiently or writes through.
func (s *Store) TryUpsertFlow(key flow.Key, features []float64, registeredAt, updatedAt netsim.Time, updates int, truth bool, attackType string) (bool, error) {
	s.stall()
	if err := s.in.StoreErr(); err != nil {
		return false, err
	}
	return s.inner.UpsertFlow(key, features, registeredAt, updatedAt, updates, truth, attackType), nil
}

// Flow reads through.
func (s *Store) Flow(key flow.Key) (store.FlowRecord, bool) { return s.inner.Flow(key) }

// FlowCount reads through.
func (s *Store) FlowCount() int { return s.inner.FlowCount() }

// DeleteFlow writes through.
func (s *Store) DeleteFlow(key flow.Key) { s.inner.DeleteFlow(key) }

// Shards reads through.
func (s *Store) Shards() int { return s.inner.Shards() }

// PollShard stalls, then polls through.
func (s *Store) PollShard(shard int, cursor uint64, max int) ([]store.FlowRecord, uint64) {
	s.stall()
	return s.inner.PollShard(shard, cursor, max)
}

// TryPollShard stalls, then fails transiently or polls through.
func (s *Store) TryPollShard(shard int, cursor uint64, max int) ([]store.FlowRecord, uint64, error) {
	s.stall()
	if err := s.in.StoreErr(); err != nil {
		return nil, cursor, err
	}
	recs, cur := s.inner.PollShard(shard, cursor, max)
	return recs, cur, nil
}

// TrimShard writes through (trim is bookkeeping; failing it would
// only delay memory reclamation, not detection).
func (s *Store) TrimShard(shard int, cursor uint64) { s.inner.TrimShard(shard, cursor) }

// PollGlobal stalls, then polls through.
func (s *Store) PollGlobal(cursor uint64, max int) ([]store.FlowRecord, uint64) {
	s.stall()
	return s.inner.PollGlobal(cursor, max)
}

// TrimGlobal writes through, like TrimShard.
func (s *Store) TrimGlobal(cursor uint64) { s.inner.TrimGlobal(cursor) }

// JournalLen reads through.
func (s *Store) JournalLen() int { return s.inner.JournalLen() }

// AppendPrediction writes through.
func (s *Store) AppendPrediction(p store.PredictionRecord) { s.inner.AppendPrediction(p) }

// Predictions reads through.
func (s *Store) Predictions() []store.PredictionRecord { return s.inner.Predictions() }

// PredictionCount reads through.
func (s *Store) PredictionCount() int { return s.inner.PredictionCount() }

// SetJournalNew writes through.
func (s *Store) SetJournalNew(on bool) { s.inner.SetJournalNew(on) }

// Instrument registers the wrapped store's metrics.
func (s *Store) Instrument(reg *obs.Registry) { s.inner.Instrument(reg) }

var (
	_ store.Store    = (*Store)(nil)
	_ store.Fallible = (*Store)(nil)
)

// Model wraps a classifier with injected per-model scoring failures
// and latency on the fallible batch path. The plain Classifier
// surface delegates untouched, so training, experiments, and
// serialization see the original model.
type Model struct {
	inner ml.Classifier
	in    *Injector
}

// WrapModel wraps m with the injector's model faults.
func WrapModel(m ml.Classifier, in *Injector) *Model {
	return &Model{inner: m, in: in}
}

// Unwrap returns the wrapped classifier.
func (m *Model) Unwrap() ml.Classifier { return m.inner }

// Name delegates, so fault targeting and health reporting use the
// real model name.
func (m *Model) Name() string { return m.inner.Name() }

// Fit delegates.
func (m *Model) Fit(X [][]float64, y []int) error { return m.inner.Fit(X, y) }

// Predict delegates (faults are injected only on the fallible batch
// path, where the caller can observe and handle them).
func (m *Model) Predict(x []float64) int { return m.inner.Predict(x) }

// PredictBatch delegates through the model's amortized path.
func (m *Model) PredictBatch(X [][]float64) []int { return ml.PredictBatch(m.inner, X) }

// Features delegates shape reporting when the model supports it.
func (m *Model) Features() int { return ml.ExpectedFeatures(m.inner) }

// TryPredictBatch injects scoring latency and failures, then scores
// through the model's fallible path (with panic containment).
func (m *Model) TryPredictBatch(X [][]float64) ([]int, error) {
	if d := m.in.PredictDelay(); d > 0 {
		time.Sleep(d)
	}
	if m.in.ModelFail(m.inner.Name()) {
		return nil, fmt.Errorf("model %s: %w", m.inner.Name(), ErrInjected)
	}
	return ml.TryPredictBatch(m.inner, X)
}

var (
	_ ml.BatchClassifier         = (*Model)(nil)
	_ ml.FallibleBatchClassifier = (*Model)(nil)
	_ ml.FeatureCounter          = (*Model)(nil)
)
