package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Spec is a parsed fault schedule: which fault sites fire and how
// often. The zero value injects nothing. Specs are written in a small
// clause grammar (see ParseSpec) so a schedule fits in one CLI flag
// and one test constant.
type Spec struct {
	// Drop is the probability an incoming telemetry report is dropped
	// before ingestion.
	Drop float64
	// Corrupt is the probability a report's payload fields are
	// scrambled before ingestion.
	Corrupt float64
	// Delay/DelayP: with probability DelayP, ingestion of a report is
	// delayed by up to Delay.
	Delay  time.Duration
	DelayP float64

	// StoreErr is the probability a store write or poll fails with a
	// transient error (surfaced only on the store.Fallible paths).
	StoreErr float64
	// StoreStall/StoreStallP: with probability StoreStallP, a store
	// operation stalls for StoreStall before proceeding.
	StoreStall  time.Duration
	StoreStallP float64

	// WorkerPanic is the probability a prediction worker panics at the
	// start of a scoring micro-batch.
	WorkerPanic float64

	// ModelFail maps a model name (or "*" for every model) to the
	// probability one of its batch scoring calls fails.
	ModelFail map[string]float64

	// PredictLatency/PredictLatencyP: with probability
	// PredictLatencyP, a model scoring call is delayed by up to
	// PredictLatency.
	PredictLatency  time.Duration
	PredictLatencyP float64
}

// Zero reports whether the spec injects nothing.
func (s Spec) Zero() bool {
	return s.Drop == 0 && s.Corrupt == 0 && s.DelayP == 0 &&
		s.StoreErr == 0 && s.StoreStallP == 0 && s.WorkerPanic == 0 &&
		len(s.ModelFail) == 0 && s.PredictLatencyP == 0
}

// HasStoreFaults reports whether the spec touches the store layer,
// i.e. whether a pipeline needs its store wrapped.
func (s Spec) HasStoreFaults() bool { return s.StoreErr > 0 || s.StoreStallP > 0 }

// HasModelFaults reports whether the spec touches model scoring.
func (s Spec) HasModelFaults() bool { return len(s.ModelFail) > 0 || s.PredictLatencyP > 0 }

// ParseSpec parses a fault schedule written in the clause grammar
//
//	spec      := clause ("," clause)*
//	clause    := "drop=" P | "corrupt=" P | "delay=" DUR "@" P
//	           | "store.err=" P | "store.stall=" DUR "@" P
//	           | "panic=" P
//	           | "model.fail=" NAME "@" P
//	           | "latency=" DUR "@" P
//	P         := probability in [0,1]
//	DUR       := Go duration ("2ms", "150us", ...)
//	NAME      := model name as reported by Classifier.Name, or "*"
//
// for example "drop=0.01,store.stall=5ms@0.02,model.fail=GNB@0.5".
// Clauses may also be separated by semicolons or spaces. An empty
// string parses to the zero (inject-nothing) spec.
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	fields := strings.FieldsFunc(s, func(r rune) bool {
		return r == ',' || r == ';' || r == ' ' || r == '\t' || r == '\n'
	})
	for _, f := range fields {
		name, val, ok := strings.Cut(f, "=")
		if !ok {
			return Spec{}, fmt.Errorf("fault: clause %q: want name=value", f)
		}
		switch name {
		case "drop":
			p, err := parseProb(val)
			if err != nil {
				return Spec{}, clauseErr(f, err)
			}
			spec.Drop = p
		case "corrupt":
			p, err := parseProb(val)
			if err != nil {
				return Spec{}, clauseErr(f, err)
			}
			spec.Corrupt = p
		case "delay":
			d, p, err := parseDurProb(val)
			if err != nil {
				return Spec{}, clauseErr(f, err)
			}
			spec.Delay, spec.DelayP = d, p
		case "store.err":
			p, err := parseProb(val)
			if err != nil {
				return Spec{}, clauseErr(f, err)
			}
			spec.StoreErr = p
		case "store.stall":
			d, p, err := parseDurProb(val)
			if err != nil {
				return Spec{}, clauseErr(f, err)
			}
			spec.StoreStall, spec.StoreStallP = d, p
		case "panic":
			p, err := parseProb(val)
			if err != nil {
				return Spec{}, clauseErr(f, err)
			}
			spec.WorkerPanic = p
		case "model.fail":
			target, pstr, ok := strings.Cut(val, "@")
			if !ok || target == "" {
				return Spec{}, fmt.Errorf("fault: clause %q: want model.fail=NAME@P", f)
			}
			p, err := parseProb(pstr)
			if err != nil {
				return Spec{}, clauseErr(f, err)
			}
			if spec.ModelFail == nil {
				spec.ModelFail = make(map[string]float64)
			}
			spec.ModelFail[target] = p
		case "latency":
			d, p, err := parseDurProb(val)
			if err != nil {
				return Spec{}, clauseErr(f, err)
			}
			spec.PredictLatency, spec.PredictLatencyP = d, p
		default:
			return Spec{}, fmt.Errorf("fault: unknown clause %q", name)
		}
	}
	return spec, nil
}

func clauseErr(clause string, err error) error {
	return fmt.Errorf("fault: clause %q: %w", clause, err)
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0,1]", p)
	}
	return p, nil
}

func parseDurProb(s string) (time.Duration, float64, error) {
	dstr, pstr, ok := strings.Cut(s, "@")
	if !ok {
		return 0, 0, fmt.Errorf("want DUR@P, got %q", s)
	}
	d, err := time.ParseDuration(dstr)
	if err != nil {
		return 0, 0, err
	}
	if d < 0 {
		return 0, 0, fmt.Errorf("negative duration %v", d)
	}
	p, err := parseProb(pstr)
	if err != nil {
		return 0, 0, err
	}
	return d, p, nil
}

// String renders the spec back in the clause grammar; ParseSpec
// round-trips it.
func (s Spec) String() string {
	var parts []string
	add := func(format string, args ...any) { parts = append(parts, fmt.Sprintf(format, args...)) }
	if s.Drop > 0 {
		add("drop=%v", s.Drop)
	}
	if s.Corrupt > 0 {
		add("corrupt=%v", s.Corrupt)
	}
	if s.DelayP > 0 {
		add("delay=%v@%v", s.Delay, s.DelayP)
	}
	if s.StoreErr > 0 {
		add("store.err=%v", s.StoreErr)
	}
	if s.StoreStallP > 0 {
		add("store.stall=%v@%v", s.StoreStall, s.StoreStallP)
	}
	if s.WorkerPanic > 0 {
		add("panic=%v", s.WorkerPanic)
	}
	names := make([]string, 0, len(s.ModelFail))
	for name := range s.ModelFail {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		add("model.fail=%s@%v", name, s.ModelFail[name])
	}
	if s.PredictLatencyP > 0 {
		add("latency=%v@%v", s.PredictLatency, s.PredictLatencyP)
	}
	return strings.Join(parts, ",")
}
