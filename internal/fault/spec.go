package fault

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Spec is a parsed fault schedule: which fault sites fire and how
// often. The zero value injects nothing. Specs are written in a small
// clause grammar (see ParseSpec) so a schedule fits in one CLI flag
// and one test constant.
type Spec struct {
	// Drop is the probability an incoming telemetry report is dropped
	// before ingestion.
	Drop float64
	// Corrupt is the probability a report's payload fields are
	// scrambled before ingestion.
	Corrupt float64
	// Delay/DelayP: with probability DelayP, ingestion of a report is
	// delayed by up to Delay.
	Delay  time.Duration
	DelayP float64

	// StoreErr is the probability a store write or poll fails with a
	// transient error (surfaced only on the store.Fallible paths).
	StoreErr float64
	// StoreStall/StoreStallP: with probability StoreStallP, a store
	// operation stalls for StoreStall before proceeding.
	StoreStall  time.Duration
	StoreStallP float64

	// WorkerPanic is the probability a prediction worker panics at the
	// start of a scoring micro-batch.
	WorkerPanic float64

	// ModelFail maps a model name (or "*" for every model) to the
	// probability one of its batch scoring calls fails.
	ModelFail map[string]float64

	// PredictLatency/PredictLatencyP: with probability
	// PredictLatencyP, a model scoring call is delayed by up to
	// PredictLatency.
	PredictLatency  time.Duration
	PredictLatencyP float64

	// Netem holds per-link adverse-network impairments parsed from
	// netem[...] sections. It is consumed by the simulator's link
	// wiring (the testbed), not by the Injector: impairment is a
	// property of the wire, faults are properties of the pipeline.
	Netem NetemSpec
}

// Zero reports whether the spec injects nothing and impairs nothing.
func (s Spec) Zero() bool {
	return s.SitesZero() && s.Netem.Zero()
}

// SitesZero reports whether the spec fires no fault sites (it may
// still carry netem link impairments).
func (s Spec) SitesZero() bool {
	return s.Drop == 0 && s.Corrupt == 0 && s.DelayP == 0 &&
		s.StoreErr == 0 && s.StoreStallP == 0 && s.WorkerPanic == 0 &&
		len(s.ModelFail) == 0 && s.PredictLatencyP == 0
}

// OnlyNetem reports whether the spec consists of netem sections
// alone — the shape the standalone -netem flag requires.
func (s Spec) OnlyNetem() bool { return s.SitesZero() && len(s.Netem) > 0 }

// HasStoreFaults reports whether the spec touches the store layer,
// i.e. whether a pipeline needs its store wrapped.
func (s Spec) HasStoreFaults() bool { return s.StoreErr > 0 || s.StoreStallP > 0 }

// HasModelFaults reports whether the spec touches model scoring.
func (s Spec) HasModelFaults() bool { return len(s.ModelFail) > 0 || s.PredictLatencyP > 0 }

// ParseSpec parses a fault schedule written in the clause grammar
//
//	spec      := clause ("," clause)*
//	clause    := "drop=" P | "corrupt=" P | "delay=" DUR "@" P
//	           | "store.err=" P | "store.stall=" DUR "@" P
//	           | "panic=" P
//	           | "model.fail=" NAME "@" P
//	           | "latency=" DUR "@" P
//	P         := probability in [0,1]
//	DUR       := Go duration ("2ms", "150us", ...)
//	NAME      := model name as reported by Classifier.Name, or "*"
//
// for example "drop=0.01,store.stall=5ms@0.02,model.fail=GNB@0.5".
// Clauses may also be separated by semicolons or spaces. An empty
// string parses to the zero (inject-nothing) spec.
//
// The grammar composes with netem link-impairment sections (the
// adverse-network half of the scenario DSL):
//
//	section   := "netem[link=" LINK "]:" sub
//	sub       := "delay=" DUR | "jitter=" DUR | "loss=" PCT
//	           | "dup=" PCT | "reorder=" PCT | "rate=" RATE
//	           | "limit=" N
//
// A "netem[link=NAME]:" header opens a section; the comma-separated
// clauses that follow attach to it for as long as they use netem
// sub-clause names ("netem[link=agent->collector]:delay=2ms,
// jitter=1ms,loss=0.5%,dup=0.1%,rate=100mbit"). A fault clause name,
// a new netem header, or a semicolon closes the section. "delay" is
// shared between both grammars and disambiguated by shape: fault
// delay is DUR@P, netem delay a bare DUR. See ParseNetem for the
// sub-clause value forms.
//
// Parse errors name the offending clause by ordinal, text, and byte
// offset, so a long schedule's typo is findable.
func ParseSpec(s string) (Spec, error) {
	var spec Spec
	curLink := "" // open netem section, or ""
	for i, tok := range tokenizeSpec(s) {
		f := tok.text
		cerr := func(err error) error { return clauseErr(i, tok.off, f, err) }
		if tok.semi {
			curLink = ""
		}
		if strings.HasPrefix(f, "netem[") {
			link, sub, err := parseNetemHeader(f)
			if err != nil {
				return Spec{}, cerr(err)
			}
			if spec.Netem == nil {
				spec.Netem = NetemSpec{}
			}
			curLink = link
			li := spec.Netem[curLink]
			if sub != "" {
				name, val, ok := strings.Cut(sub, "=")
				if !ok {
					return Spec{}, cerr(fmt.Errorf("netem body %q: want name=value", sub))
				}
				if err := parseNetemSub(&li, name, val); err != nil {
					return Spec{}, cerr(err)
				}
			}
			spec.Netem[curLink] = li
			continue
		}
		name, val, ok := strings.Cut(f, "=")
		if !ok {
			return Spec{}, cerr(fmt.Errorf("want name=value"))
		}
		if curLink != "" && netemKeys[name] && !(name == "delay" && strings.Contains(val, "@")) {
			li := spec.Netem[curLink]
			if err := parseNetemSub(&li, name, val); err != nil {
				return Spec{}, cerr(err)
			}
			spec.Netem[curLink] = li
			continue
		}
		curLink = ""
		switch name {
		case "drop":
			p, err := parseProb(val)
			if err != nil {
				return Spec{}, cerr(err)
			}
			spec.Drop = p
		case "corrupt":
			p, err := parseProb(val)
			if err != nil {
				return Spec{}, cerr(err)
			}
			spec.Corrupt = p
		case "delay":
			d, p, err := parseDurProb(val)
			if err != nil {
				return Spec{}, cerr(err)
			}
			spec.Delay, spec.DelayP = d, p
		case "store.err":
			p, err := parseProb(val)
			if err != nil {
				return Spec{}, cerr(err)
			}
			spec.StoreErr = p
		case "store.stall":
			d, p, err := parseDurProb(val)
			if err != nil {
				return Spec{}, cerr(err)
			}
			spec.StoreStall, spec.StoreStallP = d, p
		case "panic":
			p, err := parseProb(val)
			if err != nil {
				return Spec{}, cerr(err)
			}
			spec.WorkerPanic = p
		case "model.fail":
			target, pstr, ok := strings.Cut(val, "@")
			if !ok || target == "" {
				return Spec{}, cerr(fmt.Errorf("want model.fail=NAME@P"))
			}
			p, err := parseProb(pstr)
			if err != nil {
				return Spec{}, cerr(err)
			}
			if spec.ModelFail == nil {
				spec.ModelFail = make(map[string]float64)
			}
			spec.ModelFail[target] = p
		case "latency":
			d, p, err := parseDurProb(val)
			if err != nil {
				return Spec{}, cerr(err)
			}
			spec.PredictLatency, spec.PredictLatencyP = d, p
		default:
			return Spec{}, cerr(fmt.Errorf("unknown clause name %q", name))
		}
	}
	return spec, nil
}

// specToken is one clause with its position in the source string, so
// parse errors can point at the offending clause.
type specToken struct {
	text string
	off  int  // byte offset of the clause in the spec string
	semi bool // a ';' preceded this clause (closes any open netem section)
}

// tokenizeSpec splits a spec on the separator set, keeping offsets.
func tokenizeSpec(s string) []specToken {
	isSep := func(c byte) bool {
		return c == ',' || c == ';' || c == ' ' || c == '\t' || c == '\n'
	}
	var toks []specToken
	semi := false
	for i := 0; i < len(s); {
		if isSep(s[i]) {
			if s[i] == ';' {
				semi = true
			}
			i++
			continue
		}
		j := i
		for j < len(s) && !isSep(s[j]) {
			j++
		}
		toks = append(toks, specToken{text: s[i:j], off: i, semi: semi})
		semi = false
		i = j
	}
	return toks
}

// parseNetemHeader splits a "netem[link=NAME]:first=sub" clause into
// the link name and the first sub-clause (which may be empty).
func parseNetemHeader(f string) (link, firstSub string, err error) {
	rest := strings.TrimPrefix(f, "netem[")
	head, body, ok := strings.Cut(rest, "]")
	if !ok {
		return "", "", fmt.Errorf("want netem[link=NAME]:...")
	}
	key, name, ok := strings.Cut(head, "=")
	if !ok || key != "link" || name == "" {
		return "", "", fmt.Errorf("want link=NAME inside netem[...], got %q", head)
	}
	if body == "" {
		return name, "", nil
	}
	sub, ok := strings.CutPrefix(body, ":")
	if !ok {
		return "", "", fmt.Errorf("want ':' after netem[link=%s]", name)
	}
	return name, sub, nil
}

// clauseErr wraps a clause parse failure with the clause's ordinal
// (1-based), text, and byte offset in the spec string.
func clauseErr(idx, off int, clause string, err error) error {
	return fmt.Errorf("fault: clause %d (%q, at offset %d): %w", idx+1, clause, off, err)
}

func parseProb(s string) (float64, error) {
	p, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0,1]", p)
	}
	return p, nil
}

func parseDurProb(s string) (time.Duration, float64, error) {
	dstr, pstr, ok := strings.Cut(s, "@")
	if !ok {
		return 0, 0, fmt.Errorf("want DUR@P, got %q", s)
	}
	d, err := time.ParseDuration(dstr)
	if err != nil {
		return 0, 0, err
	}
	if d < 0 {
		return 0, 0, fmt.Errorf("negative duration %v", d)
	}
	p, err := parseProb(pstr)
	if err != nil {
		return 0, 0, err
	}
	return d, p, nil
}

// String renders the spec back in the clause grammar; ParseSpec
// round-trips it.
func (s Spec) String() string {
	var parts []string
	add := func(format string, args ...any) { parts = append(parts, fmt.Sprintf(format, args...)) }
	if s.Drop > 0 {
		add("drop=%v", s.Drop)
	}
	if s.Corrupt > 0 {
		add("corrupt=%v", s.Corrupt)
	}
	if s.DelayP > 0 {
		add("delay=%v@%v", s.Delay, s.DelayP)
	}
	if s.StoreErr > 0 {
		add("store.err=%v", s.StoreErr)
	}
	if s.StoreStallP > 0 {
		add("store.stall=%v@%v", s.StoreStall, s.StoreStallP)
	}
	if s.WorkerPanic > 0 {
		add("panic=%v", s.WorkerPanic)
	}
	names := make([]string, 0, len(s.ModelFail))
	for name := range s.ModelFail {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		add("model.fail=%s@%v", name, s.ModelFail[name])
	}
	if s.PredictLatencyP > 0 {
		add("latency=%v@%v", s.PredictLatency, s.PredictLatencyP)
	}
	if len(s.Netem) > 0 {
		// Each section is one part: its comma-joined sub-clauses
		// re-attach to the section when reparsed, so the rendered
		// spec round-trips through ParseSpec.
		links := make([]string, 0, len(s.Netem))
		for link := range s.Netem {
			links = append(links, link)
		}
		sort.Strings(links)
		for _, link := range links {
			add("netem[link=%s]:%s", link, s.Netem[link].String())
		}
	}
	return strings.Join(parts, ",")
}
