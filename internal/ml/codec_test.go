package ml

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"
)

func TestCodecRoundTrip(t *testing.T) {
	e := NewEncoder()
	e.U64(42)
	e.I64(-7)
	e.F64(3.14159)
	e.F64s([]float64{1, 2, 3})
	e.Ints([]int{-1, 0, 1})
	e.Str("hello")
	e.Blob([]byte{0xDE, 0xAD})

	d := NewDecoder(e.Bytes())
	if d.U64() != 42 || d.I64() != -7 || d.F64() != 3.14159 {
		t.Fatal("scalar round trip failed")
	}
	fs := d.F64s()
	if len(fs) != 3 || fs[2] != 3 {
		t.Fatalf("F64s = %v", fs)
	}
	is := d.Ints()
	if len(is) != 3 || is[0] != -1 {
		t.Fatalf("Ints = %v", is)
	}
	if d.Str() != "hello" {
		t.Fatal("Str round trip failed")
	}
	if !bytes.Equal(d.Blob(), []byte{0xDE, 0xAD}) {
		t.Fatal("Blob round trip failed")
	}
	if !d.Done() {
		t.Errorf("stream not fully consumed: err=%v", d.Err())
	}
}

func TestCodecSpecialFloats(t *testing.T) {
	e := NewEncoder()
	e.F64(math.Inf(1))
	e.F64(math.NaN())
	e.F64(math.Copysign(0, -1)) // -0.0 (the literal -0.0 is untyped +0)
	d := NewDecoder(e.Bytes())
	if !math.IsInf(d.F64(), 1) {
		t.Error("+Inf lost")
	}
	if !math.IsNaN(d.F64()) {
		t.Error("NaN lost")
	}
	if v := d.F64(); math.Signbit(v) == false || v != 0 {
		t.Error("-0 lost")
	}
}

func TestDecoderStickyError(t *testing.T) {
	d := NewDecoder([]byte{1, 2, 3}) // too short for any u64
	if d.U64() != 0 {
		t.Error("short read returned nonzero")
	}
	if d.Err() == nil {
		t.Fatal("no error after short read")
	}
	// Every later read stays zero without panicking.
	if d.F64() != 0 || d.Str() != "" || d.F64s() != nil || d.Blob() != nil {
		t.Error("sticky error not honored")
	}
	if d.Done() {
		t.Error("Done with sticky error")
	}
}

func TestDecoderImplausibleLength(t *testing.T) {
	e := NewEncoder()
	e.U64(1 << 40) // giant length prefix with no payload
	d := NewDecoder(e.Bytes())
	if d.F64s() != nil || d.Err() == nil {
		t.Error("implausible length accepted")
	}
}

func TestDecoderTruncatedString(t *testing.T) {
	e := NewEncoder()
	e.Str("hello world")
	buf := e.Bytes()[:12] // length says 11 but only 4 payload bytes remain
	d := NewDecoder(buf)
	if d.Str() != "" || d.Err() == nil {
		t.Error("truncated string accepted")
	}
}

func TestCodecPropertyRoundTrip(t *testing.T) {
	f := func(u uint64, fs []float64, s string) bool {
		e := NewEncoder()
		e.U64(u)
		e.F64s(fs)
		e.Str(s)
		d := NewDecoder(e.Bytes())
		if d.U64() != u {
			return false
		}
		got := d.F64s()
		if len(got) != len(fs) {
			return false
		}
		for i := range fs {
			// NaN compares unequal; compare bit patterns.
			if math.Float64bits(got[i]) != math.Float64bits(fs[i]) {
				return false
			}
		}
		return d.Str() == s && d.Done()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
