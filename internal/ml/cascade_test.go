package ml

import (
	"fmt"
	"math/rand"
	"testing"
)

// probaStub is a deterministic BatchProbaClassifier: the probability
// is the first feature, clamped to [0, 1].
type probaStub struct{ calls int }

func (p *probaStub) Name() string                     { return "stub" }
func (p *probaStub) Fit(X [][]float64, y []int) error { return nil }
func (p *probaStub) Predict(x []float64) int {
	b := 0
	if p.Proba(x) >= 0.5 {
		b = 1
	}
	return b
}
func (p *probaStub) Proba(x []float64) float64 {
	v := x[0]
	if v < 0 {
		v = 0
	}
	if v > 1 {
		v = 1
	}
	return v
}
func (p *probaStub) PredictProbaBatch(X [][]float64) []float64 {
	p.calls++
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = p.Proba(x)
	}
	return out
}
func (p *probaStub) PredictBatch(X [][]float64) []int {
	out := make([]int, len(X))
	for i, x := range X {
		out[i] = p.Predict(x)
	}
	return out
}

func rowsWithProbs(ps ...float64) [][]float64 {
	X := make([][]float64, len(ps))
	for i, p := range ps {
		X[i] = []float64{p, float64(i)}
	}
	return X
}

func TestCascadeDisabledFallsThroughEverything(t *testing.T) {
	X := rowsWithProbs(0.0, 0.2, 0.5, 0.9, 1.0)
	for name, c := range map[string]*Cascade{
		"nil":          nil,
		"no stages":    {},
		"threshold 0":  {Stages: []CascadeStage{{Name: "t", Model: &probaStub{}, Threshold: 0}}},
		"threshold <0": {Stages: []CascadeStage{{Name: "t", Model: &probaStub{}, Threshold: -1}}},
		"nil model":    {Stages: []CascadeStage{{Name: "t", Threshold: 0.5}}},
	} {
		stage, _ := c.TriageBatch(X, nil, nil)
		for i, st := range stage {
			if st != 0 {
				t.Fatalf("%s: row %d exited at stage %d, want fall-through", name, i, st)
			}
		}
		if c.Enabled() {
			t.Fatalf("%s: Enabled() = true, want false", name)
		}
	}
}

func TestCascadeEarlyExit(t *testing.T) {
	m := &probaStub{}
	c := &Cascade{Stages: []CascadeStage{{Name: "t", Model: m, Threshold: 0.9}}}
	if !c.Enabled() {
		t.Fatal("Enabled() = false for an active stage")
	}
	// |2p-1| >= 0.9  <=>  p <= 0.05 or p >= 0.95.
	X := rowsWithProbs(0.01, 0.5, 0.96, 0.07, 1.0, 0.0)
	stage, label := c.TriageBatch(X, nil, nil)
	wantStage := []int{1, 0, 1, 0, 1, 1}
	wantLabel := []int{0, 0, 1, 0, 1, 0}
	for i := range X {
		if stage[i] != wantStage[i] {
			t.Fatalf("row %d stage = %d, want %d", i, stage[i], wantStage[i])
		}
		if stage[i] > 0 && label[i] != wantLabel[i] {
			t.Fatalf("row %d label = %d, want %d", i, label[i], wantLabel[i])
		}
	}
}

func TestCascadeSuspiciousNeverExitsBenign(t *testing.T) {
	c := &Cascade{Stages: []CascadeStage{{Name: "t", Model: &probaStub{}, Threshold: 0.9}}}
	X := rowsWithProbs(0.01, 0.99) // confident benign, confident attack
	sus := []bool{true, true}
	stage, label := c.TriageBatch(X, sus, nil)
	if stage[0] != 0 {
		t.Fatalf("suspicious benign row exited at stage %d, want fall-through", stage[0])
	}
	if stage[1] != 1 || label[1] != 1 {
		t.Fatalf("suspicious attack row: stage %d label %d, want exit as attack", stage[1], label[1])
	}
}

func TestCascadeMultiStage(t *testing.T) {
	// Stage 1 exits only saturated rows; stage 2 mops up anything
	// that is at least leaning one way.
	c := &Cascade{Stages: []CascadeStage{
		{Name: "first", Model: &probaStub{}, Threshold: 0.99},
		{Name: "second", Model: &probaStub{}, Threshold: 0.5},
	}}
	X := rowsWithProbs(0.0, 0.1, 0.5, 0.9, 1.0)
	stage, label := c.TriageBatch(X, nil, nil)
	wantStage := []int{1, 2, 0, 2, 1}
	wantLabel := []int{0, 0, 0, 1, 1}
	for i := range X {
		if stage[i] != wantStage[i] {
			t.Fatalf("row %d stage = %d, want %d", i, stage[i], wantStage[i])
		}
		if stage[i] > 0 && label[i] != wantLabel[i] {
			t.Fatalf("row %d label = %d, want %d", i, label[i], wantLabel[i])
		}
	}
}

// TestCascadeScratchReuse pins that repeated calls with one scratch
// produce the same answers as fresh calls and that the returned
// slices always match len(X).
func TestCascadeScratchReuse(t *testing.T) {
	c := &Cascade{Stages: []CascadeStage{{Name: "t", Model: &probaStub{}, Threshold: 0.8}}}
	s := &CascadeScratch{}
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 50; iter++ {
		n := rng.Intn(40)
		X := make([][]float64, n)
		for i := range X {
			X[i] = []float64{rng.Float64(), 0}
		}
		gotS, gotL := c.TriageBatch(X, nil, s)
		wantS, wantL := c.TriageBatch(X, nil, nil)
		if len(gotS) != n || len(gotL) != n {
			t.Fatalf("iter %d: result length %d/%d, want %d", iter, len(gotS), len(gotL), n)
		}
		if fmt.Sprint(gotS) != fmt.Sprint(wantS) || fmt.Sprint(gotL) != fmt.Sprint(wantL) {
			t.Fatalf("iter %d: scratch reuse diverged from fresh call", iter)
		}
	}
}

// TestEnsembleVotesIntoMatchesEnsembleVotes pins the buffer-reuse
// variant to the allocating one, including that retained vote rows
// are not clobbered by later batches.
func TestEnsembleVotesIntoMatchesEnsembleVotes(t *testing.T) {
	models := []Classifier{&probaStub{}, &probaStub{}}
	s := &VoteScratch{}
	rng := rand.New(rand.NewSource(11))
	var retained [][]int
	var retainedWant []string
	for iter := 0; iter < 30; iter++ {
		n := 1 + rng.Intn(16)
		X := make([][]float64, n)
		for i := range X {
			X[i] = []float64{rng.Float64(), 0}
		}
		votes, ones := EnsembleVotesInto(s, models, X)
		wantVotes, wantOnes := EnsembleVotes(models, X)
		if fmt.Sprint(votes) != fmt.Sprint(wantVotes) || fmt.Sprint(ones) != fmt.Sprint(wantOnes) {
			t.Fatalf("iter %d: EnsembleVotesInto diverged from EnsembleVotes", iter)
		}
		// Retain the first row of each batch, as Decisions do.
		retained = append(retained, votes[0])
		retainedWant = append(retainedWant, fmt.Sprint(wantVotes[0]))
	}
	for i, row := range retained {
		if fmt.Sprint(row) != retainedWant[i] {
			t.Fatalf("retained vote row %d clobbered by a later batch: %v != %s", i, row, retainedWant[i])
		}
	}
}
