package neural

import (
	"fmt"

	"github.com/amlight/intddos/internal/ml"
)

const neuralMagic uint64 = 0x4E4E4D4F44454C31 // "NNMODEL1"

// MarshalBinary serializes the trained layer stack and the display
// configuration.
func (n *Network) MarshalBinary() ([]byte, error) {
	if !n.ready {
		return nil, fmt.Errorf("neural: marshal of untrained model")
	}
	e := ml.NewEncoder()
	e.U64(neuralMagic)
	e.Str(n.cfg.DisplayName)
	e.Ints(n.cfg.Hidden)
	e.I64(int64(len(n.layers)))
	for _, l := range n.layers {
		e.I64(int64(l.in))
		e.I64(int64(l.out))
		e.F64s(l.w)
		e.F64s(l.b)
	}
	return e.Bytes(), nil
}

// UnmarshalBinary restores a network serialized by MarshalBinary.
func (n *Network) UnmarshalBinary(buf []byte) error {
	d := ml.NewDecoder(buf)
	if d.U64() != neuralMagic {
		return fmt.Errorf("neural: bad magic")
	}
	n.cfg.DisplayName = d.Str()
	n.cfg.Hidden = d.Ints()
	nLayers := int(d.I64())
	if d.Err() != nil || nLayers <= 0 || nLayers > 64 {
		return fmt.Errorf("neural: bad layer count")
	}
	n.layers = make([]layer, nLayers)
	for i := range n.layers {
		l := layer{in: int(d.I64()), out: int(d.I64())}
		l.w = d.F64s()
		l.b = d.F64s()
		if d.Err() != nil {
			return d.Err()
		}
		if l.in <= 0 || l.out <= 0 || len(l.w) != l.in*l.out || len(l.b) != l.out {
			return fmt.Errorf("neural: layer %d shape mismatch", i)
		}
		l.vw = make([]float64, len(l.w))
		l.vb = make([]float64, len(l.b))
		n.layers[i] = l
	}
	// Consecutive layers must chain.
	for i := 1; i < len(n.layers); i++ {
		if n.layers[i].in != n.layers[i-1].out {
			return fmt.Errorf("neural: layer %d input %d != previous output %d",
				i, n.layers[i].in, n.layers[i-1].out)
		}
	}
	if n.layers[len(n.layers)-1].out != 1 {
		return fmt.Errorf("neural: final layer width %d, want 1", n.layers[len(n.layers)-1].out)
	}
	n.ready = true
	return nil
}
