package neural

import (
	"math"
	"math/rand"
	"testing"

	"github.com/amlight/intddos/internal/ml"
)

func blobs(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		y[i] = i % 2
		X[i] = []float64{rng.NormFloat64() + float64(y[i])*4, rng.NormFloat64() - float64(y[i])*2}
	}
	return X, y
}

func xorData(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		a, b := rng.Intn(2), rng.Intn(2)
		X[i] = []float64{float64(a)*2 - 1 + rng.NormFloat64()*0.1, float64(b)*2 - 1 + rng.NormFloat64()*0.1}
		y[i] = a ^ b
	}
	return X, y
}

func TestNetworkSeparatesBlobs(t *testing.T) {
	// Standardize as the detection pipeline always does before the NN.
	X, y := blobs(600, 1)
	var sc ml.StandardScaler
	Z, err := sc.FitTransform(X)
	if err != nil {
		t.Fatal(err)
	}
	n := New(ShallowNN(7))
	if err := n.Fit(Z, y); err != nil {
		t.Fatal(err)
	}
	Xt, yt := blobs(300, 2)
	m := ml.Confusion(yt, ml.PredictBatch(n, sc.Transform(Xt)))
	if m.Accuracy() < 0.97 {
		t.Errorf("accuracy = %v, want ≥0.97", m.Accuracy())
	}
}

func TestNetworkLearnsXOR(t *testing.T) {
	X, y := xorData(1200, 3)
	cfg := Config{Hidden: []int{16, 8}, Epochs: 120, LearningRate: 0.05, Seed: 5}
	n := New(cfg)
	if err := n.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	Xt, yt := xorData(400, 4)
	m := ml.Confusion(yt, ml.PredictBatch(n, Xt))
	if m.Accuracy() < 0.95 {
		t.Errorf("XOR accuracy = %v — the hidden layers must matter", m.Accuracy())
	}
}

func TestNetworkDeterministicUnderSeed(t *testing.T) {
	X, y := blobs(300, 6)
	Xt, _ := blobs(100, 7)
	n1, n2 := New(ShallowNN(9)), New(ShallowNN(9))
	n1.Fit(X, y)
	n2.Fit(X, y)
	for i, x := range Xt {
		if math.Abs(n1.Proba(x)-n2.Proba(x)) > 1e-12 {
			t.Fatalf("probas differ at row %d", i)
		}
	}
}

func TestNetworkProbaRange(t *testing.T) {
	X, y := blobs(300, 8)
	n := New(ShallowNN(1))
	n.Fit(X, y)
	for _, x := range X {
		p := n.Proba(x)
		if p < 0 || p > 1 || math.IsNaN(p) {
			t.Fatalf("proba = %v", p)
		}
	}
}

func TestNetworkConfigs(t *testing.T) {
	s := ShallowNN(1)
	if len(s.Hidden) != 3 || s.Hidden[0] != 32 || s.Hidden[1] != 16 || s.Hidden[2] != 8 {
		t.Errorf("ShallowNN hidden = %v", s.Hidden)
	}
	if s.DisplayName != "NN" {
		t.Errorf("ShallowNN name = %q", s.DisplayName)
	}
	m := MLP(1)
	if len(m.Hidden) != 3 || m.Hidden[0] != 64 || m.Hidden[1] != 32 || m.Hidden[2] != 16 {
		t.Errorf("MLP hidden = %v", m.Hidden)
	}
	if m.DisplayName != "MLP" {
		t.Errorf("MLP name = %q", m.DisplayName)
	}
	if New(Config{}).Name() != "NN" {
		t.Error("default display name")
	}
}

func TestNetworkErrors(t *testing.T) {
	n := New(ShallowNN(1))
	if err := n.Fit(nil, nil); err == nil {
		t.Error("empty fit accepted")
	}
	if err := n.Fit([][]float64{{1}}, []int{0, 1}); err == nil {
		t.Error("mismatched fit accepted")
	}
}

func TestNetworkUntrainedDefaults(t *testing.T) {
	n := New(ShallowNN(1))
	if n.Proba([]float64{1, 2}) != 0 || n.Predict([]float64{1, 2}) != 0 {
		t.Error("untrained network should default to benign")
	}
}

func TestNetworkLossDecreases(t *testing.T) {
	// Train twice with different epoch budgets; more epochs must not
	// be worse on the training set for this easy problem.
	rawX, y := blobs(400, 10)
	var sc ml.StandardScaler
	X, err := sc.FitTransform(rawX)
	if err != nil {
		t.Fatal(err)
	}
	short := New(Config{Hidden: []int{8}, Epochs: 1, Seed: 2})
	long := New(Config{Hidden: []int{8}, Epochs: 40, Seed: 2})
	short.Fit(X, y)
	long.Fit(X, y)
	accShort := ml.Confusion(y, ml.PredictBatch(short, X)).Accuracy()
	accLong := ml.Confusion(y, ml.PredictBatch(long, X)).Accuracy()
	if accLong+1e-9 < accShort {
		t.Errorf("long training (%v) worse than short (%v)", accLong, accShort)
	}
	if accLong < 0.95 {
		t.Errorf("converged accuracy = %v", accLong)
	}
}

func TestNetworkSerializeRoundTrip(t *testing.T) {
	X, y := blobs(300, 41)
	var sc ml.StandardScaler
	Z, _ := sc.FitTransform(X)
	n := New(MLP(5))
	if err := n.Fit(Z, y); err != nil {
		t.Fatal(err)
	}
	blob, err := n.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	m := New(Config{})
	if err := m.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if m.Name() != "MLP" {
		t.Errorf("name = %q after round trip", m.Name())
	}
	for i, x := range Z {
		if math.Abs(n.Proba(x)-m.Proba(x)) > 1e-12 {
			t.Fatalf("proba differs at %d", i)
		}
	}
}

func TestNetworkUnmarshalRejectsCorruption(t *testing.T) {
	X, y := blobs(100, 43)
	n := New(ShallowNN(1))
	n.Fit(X, y)
	blob, _ := n.MarshalBinary()
	if err := New(Config{}).UnmarshalBinary(blob[:20]); err == nil {
		t.Error("truncated blob accepted")
	}
	if _, err := New(ShallowNN(1)).MarshalBinary(); err == nil {
		t.Error("untrained marshal accepted")
	}
}
