//go:build !amd64

package neural

// layerBlock4 dispatches to the portable kernel on targets without an
// assembly implementation.
func layerBlock4(w, b, xt, yt []float64, in int) {
	layerBlock4Go(w, b, xt, yt, in)
}
