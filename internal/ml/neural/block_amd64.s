// SSE2 layerBlock4 kernel. Block rows map to vector lanes — two rows
// per XMM register — so each lane runs the scalar forward pass's
// multiply-then-add sequence in the same j order, keeping results
// bit-identical to layerBlock4Go. Outputs are processed two at a time
// (four independent accumulator chains) to cover the FP-add latency.

#include "textflag.h"

// func layerBlock4(w, b, xt, yt []float64, in int)
TEXT ·layerBlock4(SB), NOSPLIT, $0-104
	MOVQ w_base+0(FP), SI
	MOVQ b_base+24(FP), BX
	MOVQ b_len+32(FP), R8  // out
	MOVQ xt_base+48(FP), DX
	MOVQ yt_base+72(FP), DI
	MOVQ in+96(FP), CX

	XORQ R9, R9   // o: output index
	MOVQ SI, R10  // weight-row cursor (row o)

opair:
	// Two outputs per pass while at least two remain.
	MOVQ R8, AX
	SUBQ R9, AX
	CMPQ AX, $2
	JLT  otail
	LEAQ (R10)(CX*8), R11  // weight row o+1

	// Accumulators seeded with the biases: X0/X1 hold rows 01/23 of
	// output o, X2/X3 of output o+1.
	MOVSD    (BX)(R9*8), X0
	UNPCKLPD X0, X0
	MOVAPD   X0, X1
	MOVSD    8(BX)(R9*8), X2
	UNPCKLPD X2, X2
	MOVAPD   X2, X3

	MOVQ  DX, R13  // xt column cursor
	MOVQ  CX, R12  // remaining j iterations
	TESTQ R12, R12
	JZ    opair_done

jloop2:
	MOVSD    (R10), X4
	UNPCKLPD X4, X4      // broadcast w[o][j]
	MOVSD    (R11), X5
	UNPCKLPD X5, X5      // broadcast w[o+1][j]
	MOVUPD   (R13), X6   // xt column j, rows 0-1
	MOVUPD   16(R13), X7 // xt column j, rows 2-3
	MOVAPD   X6, X8
	MULPD    X4, X8
	ADDPD    X8, X0
	MOVAPD   X7, X9
	MULPD    X4, X9
	ADDPD    X9, X1
	MULPD    X5, X6
	ADDPD    X6, X2
	MULPD    X5, X7
	ADDPD    X7, X3
	ADDQ     $8, R10
	ADDQ     $8, R11
	ADDQ     $32, R13
	DECQ     R12
	JNZ      jloop2

opair_done:
	MOVQ   R9, AX
	SHLQ   $5, AX  // o*4 doubles = o*32 bytes
	MOVUPD X0, (DI)(AX*1)
	MOVUPD X1, 16(DI)(AX*1)
	MOVUPD X2, 32(DI)(AX*1)
	MOVUPD X3, 48(DI)(AX*1)
	MOVQ   R11, R10  // row o+1's end is row o+2's start
	ADDQ   $2, R9
	JMP    opair

otail:
	// At most one output remains.
	CMPQ R9, R8
	JGE  done
	MOVSD    (BX)(R9*8), X0
	UNPCKLPD X0, X0
	MOVAPD   X0, X1
	MOVQ     DX, R13
	MOVQ     CX, R12
	TESTQ    R12, R12
	JZ       otail_done

jloop1:
	MOVSD    (R10), X4
	UNPCKLPD X4, X4
	MOVUPD   (R13), X6
	MULPD    X4, X6
	ADDPD    X6, X0
	MOVUPD   16(R13), X7
	MULPD    X4, X7
	ADDPD    X7, X1
	ADDQ     $8, R10
	ADDQ     $32, R13
	DECQ     R12
	JNZ      jloop1

otail_done:
	MOVQ   R9, AX
	SHLQ   $5, AX
	MOVUPD X0, (DI)(AX*1)
	MOVUPD X1, 16(DI)(AX*1)
	INCQ   R9
	JMP    otail

done:
	RET
