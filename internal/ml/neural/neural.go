// Package neural implements the paper's neural-network models from
// scratch: a fully connected multilayer perceptron with ReLU hidden
// layers, a sigmoid output, binary cross-entropy loss, and mini-batch
// SGD with momentum. The paper's two configurations are provided:
// the shallow 32-16-8 network of §IV-B3 and the scikit-learn-style
// MLP 64-32-16 of §IV-C3.
package neural

import (
	"errors"
	"math"
	"math/rand"
)

// Config parameterizes an MLP.
type Config struct {
	// Hidden lists hidden-layer widths, e.g. {32, 16, 8}.
	Hidden []int
	// Epochs is the number of passes over the training set
	// (default 30).
	Epochs int
	// BatchSize is the mini-batch size (default 64).
	BatchSize int
	// LearningRate is the SGD step (default 0.01).
	LearningRate float64
	// Momentum is the classical momentum coefficient (default 0.9).
	Momentum float64
	// Seed makes initialization and shuffling deterministic.
	Seed int64
	// DisplayName overrides Name(), so the same implementation can
	// report as "NN" (stage 1) or "MLP" (stage 2).
	DisplayName string
}

// ShallowNN returns the paper's stage-1 network: three hidden layers
// of 32, 16, and 8 neurons.
func ShallowNN(seed int64) Config {
	return Config{Hidden: []int{32, 16, 8}, Seed: seed, DisplayName: "NN"}
}

// MLP returns the paper's stage-2 network: 64, 32, 16.
func MLP(seed int64) Config {
	return Config{Hidden: []int{64, 32, 16}, Seed: seed, DisplayName: "MLP"}
}

// layer is one dense layer with its momentum buffers.
type layer struct {
	in, out int
	w       []float64 // out×in, row-major
	b       []float64
	vw      []float64
	vb      []float64
}

// Network is a trained MLP classifier.
type Network struct {
	cfg    Config
	layers []layer
	ready  bool
}

// New constructs an untrained network; zero-valued config fields take
// their defaults.
func New(cfg Config) *Network {
	if len(cfg.Hidden) == 0 {
		cfg.Hidden = []int{32, 16, 8}
	}
	if cfg.Epochs <= 0 {
		cfg.Epochs = 30
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 64
	}
	if cfg.LearningRate <= 0 {
		cfg.LearningRate = 0.01
	}
	if cfg.Momentum < 0 || cfg.Momentum >= 1 {
		cfg.Momentum = 0.9
	}
	if cfg.DisplayName == "" {
		cfg.DisplayName = "NN"
	}
	return &Network{cfg: cfg}
}

// Name implements ml.Classifier.
func (n *Network) Name() string { return n.cfg.DisplayName }

// Features returns the trained input width (0 before Fit), letting
// pipelines validate feature-vector shape before scoring.
func (n *Network) Features() int {
	if len(n.layers) == 0 {
		return 0
	}
	return n.layers[0].in
}

// init builds layers with He-initialized weights.
func (n *Network) init(features int, rng *rand.Rand) {
	sizes := append([]int{features}, n.cfg.Hidden...)
	sizes = append(sizes, 1)
	n.layers = make([]layer, len(sizes)-1)
	for li := range n.layers {
		in, out := sizes[li], sizes[li+1]
		l := layer{in: in, out: out}
		l.w = make([]float64, in*out)
		l.b = make([]float64, out)
		l.vw = make([]float64, in*out)
		l.vb = make([]float64, out)
		scale := math.Sqrt(2.0 / float64(in))
		for i := range l.w {
			l.w[i] = rng.NormFloat64() * scale
		}
		n.layers[li] = l
	}
}

// forward computes activations for one row. acts[0] is the input;
// acts[i+1] the output of layer i (ReLU for hidden, sigmoid for the
// final layer).
func (n *Network) forward(x []float64, acts [][]float64) {
	copy(acts[0], x)
	for li := range n.layers {
		l := &n.layers[li]
		in, out := acts[li], acts[li+1]
		last := li == len(n.layers)-1
		for o := 0; o < l.out; o++ {
			sum := l.b[o]
			row := l.w[o*l.in : (o+1)*l.in]
			for i, v := range in {
				sum += row[i] * v
			}
			if last {
				out[o] = 1 / (1 + math.Exp(-sum))
			} else if sum > 0 {
				out[o] = sum
			} else {
				out[o] = 0
			}
		}
	}
}

// Fit trains with mini-batch SGD + momentum on binary cross-entropy.
func (n *Network) Fit(X [][]float64, y []int) error {
	if len(X) == 0 {
		return errors.New("neural: empty training set")
	}
	if len(X) != len(y) {
		return errors.New("neural: rows and labels differ")
	}
	rng := rand.New(rand.NewSource(n.cfg.Seed))
	n.init(len(X[0]), rng)

	acts := n.makeActs()
	// deltas[i] is dLoss/dPreactivation for layer i.
	deltas := make([][]float64, len(n.layers))
	gw := make([][]float64, len(n.layers))
	gb := make([][]float64, len(n.layers))
	for li := range n.layers {
		deltas[li] = make([]float64, n.layers[li].out)
		gw[li] = make([]float64, len(n.layers[li].w))
		gb[li] = make([]float64, len(n.layers[li].b))
	}

	idx := make([]int, len(X))
	for i := range idx {
		idx[i] = i
	}
	for epoch := 0; epoch < n.cfg.Epochs; epoch++ {
		rng.Shuffle(len(idx), func(i, j int) { idx[i], idx[j] = idx[j], idx[i] })
		for start := 0; start < len(idx); start += n.cfg.BatchSize {
			end := start + n.cfg.BatchSize
			if end > len(idx) {
				end = len(idx)
			}
			batch := idx[start:end]
			for li := range gw {
				clear(gw[li])
				clear(gb[li])
			}
			for _, r := range batch {
				n.forward(X[r], acts)
				n.backward(X[r], float64(y[r]), acts, deltas, gw, gb)
			}
			n.step(len(batch), gw, gb)
		}
	}
	n.ready = true
	return nil
}

// backward accumulates gradients for one row into gw/gb.
func (n *Network) backward(x []float64, target float64, acts, deltas, gw, gb [][]float64) {
	last := len(n.layers) - 1
	// Sigmoid + BCE: delta = prediction - target.
	deltas[last][0] = acts[last+1][0] - target
	for li := last - 1; li >= 0; li-- {
		l := &n.layers[li+1]
		for i := 0; i < l.in; i++ {
			var s float64
			for o := 0; o < l.out; o++ {
				s += l.w[o*l.in+i] * deltas[li+1][o]
			}
			if acts[li+1][i] > 0 { // ReLU'
				deltas[li][i] = s
			} else {
				deltas[li][i] = 0
			}
		}
	}
	for li := range n.layers {
		l := &n.layers[li]
		in := acts[li]
		for o := 0; o < l.out; o++ {
			d := deltas[li][o]
			gb[li][o] += d
			row := gw[li][o*l.in : (o+1)*l.in]
			for i, v := range in {
				row[i] += d * v
			}
		}
	}
}

// step applies one momentum SGD update from accumulated gradients.
func (n *Network) step(batch int, gw, gb [][]float64) {
	lr := n.cfg.LearningRate / float64(batch)
	for li := range n.layers {
		l := &n.layers[li]
		for i := range l.w {
			l.vw[i] = n.cfg.Momentum*l.vw[i] - lr*gw[li][i]
			l.w[i] += l.vw[i]
		}
		for i := range l.b {
			l.vb[i] = n.cfg.Momentum*l.vb[i] - lr*gb[li][i]
			l.b[i] += l.vb[i]
		}
	}
}

// makeActs allocates activation buffers sized to the layer stack.
func (n *Network) makeActs() [][]float64 {
	acts := make([][]float64, len(n.layers)+1)
	acts[0] = make([]float64, n.layers[0].in)
	for li := range n.layers {
		acts[li+1] = make([]float64, n.layers[li].out)
	}
	return acts
}

// Proba returns P(attack|x).
func (n *Network) Proba(x []float64) float64 {
	if !n.ready {
		return 0
	}
	acts := n.makeActs()
	n.forward(x, acts)
	return acts[len(acts)-1][0]
}

// Predict implements ml.Classifier with a 0.5 threshold.
func (n *Network) Predict(x []float64) int {
	if n.Proba(x) > 0.5 {
		return 1
	}
	return 0
}

// blockRows is the row-block width of the batch forward pass: each
// weight row is streamed once per block instead of once per sample,
// and the block's dot products accumulate in independent chains, so
// the FP-add latency that serializes the single-sample path cannot
// bind. Activations for a block live in packed column-major planes
// (element j*blockRows+r is row r's value for neuron j), which lets
// the layerBlock4 kernel pair adjacent rows into SIMD lanes on amd64.
// Four divides the common micro-batch sizes (8/32/128), so chunked
// calls never fall to the scalar remainder. Per-row accumulation
// order is unchanged in every kernel, keeping batch scores
// bit-identical to Proba.
const blockRows = 4

// forwardBlock4 runs one full-width block of four rows through the
// network. planes[0] receives the packed input block; planes[li+1]
// holds layer li's packed activations. It returns the four sigmoid
// outputs.
func (n *Network) forwardBlock4(x0, x1, x2, x3 []float64, planes [][]float64) (p0, p1, p2, p3 float64) {
	xt := planes[0]
	for j := range x0 {
		xt[4*j] = x0[j]
		xt[4*j+1] = x1[j]
		xt[4*j+2] = x2[j]
		xt[4*j+3] = x3[j]
	}
	for li := range n.layers {
		l := &n.layers[li]
		yt := planes[li+1]
		layerBlock4(l.w, l.b, xt, yt, l.in)
		if li == len(n.layers)-1 {
			p0 = 1 / (1 + math.Exp(-yt[0]))
			p1 = 1 / (1 + math.Exp(-yt[1]))
			p2 = 1 / (1 + math.Exp(-yt[2]))
			p3 = 1 / (1 + math.Exp(-yt[3]))
			return
		}
		for i, v := range yt {
			yt[i] = relu(v)
		}
		xt = yt
	}
	return
}

func relu(v float64) float64 {
	if v > 0 {
		return v
	}
	return 0
}

// makePlanes allocates the packed activation planes for forwardBlock4:
// planes[0] is sized for the input block, planes[li+1] for layer li's
// output block.
func (n *Network) makePlanes() [][]float64 {
	planes := make([][]float64, len(n.layers)+1)
	planes[0] = make([]float64, blockRows*n.layers[0].in)
	for li := range n.layers {
		planes[li+1] = make([]float64, blockRows*n.layers[li].out)
	}
	return planes
}

// PredictProbaBatch returns P(attack|x) for every row of X. The batch
// runs through a single set of reused activation buffers in four-row
// blocks; scores are bit-identical to per-row Proba calls.
func (n *Network) PredictProbaBatch(X [][]float64) []float64 {
	out := make([]float64, len(X))
	if !n.ready || len(X) == 0 {
		return out
	}
	planes := n.makePlanes()
	i := 0
	for ; i+blockRows <= len(X); i += blockRows {
		out[i], out[i+1], out[i+2], out[i+3] =
			n.forwardBlock4(X[i], X[i+1], X[i+2], X[i+3], planes)
	}
	if i < len(X) {
		acts := n.makeActs()
		for ; i < len(X); i++ {
			n.forward(X[i], acts)
			out[i] = acts[len(acts)-1][0]
		}
	}
	return out
}

// PredictBatch implements ml.BatchClassifier: the batched forward
// pass thresholded at 0.5, row-for-row identical to Predict.
func (n *Network) PredictBatch(X [][]float64) []int {
	probas := n.PredictProbaBatch(X)
	out := make([]int, len(X))
	for i, p := range probas {
		if p > 0.5 {
			out[i] = 1
		}
	}
	return out
}
