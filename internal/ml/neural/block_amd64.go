//go:build amd64

package neural

// layerBlock4 computes the packed pre-activations of one dense layer
// for a four-row block; see layerBlock4Go for the contract. The SSE2
// kernel (baseline on amd64, so no feature detection is needed) maps
// block rows to vector lanes: every lane performs the same
// multiply-then-add sequence in the same j order as the scalar
// forward pass, so results are bit-identical to layerBlock4Go.
//
//go:noescape
func layerBlock4(w, b, xt, yt []float64, in int)
