package neural

import (
	"math"
	"math/rand"
	"testing"
)

// TestLayerBlock4MatchesGo checks the platform layerBlock4 kernel
// against the portable reference bit-for-bit across layer shapes,
// including odd output counts (the kernel's single-output tail) and
// negative values.
func TestLayerBlock4MatchesGo(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, in := range []int{1, 2, 3, 12, 15, 64} {
		for _, out := range []int{1, 2, 3, 5, 16, 33} {
			w := make([]float64, in*out)
			for i := range w {
				w[i] = rng.NormFloat64()
			}
			b := make([]float64, out)
			for i := range b {
				b[i] = rng.NormFloat64()
			}
			xt := make([]float64, 4*in)
			for i := range xt {
				xt[i] = rng.NormFloat64() * 3
			}
			got := make([]float64, 4*out)
			want := make([]float64, 4*out)
			layerBlock4(w, b, xt, got, in)
			layerBlock4Go(w, b, xt, want, in)
			for i := range want {
				if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
					t.Fatalf("in=%d out=%d: yt[%d] = %x, want %x", in, out, i, got[i], want[i])
				}
			}
		}
	}
}
