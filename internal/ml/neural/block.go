package neural

// layerBlock4Go is the portable layerBlock4 kernel: for a dense layer
// with `in` inputs, it computes the pre-activations of a four-row
// block from the packed input plane xt (element j*4+r is row r's
// input j) into the packed output plane yt:
//
//	yt[o*4+r] = b[o] + Σ_j w[o*in+j] · xt[j*4+r]
//
// Each (row, neuron) sum accumulates in strict j order, exactly like
// the scalar forward pass, so results are bit-identical to it. The
// amd64 assembly kernel follows the same contract.
func layerBlock4Go(w, b, xt, yt []float64, in int) {
	for o := range b {
		// Reslicing to the layer width lets the compiler drop the
		// per-element bounds checks in the dot-product loop.
		row := w[o*in:]
		row = row[:in]
		bo := b[o]
		s0, s1, s2, s3 := bo, bo, bo, bo
		x := xt
		for _, v := range row {
			s0 += v * x[0]
			s1 += v * x[1]
			s2 += v * x[2]
			s3 += v * x[3]
			x = x[4:]
		}
		yt[4*o] = s0
		yt[4*o+1] = s1
		yt[4*o+2] = s2
		yt[4*o+3] = s3
	}
}
