package ml

import (
	"bytes"
	"fmt"
	"path/filepath"
	"testing"
)

// stubBinaryModel is a minimal BinaryModel for bundle plumbing tests.
type stubBinaryModel struct {
	name  string
	bias  float64
	fitOK bool
}

func (s *stubBinaryModel) Name() string                 { return s.name }
func (s *stubBinaryModel) Fit([][]float64, []int) error { s.fitOK = true; return nil }
func (s *stubBinaryModel) Predict(x []float64) int {
	if x[0]+s.bias > 0 {
		return 1
	}
	return 0
}
func (s *stubBinaryModel) MarshalBinary() ([]byte, error) {
	e := NewEncoder()
	e.Str(s.name)
	e.F64(s.bias)
	return e.Bytes(), nil
}
func (s *stubBinaryModel) UnmarshalBinary(b []byte) error {
	d := NewDecoder(b)
	s.name = d.Str()
	s.bias = d.F64()
	return d.Err()
}

func stubFactory(name string) (BinaryModel, error) {
	if name == "stub" || name == "other" {
		return &stubBinaryModel{}, nil
	}
	return nil, fmt.Errorf("unknown %q", name)
}

func testBundle() *Bundle {
	return &Bundle{
		FeatureNames: []string{"a", "b"},
		Scaler:       &StandardScaler{Mean: []float64{1, 2}, Std: []float64{3, 4}},
		Models: []BinaryModel{
			&stubBinaryModel{name: "stub", bias: 0.5},
			&stubBinaryModel{name: "other", bias: -0.25},
		},
	}
}

func TestBundleStreamRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	b := testBundle()
	if _, err := b.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBundle(&buf, stubFactory)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.FeatureNames) != 2 || got.FeatureNames[1] != "b" {
		t.Errorf("names = %v", got.FeatureNames)
	}
	if got.Scaler.Mean[1] != 2 || got.Scaler.Std[0] != 3 {
		t.Errorf("scaler = %+v", got.Scaler)
	}
	if len(got.Models) != 2 {
		t.Fatalf("models = %d", len(got.Models))
	}
	m := got.Models[0].(*stubBinaryModel)
	if m.name != "stub" || m.bias != 0.5 {
		t.Errorf("model 0 = %+v", m)
	}
	cs := got.Classifiers()
	if len(cs) != 2 || cs[1].Name() != "other" {
		t.Errorf("classifiers = %v", cs)
	}
}

func TestBundleFileRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "m.bundle")
	if err := SaveBundle(path, testBundle()); err != nil {
		t.Fatal(err)
	}
	got, err := LoadBundle(path, stubFactory)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Models) != 2 {
		t.Errorf("models = %d", len(got.Models))
	}
	if _, err := LoadBundle(filepath.Join(t.TempDir(), "missing"), stubFactory); err == nil {
		t.Error("missing file accepted")
	}
}

func TestBundleErrors(t *testing.T) {
	// No scaler.
	var buf bytes.Buffer
	if _, err := (&Bundle{}).WriteTo(&buf); err == nil {
		t.Error("scaler-less bundle written")
	}
	// Unknown model family at load.
	buf.Reset()
	b := testBundle()
	b.Models[0].(*stubBinaryModel).name = "mystery"
	b.WriteTo(&buf)
	if _, err := ReadBundle(&buf, stubFactory); err == nil {
		t.Error("unknown family accepted")
	}
	// Truncated stream.
	buf.Reset()
	testBundle().WriteTo(&buf)
	if _, err := ReadBundleBytes(buf.Bytes()[:buf.Len()/2], stubFactory); err == nil {
		t.Error("truncated bundle accepted")
	}
	// Wrong magic.
	if _, err := ReadBundleBytes([]byte("0123456789abcdef"), stubFactory); err == nil {
		t.Error("bad magic accepted")
	}
}
