package forest

import (
	"math/rand"
	"strings"
	"testing"

	"github.com/amlight/intddos/internal/ml"
)

// blobs builds a linearly separable 2-class problem with noise
// features.
func blobs(n int, noise int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		y[i] = i % 2
		row := make([]float64, 2+noise)
		row[0] = rng.NormFloat64() + float64(y[i])*5
		row[1] = rng.NormFloat64() - float64(y[i])*3
		for j := 2; j < len(row); j++ {
			row[j] = rng.NormFloat64()
		}
		X[i] = row
	}
	return X, y
}

// xorData builds the classic non-linearly-separable XOR problem.
func xorData(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		a, b := rng.Intn(2), rng.Intn(2)
		X[i] = []float64{float64(a) + rng.NormFloat64()*0.1, float64(b) + rng.NormFloat64()*0.1}
		y[i] = a ^ b
	}
	return X, y
}

func TestForestSeparatesBlobs(t *testing.T) {
	X, y := blobs(600, 3, 1)
	f := New(Default(7))
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	m := ml.Confusion(y, ml.PredictBatch(f, X))
	if m.Accuracy() < 0.99 {
		t.Errorf("train accuracy = %v, want ≥0.99", m.Accuracy())
	}
	Xt, yt := blobs(300, 3, 2)
	mt := ml.Confusion(yt, ml.PredictBatch(f, Xt))
	if mt.Accuracy() < 0.98 {
		t.Errorf("test accuracy = %v, want ≥0.98", mt.Accuracy())
	}
}

func TestForestLearnsXOR(t *testing.T) {
	X, y := xorData(800, 3)
	f := New(Config{Trees: 30, MaxDepth: 8, Seed: 1, MaxFeatures: 2})
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	Xt, yt := xorData(200, 4)
	m := ml.Confusion(yt, ml.PredictBatch(f, Xt))
	if m.Accuracy() < 0.95 {
		t.Errorf("XOR accuracy = %v — trees must capture interactions", m.Accuracy())
	}
}

func TestForestDeterministicUnderSeed(t *testing.T) {
	X, y := blobs(300, 2, 5)
	Xt, _ := blobs(100, 2, 6)
	f1 := New(Default(11))
	f2 := New(Default(11))
	f1.Fit(X, y)
	f2.Fit(X, y)
	for i, x := range Xt {
		if f1.Predict(x) != f2.Predict(x) {
			t.Fatalf("row %d differs between same-seed forests", i)
		}
	}
}

func TestForestImportancesFavorSignal(t *testing.T) {
	X, y := blobs(600, 4, 9)
	f := New(Default(3))
	f.Fit(X, y)
	imp := f.Importances()
	if len(imp) != 6 {
		t.Fatalf("importances = %d", len(imp))
	}
	var sum float64
	for _, v := range imp {
		if v < 0 {
			t.Errorf("negative importance %v", v)
		}
		sum += v
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("importances sum = %v, want 1", sum)
	}
	// Signal features 0 and 1 dominate noise 2..5.
	for j := 2; j < 6; j++ {
		if imp[j] > imp[0]+imp[1] {
			t.Errorf("noise feature %d importance %v above signal", j, imp[j])
		}
	}
	if imp[0]+imp[1] < 0.7 {
		t.Errorf("signal importance share = %v, want ≥0.7", imp[0]+imp[1])
	}
}

func TestForestErrorCases(t *testing.T) {
	f := New(Default(1))
	if err := f.Fit(nil, nil); err == nil {
		t.Error("empty fit accepted")
	}
	if err := f.Fit([][]float64{{1}}, []int{0, 1}); err == nil {
		t.Error("mismatched fit accepted")
	}
}

func TestForestSingleClassTraining(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	y := []int{1, 1, 1}
	f := New(Config{Trees: 5, Seed: 1})
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if f.Predict([]float64{1.5}) != 1 {
		t.Error("pure-class forest should predict that class")
	}
}

func TestForestProbaMonotoneWithVotes(t *testing.T) {
	X, y := blobs(400, 0, 13)
	f := New(Default(2))
	f.Fit(X, y)
	pPos := f.Proba([]float64{5, -3})
	pNeg := f.Proba([]float64{0, 0})
	if pPos <= pNeg {
		t.Errorf("proba(pos)=%v not above proba(neg)=%v", pPos, pNeg)
	}
	if pPos < 0 || pPos > 1 || pNeg < 0 || pNeg > 1 {
		t.Error("proba out of [0,1]")
	}
}

func TestForestRespectsMaxDepth(t *testing.T) {
	X, y := xorData(500, 17)
	f := New(Config{Trees: 10, MaxDepth: 3, Seed: 1})
	f.Fit(X, y)
	for i, tr := range f.trees {
		if d := tr.depth(); d > 3 {
			t.Errorf("tree %d depth %d exceeds max 3", i, d)
		}
	}
}

func TestForestTreesCount(t *testing.T) {
	X, y := blobs(100, 0, 21)
	f := New(Config{Trees: 17, Seed: 1})
	f.Fit(X, y)
	if f.Trees() != 17 {
		t.Errorf("Trees() = %d, want 17", f.Trees())
	}
}

func TestGiniFunction(t *testing.T) {
	if g := gini(0, 0); g != 0 {
		t.Errorf("gini(0,0) = %v", g)
	}
	if g := gini(10, 0); g != 0 {
		t.Errorf("pure gini = %v, want 0", g)
	}
	if g := gini(5, 5); g != 0.5 {
		t.Errorf("balanced gini = %v, want 0.5", g)
	}
}

func TestTreeConstantFeaturesMakeLeaf(t *testing.T) {
	// All rows identical: no valid split exists; must terminate.
	X := [][]float64{{1, 1}, {1, 1}, {1, 1}, {1, 1}}
	y := []int{0, 1, 0, 1}
	f := New(Config{Trees: 3, Seed: 1})
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	// Prediction is the majority of bootstrap labels; just ensure no
	// panic and a valid label.
	if p := f.Predict([]float64{1, 1}); p != 0 && p != 1 {
		t.Errorf("prediction = %d", p)
	}
}

func TestForestDumpAndSummary(t *testing.T) {
	X, y := blobs(200, 1, 31)
	f := New(Config{Trees: 3, MaxDepth: 4, Seed: 1})
	if err := f.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	out := f.Dump(0, []string{"sig1", "sig2"})
	if !strings.Contains(out, "if ") || !strings.Contains(out, "→") {
		t.Errorf("dump = %q", out)
	}
	if !strings.Contains(out, "sig1") && !strings.Contains(out, "sig2") && !strings.Contains(out, "f2") {
		t.Error("dump names no features")
	}
	if got := f.Dump(99, nil); !strings.Contains(got, "no tree 99") {
		t.Errorf("out-of-range dump = %q", got)
	}
	s := f.Summary()
	if s.Trees != 3 || s.Nodes == 0 || s.Leaves == 0 {
		t.Errorf("summary = %+v", s)
	}
	if s.MaxDepth > 4 {
		t.Errorf("summary depth %d exceeds configured max", s.MaxDepth)
	}
	// Leaves + internal = nodes; a binary tree has internal+1 leaves
	// per tree.
	if s.Leaves != (s.Nodes-s.Leaves)+s.Trees {
		t.Errorf("leaf/node structure inconsistent: %+v", s)
	}
}

func TestForestSerializeRoundTripPredictions(t *testing.T) {
	X, y := blobs(300, 2, 33)
	f := New(Config{Trees: 7, Seed: 3})
	f.Fit(X, y)
	blob, err := f.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	g := New(Config{})
	if err := g.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	Xt, _ := blobs(100, 2, 34)
	for i, x := range Xt {
		if f.Predict(x) != g.Predict(x) {
			t.Fatalf("prediction differs at %d after round trip", i)
		}
	}
	// Importances survive too.
	fi, gi := f.Importances(), g.Importances()
	for j := range fi {
		if fi[j] != gi[j] {
			t.Fatalf("importance %d differs", j)
		}
	}
}

func TestForestUnmarshalRejectsCorruption(t *testing.T) {
	X, y := blobs(100, 0, 35)
	f := New(Config{Trees: 2, Seed: 1})
	f.Fit(X, y)
	blob, _ := f.MarshalBinary()
	for _, cut := range []int{0, 8, len(blob) / 2} {
		g := New(Config{})
		if err := g.UnmarshalBinary(blob[:cut]); err == nil {
			t.Errorf("truncation at %d accepted", cut)
		}
	}
	bad := append([]byte(nil), blob...)
	bad[0] ^= 0xFF
	g := New(Config{})
	if err := g.UnmarshalBinary(bad); err == nil {
		t.Error("bad magic accepted")
	}
}
