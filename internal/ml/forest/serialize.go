package forest

import (
	"fmt"

	"github.com/amlight/intddos/internal/ml"
)

const forestMagic uint64 = 0x464F5245535431 // "FOREST1"

// MarshalBinary serializes the trained forest: configuration echo,
// feature count, and every tree's node arena and importance vector.
func (f *Forest) MarshalBinary() ([]byte, error) {
	if len(f.trees) == 0 {
		return nil, fmt.Errorf("forest: marshal of untrained model")
	}
	e := ml.NewEncoder()
	e.U64(forestMagic)
	e.I64(int64(f.features))
	e.I64(int64(len(f.trees)))
	for _, t := range f.trees {
		e.I64(int64(len(t.nodes)))
		for _, nd := range t.nodes {
			e.I64(int64(nd.feature))
			e.F64(nd.threshold)
			e.I64(int64(nd.left))
			e.I64(int64(nd.right))
			e.I64(int64(nd.label))
		}
		e.F64s(t.importance)
	}
	return e.Bytes(), nil
}

// UnmarshalBinary restores a forest serialized by MarshalBinary.
func (f *Forest) UnmarshalBinary(buf []byte) error {
	d := ml.NewDecoder(buf)
	if d.U64() != forestMagic {
		return fmt.Errorf("forest: bad magic")
	}
	f.features = int(d.I64())
	nTrees := int(d.I64())
	if d.Err() != nil || nTrees < 0 || nTrees > 1<<16 {
		return fmt.Errorf("forest: bad tree count")
	}
	f.trees = make([]*tree, 0, nTrees)
	for ti := 0; ti < nTrees; ti++ {
		nNodes := int(d.I64())
		if d.Err() != nil || nNodes < 0 || nNodes > 1<<24 {
			return fmt.Errorf("forest: bad node count in tree %d", ti)
		}
		t := &tree{nodes: make([]node, nNodes)}
		for i := range t.nodes {
			t.nodes[i] = node{
				feature:   int(d.I64()),
				threshold: d.F64(),
				left:      int(d.I64()),
				right:     int(d.I64()),
				label:     int(d.I64()),
			}
		}
		t.importance = d.F64s()
		f.trees = append(f.trees, t)
	}
	if err := d.Err(); err != nil {
		return err
	}
	// Structural validation: child indices must stay in the arena and
	// labels must be binary.
	for ti, t := range f.trees {
		for i, nd := range t.nodes {
			if nd.label != 0 && nd.label != 1 {
				return fmt.Errorf("forest: tree %d node %d has label %d", ti, i, nd.label)
			}
			if nd.feature >= 0 {
				if nd.left < 0 || nd.left >= len(t.nodes) || nd.right < 0 || nd.right >= len(t.nodes) {
					return fmt.Errorf("forest: tree %d node %d has out-of-range children", ti, i)
				}
				if nd.feature >= f.features {
					return fmt.Errorf("forest: tree %d node %d splits feature %d of %d", ti, i, nd.feature, f.features)
				}
			}
		}
	}
	return nil
}
