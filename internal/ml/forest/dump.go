package forest

import (
	"fmt"
	"strings"
)

// Dump renders one tree of the forest as indented text for
// interpretability: which features the ensemble actually splits on,
// and where. Feature names index the training vector; missing names
// fall back to "f<i>".
func (f *Forest) Dump(treeIndex int, names []string) string {
	if treeIndex < 0 || treeIndex >= len(f.trees) {
		return fmt.Sprintf("forest: no tree %d (have %d)", treeIndex, len(f.trees))
	}
	t := f.trees[treeIndex]
	name := func(i int) string {
		if i < len(names) {
			return names[i]
		}
		return fmt.Sprintf("f%d", i)
	}
	var b strings.Builder
	var walk func(i, depth int)
	walk = func(i, depth int) {
		nd := &t.nodes[i]
		indent := strings.Repeat("  ", depth)
		if nd.feature < 0 {
			label := "benign"
			if nd.label == 1 {
				label = "attack"
			}
			fmt.Fprintf(&b, "%s→ %s\n", indent, label)
			return
		}
		fmt.Fprintf(&b, "%sif %s <= %.4g:\n", indent, name(nd.feature), nd.threshold)
		walk(nd.left, depth+1)
		fmt.Fprintf(&b, "%selse:\n", indent)
		walk(nd.right, depth+1)
	}
	if len(t.nodes) > 0 {
		walk(0, 0)
	}
	return b.String()
}

// Stats summarizes the ensemble's structure.
type Stats struct {
	Trees    int
	Nodes    int
	Leaves   int
	MaxDepth int
}

// Summary returns structural statistics across the forest.
func (f *Forest) Summary() Stats {
	s := Stats{Trees: len(f.trees)}
	for _, t := range f.trees {
		s.Nodes += len(t.nodes)
		for i := range t.nodes {
			if t.nodes[i].feature < 0 {
				s.Leaves++
			}
		}
		if d := t.depth(); d > s.MaxDepth {
			s.MaxDepth = d
		}
	}
	return s
}
