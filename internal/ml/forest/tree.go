// Package forest implements CART decision trees and Random Forests
// with Gini impurity, bootstrap aggregation, per-split feature
// subsampling, and Gini feature importance — the RF model of the
// paper's Tables III–VI, trained in parallel across CPU cores.
package forest

import (
	"math"
	"math/rand"
	"sort"
)

// node is one tree node; leaves have feature == -1.
type node struct {
	feature   int
	threshold float64
	left      int // child indices into the tree's node arena
	right     int
	label     int // majority label at this node
}

// tree is a trained CART tree stored as a flat arena for cache-
// friendly traversal.
type tree struct {
	nodes []node
	// importance accumulates weighted Gini decrease per feature.
	importance []float64
}

// treeConfig bounds tree growth.
type treeConfig struct {
	maxDepth        int
	minSamplesSplit int
	minSamplesLeaf  int
	maxFeatures     int
}

// gini returns the Gini impurity of a (neg, pos) count pair.
func gini(neg, pos int) float64 {
	n := neg + pos
	if n == 0 {
		return 0
	}
	pn := float64(neg) / float64(n)
	pp := float64(pos) / float64(n)
	return 1 - pn*pn - pp*pp
}

// growTree fits a tree on the sample indices idx of X/y.
func growTree(X [][]float64, y []int, idx []int, cfg treeConfig, rng *rand.Rand) *tree {
	t := &tree{importance: make([]float64, len(X[0]))}
	total := len(idx)
	var build func(idx []int, depth int) int
	build = func(idx []int, depth int) int {
		neg, pos := 0, 0
		for _, i := range idx {
			if y[i] == 1 {
				pos++
			} else {
				neg++
			}
		}
		label := 0
		if pos > neg {
			label = 1
		}
		leaf := func() int {
			t.nodes = append(t.nodes, node{feature: -1, label: label})
			return len(t.nodes) - 1
		}
		if depth >= cfg.maxDepth || len(idx) < cfg.minSamplesSplit || neg == 0 || pos == 0 {
			return leaf()
		}
		feat, thr, gain, cut := bestSplit(X, y, idx, neg, pos, cfg, rng)
		if feat < 0 {
			return leaf()
		}
		// Partition idx around the split (idx was sorted by feat in
		// bestSplit's last winning pass; re-partition explicitly to be
		// independent of scan order).
		left := make([]int, 0, cut)
		right := make([]int, 0, len(idx)-cut)
		for _, i := range idx {
			if X[i][feat] <= thr {
				left = append(left, i)
			} else {
				right = append(right, i)
			}
		}
		if len(left) < cfg.minSamplesLeaf || len(right) < cfg.minSamplesLeaf {
			return leaf()
		}
		t.importance[feat] += gain * float64(len(idx)) / float64(total)
		self := len(t.nodes)
		t.nodes = append(t.nodes, node{feature: feat, threshold: thr, label: label})
		l := build(left, depth+1)
		r := build(right, depth+1)
		t.nodes[self].left = l
		t.nodes[self].right = r
		return self
	}
	build(idx, 0)
	return t
}

// bestSplit searches a random feature subset for the split with the
// largest Gini gain. It returns feature -1 when no split improves.
func bestSplit(X [][]float64, y []int, idx []int, neg, pos int, cfg treeConfig, rng *rand.Rand) (feat int, thr float64, gain float64, cut int) {
	parent := gini(neg, pos)
	nFeat := len(X[0])
	k := cfg.maxFeatures
	if k <= 0 || k > nFeat {
		k = nFeat
	}
	feats := rng.Perm(nFeat)[:k]

	feat = -1
	order := make([]int, len(idx))
	copy(order, idx)
	n := float64(len(idx))
	for _, f := range feats {
		sort.Slice(order, func(a, b int) bool { return X[order[a]][f] < X[order[b]][f] })
		lneg, lpos := 0, 0
		for i := 0; i < len(order)-1; i++ {
			if y[order[i]] == 1 {
				lpos++
			} else {
				lneg++
			}
			v, next := X[order[i]][f], X[order[i+1]][f]
			if v == next {
				continue // can only split between distinct values
			}
			rneg, rpos := neg-lneg, pos-lpos
			nl, nr := float64(i+1), n-float64(i+1)
			g := parent - (nl*gini(lneg, lpos)+nr*gini(rneg, rpos))/n
			if g > gain+1e-12 {
				gain = g
				feat = f
				thr = v + (next-v)/2
				if math.IsInf(thr, 0) || thr == next {
					thr = v
				}
				cut = i + 1
			}
		}
	}
	return feat, thr, gain, cut
}

// predict walks the tree for one row.
func (t *tree) predict(x []float64) int {
	i := 0
	for {
		nd := &t.nodes[i]
		if nd.feature < 0 {
			return nd.label
		}
		if x[nd.feature] <= nd.threshold {
			i = nd.left
		} else {
			i = nd.right
		}
	}
}

// depth returns the maximum depth of the tree (root = 0), for tests.
func (t *tree) depth() int {
	var walk func(i, d int) int
	walk = func(i, d int) int {
		nd := &t.nodes[i]
		if nd.feature < 0 {
			return d
		}
		l, r := walk(nd.left, d+1), walk(nd.right, d+1)
		if l > r {
			return l
		}
		return r
	}
	if len(t.nodes) == 0 {
		return 0
	}
	return walk(0, 0)
}
