package forest

import (
	"errors"
	"math"
	"math/rand"
	"runtime"
	"sync"
)

// Config parameterizes a Random Forest.
type Config struct {
	// Trees is the ensemble size (default 50).
	Trees int
	// MaxDepth bounds tree depth (default 18).
	MaxDepth int
	// MinSamplesSplit is the smallest node eligible for splitting
	// (default 2).
	MinSamplesSplit int
	// MinSamplesLeaf is the smallest admissible leaf (default 1).
	MinSamplesLeaf int
	// MaxFeatures is the per-split feature subset size; 0 selects
	// sqrt(features), the scikit-learn default the paper used.
	MaxFeatures int
	// Seed makes training deterministic.
	Seed int64
	// Workers bounds training parallelism; 0 selects GOMAXPROCS.
	Workers int
}

// Default returns the configuration used by the experiments.
func Default(seed int64) Config {
	return Config{Trees: 50, MaxDepth: 18, MinSamplesSplit: 4, MinSamplesLeaf: 1, Seed: seed}
}

// Forest is a trained Random Forest classifier.
type Forest struct {
	cfg      Config
	trees    []*tree
	features int
}

// Features returns the trained input width (0 before Fit), letting
// pipelines validate feature-vector shape before scoring.
func (f *Forest) Features() int { return f.features }

// New constructs an untrained forest; zero-valued config fields take
// their defaults.
func New(cfg Config) *Forest {
	if cfg.Trees <= 0 {
		cfg.Trees = 50
	}
	if cfg.MaxDepth <= 0 {
		cfg.MaxDepth = 18
	}
	if cfg.MinSamplesSplit < 2 {
		cfg.MinSamplesSplit = 2
	}
	if cfg.MinSamplesLeaf < 1 {
		cfg.MinSamplesLeaf = 1
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	return &Forest{cfg: cfg}
}

// Name implements ml.Classifier.
func (f *Forest) Name() string { return "RF" }

// Fit trains the ensemble: each tree gets an independent bootstrap
// sample and RNG, and trees are grown concurrently on a bounded
// worker pool.
func (f *Forest) Fit(X [][]float64, y []int) error {
	if len(X) == 0 {
		return errors.New("forest: empty training set")
	}
	if len(X) != len(y) {
		return errors.New("forest: rows and labels differ")
	}
	f.features = len(X[0])
	cfg := f.cfg
	if cfg.MaxFeatures <= 0 {
		cfg.MaxFeatures = int(math.Sqrt(float64(f.features)))
		if cfg.MaxFeatures < 1 {
			cfg.MaxFeatures = 1
		}
	}
	tcfg := treeConfig{
		maxDepth:        cfg.MaxDepth,
		minSamplesSplit: cfg.MinSamplesSplit,
		minSamplesLeaf:  cfg.MinSamplesLeaf,
		maxFeatures:     cfg.MaxFeatures,
	}

	f.trees = make([]*tree, cfg.Trees)
	// Pre-derive one seed per tree so results are independent of
	// worker scheduling.
	seeds := make([]int64, cfg.Trees)
	seedRNG := rand.New(rand.NewSource(cfg.Seed))
	for i := range seeds {
		seeds[i] = seedRNG.Int63()
	}

	var wg sync.WaitGroup
	sem := make(chan struct{}, cfg.Workers)
	for ti := 0; ti < cfg.Trees; ti++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(ti int) {
			defer wg.Done()
			defer func() { <-sem }()
			rng := rand.New(rand.NewSource(seeds[ti]))
			idx := make([]int, len(X))
			for i := range idx {
				idx[i] = rng.Intn(len(X)) // bootstrap with replacement
			}
			f.trees[ti] = growTree(X, y, idx, tcfg, rng)
		}(ti)
	}
	wg.Wait()
	return nil
}

// Predict returns the majority vote across trees.
func (f *Forest) Predict(x []float64) int {
	votes := 0
	for _, t := range f.trees {
		votes += t.predict(x)
	}
	if 2*votes > len(f.trees) {
		return 1
	}
	return 0
}

// Proba returns the fraction of trees voting attack.
func (f *Forest) Proba(x []float64) float64 {
	votes := 0
	for _, t := range f.trees {
		votes += t.predict(x)
	}
	return float64(votes) / float64(len(f.trees))
}

// treeOuterMinNodes switches voteBatch to tree-outer iteration once
// the forest's node arenas total roughly an L2 cache: past that point
// per-row iteration misses on every deep node, while walking one tree
// across the whole batch keeps its arena resident (measured ~1.7x on
// 20k-row forests). Below it the whole forest stays hot either way
// and row-outer avoids re-streaming the batch per tree.
const treeOuterMinNodes = 8 << 10

// arenaNodes is the forest's total node count across trees.
func (f *Forest) arenaNodes() int {
	total := 0
	for _, t := range f.trees {
		total += len(t.nodes)
	}
	return total
}

// treeOuterVotes accumulates per-row attack votes with tree-outer
// iteration: each tree's arena is walked across the whole batch while
// it is cache-resident. Vote totals are integer sums and therefore
// identical to per-sample traversal in either order.
func (f *Forest) treeOuterVotes(X [][]float64) []int {
	votes := make([]int, len(X))
	for _, t := range f.trees {
		for i, x := range X {
			votes[i] += t.predict(x)
		}
	}
	return votes
}

// PredictBatch implements ml.BatchClassifier: the majority vote per
// row, row-for-row identical to Predict. Large forests (see
// treeOuterMinNodes) vote tree-outer; small cache-resident forests
// keep the per-row loop, which needs no vote buffer or second pass.
func (f *Forest) PredictBatch(X [][]float64) []int {
	out := make([]int, len(X))
	if f.arenaNodes() >= treeOuterMinNodes {
		for i, v := range f.treeOuterVotes(X) {
			if 2*v > len(f.trees) {
				out[i] = 1
			}
		}
		return out
	}
	for i, x := range X {
		v := 0
		for _, t := range f.trees {
			v += t.predict(x)
		}
		if 2*v > len(f.trees) {
			out[i] = 1
		}
	}
	return out
}

// PredictProbaBatch returns the attack-vote fraction per row,
// row-for-row identical to Proba.
func (f *Forest) PredictProbaBatch(X [][]float64) []float64 {
	out := make([]float64, len(X))
	n := float64(len(f.trees))
	if f.arenaNodes() >= treeOuterMinNodes {
		for i, v := range f.treeOuterVotes(X) {
			out[i] = float64(v) / n
		}
		return out
	}
	for i, x := range X {
		v := 0
		for _, t := range f.trees {
			v += t.predict(x)
		}
		out[i] = float64(v) / n
	}
	return out
}

// Importances returns normalized Gini feature importances averaged
// across trees (the native RF importance behind Table V).
func (f *Forest) Importances() []float64 {
	if len(f.trees) == 0 {
		return nil
	}
	out := make([]float64, f.features)
	for _, t := range f.trees {
		for j, v := range t.importance {
			out[j] += v
		}
	}
	var sum float64
	for _, v := range out {
		sum += v
	}
	if sum > 0 {
		for j := range out {
			out[j] /= sum
		}
	}
	return out
}

// Trees reports the ensemble size.
func (f *Forest) Trees() int { return len(f.trees) }
