package sketch

import (
	"math/rand"
	"sync"
	"testing"
)

func TestEstimateNeverUnderestimates(t *testing.T) {
	s := New(4, 256)
	rng := rand.New(rand.NewSource(1))
	exact := map[uint64]uint64{}
	for i := 0; i < 20000; i++ {
		h := uint64(rng.Intn(500)) * 0x9e3779b97f4a7c15
		s.Update(h)
		exact[h]++
	}
	for h, want := range exact {
		if got := s.Estimate(h); got < want {
			t.Fatalf("count-min underestimated key %x: got %d want >= %d", h, got, want)
		}
	}
	if s.Total() != 20000 {
		t.Fatalf("total = %d, want 20000", s.Total())
	}
}

func TestHeavyHitterDetection(t *testing.T) {
	s := New(0, 0) // defaults
	hot := uint64(0xdeadbeefcafef00d)
	rng := rand.New(rand.NewSource(2))
	// 50% of the stream is one key, the rest spread over 10k keys.
	for i := 0; i < 10000; i++ {
		if i%2 == 0 {
			s.Update(hot)
		} else {
			s.Update(rng.Uint64())
		}
	}
	if !s.HeavyHitter(hot, 0.1, 512) {
		t.Fatal("half-of-stream key not flagged as heavy hitter at frac 0.1")
	}
	if s.HeavyHitter(rng.Uint64(), 0.1, 512) {
		t.Fatal("random unseen key flagged as heavy hitter")
	}
}

func TestHeavyHitterNeedsMinSample(t *testing.T) {
	s := New(4, 256)
	h := uint64(42)
	for i := 0; i < 100; i++ {
		s.Update(h)
	}
	if s.HeavyHitter(h, 0.1, 512) {
		t.Fatal("heavy hitter flagged below minSample")
	}
	if s.Suspicious(h, 0.1, 0.3, 512) {
		t.Fatal("suspicious verdict below minSample")
	}
}

func TestEntropyBounds(t *testing.T) {
	s := New(4, 256)
	if got := s.Entropy(); got != 1 {
		t.Fatalf("empty sketch entropy = %v, want 1", got)
	}
	// Single key: entropy collapses toward 0.
	for i := 0; i < 5000; i++ {
		s.Update(7)
	}
	if got := s.Entropy(); got > 0.01 {
		t.Fatalf("single-key entropy = %v, want ~0", got)
	}
	// Uniform keys: entropy near 1.
	s.Reset()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50000; i++ {
		s.Update(rng.Uint64())
	}
	if got := s.Entropy(); got < 0.9 {
		t.Fatalf("uniform-key entropy = %v, want near 1", got)
	}
}

func TestSuspiciousEntropyCollapse(t *testing.T) {
	s := New(4, 512)
	// Two keys dominate: each is a heavy hitter AND entropy collapses,
	// so even an unrelated benign key is held for the full ensemble.
	for i := 0; i < 4096; i++ {
		s.Update(uint64(i % 2))
	}
	if !s.Suspicious(99999, 0.5, 0.3, 512) {
		t.Fatal("entropy collapse did not mark unrelated key suspicious")
	}
}

func TestOccupancyAndReset(t *testing.T) {
	s := New(4, 128)
	if got := s.Occupancy(); got != 0 {
		t.Fatalf("fresh occupancy = %v, want 0", got)
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 1000; i++ {
		s.Update(rng.Uint64())
	}
	mid := s.Occupancy()
	if mid <= 0 || mid > 1 {
		t.Fatalf("occupancy = %v, want (0, 1]", mid)
	}
	s.Reset()
	if got := s.Occupancy(); got != 0 {
		t.Fatalf("post-reset occupancy = %v, want 0", got)
	}
	if s.Total() != 0 {
		t.Fatalf("post-reset total = %d, want 0", s.Total())
	}
	if got := s.Entropy(); got != 1 {
		t.Fatalf("post-reset entropy = %v, want 1", got)
	}
}

func TestDeterministicAcrossInstances(t *testing.T) {
	a, b := New(4, 512), New(4, 512)
	rng := rand.New(rand.NewSource(5))
	keys := make([]uint64, 2000)
	for i := range keys {
		keys[i] = rng.Uint64()
		a.Update(keys[i])
		b.Update(keys[i])
	}
	for _, k := range keys {
		if a.Estimate(k) != b.Estimate(k) {
			t.Fatalf("estimates diverge for %x", k)
		}
	}
	if a.Entropy() != b.Entropy() || a.Occupancy() != b.Occupancy() {
		t.Fatal("entropy/occupancy diverge between identical update streams")
	}
}

// TestConcurrentReaders exercises the one-writer/many-readers contract
// under the race detector (this package is in `make race`).
func TestConcurrentReaders(t *testing.T) {
	s := New(4, 512)
	done := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for {
				select {
				case <-done:
					return
				default:
				}
				h := rng.Uint64()
				_ = s.Estimate(h)
				_ = s.Suspicious(h, 0.05, 0.3, 512)
				if e := s.Entropy(); e < 0 || e > 1 {
					t.Errorf("entropy out of range: %v", e)
					return
				}
				if o := s.Occupancy(); o < 0 || o > 1 {
					t.Errorf("occupancy out of range: %v", o)
					return
				}
			}
		}(int64(r))
	}
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 50000; i++ {
		s.Update(rng.Uint64() % 1000)
	}
	close(done)
	wg.Wait()
}
