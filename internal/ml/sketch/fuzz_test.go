package sketch

import (
	"encoding/binary"
	"testing"
)

// FuzzSketch drives the update/query path with an arbitrary byte
// stream decoded as flow-key hashes and checks the structural
// invariants that the triage path relies on: count-min never
// underestimates, totals close, and the derived signals stay in
// range. The committed seed corpus lives in testdata/fuzz/FuzzSketch
// and the target is folded into `make fuzz-smoke`.
func FuzzSketch(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x01, 0x02, 0x03, 0x04, 0x05, 0x06, 0x07, 0x08})
	f.Add(binary.LittleEndian.AppendUint64(nil, 0xdeadbeefcafef00d))
	f.Fuzz(func(t *testing.T, data []byte) {
		// Small dimensions make collisions (the interesting case)
		// likely even for short inputs.
		s := New(3, 64)
		exact := map[uint64]uint64{}
		var updates uint64
		for len(data) > 0 {
			var h uint64
			if len(data) >= 8 {
				h = binary.LittleEndian.Uint64(data[:8])
				data = data[8:]
			} else {
				for _, b := range data {
					h = h<<8 | uint64(b)
				}
				data = nil
			}
			s.Update(h)
			exact[h]++
			updates++

			if est := s.Estimate(h); est < exact[h] {
				t.Fatalf("estimate %d < exact %d for %x", est, exact[h], h)
			}
			if s.Suspicious(h, 0.05, 0.3, 4) && s.Total() < 4 {
				t.Fatal("suspicious verdict below minSample")
			}
		}
		if s.Total() != updates {
			t.Fatalf("total %d != updates %d", s.Total(), updates)
		}
		for h, want := range exact {
			if est := s.Estimate(h); est < want {
				t.Fatalf("final estimate %d < exact %d for %x", est, want, h)
			}
			if est := s.Estimate(h); est > updates {
				t.Fatalf("estimate %d exceeds stream length %d", est, updates)
			}
		}
		if e := s.Entropy(); e < 0 || e > 1 {
			t.Fatalf("entropy out of range: %v", e)
		}
		if o := s.Occupancy(); o < 0 || o > 1 {
			t.Fatalf("occupancy out of range: %v", o)
		}
		s.Reset()
		if s.Total() != 0 || s.Occupancy() != 0 {
			t.Fatal("reset left residual state")
		}
	})
}
