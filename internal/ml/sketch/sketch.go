// Package sketch provides the streaming triage sketches for tiered
// inference: a count-min heavy-hitter sketch plus a bucketed flow-key
// entropy estimate, maintained over the ingest stream. AMON (see
// PAPERS.md) uses exactly this pair to triage multi-gigabit streams —
// volumetric attacks show up either as a single key dominating the
// stream (heavy hitter) or as the key distribution collapsing
// (entropy drop) — so the expensive model ensemble only has to score
// flows the sketches cannot clear.
//
// Concurrency contract: one writer per Sketch (the shard's ingester
// goroutine, which updates under the shard's checkpoint-barrier read
// lock), any number of concurrent readers (prediction workers). All
// counters are atomics, so readers see a consistent-enough view
// without locks; estimates are monotone upper bounds regardless of
// interleaving. Because updates only happen under the shard barrier,
// the sketch is quiescent whenever a checkpoint capture holds the
// write locks — capture-consistent by construction. Sketch state is
// deliberately not persisted in snapshots: it is a lossy cache over
// the recent stream and is rewarmed from live traffic after restore.
package sketch

import (
	"math"
	"sync/atomic"
)

const (
	// DefaultDepth and DefaultWidth size the count-min matrix. With
	// depth 4 and width 2048 the overestimate bias is ~2e/2048 of the
	// stream per row minimum — far below the heavy-hitter fractions
	// that matter for triage — at 64 KiB per shard.
	DefaultDepth = 4
	DefaultWidth = 2048

	// entropyBuckets is the number of hash buckets backing the
	// entropy estimate. 256 buckets bound the normalized entropy
	// resolution at log2(256) = 8 bits, plenty to see a volumetric
	// collapse.
	entropyBuckets = 256
)

// Sketch is a count-min heavy-hitter sketch combined with a bucketed
// flow-key entropy estimate. The zero value is not usable; call New.
type Sketch struct {
	depth    int
	width    int
	counters []atomic.Uint64 // depth rows of width counters
	buckets  []atomic.Uint64 // entropyBuckets counts
	total    atomic.Uint64
}

// New returns a sketch with the given count-min dimensions.
// Non-positive values fall back to the defaults.
func New(depth, width int) *Sketch {
	if depth <= 0 {
		depth = DefaultDepth
	}
	if width <= 0 {
		width = DefaultWidth
	}
	return &Sketch{
		depth:    depth,
		width:    width,
		counters: make([]atomic.Uint64, depth*width),
		buckets:  make([]atomic.Uint64, entropyBuckets),
	}
}

// mix is the splitmix64 finalizer — a fast, well-distributed bijection
// used to derive per-row count-min indices and the entropy bucket from
// one flow-key hash.
func mix(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// rowSeed perturbs the key hash per count-min row so the rows index
// independently. The constant is the golden-ratio gamma splitmix64
// itself uses.
func rowSeed(r int) uint64 { return 0x9e3779b97f4a7c15 * uint64(r+1) }

// Update records one observation of the flow-key hash h.
func (s *Sketch) Update(h uint64) {
	for r := 0; r < s.depth; r++ {
		idx := mix(h^rowSeed(r)) % uint64(s.width)
		s.counters[r*s.width+int(idx)].Add(1)
	}
	s.buckets[mix(h)&(entropyBuckets-1)].Add(1)
	s.total.Add(1)
}

// Estimate returns the count-min estimate for h: the minimum over the
// rows, an upper bound on the true observation count.
func (s *Sketch) Estimate(h uint64) uint64 {
	est := uint64(math.MaxUint64)
	for r := 0; r < s.depth; r++ {
		idx := mix(h^rowSeed(r)) % uint64(s.width)
		if c := s.counters[r*s.width+int(idx)].Load(); c < est {
			est = c
		}
	}
	return est
}

// Total returns the number of updates recorded.
func (s *Sketch) Total() uint64 { return s.total.Load() }

// HeavyHitter reports whether h accounts for at least frac of the
// stream. Streams shorter than minSample updates never flag — the
// sketch has not seen enough traffic to call anything heavy.
func (s *Sketch) HeavyHitter(h uint64, frac float64, minSample uint64) bool {
	total := s.total.Load()
	if total < minSample || total == 0 {
		return false
	}
	return float64(s.Estimate(h)) >= frac*float64(total)
}

// Entropy returns the normalized Shannon entropy of the flow-key
// bucket distribution in [0, 1]: 1 means keys spread uniformly, 0
// means one bucket holds the whole stream. An empty sketch returns 1
// (nothing observed, nothing suspicious).
func (s *Sketch) Entropy() float64 {
	var n float64
	var counts [entropyBuckets]float64
	for i := range s.buckets {
		c := float64(s.buckets[i].Load())
		counts[i] = c
		n += c
	}
	if n == 0 {
		return 1
	}
	var ent float64
	for _, c := range counts {
		if c == 0 {
			continue
		}
		p := c / n
		ent -= p * math.Log2(p)
	}
	norm := ent / math.Log2(entropyBuckets)
	if norm > 1 {
		norm = 1
	}
	return norm
}

// Occupancy returns the fraction of non-zero count-min counters in
// [0, 1] — the saturation gauge exported per shard.
func (s *Sketch) Occupancy() float64 {
	nz := 0
	for i := range s.counters {
		if s.counters[i].Load() != 0 {
			nz++
		}
	}
	return float64(nz) / float64(len(s.counters))
}

// Suspicious is the stage-0 triage verdict for flow-key hash h: true
// when h is a heavy hitter (≥ hhFrac of a stream at least minSample
// long) or the stream's key entropy has collapsed below entropyFloor.
// A suspicious flow must never be early-exited as benign — it falls
// through to the full ensemble.
func (s *Sketch) Suspicious(h uint64, hhFrac, entropyFloor float64, minSample uint64) bool {
	if s.total.Load() < minSample {
		return false
	}
	if s.HeavyHitter(h, hhFrac, minSample) {
		return true
	}
	return s.Entropy() < entropyFloor
}

// Reset zeroes every counter. Only safe to call while no writer is
// active (e.g. under the checkpoint barrier write locks).
func (s *Sketch) Reset() {
	for i := range s.counters {
		s.counters[i].Store(0)
	}
	for i := range s.buckets {
		s.buckets[i].Store(0)
	}
	s.total.Store(0)
}
