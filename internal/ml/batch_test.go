// Property tests for the batched-inference contract: for every model
// family, PredictBatch(X) must equal [Predict(x) for x in X] exactly —
// same labels, and for probabilistic models the same float64 bits —
// across random seeds, batch sizes that exercise the blocked kernels'
// remainders, and the degenerate zero-variance-feature scaler case.
package ml_test

import (
	"math"
	"math/rand"
	"testing"

	"github.com/amlight/intddos/internal/ml"
	"github.com/amlight/intddos/internal/ml/bayes"
	"github.com/amlight/intddos/internal/ml/forest"
	"github.com/amlight/intddos/internal/ml/knn"
	"github.com/amlight/intddos/internal/ml/neural"
)

// synth builds a learnable two-cluster dataset: class 1 rows are the
// class 0 distribution shifted by one unit in every feature, with
// enough noise that models disagree near the boundary — exactly where
// a batch kernel that reorders float math would diverge from the
// scalar path.
func synth(seed int64, n, w int) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		row := make([]float64, w)
		label := rng.Intn(2)
		for j := range row {
			row[j] = rng.NormFloat64() + float64(label)
		}
		X[i] = row
		y[i] = label
	}
	return X, y
}

// batchModels builds one freshly fitted instance of every model family
// on the given training set.
func batchModels(t *testing.T, seed int64, X [][]float64, y []int) []ml.BatchClassifier {
	t.Helper()
	models := []ml.BatchClassifier{
		forest.New(forest.Default(seed)),
		bayes.New(),
		knn.New(5),
		neural.New(neural.ShallowNN(seed)),
	}
	for _, m := range models {
		if err := m.Fit(X, y); err != nil {
			t.Fatalf("fit %s: %v", m.Name(), err)
		}
	}
	return models
}

// TestPredictBatchMatchesSequential is the core batch contract: for
// every model family, every seed, and batch sizes straddling the
// four-row block boundary, the batch path must agree label-for-label
// with the sample loop.
func TestPredictBatchMatchesSequential(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		X, y := synth(seed, 400, 9)
		train, test := X[:300], X[300:]
		for _, m := range batchModels(t, seed, train, y[:300]) {
			// Sizes 0..5 cover the empty batch, the scalar remainder
			// alone, and a partial block; the full test set covers
			// many blocks plus remainder.
			for _, n := range []int{0, 1, 2, 3, 4, 5, len(test)} {
				got := m.PredictBatch(test[:n])
				want := ml.SequentialPredict(m, test[:n])
				if len(got) != n {
					t.Fatalf("seed %d %s: PredictBatch(%d rows) returned %d labels", seed, m.Name(), n, len(got))
				}
				for i := range got {
					if got[i] != want[i] {
						t.Errorf("seed %d %s row %d/%d: PredictBatch=%d Predict=%d", seed, m.Name(), i, n, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestPredictProbaBatchMatchesSequential requires bit-equal attack
// scores from the batch path, not merely equal labels: the blocked
// kernels must preserve per-row accumulation order exactly.
func TestPredictProbaBatchMatchesSequential(t *testing.T) {
	for _, seed := range []int64{3, 42} {
		X, y := synth(seed, 400, 9)
		train, test := X[:300], X[300:]
		for _, m := range batchModels(t, seed, train, y[:300]) {
			bp, ok := m.(ml.BatchProbaClassifier)
			if !ok {
				continue // KNN has no probability surface
			}
			got := bp.PredictProbaBatch(test)
			for i, x := range test {
				want := bp.Proba(x)
				if math.Float64bits(got[i]) != math.Float64bits(want) {
					t.Errorf("seed %d %s row %d: PredictProbaBatch=%v Proba=%v (not bit-identical)", seed, m.Name(), i, got[i], want)
				}
			}
		}
	}
}

// TestPredictBatchDispatch checks the free helper's two paths: a
// BatchClassifier goes through its amortized implementation, anything
// else through the reference loop, and both agree.
func TestPredictBatchDispatch(t *testing.T) {
	X, y := synth(11, 200, 6)
	g := bayes.New()
	if err := g.Fit(X[:150], y[:150]); err != nil {
		t.Fatal(err)
	}
	got := ml.PredictBatch(g, X[150:])
	want := ml.SequentialPredict(g, X[150:])
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("row %d: dispatch=%d sequential=%d", i, got[i], want[i])
		}
	}
}

// TestTransformBatchZeroVariance pins the degenerate scaler case: a
// constant feature gets Std 1 at fit time, and the batch transform
// must reproduce TransformRow on it bit-for-bit, including when the
// destination buffers are reused across calls.
func TestTransformBatchZeroVariance(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	X := make([][]float64, 64)
	for i := range X {
		X[i] = []float64{rng.NormFloat64(), 3.25, rng.NormFloat64() * 10}
	}
	s := &ml.StandardScaler{}
	if err := s.Fit(X); err != nil {
		t.Fatal(err)
	}
	if s.Std[1] != 1 {
		t.Fatalf("zero-variance feature Std = %v, want 1", s.Std[1])
	}
	var dst [][]float64
	for pass := 0; pass < 2; pass++ { // second pass reuses dst's row buffers
		dst = s.TransformBatch(dst, X)
		for i, row := range X {
			want := s.TransformRow(nil, row)
			for j := range want {
				if math.Float64bits(dst[i][j]) != math.Float64bits(want[j]) {
					t.Fatalf("pass %d row %d col %d: TransformBatch=%v TransformRow=%v", pass, i, j, dst[i][j], want[j])
				}
			}
			if dst[i][1] != row[1]-s.Mean[1] {
				t.Fatalf("zero-variance column should be a pure shift, got %v", dst[i][1])
			}
		}
	}
}

// TestEnsembleVotesMatchesPerModelPredict checks the vote fan-out the
// live pipeline and the simulated mechanism both consume: votes[i][m]
// must equal model m's Predict on row i, and ones[i] its row sum.
func TestEnsembleVotesMatchesPerModelPredict(t *testing.T) {
	X, y := synth(42, 400, 9)
	train, test := X[:300], X[300:]
	batch := batchModels(t, 42, train, y[:300])
	models := make([]ml.Classifier, len(batch))
	for i, m := range batch {
		models[i] = m
	}
	votes, ones := ml.EnsembleVotes(models, test)
	for i, x := range test {
		sum := 0
		for mi, m := range models {
			want := m.Predict(x)
			if votes[i][mi] != want {
				t.Errorf("row %d model %s: vote=%d Predict=%d", i, m.Name(), votes[i][mi], want)
			}
			sum += want
		}
		if ones[i] != sum {
			t.Errorf("row %d: ones=%d want %d", i, ones[i], sum)
		}
	}
}
