package ml

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Encoder builds a length-prefixed binary stream with a sticky error,
// used by the model serialization that backs the Prediction module's
// "upload pre-trained models" step.
type Encoder struct {
	buf []byte
}

// NewEncoder returns an empty encoder.
func NewEncoder() *Encoder { return &Encoder{} }

// Bytes returns the encoded stream.
func (e *Encoder) Bytes() []byte { return e.buf }

// U64 appends an unsigned 64-bit value.
func (e *Encoder) U64(v uint64) {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], v)
	e.buf = append(e.buf, b[:]...)
}

// I64 appends a signed 64-bit value.
func (e *Encoder) I64(v int64) { e.U64(uint64(v)) }

// F64 appends a float64.
func (e *Encoder) F64(v float64) { e.U64(math.Float64bits(v)) }

// F64s appends a length-prefixed float64 slice.
func (e *Encoder) F64s(v []float64) {
	e.U64(uint64(len(v)))
	for _, x := range v {
		e.F64(x)
	}
}

// Ints appends a length-prefixed int slice.
func (e *Encoder) Ints(v []int) {
	e.U64(uint64(len(v)))
	for _, x := range v {
		e.I64(int64(x))
	}
}

// Str appends a length-prefixed string.
func (e *Encoder) Str(s string) {
	e.U64(uint64(len(s)))
	e.buf = append(e.buf, s...)
}

// Blob appends a length-prefixed byte slice.
func (e *Encoder) Blob(b []byte) {
	e.U64(uint64(len(b)))
	e.buf = append(e.buf, b...)
}

// ErrCodec reports a malformed stream.
var ErrCodec = errors.New("ml: malformed model stream")

// maxLen bounds any single length prefix a decoder will accept.
const maxLen = 1 << 31

// Decoder reads an Encoder stream with a sticky error: after the
// first failure every subsequent read returns zero values, and Err
// reports the failure.
type Decoder struct {
	buf []byte
	off int
	err error
}

// NewDecoder wraps a stream.
func NewDecoder(b []byte) *Decoder { return &Decoder{buf: b} }

// Err returns the sticky error, if any.
func (d *Decoder) Err() error { return d.err }

// Done reports whether the stream was fully consumed without error.
func (d *Decoder) Done() bool { return d.err == nil && d.off == len(d.buf) }

func (d *Decoder) fail(msg string) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: %s at offset %d", ErrCodec, msg, d.off)
	}
}

// U64 reads an unsigned 64-bit value.
func (d *Decoder) U64() uint64 {
	if d.err != nil {
		return 0
	}
	if d.off+8 > len(d.buf) {
		d.fail("short u64")
		return 0
	}
	v := binary.BigEndian.Uint64(d.buf[d.off:])
	d.off += 8
	return v
}

// I64 reads a signed 64-bit value.
func (d *Decoder) I64() int64 { return int64(d.U64()) }

// F64 reads a float64.
func (d *Decoder) F64() float64 { return math.Float64frombits(d.U64()) }

// length reads a validated length prefix.
func (d *Decoder) length() int {
	n := d.U64()
	if d.err != nil {
		return 0
	}
	if n > maxLen || d.off+int(n) > len(d.buf) && n > uint64(len(d.buf)) {
		d.fail("implausible length")
		return 0
	}
	return int(n)
}

// F64s reads a length-prefixed float64 slice.
func (d *Decoder) F64s() []float64 {
	n := d.length()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]float64, n)
	for i := range out {
		out[i] = d.F64()
	}
	if d.err != nil {
		return nil
	}
	return out
}

// Ints reads a length-prefixed int slice.
func (d *Decoder) Ints() []int {
	n := d.length()
	if d.err != nil || n == 0 {
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = int(d.I64())
	}
	if d.err != nil {
		return nil
	}
	return out
}

// Str reads a length-prefixed string.
func (d *Decoder) Str() string {
	n := d.length()
	if d.err != nil {
		return ""
	}
	if d.off+n > len(d.buf) {
		d.fail("short string")
		return ""
	}
	s := string(d.buf[d.off : d.off+n])
	d.off += n
	return s
}

// Blob reads a length-prefixed byte slice.
func (d *Decoder) Blob() []byte {
	n := d.length()
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.fail("short blob")
		return nil
	}
	b := make([]byte, n)
	copy(b, d.buf[d.off:d.off+n])
	d.off += n
	return b
}
