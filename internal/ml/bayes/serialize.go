package bayes

import (
	"fmt"

	"github.com/amlight/intddos/internal/ml"
)

const bayesMagic uint64 = 0x47424159455331 // "GBAYES1"

// MarshalBinary serializes the fitted per-class Gaussians.
func (g *GaussianNB) MarshalBinary() ([]byte, error) {
	if !g.ready {
		return nil, fmt.Errorf("bayes: marshal of untrained model")
	}
	e := ml.NewEncoder()
	e.U64(bayesMagic)
	e.F64(g.VarSmoothing)
	e.F64(g.prior[0])
	e.F64(g.prior[1])
	for c := 0; c < 2; c++ {
		e.F64s(g.mean[c])
		e.F64s(g.vr[c])
	}
	return e.Bytes(), nil
}

// UnmarshalBinary restores a model serialized by MarshalBinary.
func (g *GaussianNB) UnmarshalBinary(buf []byte) error {
	d := ml.NewDecoder(buf)
	if d.U64() != bayesMagic {
		return fmt.Errorf("bayes: bad magic")
	}
	g.VarSmoothing = d.F64()
	g.prior[0] = d.F64()
	g.prior[1] = d.F64()
	for c := 0; c < 2; c++ {
		g.mean[c] = d.F64s()
		g.vr[c] = d.F64s()
	}
	if err := d.Err(); err != nil {
		return err
	}
	if len(g.mean[0]) != len(g.mean[1]) || len(g.vr[0]) != len(g.mean[0]) || len(g.vr[1]) != len(g.mean[0]) {
		return fmt.Errorf("bayes: inconsistent parameter widths")
	}
	for c := 0; c < 2; c++ {
		for _, v := range g.vr[c] {
			if v <= 0 {
				return fmt.Errorf("bayes: non-positive variance")
			}
		}
	}
	g.cacheNorms()
	g.ready = true
	return nil
}
