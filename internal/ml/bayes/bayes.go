// Package bayes implements Gaussian Naive Bayes, the lightweight
// GNB baseline of the paper's Tables III–VI.
package bayes

import (
	"errors"
	"math"
)

// GaussianNB models each feature as an independent per-class
// Gaussian, with scikit-learn-style variance smoothing for numeric
// stability.
type GaussianNB struct {
	// VarSmoothing is the fraction of the largest feature variance
	// added to every variance (default 1e-9, as in scikit-learn).
	VarSmoothing float64

	prior [2]float64   // log class priors
	mean  [2][]float64 // per-class feature means
	vr    [2][]float64 // per-class feature variances
	// lnorm caches -0.5*log(2π·vr) per class and feature — the
	// likelihood's normalization constants, hoisted out of the sample
	// loop so scoring never recomputes a logarithm. Derived from vr by
	// cacheNorms after Fit or UnmarshalBinary.
	lnorm [2][]float64
	ready bool
}

// New returns an untrained classifier with default smoothing.
func New() *GaussianNB { return &GaussianNB{VarSmoothing: 1e-9} }

// Name implements ml.Classifier.
func (g *GaussianNB) Name() string { return "GNB" }

// Features returns the trained input width (0 before Fit), letting
// pipelines validate feature-vector shape before scoring.
func (g *GaussianNB) Features() int { return len(g.mean[0]) }

// Fit estimates per-class feature means and variances.
func (g *GaussianNB) Fit(X [][]float64, y []int) error {
	if len(X) == 0 {
		return errors.New("bayes: empty training set")
	}
	if len(X) != len(y) {
		return errors.New("bayes: rows and labels differ")
	}
	w := len(X[0])
	var count [2]int
	for c := 0; c < 2; c++ {
		g.mean[c] = make([]float64, w)
		g.vr[c] = make([]float64, w)
	}
	for i, row := range X {
		c := y[i]
		count[c]++
		for j, v := range row {
			g.mean[c][j] += v
		}
	}
	if count[0] == 0 || count[1] == 0 {
		return errors.New("bayes: training set must contain both classes")
	}
	for c := 0; c < 2; c++ {
		for j := range g.mean[c] {
			g.mean[c][j] /= float64(count[c])
		}
	}
	for i, row := range X {
		c := y[i]
		for j, v := range row {
			d := v - g.mean[c][j]
			g.vr[c][j] += d * d
		}
	}
	maxVar := 0.0
	for c := 0; c < 2; c++ {
		for j := range g.vr[c] {
			g.vr[c][j] /= float64(count[c])
			if g.vr[c][j] > maxVar {
				maxVar = g.vr[c][j]
			}
		}
	}
	if g.VarSmoothing <= 0 {
		g.VarSmoothing = 1e-9
	}
	eps := g.VarSmoothing * maxVar
	if eps == 0 {
		eps = g.VarSmoothing
	}
	for c := 0; c < 2; c++ {
		for j := range g.vr[c] {
			g.vr[c][j] += eps
		}
	}
	n := float64(len(X))
	g.prior[0] = math.Log(float64(count[0]) / n)
	g.prior[1] = math.Log(float64(count[1]) / n)
	g.cacheNorms()
	g.ready = true
	return nil
}

// cacheNorms precomputes the per-feature log-normalization constants.
// The cached value is exactly the -0.5*log(2π·vr) term the likelihood
// previously evaluated per sample, so scores are bit-identical.
func (g *GaussianNB) cacheNorms() {
	for c := 0; c < 2; c++ {
		g.lnorm[c] = make([]float64, len(g.vr[c]))
		for j, v := range g.vr[c] {
			g.lnorm[c][j] = -0.5 * math.Log(2*math.Pi*v)
		}
	}
}

// logLikelihood returns the joint log-likelihood of x under class c.
func (g *GaussianNB) logLikelihood(x []float64, c int) float64 {
	ll := g.prior[c]
	norm, mean, vr := g.lnorm[c], g.mean[c], g.vr[c]
	for j, v := range x {
		d := v - mean[j]
		ll += norm[j] - d*d/(2*vr[j])
	}
	return ll
}

// Predict implements ml.Classifier.
func (g *GaussianNB) Predict(x []float64) int {
	if !g.ready {
		return 0
	}
	if g.logLikelihood(x, 1) > g.logLikelihood(x, 0) {
		return 1
	}
	return 0
}

// Proba returns P(attack|x) via the normalized likelihoods.
func (g *GaussianNB) Proba(x []float64) float64 {
	if !g.ready {
		return 0
	}
	l0, l1 := g.logLikelihood(x, 0), g.logLikelihood(x, 1)
	m := math.Max(l0, l1)
	e0, e1 := math.Exp(l0-m), math.Exp(l1-m)
	return e1 / (e0 + e1)
}

// logLikelihoodBlock4 computes four rows' log-likelihoods under class
// c in one pass: the per-feature constants and class parameters are
// loaded once per block, and the four accumulator chains are
// independent, so the divides and adds of different rows overlap.
// Each row's accumulation order matches logLikelihood exactly.
func (g *GaussianNB) logLikelihoodBlock4(x0, x1, x2, x3 []float64, c int) (l0, l1, l2, l3 float64) {
	l0, l1, l2, l3 = g.prior[c], g.prior[c], g.prior[c], g.prior[c]
	norm, mean, vr := g.lnorm[c], g.mean[c], g.vr[c]
	for j := range x0 {
		m, v, nm := mean[j], vr[j], norm[j]
		d0 := x0[j] - m
		d1 := x1[j] - m
		d2 := x2[j] - m
		d3 := x3[j] - m
		l0 += nm - d0*d0/(2*v)
		l1 += nm - d1*d1/(2*v)
		l2 += nm - d2*d2/(2*v)
		l3 += nm - d3*d3/(2*v)
	}
	return l0, l1, l2, l3
}

// PredictBatch implements ml.BatchClassifier: blocked class-posterior
// comparison, row-for-row identical to Predict.
func (g *GaussianNB) PredictBatch(X [][]float64) []int {
	out := make([]int, len(X))
	if !g.ready {
		return out
	}
	i := 0
	for ; i+4 <= len(X); i += 4 {
		a0, a1, a2, a3 := g.logLikelihoodBlock4(X[i], X[i+1], X[i+2], X[i+3], 0)
		b0, b1, b2, b3 := g.logLikelihoodBlock4(X[i], X[i+1], X[i+2], X[i+3], 1)
		if b0 > a0 {
			out[i] = 1
		}
		if b1 > a1 {
			out[i+1] = 1
		}
		if b2 > a2 {
			out[i+2] = 1
		}
		if b3 > a3 {
			out[i+3] = 1
		}
	}
	for ; i < len(X); i++ {
		out[i] = g.Predict(X[i])
	}
	return out
}

// PredictProbaBatch returns P(attack|x) per row, row-for-row
// identical to Proba.
func (g *GaussianNB) PredictProbaBatch(X [][]float64) []float64 {
	out := make([]float64, len(X))
	if !g.ready {
		return out
	}
	softmax2 := func(l0, l1 float64) float64 {
		m := math.Max(l0, l1)
		e0, e1 := math.Exp(l0-m), math.Exp(l1-m)
		return e1 / (e0 + e1)
	}
	i := 0
	for ; i+4 <= len(X); i += 4 {
		a0, a1, a2, a3 := g.logLikelihoodBlock4(X[i], X[i+1], X[i+2], X[i+3], 0)
		b0, b1, b2, b3 := g.logLikelihoodBlock4(X[i], X[i+1], X[i+2], X[i+3], 1)
		out[i] = softmax2(a0, b0)
		out[i+1] = softmax2(a1, b1)
		out[i+2] = softmax2(a2, b2)
		out[i+3] = softmax2(a3, b3)
	}
	for ; i < len(X); i++ {
		out[i] = g.Proba(X[i])
	}
	return out
}
