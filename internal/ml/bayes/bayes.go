// Package bayes implements Gaussian Naive Bayes, the lightweight
// GNB baseline of the paper's Tables III–VI.
package bayes

import (
	"errors"
	"math"
)

// GaussianNB models each feature as an independent per-class
// Gaussian, with scikit-learn-style variance smoothing for numeric
// stability.
type GaussianNB struct {
	// VarSmoothing is the fraction of the largest feature variance
	// added to every variance (default 1e-9, as in scikit-learn).
	VarSmoothing float64

	prior [2]float64   // log class priors
	mean  [2][]float64 // per-class feature means
	vr    [2][]float64 // per-class feature variances
	ready bool
}

// New returns an untrained classifier with default smoothing.
func New() *GaussianNB { return &GaussianNB{VarSmoothing: 1e-9} }

// Name implements ml.Classifier.
func (g *GaussianNB) Name() string { return "GNB" }

// Fit estimates per-class feature means and variances.
func (g *GaussianNB) Fit(X [][]float64, y []int) error {
	if len(X) == 0 {
		return errors.New("bayes: empty training set")
	}
	if len(X) != len(y) {
		return errors.New("bayes: rows and labels differ")
	}
	w := len(X[0])
	var count [2]int
	for c := 0; c < 2; c++ {
		g.mean[c] = make([]float64, w)
		g.vr[c] = make([]float64, w)
	}
	for i, row := range X {
		c := y[i]
		count[c]++
		for j, v := range row {
			g.mean[c][j] += v
		}
	}
	if count[0] == 0 || count[1] == 0 {
		return errors.New("bayes: training set must contain both classes")
	}
	for c := 0; c < 2; c++ {
		for j := range g.mean[c] {
			g.mean[c][j] /= float64(count[c])
		}
	}
	for i, row := range X {
		c := y[i]
		for j, v := range row {
			d := v - g.mean[c][j]
			g.vr[c][j] += d * d
		}
	}
	maxVar := 0.0
	for c := 0; c < 2; c++ {
		for j := range g.vr[c] {
			g.vr[c][j] /= float64(count[c])
			if g.vr[c][j] > maxVar {
				maxVar = g.vr[c][j]
			}
		}
	}
	if g.VarSmoothing <= 0 {
		g.VarSmoothing = 1e-9
	}
	eps := g.VarSmoothing * maxVar
	if eps == 0 {
		eps = g.VarSmoothing
	}
	for c := 0; c < 2; c++ {
		for j := range g.vr[c] {
			g.vr[c][j] += eps
		}
	}
	n := float64(len(X))
	g.prior[0] = math.Log(float64(count[0]) / n)
	g.prior[1] = math.Log(float64(count[1]) / n)
	g.ready = true
	return nil
}

// logLikelihood returns the joint log-likelihood of x under class c.
func (g *GaussianNB) logLikelihood(x []float64, c int) float64 {
	ll := g.prior[c]
	for j, v := range x {
		d := v - g.mean[c][j]
		ll += -0.5*math.Log(2*math.Pi*g.vr[c][j]) - d*d/(2*g.vr[c][j])
	}
	return ll
}

// Predict implements ml.Classifier.
func (g *GaussianNB) Predict(x []float64) int {
	if !g.ready {
		return 0
	}
	if g.logLikelihood(x, 1) > g.logLikelihood(x, 0) {
		return 1
	}
	return 0
}

// Proba returns P(attack|x) via the normalized likelihoods.
func (g *GaussianNB) Proba(x []float64) float64 {
	if !g.ready {
		return 0
	}
	l0, l1 := g.logLikelihood(x, 0), g.logLikelihood(x, 1)
	m := math.Max(l0, l1)
	e0, e1 := math.Exp(l0-m), math.Exp(l1-m)
	return e1 / (e0 + e1)
}
