package bayes

import (
	"math"
	"math/rand"
	"testing"

	"github.com/amlight/intddos/internal/ml"
)

func gaussBlobs(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		y[i] = i % 2
		X[i] = []float64{
			rng.NormFloat64() + float64(y[i])*4,
			rng.NormFloat64()*2 - float64(y[i])*3,
		}
	}
	return X, y
}

func TestGNBSeparatesGaussians(t *testing.T) {
	X, y := gaussBlobs(1000, 1)
	g := New()
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	Xt, yt := gaussBlobs(400, 2)
	m := ml.Confusion(yt, ml.PredictBatch(g, Xt))
	if m.Accuracy() < 0.97 {
		t.Errorf("accuracy = %v, want ≥0.97", m.Accuracy())
	}
}

func TestGNBLearnsDecisionBoundaryMidpoint(t *testing.T) {
	// Equal-variance classes centered at 0 and 10: boundary ≈5.
	var X [][]float64
	var y []int
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		c := i % 2
		X = append(X, []float64{rng.NormFloat64() + float64(c)*10})
		y = append(y, c)
	}
	g := New()
	g.Fit(X, y)
	if g.Predict([]float64{4}) != 0 {
		t.Error("x=4 should be class 0")
	}
	if g.Predict([]float64{6}) != 1 {
		t.Error("x=6 should be class 1")
	}
}

func TestGNBPriorsMatter(t *testing.T) {
	// Overlapping classes with a 9:1 prior: ambiguous points go to the
	// majority class.
	var X [][]float64
	var y []int
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 900; i++ {
		X = append(X, []float64{rng.NormFloat64()})
		y = append(y, 0)
	}
	for i := 0; i < 100; i++ {
		X = append(X, []float64{rng.NormFloat64()})
		y = append(y, 1)
	}
	g := New()
	g.Fit(X, y)
	if g.Predict([]float64{0}) != 0 {
		t.Error("ambiguous point should follow the 9:1 prior")
	}
}

func TestGNBProba(t *testing.T) {
	X, y := gaussBlobs(1000, 5)
	g := New()
	g.Fit(X, y)
	pPos := g.Proba([]float64{4, -3})
	pNeg := g.Proba([]float64{0, 0})
	if pPos <= 0.5 || pNeg >= 0.5 {
		t.Errorf("proba pos=%v neg=%v", pPos, pNeg)
	}
	if pPos > 1 || pNeg < 0 {
		t.Error("proba out of range")
	}
}

func TestGNBErrors(t *testing.T) {
	g := New()
	if err := g.Fit(nil, nil); err == nil {
		t.Error("empty fit accepted")
	}
	if err := g.Fit([][]float64{{1}}, []int{0}); err == nil {
		t.Error("single-class fit accepted")
	}
	if err := g.Fit([][]float64{{1}}, []int{0, 1}); err == nil {
		t.Error("mismatched fit accepted")
	}
}

func TestGNBUntrainedPredictsZero(t *testing.T) {
	g := New()
	if g.Predict([]float64{1}) != 0 || g.Proba([]float64{1}) != 0 {
		t.Error("untrained model should default to benign")
	}
}

func TestGNBConstantFeatureNoNaN(t *testing.T) {
	// Zero-variance feature: smoothing must prevent division by zero.
	X := [][]float64{{1, 0}, {1, 1}, {1, 0}, {1, 5}}
	y := []int{0, 1, 0, 1}
	g := New()
	if err := g.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	p := g.Proba([]float64{1, 2})
	if math.IsNaN(p) || math.IsInf(p, 0) {
		t.Errorf("proba = %v with constant feature", p)
	}
}

func TestGNBName(t *testing.T) {
	if New().Name() != "GNB" {
		t.Error("name")
	}
}

func TestGNBSerializeRoundTrip(t *testing.T) {
	X, y := gaussBlobs(400, 11)
	g := New()
	g.Fit(X, y)
	blob, err := g.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	h := New()
	if err := h.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	Xt, _ := gaussBlobs(100, 12)
	for i, x := range Xt {
		if g.Predict(x) != h.Predict(x) {
			t.Fatalf("prediction differs at %d", i)
		}
		if math.Abs(g.Proba(x)-h.Proba(x)) > 1e-12 {
			t.Fatalf("proba differs at %d", i)
		}
	}
}

func TestGNBUnmarshalRejectsCorruption(t *testing.T) {
	X, y := gaussBlobs(100, 13)
	g := New()
	g.Fit(X, y)
	blob, _ := g.MarshalBinary()
	h := New()
	if err := h.UnmarshalBinary(blob[:10]); err == nil {
		t.Error("truncated blob accepted")
	}
	if _, err := New().MarshalBinary(); err == nil {
		t.Error("untrained marshal accepted")
	}
}
