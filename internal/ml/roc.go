package ml

import "sort"

// ProbaClassifier is a classifier that exposes a continuous attack
// score, enabling threshold analysis beyond the fixed 0.5 cut.
type ProbaClassifier interface {
	Classifier
	// Proba returns P(attack|x) in [0, 1].
	Proba(x []float64) float64
}

// BatchProbaClassifier is a ProbaClassifier with an amortized batch
// scoring path, mirroring BatchClassifier: PredictProbaBatch must be
// row-for-row identical to calling Proba in a loop.
type BatchProbaClassifier interface {
	ProbaClassifier
	// PredictProbaBatch returns P(attack|x) for every row of X.
	PredictProbaBatch(X [][]float64) []float64
}

// ROCPoint is one operating point of a score threshold sweep.
type ROCPoint struct {
	Threshold float64
	TPR       float64 // recall at this threshold
	FPR       float64
}

// ROC sweeps every distinct score as a threshold and returns the
// operating curve ordered from (0,0) to (1,1).
func ROC(yTrue []int, scores []float64) []ROCPoint {
	type pair struct {
		s float64
		y int
	}
	ps := make([]pair, len(scores))
	pos, neg := 0, 0
	for i, s := range scores {
		ps[i] = pair{s, yTrue[i]}
		if yTrue[i] == 1 {
			pos++
		} else {
			neg++
		}
	}
	if pos == 0 || neg == 0 {
		return nil
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].s > ps[j].s })

	out := []ROCPoint{{Threshold: ps[0].s + 1}}
	tp, fp := 0, 0
	for i := 0; i < len(ps); {
		s := ps[i].s
		for i < len(ps) && ps[i].s == s {
			if ps[i].y == 1 {
				tp++
			} else {
				fp++
			}
			i++
		}
		out = append(out, ROCPoint{
			Threshold: s,
			TPR:       float64(tp) / float64(pos),
			FPR:       float64(fp) / float64(neg),
		})
	}
	return out
}

// AUC integrates the curve with the trapezoid rule.
func AUC(points []ROCPoint) float64 {
	var area float64
	for i := 1; i < len(points); i++ {
		dx := points[i].FPR - points[i-1].FPR
		area += dx * (points[i].TPR + points[i-1].TPR) / 2
	}
	return area
}

// BestThreshold returns the operating point maximizing Youden's J
// statistic (TPR − FPR), a standard threshold-tuning criterion.
func BestThreshold(points []ROCPoint) ROCPoint {
	best := ROCPoint{}
	bestJ := -1.0
	for _, p := range points {
		if j := p.TPR - p.FPR; j > bestJ {
			bestJ = j
			best = p
		}
	}
	return best
}

// ScoreRows applies a ProbaClassifier across rows, using the model's
// batch path when it implements BatchProbaClassifier.
func ScoreRows(c ProbaClassifier, X [][]float64) []float64 {
	if bc, ok := c.(BatchProbaClassifier); ok {
		return bc.PredictProbaBatch(X)
	}
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = c.Proba(x)
	}
	return out
}
