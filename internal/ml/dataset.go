// Package ml provides the machine-learning foundation the detection
// models share: datasets, train/test splitting, standard scaling,
// binary-classification metrics, and permutation feature importance.
// Model families live in the subpackages forest, bayes, knn, and
// neural; all are implemented from scratch on the standard library.
package ml

import (
	"fmt"
	"math/rand"
)

// RowMeta carries per-row bookkeeping that is not visible to models:
// the observation time (for timeline figures) and the generating
// workload (for per-attack-type breakdowns).
type RowMeta struct {
	At   int64
	Type string
}

// Dataset is a dense feature matrix with binary labels (0 benign,
// 1 attack) and optional row metadata.
type Dataset struct {
	X     [][]float64
	Y     []int
	Names []string  // feature names, len == feature count
	Meta  []RowMeta // optional, len == len(X) when present
}

// Len returns the number of rows.
func (d *Dataset) Len() int { return len(d.X) }

// Features returns the feature count, 0 for an empty dataset.
func (d *Dataset) Features() int {
	if len(d.X) == 0 {
		return 0
	}
	return len(d.X[0])
}

// Append adds one row.
func (d *Dataset) Append(x []float64, y int, meta RowMeta) {
	d.X = append(d.X, x)
	d.Y = append(d.Y, y)
	d.Meta = append(d.Meta, meta)
}

// Validate checks structural invariants.
func (d *Dataset) Validate() error {
	if len(d.X) != len(d.Y) {
		return fmt.Errorf("ml: %d rows but %d labels", len(d.X), len(d.Y))
	}
	if len(d.Meta) != 0 && len(d.Meta) != len(d.X) {
		return fmt.Errorf("ml: %d rows but %d metadata entries", len(d.X), len(d.Meta))
	}
	w := d.Features()
	for i, row := range d.X {
		if len(row) != w {
			return fmt.Errorf("ml: row %d has %d features, want %d", i, len(row), w)
		}
	}
	for i, y := range d.Y {
		if y != 0 && y != 1 {
			return fmt.Errorf("ml: row %d label %d not binary", i, y)
		}
	}
	return nil
}

// ClassCounts returns (benign, attack) row counts.
func (d *Dataset) ClassCounts() (neg, pos int) {
	for _, y := range d.Y {
		if y == 1 {
			pos++
		} else {
			neg++
		}
	}
	return neg, pos
}

// Select returns a new dataset view containing the given row indices.
// Rows are shared, not copied.
func (d *Dataset) Select(idx []int) *Dataset {
	out := &Dataset{Names: d.Names}
	out.X = make([][]float64, len(idx))
	out.Y = make([]int, len(idx))
	if len(d.Meta) > 0 {
		out.Meta = make([]RowMeta, len(idx))
	}
	for i, j := range idx {
		out.X[i] = d.X[j]
		out.Y[i] = d.Y[j]
		if len(d.Meta) > 0 {
			out.Meta[i] = d.Meta[j]
		}
	}
	return out
}

// Split shuffles rows with the seed and partitions them so testFrac
// of them land in the test set, mirroring the paper's 90:10 split at
// testFrac = 0.1.
func (d *Dataset) Split(testFrac float64, seed int64) (train, test *Dataset) {
	n := d.Len()
	idx := rand.New(rand.NewSource(seed)).Perm(n)
	cut := int(float64(n) * testFrac)
	return d.Select(idx[cut:]), d.Select(idx[:cut])
}

// Subsample returns at most n rows drawn without replacement, the
// paper's device for keeping KNN tractable ("one thousandth of the
// whole sample").
func (d *Dataset) Subsample(n int, seed int64) *Dataset {
	if n >= d.Len() {
		return d
	}
	idx := rand.New(rand.NewSource(seed)).Perm(d.Len())[:n]
	return d.Select(idx)
}

// Classifier is a trained or trainable binary classifier.
type Classifier interface {
	// Name identifies the model family (e.g. "RF", "GNB").
	Name() string
	// Fit trains on the dataset.
	Fit(X [][]float64, y []int) error
	// Predict labels one feature vector.
	Predict(x []float64) int
}

// BatchClassifier is the primary scoring contract: a Classifier whose
// PredictBatch amortizes per-sample overhead (buffer allocation,
// model-state traversal, cache misses) across a block of rows. Every
// model family in this repository implements it, and implementations
// are required to be row-for-row identical to calling Predict in a
// loop — batch scoring is a throughput optimization, never a semantic
// change.
type BatchClassifier interface {
	Classifier
	// PredictBatch labels every row of X, equal element-wise to
	// [Predict(x) for x in X].
	PredictBatch(X [][]float64) []int
}

// PredictBatch labels every row of X, using the model's amortized
// batch path when it implements BatchClassifier and a sequential
// Predict loop otherwise. The two paths are interchangeable by the
// BatchClassifier contract.
func PredictBatch(c Classifier, X [][]float64) []int {
	if bc, ok := c.(BatchClassifier); ok {
		return bc.PredictBatch(X)
	}
	return SequentialPredict(c, X)
}

// SequentialPredict labels every row of X one Predict call at a time
// — the reference implementation batch paths are tested against.
func SequentialPredict(c Classifier, X [][]float64) []int {
	out := make([]int, len(X))
	for i, x := range X {
		out[i] = c.Predict(x)
	}
	return out
}

// FallibleBatchClassifier is the optional error-surfacing side of a
// classifier: a batch scoring path that can fail transiently instead
// of panicking or silently mislabeling — the contract fault-injected
// and remote models implement. Consumers (the live ensemble) treat an
// error as "this model produced no votes for this batch", mark the
// model's health, and degrade the quorum rather than the pipeline.
type FallibleBatchClassifier interface {
	Classifier
	// TryPredictBatch labels every row of X or fails the whole batch.
	// On success the labels are row-for-row identical to PredictBatch.
	TryPredictBatch(X [][]float64) ([]int, error)
}

// TryPredictBatch scores X through the model's fallible path when it
// has one, and otherwise through PredictBatch with panic containment:
// a panicking model surfaces as an error instead of killing the
// calling goroutine. This is the scoring entry point for callers that
// must survive a misbehaving ensemble member.
func TryPredictBatch(c Classifier, X [][]float64) (labels []int, err error) {
	if fc, ok := c.(FallibleBatchClassifier); ok {
		return fc.TryPredictBatch(X)
	}
	defer func() {
		if r := recover(); r != nil {
			labels, err = nil, fmt.Errorf("ml: model %s panicked: %v", c.Name(), r)
		}
	}()
	return PredictBatch(c, X), nil
}

// FeatureCounter is implemented by trained models that know their
// input width. Pipelines use it to reject a model/scaler/feature-set
// mismatch at construction instead of panicking a worker at the first
// scoring call.
type FeatureCounter interface {
	// Features returns the trained input width, 0 before training.
	Features() int
}

// ExpectedFeatures returns the model's trained input width, or 0 when
// the model does not report one.
func ExpectedFeatures(c Classifier) int {
	if fc, ok := c.(FeatureCounter); ok {
		return fc.Features()
	}
	return 0
}
