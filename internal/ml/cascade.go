package ml

// Cascade is the early-exit scoring cascade behind tiered inference
// (ROADMAP item 2, after the collaborative P4-SDN early-exit design in
// PAPERS.md). Each stage wraps a cheap probabilistic model with a
// confidence threshold: a row whose stage probability is confident
// enough exits the cascade with that stage's label, and only the
// uncertain remainder falls through to the caller's full-ensemble
// vote. The cascade itself is stateless and safe for concurrent use
// by many prediction workers as long as the stage models are.
//
// Exactness contract: a stage with Threshold <= 0 (or a nil model) is
// skipped entirely, so a zero/disabled cascade triages nothing and the
// caller's output is bit-identical to the plain ensemble path —
// that is the default-off mode the golden tables pin.
type Cascade struct {
	Stages []CascadeStage
}

// CascadeStage pairs one cheap model with the confidence it needs to
// early-exit a row.
type CascadeStage struct {
	// Name labels the stage in metrics and provenance output.
	Name string
	// Model scores the stage. It must expose calibrated-ish
	// probabilities; confidence is |2p - 1|.
	Model BatchProbaClassifier
	// Threshold is the minimum confidence |2p - 1| required to exit
	// at this stage. Values <= 0 disable the stage (exact mode);
	// 1 exits only on fully saturated probabilities.
	Threshold float64
}

// CascadeScratch holds the per-worker reusable buffers for
// TriageBatch so steady-state triage does not allocate. The zero
// value is ready to use; do not share one scratch between goroutines.
type CascadeScratch struct {
	stage []int
	label []int
	idx   []int
	sub   [][]float64
}

func growInts(s []int, n int) []int {
	if cap(s) < n {
		return make([]int, n)
	}
	return s[:n]
}

// Enabled reports whether any stage can actually exit rows.
func (c *Cascade) Enabled() bool {
	if c == nil {
		return false
	}
	for _, st := range c.Stages {
		if st.Model != nil && st.Threshold > 0 {
			return true
		}
	}
	return false
}

// TriageBatch runs every row of X through the cascade stages in
// order. It returns two slices of len(X), valid until the next call
// with the same scratch: stage[i] is 1+the index of the stage that
// exited row i (0 means the row fell through and must be scored by
// the full ensemble), and label[i] is that stage's verdict (only
// meaningful when stage[i] > 0).
//
// suspicious optionally carries the stage-0 sketch verdict: a row
// marked suspicious is never early-exited as benign — a confident
// benign verdict on it is discarded and the row falls through to the
// full vote. Pass nil when no sketch is in play.
func (c *Cascade) TriageBatch(X [][]float64, suspicious []bool, s *CascadeScratch) (stage, label []int) {
	if s == nil {
		s = &CascadeScratch{}
	}
	s.stage = growInts(s.stage, len(X))
	s.label = growInts(s.label, len(X))
	stage, label = s.stage, s.label
	for i := range stage {
		stage[i] = 0
		label[i] = 0
	}
	if c == nil || len(X) == 0 {
		return stage, label
	}

	// idx tracks the rows still in the cascade; each stage scores
	// only those and the confident ones drop out.
	s.idx = growInts(s.idx, len(X))
	remaining := s.idx[:0]
	for i := range X {
		remaining = append(remaining, i)
	}

	for si, st := range c.Stages {
		if st.Model == nil || st.Threshold <= 0 || len(remaining) == 0 {
			continue
		}
		if cap(s.sub) < len(remaining) {
			s.sub = make([][]float64, len(remaining))
		}
		sub := s.sub[:len(remaining)]
		for j, i := range remaining {
			sub[j] = X[i]
		}
		probs := st.Model.PredictProbaBatch(sub)
		next := remaining[:0]
		for j, i := range remaining {
			p := probs[j]
			conf := 2*p - 1
			if conf < 0 {
				conf = -conf
			}
			lab := 0
			if p >= 0.5 {
				lab = 1
			}
			if conf >= st.Threshold && !(lab == 0 && suspicious != nil && suspicious[i]) {
				stage[i] = si + 1
				label[i] = lab
				continue
			}
			next = append(next, i)
		}
		remaining = next
	}
	return stage, label
}
