package ml

import (
	"math"
	"math/rand"
	"testing"
)

func TestROCPerfectClassifier(t *testing.T) {
	yTrue := []int{1, 1, 1, 0, 0, 0}
	scores := []float64{0.9, 0.8, 0.7, 0.3, 0.2, 0.1}
	curve := ROC(yTrue, scores)
	if curve == nil {
		t.Fatal("nil curve")
	}
	if auc := AUC(curve); math.Abs(auc-1.0) > 1e-12 {
		t.Errorf("AUC = %v, want 1", auc)
	}
	best := BestThreshold(curve)
	if best.TPR != 1 || best.FPR != 0 {
		t.Errorf("best point = %+v", best)
	}
	// The best threshold separates the classes.
	if best.Threshold > 0.7 || best.Threshold <= 0.3 {
		t.Errorf("best threshold = %v", best.Threshold)
	}
}

func TestROCRandomScoresNearHalf(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	n := 4000
	yTrue := make([]int, n)
	scores := make([]float64, n)
	for i := range yTrue {
		yTrue[i] = i % 2
		scores[i] = rng.Float64()
	}
	auc := AUC(ROC(yTrue, scores))
	if math.Abs(auc-0.5) > 0.05 {
		t.Errorf("random AUC = %v, want ≈0.5", auc)
	}
}

func TestROCInvertedClassifier(t *testing.T) {
	yTrue := []int{1, 1, 0, 0}
	scores := []float64{0.1, 0.2, 0.8, 0.9}
	if auc := AUC(ROC(yTrue, scores)); auc > 0.01 {
		t.Errorf("inverted AUC = %v, want 0", auc)
	}
}

func TestROCDegenerateClasses(t *testing.T) {
	if ROC([]int{1, 1}, []float64{0.5, 0.6}) != nil {
		t.Error("single-class ROC should be nil")
	}
	if ROC([]int{0, 0}, []float64{0.5, 0.6}) != nil {
		t.Error("single-class ROC should be nil")
	}
}

func TestROCTiedScores(t *testing.T) {
	yTrue := []int{1, 0, 1, 0}
	scores := []float64{0.5, 0.5, 0.5, 0.5}
	curve := ROC(yTrue, scores)
	// All tied: one step straight from (0,0) to (1,1); AUC 0.5.
	if auc := AUC(curve); math.Abs(auc-0.5) > 1e-12 {
		t.Errorf("tied AUC = %v", auc)
	}
}

func TestROCEndpoints(t *testing.T) {
	yTrue := []int{1, 0, 1, 0, 1}
	scores := []float64{0.9, 0.1, 0.6, 0.4, 0.8}
	curve := ROC(yTrue, scores)
	first, last := curve[0], curve[len(curve)-1]
	if first.TPR != 0 || first.FPR != 0 {
		t.Errorf("curve start = %+v", first)
	}
	if last.TPR != 1 || last.FPR != 1 {
		t.Errorf("curve end = %+v", last)
	}
}

// rampModel scores by the first feature directly.
type rampModel struct{}

func (rampModel) Name() string                 { return "ramp" }
func (rampModel) Fit([][]float64, []int) error { return nil }
func (rampModel) Predict(x []float64) int {
	if x[0] > 0.5 {
		return 1
	}
	return 0
}
func (rampModel) Proba(x []float64) float64 { return x[0] }

func TestScoreRows(t *testing.T) {
	X := [][]float64{{0.2}, {0.9}}
	got := ScoreRows(rampModel{}, X)
	if got[0] != 0.2 || got[1] != 0.9 {
		t.Errorf("scores = %v", got)
	}
}
