package ml

import "fmt"

// ConfusionMatrix is the two-by-two positive/negative matrix of §IV-A
// (Figures 3 and 4). Positives are attack rows (label 1).
type ConfusionMatrix struct {
	TP, TN, FP, FN int
}

// Confusion tallies predictions against truth.
func Confusion(yTrue, yPred []int) ConfusionMatrix {
	var m ConfusionMatrix
	for i, t := range yTrue {
		p := yPred[i]
		switch {
		case t == 1 && p == 1:
			m.TP++
		case t == 0 && p == 0:
			m.TN++
		case t == 0 && p == 1:
			m.FP++
		default:
			m.FN++
		}
	}
	return m
}

// Total returns the number of scored rows.
func (m ConfusionMatrix) Total() int { return m.TP + m.TN + m.FP + m.FN }

// Accuracy = (TP+TN)/(TP+TN+FP+FN).
func (m ConfusionMatrix) Accuracy() float64 {
	if m.Total() == 0 {
		return 0
	}
	return float64(m.TP+m.TN) / float64(m.Total())
}

// Recall = TP/(TP+FN). Zero when no positives exist.
func (m ConfusionMatrix) Recall() float64 {
	if m.TP+m.FN == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FN)
}

// Precision = TP/(TP+FP). Zero when nothing was predicted positive.
func (m ConfusionMatrix) Precision() float64 {
	if m.TP+m.FP == 0 {
		return 0
	}
	return float64(m.TP) / float64(m.TP+m.FP)
}

// F1 = 2·P·R/(P+R). When the classifier predicts no positives at all
// and positives exist, the paper's Table IV reports 0.5 for the
// degenerate all-negative NN; that value is the macro-averaged F1
// (benign F1 ≈ 1, attack F1 = 0), which MacroF1 reproduces.
func (m ConfusionMatrix) F1() float64 {
	p, r := m.Precision(), m.Recall()
	if p+r == 0 {
		return 0
	}
	return 2 * p * r / (p + r)
}

// MacroF1 averages the F1 of the attack class and the benign class
// (computed by swapping the positive class).
func (m ConfusionMatrix) MacroF1() float64 {
	neg := ConfusionMatrix{TP: m.TN, TN: m.TP, FP: m.FN, FN: m.FP}
	return (m.F1() + neg.F1()) / 2
}

// String renders the matrix compactly.
func (m ConfusionMatrix) String() string {
	return fmt.Sprintf("TP=%d TN=%d FP=%d FN=%d acc=%.4f", m.TP, m.TN, m.FP, m.FN, m.Accuracy())
}

// Scores bundles the four Table III/IV metrics.
type Scores struct {
	Accuracy  float64
	Recall    float64
	Precision float64
	F1        float64
}

// Score computes the metric bundle from truth and predictions,
// using MacroF1 so degenerate all-negative classifiers score the
// paper's 0.5 rather than 0.
func Score(yTrue, yPred []int) Scores {
	m := Confusion(yTrue, yPred)
	f1 := m.F1()
	if m.TP+m.FP == 0 && m.TP+m.FN > 0 {
		f1 = m.MacroF1()
	}
	return Scores{
		Accuracy:  m.Accuracy(),
		Recall:    m.Recall(),
		Precision: m.Precision(),
		F1:        f1,
	}
}
