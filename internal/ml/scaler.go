package ml

import (
	"errors"
	"math"
)

// StandardScaler standardizes features to zero mean and unit
// variance — the "coefficients of scaler transformation" the paper's
// Prediction module loads alongside the pre-trained models.
type StandardScaler struct {
	Mean []float64
	Std  []float64
}

// Fit learns per-feature mean and standard deviation. Features with
// zero variance get Std 1 so transforming them is a no-op shift.
func (s *StandardScaler) Fit(X [][]float64) error {
	if len(X) == 0 {
		return errors.New("ml: scaler fit on empty matrix")
	}
	w := len(X[0])
	s.Mean = make([]float64, w)
	s.Std = make([]float64, w)
	for _, row := range X {
		for j, v := range row {
			s.Mean[j] += v
		}
	}
	n := float64(len(X))
	for j := range s.Mean {
		s.Mean[j] /= n
	}
	for _, row := range X {
		for j, v := range row {
			d := v - s.Mean[j]
			s.Std[j] += d * d
		}
	}
	for j := range s.Std {
		s.Std[j] = math.Sqrt(s.Std[j] / n)
		if s.Std[j] == 0 {
			s.Std[j] = 1
		}
	}
	return nil
}

// Transform standardizes rows in place-compatible copies and returns
// the new matrix; the input is not modified.
func (s *StandardScaler) Transform(X [][]float64) [][]float64 {
	out := make([][]float64, len(X))
	for i, row := range X {
		r := make([]float64, len(row))
		for j, v := range row {
			r[j] = (v - s.Mean[j]) / s.Std[j]
		}
		out[i] = r
	}
	return out
}

// TransformRow standardizes a single row into dst (allocated when
// nil) and returns it.
func (s *StandardScaler) TransformRow(dst, x []float64) []float64 {
	if dst == nil {
		dst = make([]float64, len(x))
	}
	for j, v := range x {
		dst[j] = (v - s.Mean[j]) / s.Std[j]
	}
	return dst
}

// TransformBatch standardizes every row of X into dst, growing dst as
// needed, and returns dst[:len(X)]. Row buffers already present in
// dst are reused, so a prediction worker can standardize micro-batch
// after micro-batch without allocating; each row equals TransformRow
// on the same input.
func (s *StandardScaler) TransformBatch(dst, X [][]float64) [][]float64 {
	if cap(dst) < len(X) {
		grown := make([][]float64, len(X))
		copy(grown, dst[:cap(dst)])
		dst = grown
	}
	dst = dst[:len(X)]
	for i, row := range X {
		if len(dst[i]) != len(row) {
			dst[i] = make([]float64, len(row))
		}
		s.TransformRow(dst[i], row)
	}
	return dst
}

// FitTransform fits on X and returns the standardized copy.
func (s *StandardScaler) FitTransform(X [][]float64) ([][]float64, error) {
	if err := s.Fit(X); err != nil {
		return nil, err
	}
	return s.Transform(X), nil
}
