package ml

import (
	"math/rand"
	"sort"
)

// FeatureImportance pairs a feature index with an importance value.
type FeatureImportance struct {
	Index int
	Name  string
	Value float64
}

// PermutationImportance measures each feature's importance as the
// accuracy drop when that feature's column is shuffled — the
// model-agnostic method used to produce Table V for models without a
// native importance (GNB, KNN, NN).
func PermutationImportance(c Classifier, X [][]float64, y []int, names []string, seed int64) []FeatureImportance {
	if len(X) == 0 {
		return nil
	}
	base := Confusion(y, PredictBatch(c, X)).Accuracy()
	w := len(X[0])
	rng := rand.New(rand.NewSource(seed))
	out := make([]FeatureImportance, w)

	col := make([]float64, len(X))
	probe := make([]float64, w)
	for j := 0; j < w; j++ {
		for i := range X {
			col[i] = X[i][j]
		}
		perm := rng.Perm(len(X))
		// Score with column j shuffled.
		correct := 0
		for i := range X {
			copy(probe, X[i])
			probe[j] = col[perm[i]]
			if c.Predict(probe) == y[i] {
				correct++
			}
		}
		shuffled := float64(correct) / float64(len(X))
		name := ""
		if j < len(names) {
			name = names[j]
		}
		out[j] = FeatureImportance{Index: j, Name: name, Value: base - shuffled}
	}
	return out
}

// TopK returns the k largest importances, descending (ties broken by
// feature index for determinism).
func TopK(imps []FeatureImportance, k int) []FeatureImportance {
	sorted := make([]FeatureImportance, len(imps))
	copy(sorted, imps)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Value != sorted[j].Value {
			return sorted[i].Value > sorted[j].Value
		}
		return sorted[i].Index < sorted[j].Index
	})
	if k > len(sorted) {
		k = len(sorted)
	}
	return sorted[:k]
}
