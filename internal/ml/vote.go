package ml

// EnsembleVotes scores every row of X with every model through the
// batch path and returns the transposed result: votes[i] is row i's
// per-model vote vector (in model order, safe for the caller to
// retain) and ones[i] how many models voted attack — the inputs the
// §IV-C4 quorum rule consumes. Each model walks the whole batch once,
// so per-batch costs (tree-arena faults, activation buffers, hoisted
// constants) are paid per model instead of per sample.
func EnsembleVotes(models []Classifier, X [][]float64) (votes [][]int, ones []int) {
	votes = make([][]int, len(X))
	ones = make([]int, len(X))
	flat := make([]int, len(X)*len(models))
	for i := range votes {
		votes[i] = flat[i*len(models) : (i+1)*len(models) : (i+1)*len(models)]
	}
	for mi, m := range models {
		labels := PredictBatch(m, X)
		for i, lab := range labels {
			votes[i][mi] = lab
			ones[i] += lab
		}
	}
	return votes, ones
}

// QuorumLabels reduces per-row attack-vote counts to raw ensemble
// labels: 1 where at least quorum models voted attack.
func QuorumLabels(ones []int, quorum int) []int {
	out := make([]int, len(ones))
	for i, n := range ones {
		if n >= quorum {
			out[i] = 1
		}
	}
	return out
}
