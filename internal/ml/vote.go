package ml

// EnsembleVotes scores every row of X with every model through the
// batch path and returns the transposed result: votes[i] is row i's
// per-model vote vector (in model order, safe for the caller to
// retain) and ones[i] how many models voted attack — the inputs the
// §IV-C4 quorum rule consumes. Each model walks the whole batch once,
// so per-batch costs (tree-arena faults, activation buffers, hoisted
// constants) are paid per model instead of per sample.
func EnsembleVotes(models []Classifier, X [][]float64) (votes [][]int, ones []int) {
	return EnsembleVotesInto(nil, models, X)
}

// VoteScratch holds the reusable buffers for EnsembleVotesInto. The
// zero value is ready to use; do not share one scratch between
// goroutines.
type VoteScratch struct {
	votes [][]int
	ones  []int
}

// EnsembleVotesInto is EnsembleVotes with the outer votes header and
// the ones buffer recycled from s across calls — the per-batch
// allocations a prediction worker would otherwise pay on every
// micro-batch. The flat per-row vote storage is still allocated fresh
// each call because callers retain the row slices in Decisions and
// prediction records; only the buffers that die with the batch are
// reused. A nil scratch allocates everything, matching EnsembleVotes.
func EnsembleVotesInto(s *VoteScratch, models []Classifier, X [][]float64) (votes [][]int, ones []int) {
	if s == nil {
		s = &VoteScratch{}
	}
	if cap(s.votes) < len(X) {
		s.votes = make([][]int, len(X))
	}
	if cap(s.ones) < len(X) {
		s.ones = make([]int, len(X))
	}
	votes = s.votes[:len(X)]
	ones = s.ones[:len(X)]
	for i := range ones {
		ones[i] = 0
	}
	flat := make([]int, len(X)*len(models))
	for i := range votes {
		votes[i] = flat[i*len(models) : (i+1)*len(models) : (i+1)*len(models)]
	}
	for mi, m := range models {
		labels := PredictBatch(m, X)
		for i, lab := range labels {
			votes[i][mi] = lab
			ones[i] += lab
		}
	}
	return votes, ones
}

// QuorumLabels reduces per-row attack-vote counts to raw ensemble
// labels: 1 where at least quorum models voted attack.
func QuorumLabels(ones []int, quorum int) []int {
	out := make([]int, len(ones))
	for i, n := range ones {
		if n >= quorum {
			out[i] = 1
		}
	}
	return out
}
