package ml

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func toyDataset(n int, seed int64) *Dataset {
	rng := rand.New(rand.NewSource(seed))
	d := &Dataset{Names: []string{"a", "b"}}
	for i := 0; i < n; i++ {
		y := i % 2
		x := []float64{rng.NormFloat64() + float64(y)*4, rng.NormFloat64()}
		d.Append(x, y, RowMeta{At: int64(i), Type: "t"})
	}
	return d
}

func TestDatasetValidate(t *testing.T) {
	d := toyDataset(10, 1)
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Dataset{X: [][]float64{{1}}, Y: []int{0, 1}}
	if bad.Validate() == nil {
		t.Error("row/label mismatch accepted")
	}
	bad2 := &Dataset{X: [][]float64{{1}, {1, 2}}, Y: []int{0, 1}}
	if bad2.Validate() == nil {
		t.Error("ragged matrix accepted")
	}
	bad3 := &Dataset{X: [][]float64{{1}}, Y: []int{7}}
	if bad3.Validate() == nil {
		t.Error("non-binary label accepted")
	}
}

func TestDatasetSplitProportions(t *testing.T) {
	d := toyDataset(1000, 2)
	train, test := d.Split(0.1, 99)
	if test.Len() != 100 || train.Len() != 900 {
		t.Errorf("split sizes %d/%d, want 900/100", train.Len(), test.Len())
	}
	// No row lost or duplicated: count total feature sums.
	sum := func(ds *Dataset) float64 {
		var s float64
		for _, r := range ds.X {
			s += r[0]
		}
		return s
	}
	if math.Abs(sum(train)+sum(test)-sum(d)) > 1e-6 {
		t.Error("split lost rows")
	}
	// Deterministic under seed.
	tr2, _ := d.Split(0.1, 99)
	for i := range train.Y {
		if train.Y[i] != tr2.Y[i] {
			t.Fatal("split not deterministic")
		}
	}
}

func TestDatasetSubsample(t *testing.T) {
	d := toyDataset(500, 3)
	s := d.Subsample(50, 1)
	if s.Len() != 50 {
		t.Errorf("subsample len = %d", s.Len())
	}
	if d.Subsample(1000, 1) != d {
		t.Error("oversized subsample should return the dataset itself")
	}
	if len(s.Meta) != 50 {
		t.Errorf("meta not carried: %d", len(s.Meta))
	}
}

func TestClassCounts(t *testing.T) {
	d := toyDataset(10, 4)
	neg, pos := d.ClassCounts()
	if neg != 5 || pos != 5 {
		t.Errorf("counts = %d/%d", neg, pos)
	}
}

func TestConfusionAndMetrics(t *testing.T) {
	yTrue := []int{1, 1, 1, 1, 0, 0, 0, 0, 0, 0}
	yPred := []int{1, 1, 1, 0, 0, 0, 0, 0, 1, 1}
	m := Confusion(yTrue, yPred)
	if m.TP != 3 || m.FN != 1 || m.TN != 4 || m.FP != 2 {
		t.Fatalf("matrix = %+v", m)
	}
	if got := m.Accuracy(); got != 0.7 {
		t.Errorf("accuracy = %v", got)
	}
	if got := m.Recall(); got != 0.75 {
		t.Errorf("recall = %v", got)
	}
	if got := m.Precision(); got != 0.6 {
		t.Errorf("precision = %v", got)
	}
	wantF1 := 2 * 0.6 * 0.75 / (0.6 + 0.75)
	if got := m.F1(); math.Abs(got-wantF1) > 1e-12 {
		t.Errorf("f1 = %v, want %v", got, wantF1)
	}
}

func TestDegenerateAllNegativeScoresHalfF1(t *testing.T) {
	// The paper's Table IV sFlow NN row: recall 0, precision 0,
	// F1 0.5 — macro F1 of an all-negative classifier.
	yTrue := []int{1, 1, 0, 0, 0, 0, 0, 0, 0, 0}
	yPred := make([]int, 10)
	s := Score(yTrue, yPred)
	if s.Recall != 0 || s.Precision != 0 {
		t.Errorf("recall/precision = %v/%v, want 0/0", s.Recall, s.Precision)
	}
	// Macro F1 of an all-negative classifier tends to 0.5 as the
	// benign majority grows; at 80% benign it is 4/9.
	if math.Abs(s.F1-4.0/9.0) > 1e-12 {
		t.Errorf("degenerate F1 = %v, want 4/9", s.F1)
	}
	if s.Accuracy != 0.8 {
		t.Errorf("accuracy = %v", s.Accuracy)
	}
	// With a 1% attack share the macro F1 is ≈0.4987 — the paper's 0.5.
	bigTrue := make([]int, 1000)
	bigTrue[0] = 1
	bigPred := make([]int, 1000)
	if got := Score(bigTrue, bigPred).F1; math.Abs(got-0.5) > 0.002 {
		t.Errorf("1%%-attack degenerate F1 = %v, want ≈0.5", got)
	}
}

func TestMetricsEmptyAndPerfect(t *testing.T) {
	var m ConfusionMatrix
	if m.Accuracy() != 0 || m.Recall() != 0 || m.Precision() != 0 || m.F1() != 0 {
		t.Error("empty matrix metrics not zero")
	}
	p := Confusion([]int{1, 0, 1}, []int{1, 0, 1})
	if p.Accuracy() != 1 || p.F1() != 1 {
		t.Error("perfect prediction not scored 1.0")
	}
}

func TestConfusionProperty(t *testing.T) {
	f := func(raw []bool) bool {
		if len(raw) < 2 {
			return true
		}
		yTrue := make([]int, len(raw)/2)
		yPred := make([]int, len(raw)/2)
		for i := range yTrue {
			if raw[2*i] {
				yTrue[i] = 1
			}
			if raw[2*i+1] {
				yPred[i] = 1
			}
		}
		m := Confusion(yTrue, yPred)
		if m.Total() != len(yTrue) {
			return false
		}
		a := m.Accuracy()
		return a >= 0 && a <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestScalerStandardizes(t *testing.T) {
	X := [][]float64{{1, 10}, {2, 20}, {3, 30}, {4, 40}}
	var s StandardScaler
	Z, err := s.FitTransform(X)
	if err != nil {
		t.Fatal(err)
	}
	for j := 0; j < 2; j++ {
		var mean, v float64
		for _, r := range Z {
			mean += r[j]
		}
		mean /= float64(len(Z))
		for _, r := range Z {
			v += (r[j] - mean) * (r[j] - mean)
		}
		v /= float64(len(Z))
		if math.Abs(mean) > 1e-12 {
			t.Errorf("col %d mean = %v", j, mean)
		}
		if math.Abs(v-1) > 1e-12 {
			t.Errorf("col %d var = %v", j, v)
		}
	}
	// Original untouched.
	if X[0][0] != 1 {
		t.Error("Transform mutated input")
	}
}

func TestScalerConstantColumn(t *testing.T) {
	X := [][]float64{{5, 1}, {5, 2}, {5, 3}}
	var s StandardScaler
	Z, err := s.FitTransform(X)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range Z {
		if r[0] != 0 {
			t.Errorf("constant column transformed to %v, want 0", r[0])
		}
		if math.IsNaN(r[1]) {
			t.Error("NaN in scaled output")
		}
	}
}

func TestScalerTransformRow(t *testing.T) {
	X := [][]float64{{0}, {10}}
	var s StandardScaler
	if err := s.Fit(X); err != nil {
		t.Fatal(err)
	}
	got := s.TransformRow(nil, []float64{5})
	if math.Abs(got[0]) > 1e-12 {
		t.Errorf("midpoint should scale to 0, got %v", got[0])
	}
	buf := make([]float64, 1)
	got2 := s.TransformRow(buf, []float64{10})
	if &got2[0] != &buf[0] {
		t.Error("TransformRow ignored the provided buffer")
	}
}

func TestScalerEmptyError(t *testing.T) {
	var s StandardScaler
	if err := s.Fit(nil); err == nil {
		t.Error("empty fit accepted")
	}
}

// thresholdModel classifies by x[0] > 0, ignoring other features.
type thresholdModel struct{}

func (thresholdModel) Name() string                 { return "thr" }
func (thresholdModel) Fit([][]float64, []int) error { return nil }
func (thresholdModel) Predict(x []float64) int {
	if x[0] > 0 {
		return 1
	}
	return 0
}

func TestPermutationImportanceFindsSignalFeature(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var X [][]float64
	var y []int
	for i := 0; i < 400; i++ {
		lbl := i % 2
		x0 := -1.0
		if lbl == 1 {
			x0 = 1.0
		}
		X = append(X, []float64{x0, rng.NormFloat64()})
		y = append(y, lbl)
	}
	imps := PermutationImportance(thresholdModel{}, X, y, []string{"signal", "noise"}, 1)
	if len(imps) != 2 {
		t.Fatalf("importances = %d", len(imps))
	}
	if imps[0].Value <= imps[1].Value {
		t.Errorf("signal importance %v not above noise %v", imps[0].Value, imps[1].Value)
	}
	if imps[0].Value < 0.3 {
		t.Errorf("signal importance %v too small", imps[0].Value)
	}
	top := TopK(imps, 1)
	if top[0].Name != "signal" {
		t.Errorf("top feature = %q", top[0].Name)
	}
}

func TestTopKOrderingAndBounds(t *testing.T) {
	imps := []FeatureImportance{
		{Index: 0, Name: "a", Value: 0.1},
		{Index: 1, Name: "b", Value: 0.5},
		{Index: 2, Name: "c", Value: 0.3},
	}
	top := TopK(imps, 2)
	if top[0].Name != "b" || top[1].Name != "c" {
		t.Errorf("top2 = %v", top)
	}
	if got := TopK(imps, 10); len(got) != 3 {
		t.Errorf("overlong k returned %d", len(got))
	}
	// Original slice untouched.
	if imps[0].Name != "a" {
		t.Error("TopK mutated input")
	}
}

func TestPredictBatch(t *testing.T) {
	X := [][]float64{{1}, {-1}, {2}}
	got := PredictBatch(thresholdModel{}, X)
	want := []int{1, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("batch = %v", got)
		}
	}
}
