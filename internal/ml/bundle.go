package ml

import (
	"encoding"
	"fmt"
	"io"
	"os"
)

// BinaryModel is a classifier that round-trips through bytes, the
// contract behind the Prediction module's model loading (§III-4: "it
// uploads the pre-trained ML models and the coefficients of scaler
// transformation").
type BinaryModel interface {
	Classifier
	encoding.BinaryMarshaler
	encoding.BinaryUnmarshaler
}

// Bundle is a deployable model set: the ensemble members, the shared
// scaler, and the feature names the vectors were built from.
type Bundle struct {
	FeatureNames []string
	Scaler       *StandardScaler
	Models       []BinaryModel
}

const bundleMagic uint64 = 0x414D4C4D4F444C31 // "AMLMODL1"

// WriteTo serializes the bundle.
func (b *Bundle) WriteTo(w io.Writer) (int64, error) {
	enc := NewEncoder()
	enc.U64(bundleMagic)
	enc.U64(uint64(len(b.FeatureNames)))
	for _, n := range b.FeatureNames {
		enc.Str(n)
	}
	if b.Scaler == nil {
		return 0, fmt.Errorf("ml: bundle has no scaler")
	}
	enc.F64s(b.Scaler.Mean)
	enc.F64s(b.Scaler.Std)
	enc.U64(uint64(len(b.Models)))
	for _, m := range b.Models {
		blob, err := m.MarshalBinary()
		if err != nil {
			return 0, fmt.Errorf("ml: marshal %s: %w", m.Name(), err)
		}
		enc.Str(m.Name())
		enc.Blob(blob)
	}
	n, err := w.Write(enc.Bytes())
	return int64(n), err
}

// ModelFactory builds an empty model for a family name; used by
// ReadBundle to reconstruct models.
type ModelFactory func(name string) (BinaryModel, error)

// ReadBundleBytes parses a bundle from memory.
func ReadBundleBytes(buf []byte, factory ModelFactory) (*Bundle, error) {
	d := NewDecoder(buf)
	if d.U64() != bundleMagic {
		return nil, fmt.Errorf("ml: bad bundle magic")
	}
	b := &Bundle{Scaler: &StandardScaler{}}
	nNames := int(d.U64())
	if d.Err() != nil || nNames > 4096 {
		return nil, fmt.Errorf("ml: bad feature name count")
	}
	for i := 0; i < nNames; i++ {
		b.FeatureNames = append(b.FeatureNames, d.Str())
	}
	b.Scaler.Mean = d.F64s()
	b.Scaler.Std = d.F64s()
	nModels := int(d.U64())
	if d.Err() != nil || nModels > 256 {
		return nil, fmt.Errorf("ml: bad model count")
	}
	for i := 0; i < nModels; i++ {
		name := d.Str()
		blob := d.Blob()
		if d.Err() != nil {
			return nil, d.Err()
		}
		m, err := factory(name)
		if err != nil {
			return nil, fmt.Errorf("ml: model %q: %w", name, err)
		}
		if err := m.UnmarshalBinary(blob); err != nil {
			return nil, fmt.Errorf("ml: unmarshal %q: %w", name, err)
		}
		b.Models = append(b.Models, m)
	}
	if err := d.Err(); err != nil {
		return nil, err
	}
	return b, nil
}

// ReadBundle parses a bundle from a reader.
func ReadBundle(r io.Reader, factory ModelFactory) (*Bundle, error) {
	buf, err := io.ReadAll(r)
	if err != nil {
		return nil, err
	}
	return ReadBundleBytes(buf, factory)
}

// SaveBundle writes a bundle file.
func SaveBundle(path string, b *Bundle) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := b.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBundle reads a bundle file.
func LoadBundle(path string, factory ModelFactory) (*Bundle, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBundle(f, factory)
}

// Classifiers returns the models widened to the Classifier interface.
func (b *Bundle) Classifiers() []Classifier {
	out := make([]Classifier, len(b.Models))
	for i, m := range b.Models {
		out[i] = m
	}
	return out
}
