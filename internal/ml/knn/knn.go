// Package knn implements a K-Nearest-Neighbors classifier with
// Euclidean distance and majority vote. The paper keeps KNN
// tractable by training on a heavy subsample ("one thousandth of the
// whole sample"); the classifier itself is exact brute force, with
// batch prediction parallelized across cores.
package knn

import (
	"errors"
	"runtime"
	"sort"
	"sync"
)

// KNN is a K-nearest-neighbors classifier. The zero value is not
// usable; construct with New.
type KNN struct {
	// K is the neighborhood size (default 5).
	K int
	// Workers bounds PredictBatch parallelism; 0 selects GOMAXPROCS.
	Workers int

	X [][]float64
	y []int
}

// New returns a classifier with the given neighborhood size.
func New(k int) *KNN {
	if k <= 0 {
		k = 5
	}
	return &KNN{K: k}
}

// Name implements ml.Classifier.
func (k *KNN) Name() string { return "KNN" }

// Features returns the trained input width (0 before Fit), letting
// pipelines validate feature-vector shape before scoring.
func (k *KNN) Features() int {
	if len(k.X) == 0 {
		return 0
	}
	return len(k.X[0])
}

// Fit memorizes the training set.
func (k *KNN) Fit(X [][]float64, y []int) error {
	if len(X) == 0 {
		return errors.New("knn: empty training set")
	}
	if len(X) != len(y) {
		return errors.New("knn: rows and labels differ")
	}
	k.X = X
	k.y = y
	return nil
}

// sqDist returns squared Euclidean distance.
func sqDist(a, b []float64) float64 {
	var s float64
	for j := range a {
		d := a[j] - b[j]
		s += d * d
	}
	return s
}

// cand is one running top-K candidate: a squared distance with the
// training row's label. The candidate set is kept as a simple sorted
// insertion buffer (K is small), a bounded max-heap in effect.
type cand struct {
	d float64
	y int
}

// consider merges one candidate into the running top-kk buffer,
// preserving the original scan's insertion semantics exactly.
func consider(best []cand, kk int, d float64, y int) []cand {
	if len(best) < kk {
		best = append(best, cand{d, y})
		if len(best) == kk {
			sort.Slice(best, func(a, b int) bool { return best[a].d < best[b].d })
		}
		return best
	}
	if d >= best[kk-1].d {
		return best
	}
	pos := sort.Search(kk, func(j int) bool { return best[j].d > d })
	copy(best[pos+1:], best[pos:kk-1])
	best[pos] = cand{d, y}
	return best
}

// vote reduces a candidate buffer to its majority label.
func vote(best []cand) int {
	votes := 0
	for _, c := range best {
		votes += c.y
	}
	if 2*votes > len(best) {
		return 1
	}
	return 0
}

// kk caps the neighborhood at the training-set size.
func (k *KNN) kk() int {
	if k.K > len(k.X) {
		return len(k.X)
	}
	return k.K
}

// predictInto scans the training set for one query, reusing the
// caller's candidate buffer.
func (k *KNN) predictInto(x []float64, best []cand) int {
	kk := k.kk()
	best = best[:0]
	for i, row := range k.X {
		best = consider(best, kk, sqDist(x, row), k.y[i])
	}
	return vote(best)
}

// Predict implements ml.Classifier: majority vote among the K
// nearest training rows.
func (k *KNN) Predict(x []float64) int {
	return k.predictInto(x, make([]cand, 0, k.kk()))
}

// predictBlock4 scans the training set once for four queries: each
// training row is loaded from memory one time and its distance to all
// four queries accumulates in independent chains, which is what makes
// the batch path faster than four sequential scans. Per-query
// distance accumulation order matches sqDist exactly, so results are
// identical to Predict.
func (k *KNN) predictBlock4(x0, x1, x2, x3 []float64, b0, b1, b2, b3 []cand, out []int) {
	kk := k.kk()
	b0, b1, b2, b3 = b0[:0], b1[:0], b2[:0], b3[:0]
	for i, row := range k.X {
		var s0, s1, s2, s3 float64
		for j, v := range row {
			d0 := x0[j] - v
			s0 += d0 * d0
			d1 := x1[j] - v
			s1 += d1 * d1
			d2 := x2[j] - v
			s2 += d2 * d2
			d3 := x3[j] - v
			s3 += d3 * d3
		}
		y := k.y[i]
		b0 = consider(b0, kk, s0, y)
		b1 = consider(b1, kk, s1, y)
		b2 = consider(b2, kk, s2, y)
		b3 = consider(b3, kk, s3, y)
	}
	out[0] = vote(b0)
	out[1] = vote(b1)
	out[2] = vote(b2)
	out[3] = vote(b3)
}

// PredictBatch implements ml.BatchClassifier: queries are spread over
// a bounded worker pool, and each worker walks the training set in
// four-query blocks with reused candidate buffers.
func (k *KNN) PredictBatch(X [][]float64) []int {
	out := make([]int, len(X))
	workers := k.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var wg sync.WaitGroup
	chunk := (len(X) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(X) {
			break
		}
		hi := lo + chunk
		if hi > len(X) {
			hi = len(X)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			kk := k.kk()
			b0 := make([]cand, 0, kk)
			b1 := make([]cand, 0, kk)
			b2 := make([]cand, 0, kk)
			b3 := make([]cand, 0, kk)
			i := lo
			for ; i+4 <= hi; i += 4 {
				k.predictBlock4(X[i], X[i+1], X[i+2], X[i+3], b0, b1, b2, b3, out[i:i+4])
			}
			for ; i < hi; i++ {
				out[i] = k.predictInto(X[i], b0)
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}
