// Package knn implements a K-Nearest-Neighbors classifier with
// Euclidean distance and majority vote. The paper keeps KNN
// tractable by training on a heavy subsample ("one thousandth of the
// whole sample"); the classifier itself is exact brute force, with
// batch prediction parallelized across cores.
package knn

import (
	"errors"
	"runtime"
	"sort"
	"sync"
)

// KNN is a K-nearest-neighbors classifier. The zero value is not
// usable; construct with New.
type KNN struct {
	// K is the neighborhood size (default 5).
	K int
	// Workers bounds PredictBatch parallelism; 0 selects GOMAXPROCS.
	Workers int

	X [][]float64
	y []int
}

// New returns a classifier with the given neighborhood size.
func New(k int) *KNN {
	if k <= 0 {
		k = 5
	}
	return &KNN{K: k}
}

// Name implements ml.Classifier.
func (k *KNN) Name() string { return "KNN" }

// Fit memorizes the training set.
func (k *KNN) Fit(X [][]float64, y []int) error {
	if len(X) == 0 {
		return errors.New("knn: empty training set")
	}
	if len(X) != len(y) {
		return errors.New("knn: rows and labels differ")
	}
	k.X = X
	k.y = y
	return nil
}

// sqDist returns squared Euclidean distance.
func sqDist(a, b []float64) float64 {
	var s float64
	for j := range a {
		d := a[j] - b[j]
		s += d * d
	}
	return s
}

// Predict implements ml.Classifier: majority vote among the K
// nearest training rows.
func (k *KNN) Predict(x []float64) int {
	kk := k.K
	if kk > len(k.X) {
		kk = len(k.X)
	}
	// Bounded max-heap over the kk best distances, kept as a simple
	// sorted insertion buffer (kk is small).
	type cand struct {
		d float64
		y int
	}
	best := make([]cand, 0, kk)
	for i, row := range k.X {
		d := sqDist(x, row)
		if len(best) < kk {
			best = append(best, cand{d, k.y[i]})
			if len(best) == kk {
				sort.Slice(best, func(a, b int) bool { return best[a].d < best[b].d })
			}
			continue
		}
		if d >= best[kk-1].d {
			continue
		}
		pos := sort.Search(kk, func(j int) bool { return best[j].d > d })
		copy(best[pos+1:], best[pos:kk-1])
		best[pos] = cand{d, k.y[i]}
	}
	votes := 0
	for _, c := range best {
		votes += c.y
	}
	if 2*votes > len(best) {
		return 1
	}
	return 0
}

// PredictBatch labels rows concurrently.
func (k *KNN) PredictBatch(X [][]float64) []int {
	out := make([]int, len(X))
	workers := k.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var wg sync.WaitGroup
	chunk := (len(X) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		if lo >= len(X) {
			break
		}
		hi := lo + chunk
		if hi > len(X) {
			hi = len(X)
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = k.Predict(X[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}
