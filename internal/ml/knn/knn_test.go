package knn

import (
	"math/rand"
	"testing"

	"github.com/amlight/intddos/internal/ml"
)

func blobs(n int, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	X := make([][]float64, n)
	y := make([]int, n)
	for i := range X {
		y[i] = i % 2
		X[i] = []float64{rng.NormFloat64() + float64(y[i])*6, rng.NormFloat64()}
	}
	return X, y
}

func TestKNNExactNeighbors(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}, {10}, {11}, {12}}
	y := []int{0, 0, 0, 1, 1, 1}
	k := New(3)
	if err := k.Fit(X, y); err != nil {
		t.Fatal(err)
	}
	if k.Predict([]float64{1.2}) != 0 {
		t.Error("point near cluster 0 misclassified")
	}
	if k.Predict([]float64{10.7}) != 1 {
		t.Error("point near cluster 1 misclassified")
	}
	// Decision flips across the midpoint.
	if k.Predict([]float64{5.9}) != k.Predict([]float64{2}) {
		t.Error("point left of midpoint should vote with cluster 0")
	}
}

func TestKNNK1MemorizesTraining(t *testing.T) {
	X, y := blobs(200, 1)
	k := New(1)
	k.Fit(X, y)
	for i, x := range X {
		if k.Predict(x) != y[i] {
			t.Fatalf("1-NN failed to memorize row %d", i)
		}
	}
}

func TestKNNSeparatesBlobs(t *testing.T) {
	X, y := blobs(500, 2)
	k := New(5)
	k.Fit(X, y)
	Xt, yt := blobs(200, 3)
	m := ml.Confusion(yt, k.PredictBatch(Xt))
	if m.Accuracy() < 0.98 {
		t.Errorf("accuracy = %v", m.Accuracy())
	}
}

func TestKNNBatchMatchesSingle(t *testing.T) {
	X, y := blobs(300, 4)
	k := New(7)
	k.Fit(X, y)
	Xt, _ := blobs(100, 5)
	batch := k.PredictBatch(Xt)
	for i, x := range Xt {
		if batch[i] != k.Predict(x) {
			t.Fatalf("batch and single disagree at %d", i)
		}
	}
}

func TestKNNKLargerThanTrainingSet(t *testing.T) {
	X := [][]float64{{0}, {10}, {11}}
	y := []int{0, 1, 1}
	k := New(50)
	k.Fit(X, y)
	if k.Predict([]float64{100}) != 1 {
		t.Error("majority of entire set should win when K exceeds n")
	}
}

func TestKNNErrors(t *testing.T) {
	k := New(3)
	if err := k.Fit(nil, nil); err == nil {
		t.Error("empty fit accepted")
	}
	if err := k.Fit([][]float64{{1}}, []int{0, 1}); err == nil {
		t.Error("mismatched fit accepted")
	}
}

func TestKNNDefaultK(t *testing.T) {
	if New(0).K != 5 {
		t.Error("default K should be 5")
	}
	if New(3).Name() != "KNN" {
		t.Error("name")
	}
}

func TestKNNTieGoesToBenign(t *testing.T) {
	// Even K with a 1-1 split: strict majority required for attack.
	X := [][]float64{{0}, {10}}
	y := []int{0, 1}
	k := New(2)
	k.Fit(X, y)
	if k.Predict([]float64{5}) != 0 {
		t.Error("tie should resolve to benign")
	}
}

func TestKNNSerializeRoundTrip(t *testing.T) {
	X, y := blobs(200, 21)
	k := New(7)
	k.Fit(X, y)
	blob, err := k.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	k2 := New(0)
	if err := k2.UnmarshalBinary(blob); err != nil {
		t.Fatal(err)
	}
	if k2.K != 7 {
		t.Errorf("K = %d after round trip", k2.K)
	}
	Xt, _ := blobs(80, 22)
	for i, x := range Xt {
		if k.Predict(x) != k2.Predict(x) {
			t.Fatalf("prediction differs at %d", i)
		}
	}
}

func TestKNNUnmarshalRejectsCorruption(t *testing.T) {
	X, y := blobs(50, 23)
	k := New(3)
	k.Fit(X, y)
	blob, _ := k.MarshalBinary()
	if err := New(0).UnmarshalBinary(blob[:16]); err == nil {
		t.Error("truncated blob accepted")
	}
	if _, err := New(3).MarshalBinary(); err == nil {
		t.Error("untrained marshal accepted")
	}
}
