package knn

import (
	"fmt"

	"github.com/amlight/intddos/internal/ml"
)

const knnMagic uint64 = 0x4B4E4E4D4F444C31 // "KNNMODL1"

// MarshalBinary serializes the memorized training set.
func (k *KNN) MarshalBinary() ([]byte, error) {
	if len(k.X) == 0 {
		return nil, fmt.Errorf("knn: marshal of untrained model")
	}
	e := ml.NewEncoder()
	e.U64(knnMagic)
	e.I64(int64(k.K))
	e.I64(int64(len(k.X)))
	e.I64(int64(len(k.X[0])))
	for _, row := range k.X {
		for _, v := range row {
			e.F64(v)
		}
	}
	e.Ints(k.y)
	return e.Bytes(), nil
}

// UnmarshalBinary restores a model serialized by MarshalBinary.
func (k *KNN) UnmarshalBinary(buf []byte) error {
	d := ml.NewDecoder(buf)
	if d.U64() != knnMagic {
		return fmt.Errorf("knn: bad magic")
	}
	k.K = int(d.I64())
	rows := int(d.I64())
	cols := int(d.I64())
	if d.Err() != nil || rows <= 0 || cols <= 0 || rows > 1<<24 || cols > 1<<12 {
		return fmt.Errorf("knn: implausible dimensions %dx%d", rows, cols)
	}
	k.X = make([][]float64, rows)
	flat := make([]float64, rows*cols)
	for i := range flat {
		flat[i] = d.F64()
	}
	for i := range k.X {
		k.X[i] = flat[i*cols : (i+1)*cols]
	}
	k.y = d.Ints()
	if err := d.Err(); err != nil {
		return err
	}
	if len(k.y) != rows {
		return fmt.Errorf("knn: %d labels for %d rows", len(k.y), rows)
	}
	if k.K <= 0 {
		return fmt.Errorf("knn: bad K %d", k.K)
	}
	return nil
}
