// Package testbed assembles the paper's Figure 6 topology on the
// simulator: a source agent and a target agent joined by one
// INT-capable switch, with the data path looped out port 3 and back
// in port 4 so every packet transits the switch twice (one source
// hop, one sink hop), and the INT collector hanging off port 5.
// An sFlow agent can be enabled on the same switch for the
// comparative experiments.
package testbed

import (
	"net/netip"

	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/sflow"
	"github.com/amlight/intddos/internal/telemetry"
	"github.com/amlight/intddos/internal/trace"
)

// Well-known testbed addresses.
var (
	SourceAddr    = netip.AddrFrom4([4]byte{10, 0, 0, 1})
	TargetAddr    = netip.AddrFrom4([4]byte{10, 0, 0, 2})
	CollectorAddr = netip.AddrFrom4([4]byte{10, 0, 0, 5})
)

// Config parameterizes the rig.
type Config struct {
	// Switch overrides the switch parameters; zero value selects
	// netsim.DefaultSwitchConfig.
	Switch netsim.SwitchConfig
	// LinkDelay is the propagation delay of every cable (default 1 µs).
	LinkDelay netsim.Time

	// INTSampler selects packets for INT instrumentation; nil =
	// every packet (the deployment default).
	INTSampler telemetry.Sampler
	// INTMode selects embed (INT-MD, default) or postcard (INT-XD)
	// telemetry export.
	INTMode telemetry.Mode

	// EnableSFlow attaches an sFlow agent alongside INT.
	EnableSFlow bool
	// SFlowRate is the 1-in-N sampling rate (default 4096).
	SFlowRate int
	// SFlowDeterministic switches the agent to exact every-Nth
	// sampling.
	SFlowDeterministic bool
	// Seed drives the sFlow randomized countdown.
	Seed int64
}

// Testbed is the assembled rig.
type Testbed struct {
	Eng    *netsim.Engine
	Source *netsim.Host
	Target *netsim.Host
	Switch *netsim.Switch

	INTAgent  *telemetry.Agent
	Collector *telemetry.Collector

	SFlowAgent     *sflow.Agent
	SFlowCollector *sflow.Collector

	collectorHost *netsim.Host
}

// New assembles the topology.
func New(cfg Config) *Testbed {
	eng := netsim.NewEngine()
	if cfg.Switch.Ports == 0 {
		cfg.Switch = netsim.DefaultSwitchConfig(1)
	}
	if cfg.LinkDelay <= 0 {
		cfg.LinkDelay = netsim.Microsecond
	}
	if cfg.SFlowRate <= 0 {
		cfg.SFlowRate = sflow.DefaultSampleRate
	}

	tb := &Testbed{Eng: eng}
	tb.Source = netsim.NewHost(eng, "source", SourceAddr)
	tb.Target = netsim.NewHost(eng, "target", TargetAddr)
	tb.collectorHost = netsim.NewHost(eng, "collector", CollectorAddr)
	tb.Switch = netsim.NewSwitch(eng, cfg.Switch)

	// Data path 1 → 3 ⇒(loop)⇒ 4 → 2: two transits per packet.
	fwd := netsim.NewStaticForwarder()
	fwd.ByIngress[1] = 3
	fwd.ByIngress[4] = 2
	tb.Switch.Forwarder = fwd

	tb.Source.Attach(cfg.LinkDelay, tb.Switch.Port(1))
	tb.Switch.Connect(3, cfg.LinkDelay, tb.Switch.Port(4))
	tb.Switch.Connect(2, cfg.LinkDelay, tb.Target)
	tb.Switch.Connect(5, cfg.LinkDelay, tb.collectorHost)

	tb.Collector = telemetry.NewCollector(eng)
	tb.collectorHost.OnReceive = tb.Collector.Receive

	tb.INTAgent = telemetry.NewAgent(eng, tb.Switch, telemetry.AgentConfig{
		Mode:          cfg.INTMode,
		SourcePorts:   []uint16{3},
		SinkPorts:     []uint16{2},
		CollectorAddr: CollectorAddr,
		ReportWire:    netsim.NewLink(eng, cfg.LinkDelay, tb.collectorHost),
		Sampler:       cfg.INTSampler,
		DomainID:      1,
	})

	if cfg.EnableSFlow {
		tb.SFlowCollector = sflow.NewCollector(eng)
		sfHost := netsim.NewHost(eng, "sflow-collector", netip.AddrFrom4([4]byte{10, 0, 0, 6}))
		sfHost.OnReceive = tb.SFlowCollector.Receive
		tb.SFlowAgent = sflow.NewAgent(eng, tb.Switch, sflow.AgentConfig{
			SampleRate:    cfg.SFlowRate,
			Deterministic: cfg.SFlowDeterministic,
			Seed:          cfg.Seed,
			// Observe only the target-facing interface so each packet
			// is counted once against the sampling rate, as on a
			// production monitored link.
			Ports:         []uint16{2},
			CollectorAddr: sfHost.Addr,
			Wire:          netsim.NewLink(eng, cfg.LinkDelay, sfHost),
		})
	}
	return tb
}

// Replayer builds a tcpreplay-equivalent replayer injecting recs from
// the source agent.
func (tb *Testbed) Replayer(recs []trace.Record) *trace.Replayer {
	return trace.NewReplayer(tb.Eng, tb.Source, recs)
}

// Run drains the event queue.
func (tb *Testbed) Run() { tb.Eng.Run() }

// RunUntil advances to the deadline.
func (tb *Testbed) RunUntil(t netsim.Time) { tb.Eng.RunUntil(t) }
