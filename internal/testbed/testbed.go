// Package testbed assembles the paper's Figure 6 topology on the
// simulator: a source agent and a target agent joined by one
// INT-capable switch, with the data path looped out port 3 and back
// in port 4 so every packet transits the switch twice (one source
// hop, one sink hop), and the INT collector hanging off port 5.
// An sFlow agent can be enabled on the same switch for the
// comparative experiments.
package testbed

import (
	"net/netip"
	"sort"

	"github.com/amlight/intddos/internal/fault"
	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/sflow"
	"github.com/amlight/intddos/internal/telemetry"
	"github.com/amlight/intddos/internal/trace"
)

// Well-known testbed addresses.
var (
	SourceAddr    = netip.AddrFrom4([4]byte{10, 0, 0, 1})
	TargetAddr    = netip.AddrFrom4([4]byte{10, 0, 0, 2})
	CollectorAddr = netip.AddrFrom4([4]byte{10, 0, 0, 5})
)

// Config parameterizes the rig.
type Config struct {
	// Switch overrides the switch parameters; zero value selects
	// netsim.DefaultSwitchConfig.
	Switch netsim.SwitchConfig
	// LinkDelay is the propagation delay of every cable (default 1 µs).
	LinkDelay netsim.Time

	// INTSampler selects packets for INT instrumentation; nil =
	// every packet (the deployment default).
	INTSampler telemetry.Sampler
	// INTMode selects embed (INT-MD, default) or postcard (INT-XD)
	// telemetry export.
	INTMode telemetry.Mode

	// EnableSFlow attaches an sFlow agent alongside INT.
	EnableSFlow bool
	// SFlowRate is the 1-in-N sampling rate (default 4096).
	SFlowRate int
	// SFlowDeterministic switches the agent to exact every-Nth
	// sampling.
	SFlowDeterministic bool
	// Seed drives the sFlow randomized countdown.
	Seed int64

	// Netem applies netem-style impairment (delay/jitter, loss, dup,
	// reorder, rate caps) to the rig's named links — see LinkNames for
	// the names; "*" matches every link. Nil or all-zero leaves every
	// link on the exact unimpaired fast path.
	Netem fault.NetemSpec
	// NetemSeed drives each impaired link's RNG (links are salted by
	// name, so two impaired links never share a stream).
	NetemSeed int64
}

// Names of the rig's impairable links, as the netem grammar addresses
// them.
const (
	LinkSourceSwitch    = "source->switch"    // source host uplink
	LinkSwitchLoop      = "switch->loop"      // port 3 → port 4 loopback cable
	LinkSwitchTarget    = "switch->target"    // port 2 egress
	LinkSwitchCollector = "switch->collector" // port 5 egress (embed-mode reports)
	LinkAgentCollector  = "agent->collector"  // INT sink's report wire
	LinkSFlowCollector  = "sflow->collector"  // sFlow agent's export wire
)

// Testbed is the assembled rig.
type Testbed struct {
	Eng    *netsim.Engine
	Source *netsim.Host
	Target *netsim.Host
	Switch *netsim.Switch

	INTAgent  *telemetry.Agent
	Collector *telemetry.Collector

	SFlowAgent     *sflow.Agent
	SFlowCollector *sflow.Collector

	collectorHost *netsim.Host
	links         map[string]*netsim.Link
}

// Link returns a named link of the rig (nil for unknown names or an
// sFlow link on a rig without sFlow).
func (tb *Testbed) Link(name string) *netsim.Link { return tb.links[name] }

// LinkNames lists the rig's impairable links in stable order.
func (tb *Testbed) LinkNames() []string {
	names := make([]string, 0, len(tb.links))
	for name := range tb.links {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// ImpairedStats returns per-link impairment ledgers for every link
// that has an impairment attached.
func (tb *Testbed) ImpairedStats() map[string]netsim.ImpairStats {
	out := map[string]netsim.ImpairStats{}
	for name, l := range tb.links {
		if l.Impaired() {
			out[name] = *l.ImpairStats()
		}
	}
	return out
}

// linkSeed salts the rig seed by link name (FNV-1a) so each impaired
// link draws from its own deterministic stream.
func linkSeed(seed int64, name string) int64 {
	sum := uint64(14695981039346656037)
	for _, b := range []byte(name) {
		sum = (sum ^ uint64(b)) * 1099511628211
	}
	return seed ^ int64(sum)
}

// toImpairment converts the grammar's units into the simulator's.
func toImpairment(li fault.LinkImpairment, seed int64) netsim.Impairment {
	return netsim.Impairment{
		Delay:    netsim.Time(li.Delay.Nanoseconds()),
		Jitter:   netsim.Time(li.Jitter.Nanoseconds()),
		ReorderP: li.Reorder,
		Loss:     li.Loss,
		Dup:      li.Dup,
		RateBps:  li.RateBps,
		Limit:    li.Limit,
		Seed:     seed,
	}
}

// New assembles the topology.
func New(cfg Config) *Testbed {
	eng := netsim.NewEngine()
	if cfg.Switch.Ports == 0 {
		cfg.Switch = netsim.DefaultSwitchConfig(1)
	}
	if cfg.LinkDelay <= 0 {
		cfg.LinkDelay = netsim.Microsecond
	}
	if cfg.SFlowRate <= 0 {
		cfg.SFlowRate = sflow.DefaultSampleRate
	}

	tb := &Testbed{Eng: eng}
	tb.Source = netsim.NewHost(eng, "source", SourceAddr)
	tb.Target = netsim.NewHost(eng, "target", TargetAddr)
	tb.collectorHost = netsim.NewHost(eng, "collector", CollectorAddr)
	tb.Switch = netsim.NewSwitch(eng, cfg.Switch)

	// Data path 1 → 3 ⇒(loop)⇒ 4 → 2: two transits per packet.
	fwd := netsim.NewStaticForwarder()
	fwd.ByIngress[1] = 3
	fwd.ByIngress[4] = 2
	tb.Switch.Forwarder = fwd

	tb.Source.Attach(cfg.LinkDelay, tb.Switch.Port(1))
	tb.Switch.Connect(3, cfg.LinkDelay, tb.Switch.Port(4))
	tb.Switch.Connect(2, cfg.LinkDelay, tb.Target)
	tb.Switch.Connect(5, cfg.LinkDelay, tb.collectorHost)

	tb.Collector = telemetry.NewCollector(eng)
	tb.collectorHost.OnReceive = tb.Collector.Receive

	reportWire := netsim.NewLink(eng, cfg.LinkDelay, tb.collectorHost)
	tb.INTAgent = telemetry.NewAgent(eng, tb.Switch, telemetry.AgentConfig{
		Mode:          cfg.INTMode,
		SourcePorts:   []uint16{3},
		SinkPorts:     []uint16{2},
		CollectorAddr: CollectorAddr,
		ReportWire:    reportWire,
		Sampler:       cfg.INTSampler,
		DomainID:      1,
	})
	tb.links = map[string]*netsim.Link{
		LinkSourceSwitch:    tb.Source.Uplink,
		LinkSwitchLoop:      tb.Switch.Wire(3),
		LinkSwitchTarget:    tb.Switch.Wire(2),
		LinkSwitchCollector: tb.Switch.Wire(5),
		LinkAgentCollector:  reportWire,
	}

	if cfg.EnableSFlow {
		tb.SFlowCollector = sflow.NewCollector(eng)
		sfHost := netsim.NewHost(eng, "sflow-collector", netip.AddrFrom4([4]byte{10, 0, 0, 6}))
		sfHost.OnReceive = tb.SFlowCollector.Receive
		sfWire := netsim.NewLink(eng, cfg.LinkDelay, sfHost)
		tb.SFlowAgent = sflow.NewAgent(eng, tb.Switch, sflow.AgentConfig{
			SampleRate:    cfg.SFlowRate,
			Deterministic: cfg.SFlowDeterministic,
			Seed:          cfg.Seed,
			// Observe only the target-facing interface so each packet
			// is counted once against the sampling rate, as on a
			// production monitored link.
			Ports:         []uint16{2},
			CollectorAddr: sfHost.Addr,
			Wire:          sfWire,
		})
		tb.links[LinkSFlowCollector] = sfWire
	}
	// Attach impairments last, so every named link exists. An absent
	// or all-zero spec never touches a link: Send stays on the exact
	// legacy path and results are byte-identical to an unimpaired rig.
	for name, l := range tb.links {
		if li, ok := cfg.Netem.For(name); ok && !li.Zero() {
			l.SetImpairment(toImpairment(li, linkSeed(cfg.NetemSeed, name)))
		}
	}
	return tb
}

// Replayer builds a tcpreplay-equivalent replayer injecting recs from
// the source agent.
func (tb *Testbed) Replayer(recs []trace.Record) *trace.Replayer {
	return trace.NewReplayer(tb.Eng, tb.Source, recs)
}

// Run drains the event queue.
func (tb *Testbed) Run() { tb.Eng.Run() }

// RunUntil advances to the deadline.
func (tb *Testbed) RunUntil(t netsim.Time) { tb.Eng.RunUntil(t) }
