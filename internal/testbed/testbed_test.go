package testbed

import (
	"testing"

	"github.com/amlight/intddos/internal/fault"
	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/sflow"
	"github.com/amlight/intddos/internal/telemetry"
	"github.com/amlight/intddos/internal/trace"
	"github.com/amlight/intddos/internal/traffic"
)

func TestTopologyDoubleTransit(t *testing.T) {
	tb := New(Config{})
	var hops int
	tb.Collector.OnReport = func(r *telemetry.Report, _ netsim.Time) { hops = len(r.Hops) }
	tb.Source.Send(&netsim.Packet{Dst: TargetAddr, Proto: netsim.TCP, Length: 500})
	tb.Run()
	if tb.Target.Received != 1 {
		t.Fatalf("target received %d", tb.Target.Received)
	}
	if hops != 2 {
		t.Errorf("hops = %d, want 2 (port 3↔4 loop)", hops)
	}
}

func TestReplayThroughTestbed(t *testing.T) {
	tb := New(Config{})
	reports := 0
	tb.Collector.OnReport = func(*telemetry.Report, netsim.Time) { reports++ }
	w := traffic.Build(traffic.TinyConfig(1))
	recs := w.Records[:500]
	rp := tb.Replayer(recs)
	rp.Start()
	tb.Run()
	if rp.Sent() != 500 {
		t.Fatalf("replayed %d", rp.Sent())
	}
	if tb.Target.Received == 0 {
		t.Fatal("nothing delivered")
	}
	// Every delivered packet produces exactly one INT report.
	if reports != tb.Target.Received {
		t.Errorf("reports %d != delivered %d", reports, tb.Target.Received)
	}
}

func TestReplayerMaxPacketsMatchesPaperUsage(t *testing.T) {
	// The paper replays ≈2500 packets per flow type with tcpreplay -p.
	tb := New(Config{})
	w := traffic.Build(traffic.TinyConfig(2))
	rp := tb.Replayer(w.Records)
	rp.MaxPackets = 100
	rp.Start()
	tb.Run()
	if rp.Sent() != 100 {
		t.Errorf("sent %d, want 100", rp.Sent())
	}
}

func TestSFlowCoexistsWithINT(t *testing.T) {
	tb := New(Config{EnableSFlow: true, SFlowRate: 10, SFlowDeterministic: true})
	intReports, sfSamples := 0, 0
	tb.Collector.OnReport = func(*telemetry.Report, netsim.Time) { intReports++ }
	tb.SFlowCollector.OnFlowSample = func(*sflow.FlowSample, netsim.Time) { sfSamples++ }
	var recs []trace.Record
	w := traffic.Build(traffic.TinyConfig(3))
	recs = w.Records[:400]
	rp := tb.Replayer(recs)
	rp.Start()
	tb.Run()
	if intReports == 0 {
		t.Error("INT produced no reports alongside sFlow")
	}
	if tb.SFlowAgent.Sampled == 0 {
		t.Error("sFlow sampled nothing at 1/10 over 400 packets")
	}
	// The agent watches only the target-facing port, so each packet
	// counts once; exact every-10th sampling.
	if got, want := tb.SFlowAgent.Sampled, tb.SFlowAgent.Observed/10; got != want {
		t.Errorf("sampled %d, want %d", got, want)
	}
	if sfSamples != tb.SFlowAgent.Sampled {
		t.Errorf("collector samples %d != agent %d", sfSamples, tb.SFlowAgent.Sampled)
	}
}

func TestNetemImpairsNamedLink(t *testing.T) {
	spec, err := fault.ParseNetem("netem[link=agent->collector]:loss=40%")
	if err != nil {
		t.Fatal(err)
	}
	tb := New(Config{Netem: spec, NetemSeed: 11})
	reports := 0
	tb.Collector.OnReport = func(*telemetry.Report, netsim.Time) { reports++ }
	w := traffic.Build(traffic.TinyConfig(3))
	rp := tb.Replayer(w.Records[:800])
	rp.Start()
	tb.Run()

	if !tb.Link(LinkAgentCollector).Impaired() {
		t.Fatal("agent->collector not impaired")
	}
	if tb.Link(LinkSourceSwitch).Impaired() {
		t.Error("source->switch impaired by a spec naming only agent->collector")
	}
	stats := tb.ImpairedStats()[LinkAgentCollector]
	if !stats.Closed() {
		t.Errorf("impairment ledger open: %+v", stats)
	}
	if stats.Lost == 0 {
		t.Errorf("no loss at 40%%: %+v", stats)
	}
	if reports != stats.Delivered {
		t.Errorf("collector saw %d reports, link delivered %d", reports, stats.Delivered)
	}
	// The data path is untouched: every replayed packet still arrives.
	if tb.Target.Received != rp.Sent() {
		t.Errorf("target received %d of %d", tb.Target.Received, rp.Sent())
	}
}

func TestNetemUnsetLeavesLinksInert(t *testing.T) {
	for _, cfg := range []Config{{}, {Netem: fault.NetemSpec{}}} {
		tb := New(cfg)
		for _, name := range tb.LinkNames() {
			if tb.Link(name).Impaired() {
				t.Errorf("link %s impaired with empty netem spec", name)
			}
		}
	}
}
