package testbed

import (
	"testing"

	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/sflow"
	"github.com/amlight/intddos/internal/telemetry"
	"github.com/amlight/intddos/internal/trace"
	"github.com/amlight/intddos/internal/traffic"
)

func TestTopologyDoubleTransit(t *testing.T) {
	tb := New(Config{})
	var hops int
	tb.Collector.OnReport = func(r *telemetry.Report, _ netsim.Time) { hops = len(r.Hops) }
	tb.Source.Send(&netsim.Packet{Dst: TargetAddr, Proto: netsim.TCP, Length: 500})
	tb.Run()
	if tb.Target.Received != 1 {
		t.Fatalf("target received %d", tb.Target.Received)
	}
	if hops != 2 {
		t.Errorf("hops = %d, want 2 (port 3↔4 loop)", hops)
	}
}

func TestReplayThroughTestbed(t *testing.T) {
	tb := New(Config{})
	reports := 0
	tb.Collector.OnReport = func(*telemetry.Report, netsim.Time) { reports++ }
	w := traffic.Build(traffic.TinyConfig(1))
	recs := w.Records[:500]
	rp := tb.Replayer(recs)
	rp.Start()
	tb.Run()
	if rp.Sent() != 500 {
		t.Fatalf("replayed %d", rp.Sent())
	}
	if tb.Target.Received == 0 {
		t.Fatal("nothing delivered")
	}
	// Every delivered packet produces exactly one INT report.
	if reports != tb.Target.Received {
		t.Errorf("reports %d != delivered %d", reports, tb.Target.Received)
	}
}

func TestReplayerMaxPacketsMatchesPaperUsage(t *testing.T) {
	// The paper replays ≈2500 packets per flow type with tcpreplay -p.
	tb := New(Config{})
	w := traffic.Build(traffic.TinyConfig(2))
	rp := tb.Replayer(w.Records)
	rp.MaxPackets = 100
	rp.Start()
	tb.Run()
	if rp.Sent() != 100 {
		t.Errorf("sent %d, want 100", rp.Sent())
	}
}

func TestSFlowCoexistsWithINT(t *testing.T) {
	tb := New(Config{EnableSFlow: true, SFlowRate: 10, SFlowDeterministic: true})
	intReports, sfSamples := 0, 0
	tb.Collector.OnReport = func(*telemetry.Report, netsim.Time) { intReports++ }
	tb.SFlowCollector.OnFlowSample = func(*sflow.FlowSample, netsim.Time) { sfSamples++ }
	var recs []trace.Record
	w := traffic.Build(traffic.TinyConfig(3))
	recs = w.Records[:400]
	rp := tb.Replayer(recs)
	rp.Start()
	tb.Run()
	if intReports == 0 {
		t.Error("INT produced no reports alongside sFlow")
	}
	if tb.SFlowAgent.Sampled == 0 {
		t.Error("sFlow sampled nothing at 1/10 over 400 packets")
	}
	// The agent watches only the target-facing port, so each packet
	// counts once; exact every-10th sampling.
	if got, want := tb.SFlowAgent.Sampled, tb.SFlowAgent.Observed/10; got != want {
		t.Errorf("sampled %d, want %d", got, want)
	}
	if sfSamples != tb.SFlowAgent.Sampled {
		t.Errorf("collector samples %d != agent %d", sfSamples, tb.SFlowAgent.Sampled)
	}
}
