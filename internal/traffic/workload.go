package traffic

import (
	"net/netip"

	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/trace"
)

// ServerAddr is the production web server of the monitored subnet.
var ServerAddr = netip.AddrFrom4([4]byte{10, 10, 1, 100})

// Config assembles a full capture: benign background across the
// June 6–11 window plus the Table I attack episodes.
type Config struct {
	Seed int64
	// Days is the number of compressed capture days (the paper's
	// window is 6: June 6–11).
	Days int
	// DayLen is the compressed length of one capture day.
	DayLen netsim.Time
	// MinEpisode floors attack episode lengths after compression.
	MinEpisode netsim.Time

	Benign BenignConfig
	Attack AttackConfig
}

// Preset names for the three workload scales.
const (
	ScaleTiny  = "tiny"
	ScaleSmall = "small"
	ScaleFull  = "full"
)

// TinyConfig is sized for unit tests: a few thousand packets.
func TinyConfig(seed int64) Config {
	cfg := Config{
		Seed:       seed,
		Days:       6,
		DayLen:     300 * netsim.Millisecond,
		MinEpisode: 8 * netsim.Millisecond,
		Benign:     DefaultBenignConfig(ServerAddr),
		Attack:     DefaultAttackConfig(ServerAddr),
	}
	cfg.Benign.SessionsPerDay = 60
	cfg.Attack.ScanRate = 60000
	cfg.Attack.FloodRate = 200000
	cfg.Attack.LorisConns = 8
	cfg.Attack.LorisKeepalive = 2 * netsim.Millisecond
	return cfg
}

// SmallConfig is the default experiment scale: on the order of 10^5
// packets, enough for every table while keeping a full reproduction
// run in seconds.
func SmallConfig(seed int64) Config {
	cfg := Config{
		Seed:       seed,
		Days:       6,
		DayLen:     1500 * netsim.Millisecond,
		MinEpisode: 60 * netsim.Millisecond,
		Benign:     DefaultBenignConfig(ServerAddr),
		Attack:     DefaultAttackConfig(ServerAddr),
	}
	cfg.Benign.SessionsPerDay = 900
	cfg.Attack.ScanRate = 60000
	cfg.Attack.FloodRate = 120000
	cfg.Attack.FloodBurst = 24
	cfg.Attack.LorisConns = 12
	cfg.Attack.LorisKeepalive = 10 * netsim.Millisecond
	return cfg
}

// FullConfig approaches the paper's data volumes (≈10^6 packets) and
// supports the production 1-in-4096-scale sampling comparisons.
func FullConfig(seed int64) Config {
	cfg := Config{
		Seed:       seed,
		Days:       6,
		DayLen:     8 * netsim.Second,
		MinEpisode: 150 * netsim.Millisecond,
		Benign:     DefaultBenignConfig(ServerAddr),
		Attack:     DefaultAttackConfig(ServerAddr),
	}
	cfg.Benign.SessionsPerDay = 2500
	cfg.Attack.ScanRate = 60000
	cfg.Attack.FloodRate = 140000
	cfg.Attack.FloodBurst = 32
	cfg.Attack.LorisConns = 24
	cfg.Attack.LorisKeepalive = 12 * netsim.Millisecond
	return cfg
}

// ConfigForScale returns the preset named by scale, defaulting to
// small.
func ConfigForScale(scale string, seed int64) Config {
	switch scale {
	case ScaleTiny:
		return TinyConfig(seed)
	case ScaleFull:
		return FullConfig(seed)
	default:
		return SmallConfig(seed)
	}
}

// Workload is a generated capture plus its ground-truth schedule.
type Workload struct {
	Config   Config
	Schedule Schedule
	Records  []trace.Record
}

// Horizon returns the end of the capture window.
func (w *Workload) Horizon() netsim.Time {
	return netsim.Time(w.Config.Days) * w.Config.DayLen
}

// CountByType tallies records per attack type (Benign included).
func (w *Workload) CountByType() map[string]int {
	out := make(map[string]int)
	for i := range w.Records {
		out[w.Records[i].AttackType]++
	}
	return out
}

// Build generates the full capture: benign background, Table I
// attacks, merged chronologically.
func Build(cfg Config) *Workload {
	rng := netsim.NewRNG(cfg.Seed)
	sched := PaperSchedule(cfg.DayLen, cfg.MinEpisode)
	var recs []trace.Record
	recs = GenerateBenign(recs, cfg.Benign, cfg.Days, cfg.DayLen, rng)
	recs = GenerateAttacks(recs, cfg.Attack, sched, rng)
	trace.SortByTime(recs)
	return &Workload{Config: cfg, Schedule: sched, Records: recs}
}

// SplitAtDay partitions records into those before the start of day d
// and those from day d on — the paper's zero-day split assigns June
// 11 (day 5) to the test set.
func (w *Workload) SplitAtDay(d int) (before, after []trace.Record) {
	cut := netsim.Time(d) * w.Config.DayLen
	for i := range w.Records {
		if w.Records[i].At < cut {
			before = append(before, w.Records[i])
		} else {
			after = append(after, w.Records[i])
		}
	}
	return before, after
}
