package traffic

import (
	"testing"
	"testing/quick"

	"github.com/amlight/intddos/internal/netsim"
)

// TestPaperSchedulePropertyDisjoint: at any compression and floor the
// schedule stays strictly ordered and non-overlapping, so ground
// truth is always unambiguous.
func TestPaperSchedulePropertyDisjoint(t *testing.T) {
	f := func(dayMs uint16, minEpMs uint8) bool {
		day := netsim.Time(int64(dayMs)+10) * netsim.Millisecond
		minEp := netsim.Time(minEpMs) * netsim.Millisecond
		s := PaperSchedule(day, minEp)
		if len(s) != 11 {
			return false
		}
		for i, e := range s {
			if e.End <= e.Start {
				return false
			}
			if minEp > 0 && e.Duration() < minEp {
				return false
			}
			if i > 0 && e.Start < s[i-1].End {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestPaperSchedulePropertyActiveAtConsistent: every episode reports
// itself active at its own midpoint.
func TestPaperSchedulePropertyActiveAtConsistent(t *testing.T) {
	f := func(dayMs uint16) bool {
		day := netsim.Time(int64(dayMs)+10) * netsim.Millisecond
		s := PaperSchedule(day, netsim.Millisecond)
		for _, e := range s {
			mid := e.Start + e.Duration()/2
			if s.ActiveAt(mid) != e.Type {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
