package traffic

import (
	"math"
	"math/rand"
	"net/netip"

	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/trace"
)

// BenignConfig shapes the benign web-server workload.
type BenignConfig struct {
	// Server is the production web server the capture focused on.
	Server netip.Addr
	// Clients is the size of the client address pool.
	Clients int
	// SessionsPerDay is the mean number of HTTP-like sessions per
	// compressed capture day.
	SessionsPerDay int
	// MeanResponsePkts is the mean length of a response packet train.
	MeanResponsePkts int
	// GapScale is the base intra-session inter-packet gap.
	GapScale netsim.Time
}

// DefaultBenignConfig returns the workload shape used by the
// experiment presets.
func DefaultBenignConfig(server netip.Addr) BenignConfig {
	return BenignConfig{
		Server:           server,
		Clients:          96,
		SessionsPerDay:   600,
		MeanResponsePkts: 8,
		GapScale:         150 * netsim.Microsecond,
	}
}

// benignClientPool builds deterministic client addresses in
// 172.16.x.y space.
func benignClientPool(n int) []netip.Addr {
	pool := make([]netip.Addr, n)
	for i := range pool {
		pool[i] = netip.AddrFrom4([4]byte{172, 16, byte(1 + i/250), byte(1 + i%250)})
	}
	return pool
}

// diurnal modulates session arrival intensity over the day: quiet
// nights, busy afternoons, as in production web traffic.
func diurnal(frac float64) float64 {
	return 0.65 + 0.55*math.Sin(2*math.Pi*(frac-0.30))
}

// GenerateBenign emits benign web sessions across days of length
// dayLen, appending to dst. Sessions model a TCP handshake, one or
// more request/response exchanges with ACK clocking, and a FIN
// teardown — both directions of each connection are emitted, since
// both traverse the monitored link in the AmLight capture.
func GenerateBenign(dst []trace.Record, cfg BenignConfig, days int, dayLen netsim.Time, rng *rand.Rand) []trace.Record {
	pool := benignClientPool(cfg.Clients)
	horizon := netsim.Time(days) * dayLen
	// Thinned Poisson arrivals: candidate rate is the peak diurnal rate.
	peakRate := float64(cfg.SessionsPerDay) * 1.2 / dayLen.Seconds()
	t := netsim.Time(0)
	for {
		gap := netsim.Time(rng.ExpFloat64() / peakRate * float64(netsim.Second))
		if gap < netsim.Microsecond {
			gap = netsim.Microsecond
		}
		t += gap
		if t >= horizon {
			break
		}
		frac := float64(t%dayLen) / float64(dayLen)
		if rng.Float64() > diurnal(frac)/1.2 {
			continue // thinning
		}
		client := pool[rng.Intn(len(pool))]
		dst = generateSession(dst, cfg, client, t, rng)
	}
	return dst
}

// generateSession appends one HTTP-like session starting at t.
func generateSession(dst []trace.Record, cfg BenignConfig, client netip.Addr, t netsim.Time, rng *rand.Rand) []trace.Record {
	sport := uint16(32768 + rng.Intn(28000))
	dport := uint16(80)
	if rng.Float64() < 0.55 {
		dport = 443
	}
	// Control-packet sizes vary with the client stack's TCP options
	// (MSS, SACK, timestamps, window scale): production client SYNs
	// carry full option sets (≥64 B), while attack tools emit minimal
	// byte-identical 60 B probes.
	synSize := 64 + 4*rng.Intn(5) // 64–80
	ackSize := 52 + 4*rng.Intn(4) // 52–64
	gap := func(scale float64) netsim.Time {
		g := netsim.Time(rng.ExpFloat64() * scale * float64(cfg.GapScale))
		if g < netsim.Microsecond {
			g = netsim.Microsecond
		}
		return g
	}
	c2s := func(at netsim.Time, flags netsim.TCPFlags, length int) trace.Record {
		return trace.Record{
			At: at, Src: client, Dst: cfg.Server, SrcPort: sport, DstPort: dport,
			Proto: netsim.TCP, Flags: flags, Length: uint16(length), AttackType: Benign,
		}
	}
	s2c := func(at netsim.Time, flags netsim.TCPFlags, length int) trace.Record {
		return trace.Record{
			At: at, Src: cfg.Server, Dst: client, SrcPort: dport, DstPort: sport,
			Proto: netsim.TCP, Flags: flags, Length: uint16(length), AttackType: Benign,
		}
	}

	// Handshake.
	dst = append(dst, c2s(t, netsim.FlagSYN, synSize))
	t += gap(1)
	dst = append(dst, s2c(t, netsim.FlagSYN|netsim.FlagACK, synSize))
	t += gap(1)
	dst = append(dst, c2s(t, netsim.FlagACK, ackSize))

	// Request/response exchanges.
	exchanges := 1 + rng.Intn(3)
	for x := 0; x < exchanges; x++ {
		t += gap(2)
		reqLen := 200 + rng.Intn(1000)
		dst = append(dst, c2s(t, netsim.FlagACK|netsim.FlagPSH, reqLen))
		// Server think time, then a response train.
		t += gap(4)
		train := 1 + int(rng.ExpFloat64()*float64(cfg.MeanResponsePkts))
		if train > 60 {
			train = 60
		}
		for i := 0; i < train; i++ {
			length := 1500
			if i == train-1 {
				length = 80 + rng.Intn(1400)
			}
			dst = append(dst, s2c(t, netsim.FlagACK, length))
			t += gap(0.3) // near back-to-back data train
			if i%2 == 1 {
				dst = append(dst, c2s(t, netsim.FlagACK, ackSize))
			}
		}
	}

	// Teardown.
	t += gap(2)
	dst = append(dst, c2s(t, netsim.FlagFIN|netsim.FlagACK, ackSize))
	t += gap(1)
	dst = append(dst, s2c(t, netsim.FlagFIN|netsim.FlagACK, ackSize))
	t += gap(1)
	dst = append(dst, c2s(t, netsim.FlagACK, ackSize))
	return dst
}
