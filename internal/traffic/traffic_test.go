package traffic

import (
	"testing"

	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/trace"
)

func TestPaperScheduleHasElevenEpisodes(t *testing.T) {
	s := PaperSchedule(netsim.Second, 0)
	if len(s) != 11 {
		t.Fatalf("episodes = %d, want 11 (Table I)", len(s))
	}
	counts := map[string]int{}
	for _, e := range s {
		counts[e.Type]++
		if e.End <= e.Start {
			t.Errorf("episode %v has non-positive duration", e)
		}
	}
	want := map[string]int{SYNScan: 2, UDPScan: 2, SYNFlood: 5, SlowLoris: 2}
	for typ, n := range want {
		if counts[typ] != n {
			t.Errorf("%s episodes = %d, want %d", typ, counts[typ], n)
		}
	}
}

func TestPaperScheduleDayPlacement(t *testing.T) {
	day := netsim.Second
	s := PaperSchedule(day, 0)
	// First six episodes on day 4, last five on day 5.
	for i, e := range s {
		wantDay := 4
		if i >= 6 {
			wantDay = 5
		}
		if got := DayOf(e.Start, day); got != wantDay {
			t.Errorf("episode %d (%s) on day %d, want %d", i, e.Type, got, wantDay)
		}
	}
}

func TestPaperScheduleOrderingAndProportions(t *testing.T) {
	day := 10 * netsim.Second
	s := PaperSchedule(day, 0)
	for i := 1; i < len(s); i++ {
		if s[i].Start < s[i-1].Start {
			t.Errorf("episodes out of order at %d", i)
		}
	}
	// The first SYN scan is the longest scan episode (33 min real).
	if s[0].Duration() <= s[1].Duration() {
		t.Errorf("scan durations: first %v should exceed second %v", s[0].Duration(), s[1].Duration())
	}
}

func TestPaperScheduleMinEpisodeFloor(t *testing.T) {
	day := 100 * netsim.Millisecond // aggressive compression
	min := 5 * netsim.Millisecond
	for _, e := range PaperSchedule(day, min) {
		if e.Duration() < min {
			t.Errorf("episode %v shorter than floor", e)
		}
	}
}

func TestScheduleActiveAt(t *testing.T) {
	s := Schedule{
		{Type: SYNScan, Start: 100, End: 200},
		{Type: SYNFlood, Start: 300, End: 400},
	}
	cases := []struct {
		t    netsim.Time
		want string
	}{
		{50, ""}, {100, SYNScan}, {199, SYNScan}, {200, ""}, {350, SYNFlood}, {400, ""},
	}
	for _, c := range cases {
		if got := s.ActiveAt(c.t); got != c.want {
			t.Errorf("ActiveAt(%d) = %q, want %q", c.t, got, c.want)
		}
	}
}

func TestScheduleByType(t *testing.T) {
	s := PaperSchedule(netsim.Second, 0)
	if got := len(s.ByType(SYNFlood)); got != 5 {
		t.Errorf("flood episodes = %d, want 5", got)
	}
}

func TestBuildTinyWorkload(t *testing.T) {
	w := Build(TinyConfig(1))
	if len(w.Records) < 2000 {
		t.Fatalf("tiny workload only %d records", len(w.Records))
	}
	counts := w.CountByType()
	for _, typ := range append([]string{Benign}, AttackTypes...) {
		if counts[typ] == 0 {
			t.Errorf("no %s records generated", typ)
		}
	}
	// Chronological order.
	for i := 1; i < len(w.Records); i++ {
		if w.Records[i].At < w.Records[i-1].At {
			t.Fatalf("records out of order at %d", i)
		}
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := Build(TinyConfig(42))
	b := Build(TinyConfig(42))
	if len(a.Records) != len(b.Records) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Records), len(b.Records))
	}
	for i := range a.Records {
		if a.Records[i] != b.Records[i] {
			t.Fatalf("record %d differs between same-seed builds", i)
		}
	}
	c := Build(TinyConfig(43))
	if len(a.Records) == len(c.Records) {
		same := true
		for i := range a.Records {
			if a.Records[i] != c.Records[i] {
				same = false
				break
			}
		}
		if same {
			t.Error("different seeds produced identical workloads")
		}
	}
}

func TestAttackLabelsMatchSchedule(t *testing.T) {
	w := Build(TinyConfig(7))
	for i := range w.Records {
		r := &w.Records[i]
		if r.Label {
			active := w.Schedule.ActiveAt(r.At)
			if active == "" {
				t.Fatalf("attack record at %v outside every episode (%s)", r.At, r.AttackType)
			}
			if active != r.AttackType {
				t.Fatalf("attack record labeled %s during %s episode", r.AttackType, active)
			}
		} else if r.AttackType != Benign {
			t.Fatalf("unlabeled record has attack type %q", r.AttackType)
		}
	}
}

func TestBenignTrafficTargetsServer(t *testing.T) {
	w := Build(TinyConfig(7))
	for i := range w.Records {
		r := &w.Records[i]
		if r.AttackType == Benign && r.Src != ServerAddr && r.Dst != ServerAddr {
			t.Fatalf("benign record not touching server: %+v", r)
		}
	}
}

func TestScanFlowsMostlySinglePacket(t *testing.T) {
	w := Build(TinyConfig(9))
	seen := map[string]int{}
	for i := range w.Records {
		r := &w.Records[i]
		if r.AttackType == SYNScan || r.AttackType == UDPScan {
			key := r.Packet().FiveTuple()
			seen[key]++
		}
	}
	if len(seen) == 0 {
		t.Fatal("no scan flows")
	}
	single, retried := 0, 0
	for _, n := range seen {
		switch {
		case n == 1:
			single++
		case n == 2:
			retried++ // hping retry
		default:
			t.Fatalf("scan flow with %d packets; at most one retry expected", n)
		}
	}
	if single < 2*retried {
		t.Errorf("single=%d retried=%d; most scan probes should not retry", single, retried)
	}
}

func TestSlowLorisIsLowRate(t *testing.T) {
	w := Build(SmallConfig(3))
	counts := w.CountByType()
	loris := counts[SlowLoris]
	flood := counts[SYNFlood]
	if loris == 0 || flood == 0 {
		t.Fatal("missing attack records")
	}
	if loris*20 > flood {
		t.Errorf("slowloris %d not ≪ flood %d — low-rate property lost", loris, flood)
	}
}

func TestSlowLorisFlowsPersist(t *testing.T) {
	w := Build(TinyConfig(5))
	// Every loris connection should emit several packets spread over
	// the episode.
	perFlow := map[string][]netsim.Time{}
	for i := range w.Records {
		r := &w.Records[i]
		if r.AttackType == SlowLoris {
			key := r.Packet().FiveTuple()
			perFlow[key] = append(perFlow[key], r.At)
		}
	}
	if len(perFlow) == 0 {
		t.Fatal("no slowloris flows")
	}
	for k, times := range perFlow {
		if len(times) < 3 {
			t.Errorf("loris flow %s has only %d packets", k, len(times))
		}
	}
}

func TestSplitAtDay(t *testing.T) {
	w := Build(TinyConfig(11))
	before, after := w.SplitAtDay(5)
	if len(before)+len(after) != len(w.Records) {
		t.Fatal("split lost records")
	}
	cut := 5 * w.Config.DayLen
	for i := range before {
		if before[i].At >= cut {
			t.Fatal("before-partition record past the cut")
		}
	}
	for i := range after {
		if after[i].At < cut {
			t.Fatal("after-partition record before the cut")
		}
	}
	// Day 5 holds SlowLoris (zero-day class) and SYN floods only.
	types := map[string]bool{}
	for i := range after {
		if after[i].Label {
			types[after[i].AttackType] = true
		}
	}
	if !types[SlowLoris] || !types[SYNFlood] {
		t.Errorf("day-5 test partition types = %v, want slowloris+synflood", types)
	}
	if types[SYNScan] || types[UDPScan] {
		t.Errorf("scans leaked into day-5 partition: %v", types)
	}
	// SlowLoris must be absent from the training days (zero-day).
	for i := range before {
		if before[i].AttackType == SlowLoris {
			t.Fatal("slowloris leaked into training partition")
		}
	}
}

func TestWorkloadRoundTripsThroughTraceFile(t *testing.T) {
	w := Build(TinyConfig(13))
	dir := t.TempDir()
	path := dir + "/w.amtr"
	if err := trace.WriteFile(path, w.Records); err != nil {
		t.Fatal(err)
	}
	got, err := trace.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(w.Records) {
		t.Fatalf("round trip %d != %d", len(got), len(w.Records))
	}
	for i := range got {
		if got[i] != w.Records[i] {
			t.Fatalf("record %d differs after round trip", i)
		}
	}
}

func TestDiurnalModulationInRange(t *testing.T) {
	for f := 0.0; f < 1.0; f += 0.01 {
		v := diurnal(f)
		if v < 0.05 || v > 1.25 {
			t.Fatalf("diurnal(%f) = %f out of sane range", f, v)
		}
	}
}

func TestConfigForScale(t *testing.T) {
	if ConfigForScale(ScaleTiny, 1).DayLen != TinyConfig(1).DayLen {
		t.Error("tiny preset mismatch")
	}
	if ConfigForScale(ScaleFull, 1).DayLen != FullConfig(1).DayLen {
		t.Error("full preset mismatch")
	}
	if ConfigForScale("bogus", 1).DayLen != SmallConfig(1).DayLen {
		t.Error("default preset should be small")
	}
}
