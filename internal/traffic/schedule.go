// Package traffic generates the synthetic workloads the experiments
// run on: a benign web-server workload statistically shaped like the
// AmLight subnet capture the paper used, and the four simulated
// attack types of Table I (SYN scan, UDP scan, SYN flood, SlowLoris),
// laid out on the paper's episode schedule compressed onto a virtual
// timeline.
//
// All generators are deterministic under a seed and emit trace
// records, so the same workload can be replayed through the INT and
// sFlow pipelines or written to disk.
package traffic

import (
	"fmt"

	"github.com/amlight/intddos/internal/netsim"
)

// Attack type names, used as trace labels and Table VI row keys.
const (
	Benign    = "benign"
	SYNScan   = "synscan"
	UDPScan   = "udpscan"
	SYNFlood  = "synflood"
	SlowLoris = "slowloris"
)

// AttackTypes lists the attack workloads in Table I order.
var AttackTypes = []string{SYNScan, UDPScan, SYNFlood, SlowLoris}

// Episode is one attack window on the virtual timeline.
type Episode struct {
	Type  string
	Start netsim.Time
	End   netsim.Time
}

// Duration returns the episode length.
func (e Episode) Duration() netsim.Time { return e.End - e.Start }

// String renders the episode like a Table I row.
func (e Episode) String() string {
	return fmt.Sprintf("%-9s %v - %v", e.Type, e.Start, e.End)
}

// Schedule is an ordered list of attack episodes.
type Schedule []Episode

// ActiveAt returns the attack type running at t, or "" when the
// network is clean.
func (s Schedule) ActiveAt(t netsim.Time) string {
	for _, e := range s {
		if t >= e.Start && t < e.End {
			return e.Type
		}
	}
	return ""
}

// ByType returns the episodes of one attack type.
func (s Schedule) ByType(typ string) Schedule {
	var out Schedule
	for _, e := range s {
		if e.Type == typ {
			out = append(out, e)
		}
	}
	return out
}

// tableIEntry is one row of the paper's Table I in capture-day
// coordinates: day index (June 6 = 0) and seconds-of-day boundaries.
type tableIEntry struct {
	typ        string
	day        int
	start, end int // seconds of day
}

// secondsOfDay converts hh:mm:ss to seconds.
func secondsOfDay(h, m, s int) int { return h*3600 + m*60 + s }

// tableI is the paper's simulated attack schedule. June 10 is day 4,
// June 11 day 5 of the June 6–11 capture. The final UDP scan ends at
// the paper's "16:59:99", which we read as 16:59:59.
var tableI = []tableIEntry{
	{SYNScan, 4, secondsOfDay(13, 24, 2), secondsOfDay(13, 57, 3)},
	{SYNScan, 4, secondsOfDay(16, 30, 51), secondsOfDay(16, 35, 20)},
	{UDPScan, 4, secondsOfDay(16, 36, 20), secondsOfDay(16, 53, 0)},
	{UDPScan, 4, secondsOfDay(16, 56, 45), secondsOfDay(16, 59, 59)},
	{SYNFlood, 4, secondsOfDay(20, 48, 1), secondsOfDay(20, 49, 1)},
	{SYNFlood, 4, secondsOfDay(20, 52, 11), secondsOfDay(20, 54, 12)},
	{SYNFlood, 5, secondsOfDay(20, 13, 31), secondsOfDay(20, 15, 31)},
	{SYNFlood, 5, secondsOfDay(20, 16, 41), secondsOfDay(20, 17, 1)},
	{SYNFlood, 5, secondsOfDay(20, 17, 17), secondsOfDay(20, 17, 37)},
	{SlowLoris, 5, secondsOfDay(20, 27, 37), secondsOfDay(20, 28, 37)},
	{SlowLoris, 5, secondsOfDay(20, 29, 12), secondsOfDay(20, 31, 12)},
}

// realDay is the length of a capture day in real seconds.
const realDay = 86400

// PaperSchedule maps Table I onto a compressed virtual timeline where
// each capture day lasts dayLen. Episode boundaries keep their
// positions proportionally, but each episode is also given a floor of
// minEpisode so very short attacks (the 20 s floods) survive
// aggressive compression with enough packets to matter.
// Flooring can make neighbouring episodes collide, so starts are
// pushed forward as needed to keep the schedule disjoint — ground
// truth stays unambiguous at any compression.
func PaperSchedule(dayLen, minEpisode netsim.Time) Schedule {
	sched := make(Schedule, 0, len(tableI))
	var prevEnd netsim.Time
	for _, e := range tableI {
		start := netsim.Time(e.day)*dayLen + scaleSeconds(e.start, dayLen)
		end := netsim.Time(e.day)*dayLen + scaleSeconds(e.end, dayLen)
		if gap := minEpisode / 4; start < prevEnd+gap {
			shift := prevEnd + gap - start
			start += shift
			end += shift
		}
		if end-start < minEpisode {
			end = start + minEpisode
		}
		prevEnd = end
		sched = append(sched, Episode{Type: e.typ, Start: start, End: end})
	}
	return sched
}

// scaleSeconds maps a seconds-of-day offset onto the compressed day.
func scaleSeconds(sec int, dayLen netsim.Time) netsim.Time {
	return netsim.Time(int64(sec) * int64(dayLen) / realDay)
}

// DayOf returns which compressed capture day t falls on.
func DayOf(t netsim.Time, dayLen netsim.Time) int { return int(t / dayLen) }
