package traffic

import (
	"math/rand"
	"net/netip"

	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/trace"
)

// AttackConfig shapes the four Table I attack workloads. Rates are in
// packets per second of compressed virtual time; the experiment
// presets size them so the per-episode packet counts keep the paper's
// proportions relative to the sFlow sampling rate.
type AttackConfig struct {
	// Target is the attacked server.
	Target netip.Addr

	// ScanRate is the probe rate of SYN/UDP scans (pps).
	ScanRate float64
	// FloodRate is the SYN flood rate (pps).
	FloodRate float64
	// FloodBurst sends flood packets in back-to-back bursts of this
	// size, producing the queue-occupancy signature floods leave.
	FloodBurst int
	// LorisConns is the number of concurrent SlowLoris connections
	// per episode.
	LorisConns int
	// LorisKeepalive is the per-connection gap between partial header
	// packets.
	LorisKeepalive netsim.Time
}

// DefaultAttackConfig returns the attack intensities used by the
// experiment presets.
func DefaultAttackConfig(target netip.Addr) AttackConfig {
	return AttackConfig{
		Target:         target,
		ScanRate:       12000,
		FloodRate:      40000,
		FloodBurst:     24,
		LorisConns:     24,
		LorisKeepalive: 12 * netsim.Millisecond,
	}
}

// scanAttackerAddr is the single source the hping-style scans probe
// from, as in the paper's simulated attacks.
var scanAttackerAddr = netip.AddrFrom4([4]byte{203, 0, 113, 77})

// lorisAddrs are the handful of sources a SlowLoris run occupies.
var lorisAddrs = []netip.Addr{
	netip.AddrFrom4([4]byte{203, 0, 113, 10}),
	netip.AddrFrom4([4]byte{203, 0, 113, 11}),
	netip.AddrFrom4([4]byte{203, 0, 113, 12}),
}

// GenerateAttacks emits every episode in sched, appending to dst.
func GenerateAttacks(dst []trace.Record, cfg AttackConfig, sched Schedule, rng *rand.Rand) []trace.Record {
	for _, ep := range sched {
		switch ep.Type {
		case SYNScan:
			dst = generateScan(dst, cfg, ep, netsim.TCP, rng)
		case UDPScan:
			dst = generateScan(dst, cfg, ep, netsim.UDP, rng)
		case SYNFlood:
			dst = generateFlood(dst, cfg, ep, rng)
		case SlowLoris:
			dst = generateSlowLoris(dst, cfg, ep, rng)
		}
	}
	return dst
}

// generateScan emits an hping-style port scan: one small probe per
// destination port, source port incrementing per probe, fixed source
// address. Every probe is its own single-packet 5-tuple flow.
func generateScan(dst []trace.Record, cfg AttackConfig, ep Episode, proto netsim.Proto, rng *rand.Rand) []trace.Record {
	label := SYNScan
	var flags netsim.TCPFlags
	length := 40
	if proto == netsim.UDP {
		label = UDPScan
		length = 60
	} else {
		flags = netsim.FlagSYN
	}
	gapMean := float64(netsim.Second) / cfg.ScanRate
	sport := uint16(1024 + rng.Intn(2000))
	dport := uint16(1)
	for t := ep.Start; t < ep.End; {
		probe := trace.Record{
			At: t, Src: scanAttackerAddr, Dst: cfg.Target,
			SrcPort: sport, DstPort: dport,
			Proto: proto, Flags: flags, Length: uint16(length),
			Label: true, AttackType: label,
		}
		dst = append(dst, probe)
		// hping retries unanswered probes: a quarter of flows get a
		// second identical packet, so scan flows are not uniformly
		// single-packet.
		if rng.Float64() < 0.25 {
			retry := probe
			retry.At = t + netsim.Time(5+rng.Intn(15))*netsim.Millisecond
			if retry.At < ep.End {
				dst = append(dst, retry)
			}
		}
		sport++
		if sport == 0 {
			sport = 1024
		}
		dport++
		if dport == 0 {
			dport = 1
		}
		t += netsim.Time(rng.ExpFloat64()*gapMean*0.4 + gapMean*0.6)
	}
	return dst
}

// generateFlood emits a spoofed-source SYN flood toward the target's
// web port: tiny SYNs at high rate, sent in microbursts so the egress
// queue visibly builds (the queue-occupancy signature).
func generateFlood(dst []trace.Record, cfg AttackConfig, ep Episode, rng *rand.Rand) []trace.Record {
	// A handful of direct (non-spoofed, fixed source port) flooders —
	// hping without --rand-source — each form one giant flow, while
	// the spoofed majority mint a fresh flow per packet.
	type flooder struct {
		src   netip.Addr
		sport uint16
	}
	direct := make([]flooder, 4)
	for i := range direct {
		direct[i] = flooder{
			src:   netip.AddrFrom4([4]byte{198, 19, byte(10 + i), byte(1 + rng.Intn(254))}),
			sport: uint16(20000 + rng.Intn(40000)),
		}
	}
	burstGap := netsim.Time(float64(cfg.FloodBurst) * float64(netsim.Second) / cfg.FloodRate)
	for t := ep.Start; t < ep.End; t += burstGap {
		for i := 0; i < cfg.FloodBurst; i++ {
			src := netip.AddrFrom4([4]byte{198, 18, byte(rng.Intn(256)), byte(1 + rng.Intn(254))})
			sport := uint16(1024 + rng.Intn(60000))
			if rng.Float64() < 0.3 {
				f := direct[rng.Intn(len(direct))]
				src, sport = f.src, f.sport
			}
			dst = append(dst, trace.Record{
				// Burst packets arrive nearly back-to-back.
				At:  t + netsim.Time(i)*200*netsim.Nanosecond,
				Src: src, Dst: cfg.Target,
				SrcPort: sport, DstPort: 80,
				Proto: netsim.TCP, Flags: netsim.FlagSYN, Length: 40,
				Label: true, AttackType: SYNFlood,
			})
		}
	}
	return dst
}

// generateSlowLoris emits the low-and-slow attack: a modest number of
// connections, each trickling tiny partial-header packets for the
// whole episode. Total packet volume stays far below one sFlow
// sampling interval — the property that makes SlowLoris invisible to
// sampled monitoring in the paper's Figure 5.
func generateSlowLoris(dst []trace.Record, cfg AttackConfig, ep Episode, rng *rand.Rand) []trace.Record {
	for c := 0; c < cfg.LorisConns; c++ {
		src := lorisAddrs[c%len(lorisAddrs)]
		sport := uint16(20000 + c*7 + rng.Intn(5))
		t := ep.Start + netsim.Time(rng.Int63n(int64(cfg.LorisKeepalive)))
		emit := func(flags netsim.TCPFlags, length int) {
			dst = append(dst, trace.Record{
				At: t, Src: src, Dst: cfg.Target, SrcPort: sport, DstPort: 80,
				Proto: netsim.TCP, Flags: flags, Length: uint16(length),
				Label: true, AttackType: SlowLoris,
			})
		}
		emit(netsim.FlagSYN, 60)
		t += netsim.Time(rng.Int63n(int64(netsim.Millisecond)))
		emit(netsim.FlagACK, 52)
		for t < ep.End {
			jitter := netsim.Time(rng.Int63n(int64(cfg.LorisKeepalive) / 4))
			t += cfg.LorisKeepalive + jitter
			if t >= ep.End {
				break
			}
			emit(netsim.FlagACK|netsim.FlagPSH, 20+rng.Intn(20))
		}
	}
	return dst
}
