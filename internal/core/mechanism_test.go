package core

import (
	"net/netip"
	"testing"

	"github.com/amlight/intddos/internal/flow"
	"github.com/amlight/intddos/internal/ml"
	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/telemetry"
)

// stubModel labels by thresholding the (scaled) packet-size feature:
// small packets are attacks. It also lets tests force constant
// output.
type stubModel struct {
	name   string
	always *int // when non-nil, constant output
	index  int  // feature index to threshold
	thresh float64
	invert bool
}

func (s stubModel) Name() string                 { return s.name }
func (s stubModel) Fit([][]float64, []int) error { return nil }
func (s stubModel) Predict(x []float64) int {
	if s.always != nil {
		return *s.always
	}
	v := x[s.index] < s.thresh
	if s.invert {
		v = !v
	}
	if v {
		return 1
	}
	return 0
}

// identityScaler leaves features untouched.
func identityScaler(n int) *ml.StandardScaler {
	sc := &ml.StandardScaler{Mean: make([]float64, n), Std: make([]float64, n)}
	for i := range sc.Std {
		sc.Std[i] = 1
	}
	return sc
}

func testConfig(models ...ml.Classifier) Config {
	feats := flow.INTFeatures()
	return Config{
		Features:     feats,
		Models:       models,
		Scaler:       identityScaler(len(feats)),
		PollInterval: netsim.Millisecond,
		ServiceTime:  500 * netsim.Microsecond,
	}
}

func attackDetector() stubModel {
	// FPktSize is index 1 of INTFeatures; attacks in these tests are
	// 40-byte packets, benign 1000-byte.
	return stubModel{name: "stub", index: 1, thresh: 100}
}

func simObs(sport uint16, at netsim.Time, length int, label bool, typ string) flow.PacketInfo {
	return flow.PacketInfo{
		Key: flow.Key{
			Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2"),
			SrcPort: sport, DstPort: 80, Proto: netsim.TCP,
		},
		Length: length, At: at, HasTelemetry: true,
		IngressTS: netsim.Wrap32(at), EgressTS: netsim.Wrap32(at + 500),
		Label: label, AttackType: typ,
	}
}

func TestMechanismValidatesConfig(t *testing.T) {
	eng := netsim.NewEngine()
	if _, err := New(eng, Config{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := New(eng, Config{Models: []ml.Classifier{attackDetector()}}); err == nil {
		t.Error("missing scaler accepted")
	}
	m, err := New(eng, testConfig(attackDetector()))
	if err != nil {
		t.Fatal(err)
	}
	cfg := m.Config()
	if cfg.VoteWindow != 3 || cfg.ModelQuorum != 1 || cfg.PollBatch != 64 {
		t.Errorf("defaults = %+v", cfg)
	}
}

func TestMechanismEndToEndDecision(t *testing.T) {
	eng := netsim.NewEngine()
	m, err := New(eng, testConfig(attackDetector()))
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	// Three attack packets in one flow.
	for i := 0; i < 3; i++ {
		at := netsim.Time(i) * 100 * netsim.Microsecond
		eng.Schedule(at, func() { m.Observe(simObs(7, eng.Now(), 40, true, "synflood")) })
	}
	eng.RunUntil(50 * netsim.Millisecond)
	if m.Snapshots != 3 {
		t.Fatalf("snapshots = %d, want 3", m.Snapshots)
	}
	if len(m.Decisions) != 3 {
		t.Fatalf("decisions = %d, want 3", len(m.Decisions))
	}
	for i, d := range m.Decisions {
		if d.Label != 1 {
			t.Errorf("decision %d label = %d, want attack", i, d.Label)
		}
		if d.Seq != i {
			t.Errorf("decision %d seq = %d", i, d.Seq)
		}
		if d.Latency <= 0 {
			t.Errorf("decision %d latency = %v", i, d.Latency)
		}
		if !d.Correct() {
			t.Errorf("decision %d marked incorrect", i)
		}
	}
}

func TestMechanismEnsembleQuorum(t *testing.T) {
	one, zero := 1, 0
	attack := stubModel{name: "a", always: &one}
	benign := stubModel{name: "b", always: &zero}

	// 1 of 3 votes attack, quorum 2 → benign.
	eng := netsim.NewEngine()
	cfg := testConfig(attack, benign, benign)
	cfg.ModelQuorum = 2
	m, _ := New(eng, cfg)
	m.Start()
	eng.Schedule(0, func() { m.Observe(simObs(1, 0, 40, true, "synflood")) })
	eng.RunUntil(20 * netsim.Millisecond)
	if len(m.Decisions) != 1 || m.Decisions[0].Label != 0 {
		t.Fatalf("1-of-3 quorum-2 decisions = %+v", m.Decisions)
	}

	// 2 of 3 vote attack → attack.
	eng2 := netsim.NewEngine()
	cfg2 := testConfig(attack, attack, benign)
	cfg2.ModelQuorum = 2
	m2, _ := New(eng2, cfg2)
	m2.Start()
	eng2.Schedule(0, func() { m2.Observe(simObs(1, 0, 40, true, "synflood")) })
	eng2.RunUntil(20 * netsim.Millisecond)
	if len(m2.Decisions) != 1 || m2.Decisions[0].Label != 1 {
		t.Fatalf("2-of-3 quorum-2 decisions = %+v", m2.Decisions)
	}
	if len(m2.Decisions[0].Votes) != 3 {
		t.Errorf("votes = %v", m2.Decisions[0].Votes)
	}
}

func TestMechanismWindowSmoothing(t *testing.T) {
	// Model flips on packet size; feed A A B pattern per flow so raw
	// votes are [1 1 0]: the window majority keeps the flow attack.
	eng := netsim.NewEngine()
	m, _ := New(eng, testConfig(attackDetector()))
	m.Start()
	sizes := []int{40, 40, 1000}
	for i, size := range sizes {
		at := netsim.Time(i) * 10 * netsim.Millisecond
		size := size
		eng.Schedule(at, func() { m.Observe(simObs(2, eng.Now(), size, true, "synflood")) })
	}
	eng.RunUntil(netsim.Second)
	if len(m.Decisions) != 3 {
		t.Fatalf("decisions = %d", len(m.Decisions))
	}
	last := m.Decisions[2]
	if last.Label != 1 {
		t.Errorf("window [1,1,0] should stay attack, got %d", last.Label)
	}
}

func TestMechanismWindowTieResolvesBenign(t *testing.T) {
	eng := netsim.NewEngine()
	m, _ := New(eng, testConfig(attackDetector()))
	m.Start()
	// Two packets: one attack-looking, one benign-looking → [1,0].
	eng.Schedule(0, func() { m.Observe(simObs(3, 0, 40, false, "benign")) })
	eng.Schedule(10*netsim.Millisecond, func() { m.Observe(simObs(3, eng.Now(), 1000, false, "benign")) })
	eng.RunUntil(netsim.Second)
	if len(m.Decisions) != 2 {
		t.Fatalf("decisions = %d", len(m.Decisions))
	}
	if m.Decisions[1].Label != 0 {
		t.Errorf("tie [1,0] should resolve benign, got %d", m.Decisions[1].Label)
	}
}

func TestMechanismSkipNewRecordsSkipsFirstPacket(t *testing.T) {
	eng := netsim.NewEngine()
	cfg := testConfig(attackDetector())
	cfg.SkipNewRecords = true
	m, _ := New(eng, cfg)
	m.Start()
	eng.Schedule(0, func() { m.Observe(simObs(4, 0, 40, true, "synscan")) })
	eng.RunUntil(100 * netsim.Millisecond)
	if len(m.Decisions) != 0 {
		t.Fatalf("single-packet flow produced %d decisions with SkipNewRecords", len(m.Decisions))
	}
	eng.Schedule(eng.Now(), func() { m.Observe(simObs(4, eng.Now(), 40, true, "synscan")) })
	eng.RunUntil(200 * netsim.Millisecond)
	if len(m.Decisions) != 1 {
		t.Fatalf("update produced %d decisions", len(m.Decisions))
	}
}

func TestMechanismBacklogLatencyGrows(t *testing.T) {
	// Arrivals far faster than the service rate: later decisions must
	// show queueing delay, the Table VI benign-latency effect.
	eng := netsim.NewEngine()
	cfg := testConfig(attackDetector())
	cfg.ServiceTime = 5 * netsim.Millisecond
	cfg.PollInterval = netsim.Millisecond
	m, _ := New(eng, cfg)
	m.Start()
	for i := 0; i < 100; i++ {
		sport := uint16(100 + i)
		at := netsim.Time(i) * 100 * netsim.Microsecond
		eng.Schedule(at, func() { m.Observe(simObs(sport, eng.Now(), 1000, false, "benign")) })
	}
	eng.RunUntil(5 * netsim.Second)
	if len(m.Decisions) != 100 {
		t.Fatalf("decisions = %d", len(m.Decisions))
	}
	first, last := m.Decisions[0].Latency, m.Decisions[99].Latency
	if last < first*10 {
		t.Errorf("backlog latency did not grow: first %v, last %v", first, last)
	}
	if m.MaxQueue < 50 {
		t.Errorf("max queue = %d, expected a real backlog", m.MaxQueue)
	}
}

func TestMechanismQueueCapDrops(t *testing.T) {
	eng := netsim.NewEngine()
	cfg := testConfig(attackDetector())
	cfg.ServiceTime = 50 * netsim.Millisecond
	cfg.QueueCap = 5
	m, _ := New(eng, cfg)
	m.Start()
	for i := 0; i < 50; i++ {
		sport := uint16(i)
		eng.Schedule(netsim.Time(i)*10*netsim.Microsecond, func() {
			m.Observe(simObs(sport, eng.Now(), 1000, false, "benign"))
		})
	}
	eng.RunUntil(10 * netsim.Second)
	if m.DroppedPolls == 0 {
		t.Error("no drops despite tiny queue cap")
	}
	if len(m.Decisions)+m.DroppedPolls != 50 {
		t.Errorf("decisions %d + drops %d != 50", len(m.Decisions), m.DroppedPolls)
	}
}

func TestMechanismSweepEvictsState(t *testing.T) {
	eng := netsim.NewEngine()
	cfg := testConfig(attackDetector())
	cfg.FlowIdleTimeout = 50 * netsim.Millisecond
	cfg.SweepInterval = 20 * netsim.Millisecond
	m, _ := New(eng, cfg)
	m.Start()
	eng.Schedule(0, func() { m.Observe(simObs(9, 0, 40, true, "synscan")) })
	eng.RunUntil(netsim.Second)
	if m.Table.Len() != 0 {
		t.Errorf("flow table len = %d after idle timeout", m.Table.Len())
	}
	if m.DB.FlowCount() != 0 {
		t.Errorf("db flows = %d after idle timeout", m.DB.FlowCount())
	}
	if len(m.windows) != 0 {
		t.Errorf("vote windows = %d after idle timeout", len(m.windows))
	}
}

func TestMechanismHandleReport(t *testing.T) {
	eng := netsim.NewEngine()
	m, _ := New(eng, testConfig(attackDetector()))
	m.Start()
	rep := &telemetry.Report{
		Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2"),
		SrcPort: 11, DstPort: 80, Proto: netsim.TCP, Length: 40,
		Hops:  []telemetry.HopMetadata{{QueueDepth: 3, IngressTS: 100, EgressTS: 600}},
		Truth: telemetry.Truth{Label: true, AttackType: "synflood"},
	}
	eng.Schedule(0, func() { m.HandleReport(rep, eng.Now()) })
	eng.RunUntil(100 * netsim.Millisecond)
	if m.Reports != 1 || m.Snapshots != 1 || len(m.Decisions) != 1 {
		t.Errorf("reports=%d snapshots=%d decisions=%d", m.Reports, m.Snapshots, len(m.Decisions))
	}
	if m.Decisions[0].Label != 1 {
		t.Errorf("label = %d", m.Decisions[0].Label)
	}
}

func TestSummarizeByType(t *testing.T) {
	ds := []Decision{
		{AttackType: "synflood", Label: 1, Truth: true, Latency: 10},
		{AttackType: "synflood", Label: 0, Truth: true, Latency: 30},
		{AttackType: "benign", Label: 0, Truth: false, Latency: 100},
		{AttackType: "benign", Label: 0, Truth: false, Latency: 300},
	}
	rows := SummarizeByType(ds)
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Sorted: benign first.
	if rows[0].Type != "benign" || rows[1].Type != "synflood" {
		t.Fatalf("order = %v, %v", rows[0].Type, rows[1].Type)
	}
	b, f := rows[0], rows[1]
	if b.Misclassified != 0 || b.Accuracy != 1 || b.AvgLatency != 200 || b.MaxLatency != 300 {
		t.Errorf("benign row = %+v", b)
	}
	if f.Misclassified != 1 || f.Accuracy != 0.5 || f.AvgLatency != 20 {
		t.Errorf("flood row = %+v", f)
	}
}

func TestMisclassBySeq(t *testing.T) {
	ds := []Decision{
		{AttackType: "slowloris", Seq: 0, Label: 0, Truth: true},
		{AttackType: "slowloris", Seq: 1, Label: 1, Truth: true},
		{AttackType: "benign", Seq: 0, Label: 0, Truth: false},
	}
	seq, wrong := MisclassBySeq(ds, "slowloris")
	if len(seq) != 2 || !wrong[0] || wrong[1] {
		t.Errorf("seq=%v wrong=%v", seq, wrong)
	}
}
