package core

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"github.com/amlight/intddos/internal/flow"
	"github.com/amlight/intddos/internal/ml"
	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/telemetry"
)

func liveConfig(models ...ml.Classifier) LiveConfig {
	feats := flow.INTFeatures()
	return LiveConfig{
		Features:     feats,
		Models:       models,
		Scaler:       identityScaler(len(feats)),
		PollInterval: time.Millisecond,
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, cond func() bool) bool {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(2 * time.Millisecond)
	}
	return cond()
}

func liveObs(sport uint16, length int, label bool, typ string) flow.PacketInfo {
	return flow.PacketInfo{
		Key: flow.Key{
			Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2"),
			SrcPort: sport, DstPort: 80, Proto: netsim.TCP,
		},
		Length: length, HasTelemetry: true,
		Label: label, AttackType: typ,
	}
}

func TestLiveValidatesConfig(t *testing.T) {
	if _, err := NewLive(LiveConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	if _, err := NewLive(LiveConfig{Models: []ml.Classifier{attackDetector()}}); err == nil {
		t.Error("missing scaler accepted")
	}
}

func TestLiveEndToEnd(t *testing.T) {
	l, err := NewLive(liveConfig(attackDetector()))
	if err != nil {
		t.Fatal(err)
	}
	l.Start()
	defer l.Stop()

	for i := 0; i < 5; i++ {
		l.Ingest(liveObs(7, 40, true, "synflood"))
	}
	if !waitFor(t, 2*time.Second, func() bool { return len(l.Decisions()) == 5 }) {
		t.Fatalf("decisions = %d, want 5", len(l.Decisions()))
	}
	for i, d := range l.Decisions() {
		if d.Label != 1 {
			t.Errorf("decision %d label = %d", i, d.Label)
		}
		if d.Latency <= 0 {
			t.Errorf("decision %d latency = %v", i, d.Latency)
		}
		if !d.Correct() {
			t.Errorf("decision %d incorrect", i)
		}
	}
	if l.Snapshots.Load() != 5 || l.Predictions.Load() != 5 {
		t.Errorf("snapshots=%d predictions=%d", l.Snapshots.Load(), l.Predictions.Load())
	}
}

func TestLiveConcurrentIngest(t *testing.T) {
	l, err := NewLive(liveConfig(attackDetector()))
	if err != nil {
		t.Fatal(err)
	}
	l.Start()
	defer l.Stop()

	const goroutines, per = 8, 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				l.Ingest(liveObs(uint16(1000+g), 1000, false, "benign"))
			}
		}(g)
	}
	wg.Wait()
	want := goroutines * per
	if !waitFor(t, 5*time.Second, func() bool { return len(l.Decisions()) == want }) {
		t.Fatalf("decisions = %d, want %d", len(l.Decisions()), want)
	}
	// All benign under the size-threshold stub.
	for _, d := range l.Decisions() {
		if d.Label != 0 {
			t.Fatalf("benign flow flagged: %+v", d)
		}
	}
}

func TestLiveHandleReport(t *testing.T) {
	l, err := NewLive(liveConfig(attackDetector()))
	if err != nil {
		t.Fatal(err)
	}
	var got []Decision
	var mu sync.Mutex
	l.OnDecision = func(d Decision) { mu.Lock(); got = append(got, d); mu.Unlock() }
	l.Start()
	defer l.Stop()

	rep := &telemetry.Report{
		Src: netip.MustParseAddr("10.0.0.9"), Dst: netip.MustParseAddr("10.0.0.2"),
		SrcPort: 5, DstPort: 80, Proto: netsim.TCP, Length: 40,
		Hops:  []telemetry.HopMetadata{{QueueDepth: 1, IngressTS: 10, EgressTS: 20}},
		Truth: telemetry.Truth{Label: true, AttackType: "synscan"},
	}
	l.HandleReport(rep)
	if !waitFor(t, 2*time.Second, func() bool { mu.Lock(); defer mu.Unlock(); return len(got) == 1 }) {
		t.Fatal("no decision from report")
	}
	mu.Lock()
	defer mu.Unlock()
	if got[0].Label != 1 || got[0].AttackType != "synscan" {
		t.Errorf("decision = %+v", got[0])
	}
}

func dedupReport(seq uint64) *telemetry.Report {
	return &telemetry.Report{
		Seq: seq,
		Src: netip.MustParseAddr("10.0.0.9"), Dst: netip.MustParseAddr("10.0.0.2"),
		SrcPort: 5, DstPort: 80, Proto: netsim.TCP, Length: 40,
		Hops:  []telemetry.HopMetadata{{SwitchID: 3, QueueDepth: 1, IngressTS: 10, EgressTS: 20}},
		Truth: telemetry.Truth{Label: true, AttackType: "synscan"},
	}
}

func TestLiveDedupSuppressesDuplicateAndStaleReports(t *testing.T) {
	cfg := liveConfig(attackDetector())
	cfg.DedupWindow = 4
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l.Start()
	defer l.Stop()

	l.HandleReport(dedupReport(1))
	l.HandleReport(dedupReport(1))  // duplicate
	l.HandleReport(dedupReport(10)) // forward jump: 8 inferred gaps
	l.HandleReport(dedupReport(2))  // stale: 10-2 >= window 4
	l.HandleReport(dedupReport(9))  // reordered, admitted

	if !waitFor(t, 2*time.Second, func() bool { return len(l.Decisions()) == 3 }) {
		t.Fatalf("decisions = %d, want 3 (dup and stale suppressed)", len(l.Decisions()))
	}
	if l.Duplicates.Load() != 1 || l.StaleReps.Load() != 1 || l.Reordered.Load() != 1 {
		t.Errorf("dup/stale/reordered = %d/%d/%d, want 1/1/1",
			l.Duplicates.Load(), l.StaleReps.Load(), l.Reordered.Load())
	}
	if l.SeqGaps.Load() != 8 {
		t.Errorf("seq gaps = %d, want 8", l.SeqGaps.Load())
	}
	// Report ledger: every report is a suppression or an ingest.
	if got := l.Duplicates.Load() + l.StaleReps.Load() + l.Snapshots.Load(); got != l.Reports.Load() {
		t.Errorf("report ledger open: %d suppressed+ingested != %d reports", got, l.Reports.Load())
	}
}

func TestLiveDedupOffAdmitsDuplicates(t *testing.T) {
	l, err := NewLive(liveConfig(attackDetector()))
	if err != nil {
		t.Fatal(err)
	}
	l.Start()
	defer l.Stop()
	l.HandleReport(dedupReport(1))
	l.HandleReport(dedupReport(1))
	if !waitFor(t, 2*time.Second, func() bool { return len(l.Decisions()) == 2 }) {
		t.Fatalf("decisions = %d, want 2 (dedup disabled by default)", len(l.Decisions()))
	}
	if l.Duplicates.Load() != 0 {
		t.Errorf("duplicates = %d with dedup off", l.Duplicates.Load())
	}
}

// slowModel delays predictions so the queue can fill.
type slowModel struct{ d time.Duration }

func (s slowModel) Name() string                 { return "slow" }
func (s slowModel) Fit([][]float64, []int) error { return nil }
func (s slowModel) Predict([]float64) int        { time.Sleep(s.d); return 0 }

func TestLiveShedsUnderOverload(t *testing.T) {
	cfg := liveConfig(slowModel{d: 20 * time.Millisecond})
	cfg.QueueCap = 4
	cfg.PollInterval = time.Millisecond
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l.Start()
	defer l.Stop()
	for i := 0; i < 100; i++ {
		l.Ingest(liveObs(uint16(i), 500, false, "benign"))
	}
	if !waitFor(t, 3*time.Second, func() bool {
		return int(l.Shed.Load())+len(l.Decisions()) >= 20
	}) {
		t.Fatal("pipeline made no progress")
	}
	if l.Shed.Load() == 0 {
		t.Error("no shedding despite tiny queue and slow model")
	}
}

func TestLiveStopIsIdempotentlySafe(t *testing.T) {
	l, err := NewLive(liveConfig(attackDetector()))
	if err != nil {
		t.Fatal(err)
	}
	l.Start()
	l.Ingest(liveObs(1, 40, true, "synscan"))
	l.Stop()
	// Ingest after stop must not panic (goroutines gone, DB still ok).
	l.Ingest(liveObs(2, 40, true, "synscan"))
}
