package core

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/obs"
	"github.com/amlight/intddos/internal/telemetry"
)

func TestLiveStopTwice(t *testing.T) {
	l, err := NewLive(liveConfig(attackDetector()))
	if err != nil {
		t.Fatal(err)
	}
	l.Start()
	l.Ingest(liveObs(1, 40, true, "synscan"))
	l.Stop()
	l.Stop() // second call must not panic on a closed quit channel
}

func TestLiveConcurrentStop(t *testing.T) {
	l, err := NewLive(liveConfig(attackDetector()))
	if err != nil {
		t.Fatal(err)
	}
	l.Start()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); l.Stop() }()
	}
	wg.Wait()
}

// TestLiveConcurrentReportsAndDecisions hammers HandleReport, Ingest,
// and Decisions from many goroutines at once; run under -race this is
// the pipeline's concurrency contract test.
func TestLiveConcurrentReportsAndDecisions(t *testing.T) {
	l, err := NewLive(liveConfig(attackDetector()))
	if err != nil {
		t.Fatal(err)
	}
	l.Start()
	defer l.Stop()

	const writers, readers, per = 4, 2, 100
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					_ = l.Decisions()
					_ = l.MetricsSnapshot()
				}
			}
		}()
	}
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if i%2 == 0 {
					l.Ingest(liveObs(uint16(2000+g), 1000, false, "benign"))
				} else {
					rep := &telemetry.Report{
						Src: netip.MustParseAddr("10.0.0.1"), Dst: netip.MustParseAddr("10.0.0.2"),
						SrcPort: uint16(3000 + g), DstPort: 80, Proto: netsim.TCP, Length: 40,
						Hops:  []telemetry.HopMetadata{{QueueDepth: 1, IngressTS: 10, EgressTS: 20}},
						Truth: telemetry.Truth{Label: true, AttackType: "synscan"},
					}
					l.HandleReport(rep)
				}
			}
		}(g)
	}
	// Wait for the writers, then let readers overlap the drain.
	done := make(chan struct{})
	go func() {
		defer close(done)
		wg.Wait()
	}()
	want := writers * per
	if !waitFor(t, 10*time.Second, func() bool { return len(l.Decisions()) >= want }) {
		close(stop)
		<-done
		t.Fatalf("decisions = %d, want >= %d", len(l.Decisions()), want)
	}
	close(stop)
	<-done
}

func TestLiveWindowEviction(t *testing.T) {
	cfg := liveConfig(attackDetector())
	cfg.FlowIdleTimeout = 50 * time.Millisecond
	cfg.SweepInterval = 10 * time.Millisecond
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l.Start()
	defer l.Stop()

	for i := 0; i < 8; i++ {
		l.Ingest(liveObs(uint16(100+i), 40, true, "synflood"))
	}
	if !waitFor(t, 2*time.Second, func() bool { return len(l.Decisions()) == 8 }) {
		t.Fatalf("decisions = %d, want 8", len(l.Decisions()))
	}
	if l.windowCount() == 0 {
		t.Fatal("no vote windows created")
	}
	// Idle past the TTL: windows, table state, and DB records go.
	if !waitFor(t, 3*time.Second, func() bool {
		return l.windowCount() == 0 && l.tables.Len() == 0 && l.DB.FlowCount() == 0
	}) {
		t.Fatalf("not evicted: windows=%d table=%d dbflows=%d",
			l.windowCount(), l.tables.Len(), l.DB.FlowCount())
	}
	if l.Evictions.Load() == 0 {
		t.Error("eviction atomic not incremented")
	}
	snap := l.MetricsSnapshot()
	if snap.Counters["intddos_evictions_total"] == 0 {
		t.Error("intddos_evictions_total not incremented")
	}
}

func TestLiveMetricsMirrorPipeline(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := liveConfig(attackDetector())
	cfg.Registry = reg
	cfg.TraceSampleEvery = 1 // trace everything
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if l.Obs() != reg {
		t.Fatal("Obs() does not return the provided registry")
	}
	l.Start()
	defer l.Stop()

	for i := 0; i < 6; i++ {
		l.Ingest(liveObs(9, 40, true, "synflood"))
	}
	if !waitFor(t, 3*time.Second, func() bool { return len(l.Decisions()) == 6 }) {
		t.Fatalf("decisions = %d, want 6", len(l.Decisions()))
	}

	s := l.MetricsSnapshot()
	if got := s.Counters["intddos_snapshots_total"]; got != l.Snapshots.Load() {
		t.Errorf("snapshots counter = %d, atomic = %d", got, l.Snapshots.Load())
	}
	if got := s.Counters["intddos_predictions_total"]; got != 6 {
		t.Errorf("predictions counter = %d", got)
	}
	if got := s.Counters[`intddos_decisions_total{attack_type="synflood"}`]; got != 6 {
		t.Errorf("per-type decisions = %d (counters: %v)", got, s.Counters)
	}
	if s.Counters["intddos_polls_total"] == 0 {
		t.Error("no polls counted")
	}
	if h, ok := s.Histogram("intddos_predict_latency_seconds"); !ok || h.Count != 6 {
		t.Errorf("predict latency histogram count = %d", h.Count)
	}
	for _, stage := range []string{"ingest", "journal_wait", "queue_wait", "scale_predict", "vote"} {
		h, ok := s.Histogram(`intddos_stage_seconds{stage="` + stage + `"}`)
		if !ok || h.Count == 0 {
			t.Errorf("stage %q histogram empty", stage)
		}
	}
	if h, ok := s.Histogram("intddos_store_upsert_seconds"); !ok || h.Count == 0 {
		t.Error("store upsert histogram empty")
	}
	if _, ok := s.Gauges["intddos_queue_depth"]; !ok {
		t.Error("queue depth gauge missing")
	}
	if got := s.Gauges["intddos_queue_capacity"]; got != float64(l.cfg.QueueCap) {
		t.Errorf("queue capacity gauge = %v", got)
	}

	traces := reg.Tracer("intddos_pipeline", 0, 0).Recent()
	if len(traces) == 0 {
		t.Fatal("no traces sampled at 1-in-1")
	}
	tr := traces[len(traces)-1]
	if len(tr.Stages) != 4 {
		t.Errorf("trace stages = %+v", tr.Stages)
	}
}

func TestLiveMisclassCounter(t *testing.T) {
	// attackDetector flags small packets; a large benign packet labeled
	// as attack ground truth will be misclassified.
	l, err := NewLive(liveConfig(attackDetector()))
	if err != nil {
		t.Fatal(err)
	}
	l.Start()
	defer l.Stop()
	l.Ingest(liveObs(5, 1500, true, "slowloris")) // big packet → predicted benign, truth attack
	if !waitFor(t, 2*time.Second, func() bool { return len(l.Decisions()) == 1 }) {
		t.Fatal("no decision")
	}
	s := l.MetricsSnapshot()
	if got := s.Counters[`intddos_misclassified_total{attack_type="slowloris"}`]; got != 1 {
		t.Errorf("misclassified counter = %d (counters %v)", got, s.Counters)
	}
}
