package core

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"github.com/amlight/intddos/internal/checkpoint"
	"github.com/amlight/intddos/internal/flow"
	"github.com/amlight/intddos/internal/ml"
)

// RestoreSummary describes the checkpoint NewLive resumed from.
type RestoreSummary struct {
	// Path and Seq identify the checkpoint file loaded.
	Path string
	Seq  uint64
	// TakenAtUnixNano is when the crashed process wrote it.
	TakenAtUnixNano int64

	// Flows counts flow-table records restored; StoreFlows database
	// records; JournalPending journal entries written before the crash
	// but not yet polled — the pollers pick them up on the first tick,
	// so every pre-crash record ends decided, shed, abandoned, or
	// restored-pending, never silently gone.
	Flows          int
	StoreFlows     int
	JournalPending int
	// Windows counts restored vote windows: flows already voted keep
	// their history, so the first post-restore decision continues the
	// window instead of re-starting it (no double-predictions).
	Windows int
	// Predictions is the restored prediction-log length.
	Predictions int
}

// Restore returns what NewLive loaded from CheckpointDir, or nil on a
// fresh boot.
func (l *Live) Restore() *RestoreSummary { return l.restored }

// bundleFingerprint hashes the model/scaler/feature bundle a pipeline
// runs: model names in ensemble order, feature IDs, and the exact
// bits of the scaler's parameters. A checkpoint carries the
// fingerprint of the bundle that produced its votes; restoring under
// a different bundle would splice incomparable votes into the same
// windows, so the restore path refuses on mismatch.
func bundleFingerprint(models []ml.Classifier, scaler *ml.StandardScaler, features flow.FeatureSet) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (56 - 8*i))
		}
		h.Write(buf[:])
	}
	for _, m := range models {
		h.Write([]byte(m.Name()))
		h.Write([]byte{0})
	}
	for _, f := range features {
		w64(uint64(f))
	}
	for _, v := range scaler.Mean {
		w64(math.Float64bits(v))
	}
	for _, v := range scaler.Std {
		w64(math.Float64bits(v))
	}
	return h.Sum64()
}

// restoreLatest loads the newest valid checkpoint in dir into the
// freshly built (not yet started) pipeline. A missing or empty dir is
// a clean first boot; a dir holding only corrupt files, or a snapshot
// from an incompatible pipeline (different shard count, model/scaler
// bundle, or feature width), is a hard error — resuming with wrong
// state would be worse than not resuming.
func (l *Live) restoreLatest(dir string) error {
	snap, path, ok, err := checkpoint.Latest(dir)
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	if snap.Shards != l.nShards {
		return fmt.Errorf("core: checkpoint %s was taken at %d shards, pipeline has %d — restore with matching -shards",
			path, snap.Shards, l.nShards)
	}
	if snap.Fingerprint != l.fingerprint {
		return fmt.Errorf("core: checkpoint %s was taken under a different model/scaler bundle (fingerprint %016x, pipeline %016x)",
			path, snap.Fingerprint, l.fingerprint)
	}
	if want := len(l.cfg.Scaler.Mean); snap.FeatureWidth != want {
		return fmt.Errorf("core: checkpoint %s has feature width %d, pipeline expects %d",
			path, snap.FeatureWidth, want)
	}
	sum := &RestoreSummary{Path: path, Seq: snap.Seq, TakenAtUnixNano: snap.TakenAtUnixNano}
	for s := range snap.ShardStates {
		sh := &snap.ShardStates[s]
		if err := l.tables.RestoreShard(s, sh.Table); err != nil {
			return fmt.Errorf("core: restore %s: %w", path, err)
		}
		if err := l.ckptStore.ImportShard(s, sh.Store); err != nil {
			return fmt.Errorf("core: restore %s: %w", path, err)
		}
		sum.Flows += len(sh.Table)
		sum.StoreFlows += len(sh.Store.Flows)
		sum.JournalPending += len(sh.Store.Journal)
		sum.Predictions += len(sh.Store.Preds)
	}
	for _, w := range snap.Windows {
		shard := w.Key.Shard(l.nShards)
		l.shards[shard].windows[w.Key] = append([]int(nil), w.Votes...)
	}
	sum.Windows = len(snap.Windows)
	if len(snap.Predictions) > 0 {
		// Version-1 snapshot: the prediction log is one global section;
		// ImportPredictions routes it onto the per-shard logs.
		l.ckptStore.ImportPredictions(snap.Predictions)
		sum.Predictions += len(snap.Predictions)
	}
	l.ckptSeq.Store(snap.Seq)
	l.restored = sum
	l.met.restores.Inc()
	l.met.restoredRecs.With("flows").Add(int64(sum.Flows))
	l.met.restoredRecs.With("store_flows").Add(int64(sum.StoreFlows))
	l.met.restoredRecs.With("journal_pending").Add(int64(sum.JournalPending))
	l.met.restoredRecs.With("windows").Add(int64(sum.Windows))
	l.met.restoredRecs.With("predictions").Add(int64(sum.Predictions))
	l.event("checkpoint restored", "component", "checkpoint",
		"path", path, "seq", snap.Seq, "flows", sum.Flows,
		"journal_pending", sum.JournalPending, "windows", sum.Windows)
	return nil
}

// ErrBarrierTimeout reports that the checkpoint barrier could not
// quiesce the pipeline: records handed to the workers did not finish
// within CheckpointBarrierTimeout (a stalled or permanently down
// worker). The checkpoint is skipped — a snapshot with in-flight
// records would restore them nowhere.
var ErrBarrierTimeout = errors.New("core: checkpoint barrier timed out waiting for in-flight records")

// settleIngest waits until every observation accepted by the ingest
// demux before this call is journaled. Runs before the capture takes
// the shard barriers (the ingesters must be free to drain); reports
// accepted while it waits ride the snapshot or the journal tail, both
// fine — what must not happen is an accepted report vanishing into a
// demux queue the crash model discards.
func (l *Live) settleIngest() error {
	target := l.ingestAccepted.Load()
	deadline := time.Now().Add(l.cfg.CheckpointBarrierTimeout)
	for l.ingestDone.Load() < target {
		if time.Now().After(deadline) {
			return fmt.Errorf("%w (accepted=%d journaled=%d)",
				ErrBarrierTimeout, target, l.ingestDone.Load())
		}
		time.Sleep(200 * time.Microsecond)
	}
	return nil
}

// settleInflight waits until every record the pollers handed off is
// accounted — decided, shed, or abandoned. Callers hold every shard's
// ckptMu write lock, so pollers, ingest, and the sweeper are parked
// and the counts can only converge.
func (l *Live) settleInflight() error {
	deadline := time.Now().Add(l.cfg.CheckpointBarrierTimeout)
	for {
		if l.Polled.Load() == l.completed.Load()+l.Shed.Load()+l.Abandoned.Load() {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%w (polled=%d completed=%d shed=%d abandoned=%d)",
				ErrBarrierTimeout, l.Polled.Load(), l.completed.Load(), l.Shed.Load(), l.Abandoned.Load())
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// CaptureCheckpoint quiesces the pipeline and captures a consistent
// snapshot of its durable state: it first drains the ingest demux of
// everything accepted so far, then blocks new ingest, polling, and
// sweeps (per-shard write locks the hot paths hold for reads per
// operation), waits for in-flight records to finish, and exports
// every shard's flow table and store state (per-shard prediction logs
// included) and the vote windows. The freeze lasts for the export
// only; encoding and disk IO happen after the locks are released.
func (l *Live) CaptureCheckpoint() (*checkpoint.Snapshot, error) {
	if l.ckptStore == nil {
		return nil, errors.New("core: store does not support checkpointing")
	}
	if err := l.settleIngest(); err != nil {
		return nil, err
	}
	// Take every shard's barrier in ascending order — the fixed order
	// the sweeper also uses, so the acquisition set is acyclic.
	for s := range l.ckptMu {
		l.ckptMu[s].Lock()
	}
	defer func() {
		for s := range l.ckptMu {
			l.ckptMu[s].Unlock()
		}
	}()
	if err := l.settleInflight(); err != nil {
		return nil, err
	}
	snap := &checkpoint.Snapshot{
		Shards:          l.nShards,
		Fingerprint:     l.fingerprint,
		FeatureWidth:    len(l.cfg.Scaler.Mean),
		Seq:             l.ckptSeq.Add(1),
		TakenAtUnixNano: time.Now().UnixNano(),
		ShardStates:     make([]checkpoint.ShardState, l.nShards),
	}
	for s := 0; s < l.nShards; s++ {
		snap.ShardStates[s] = checkpoint.ShardState{
			Table: l.tables.ExportShard(s),
			Store: l.ckptStore.ExportShard(s),
		}
	}
	for _, sh := range l.shards {
		sh.mu.Lock()
		for k, w := range sh.windows {
			snap.Windows = append(snap.Windows, checkpoint.Window{Key: k, Votes: append([]int(nil), w...)})
		}
		sh.mu.Unlock()
	}
	// Predictions travel inside each ShardExport since format version
	// 2; the snapshot-level log exists only for version-1 files.
	return snap, nil
}

// WriteCheckpoint captures a snapshot and writes it atomically into
// CheckpointDir, pruning old files down to CheckpointKeep. Returns
// the file path and encoded size. Failures (including a barrier that
// cannot quiesce) are counted in intddos_checkpoint_failures_total
// and surfaced; the previous checkpoint on disk is untouched either
// way.
func (l *Live) WriteCheckpoint() (string, int, error) {
	if l.cfg.CheckpointDir == "" {
		return "", 0, errors.New("core: no CheckpointDir configured")
	}
	start := time.Now()
	snap, err := l.CaptureCheckpoint()
	if err != nil {
		l.met.ckptFailures.Inc()
		l.event("checkpoint failed", "component", "checkpoint", "err", err.Error())
		return "", 0, err
	}
	path, n, err := checkpoint.WriteDir(l.cfg.CheckpointDir, snap)
	if err != nil {
		l.met.ckptFailures.Inc()
		l.event("checkpoint failed", "component", "checkpoint", "err", err.Error())
		return "", 0, err
	}
	l.Checkpoints.Add(1)
	l.met.ckpts.Inc()
	l.met.ckptBytes.Add(int64(n))
	l.met.ckptDuration.Since(start)
	l.met.ckptLastSuccess.Set(float64(time.Now().Unix()))
	l.event("checkpoint written", "component", "checkpoint",
		"path", path, "seq", snap.Seq, "bytes", n)
	if err := checkpoint.Prune(l.cfg.CheckpointDir, l.cfg.CheckpointKeep); err != nil {
		// The new checkpoint is durable; failing retention is a
		// disk-hygiene problem, not a lost snapshot.
		l.met.ckptFailures.Inc()
	}
	return path, n, nil
}

// checkpointer writes a checkpoint every CheckpointEvery until Stop.
func (l *Live) checkpointer() {
	defer l.pollWg.Done()
	ticker := time.NewTicker(l.cfg.CheckpointEvery)
	defer ticker.Stop()
	for {
		select {
		case <-l.quit:
			return
		case <-ticker.C:
			// Errors are counted and reported via metrics/healthz; the
			// next tick retries.
			l.WriteCheckpoint()
		}
	}
}
