package core

import (
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"time"

	"github.com/amlight/intddos/internal/checkpoint"
	"github.com/amlight/intddos/internal/flow"
	"github.com/amlight/intddos/internal/ml"
	"github.com/amlight/intddos/internal/store"
)

// RestoreSummary describes the checkpoint NewLive resumed from.
type RestoreSummary struct {
	// Path and Seq identify the checkpoint file loaded.
	Path string
	Seq  uint64
	// TakenAtUnixNano is when the crashed process wrote it.
	TakenAtUnixNano int64

	// Flows counts flow-table records restored; StoreFlows database
	// records; JournalPending journal entries written before the crash
	// but not yet polled — the pollers pick them up on the first tick,
	// so every pre-crash record ends decided, shed, abandoned, or
	// restored-pending, never silently gone.
	Flows          int
	StoreFlows     int
	JournalPending int
	// Windows counts restored vote windows: flows already voted keep
	// their history, so the first post-restore decision continues the
	// window instead of re-starting it (no double-predictions).
	Windows int
	// Predictions is the restored prediction-log length.
	Predictions int
}

// Restore returns what NewLive loaded from CheckpointDir, or nil on a
// fresh boot.
func (l *Live) Restore() *RestoreSummary { return l.restored }

// bundleFingerprint hashes the model/scaler/feature bundle a pipeline
// runs: model names in ensemble order, feature IDs, and the exact
// bits of the scaler's parameters. A checkpoint carries the
// fingerprint of the bundle that produced its votes; restoring under
// a different bundle would splice incomparable votes into the same
// windows, so the restore path refuses on mismatch.
func bundleFingerprint(models []ml.Classifier, scaler *ml.StandardScaler, features flow.FeatureSet) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	w64 := func(v uint64) {
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (56 - 8*i))
		}
		h.Write(buf[:])
	}
	for _, m := range models {
		h.Write([]byte(m.Name()))
		h.Write([]byte{0})
	}
	for _, f := range features {
		w64(uint64(f))
	}
	for _, v := range scaler.Mean {
		w64(math.Float64bits(v))
	}
	for _, v := range scaler.Std {
		w64(math.Float64bits(v))
	}
	return h.Sum64()
}

// restoreLatest loads the newest restorable state in dir into the
// freshly built (not yet started) pipeline: the newest valid
// checkpoint plus — when it is a delta — its verified parent chain,
// replayed base-first. A missing or empty dir is a clean first boot;
// a dir holding only corrupt files, or a snapshot from an
// incompatible pipeline (different shard count, model/scaler bundle,
// or feature width), is a hard error — resuming with wrong state
// would be worse than not resuming. A chain broken mid-delta (the
// crash-during-checkpoint case) has already been skipped by
// LatestChain in favor of the longest intact history.
func (l *Live) restoreLatest(dir string) error {
	chain, paths, ok, err := checkpoint.LatestChain(dir)
	if err != nil {
		return err
	}
	if !ok {
		return nil
	}
	for i, snap := range chain {
		path := paths[i]
		if snap.Shards != l.nShards {
			return fmt.Errorf("core: checkpoint %s was taken at %d shards, pipeline has %d — restore with matching -shards",
				path, snap.Shards, l.nShards)
		}
		if snap.Fingerprint != l.fingerprint {
			return fmt.Errorf("core: checkpoint %s was taken under a different model/scaler bundle (fingerprint %016x, pipeline %016x)",
				path, snap.Fingerprint, l.fingerprint)
		}
		if want := len(l.cfg.Scaler.Mean); snap.FeatureWidth != want {
			return fmt.Errorf("core: checkpoint %s has feature width %d, pipeline expects %d",
				path, snap.FeatureWidth, want)
		}
	}
	base := chain[0]
	basePath := paths[0]
	for s := range base.ShardStates {
		sh := &base.ShardStates[s]
		if err := l.tables.RestoreShard(s, sh.Table); err != nil {
			return fmt.Errorf("core: restore %s: %w", basePath, err)
		}
		if err := l.ckptStore.ImportShard(s, sh.Store); err != nil {
			return fmt.Errorf("core: restore %s: %w", basePath, err)
		}
	}
	for _, w := range base.Windows {
		shard := w.Key.Shard(l.nShards)
		l.shards[shard].windows[w.Key] = append([]int(nil), w.Votes...)
	}
	if len(base.Predictions) > 0 {
		// Version-1 snapshot: the prediction log is one global section;
		// ImportPredictions routes it onto the per-shard logs.
		l.ckptStore.ImportPredictions(base.Predictions)
	}
	for i, d := range chain[1:] {
		path := paths[i+1]
		if l.deltaStore == nil {
			return fmt.Errorf("core: restore %s: store does not support incremental checkpoints", path)
		}
		for s := range d.ShardStates {
			sh := &d.ShardStates[s]
			if err := l.tables.RestoreShardDelta(s, sh.Table, sh.Removed); err != nil {
				return fmt.Errorf("core: restore %s: %w", path, err)
			}
			err := l.deltaStore.ApplyShardDelta(s, store.ShardDeltaExport{
				Flows:   sh.Store.Flows,
				Removed: sh.Removed,
				Journal: sh.Store.Journal,
				Seq:     sh.Store.Seq,
				Preds:   sh.Store.Preds,
			})
			if err != nil {
				return fmt.Errorf("core: restore %s: %w", path, err)
			}
		}
		// Removals first, then upserts — the same order the shard apply
		// uses, so a window deleted and re-voted within one delta
		// interval survives.
		for _, k := range d.RemovedWindows {
			delete(l.shards[k.Shard(l.nShards)].windows, k)
		}
		for _, w := range d.Windows {
			shard := w.Key.Shard(l.nShards)
			l.shards[shard].windows[w.Key] = append([]int(nil), w.Votes...)
		}
	}
	newest := chain[len(chain)-1]
	path := paths[len(paths)-1]
	sum := &RestoreSummary{Path: path, Seq: newest.Seq, TakenAtUnixNano: newest.TakenAtUnixNano}
	// Counts come from the replayed state, not the files — with a delta
	// chain the same record may appear in several links.
	sum.Flows = l.tables.Len()
	sum.StoreFlows = l.rawDB.FlowCount()
	sum.JournalPending = l.rawDB.JournalLen()
	sum.Predictions = l.rawDB.PredictionCount()
	sum.Windows = l.windowCount()
	l.ckptSeq.Store(newest.Seq)
	l.restored = sum
	l.met.restores.Inc()
	l.met.restoredRecs.With("flows").Add(int64(sum.Flows))
	l.met.restoredRecs.With("store_flows").Add(int64(sum.StoreFlows))
	l.met.restoredRecs.With("journal_pending").Add(int64(sum.JournalPending))
	l.met.restoredRecs.With("windows").Add(int64(sum.Windows))
	l.met.restoredRecs.With("predictions").Add(int64(sum.Predictions))
	l.event("checkpoint restored", "component", "checkpoint",
		"path", path, "seq", newest.Seq, "chain", len(chain), "flows", sum.Flows,
		"journal_pending", sum.JournalPending, "windows", sum.Windows)
	return nil
}

// ErrBarrierTimeout reports that the checkpoint barrier could not
// quiesce the pipeline: records handed to the workers did not finish
// within CheckpointBarrierTimeout (a stalled or permanently down
// worker). The checkpoint is skipped — a snapshot with in-flight
// records would restore them nowhere.
var ErrBarrierTimeout = errors.New("core: checkpoint barrier timed out waiting for in-flight records")

// settleIngest waits until every observation accepted by the ingest
// demux before this call is journaled. Runs before the capture takes
// the shard barriers (the ingesters must be free to drain); reports
// accepted while it waits ride the snapshot or the journal tail, both
// fine — what must not happen is an accepted report vanishing into a
// demux queue the crash model discards.
func (l *Live) settleIngest() error {
	target := l.ingestAccepted.Load()
	deadline := time.Now().Add(l.cfg.CheckpointBarrierTimeout)
	for l.ingestDone.Load() < target {
		if time.Now().After(deadline) {
			return fmt.Errorf("%w (accepted=%d journaled=%d)",
				ErrBarrierTimeout, target, l.ingestDone.Load())
		}
		time.Sleep(200 * time.Microsecond)
	}
	return nil
}

// settleInflight waits until every record the pollers handed off is
// accounted — decided, shed, or abandoned. Callers hold every shard's
// ckptMu write lock, so pollers, ingest, and the sweeper are parked
// and the counts can only converge.
func (l *Live) settleInflight() error {
	deadline := time.Now().Add(l.cfg.CheckpointBarrierTimeout)
	for {
		if l.Polled.Load() == l.completed.Load()+l.Shed.Load()+l.Abandoned.Load() {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%w (polled=%d completed=%d shed=%d abandoned=%d)",
				ErrBarrierTimeout, l.Polled.Load(), l.completed.Load(), l.Shed.Load(), l.Abandoned.Load())
		}
		time.Sleep(200 * time.Microsecond)
	}
}

// CaptureCheckpoint quiesces the pipeline and captures a consistent
// full snapshot of its durable state: it first drains the ingest
// demux of everything accepted so far, then blocks new ingest,
// polling, and sweeps (per-shard write locks the hot paths hold for
// reads per operation), waits for in-flight records to finish, and
// exports every shard's flow table and store state (per-shard
// prediction logs included) and the vote windows. The freeze lasts
// for the export only; sorting, encoding, and disk IO happen after
// the locks are released.
func (l *Live) CaptureCheckpoint() (*checkpoint.Snapshot, error) {
	return l.capture(false, nil)
}

// CaptureDelta captures an incremental snapshot under the same
// barrier: only the records, windows, and log tails dirtied since the
// previous capture, plus the keys removed since it. The caller owns
// the parent link (BaseSeq, BaseCRC) — WriteCheckpoint fills it from
// the newest file it wrote. A delta capture consumes the dirty marks
// whether or not the snapshot reaches disk, so a capture that is then
// dropped must be followed by a full one.
func (l *Live) CaptureDelta() (*checkpoint.Snapshot, error) {
	return l.capture(true, nil)
}

// LastCheckpointBarrier returns the barrier hold of the most recent
// capture — how long the per-shard locks were held, the pause the
// pipeline actually feels (encode and IO run outside it).
func (l *Live) LastCheckpointBarrier() time.Duration {
	return time.Duration(l.lastBarrierNs.Load())
}

// captureScratch is the previous full capture's export arrays,
// recycled into the next one (see Live.ckptScratch).
type captureScratch struct {
	tables  []([]flow.StateSnapshot)
	stores  []store.ShardExport
	windows []checkpoint.Window
	votes   []int
}

// intoExporter is the optional scratch-reusing export surface of a
// store (DB and ShardedDB implement it); stores without it fall back
// to plain ExportShard.
type intoExporter interface {
	ExportShardInto(shard int, pre store.ShardExport) store.ShardExport
}

func (l *Live) capture(delta bool, scratch *captureScratch) (*checkpoint.Snapshot, error) {
	if l.ckptStore == nil {
		return nil, errors.New("core: store does not support checkpointing")
	}
	if delta && (l.deltaStore == nil || !l.deltaTrack) {
		return nil, errors.New("core: delta capture requires a delta-capable store with tracking enabled")
	}
	if err := l.settleIngest(); err != nil {
		return nil, err
	}
	// The barrier hold is timed from before the first lock acquisition
	// — waiting writers already block new readers, so acquisition time
	// is pause the pipeline feels too.
	barrier := time.Now()
	// Take every shard's barrier in ascending order — the fixed order
	// the sweeper also uses, so the acquisition set is acyclic.
	for s := range l.ckptMu {
		l.ckptMu[s].Lock()
	}
	snap, err := l.captureLocked(delta, scratch)
	for s := range l.ckptMu {
		l.ckptMu[s].Unlock()
	}
	hold := time.Since(barrier)
	l.lastBarrierNs.Store(int64(hold))
	l.met.ckptBarrier.Observe(hold.Seconds())
	if err != nil {
		return nil, err
	}
	// Canonical order is produced outside the barrier: the encoder
	// sorts everything it writes, and sorting here besides makes two
	// captures of identical state equal as values (map iteration order
	// must never leak into a snapshot).
	checkpoint.SortWindows(snap.Windows)
	checkpoint.SortKeys(snap.RemovedWindows)
	for s := range snap.ShardStates {
		checkpoint.SortKeys(snap.ShardStates[s].Removed)
	}
	return snap, nil
}

// captureLocked exports the consistent cut. Callers hold every
// shard's ckptMu write lock; everything here must stay proportional
// to what is exported — this is the region the barrier histogram
// times.
func (l *Live) captureLocked(delta bool, scratch *captureScratch) (*checkpoint.Snapshot, error) {
	if err := l.settleInflight(); err != nil {
		return nil, err
	}
	snap := &checkpoint.Snapshot{
		Shards:          l.nShards,
		Fingerprint:     l.fingerprint,
		FeatureWidth:    len(l.cfg.Scaler.Mean),
		Seq:             l.ckptSeq.Add(1),
		TakenAtUnixNano: time.Now().UnixNano(),
		Delta:           delta,
		ShardStates:     make([]checkpoint.ShardState, l.nShards),
	}
	for s := 0; s < l.nShards; s++ {
		if delta {
			states, tableRemoved := l.tables.ExportShardDelta(s)
			d := l.deltaStore.ExportShardDelta(s)
			snap.ShardStates[s] = checkpoint.ShardState{
				Table: states,
				Store: store.ShardExport{Flows: d.Flows, Journal: d.Journal, Seq: d.Seq, Preds: d.Preds},
				// Table and store evict together (onEvict), but a
				// record can exist in only one layer at the cut's edge;
				// the union removes it from both on replay.
				Removed: unionKeys(tableRemoved, d.Removed),
			}
		} else {
			var preTable []flow.StateSnapshot
			var preStore store.ShardExport
			if scratch != nil && s < len(scratch.tables) {
				preTable = scratch.tables[s]
				preStore = scratch.stores[s]
			}
			st := checkpoint.ShardState{
				Table: l.tables.ExportShardInto(s, preTable),
			}
			if into, ok := l.ckptStore.(intoExporter); ok {
				st.Store = into.ExportShardInto(s, preStore)
			} else {
				st.Store = l.ckptStore.ExportShard(s)
			}
			snap.ShardStates[s] = st
		}
	}
	// Vote copies land in one flat slab with each Window holding a
	// capped sub-slice — one allocation (amortized) instead of one per
	// window, and both arrays recycle through the scratch. A mid-loop
	// slab growth strands earlier windows on the previous backing
	// array; that is still correct (the slices are never written
	// again), and in steady state the recycled slab is already sized.
	wins, votes := snap.Windows, []int(nil)
	if !delta && scratch != nil {
		wins, votes = scratch.windows[:0], scratch.votes[:0]
	}
	for _, sh := range l.shards {
		sh.mu.Lock()
		if delta {
			for k := range sh.dirty {
				if w, ok := sh.windows[k]; ok {
					off := len(votes)
					votes = append(votes, w...)
					wins = append(wins, checkpoint.Window{Key: k, Votes: votes[off:len(votes):len(votes)]})
				}
			}
			for k := range sh.removed {
				snap.RemovedWindows = append(snap.RemovedWindows, k)
			}
		} else {
			for k, w := range sh.windows {
				off := len(votes)
				votes = append(votes, w...)
				wins = append(wins, checkpoint.Window{Key: k, Votes: votes[off:len(votes):len(votes)]})
			}
		}
		if l.deltaTrack {
			sh.dirty = make(map[flow.Key]struct{})
			sh.removed = make(map[flow.Key]struct{})
		}
		sh.mu.Unlock()
	}
	snap.Windows = wins
	if scratch != nil {
		// The slab's base is unrecoverable from the capped sub-slices
		// in snap.Windows, so the detached scratch carries it out for
		// WriteCheckpoint to thread into the next capture's scratch.
		scratch.votes = votes
	}
	// Predictions travel inside each ShardExport since format version
	// 2; the snapshot-level log exists only for version-1 files.
	return snap, nil
}

// unionKeys merges two removal lists, deduplicating keys present in
// both.
func unionKeys(a, b []flow.Key) []flow.Key {
	if len(a) == 0 {
		return b
	}
	if len(b) == 0 {
		return a
	}
	seen := make(map[flow.Key]struct{}, len(a)+len(b))
	out := make([]flow.Key, 0, len(a)+len(b))
	for _, ks := range [2][]flow.Key{a, b} {
		for _, k := range ks {
			if _, ok := seen[k]; ok {
				continue
			}
			seen[k] = struct{}{}
			out = append(out, k)
		}
	}
	return out
}

// WriteCheckpoint captures a snapshot and writes it atomically into
// CheckpointDir, pruning old files down to CheckpointKeep (plus any
// chain ancestors a retained delta needs). With CheckpointFullEvery
// > 1 and a base already on disk, the capture is an incremental delta
// chained to the newest file by (seq, CRC); every Nth checkpoint — and
// the first one after a restore, a boot, or a failed write — is full.
// Returns the file path and encoded size. Failures (including a
// barrier that cannot quiesce) are counted in
// intddos_checkpoint_failures_total and surfaced; the previous
// checkpoint on disk is untouched either way.
func (l *Live) WriteCheckpoint() (string, int, error) {
	if l.cfg.CheckpointDir == "" {
		return "", 0, errors.New("core: no CheckpointDir configured")
	}
	l.ckptWriteMu.Lock()
	defer l.ckptWriteMu.Unlock()
	start := time.Now()
	delta := l.deltaTrack && l.haveBase &&
		l.cfg.CheckpointFullEvery > 1 && l.sinceFull+1 < l.cfg.CheckpointFullEvery
	// A full capture may reuse the previous full capture's arrays —
	// that snapshot was encoded to disk and dropped, so the memory is
	// dead, and reuse keeps the copy under the barrier in warm pages.
	// The scratch is detached first: if anything below fails, it is
	// simply not reclaimed (a failed write can leave encode goroutines
	// briefly reading the snapshot, so handing its arrays to the next
	// capture would race).
	var scratch *captureScratch
	if !delta {
		if l.ckptScratch == nil {
			l.ckptScratch = &captureScratch{}
		}
		scratch, l.ckptScratch = l.ckptScratch, nil
	}
	snap, err := l.capture(delta, scratch)
	if err != nil {
		// Settle failures happen before any export, so the dirty marks
		// are untouched and the chain state stays valid.
		l.met.ckptFailures.Inc()
		l.event("checkpoint failed", "component", "checkpoint", "err", err.Error())
		return "", 0, err
	}
	if delta {
		snap.BaseSeq = l.lastCkptSeq
		snap.BaseCRC = l.lastCkptCRC
	}
	if l.ckptPostCapture != nil {
		l.ckptPostCapture(snap)
	}
	if l.encScratch == nil {
		l.encScratch = &checkpoint.EncodeScratch{}
	}
	path, n, crc, err := checkpoint.WriteDirOpts(l.cfg.CheckpointDir, snap,
		checkpoint.EncodeOptions{Compress: l.cfg.CheckpointCompress, Scratch: l.encScratch})
	if err != nil {
		l.met.ckptFailures.Inc()
		l.event("checkpoint failed", "component", "checkpoint", "err", err.Error())
		// The capture consumed the dirty marks but never reached disk;
		// a delta chained past this hole would lose those writes, so
		// the next checkpoint is forced full.
		l.haveBase = false
		return "", 0, err
	}
	l.lastCkptSeq, l.lastCkptCRC = snap.Seq, crc
	if delta {
		l.sinceFull++
	} else {
		l.haveBase = true
		l.sinceFull = 0
		// The snapshot is on disk and nothing reads it anymore; its
		// arrays become the next full capture's scratch.
		re := &captureScratch{
			tables:  make([][]flow.StateSnapshot, len(snap.ShardStates)),
			stores:  make([]store.ShardExport, len(snap.ShardStates)),
			windows: snap.Windows,
			votes:   scratch.votes,
		}
		for s := range snap.ShardStates {
			re.tables[s] = snap.ShardStates[s].Table
			re.stores[s] = snap.ShardStates[s].Store
		}
		l.ckptScratch = re
	}
	l.Checkpoints.Add(1)
	l.met.ckpts.Inc()
	l.met.ckptBytes.Add(int64(n))
	l.met.ckptDuration.Since(start)
	l.met.ckptLastSuccess.Set(float64(time.Now().Unix()))
	l.event("checkpoint written", "component", "checkpoint",
		"path", path, "seq", snap.Seq, "bytes", n, "delta", delta)
	if err := checkpoint.Prune(l.cfg.CheckpointDir, l.cfg.CheckpointKeep); err != nil {
		// The new checkpoint is durable; failing retention is a
		// disk-hygiene problem, not a lost snapshot — counted apart
		// from write failures so an alert on the latter stays meaningful.
		l.met.ckptPruneFailures.Inc()
		l.event("checkpoint prune failed", "component", "checkpoint", "err", err.Error())
	}
	return path, n, nil
}

// checkpointer writes a checkpoint every CheckpointEvery until Stop.
func (l *Live) checkpointer() {
	defer l.pollWg.Done()
	ticker := time.NewTicker(l.cfg.CheckpointEvery)
	defer ticker.Stop()
	for {
		select {
		case <-l.quit:
			return
		case <-ticker.C:
			// Errors are counted and reported via metrics/healthz; the
			// next tick retries.
			l.WriteCheckpoint()
		}
	}
}
