package core

import (
	"fmt"
	"testing"
	"time"

	"github.com/amlight/intddos/internal/ml"
	"github.com/amlight/intddos/internal/netsim"
)

// probaModel wraps a stubModel with a probability path so it can serve
// cascade stage 0: conf is the confidence |2p-1| of every answer, so
// conf=1 saturates (exits at any threshold) and conf=0.5 stays below a
// 0.9 threshold (everything falls through).
type probaModel struct {
	stubModel
	conf float64
}

func (p probaModel) Proba(x []float64) float64 {
	if p.Predict(x) == 1 {
		return 0.5 + p.conf/2
	}
	return 0.5 - p.conf/2
}

func (p probaModel) PredictProbaBatch(X [][]float64) []float64 {
	out := make([]float64, len(X))
	for i, x := range X {
		out[i] = p.Proba(x)
	}
	return out
}

func (p probaModel) PredictBatch(X [][]float64) []int {
	out := make([]int, len(X))
	for i, x := range X {
		out[i] = p.Predict(x)
	}
	return out
}

var _ ml.BatchProbaClassifier = probaModel{}

// runMechanismTriage replays the batch_test workload through a
// simulated mechanism with the given triage settings and returns the
// full decision log.
func runMechanismTriage(t *testing.T, predictBatch, shards int, triage bool, threshold, conf float64) (*Mechanism, []Decision) {
	t.Helper()
	eng := netsim.NewEngine()
	cfg := testConfig(attackDetector())
	cfg.PredictBatch = predictBatch
	cfg.Shards = shards
	cfg.Triage = triage
	cfg.TriageThreshold = threshold
	if triage {
		cfg.TriageModel = probaModel{stubModel: attackDetector(), conf: conf}
	}
	m, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	for i := 0; i < 30; i++ {
		at := netsim.Time(i) * 50 * netsim.Microsecond
		var pi = simObs(uint16(7+i%3), at, 40, true, "synflood")
		if i%3 == 2 {
			pi = simObs(uint16(7+i%3), at, 1000, false, "benign")
		}
		eng.Schedule(at, func() { m.Observe(pi) })
	}
	eng.RunUntil(netsim.Second)
	return m, m.Decisions
}

func sameDecisions(t *testing.T, label string, base, got []Decision) {
	t.Helper()
	if len(got) != len(base) {
		t.Fatalf("%s: %d decisions, want %d", label, len(got), len(base))
	}
	for i := range base {
		b, g := base[i], got[i]
		if b.Key != g.Key || b.Seq != g.Seq || b.Label != g.Label ||
			b.At != g.At || b.Latency != g.Latency || b.Stage != g.Stage ||
			fmt.Sprint(b.Votes) != fmt.Sprint(g.Votes) {
			t.Errorf("%s: decision %d diverged:\nbase: %+v\ngot:  %+v", label, i, b, g)
		}
	}
}

// TestMechanismTriageInertBitIdentical pins the exact-mode property:
// with triage off, or wired in with a non-positive threshold (the
// cascade present but inert), the decision log is bit-identical —
// same keys, labels, votes, timestamps, and Stage 0 provenance — at
// every batch size and shard layout.
func TestMechanismTriageInertBitIdentical(t *testing.T) {
	_, base := runMechanismTriage(t, 1, 0, false, 0, 0)
	if len(base) != 30 {
		t.Fatalf("baseline decisions = %d, want 30", len(base))
	}
	for _, d := range base {
		if d.Stage != 0 {
			t.Fatalf("triage-off decision has Stage=%d, want 0", d.Stage)
		}
	}
	for _, batch := range []int{1, 8, 32} {
		for _, shards := range []int{0, 4} {
			m, got := runMechanismTriage(t, batch, shards, true, -1, 1)
			sameDecisions(t, fmt.Sprintf("inert batch=%d shards=%d", batch, shards), base, got)
			if m.TriageExited != 0 {
				t.Errorf("batch=%d shards=%d: inert cascade exited %d rows", batch, shards, m.TriageExited)
			}
			_, off := runMechanismTriage(t, batch, shards, false, 0, 0)
			sameDecisions(t, fmt.Sprintf("off batch=%d shards=%d", batch, shards), base, off)
		}
	}
}

// TestMechanismTriageStageProvenance runs a saturated stage-0 model:
// every row exits at stage 1 with a single-vote slice, and the labels
// match the full-ensemble baseline (the stub agrees with itself).
func TestMechanismTriageStageProvenance(t *testing.T) {
	_, base := runMechanismTriage(t, 8, 0, false, 0, 0)
	m, got := runMechanismTriage(t, 8, 0, true, 0.9, 1)
	if len(got) != len(base) {
		t.Fatalf("decisions = %d, want %d", len(got), len(base))
	}
	if m.TriageExited != len(got) || m.TriageFallthrough != 0 {
		t.Fatalf("exited=%d fallthrough=%d, want %d/0", m.TriageExited, m.TriageFallthrough, len(got))
	}
	for i := range got {
		if got[i].Stage != 1 {
			t.Errorf("decision %d Stage = %d, want 1", i, got[i].Stage)
		}
		if len(got[i].Votes) != 1 {
			t.Errorf("decision %d Votes = %v, want a single stage-0 vote", i, got[i].Votes)
		}
		if got[i].Label != base[i].Label || got[i].Key != base[i].Key {
			t.Errorf("decision %d label/key diverged from baseline", i)
		}
	}
}

// TestMechanismTriageLowConfidenceFallsThrough keeps the cascade below
// threshold: everything falls through to the full ensemble and the
// decision log matches the triage-off baseline exactly.
func TestMechanismTriageLowConfidenceFallsThrough(t *testing.T) {
	_, base := runMechanismTriage(t, 8, 0, false, 0, 0)
	m, got := runMechanismTriage(t, 8, 0, true, 0.9, 0.5)
	sameDecisions(t, "low confidence", base, got)
	if m.TriageExited != 0 || m.TriageFallthrough != len(got) {
		t.Fatalf("exited=%d fallthrough=%d, want 0/%d", m.TriageExited, m.TriageFallthrough, len(got))
	}
}

// TestMechanismTriageSketchVeto floods one flow past the sketch's
// minimum sample: once the stream's entropy collapses, confident
// benign verdicts are vetoed and fall through to the ensemble even at
// a saturated stage-0 confidence.
func TestMechanismTriageSketchVeto(t *testing.T) {
	const n = 900
	eng := netsim.NewEngine()
	cfg := testConfig(attackDetector())
	cfg.PredictBatch = 32
	cfg.Triage = true
	cfg.TriageThreshold = 0.9
	cfg.TriageModel = probaModel{stubModel: attackDetector(), conf: 1}
	m, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	for i := 0; i < n; i++ {
		at := netsim.Time(i) * 50 * netsim.Microsecond
		pi := simObs(7, at, 1000, false, "benign") // single benign flow
		eng.Schedule(at, func() { m.Observe(pi) })
	}
	eng.RunUntil(10 * netsim.Second)
	if len(m.Decisions) != n {
		t.Fatalf("decisions = %d, want %d", len(m.Decisions), n)
	}
	if m.TriageExited+m.TriageFallthrough != n {
		t.Fatalf("exited=%d + fallthrough=%d != %d", m.TriageExited, m.TriageFallthrough, n)
	}
	// The single-flow stream collapses entropy to zero: after the
	// sketch has its minimum sample, benign early-exits must be vetoed.
	if m.TriageFallthrough == 0 {
		t.Fatal("no fall-throughs: the sketch veto never fired on a zero-entropy stream")
	}
	for _, d := range m.Decisions {
		if d.Label != 0 {
			t.Fatalf("benign flow labeled attack: %+v", d)
		}
	}
}

// TestTriageRequiresProbaModel pins the constructor error when triage
// is enabled but no ensemble member exposes the probability path.
func TestTriageRequiresProbaModel(t *testing.T) {
	eng := netsim.NewEngine()
	cfg := testConfig(attackDetector())
	cfg.Triage = true
	if _, err := New(eng, cfg); err == nil {
		t.Error("Mechanism accepted triage without a probability-capable model")
	}
	lcfg := liveConfig(attackDetector())
	lcfg.Triage = true
	if _, err := NewLive(lcfg); err == nil {
		t.Error("Live accepted triage without a probability-capable model")
	}
}

// runLiveTriage replays a fixed multi-flow stream through the
// wall-clock runtime and returns per-flow "label/votes/stage"
// sequences indexed by sequence number — the unit that must be
// invariant across batch sizes, shard layouts, and an inert cascade.
func runLiveTriage(t *testing.T, predictBatch, shards int, triage bool, threshold, conf float64) (*Live, map[string][]string) {
	t.Helper()
	cfg := liveConfig(attackDetector())
	cfg.PredictBatch = predictBatch
	cfg.Shards = shards
	cfg.Triage = triage
	cfg.TriageThreshold = threshold
	if triage {
		cfg.TriageModel = probaModel{stubModel: attackDetector(), conf: conf}
	}
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l.Start()
	defer l.Stop()
	const flows, per = 6, 20
	for u := 0; u < per; u++ {
		for f := 0; f < flows; f++ {
			if f%3 == 0 {
				l.Ingest(liveObs(uint16(3000+f), 40, true, "synflood"))
			} else {
				l.Ingest(liveObs(uint16(3000+f), 1000, false, "benign"))
			}
		}
	}
	if !waitFor(t, 10*time.Second, func() bool { return len(l.Decisions()) == flows*per }) {
		t.Fatalf("decisions = %d, want %d", len(l.Decisions()), flows*per)
	}
	byFlow := make(map[string][]string)
	for _, d := range l.Decisions() {
		k := d.Key.String()
		for len(byFlow[k]) <= d.Seq {
			byFlow[k] = append(byFlow[k], "")
		}
		byFlow[k][d.Seq] = fmt.Sprintf("label=%d votes=%v stage=%d", d.Label, d.Votes, d.Stage)
	}
	return l, byFlow
}

// TestLiveTriageInertBitIdentical is the wall-clock half of the
// exact-mode property: triage off and triage inert produce identical
// per-flow decision sequences at every batch size and shard count.
func TestLiveTriageInertBitIdentical(t *testing.T) {
	_, base := runLiveTriage(t, 1, 0, false, 0, 0)
	for _, batch := range []int{1, 8, 32} {
		for _, shards := range []int{0, 4} {
			_, got := runLiveTriage(t, batch, shards, true, -1, 1)
			if len(got) != len(base) {
				t.Fatalf("batch=%d shards=%d: %d flows, want %d", batch, shards, len(got), len(base))
			}
			for k, want := range base {
				if fmt.Sprint(got[k]) != fmt.Sprint(want) {
					t.Errorf("batch=%d shards=%d flow %s diverged:\nbase: %v\ngot:  %v",
						batch, shards, k, want, got[k])
				}
			}
		}
	}
}

// TestLiveTriageExits runs a saturated cascade: every decision carries
// stage-1 provenance with a single vote, labels match the ensemble
// baseline, and the pipeline's accounting still closes.
func TestLiveTriageExits(t *testing.T) {
	_, base := runLiveTriage(t, 8, 4, false, 0, 0)
	l, got := runLiveTriage(t, 8, 4, true, 0.9, 1)
	if len(got) != len(base) {
		t.Fatalf("%d flows, want %d", len(got), len(base))
	}
	for _, d := range l.Decisions() {
		if d.Stage != 1 {
			t.Errorf("decision Stage = %d, want 1: %+v", d.Stage, d)
		}
		if len(d.Votes) != 1 {
			t.Errorf("decision Votes = %v, want a single stage-0 vote", d.Votes)
		}
	}
	for k, want := range base {
		g := got[k]
		if len(g) != len(want) {
			t.Fatalf("flow %s: %d decisions, want %d", k, len(g), len(want))
			continue
		}
		for i := range want {
			// Same labels; votes/stage legitimately differ.
			wl, gl := want[i][:len("label=x")], g[i][:len("label=x")]
			if wl != gl {
				t.Errorf("flow %s seq %d label diverged: %s vs %s", k, i, want[i], g[i])
			}
		}
	}
	if polled, decided, shed, abandoned := l.Polled.Load(), int64(l.DecisionCount()), l.Shed.Load(), l.Abandoned.Load(); polled != decided+shed+abandoned {
		t.Errorf("accounting leak: polled=%d decided=%d shed=%d abandoned=%d", polled, decided, shed, abandoned)
	}
}

// TestLiveTriageCheckpoint pins that the cascade coexists with the
// checkpoint barrier: a snapshot captured mid-stream with triage on
// restores cleanly, and the restored pipeline keeps early-exiting.
func TestLiveTriageCheckpoint(t *testing.T) {
	dir := t.TempDir()
	mk := func() *Live {
		cfg := liveConfig(attackDetector())
		cfg.Shards = 4
		cfg.PredictBatch = 8
		cfg.CheckpointDir = dir
		cfg.Triage = true
		cfg.TriageThreshold = 0.9
		cfg.TriageModel = probaModel{stubModel: attackDetector(), conf: 1}
		l, err := NewLive(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}
	a := mk()
	a.Start()
	for i := 0; i < 40; i++ {
		a.Ingest(liveObs(uint16(4000+i%4), 40, true, "synflood"))
	}
	if !waitFor(t, 10*time.Second, func() bool { return len(a.Decisions()) == 40 }) {
		t.Fatalf("decisions = %d, want 40", len(a.Decisions()))
	}
	if _, n, err := a.WriteCheckpoint(); err != nil || n == 0 {
		t.Fatalf("checkpoint with triage on: n=%d err=%v", n, err)
	}
	a.Stop()

	b := mk()
	if b.Restore() == nil {
		t.Fatal("restored pipeline reports no checkpoint")
	}
	b.Start()
	defer b.Stop()
	for i := 0; i < 20; i++ {
		b.Ingest(liveObs(uint16(4000+i%4), 40, true, "synflood"))
	}
	if !waitFor(t, 10*time.Second, func() bool { return len(b.Decisions()) == 20 }) {
		t.Fatalf("post-restore decisions = %d, want 20", len(b.Decisions()))
	}
	for _, d := range b.Decisions() {
		if d.Stage != 1 {
			t.Errorf("post-restore decision Stage = %d, want 1", d.Stage)
		}
	}
}
