package core

import (
	"sort"

	"github.com/amlight/intddos/internal/netsim"
)

// TypeResult is one Table VI row: per-attack-type decision accuracy
// and prediction-time statistics.
type TypeResult struct {
	Type          string
	Total         int
	Misclassified int
	Accuracy      float64
	AvgLatency    netsim.Time
	MaxLatency    netsim.Time
	P99Latency    netsim.Time
}

// SummarizeByType groups decisions by generating workload and
// computes the Table VI statistics. Types come back sorted by name
// for stable output.
func SummarizeByType(ds []Decision) []TypeResult {
	byType := make(map[string][]Decision)
	for _, d := range ds {
		byType[d.AttackType] = append(byType[d.AttackType], d)
	}
	names := make([]string, 0, len(byType))
	for name := range byType {
		names = append(names, name)
	}
	sort.Strings(names)

	out := make([]TypeResult, 0, len(names))
	for _, name := range names {
		group := byType[name]
		r := TypeResult{Type: name, Total: len(group)}
		lats := make([]netsim.Time, 0, len(group))
		var sum netsim.Time
		for _, d := range group {
			if !d.Correct() {
				r.Misclassified++
			}
			lats = append(lats, d.Latency)
			sum += d.Latency
			if d.Latency > r.MaxLatency {
				r.MaxLatency = d.Latency
			}
		}
		r.Accuracy = float64(r.Total-r.Misclassified) / float64(r.Total)
		r.AvgLatency = sum / netsim.Time(len(group))
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		r.P99Latency = lats[(len(lats)*99)/100]
		out = append(out, r)
	}
	return out
}

// MisclassBySeq histograms misclassifications by per-flow decision
// index, the Figure 7 view: errors concentrating at low Seq mean
// flows are misread only while their features are immature.
func MisclassBySeq(ds []Decision, attackType string) (seq []int, wrong []bool) {
	for _, d := range ds {
		if d.AttackType != attackType {
			continue
		}
		seq = append(seq, d.Seq)
		wrong = append(wrong, !d.Correct())
	}
	return seq, wrong
}
