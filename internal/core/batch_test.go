package core

import (
	"fmt"
	"testing"
	"time"

	"github.com/amlight/intddos/internal/netsim"
)

// runMechanism replays a deterministic mixed workload — two attack
// flows and one benign flow interleaved — through a simulated
// mechanism with the given scoring batch size and returns the full
// decision log.
func runMechanism(t *testing.T, predictBatch int) []Decision {
	t.Helper()
	eng := netsim.NewEngine()
	cfg := testConfig(attackDetector())
	cfg.PredictBatch = predictBatch
	m, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	m.Start()
	for i := 0; i < 30; i++ {
		at := netsim.Time(i) * 50 * netsim.Microsecond
		var pi = simObs(uint16(7+i%3), at, 40, true, "synflood")
		if i%3 == 2 {
			pi = simObs(uint16(7+i%3), at, 1000, false, "benign")
		}
		eng.Schedule(at, func() { m.Observe(pi) })
	}
	eng.RunUntil(netsim.Second)
	return m.Decisions
}

// TestMechanismPredictBatchInvariant pins the scored-prefix design:
// batching the Prediction module's queue scoring must not move a
// single decision — same keys, sequence numbers, labels, votes, and
// timestamps as record-at-a-time scoring, for batch sizes from the
// degenerate 1 through larger than the queue ever gets.
func TestMechanismPredictBatchInvariant(t *testing.T) {
	base := runMechanism(t, 1)
	if len(base) != 30 {
		t.Fatalf("baseline decisions = %d, want 30", len(base))
	}
	for _, k := range []int{0, 2, 32, 1024} {
		got := runMechanism(t, k)
		if len(got) != len(base) {
			t.Fatalf("PredictBatch=%d: %d decisions, want %d", k, len(got), len(base))
		}
		for i := range base {
			b, g := base[i], got[i]
			if b.Key != g.Key || b.Seq != g.Seq || b.Label != g.Label ||
				b.At != g.At || b.Latency != g.Latency ||
				fmt.Sprint(b.Votes) != fmt.Sprint(g.Votes) {
				t.Errorf("PredictBatch=%d decision %d diverged:\nbatch=1: %+v\nbatch=%d: %+v", k, i, b, k, g)
			}
		}
	}
}

// runLiveBatch replays the same deterministic workload through the
// wall-clock runtime and returns each flow's decision labels indexed
// by sequence number. Wall-clock timestamps differ run to run, so the
// invariant under batching is the per-flow label/vote sequence, which
// shard affinity plus in-order batch finishing must preserve.
func runLiveBatch(t *testing.T, predictBatch int, linger time.Duration) map[string][]int {
	t.Helper()
	cfg := liveConfig(attackDetector())
	cfg.PredictBatch = predictBatch
	cfg.PredictLinger = linger
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l.Start()
	defer l.Stop()
	const per = 40
	for i := 0; i < per; i++ {
		l.Ingest(liveObs(7, 40, true, "synflood"))
		l.Ingest(liveObs(8, 1000, false, "benign"))
	}
	if !waitFor(t, 5*time.Second, func() bool { return len(l.Decisions()) == 2*per }) {
		t.Fatalf("decisions = %d, want %d", len(l.Decisions()), 2*per)
	}
	byFlow := make(map[string][]int)
	for _, d := range l.Decisions() {
		k := d.Key.String()
		for len(byFlow[k]) <= d.Seq {
			byFlow[k] = append(byFlow[k], -1)
		}
		byFlow[k][d.Seq] = d.Label
	}
	return byFlow
}

// TestLivePredictBatchEquivalence requires the micro-batched workers
// to label every flow update exactly as the record-at-a-time pipeline
// does, with and without a linger window.
func TestLivePredictBatchEquivalence(t *testing.T) {
	base := runLiveBatch(t, 1, 0)
	for _, tc := range []struct {
		batch  int
		linger time.Duration
	}{{8, 0}, {32, 2 * time.Millisecond}} {
		got := runLiveBatch(t, tc.batch, tc.linger)
		if len(got) != len(base) {
			t.Fatalf("batch=%d: %d flows, want %d", tc.batch, len(got), len(base))
		}
		for k, labels := range base {
			if fmt.Sprint(got[k]) != fmt.Sprint(labels) {
				t.Errorf("batch=%d linger=%v flow %s labels diverged:\nbatch=1: %v\nbatched: %v",
					tc.batch, tc.linger, k, labels, got[k])
			}
		}
	}
}
