package core

import (
	"github.com/amlight/intddos/internal/ml"
)

// Stage-0 sketch policy. The sketch never decides a record on its own
// — it only vetoes benign early-exits — so these knobs trade exit
// rate against how defensively the cascade treats volumetric
// anomalies, not accuracy of the final labels for fall-through rows.
const (
	// triageHeavyHitterFrac: a flow holding at least this fraction of
	// the recent stream is suspicious (AMON-style heavy hitter).
	triageHeavyHitterFrac = 0.02
	// triageEntropyFloor: when the normalized flow-key entropy drops
	// below this, the whole stream looks like a volumetric event and
	// no flow may early-exit benign.
	triageEntropyFloor = 0.25
	// triageMinSample: the sketch stays silent until it has seen this
	// many observations — too little traffic to call anything heavy.
	triageMinSample = 512
)

// DefaultTriageThreshold is the stage-0 confidence |2p-1| required to
// early-exit a record when triage is enabled without an explicit
// threshold. 0.95 exits only near-saturated probabilities, which on
// the paper's workloads keeps the Table III/VI deltas inside the
// bound documented in EXPERIMENTS.md.
const DefaultTriageThreshold = 0.95

// resolveTriageModel returns the stage-0 cascade model: the
// configured one when it exposes the batch probability path, else a
// probability-capable ensemble member, preferring the Random Forest.
// The gate needs *calibrated* confidence more than it needs a cheap
// score: GNB's density products saturate to 0/1 on everything —
// including zero-day attacks it has never seen — so gating on it
// exits confidently-wrong verdicts (measured on the held-out
// SlowLoris replay: −61 pp accuracy). The forest's vote fraction
// stays honest on unfamiliar inputs and exits >90% of rows with no
// measurable accuracy cost.
func resolveTriageModel(configured ml.Classifier, models []ml.Classifier) (ml.BatchProbaClassifier, bool) {
	if configured != nil {
		pm, ok := configured.(ml.BatchProbaClassifier)
		return pm, ok
	}
	for _, m := range models {
		if pm, ok := m.(ml.BatchProbaClassifier); ok && m.Name() == "RF" {
			return pm, true
		}
	}
	for i := len(models) - 1; i >= 0; i-- {
		if pm, ok := models[i].(ml.BatchProbaClassifier); ok {
			return pm, true
		}
	}
	return nil, false
}
