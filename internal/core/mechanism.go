// Package core implements the paper's primary contribution: the
// automated DDoS detection mechanism of Figure 2. Four modules
// cooperate around the database:
//
//	INT Data Collection — terminates collector reports and extracts
//	packet-level fields (steps 1–2);
//	Data Processor — maintains the flow table, derives flow-level
//	features, writes snapshots to the database, and aggregates final
//	decisions (steps 3, 7–8);
//	CentralServer — polls the database for record updates and feeds
//	them to prediction, then routes predictions back (steps 4–7);
//	Prediction — standardizes snapshots and runs the pre-trained
//	model ensemble (steps 5–6).
//
// The Prediction module is modelled as a single-server queue with a
// configurable per-item service time on the virtual clock, so
// prediction latency — including the backlog growth the paper
// observes under high-volume benign traffic — emerges from queueing
// rather than being scripted.
package core

import (
	"errors"

	"github.com/amlight/intddos/internal/flow"
	"github.com/amlight/intddos/internal/ml"
	"github.com/amlight/intddos/internal/ml/sketch"
	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/store"
	"github.com/amlight/intddos/internal/telemetry"
)

// Config parameterizes the mechanism.
type Config struct {
	// Features selects the model input vector (default: the paper's
	// 15 INT features).
	Features flow.FeatureSet
	// Models is the pre-trained ensemble (the paper uses MLP+RF+GNB).
	Models []ml.Classifier
	// Scaler standardizes snapshots before prediction; required.
	Scaler *ml.StandardScaler

	// PollInterval is the CentralServer's database polling period
	// (default 2 ms).
	PollInterval netsim.Time
	// PollBatch bounds records fetched per poll (default 64).
	PollBatch int
	// ServiceTime is the Prediction module's per-item cost on the
	// virtual clock (default 1 ms), standing in for the Python
	// inference + IPC cost of the paper's implementation.
	ServiceTime netsim.Time
	// QueueCap bounds the prediction input queue; beyond it updates
	// are dropped and counted (default unbounded).
	QueueCap int

	// ModelQuorum is how many ensemble votes make a raw attack
	// prediction (default 2 of 3, §IV-C4).
	ModelQuorum int
	// VoteWindow smooths per-flow decisions over the last N raw
	// predictions (default 3, §IV-C4).
	VoteWindow int

	// SkipNewRecords restricts prediction to record *updates*, the
	// strict reading of §III-3 (the CentralServer "does not consider
	// new entries"). The default (false) also predicts on brand-new
	// records, which the testbed behaviour — per-packet decisions
	// from the first packet on, Figure 7 — requires.
	SkipNewRecords bool

	// PredictBatch is the Prediction module's scoring batch: when the
	// service queue holds several records, the ensemble scores up to
	// this many of them in one amortized batch call, and completions
	// then drain the cached scores one record per ServiceTime. Timing,
	// decision order, and votes are identical to per-sample scoring
	// (the batch contract guarantees row-for-row equality), so Table
	// VI is byte-identical at any batch size. Zero or one keeps
	// per-sample scoring, the paper-faithful default.
	PredictBatch int

	// FlowIdleTimeout evicts idle flows (with their vote windows and
	// database records); zero disables. SweepInterval defaults to the
	// timeout.
	FlowIdleTimeout netsim.Time
	SweepInterval   netsim.Time

	// Shards selects the database layout: zero keeps the paper's
	// single-lock store.DB, n >= 1 stripes the journal over a
	// store.ShardedDB with n shards. The simulated mechanism is
	// single-threaded either way, and the CentralServer polls the
	// merged global journal order, so the decision stream — and Table
	// VI — is bit-exact at every shard count.
	Shards int

	// Triage enables tiered inference: a streaming sketch over the
	// ingest stream plus a confidence-thresholded stage-0 model
	// early-exit confident rows before the full ensemble vote (ROADMAP
	// item 2). Off (the default) keeps the paper's score-everything
	// contract bit-identical. TriageThreshold is the minimum stage-0
	// confidence |2p-1| to exit (<= 0 leaves the cascade inert — the
	// tiered code path runs but every row falls through, still
	// bit-identical). TriageModel picks the stage-0 model; nil selects
	// the last probability-capable ensemble member (GNB in the paper's
	// MLP/RF/GNB order — also the cheapest).
	Triage          bool
	TriageThreshold float64
	TriageModel     ml.Classifier
}

// Decision is one final, smoothed classification of a flow snapshot.
type Decision struct {
	Key   flow.Key
	Label int
	// Seq is the per-flow decision index (0 = first decision).
	Seq int
	// At is the decision time; Latency measures from the snapshot's
	// registration (§III-2's Prediction Latency).
	At      netsim.Time
	Latency netsim.Time
	// Votes are the raw per-model outputs for this snapshot. For a
	// triage-exited record (Stage > 0) the slice holds the single
	// stage-0 vote instead of the full ensemble's.
	Votes []int
	// Stage is the decision's provenance in the tiered cascade: 0 for
	// the full-ensemble path (every decision when triage is off, so
	// legacy output is unchanged), n >= 1 when cascade stage n
	// early-exited the record.
	Stage int

	Truth      bool
	AttackType string
}

// Correct reports whether the decision matches ground truth.
func (d Decision) Correct() bool { return (d.Label == 1) == d.Truth }

// Mechanism wires the four modules together on a netsim engine.
type Mechanism struct {
	eng *netsim.Engine
	cfg Config

	Table *flow.Table
	DB    store.Store

	// gcursor is the CentralServer's position in the global journal
	// order: PollGlobal merges the per-shard journals by their global
	// ingest stamps, so the poll stream is the exact sequence of
	// UpsertFlow calls regardless of shard count — the invariant the
	// Table VI golden tests pin across layouts.
	gcursor uint64
	queue   []store.FlowRecord
	busy    bool
	windows map[flow.Key][]int

	scaled [][]float64 // reusable standardization batch buffer
	// scoredVotes/scoredRaw/scoredStages cache batch-scored results
	// for the queue head: index 0 always corresponds to queue[0].
	// Scoring is pure, so scoring records at batch time instead of
	// service time changes nothing observable. scoredRaw is the raw
	// verdict (quorum vote, or the stage-0 label for exited records)
	// and scoredStages the cascade provenance per record.
	scoredVotes  [][]int
	scoredRaw    []int
	scoredStages []int

	// Tiered inference (nil/unused when Config.Triage is off): the
	// early-exit cascade, the streaming triage sketch fed by observe,
	// and the reusable scoring buffers behind the scored caches.
	cascade  *ml.Cascade
	sketch   *sketch.Sketch
	vs       ml.VoteScratch
	cs       ml.CascadeScratch
	votesBuf [][]int
	rawBuf   []int
	stageBuf []int
	subBuf   [][]float64
	susBuf   []bool

	// OnDecision observes every final decision as it is made.
	OnDecision func(Decision)
	// Decisions accumulates the full decision log.
	Decisions []Decision

	// Stats
	Reports      int // reports ingested by INT Data Collection
	Snapshots    int // feature snapshots written to the database
	Predictions  int // ensemble runs completed
	DroppedPolls int // updates dropped at a full prediction queue
	MaxQueue     int

	// Tiered-inference stats: records early-exited by the cascade vs
	// records that paid for the full ensemble vote.
	TriageExited      int
	TriageFallthrough int
}

// New validates cfg and builds a mechanism.
func New(eng *netsim.Engine, cfg Config) (*Mechanism, error) {
	if len(cfg.Models) == 0 {
		return nil, errors.New("core: no models configured")
	}
	if cfg.Scaler == nil {
		return nil, errors.New("core: scaler required")
	}
	if cfg.Features == nil {
		cfg.Features = flow.INTFeatures()
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 2 * netsim.Millisecond
	}
	if cfg.PollBatch <= 0 {
		cfg.PollBatch = 64
	}
	if cfg.ServiceTime <= 0 {
		cfg.ServiceTime = netsim.Millisecond
	}
	if cfg.ModelQuorum <= 0 {
		cfg.ModelQuorum = (len(cfg.Models) + 2) / 2
	}
	if cfg.VoteWindow <= 0 {
		cfg.VoteWindow = 3
	}
	if cfg.SweepInterval <= 0 {
		cfg.SweepInterval = cfg.FlowIdleTimeout
	}
	if cfg.Shards < 0 {
		cfg.Shards = 0
	}
	if cfg.PredictBatch < 1 {
		cfg.PredictBatch = 1
	}
	var db store.Store
	if cfg.Shards == 0 {
		db = store.New()
	} else {
		db = store.NewSharded(cfg.Shards)
	}
	m := &Mechanism{
		eng:     eng,
		cfg:     cfg,
		Table:   flow.NewTable(),
		DB:      db,
		windows: make(map[flow.Key][]int),
	}
	m.Table.IdleTimeout = cfg.FlowIdleTimeout
	// Eviction is single-pass: when Sweep removes a flow, its database
	// record and vote window go with it (the old two-pass scan left
	// store rows behind for flows observed between the scan and the
	// sweep). The simulation is single-threaded, so no locking.
	m.Table.OnEvict = func(k flow.Key) {
		m.DB.DeleteFlow(k)
		delete(m.windows, k)
	}
	m.DB.SetJournalNew(!cfg.SkipNewRecords)
	if cfg.Triage {
		pm, ok := resolveTriageModel(cfg.TriageModel, cfg.Models)
		if !ok {
			return nil, errors.New("core: triage enabled but no probability-capable model available")
		}
		m.cascade = &ml.Cascade{Stages: []ml.CascadeStage{
			{Name: pm.Name(), Model: pm, Threshold: cfg.TriageThreshold},
		}}
		m.sketch = sketch.New(0, 0)
	}
	return m, nil
}

// Config returns the effective configuration after defaulting.
func (m *Mechanism) Config() Config { return m.cfg }

// Start arms the CentralServer polling loop and the eviction sweeps.
func (m *Mechanism) Start() {
	m.eng.After(m.cfg.PollInterval, m.pollTick)
	if m.cfg.FlowIdleTimeout > 0 {
		m.eng.After(m.cfg.SweepInterval, m.sweepTick)
	}
}

// HandleReport is the INT Data Collection entry point: hook it to a
// telemetry collector's OnReport.
func (m *Mechanism) HandleReport(r *telemetry.Report, at netsim.Time) {
	m.Reports++
	m.observe(flow.FromINT(r, at))
}

// Observe feeds a normalized observation directly (used by tests and
// by the sFlow-driven variant of the mechanism).
func (m *Mechanism) Observe(pi flow.PacketInfo) { m.observe(pi) }

// observe is the Data Processor ingest path: update the flow table
// and write the feature snapshot to the database.
func (m *Mechanism) observe(pi flow.PacketInfo) {
	if m.sketch != nil {
		m.sketch.Update(pi.Key.Hash())
	}
	st, _ := m.Table.Observe(pi)
	feats := st.Features(nil, m.cfg.Features)
	m.DB.UpsertFlow(st.Key, feats, st.RegisteredAt, st.LastAt, st.Updates, pi.Label, pi.AttackType)
	m.Snapshots++
}

// pollTick is the CentralServer: fetch journal updates in global
// ingest order — one merged stream across every shard, which for the
// legacy single-shard DB is exactly the old single-journal poll —
// enqueue them for prediction, re-arm.
func (m *Mechanism) pollTick() {
	recs, cur := m.DB.PollGlobal(m.gcursor, m.cfg.PollBatch)
	m.gcursor = cur
	for _, rec := range recs {
		if m.cfg.QueueCap > 0 && len(m.queue) >= m.cfg.QueueCap {
			m.DroppedPolls++
			continue
		}
		m.queue = append(m.queue, rec)
	}
	m.DB.TrimGlobal(cur)
	if len(m.queue) > m.MaxQueue {
		m.MaxQueue = len(m.queue)
	}
	if !m.busy && len(m.queue) > 0 {
		m.startService()
	}
	m.eng.After(m.cfg.PollInterval, m.pollTick)
}

// startService begins predicting the head of the queue.
func (m *Mechanism) startService() {
	m.busy = true
	m.eng.After(m.cfg.ServiceTime, m.completeService)
}

// scoreHead batch-scores the queue's head block through the scaler
// and the tiered scoring path, filling the scored caches consumed one
// record per service completion. Without triage the block goes
// straight through the ensemble batch path; with triage the cascade
// early-exits confident rows (under the sketch's suspicion veto) and
// only the fall-through remainder pays for the full ensemble vote.
func (m *Mechanism) scoreHead() {
	k := m.cfg.PredictBatch
	if k > len(m.queue) {
		k = len(m.queue)
	}
	rows := make([][]float64, k)
	for i := 0; i < k; i++ {
		rows[i] = m.queue[i].Features
	}
	m.scaled = m.cfg.Scaler.TransformBatch(m.scaled, rows)
	if cap(m.rawBuf) < k {
		m.rawBuf = make([]int, k)
	}
	if cap(m.stageBuf) < k {
		m.stageBuf = make([]int, k)
	}
	m.scoredRaw = m.rawBuf[:k]
	m.scoredStages = m.stageBuf[:k]

	if m.cascade == nil {
		var ones []int
		m.scoredVotes, ones = ml.EnsembleVotesInto(&m.vs, m.cfg.Models, m.scaled)
		for i := 0; i < k; i++ {
			m.scoredStages[i] = 0
			raw := 0
			if ones[i] >= m.cfg.ModelQuorum {
				raw = 1
			}
			m.scoredRaw[i] = raw
		}
		return
	}

	// Stage-0 sketch verdict: a suspicious flow (heavy hitter, or any
	// flow while key entropy has collapsed) is never early-exited
	// benign.
	if cap(m.susBuf) < k {
		m.susBuf = make([]bool, k)
	}
	sus := m.susBuf[:k]
	for i := 0; i < k; i++ {
		sus[i] = m.sketch.Suspicious(m.queue[i].Key.Hash(),
			triageHeavyHitterFrac, triageEntropyFloor, triageMinSample)
	}
	stage, tlabel := m.cascade.TriageBatch(m.scaled, sus, &m.cs)

	// Full ensemble on the fall-through remainder only, preserving
	// queue order inside the sub-batch.
	if cap(m.subBuf) < k {
		m.subBuf = make([][]float64, k)
	}
	sub := m.subBuf[:0]
	nExit := 0
	for i := 0; i < k; i++ {
		if stage[i] == 0 {
			sub = append(sub, m.scaled[i])
		} else {
			nExit++
		}
	}
	var subVotes [][]int
	var subOnes []int
	if len(sub) > 0 {
		subVotes, subOnes = ml.EnsembleVotesInto(&m.vs, m.cfg.Models, sub)
	}
	if cap(m.votesBuf) < k {
		m.votesBuf = make([][]int, k)
	}
	m.scoredVotes = m.votesBuf[:k]
	// Exited records carry their single stage-0 vote as provenance;
	// the rows are retained in Decisions, so they get fresh storage.
	exitFlat := make([]int, nExit)
	e, j := 0, 0
	for i := 0; i < k; i++ {
		if stage[i] > 0 {
			ev := exitFlat[e : e+1 : e+1]
			ev[0] = tlabel[i]
			e++
			m.scoredVotes[i] = ev
			m.scoredRaw[i] = tlabel[i]
			m.scoredStages[i] = stage[i]
			m.TriageExited++
			continue
		}
		m.scoredVotes[i] = subVotes[j]
		raw := 0
		if subOnes[j] >= m.cfg.ModelQuorum {
			raw = 1
		}
		m.scoredRaw[i] = raw
		m.scoredStages[i] = 0
		m.TriageFallthrough++
		j++
	}
}

// completeService is the Prediction module finishing one item, plus
// the Data Processor's aggregation of the result (§IV-C4 ensemble
// and window voting).
func (m *Mechanism) completeService() {
	// Prediction module: standardize and run the ensemble over the
	// queue head block (a 1-record block at the default PredictBatch),
	// then consume one cached result per completion.
	if len(m.scoredVotes) == 0 {
		m.scoreHead()
	}
	rec := m.queue[0]
	copy(m.queue, m.queue[1:])
	m.queue = m.queue[:len(m.queue)-1]
	votes, raw, stage := m.scoredVotes[0], m.scoredRaw[0], m.scoredStages[0]
	m.scoredVotes = m.scoredVotes[1:]
	m.scoredRaw = m.scoredRaw[1:]
	m.scoredStages = m.scoredStages[1:]

	m.Predictions++

	// Data Processor aggregation: slide the per-flow window and take
	// a strict majority (ties resolve benign).
	w := append(m.windows[rec.Key], raw)
	if len(w) > m.cfg.VoteWindow {
		w = w[len(w)-m.cfg.VoteWindow:]
	}
	m.windows[rec.Key] = w
	sum := 0
	for _, v := range w {
		sum += v
	}
	label := 0
	if 2*sum > len(w) {
		label = 1
	}

	now := m.eng.Now()
	d := Decision{
		Key:        rec.Key,
		Label:      label,
		Seq:        rec.Updates - 1,
		At:         now,
		Latency:    now - rec.UpdatedAt,
		Votes:      votes,
		Stage:      stage,
		Truth:      rec.Truth,
		AttackType: rec.AttackType,
	}
	m.Decisions = append(m.Decisions, d)
	m.DB.AppendPrediction(store.PredictionRecord{
		Key: rec.Key, Label: label, At: now, Latency: d.Latency,
		Votes: votes, Truth: rec.Truth, AttackType: rec.AttackType,
	})
	if m.OnDecision != nil {
		m.OnDecision(d)
	}

	if len(m.queue) > 0 {
		m.startService()
	} else {
		m.busy = false
	}
}

// sweepTick evicts idle flows from the table; the eviction hook
// removes their vote windows and database records in the same pass. A
// safety pass clears windows whose flow is gone entirely (a late
// decision can re-create one after its flow was swept).
func (m *Mechanism) sweepTick() {
	m.Table.Sweep(m.eng.Now())
	for key := range m.windows {
		if m.Table.Get(key) == nil {
			delete(m.windows, key)
		}
	}
	m.eng.After(m.cfg.SweepInterval, m.sweepTick)
}

// QueueLen exposes the prediction backlog for tests and monitoring.
func (m *Mechanism) QueueLen() int { return len(m.queue) }
