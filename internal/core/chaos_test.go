package core

import (
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"github.com/amlight/intddos/internal/fault"
	"github.com/amlight/intddos/internal/ml"
	"github.com/amlight/intddos/internal/obs"
	"github.com/amlight/intddos/internal/telemetry"
)

// assertAccounting checks the pipeline's terminal invariant: every
// record the pollers handed off is a decision, a shed, or an
// abandonment — nothing vanished.
func assertAccounting(t *testing.T, l *Live) {
	t.Helper()
	polled := l.Polled.Load()
	decided := int64(l.DecisionCount())
	shed := l.Shed.Load()
	abandoned := l.Abandoned.Load()
	if polled != decided+shed+abandoned {
		t.Errorf("accounting leak: polled=%d != decided=%d + shed=%d + abandoned=%d (reasons %v)",
			polled, decided, shed, abandoned, l.AbandonedByReason())
	}
}

// namedDetector is attackDetector under a distinct name, for tests
// that target ensemble members individually.
func namedDetector(name string) stubModel {
	return stubModel{name: name, index: 1, thresh: 100}
}

// chaosReport builds one INT report for flow sport with ground truth.
func chaosReport(sport uint16, length uint16, label bool, typ string) *telemetry.Report {
	key := liveObs(sport, 0, label, typ).Key
	return &telemetry.Report{
		Src: key.Src, Dst: key.Dst,
		SrcPort: sport, DstPort: 80, Proto: key.Proto,
		Length: length,
		Hops:   []telemetry.HopMetadata{{SwitchID: 1, QueueDepth: 3, IngressTS: 10, EgressTS: 20}},
		Truth:  telemetry.Truth{Label: label, AttackType: typ},
	}
}

// feedChaos pushes nFlows*updates reports through HandleReport, every
// third flow an attack, and returns the per-flow ground truth.
func feedChaos(l *Live, nFlows, updates int) map[string]bool {
	truth := make(map[string]bool, nFlows)
	for u := 0; u < updates; u++ {
		for f := 0; f < nFlows; f++ {
			sport := uint16(2000 + f)
			attack := f%3 == 0
			length := uint16(1000)
			typ := "benign"
			if attack {
				length, typ = 40, "synflood"
			}
			l.HandleReport(chaosReport(sport, length, attack, typ))
			truth[liveObs(sport, 0, attack, typ).Key.String()] = attack
		}
	}
	return truth
}

// settle waits until the ingest demux has drained, every snapshot has
// been polled (or dropped) and every polled record resolved, i.e. the
// accounting invariant holds with nothing in flight.
func settle(t *testing.T, l *Live, d time.Duration) {
	t.Helper()
	ok := waitFor(t, d, func() bool {
		if l.IngestBacklog() != 0 {
			return false
		}
		if l.Polled.Load()+l.StoreDropped.Load() < l.Snapshots.Load() {
			return false
		}
		return l.Polled.Load() == int64(l.DecisionCount())+l.Shed.Load()+l.Abandoned.Load()
	})
	if !ok {
		t.Fatalf("pipeline did not settle: snapshots=%d polled=%d dropped=%d decided=%d shed=%d abandoned=%d",
			l.Snapshots.Load(), l.Polled.Load(), l.StoreDropped.Load(),
			l.DecisionCount(), l.Shed.Load(), l.Abandoned.Load())
	}
}

// flowTrace is the per-flow decision sequence used for bit-identity
// comparison across runs: Seq, Label, and the per-model votes —
// everything about a decision that is not a wall-clock timestamp.
func flowTrace(l *Live) map[string][]string {
	out := make(map[string][]string)
	for _, d := range l.Decisions() {
		key := d.Key.String()
		out[key] = append(out[key], fmt.Sprintf("seq=%d label=%d votes=%v", d.Seq, d.Label, d.Votes))
	}
	return out
}

// TestChaosAccountingCloses runs the full fault surface at once —
// telemetry drop/corrupt/delay, store errors and stalls, worker
// panics, per-model failures, scoring latency — and asserts the
// pipeline neither deadlocks nor loses a single record's accounting.
func TestChaosAccountingCloses(t *testing.T) {
	in, err := fault.Parse(
		"drop=0.05,corrupt=0.05,delay=200us@0.05,store.err=0.1,store.stall=300us@0.05,"+
			"panic=0.02,model.fail=B@0.3,latency=200us@0.1", 1234)
	if err != nil {
		t.Fatal(err)
	}
	cfg := liveConfig(namedDetector("A"), namedDetector("B"), namedDetector("C"))
	cfg.Fault = in
	cfg.Shards = 4
	cfg.Workers = 2
	cfg.WorkerRestartBudget = -1 // restarts unbounded: the run must survive
	cfg.WorkerRestartBackoff = time.Millisecond
	cfg.StoreRetryBackoff = 100 * time.Microsecond
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l.Start()
	feedChaos(l, 40, 10)
	settle(t, l, 20*time.Second)
	l.Stop()
	assertAccounting(t, l)
	if l.DecisionCount() == 0 {
		t.Error("no decisions under chaos — the pipeline should degrade, not die")
	}
	if len(in.Counts()) == 0 {
		t.Error("no faults fired; the chaos run tested nothing")
	}
	t.Logf("faults: %s; decisions=%d abandoned=%v tainted=%d",
		in.Summary(), l.DecisionCount(), l.AbandonedByReason(), in.TaintCount())
}

// TestChaosStopMidStream stops the pipeline with records still in
// flight; accounting must close either way the drain policy points.
func TestChaosStopMidStream(t *testing.T) {
	for _, drain := range []bool{false, true} {
		in, err := fault.Parse("store.err=0.1,panic=0.05,store.stall=200us@0.1", 99)
		if err != nil {
			t.Fatal(err)
		}
		cfg := liveConfig(namedDetector("A"), namedDetector("B"), namedDetector("C"))
		cfg.Fault = in
		cfg.Shards = 2
		cfg.DrainOnStop = drain
		cfg.WorkerRestartBackoff = time.Millisecond
		cfg.StoreRetryBackoff = 100 * time.Microsecond
		l, err := NewLive(cfg)
		if err != nil {
			t.Fatal(err)
		}
		l.Start()
		feedChaos(l, 20, 5)
		l.Stop() // no settling: records are mid-pipeline
		assertAccounting(t, l)
	}
}

// TestChaosFaultFreeFlowsBitIdentical runs the same input through a
// clean pipeline and a faulted one and asserts every flow the faults
// did not touch decides identically — same Seq, same Label, same
// votes. Faults must not perturb what they do not hit.
func TestChaosFaultFreeFlowsBitIdentical(t *testing.T) {
	run := func(in *fault.Injector) *Live {
		cfg := liveConfig(namedDetector("A"), namedDetector("B"), namedDetector("C"))
		cfg.Fault = in
		l, err := NewLive(cfg)
		if err != nil {
			t.Fatal(err)
		}
		l.Start()
		feedChaos(l, 30, 6)
		settle(t, l, 20*time.Second)
		l.Stop()
		return l
	}
	clean := run(nil)
	in, err := fault.Parse("drop=0.1,corrupt=0.1,delay=500us@0.1,store.err=0.2,store.stall=500us@0.1", 42)
	if err != nil {
		t.Fatal(err)
	}
	faulted := run(in)

	cleanTrace, faultTrace := flowTrace(clean), flowTrace(faulted)
	compared := 0
	for key, want := range cleanTrace {
		if in.IsTainted(key) {
			continue
		}
		compared++
		got := faultTrace[key]
		if len(got) != len(want) {
			t.Errorf("flow %s: %d decisions faulted vs %d clean", key, len(got), len(want))
			continue
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("flow %s decision %d: faulted %q != clean %q", key, i, got[i], want[i])
			}
		}
	}
	if compared == 0 {
		t.Fatalf("every flow tainted (%d) — the comparison is vacuous; lower fault rates", in.TaintCount())
	}
	t.Logf("compared %d fault-free flows (tainted: %d; faults: %s)", compared, in.TaintCount(), in.Summary())
}

// TestWorkerPanicSupervisorRestartsAndAccounts drives a worker into
// its restart budget: every batch panics, the supervisor restarts it
// budget-many times, then declares it down and drains the queue into
// the worker_down accounting bucket.
func TestWorkerPanicSupervisorRestartsAndAccounts(t *testing.T) {
	in := fault.New(fault.Spec{WorkerPanic: 1}, 7)
	cfg := liveConfig(attackDetector())
	cfg.Fault = in
	cfg.WorkerRestartBudget = 2
	cfg.WorkerRestartBackoff = time.Millisecond
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l.Start()
	for i := 0; i < 10; i++ {
		l.Ingest(liveObs(uint16(i), 40, true, "synflood"))
	}
	if !waitFor(t, 5*time.Second, func() bool { return l.workersDown.Load() == 1 }) {
		t.Fatalf("worker not declared down; restarts=%d", l.WorkerRestarts.Load())
	}
	l.Stop()
	if got := l.WorkerRestarts.Load(); got != 2 {
		t.Errorf("worker restarts = %d, want exactly the budget (2)", got)
	}
	if l.DecisionCount() != 0 {
		t.Errorf("decisions = %d with every batch panicking", l.DecisionCount())
	}
	assertAccounting(t, l)
	reasons := l.AbandonedByReason()
	if reasons["panic"] != 3 { // initial run + 2 restarts, one-record batches
		t.Errorf("panic abandonments = %d, want 3 (reasons %v)", reasons["panic"], reasons)
	}
	if reasons["worker_down"] == 0 {
		t.Errorf("no worker_down abandonments; reasons %v", reasons)
	}
	if l.Health() != HealthShedding {
		t.Errorf("health = %v, want shedding with a worker down", l.Health())
	}
	if len(l.HealthTransitions()) == 0 {
		t.Error("no health transitions logged")
	}
}

// TestQuorumDegradesToAvailableMajority kills one of three ensemble
// members and asserts detection keeps deciding at 2-of-2 with the
// dead member's votes marked absent.
func TestQuorumDegradesToAvailableMajority(t *testing.T) {
	in := fault.New(fault.Spec{ModelFail: map[string]float64{"B": 1}}, 7)
	cfg := liveConfig(namedDetector("A"), namedDetector("B"), namedDetector("C"))
	cfg.Fault = in
	cfg.ModelProbeAfter = time.Hour // no probes mid-test
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l.Start()
	for i := 0; i < 20; i++ {
		l.Ingest(liveObs(9, 40, true, "synflood"))
	}
	if !waitFor(t, 5*time.Second, func() bool { return l.DecisionCount() == 20 }) {
		t.Fatalf("decisions = %d, want 20", l.DecisionCount())
	}
	l.Stop()
	for i, d := range l.Decisions() {
		if d.Label != 1 {
			t.Errorf("decision %d label = %d; degraded quorum should still detect", i, d.Label)
		}
		if len(d.Votes) != 3 || d.Votes[0] != 1 || d.Votes[1] != VoteAbsent || d.Votes[2] != 1 {
			t.Errorf("decision %d votes = %v, want [1 %d 1]", i, d.Votes, VoteAbsent)
		}
	}
	if l.unhealthyModels() != 1 {
		t.Errorf("unhealthy models = %d, want 1", l.unhealthyModels())
	}
	if l.ModelFailures.Load() < int64(cfg.ModelFailThreshold) {
		t.Errorf("model failures = %d", l.ModelFailures.Load())
	}
	if l.Health() != HealthDegraded {
		t.Errorf("health = %v, want degraded", l.Health())
	}
	rep := l.healthReport()
	if rep.State != obs.StateDegraded {
		t.Errorf("report state = %q", rep.State)
	}
	joined := strings.Join(rep.Detail, "\n")
	if !strings.Contains(joined, "model B: unhealthy") {
		t.Errorf("health detail missing unhealthy model B:\n%s", joined)
	}
	assertAccounting(t, l)
}

// flakyModel fails its first `failures` scoring calls, then recovers —
// the shape of a dependency hiccup, for probe/recovery testing.
type flakyModel struct {
	stubModel
	remaining atomic.Int32
}

func (f *flakyModel) TryPredictBatch(X [][]float64) ([]int, error) {
	if f.remaining.Add(-1) >= 0 {
		return nil, fmt.Errorf("model %s: transient failure", f.name)
	}
	return ml.PredictBatch(f.stubModel, X), nil
}

// TestModelRecoversViaProbe marks a flaky member unhealthy, then
// verifies a later probe re-admits it: full three-vote decisions
// resume.
func TestModelRecoversViaProbe(t *testing.T) {
	flaky := &flakyModel{stubModel: namedDetector("B")}
	flaky.remaining.Store(3)
	cfg := liveConfig(namedDetector("A"), flaky, namedDetector("C"))
	cfg.ModelFailThreshold = 1
	cfg.ModelProbeAfter = 20 * time.Millisecond
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l.Start()
	defer l.Stop()
	deadline := time.Now().Add(5 * time.Second)
	i := 0
	fullVotes := func() bool {
		for _, d := range l.Decisions() {
			if len(d.Votes) == 3 && d.Votes[0] == 1 && d.Votes[1] == 1 && d.Votes[2] == 1 {
				return true
			}
		}
		return false
	}
	for time.Now().Before(deadline) && !fullVotes() {
		l.Ingest(liveObs(uint16(100+i%5), 40, true, "synflood"))
		i++
		time.Sleep(2 * time.Millisecond)
	}
	if !fullVotes() {
		t.Fatal("model B never recovered into the vote")
	}
	if l.unhealthyModels() != 0 {
		t.Errorf("unhealthy models = %d after recovery", l.unhealthyModels())
	}
	joined := strings.Join(l.HealthTransitions(), "\n")
	if !strings.Contains(joined, "model B recovered") {
		t.Errorf("transition log missing recovery:\n%s", joined)
	}
}

// TestStoreRetriesSurviveTransientErrors runs a seeded transient-
// error schedule against the store and asserts retries (not losses)
// absorb it: every surviving snapshot still becomes a decision.
func TestStoreRetriesSurviveTransientErrors(t *testing.T) {
	in := fault.New(fault.Spec{StoreErr: 0.3}, 7)
	cfg := liveConfig(attackDetector())
	cfg.Fault = in
	cfg.StoreRetryBackoff = 100 * time.Microsecond
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l.Start()
	for i := 0; i < 60; i++ {
		l.Ingest(liveObs(uint16(3000+i), 1000, false, "benign"))
	}
	settle(t, l, 20*time.Second)
	l.Stop()
	if l.StoreRetries.Load() == 0 {
		t.Error("no store retries at store.err=0.3")
	}
	if got := l.Polled.Load() + l.StoreDropped.Load(); got != 60 {
		t.Errorf("polled+dropped = %d, want every one of 60 snapshots accounted", got)
	}
	if int64(l.DecisionCount()) != l.Polled.Load() {
		t.Errorf("decisions = %d, polled = %d", l.DecisionCount(), l.Polled.Load())
	}
	assertAccounting(t, l)
	t.Logf("retries=%d dropped=%d", l.StoreRetries.Load(), l.StoreDropped.Load())
}

// TestDrainOnStopPinsBothPolicies pins the two shutdown policies:
// DrainOnStop scores everything still queued; the default abandons it
// under reason "stop" — counted, either way.
func TestDrainOnStopPinsBothPolicies(t *testing.T) {
	for _, drain := range []bool{true, false} {
		cfg := liveConfig(slowModel{d: 5 * time.Millisecond})
		cfg.DrainOnStop = drain
		l, err := NewLive(cfg)
		if err != nil {
			t.Fatal(err)
		}
		l.Start()
		const n = 40
		for i := 0; i < n; i++ {
			l.Ingest(liveObs(uint16(i), 1000, false, "benign"))
		}
		// Everything polled and queued, worker still grinding.
		if !waitFor(t, 5*time.Second, func() bool { return l.Polled.Load() == n }) {
			t.Fatalf("polled = %d, want %d", l.Polled.Load(), n)
		}
		l.Stop()
		assertAccounting(t, l)
		stops := l.AbandonedByReason()["stop"]
		if drain {
			if l.DecisionCount() != n || stops != 0 {
				t.Errorf("drain: decisions=%d abandoned[stop]=%d, want %d/0", l.DecisionCount(), stops, n)
			}
		} else {
			if stops == 0 {
				t.Error("no-drain: nothing abandoned under reason stop despite a full queue")
			}
			if l.DecisionCount()+int(stops) != n {
				t.Errorf("no-drain: decisions=%d + stops=%d != %d", l.DecisionCount(), stops, n)
			}
		}
	}
}

// sizeGateModel is instant for big packets and slow for small ones,
// so attack-flow shards back up while benign shards stay fast.
type sizeGateModel struct{ d time.Duration }

func (m sizeGateModel) Name() string                 { return "gate" }
func (m sizeGateModel) Fit([][]float64, []int) error { return nil }
func (m sizeGateModel) Predict(x []float64) int {
	if x[1] < 100 { // FPktSize
		time.Sleep(m.d)
		return 1
	}
	return 0
}

// TestShardShedPathIsolatesOverload floods one shard's worker until
// it sheds and asserts the other shard keeps deciding — overload on
// one stripe does not starve the rest of the pipeline.
func TestShardShedPathIsolatesOverload(t *testing.T) {
	cfg := liveConfig(sizeGateModel{d: 10 * time.Millisecond})
	cfg.Shards = 2
	cfg.Workers = 2
	cfg.QueueCap = 4 // 2 per worker: the flooded worker sheds fast
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Pick one flow per shard.
	var hot, cold uint16
	for p := uint16(1); p < 200; p++ {
		if liveObs(p, 0, false, "").Key.Shard(2) == 0 && hot == 0 {
			hot = p
		}
		if liveObs(p, 0, false, "").Key.Shard(2) == 1 && cold == 0 {
			cold = p
		}
		if hot != 0 && cold != 0 {
			break
		}
	}
	l.Start()
	defer l.Stop()
	const coldN = 30
	for i := 0; i < coldN; i++ {
		for j := 0; j < 8; j++ {
			l.Ingest(liveObs(hot, 40, true, "synflood")) // slow path: floods its worker
		}
		l.Ingest(liveObs(cold, 1000, false, "benign")) // fast path on the other shard
		// Pace the feed so the healthy shard's worker (instant on big
		// packets) keeps up — only the flooded shard should shed.
		time.Sleep(2 * time.Millisecond)
	}
	coldKey := liveObs(cold, 0, false, "").Key
	coldDecided := func() int {
		n := 0
		for _, d := range l.Decisions() {
			if d.Key == coldKey {
				n++
			}
		}
		return n
	}
	if !waitFor(t, 10*time.Second, func() bool { return l.Shed.Load() > 0 && coldDecided() == coldN }) {
		t.Fatalf("shed=%d coldDecided=%d/%d — overloaded shard starved the healthy one",
			l.Shed.Load(), coldDecided(), coldN)
	}
	for _, d := range l.Decisions() {
		if d.Key == coldKey && d.Label != 0 {
			t.Errorf("cold-shard flow misdecided: %+v", d)
		}
	}
	if l.Health() != HealthShedding {
		t.Errorf("health = %v, want shedding while records are shed", l.Health())
	}
}

// TestHealthzEndpointTracksState drives the pipeline into shedding
// and back and asserts /healthz follows: 503 + "shedding" under loss,
// 200 + "healthy" after the recency window clears.
func TestHealthzEndpointTracksState(t *testing.T) {
	reg := obs.NewRegistry()
	cfg := liveConfig(slowModel{d: 5 * time.Millisecond})
	cfg.Registry = reg
	cfg.QueueCap = 2
	cfg.HealthRecency = 50 * time.Millisecond
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l.Start()
	defer l.Stop()
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	get := func() (int, string) {
		t.Helper()
		resp, err := http.Get(srv.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		buf := make([]byte, 4096)
		n, _ := resp.Body.Read(buf)
		return resp.StatusCode, string(buf[:n])
	}

	code, body := get()
	if code != http.StatusOK || !strings.HasPrefix(body, obs.StateHealthy) {
		t.Fatalf("initial /healthz = %d %q", code, body)
	}
	for i := 0; i < 60; i++ {
		l.Ingest(liveObs(uint16(i), 1000, false, "benign"))
	}
	if !waitFor(t, 5*time.Second, func() bool { return l.Shed.Load() > 0 && l.Health() == HealthShedding }) {
		t.Fatalf("never reached shedding; shed=%d", l.Shed.Load())
	}
	code, body = get()
	if code != http.StatusServiceUnavailable || !strings.HasPrefix(body, obs.StateShedding) {
		t.Errorf("shedding /healthz = %d %q, want 503 shedding", code, body)
	}
	if !strings.Contains(body, "transition:") {
		t.Errorf("/healthz missing transition log:\n%s", body)
	}
	// Quiet down: once the backlog drains and the recency window
	// expires, reassessment lowers the state back to healthy.
	if !waitFor(t, 10*time.Second, func() bool { return l.Health() == HealthHealthy }) {
		t.Fatalf("health stuck at %v after quiesce", l.Health())
	}
	code, body = get()
	if code != http.StatusOK || !strings.HasPrefix(body, obs.StateHealthy) {
		t.Errorf("recovered /healthz = %d %q, want 200 healthy", code, body)
	}
}

// TestMalformedSnapshotsAbandonedNotFatal feeds the workers a record
// whose feature vector disagrees with the scaler; it must be
// abandoned under reason "malformed", not panic a kernel.
func TestMalformedSnapshotsAbandonedNotFatal(t *testing.T) {
	cfg := liveConfig(attackDetector())
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l.Start()
	// Bypass Ingest (which always builds well-formed vectors) and
	// plant a malformed record straight in the journal.
	l.DB.UpsertFlow(liveObs(1, 0, false, "").Key, []float64{1, 2, 3}, 1, 1, 1, false, "benign")
	l.Ingest(liveObs(2, 40, true, "synflood"))
	if !waitFor(t, 5*time.Second, func() bool {
		return l.AbandonedByReason()["malformed"] == 1 && l.DecisionCount() == 1
	}) {
		t.Fatalf("malformed=%d decisions=%d, want 1/1",
			l.AbandonedByReason()["malformed"], l.DecisionCount())
	}
	l.Stop()
	assertAccounting(t, l)
}

// TestLiveRejectsMismatchedBundle pins the construction-time shape
// check: a model reporting a trained width that disagrees with the
// scaler is a config error, not a runtime panic.
func TestLiveRejectsMismatchedBundle(t *testing.T) {
	cfg := liveConfig(shapedModel{stubModel: namedDetector("W"), width: 3})
	if _, err := NewLive(cfg); err == nil {
		t.Error("mismatched model width accepted")
	}
}

// shapedModel reports a fixed trained input width.
type shapedModel struct {
	stubModel
	width int
}

func (s shapedModel) Features() int { return s.width }
