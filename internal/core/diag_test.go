package core

import (
	"strings"
	"testing"
)

// TestFlowJourneyCompleteness samples every record (1-in-1) and checks
// that each finished journey carries the full hop sequence — ingest,
// journal, poll, batch, predict, and the completing vote — with no
// journey left in flight after the pipeline drains.
func TestFlowJourneyCompleteness(t *testing.T) {
	cfg := liveConfig(attackDetector())
	cfg.JourneySampleEvery = 1
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l.Start()

	const n = 40
	for i := 0; i < n; i++ {
		l.Ingest(liveObs(uint16(2000+i), 40, true, "synflood"))
	}
	if !waitFor(t, 5e9, func() bool {
		return l.completed.Load() >= n && l.Journeys().Active() == 0
	}) {
		t.Fatalf("pipeline did not drain: completed=%d active=%d",
			l.completed.Load(), l.Journeys().Active())
	}
	l.Stop()

	recent := l.Journeys().Recent()
	if len(recent) == 0 {
		t.Fatal("no finished journeys recorded at 1-in-1 sampling")
	}
	completed, aborted, _ := l.Journeys().Stats()
	if completed < n {
		t.Errorf("completed journeys = %d, want >= %d", completed, n)
	}
	if aborted != 0 {
		t.Errorf("aborted journeys = %d, want 0 on a clean run", aborted)
	}
	for _, j := range recent {
		if j.Aborted != "" {
			t.Errorf("journey %s aborted (%s) on a clean run", j.Flow, j.Aborted)
			continue
		}
		if !j.Done {
			t.Errorf("journey %s in Recent() but not done", j.Flow)
		}
		prev := j.Hops[0].At
		for _, hop := range []string{"ingest", "journal", "poll", "batch", "predict", "vote"} {
			at, ok := j.Hop(hop)
			if !ok {
				t.Errorf("journey %s missing hop %q: %s", j.Flow, hop, j.String())
				continue
			}
			if at.Before(prev) {
				t.Errorf("journey %s hop %q went backwards in time: %s", j.Flow, hop, j.String())
			}
			prev = at
		}
	}
}

// TestJourneySamplingDisabled pins the opt-out: a negative sample rate
// leaves the pipeline journey-free — no sampler hops, no finished
// journeys, and the nil accessor stays safe.
func TestJourneySamplingDisabled(t *testing.T) {
	cfg := liveConfig(attackDetector())
	cfg.JourneySampleEvery = -1
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l.Start()
	for i := 0; i < 10; i++ {
		l.Ingest(liveObs(uint16(3000+i), 40, false, ""))
	}
	waitFor(t, 5e9, func() bool { return l.completed.Load() >= 10 })
	l.Stop()

	if got := len(l.Journeys().Recent()); got != 0 {
		t.Errorf("journeys recorded with sampling disabled: %d", got)
	}
}

// TestLiveEventLog checks the structured event log carries the
// lifecycle markers and that the diagnostic gauges the events describe
// are live in the registry.
func TestLiveEventLog(t *testing.T) {
	cfg := liveConfig(attackDetector())
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l.Start()
	for i := 0; i < 5; i++ {
		l.Ingest(liveObs(7, 40, true, "synflood"))
	}
	waitFor(t, 5e9, func() bool { return l.DecisionCount() > 0 })
	l.Stop()

	var started, stopped bool
	for _, e := range l.Events().Recent() {
		switch e.Msg {
		case "pipeline started":
			started = true
			if e.Attrs["shards"] == "" || e.Attrs["workers"] == "" {
				t.Errorf("pipeline started event missing sizing attrs: %v", e.Attrs)
			}
		case "pipeline stopped":
			stopped = true
		}
	}
	if !started || !stopped {
		t.Errorf("lifecycle events missing: started=%v stopped=%v", started, stopped)
	}

	snap := l.MetricsSnapshot()
	for _, want := range []string{
		"intddos_queue_depth",
		"go_goroutines",
	} {
		if _, ok := snap.Gauges[want]; !ok {
			t.Errorf("gauge %q missing from registry snapshot", want)
		}
	}
	// Per-worker vectors render into the Prometheus exposition.
	var sb strings.Builder
	l.Obs().WritePrometheus(&sb)
	for _, want := range []string{
		"intddos_worker_queue_depth{worker=\"0\"}",
		"intddos_worker_utilization{worker=\"0\"}",
		"intddos_shard_polled_total",
	} {
		if !strings.Contains(sb.String(), want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
}

// TestHealthTransitionsRenderFromEvents pins the legacy transition-log
// contract: health state changes land in the event log and
// HealthTransitions() re-renders them in the exact historical format
// the chaos harness and /healthz parse.
func TestHealthTransitionsRenderFromEvents(t *testing.T) {
	l, err := NewLive(liveConfig(attackDetector()))
	if err != nil {
		t.Fatal(err)
	}
	l.setHealthState(HealthDegraded, "worker 0 restarted")
	l.setHealthState(HealthHealthy, "worker pool stable")

	trs := l.HealthTransitions()
	if len(trs) != 2 {
		t.Fatalf("transitions = %d, want 2: %v", len(trs), trs)
	}
	if !strings.Contains(trs[0], "healthy -> degraded (worker 0 restarted)") {
		t.Errorf("transition format drifted: %q", trs[0])
	}
	if !strings.Contains(trs[1], "degraded -> healthy (worker pool stable)") {
		t.Errorf("transition format drifted: %q", trs[1])
	}
}
