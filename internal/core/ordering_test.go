package core

import (
	"net/netip"
	"sync"
	"testing"
	"time"

	"github.com/amlight/intddos/internal/flow"
	"github.com/amlight/intddos/internal/netsim"
)

// TestLiveShardAffinityOrdering is the tentpole's correctness
// contract: with many workers AND many shards, every flow's decisions
// must still arrive in per-flow journal order, because a flow maps to
// one shard, one poller, and one worker. Cross-flow order is
// unspecified; per-flow order is what the 2-of-3 vote window needs.
func TestLiveShardAffinityOrdering(t *testing.T) {
	cfg := liveConfig(attackDetector())
	cfg.Workers = 8
	cfg.Shards = 8
	cfg.PollInterval = time.Millisecond
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if l.Shards() != 8 {
		t.Fatalf("Shards() = %d", l.Shards())
	}

	perFlow := make(map[flow.Key][]int)
	var mu sync.Mutex
	l.OnDecision = func(d Decision) {
		mu.Lock()
		perFlow[d.Key] = append(perFlow[d.Key], d.Seq)
		mu.Unlock()
	}
	l.Start()
	defer l.Stop()

	// 32 flows spread over the shards, 20 updates each, ingested from
	// concurrent goroutines (one per flow, so each flow's updates are
	// ordered at the source like a real packet stream).
	const flows, updates = 32, 20
	var wg sync.WaitGroup
	for f := 0; f < flows; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			key := flow.Key{
				Src: netip.AddrFrom4([4]byte{10, 1, 0, byte(f)}), Dst: netip.MustParseAddr("10.0.0.2"),
				SrcPort: uint16(4000 + f), DstPort: 80, Proto: netsim.TCP,
			}
			for i := 0; i < updates; i++ {
				l.Ingest(flow.PacketInfo{Key: key, Length: 40, HasTelemetry: true,
					Label: true, AttackType: "synflood"})
			}
		}(f)
	}
	wg.Wait()
	want := flows * updates
	if !waitFor(t, 10*time.Second, func() bool {
		mu.Lock()
		defer mu.Unlock()
		n := 0
		for _, seqs := range perFlow {
			n += len(seqs)
		}
		return n == want
	}) {
		t.Fatalf("decisions did not drain (QueueCap default should not shed %d items)", want)
	}

	mu.Lock()
	defer mu.Unlock()
	if len(perFlow) != flows {
		t.Fatalf("saw %d flows, want %d", len(perFlow), flows)
	}
	for key, seqs := range perFlow {
		if len(seqs) != updates {
			t.Errorf("%s: %d decisions, want %d", key, len(seqs), updates)
		}
		for i, seq := range seqs {
			if seq != i {
				t.Fatalf("%s: decision order violated at %d: got seqs %v", key, i, seqs)
			}
		}
	}
}

// TestLiveShardedEndToEnd re-runs the basic pipeline shape at
// Shards=4 to make sure the sharded configuration reaches the same
// decisions as the legacy layout on the same input.
func TestLiveShardedEndToEnd(t *testing.T) {
	cfg := liveConfig(attackDetector())
	cfg.Shards = 4
	cfg.Workers = 2
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l.Start()
	defer l.Stop()
	for i := 0; i < 5; i++ {
		l.Ingest(liveObs(7, 40, true, "synflood"))
	}
	if !waitFor(t, 2*time.Second, func() bool { return len(l.Decisions()) == 5 }) {
		t.Fatalf("decisions = %d, want 5", len(l.Decisions()))
	}
	for i, d := range l.Decisions() {
		if d.Label != 1 || !d.Correct() {
			t.Errorf("decision %d = %+v", i, d)
		}
	}
	snap := l.MetricsSnapshot()
	if got := snap.Gauges["intddos_pipeline_shards"]; got != 4 {
		t.Errorf("pipeline shards gauge = %v", got)
	}
	if got := snap.Gauges["intddos_store_shards"]; got != 4 {
		t.Errorf("store shards gauge = %v", got)
	}
}
