package core

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"github.com/amlight/intddos/internal/checkpoint"
	"github.com/amlight/intddos/internal/fault"
	"github.com/amlight/intddos/internal/flow"
	"github.com/amlight/intddos/internal/ml"
	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/store"
)

// countVoter votes attack while a flow's update count is below
// thresh, then flips benign — a model whose vote *changes over a
// flow's lifetime*, so the window majority around the flip depends on
// pre-flip history. A restore that lost the vote windows would
// decide those updates differently than an uninterrupted run.
func countVoter(thresh float64) stubModel {
	feats := flow.INTFeatures()
	for i, f := range feats {
		if f == flow.FCount {
			return stubModel{name: "countvoter", index: i, thresh: thresh}
		}
	}
	panic("FCount not in INTFeatures")
}

// ckptConfig is the shared pipeline shape of the kill-restore tests.
func ckptConfig(dir string) LiveConfig {
	cfg := liveConfig(attackDetector(), countVoter(4))
	cfg.Shards = 4
	cfg.Workers = 2
	cfg.CheckpointDir = dir
	return cfg
}

// feedRange pushes updates [from, to) for nFlows flows, same stream
// shape as feedChaos.
func feedRange(l *Live, nFlows, from, to int) {
	for u := from; u < to; u++ {
		for f := 0; f < nFlows; f++ {
			sport := uint16(2000 + f)
			attack := f%3 == 0
			length := uint16(1000)
			typ := "benign"
			if attack {
				length, typ = 40, "synflood"
			}
			l.HandleReport(chaosReport(sport, length, attack, typ))
		}
	}
}

// predTrace builds the per-flow prediction sequence (label + votes)
// from the store's prediction log — the bit-identity unit: per-flow
// order is guaranteed by shard affinity, and for a restored pipeline
// the log includes the pre-crash history.
func predTrace(l *Live) map[string][]string {
	out := make(map[string][]string)
	for _, p := range l.DB.Predictions() {
		key := p.Key.String()
		out[key] = append(out[key], fmt.Sprintf("label=%d votes=%v", p.Label, p.Votes))
	}
	return out
}

// TestKillRestoreBitIdentical is the tentpole's acceptance test: a
// run killed mid-stream and restored from its checkpoint produces
// bit-identical per-flow decision sequences to an uninterrupted
// reference run, and the restored run's accounting closes.
//
// Run A processes the full stream. Run B processes a prefix, writes a
// checkpoint, and is discarded without Stop-side draining counting
// for anything (the simulated SIGKILL — everything not in the
// checkpoint is gone). Run C boots from B's checkpoint and processes
// the suffix. C's prediction log (pre-crash history + post-restore
// decisions) must equal A's flow for flow.
func TestKillRestoreBitIdentical(t *testing.T) {
	const nFlows, cut, total = 30, 3, 6

	// Reference run: the full stream, uninterrupted.
	a, err := NewLive(ckptConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	feedRange(a, nFlows, 0, total)
	settle(t, a, 5*time.Second)
	a.Stop()
	want := predTrace(a)

	// Crash run: prefix only, checkpoint while updates may still be
	// unpolled (the barrier quiesces in-flight records; the journal
	// tail rides the checkpoint as restored-pending work).
	dir := t.TempDir()
	b, err := NewLive(ckptConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	feedRange(b, nFlows, 0, cut)
	path, n, err := b.WriteCheckpoint()
	if err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if n == 0 {
		t.Fatal("empty checkpoint written")
	}
	if b.Checkpoints.Load() != 1 {
		t.Errorf("Checkpoints = %d, want 1", b.Checkpoints.Load())
	}
	t.Logf("checkpoint %s: %d bytes", path, n)
	b.Stop() // the simulated kill: B's post-checkpoint state is discarded

	// Restored run: boots from the checkpoint, finishes the stream.
	c, err := NewLive(ckptConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	r := c.Restore()
	if r == nil {
		t.Fatal("no restore summary after booting from a checkpoint dir")
	}
	if r.Flows == 0 || r.StoreFlows == 0 {
		t.Errorf("restore summary empty: %+v", r)
	}
	c.Start()
	feedRange(c, nFlows, cut, total)
	// settle() compares Polled against Snapshots, which does not count
	// the restored journal backlog — wait for the full prediction log
	// instead (bit-identity implies the same total as the reference).
	wantPreds := len(a.DB.Predictions())
	if !waitFor(t, 5*time.Second, func() bool {
		return len(c.DB.Predictions()) >= wantPreds &&
			c.Polled.Load() == int64(c.DecisionCount())+c.Shed.Load()+c.Abandoned.Load()
	}) {
		t.Fatalf("restored run produced %d predictions, reference %d", len(c.DB.Predictions()), wantPreds)
	}
	c.Stop()
	assertAccounting(t, c)

	got := predTrace(c)
	if len(got) != len(want) {
		t.Fatalf("restored run decided %d flows, reference %d", len(got), len(want))
	}
	for key, wantSeq := range want {
		gotSeq := got[key]
		if len(gotSeq) != len(wantSeq) {
			t.Errorf("flow %s: %d predictions vs reference %d\n got: %v\nwant: %v",
				key, len(gotSeq), len(wantSeq), gotSeq, wantSeq)
			continue
		}
		for i := range wantSeq {
			if gotSeq[i] != wantSeq[i] {
				t.Errorf("flow %s decision %d diverged across the crash:\n got: %s\nwant: %s",
					key, i, gotSeq[i], wantSeq[i])
			}
		}
	}
}

// TestKillRestoreV1Compat pins the cross-version promise: a version-1
// snapshot — global prediction log, journal entries without global
// stamps — still restores into today's pipeline, and the restored run
// finishes the stream with per-flow decision sequences bit-identical
// to an uninterrupted reference. The v1 file is built from a live
// capture via checkpoint.EncodeV1, folding the per-shard logs into
// the one global section exactly as a version-1 writer recorded them.
func TestKillRestoreV1Compat(t *testing.T) {
	const nFlows, cut, total = 30, 3, 6

	a, err := NewLive(ckptConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	feedRange(a, nFlows, 0, total)
	settle(t, a, 5*time.Second)
	a.Stop()
	want := predTrace(a)

	// Crash run: capture the prefix, then write it in the version-1
	// layout — the snapshot an old binary would have left on disk.
	b, err := NewLive(ckptConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	feedRange(b, nFlows, 0, cut)
	snap, err := b.CaptureCheckpoint()
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	b.Stop()
	logs := make([][]store.PredictionRecord, len(snap.ShardStates))
	for s := range snap.ShardStates {
		logs[s] = snap.ShardStates[s].Store.Preds
	}
	snap.Predictions = store.MergePredictions(logs)
	dir := t.TempDir()
	data := checkpoint.EncodeV1(snap)
	if err := os.WriteFile(filepath.Join(dir, checkpoint.FileName(snap.Seq)), data, 0o644); err != nil {
		t.Fatal(err)
	}

	c, err := NewLive(ckptConfig(dir))
	if err != nil {
		t.Fatalf("restore from v1 snapshot: %v", err)
	}
	r := c.Restore()
	if r == nil {
		t.Fatal("no restore summary after booting from a v1 checkpoint")
	}
	if r.Predictions != len(snap.Predictions) {
		t.Errorf("restored %d predictions from the v1 global log, want %d", r.Predictions, len(snap.Predictions))
	}
	c.Start()
	feedRange(c, nFlows, cut, total)
	wantPreds := len(a.DB.Predictions())
	if !waitFor(t, 5*time.Second, func() bool {
		return len(c.DB.Predictions()) >= wantPreds &&
			c.Polled.Load() == int64(c.DecisionCount())+c.Shed.Load()+c.Abandoned.Load()
	}) {
		t.Fatalf("restored run produced %d predictions, reference %d", len(c.DB.Predictions()), wantPreds)
	}
	c.Stop()
	assertAccounting(t, c)

	// The re-stamped history plus post-restore decisions still merge
	// into one strictly increasing global order.
	merged := c.DB.Predictions()
	for i := 1; i < len(merged); i++ {
		if merged[i].Seq <= merged[i-1].Seq {
			t.Fatalf("merged log not strictly Seq-increasing at %d after v1 restore", i)
		}
	}

	got := predTrace(c)
	if len(got) != len(want) {
		t.Fatalf("restored run decided %d flows, reference %d", len(got), len(want))
	}
	for key, wantSeq := range want {
		gotSeq := got[key]
		if len(gotSeq) != len(wantSeq) {
			t.Errorf("flow %s: %d predictions vs reference %d\n got: %v\nwant: %v",
				key, len(gotSeq), len(wantSeq), gotSeq, wantSeq)
			continue
		}
		for i := range wantSeq {
			if gotSeq[i] != wantSeq[i] {
				t.Errorf("flow %s decision %d diverged across the v1 restore:\n got: %s\nwant: %s",
					key, i, gotSeq[i], wantSeq[i])
			}
		}
	}
}

// TestKillRestoreUnderFaults reruns the kill-restore cycle with the
// fault injector firing — store errors/stalls, worker panics, model
// failures. Bit-identity is out (faults perturb decisions), but the
// restored pipeline must still boot from the checkpoint, finish the
// stream, and close its accounting. Full-every-4 cadence makes the
// second checkpoint an incremental delta, so the chain path runs
// under faults too.
func TestKillRestoreUnderFaults(t *testing.T) {
	dir := t.TempDir()
	mkLive := func() *Live {
		in, err := fault.Parse("store.err=0.1,store.stall=200us@0.05,panic=0.02,model.fail=countvoter@0.2", 99)
		if err != nil {
			t.Fatal(err)
		}
		cfg := ckptConfig(dir)
		cfg.CheckpointFullEvery = 4
		cfg.Fault = in
		cfg.WorkerRestartBudget = -1
		cfg.WorkerRestartBackoff = time.Millisecond
		cfg.StoreRetryBackoff = 100 * time.Microsecond
		l, err := NewLive(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return l
	}

	b := mkLive()
	b.Start()
	feedRange(b, 20, 0, 2)
	if _, _, err := b.WriteCheckpoint(); err != nil {
		t.Fatalf("checkpoint under faults: %v", err)
	}
	feedRange(b, 20, 2, 3)
	if _, _, err := b.WriteCheckpoint(); err != nil {
		t.Fatalf("delta checkpoint under faults: %v", err)
	}
	b.Stop()

	c := mkLive()
	if c.Restore() == nil {
		t.Fatal("no restore under faults")
	}
	c.Start()
	feedRange(c, 20, 3, 6)
	// Drain the restored journal backlog plus the suffix (settle's
	// Snapshots bound does not see restored entries), then require the
	// accounting to close.
	if !waitFor(t, 10*time.Second, func() bool {
		return c.DB.JournalLen() == 0 &&
			c.Polled.Load() == int64(c.DecisionCount())+c.Shed.Load()+c.Abandoned.Load()
	}) {
		t.Fatalf("restored pipeline did not drain under faults: journal=%d polled=%d decided=%d shed=%d abandoned=%d",
			c.DB.JournalLen(), c.Polled.Load(), c.DecisionCount(), c.Shed.Load(), c.Abandoned.Load())
	}
	c.Stop()
	assertAccounting(t, c)
}

// compareTraces asserts two per-flow decision traces are
// bit-identical.
func compareTraces(t *testing.T, got, want map[string][]string, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: decided %d flows, reference %d", label, len(got), len(want))
	}
	for key, wantSeq := range want {
		gotSeq := got[key]
		if len(gotSeq) != len(wantSeq) {
			t.Errorf("%s: flow %s: %d predictions vs reference %d\n got: %v\nwant: %v",
				label, key, len(gotSeq), len(wantSeq), gotSeq, wantSeq)
			continue
		}
		for i := range wantSeq {
			if gotSeq[i] != wantSeq[i] {
				t.Errorf("%s: flow %s decision %d diverged:\n got: %s\nwant: %s",
					label, key, i, gotSeq[i], wantSeq[i])
			}
		}
	}
}

// referenceRun processes the full stream uninterrupted and returns
// its per-flow decision trace and prediction count.
func referenceRun(t *testing.T, nFlows, total int) (map[string][]string, int) {
	t.Helper()
	a, err := NewLive(ckptConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	a.Start()
	feedRange(a, nFlows, 0, total)
	settle(t, a, 5*time.Second)
	a.Stop()
	return predTrace(a), len(a.DB.Predictions())
}

// finishRestored feeds the stream suffix [from, total) into a
// restored run, waits for the full prediction log, and checks its
// accounting closes.
func finishRestored(t *testing.T, c *Live, nFlows, from, total, wantPreds int) {
	t.Helper()
	c.Start()
	feedRange(c, nFlows, from, total)
	if !waitFor(t, 5*time.Second, func() bool {
		return len(c.DB.Predictions()) >= wantPreds &&
			c.Polled.Load() == int64(c.DecisionCount())+c.Shed.Load()+c.Abandoned.Load()
	}) {
		t.Fatalf("restored run produced %d predictions, reference %d", len(c.DB.Predictions()), wantPreds)
	}
	c.Stop()
	assertAccounting(t, c)
}

// TestKillRestoreDeltaChain is the incremental-checkpoint acceptance
// test: a run that wrote a full snapshot and then two deltas, killed,
// restores the whole chain and finishes the stream with per-flow
// decision sequences bit-identical to an uninterrupted reference.
func TestKillRestoreDeltaChain(t *testing.T) {
	const nFlows, total = 30, 8
	cuts := []int{2, 4, 6}
	want, wantPreds := referenceRun(t, nFlows, total)

	dir := t.TempDir()
	cfg := ckptConfig(dir)
	cfg.CheckpointFullEvery = 8 // first write full, the rest deltas
	b, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	prev := 0
	for _, cut := range cuts {
		feedRange(b, nFlows, prev, cut)
		if _, _, err := b.WriteCheckpoint(); err != nil {
			t.Fatalf("checkpoint at cut %d: %v", cut, err)
		}
		prev = cut
	}
	b.Stop() // simulated kill

	// The directory must hold the expected chain shape: full(1) with
	// deltas 2 and 3 linked parent-by-parent.
	for seq, wantDelta := range map[uint64]bool{1: false, 2: true, 3: true} {
		m, err := checkpoint.ReadMeta(filepath.Join(dir, checkpoint.FileName(seq)))
		if err != nil {
			t.Fatalf("meta seq %d: %v", seq, err)
		}
		if m.Delta != wantDelta {
			t.Fatalf("seq %d: delta=%v, want %v", seq, m.Delta, wantDelta)
		}
		if wantDelta && m.BaseSeq != seq-1 {
			t.Fatalf("seq %d chains to %d, want %d", seq, m.BaseSeq, seq-1)
		}
	}

	c, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	r := c.Restore()
	if r == nil {
		t.Fatal("no restore summary after booting from a delta chain")
	}
	if r.Seq != 3 {
		t.Fatalf("restored to seq %d, want the chain tip 3", r.Seq)
	}
	finishRestored(t, c, nFlows, cuts[len(cuts)-1], total, wantPreds)
	compareTraces(t, predTrace(c), want, "delta-chain restore")
}

// TestKillRestoreMidDeltaChain crashes the process mid-delta-write:
// the newest delta file is torn. Restore must fall back to the
// longest intact chain prefix — a consistent cut — and re-feeding the
// stream from that cut must again be bit-identical to the reference.
func TestKillRestoreMidDeltaChain(t *testing.T) {
	const nFlows, total = 30, 8
	cuts := []int{2, 4, 6}
	want, wantPreds := referenceRun(t, nFlows, total)

	dir := t.TempDir()
	cfg := ckptConfig(dir)
	cfg.CheckpointFullEvery = 8
	b, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	prev := 0
	for _, cut := range cuts {
		feedRange(b, nFlows, prev, cut)
		if _, _, err := b.WriteCheckpoint(); err != nil {
			t.Fatalf("checkpoint at cut %d: %v", cut, err)
		}
		prev = cut
	}
	b.Stop()

	// Tear the newest delta — the torn tail a crash mid-write leaves
	// behind if the rename raced the power cut.
	path3 := filepath.Join(dir, checkpoint.FileName(3))
	data, err := os.ReadFile(path3)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path3, data[:len(data)/2], 0o644); err != nil {
		t.Fatal(err)
	}

	c, err := NewLive(cfg)
	if err != nil {
		t.Fatalf("restore with torn chain tip: %v", err)
	}
	r := c.Restore()
	if r == nil {
		t.Fatal("no restore summary")
	}
	if r.Seq != 2 {
		t.Fatalf("restored to seq %d, want the intact prefix tip 2", r.Seq)
	}
	// The fallback cut is cuts[1]: replay the stream from there.
	finishRestored(t, c, nFlows, cuts[1], total, wantPreds)
	compareTraces(t, predTrace(c), want, "mid-chain fallback restore")
}

// TestKillRestoreV2Compat pins the version-2 promise alongside v1: a
// v2 snapshot (per-shard prediction logs, no delta surface) restores
// into today's pipeline bit-identically.
func TestKillRestoreV2Compat(t *testing.T) {
	const nFlows, cut, total = 30, 3, 6
	want, wantPreds := referenceRun(t, nFlows, total)

	b, err := NewLive(ckptConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	feedRange(b, nFlows, 0, cut)
	snap, err := b.CaptureCheckpoint()
	if err != nil {
		t.Fatalf("capture: %v", err)
	}
	b.Stop()
	dir := t.TempDir()
	data := checkpoint.EncodeV2(snap)
	if err := os.WriteFile(filepath.Join(dir, checkpoint.FileName(snap.Seq)), data, 0o644); err != nil {
		t.Fatal(err)
	}

	c, err := NewLive(ckptConfig(dir))
	if err != nil {
		t.Fatalf("restore from v2 snapshot: %v", err)
	}
	if c.Restore() == nil {
		t.Fatal("no restore summary after booting from a v2 checkpoint")
	}
	finishRestored(t, c, nFlows, cut, total, wantPreds)
	compareTraces(t, predTrace(c), want, "v2 restore")
}

// TestCaptureDeterministic is the vote-window ordering fix's pin: two
// captures of an unchanged pipeline are equal — as encoded bytes and
// as values, windows included. Before the fix, map iteration order
// leaked into Snapshot.Windows, so double-capture equality failed
// even though the encoder sorted the wire form.
func TestCaptureDeterministic(t *testing.T) {
	l, err := NewLive(ckptConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	l.Start()
	feedRange(l, 20, 0, 4)
	settle(t, l, 5*time.Second)
	s1, err := l.CaptureCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	s2, err := l.CaptureCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	l.Stop()
	if len(s1.Windows) == 0 {
		t.Fatal("capture has no vote windows; the ordering property is vacuous")
	}
	// Seq and the wall-clock stamp legitimately differ; everything
	// else must not.
	s2.Seq = s1.Seq
	s2.TakenAtUnixNano = s1.TakenAtUnixNano
	if !reflect.DeepEqual(s1.Windows, s2.Windows) {
		t.Error("vote windows differ across double capture (map order leaked)")
	}
	if !bytes.Equal(checkpoint.Encode(s1), checkpoint.Encode(s2)) {
		t.Error("double capture not byte-identical")
	}
}

// TestEncodeOutsideBarrier is the regression pin for the tentpole: by
// the time WriteCheckpoint starts encoding (the post-capture hook),
// every shard's checkpoint barrier must already be released — encode
// and IO are not allowed back inside the frozen region.
func TestEncodeOutsideBarrier(t *testing.T) {
	l, err := NewLive(ckptConfig(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	l.Start()
	feedRange(l, 10, 0, 2)
	hookRan := false
	l.ckptPostCapture = func(*checkpoint.Snapshot) {
		hookRan = true
		for s := range l.ckptMu {
			if !l.ckptMu[s].TryLock() {
				t.Errorf("shard %d barrier still held when encoding began", s)
				continue
			}
			l.ckptMu[s].Unlock()
		}
	}
	if _, _, err := l.WriteCheckpoint(); err != nil {
		t.Fatal(err)
	}
	if !hookRan {
		t.Fatal("post-capture hook never ran")
	}
	if l.LastCheckpointBarrier() <= 0 {
		t.Error("barrier hold not recorded")
	}
	l.Stop()
}

// TestRestoreRejectsMismatchedPipeline pins the refusal paths: a
// checkpoint taken at one shard count, model bundle, or feature width
// must not load into a pipeline with another.
func TestRestoreRejectsMismatchedPipeline(t *testing.T) {
	dir := t.TempDir()
	b, err := NewLive(ckptConfig(dir))
	if err != nil {
		t.Fatal(err)
	}
	b.Start()
	feedRange(b, 10, 0, 2)
	if _, _, err := b.WriteCheckpoint(); err != nil {
		t.Fatal(err)
	}
	b.Stop()

	shardsCfg := ckptConfig(dir)
	shardsCfg.Shards = 2
	if _, err := NewLive(shardsCfg); err == nil || !strings.Contains(err.Error(), "shards") {
		t.Errorf("2-shard pipeline accepted a 4-shard checkpoint: %v", err)
	}

	modelCfg := ckptConfig(dir)
	modelCfg.Models = []ml.Classifier{attackDetector()}
	if _, err := NewLive(modelCfg); err == nil || !strings.Contains(err.Error(), "bundle") {
		t.Errorf("different ensemble accepted the checkpoint: %v", err)
	}

	// A valid matching pipeline still loads after the refusals (the
	// file was never touched).
	ok, err := NewLive(ckptConfig(dir))
	if err != nil || ok.Restore() == nil {
		t.Fatalf("matching pipeline failed to restore: %v", err)
	}

	// An all-corrupt checkpoint dir is a hard error, not a silent
	// fresh boot.
	badDir := t.TempDir()
	if err := os.WriteFile(filepath.Join(badDir, checkpoint.FileName(1)), []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	badCfg := ckptConfig(badDir)
	if _, err := NewLive(badCfg); err == nil {
		t.Error("pipeline booted silently from an all-corrupt checkpoint dir")
	}
}

// TestPeriodicCheckpointer proves CheckpointEvery writes checkpoints
// on its own and retention prunes old files.
func TestPeriodicCheckpointer(t *testing.T) {
	dir := t.TempDir()
	cfg := ckptConfig(dir)
	cfg.CheckpointEvery = 20 * time.Millisecond
	cfg.CheckpointKeep = 2
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l.Start()
	feedRange(l, 10, 0, 3)
	if !waitFor(t, 5*time.Second, func() bool { return l.Checkpoints.Load() >= 3 }) {
		t.Fatalf("periodic checkpointer wrote %d checkpoints", l.Checkpoints.Load())
	}
	l.Stop()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) > cfg.CheckpointKeep {
		t.Errorf("retention kept %d files, want <= %d", len(ents), cfg.CheckpointKeep)
	}
	snap, _, ok, err := checkpoint.Latest(dir)
	if !ok || err != nil || snap.Shards != 4 {
		t.Fatalf("latest periodic checkpoint unusable: ok=%v err=%v", ok, err)
	}
}

// TestSweepBoundsStoreFlowCount pins the swept-flow leak fix: idle
// eviction must delete the store's flow records and the vote windows,
// not just the flow-table entries, so waves of short-lived flows
// (spoofed-source floods) cannot grow the store without bound.
func TestSweepBoundsStoreFlowCount(t *testing.T) {
	cfg := liveConfig(attackDetector())
	cfg.FlowIdleTimeout = 10 * time.Millisecond
	l, err := NewLive(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Not started: Ingest is synchronous and sweep is driven directly,
	// so the test is deterministic.
	const wave = 200
	for w := 0; w < 5; w++ {
		for f := 0; f < wave; f++ {
			l.Ingest(liveObs(uint16(1000+w*wave+f), 40, true, "synflood"))
		}
		if got := l.DB.FlowCount(); got != wave {
			t.Fatalf("wave %d: store holds %d flows, want %d", w, got, wave)
		}
		time.Sleep(15 * time.Millisecond) // everything idles past the TTL
		l.sweep()
		if got := l.DB.FlowCount(); got != 0 {
			t.Fatalf("wave %d: store leaked %d flow records after sweep", w, got)
		}
		if got := l.tables.Len(); got != 0 {
			t.Fatalf("wave %d: table kept %d records", w, got)
		}
		if got := l.windowCount(); got != 0 {
			t.Fatalf("wave %d: %d vote windows leaked", w, got)
		}
	}
	if l.Evictions.Load() != 5*wave {
		t.Errorf("evictions = %d, want %d", l.Evictions.Load(), 5*wave)
	}
}

// TestMechanismSweepDeletesStoreRecords is the simulated mechanism's
// side of the leak fix: Table.Sweep's eviction hook removes database
// rows and vote windows.
func TestMechanismSweepDeletesStoreRecords(t *testing.T) {
	eng := netsim.NewEngine()
	cfg := testConfig(attackDetector())
	cfg.FlowIdleTimeout = 100
	m, err := New(eng, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for f := 0; f < 50; f++ {
		m.Observe(simObs(uint16(3000+f), 10, 40, true, "synflood"))
	}
	if m.DB.FlowCount() != 50 {
		t.Fatalf("store holds %d flows", m.DB.FlowCount())
	}
	m.windows[simObs(3000, 10, 40, true, "synflood").Key] = []int{1, 1}
	if n := m.Table.Sweep(500); n != 50 {
		t.Fatalf("swept %d, want 50", n)
	}
	if m.DB.FlowCount() != 0 {
		t.Errorf("store leaked %d records after sweep", m.DB.FlowCount())
	}
	if len(m.windows) != 0 {
		t.Errorf("%d vote windows leaked", len(m.windows))
	}
}
