package core

import (
	"errors"
	"fmt"
	"log/slog"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"github.com/amlight/intddos/internal/checkpoint"
	"github.com/amlight/intddos/internal/fault"
	"github.com/amlight/intddos/internal/flow"
	"github.com/amlight/intddos/internal/ml"
	"github.com/amlight/intddos/internal/ml/sketch"
	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/obs"
	"github.com/amlight/intddos/internal/obs/prof"
	"github.com/amlight/intddos/internal/store"
	"github.com/amlight/intddos/internal/telemetry"
)

// LiveConfig parameterizes the wall-clock runtime of the mechanism.
type LiveConfig struct {
	// Features selects the model input vector (default: the paper's
	// 15 INT features).
	Features flow.FeatureSet
	// Models is the pre-trained ensemble.
	Models []ml.Classifier
	// Scaler standardizes snapshots; required.
	Scaler *ml.StandardScaler

	// PollInterval is the CentralServer polling period (default 5 ms
	// wall time). With sharding, every shard poller ticks at this
	// period independently.
	PollInterval time.Duration
	// PollBatch bounds records fetched per poll per shard (default 256).
	PollBatch int
	// QueueCap bounds the prediction input channels (default 4096,
	// divided across workers); beyond it updates are shed and counted.
	QueueCap int
	// Workers is the number of prediction goroutines (default 1,
	// like the paper's single Python predictor). Each worker owns its
	// own input channel; shards are assigned to workers round-robin,
	// so all updates of one flow are predicted by one worker in
	// journal order — the invariant the vote window needs.
	Workers int

	// IngestQueueCap bounds each shard's ingest queue (default 1024).
	// HandleReport demuxes reports onto per-shard queues by flow-key
	// hash; one ingester goroutine per shard drains its queue into the
	// flow table and journal, so report producers never serialize on a
	// single journal appender. A full queue applies backpressure to
	// the producer (like the paper's collector socket) rather than
	// dropping; reports arriving after Stop are dropped and counted in
	// intddos_ingest_dropped_total.
	IngestQueueCap int

	// Shards stripes the flow table, the database journal, and the
	// dispatch to prediction workers by flow.Key hash. Zero selects
	// the legacy single-lock store.DB (the paper's one-database
	// layout); n >= 1 selects a store.ShardedDB with n shards, which
	// at n=1 is observably identical to the legacy layout.
	Shards int

	// PredictBatch caps the micro-batch a prediction worker drains
	// from its shard queue per wakeup: queued records already waiting
	// are scored through the scaler and ensemble batch paths in one
	// amortized call instead of one record per wakeup. The batch
	// contract makes results row-for-row identical to per-record
	// scoring, so this only trades per-record overhead for batching.
	// Zero or one keeps the paper's record-at-a-time behavior.
	PredictBatch int
	// PredictLinger is how long a worker with an unfilled micro-batch
	// waits for more records before scoring what it has (default 0:
	// score immediately — batches only form from backlog). Lingering
	// trades per-record latency for larger batches under load.
	PredictLinger time.Duration

	// Triage enables tiered inference: per-shard streaming sketches
	// (count-min heavy hitter + flow-key entropy) over the ingest
	// stream and a confidence-thresholded stage-0 model early-exit
	// confident rows before the full ensemble vote; only uncertain
	// rows — and anything the sketch flags suspicious — pay for
	// MLP+RF+GNB. Off (the default) keeps the score-everything
	// contract bit-identical to the legacy path. TriageThreshold is
	// the minimum stage-0 confidence |2p-1| to exit (<= 0 leaves the
	// cascade inert: the tiered code path runs, every row falls
	// through, output stays bit-identical — the exact-mode property
	// the tests pin). TriageModel picks the stage-0 model; nil selects
	// the last probability-capable ensemble member. The sketches are
	// updated only under the per-shard checkpoint barrier, so they are
	// quiescent at every capture; they are deliberately not persisted
	// (rewarmed from live traffic after restore).
	Triage          bool
	TriageThreshold float64
	TriageModel     ml.Classifier

	// ModelQuorum and VoteWindow mirror the simulated mechanism
	// (defaults 2-of-ensemble and 3). When ensemble members are
	// marked unhealthy the quorum degrades to majority-of-available;
	// see effectiveQuorum.
	ModelQuorum int
	VoteWindow  int
	// SkipNewRecords restricts prediction to record updates (§III-3
	// strict reading).
	SkipNewRecords bool

	// FlowIdleTimeout evicts flows idle past this TTL — their vote
	// windows, flow-table state, and database records — so long runs
	// don't accumulate per-flow memory without bound. Zero disables
	// eviction. Evictions are counted in intddos_evictions_total.
	FlowIdleTimeout time.Duration
	// SweepInterval is how often the eviction pass runs (default:
	// FlowIdleTimeout).
	SweepInterval time.Duration

	// CheckpointDir enables crash-consistent checkpointing: snapshots
	// of the pipeline's durable state (flow tables, store shards with
	// journal tails, vote windows, prediction log) are written
	// atomically into this directory, and NewLive restores from the
	// newest valid one at boot. Empty disables checkpointing.
	CheckpointDir string
	// CheckpointEvery is the periodic checkpoint interval. Zero writes
	// no periodic checkpoints — WriteCheckpoint can still be called
	// explicitly (shutdown, signal handler, tests).
	CheckpointEvery time.Duration
	// CheckpointKeep is how many checkpoint files to retain (default 3;
	// a delta's chain ancestors are always retained with it).
	CheckpointKeep int
	// CheckpointBarrierTimeout bounds how long a checkpoint waits for
	// in-flight records to finish before giving up (default 5s).
	CheckpointBarrierTimeout time.Duration
	// CheckpointFullEvery sets the full-snapshot cadence: every Nth
	// checkpoint is a self-contained full snapshot and the N-1 between
	// are incremental deltas carrying only state dirtied since the
	// previous capture. 0 or 1 writes only full snapshots (the legacy
	// behavior). Deltas keep the capture barrier's hold time
	// proportional to the churn since the last checkpoint, not to the
	// total flow count.
	CheckpointFullEvery int
	// CheckpointCompress flate-compresses checkpoint section payloads —
	// smaller files for slower disks, more CPU outside the barrier.
	CheckpointCompress bool

	// Registry receives the runtime's metrics, stage histograms, and
	// decision tracer; nil builds a private registry, readable via
	// Obs(). A registry should be scoped to one pipeline instance.
	Registry *obs.Registry
	// TraceSampleEvery routes 1-in-N flow records through the
	// per-stage span tracer (default 64; negative disables tracing).
	TraceSampleEvery int

	// JourneySampleEvery follows 1-in-N flow updates end to end —
	// ingest → journal → poll → batch → predict → vote, one wall-clock
	// stamp per hop, across every goroutine handoff — queryable on
	// /traces/flow (default 256; negative disables journey tracing).
	JourneySampleEvery int

	// ProfileMutexFraction and ProfileBlockRate configure always-on
	// contention profiling for the pipeline's lifetime: 1-in-N
	// contended mutex events sampled, one block sample per N ns of
	// blocked time. Zero selects prof's defaults (100 and 10µs);
	// negative leaves the runtime's settings untouched. The resulting
	// attribution report is served on /debug/attrib.
	ProfileMutexFraction int
	ProfileBlockRate     int
	// ProfileDir, when set, enables periodic on-disk profile captures
	// (CPU/mutex/block/goroutine/heap) into a bounded ring of files;
	// ProfileInterval is the capture period (default 30s).
	ProfileDir      string
	ProfileInterval time.Duration

	// DedupWindow enables per-source report deduplication at
	// HandleReport: each source's last DedupWindow sequence numbers are
	// remembered, duplicate and stale reports are suppressed before
	// they can become flow observations (one report never becomes two
	// decisions over a duplicating wire), and reordered arrivals within
	// the window are admitted. Zero (the default) disables dedup — the
	// report path is byte-identical to the pre-dedup pipeline. Only
	// reports carrying a meaningful source key participate: dedup is
	// per exporter, never global.
	DedupWindow int
	// DedupMaxSources bounds the dedup tracker's per-source state
	// (least-recently-active eviction; default 1024).
	DedupMaxSources int

	// Fault injects a deterministic fault schedule into the pipeline:
	// telemetry drop/corrupt/delay at ingestion, store stalls and
	// transient errors (the store is wrapped automatically), worker
	// panics, and per-model scoring failures. Nil injects nothing and
	// costs one branch per event.
	Fault *fault.Injector

	// DrainOnStop makes Stop score every record still queued to the
	// prediction workers instead of abandoning them. Off (the
	// default, matching the paper's shutdown) queued records are
	// counted in intddos_records_abandoned{reason="stop"} — observable
	// either way, lost silently never.
	DrainOnStop bool

	// WorkerRestartBudget bounds how many times the supervisor
	// restarts a panicking prediction worker before declaring it down
	// (default 8; negative: unlimited). A down worker's queue is
	// drained into intddos_records_abandoned{reason="worker_down"}
	// and the pipeline reports shedding.
	WorkerRestartBudget int
	// WorkerRestartBackoff is the supervisor's initial restart delay,
	// doubling per consecutive restart up to one second (default 10ms).
	WorkerRestartBackoff time.Duration

	// StoreRetries bounds retry attempts after a transient store
	// error (default 3). Writes still failing after the budget are
	// dropped and counted in intddos_store_dropped_total; polls
	// simply retry at the next tick (the journal cursor is unchanged,
	// so nothing is lost).
	StoreRetries int
	// StoreRetryBackoff is the initial delay between store retries,
	// doubling per attempt (default 2ms).
	StoreRetryBackoff time.Duration

	// ModelFailThreshold is how many consecutive scoring failures
	// mark an ensemble member unhealthy (default 3).
	ModelFailThreshold int
	// ModelProbeAfter is how long an unhealthy member sits out before
	// a recovery probe re-includes it in a scoring attempt (default 1s).
	ModelProbeAfter time.Duration

	// HealthRecency is how long after the last fault event the
	// pipeline keeps reporting the corresponding non-healthy state
	// before reassessment may lower it (default 5s).
	HealthRecency time.Duration
}

// liveMetrics bundles the runtime's obs instruments. All fields are
// nil-safe, so a zero value disables instrumentation.
type liveMetrics struct {
	reports     *obs.Counter
	dupReports  *obs.Counter
	staleReps   *obs.Counter
	reordered   *obs.Counter
	seqGaps     *obs.Counter
	snapshots   *obs.Counter
	predictions *obs.Counter
	shed        *obs.Counter
	polls       *obs.Counter
	polledRecs  *obs.Counter
	evictions   *obs.Counter

	decisions *obs.CounterVec // by attack_type
	misclass  *obs.CounterVec // by attack_type

	// Bottleneck-attribution instruments: ingest calls that found the
	// checkpoint barrier held, reports dropped at the ingest demux
	// after Stop, and per-shard poll throughput.
	ingestStalls  *obs.Counter
	ingestDropped *obs.Counter
	shardPolled   *obs.CounterVec // by shard

	// Robustness accounting: every record the pollers hand off is
	// eventually a decision, a shed, or an abandonment with a reason —
	// nothing vanishes silently.
	abandoned         *obs.CounterVec // by reason: stop/panic/worker_down/no_model/malformed
	workerRestarts    *obs.Counter
	workerPanics      *obs.Counter
	storeRetries      *obs.Counter
	storeDropped      *obs.Counter
	degradedBatches   *obs.Counter
	modelFailures     *obs.CounterVec // by model
	modelHealthy      *obs.GaugeVec   // by model, 1 healthy / 0 unhealthy
	healthTransitions *obs.CounterVec // by state entered

	predictLatency *obs.Histogram // end-to-end §III-2 prediction latency
	batchSize      *obs.Histogram // records per micro-batch scoring call
	sampleLatency  *obs.Histogram // per-sample share of the batch scoring call

	// Tiered-inference instruments: per-stage exit counters (label
	// "fallthrough" counts rows that paid for the full ensemble; the
	// stage-1 and fallthrough children are cached off the hot path)
	// and the cost of the triage pass itself.
	triageExits       *obs.CounterVec // by stage: "1", ..., "fallthrough"
	triageExitStage1  *obs.Counter
	triageFallthrough *obs.Counter
	triageLatency     *obs.Histogram

	// Checkpoint/restore instruments. ckptDuration covers the whole
	// write (capture + encode + fsync); ckptBarrier only the pause the
	// pipeline actually feels — the window in which the per-shard
	// barrier locks are held. Prune failures are counted apart from
	// write failures: a failed write lost a snapshot, a failed prune
	// only leaked disk.
	ckpts             *obs.Counter
	ckptFailures      *obs.Counter
	ckptPruneFailures *obs.Counter
	ckptBytes         *obs.Counter
	ckptDuration      *obs.Histogram
	ckptBarrier       *obs.Histogram
	ckptLastSuccess   *obs.Gauge
	restores          *obs.Counter
	restoredRecs      *obs.CounterVec // by kind: flows/store_flows/journal_pending/windows/predictions

	// Per-stage latency histograms (children of intddos_stage_seconds
	// cached so the hot path skips the vec lookup).
	stageIngest  *obs.Histogram
	stageJournal *obs.Histogram
	stageQueue   *obs.Histogram
	stagePredict *obs.Histogram
	stageVote    *obs.Histogram
}

// newLiveMetrics registers the runtime's instruments on reg.
func newLiveMetrics(reg *obs.Registry) liveMetrics {
	stages := reg.HistogramVec("intddos_stage_seconds", "stage", nil)
	triageExits := reg.CounterVec("intddos_triage_exits_total", "stage")
	return liveMetrics{
		triageExits:       triageExits,
		triageExitStage1:  triageExits.With("1"),
		triageFallthrough: triageExits.With("fallthrough"),
		triageLatency:     reg.Histogram("intddos_triage_seconds", nil),
		reports:           reg.Counter("intddos_reports_total"),
		dupReports:        reg.Counter("intddos_reports_duplicate_total"),
		staleReps:         reg.Counter("intddos_reports_stale_total"),
		reordered:         reg.Counter("intddos_reports_reordered_total"),
		seqGaps:           reg.Counter("intddos_reports_seq_gaps_total"),
		snapshots:         reg.Counter("intddos_snapshots_total"),
		predictions:       reg.Counter("intddos_predictions_total"),
		shed:              reg.Counter("intddos_shed_total"),
		polls:             reg.Counter("intddos_polls_total"),
		polledRecs:        reg.Counter("intddos_records_polled_total"),
		evictions:         reg.Counter("intddos_evictions_total"),
		decisions:         reg.CounterVec("intddos_decisions_total", "attack_type"),
		misclass:          reg.CounterVec("intddos_misclassified_total", "attack_type"),
		ingestStalls:      reg.Counter("intddos_ingest_barrier_stalls_total"),
		ingestDropped:     reg.Counter("intddos_ingest_dropped_total"),
		shardPolled:       reg.CounterVec("intddos_shard_polled_total", "shard"),
		abandoned:         reg.CounterVec("intddos_records_abandoned", "reason"),
		workerRestarts:    reg.Counter("intddos_worker_restarts_total"),
		workerPanics:      reg.Counter("intddos_worker_panics_total"),
		storeRetries:      reg.Counter("intddos_store_retries_total"),
		storeDropped:      reg.Counter("intddos_store_dropped_total"),
		degradedBatches:   reg.Counter("intddos_degraded_batches_total"),
		modelFailures:     reg.CounterVec("intddos_model_failures_total", "model"),
		modelHealthy:      reg.GaugeVec("intddos_model_healthy", "model"),
		healthTransitions: reg.CounterVec("intddos_health_transitions_total", "state"),
		predictLatency:    reg.Histogram("intddos_predict_latency_seconds", nil),
		batchSize:         reg.Histogram("intddos_predict_batch_size", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}),
		sampleLatency:     reg.Histogram("intddos_predict_sample_seconds", nil),
		ckpts:             reg.Counter("intddos_checkpoints_total"),
		ckptFailures:      reg.Counter("intddos_checkpoint_failures_total"),
		ckptPruneFailures: reg.Counter("intddos_checkpoint_prune_failures_total"),
		ckptBytes:         reg.Counter("intddos_checkpoint_bytes_total"),
		ckptDuration:      reg.Histogram("intddos_checkpoint_duration_seconds", nil),
		ckptBarrier:       reg.Histogram("intddos_checkpoint_barrier_seconds", nil),
		ckptLastSuccess:   reg.Gauge("intddos_checkpoint_last_success_unixtime"),
		restores:          reg.Counter("intddos_restores_total"),
		restoredRecs:      reg.CounterVec("intddos_restored_records_total", "kind"),
		stageIngest:       stages.With("ingest"),
		stageJournal:      stages.With("journal_wait"),
		stageQueue:        stages.With("queue_wait"),
		stagePredict:      stages.With("scale_predict"),
		stageVote:         stages.With("vote"),
	}
}

// queued is one flow record in flight to the prediction workers,
// carrying the timestamps and (for sampled records) the span trace
// that make per-stage latencies observable.
type queued struct {
	rec        store.FlowRecord
	enqueuedAt time.Time
	tr         *obs.Trace
}

// workerBatch is the micro-batch a worker is currently scoring, with
// how many of its records have been finished — the bookkeeping panic
// recovery needs to account for every dequeued record exactly once.
type workerBatch struct {
	batch []queued
	done  int
}

// liveShard is the per-shard mutable state of the runtime: the vote
// windows of the flows hashed onto the shard. The flow-table stripe
// lives in the ShardedTable and the journal stripe in the Store, both
// indexed by the same Key.Shard value.
//
// dirty and removed are the windows' delta-checkpoint marks,
// maintained only while the runtime tracks deltas (CheckpointDir
// set): windows voted into since the last capture, and windows
// deleted since it. A key lives in at most one set — the last action
// wins. Guarded by mu, like the windows they describe.
type liveShard struct {
	mu      sync.Mutex
	windows map[flow.Key][]int
	dirty   map[flow.Key]struct{}
	removed map[flow.Key]struct{}
}

// Live runs the four Figure 2 modules as concurrent goroutines over
// the wall clock — the deployment mode of the paper's production
// implementation — sharing the same flow table, database, and voting
// logic as the simulated Mechanism. Timestamps are wall-clock
// nanoseconds widened into the same Time domain the rest of the
// repository uses.
//
// The hot path is sharded end to end by flow.Key hash: each shard has
// its own flow-table stripe, database journal with cursor, and poller
// goroutine, and shards map to prediction workers round-robin, so
// every update of one flow flows through one lock stripe, one
// journal, one poller, and one worker — per-flow prediction order is
// preserved at any worker count. With Shards=0 (the default) the
// layout degenerates to the legacy single-lock pipeline.
//
// The runtime is supervised: prediction workers recover from panics
// and are restarted with exponential backoff under a restart budget,
// transient store errors are retried with backoff, unhealthy ensemble
// members are voted around (quorum degrades to majority-of-available),
// and every record the pollers hand off is accounted for — decided,
// shed, or abandoned with a reason — even across panics and shutdown.
// The aggregate condition (healthy/degraded/shedding) is reported on
// /healthz.
type Live struct {
	cfg     LiveConfig
	nShards int

	tables *flow.ShardedTable
	shards []*liveShard

	// Tiered inference (nil when LiveConfig.Triage is off): the
	// early-exit cascade shared read-only by every prediction worker,
	// and one triage sketch per shard — single writer (the shard's
	// ingester, under the shard's checkpoint-barrier read lock),
	// concurrent readers (workers), atomics throughout.
	cascade  *ml.Cascade
	sketches []*sketch.Sketch

	DB  store.Store
	fdb store.Fallible // non-nil when DB surfaces transient errors

	// Checkpointing. ckptMu is the capture barrier, one lock per
	// shard: ingesters and shard pollers hold only their own shard's
	// lock for read per operation, so shards never contend with each
	// other on the barrier; the sweeper and a checkpoint capture take
	// every lock in ascending shard order (all-read and all-write
	// respectively — the fixed order keeps the set acyclic), wait for
	// in-flight records to settle, and export a consistent cut.
	// rawDB/ckptStore reference the concrete store beneath any fault
	// wrapper — a checkpoint must read real state, not a fault-shaped
	// view of it.
	ckptMu      []sync.RWMutex
	ckptStore   store.Checkpointable
	rawDB       store.Store
	ckptSeq     atomic.Uint64
	fingerprint uint64
	restored    *RestoreSummary
	completed   atomic.Int64 // records fully finished (decision + prediction logged)

	// Incremental checkpointing. deltaStore is the concrete store's
	// delta surface (non-nil for DB/ShardedDB); deltaTrack reports that
	// dirty tracking is live across the table, store, and window layers
	// (set once in NewLive when CheckpointDir is configured, before any
	// concurrent use). lastBarrierNs is the most recent capture's
	// barrier hold, for the bench and /metrics.
	deltaStore    store.DeltaCheckpointable
	deltaTrack    bool
	lastBarrierNs atomic.Int64

	// ckptWriteMu serializes WriteCheckpoint callers (the periodic
	// checkpointer, shutdown, signal handlers) and guards the chain
	// bookkeeping below: whether a base exists on disk for deltas to
	// chain to, how many deltas were written since the last full, and
	// the (seq, CRC) identity of the newest file — the parent link the
	// next delta records. A failed write clears haveBase: the capture
	// consumed the dirty marks, so the next checkpoint must be full or
	// the chain would silently skip a delta.
	ckptWriteMu sync.Mutex
	haveBase    bool
	sinceFull   int
	lastCkptSeq uint64
	lastCkptCRC uint32

	// ckptScratch holds the previous full capture's export arrays,
	// reclaimed after its snapshot has been encoded to disk and handed
	// back to the next full capture, which then copies into warm
	// memory instead of allocating (and page-faulting) hundreds of
	// megabytes inside the barrier. Guarded by ckptWriteMu; only the
	// WriteCheckpoint path reuses — CaptureCheckpoint callers own
	// their snapshots indefinitely, so they always get fresh arrays.
	ckptScratch *captureScratch

	// encScratch is the encoder's buffer freelist, owned here so the
	// buffers survive the GC cycles between periodic checkpoints
	// (sync.Pool would be drained long before the next write). Guarded
	// by ckptWriteMu like ckptScratch; it never influences the encoded
	// bytes, only allocation.
	encScratch *checkpoint.EncodeScratch

	// ckptPostCapture, when set (tests), runs after the capture barrier
	// has released and before the snapshot is encoded or written.
	ckptPostCapture func(*checkpoint.Snapshot)

	// Multi-producer ingest: HandleReport demuxes reports onto
	// per-shard queues; one ingester goroutine per shard owns the
	// journal appends for its stripe. ingestQuit (not a channel close
	// — producers are external and uncounted) stops the ingesters,
	// which drain their queues before exiting. ingestAccepted counts
	// observations enqueued, ingestDone observations journaled; the
	// difference is the demux backlog, which a checkpoint capture
	// settles before its cut (an accepted report must not vanish into
	// a queue the simulated crash discards).
	ingestChs      []chan flow.PacketInfo
	ingestQuit     chan struct{}
	ingestWg       sync.WaitGroup
	ingestAccepted atomic.Int64
	ingestDone     atomic.Int64

	workerChs []chan queued
	quit      chan struct{}
	pollWg    sync.WaitGroup // pollers + sweeper (stop first)
	workWg    sync.WaitGroup // worker supervisors (stop after channels close)
	stop      sync.Once

	reg    *obs.Registry
	met    liveMetrics
	tracer *obs.Tracer

	// Diagnostics: the structured event log (every noteworthy state
	// change), the flow-journey sampler, the contention profiler, and
	// per-worker busy-time accumulators (nanoseconds spent scoring).
	events        *obs.EventLog
	elog          *slog.Logger
	journeys      *obs.Journeys
	profiler      *prof.Profiler
	workerBusy    []atomic.Int64
	lastShedEvent atomic.Int64 // unix second of the last shed event (throttle)

	health      healthTracker
	modelHealth []*modelHealth
	workersDown atomic.Int32

	decMu     sync.Mutex
	decisions []Decision
	// OnDecision observes every final decision (called off the
	// prediction goroutine; keep it fast).
	OnDecision func(Decision)

	// dedup suppresses duplicate/stale reports per source at
	// HandleReport (nil when LiveConfig.DedupWindow is zero).
	dedup *telemetry.SeqTracker

	// Stats (atomics: read while running). Mirrored into the obs
	// registry; kept for compatibility with existing callers. With
	// dedup on, the report ledger closes as
	// Reports == Duplicates + StaleReports + fault drops + ingests.
	Reports     atomic.Int64
	Duplicates  atomic.Int64 // reports suppressed as duplicates
	StaleReps   atomic.Int64 // reports rejected as stale
	Reordered   atomic.Int64 // reports admitted out of order
	SeqGaps     atomic.Int64 // reports inferred lost upstream
	Snapshots   atomic.Int64
	Predictions atomic.Int64
	Shed        atomic.Int64
	Evictions   atomic.Int64

	// Robustness accounting (atomics: read while running).
	Polled         atomic.Int64 // records handed off by the pollers
	Abandoned      atomic.Int64 // records abandoned, any reason
	StoreRetries   atomic.Int64 // transient store errors retried
	StoreDropped   atomic.Int64 // store writes dropped after retries
	WorkerRestarts atomic.Int64 // supervisor restarts after panics
	ModelFailures  atomic.Int64 // failed ensemble scoring calls
	Checkpoints    atomic.Int64 // checkpoints successfully written
}

// NewLive validates cfg and builds the runtime.
func NewLive(cfg LiveConfig) (*Live, error) {
	if len(cfg.Models) == 0 {
		return nil, errors.New("core: no models configured")
	}
	if cfg.Scaler == nil {
		return nil, errors.New("core: scaler required")
	}
	if cfg.Features == nil {
		cfg.Features = flow.INTFeatures()
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 5 * time.Millisecond
	}
	if cfg.PollBatch <= 0 {
		cfg.PollBatch = 256
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 4096
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.IngestQueueCap <= 0 {
		cfg.IngestQueueCap = 1024
	}
	if cfg.Shards < 0 {
		cfg.Shards = 0
	}
	if cfg.PredictBatch < 1 {
		cfg.PredictBatch = 1
	}
	if cfg.ModelQuorum <= 0 {
		cfg.ModelQuorum = (len(cfg.Models) + 2) / 2
	}
	if cfg.ModelQuorum > len(cfg.Models) {
		cfg.ModelQuorum = (len(cfg.Models) + 1) / 2
	}
	if cfg.VoteWindow <= 0 {
		cfg.VoteWindow = 3
	}
	if cfg.SweepInterval <= 0 {
		cfg.SweepInterval = cfg.FlowIdleTimeout
	}
	if cfg.WorkerRestartBudget == 0 {
		cfg.WorkerRestartBudget = 8
	}
	if cfg.WorkerRestartBackoff <= 0 {
		cfg.WorkerRestartBackoff = 10 * time.Millisecond
	}
	if cfg.StoreRetries <= 0 {
		cfg.StoreRetries = 3
	}
	if cfg.StoreRetryBackoff <= 0 {
		cfg.StoreRetryBackoff = 2 * time.Millisecond
	}
	if cfg.ModelFailThreshold <= 0 {
		cfg.ModelFailThreshold = 3
	}
	if cfg.ModelProbeAfter <= 0 {
		cfg.ModelProbeAfter = time.Second
	}
	if cfg.HealthRecency <= 0 {
		cfg.HealthRecency = 5 * time.Second
	}
	if cfg.CheckpointKeep <= 0 {
		cfg.CheckpointKeep = 3
	}
	if cfg.CheckpointFullEvery < 0 {
		cfg.CheckpointFullEvery = 0
	}
	if cfg.CheckpointBarrierTimeout <= 0 {
		cfg.CheckpointBarrierTimeout = 5 * time.Second
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	// A model that reports its trained input width must agree with
	// the scaler — a mismatched bundle would otherwise panic a worker
	// at the first scoring call.
	for _, m := range cfg.Models {
		if w := ml.ExpectedFeatures(m); w > 0 && w != len(cfg.Scaler.Mean) {
			return nil, fmt.Errorf("core: model %s expects %d features, scaler has %d",
				m.Name(), w, len(cfg.Scaler.Mean))
		}
	}
	// The bundle fingerprint is computed over the caller's models
	// before fault wrapping (WrapModel preserves Name(), but the
	// fingerprint should describe the bundle, not the harness).
	fingerprint := bundleFingerprint(cfg.Models, cfg.Scaler, cfg.Features)
	// The triage model is resolved before fault wrapping too: the
	// cascade needs the model's probability path, which fault wrappers
	// do not expose. Triage is a performance tier, not a fault surface
	// — fall-through rows still score through the wrapped ensemble.
	var cascade *ml.Cascade
	if cfg.Triage {
		pm, ok := resolveTriageModel(cfg.TriageModel, cfg.Models)
		if !ok {
			return nil, errors.New("core: triage enabled but no probability-capable model available")
		}
		if w := ml.ExpectedFeatures(pm); w > 0 && w != len(cfg.Scaler.Mean) {
			return nil, fmt.Errorf("core: triage model %s expects %d features, scaler has %d",
				pm.Name(), w, len(cfg.Scaler.Mean))
		}
		cascade = &ml.Cascade{Stages: []ml.CascadeStage{
			{Name: pm.Name(), Model: pm, Threshold: cfg.TriageThreshold},
		}}
	}
	// The ensemble is scored through each model's fallible path; with
	// an injector configured the models are wrapped so scheduled
	// scoring failures and latency can fire. The slice is copied —
	// the caller's models are never mutated.
	models := make([]ml.Classifier, len(cfg.Models))
	copy(models, cfg.Models)
	if cfg.Fault != nil {
		for i, m := range models {
			models[i] = fault.WrapModel(m, cfg.Fault)
		}
	}
	cfg.Models = models

	nShards := cfg.Shards
	if nShards < 1 {
		nShards = 1
	}
	var db store.Store
	if cfg.Shards == 0 {
		db = store.New() // the paper's exact single-lock layout
	} else {
		db = store.NewSharded(cfg.Shards)
	}
	// Capture the concrete store before any fault wrapping: the
	// checkpoint path exports and imports the real state directly.
	rawDB := db
	ckptStore, _ := db.(store.Checkpointable)
	deltaStore, _ := db.(store.DeltaCheckpointable)
	if cfg.Fault != nil && cfg.Fault.Spec().HasStoreFaults() {
		db = fault.WrapStore(db, cfg.Fault)
	}
	l := &Live{
		cfg:         cfg,
		nShards:     nShards,
		tables:      flow.NewShardedTable(nShards),
		shards:      make([]*liveShard, nShards),
		DB:          db,
		rawDB:       rawDB,
		ckptStore:   ckptStore,
		deltaStore:  deltaStore,
		fingerprint: fingerprint,
		ckptMu:      make([]sync.RWMutex, nShards),
		ingestQuit:  make(chan struct{}),
		quit:        make(chan struct{}),
		reg:         cfg.Registry,
	}
	l.fdb, _ = db.(store.Fallible)
	if cfg.DedupWindow > 0 {
		l.dedup = telemetry.NewSeqTracker(cfg.DedupWindow, cfg.DedupMaxSources)
	}
	for i := range l.shards {
		l.shards[i] = &liveShard{
			windows: make(map[flow.Key][]int),
			dirty:   make(map[flow.Key]struct{}),
			removed: make(map[flow.Key]struct{}),
		}
	}
	if cascade != nil {
		l.cascade = cascade
		l.sketches = make([]*sketch.Sketch, nShards)
		for i := range l.sketches {
			l.sketches[i] = sketch.New(0, 0)
		}
	}
	l.ingestChs = make([]chan flow.PacketInfo, nShards)
	for i := range l.ingestChs {
		l.ingestChs[i] = make(chan flow.PacketInfo, cfg.IngestQueueCap)
	}
	perWorkerCap := cfg.QueueCap / cfg.Workers
	if perWorkerCap < 1 {
		perWorkerCap = 1
	}
	l.workerChs = make([]chan queued, cfg.Workers)
	for i := range l.workerChs {
		l.workerChs[i] = make(chan queued, perWorkerCap)
	}
	l.tables.SetIdleTimeout(netsim.Time(cfg.FlowIdleTimeout))
	// Downstream state keyed by flow dies with the table entry: the
	// eviction hook deletes the database record and the vote window the
	// moment Sweep removes a flow, so idle eviction bounds memory in
	// every layer (previously swept flows leaked store records).
	l.tables.SetOnEvict(l.onEvict)
	l.DB.SetJournalNew(!cfg.SkipNewRecords)
	l.met = newLiveMetrics(l.reg)
	// Diagnostics: the event log must exist before anything below can
	// log (restore does), and the registry carries the journey sampler
	// and runtime telemetry for /traces/flow and /metrics.
	l.events = l.reg.Events()
	l.elog = l.events.Logger()
	if cfg.JourneySampleEvery >= 0 {
		l.journeys = obs.NewJourneys(cfg.JourneySampleEvery, 0)
		l.reg.SetFlowJourneys(l.journeys)
	}
	obs.RegisterRuntimeMetrics(l.reg)
	l.tables.SetContentionHook(l.reg.Counter("intddos_flow_table_contention_total").Inc)
	l.workerBusy = make([]atomic.Int64, cfg.Workers)
	l.modelHealth = make([]*modelHealth, len(cfg.Models))
	for i, m := range cfg.Models {
		name := m.Name()
		// Two members with one name would share fault targeting and
		// health reporting; disambiguate by position.
		for j := 0; j < i; j++ {
			if l.modelHealth[j].name == name {
				name = name + "#" + strconv.Itoa(i)
				break
			}
		}
		l.modelHealth[i] = &modelHealth{name: name}
		l.met.modelHealthy.With(name).Set(1)
	}
	if cfg.TraceSampleEvery >= 0 {
		l.tracer = l.reg.Tracer("intddos_pipeline", cfg.TraceSampleEvery, 64)
	}
	l.reg.GaugeFunc("intddos_queue_depth", func() float64 {
		n := 0
		for _, ch := range l.workerChs {
			n += len(ch)
		}
		return float64(n)
	})
	l.reg.GaugeFunc("intddos_queue_capacity", func() float64 {
		n := 0
		for _, ch := range l.workerChs {
			n += cap(ch)
		}
		return float64(n)
	})
	l.reg.GaugeFunc("intddos_ingest_queue_depth", func() float64 {
		n := 0
		for _, ch := range l.ingestChs {
			n += len(ch)
		}
		return float64(n)
	})
	// Per-worker queue depth and utilization: which worker saturates
	// first is the difference between "add workers" and "fix the lock".
	depthVec := l.reg.GaugeVec("intddos_worker_queue_depth", "worker")
	busyVec := l.reg.GaugeVec("intddos_worker_busy_seconds", "worker")
	utilVec := l.reg.GaugeVec("intddos_worker_utilization", "worker")
	for w := range l.workerChs {
		w := w
		ws := strconv.Itoa(w)
		ch := l.workerChs[w]
		depthVec.WithFunc(ws, func() float64 { return float64(len(ch)) })
		busyVec.WithFunc(ws, func() float64 {
			return time.Duration(l.workerBusy[w].Load()).Seconds()
		})
		// Utilization is the busy fraction since the previous scrape;
		// the closure owns its window state (scrapes may be concurrent).
		var utilMu sync.Mutex
		lastAt := time.Now()
		var lastBusy int64
		utilVec.WithFunc(ws, func() float64 {
			utilMu.Lock()
			defer utilMu.Unlock()
			busy := l.workerBusy[w].Load()
			nowT := time.Now()
			dt := nowT.Sub(lastAt)
			if dt <= 0 {
				return 0
			}
			u := float64(busy-lastBusy) / float64(dt)
			lastBusy, lastAt = busy, nowT
			return u
		})
	}
	// Sketch saturation and entropy per shard: occupancy climbing
	// toward 1 means the count-min counters are filling up (widen the
	// sketch or shorten its life), entropy collapsing toward 0 means
	// the shard's key distribution has — the triage veto is active.
	if l.sketches != nil {
		occVec := l.reg.GaugeVec("intddos_sketch_occupancy", "shard")
		entVec := l.reg.GaugeVec("intddos_sketch_entropy", "shard")
		for s := range l.sketches {
			sk := l.sketches[s]
			ss := strconv.Itoa(s)
			occVec.WithFunc(ss, sk.Occupancy)
			entVec.WithFunc(ss, sk.Entropy)
		}
	}
	l.reg.GaugeFunc("intddos_vote_windows", func() float64 { return float64(l.windowCount()) })
	l.reg.GaugeFunc("intddos_pipeline_shards", func() float64 { return float64(l.nShards) })
	l.reg.GaugeFunc("intddos_health_state", func() float64 { return float64(l.Health()) })
	l.reg.GaugeFunc("intddos_workers_down", func() float64 { return float64(l.workersDown.Load()) })
	if cfg.Fault != nil {
		sites := l.reg.GaugeVec("intddos_faults_injected", "site")
		for _, name := range fault.Sites() {
			name := name
			sites.WithFunc(name, func() float64 { return float64(cfg.Fault.SiteCount(name)) })
		}
	}
	l.reg.SetHealth(l.healthReport)
	l.reg.AddBundleFile("config.txt", func() ([]byte, error) {
		return []byte(l.describeConfig()), nil
	})
	l.DB.Instrument(l.reg)
	if cfg.CheckpointDir != "" {
		if ckptStore == nil {
			return nil, errors.New("core: CheckpointDir set but store does not support checkpointing")
		}
		// Dirty tracking goes live before the restore and before any
		// concurrent use: restore resets the marks it touches, and every
		// layer's hot path reads its track flag without synchronization.
		if deltaStore != nil {
			l.deltaTrack = true
			deltaStore.SetDeltaTracking(true)
			l.tables.SetDeltaTracking(true)
		}
		if err := l.restoreLatest(cfg.CheckpointDir); err != nil {
			return nil, err
		}
	}
	return l, nil
}

// Obs returns the runtime's metrics registry (the one passed in
// LiveConfig.Registry, or the private default). Mount Obs().Handler()
// to serve /metrics, /healthz, /traces, and pprof.
func (l *Live) Obs() *obs.Registry { return l.reg }

// MetricsSnapshot captures every runtime metric — counters, queue
// gauges, and the per-stage latency histograms — for end-of-run
// summaries.
func (l *Live) MetricsSnapshot() obs.Snapshot { return l.reg.Snapshot() }

// Shards returns the pipeline's stripe count.
func (l *Live) Shards() int { return l.nShards }

// now returns the wall clock in the repository's Time domain.
func now() netsim.Time { return netsim.Time(time.Now().UnixNano()) }

// Start launches the per-shard CentralServer pollers, the supervised
// Prediction workers, and (when a TTL is configured) the eviction
// sweeper.
func (l *Live) Start() {
	l.startProfiler()
	l.event("pipeline started", "component", "lifecycle",
		"shards", l.nShards, "workers", l.cfg.Workers)
	for s := 0; s < l.nShards; s++ {
		l.ingestWg.Add(1)
		go l.ingester(s)
		l.pollWg.Add(1)
		go l.shardPoller(s)
	}
	for w := 0; w < l.cfg.Workers; w++ {
		l.workWg.Add(1)
		go l.superviseWorker(w)
	}
	if l.cfg.FlowIdleTimeout > 0 {
		l.pollWg.Add(1)
		go l.sweeper()
	}
	if l.cfg.CheckpointDir != "" && l.cfg.CheckpointEvery > 0 {
		l.pollWg.Add(1)
		go l.checkpointer()
	}
}

// Stop terminates the pipeline in three phases — the ingesters drain
// their queues and exit, then the pollers stop, then the worker
// channels are closed and the workers drain them — and waits for
// every goroutine. What happens to records still queued is policy:
// with DrainOnStop they are scored and logged like any other record;
// without it they are counted in
// intddos_records_abandoned{reason="stop"}. Either way nothing is
// dropped silently (reports handed to HandleReport after Stop begins
// are counted in intddos_ingest_dropped_total). Stop is idempotent —
// extra and concurrent calls wait for the same shutdown and return.
func (l *Live) Stop() {
	l.stop.Do(func() {
		close(l.ingestQuit)
		l.ingestWg.Wait()
		// A producer racing Stop can land a report in a queue after its
		// ingester's final drain; fold those in before the pollers stop
		// so they are journaled, not stranded.
		for _, ch := range l.ingestChs {
		drain:
			for {
				select {
				case pi := <-ch:
					l.Ingest(pi)
					l.ingestDone.Add(1)
				default:
					break drain
				}
			}
		}
		close(l.quit)
		l.pollWg.Wait()
		// Only the pollers write to the worker channels, so after
		// they exit the channels can close; the workers run out their
		// queues (scoring or accounting per DrainOnStop) and return.
		for _, ch := range l.workerChs {
			close(ch)
		}
		l.workWg.Wait()
		l.profiler.Stop()
		l.event("pipeline stopped", "component", "lifecycle",
			"polled", l.Polled.Load(), "decided", l.DecisionCount(),
			"shed", l.Shed.Load(), "abandoned", l.Abandoned.Load())
	})
}

// startProfiler enables always-on contention profiling for the
// pipeline's lifetime and wires the attribution report into the
// registry. A capture directory that cannot be created degrades to
// profiling without on-disk snapshots.
func (l *Live) startProfiler() {
	cfg := prof.Config{
		MutexFraction: l.cfg.ProfileMutexFraction,
		BlockRateNs:   l.cfg.ProfileBlockRate,
		Dir:           l.cfg.ProfileDir,
		Interval:      l.cfg.ProfileInterval,
		Registry:      l.reg,
	}
	p, err := prof.Start(cfg)
	if err != nil {
		l.elog.Warn("profile capture dir unavailable", "component", "prof", "err", err.Error())
		cfg.Dir = ""
		p, _ = prof.Start(cfg)
	}
	l.profiler = p
}

// event appends one structured event to the pipeline's event log.
func (l *Live) event(msg string, attrs ...any) {
	l.elog.Info(msg, attrs...)
}

// Events returns the pipeline's structured event log.
func (l *Live) Events() *obs.EventLog { return l.events }

// Journeys returns the pipeline's flow-journey sampler (nil when
// disabled).
func (l *Live) Journeys() *obs.Journeys { return l.journeys }

// Journey helpers: the nil/idle checks keep the unsampled hot path at
// one atomic load before any key is rendered.

func (l *Live) jHop(key flow.Key, seq int, hop string) {
	if l.journeys.Active() == 0 {
		return
	}
	l.journeys.Hop(key.String(), seq, hop)
}

func (l *Live) jComplete(key flow.Key, seq int) {
	if l.journeys.Active() == 0 {
		return
	}
	l.journeys.Complete(key.String(), seq, "vote")
}

func (l *Live) jAbort(key flow.Key, seq int, reason string) {
	if l.journeys.Active() == 0 {
		return
	}
	l.journeys.Abort(key.String(), seq, reason)
}

// describeConfig renders the resolved runtime configuration for
// diagnostic bundles — what this pipeline actually ran with, defaults
// applied, not what the flags said.
func (l *Live) describeConfig() string {
	cfg := l.cfg
	models := make([]string, len(cfg.Models))
	for i, m := range cfg.Models {
		models[i] = m.Name()
	}
	var b strings.Builder
	fmt.Fprintf(&b, "shards=%d\nworkers=%d\n", l.nShards, cfg.Workers)
	fmt.Fprintf(&b, "models=%s\nquorum=%d\nvote_window=%d\n", strings.Join(models, ","), cfg.ModelQuorum, cfg.VoteWindow)
	fmt.Fprintf(&b, "features=%d\n", len(cfg.Scaler.Mean))
	fmt.Fprintf(&b, "poll_interval=%s\npoll_batch=%d\nqueue_cap=%d\ningest_queue_cap=%d\n", cfg.PollInterval, cfg.PollBatch, cfg.QueueCap, cfg.IngestQueueCap)
	fmt.Fprintf(&b, "predict_batch=%d\npredict_linger=%s\n", cfg.PredictBatch, cfg.PredictLinger)
	triageModel := ""
	if l.cascade != nil && len(l.cascade.Stages) > 0 {
		triageModel = l.cascade.Stages[0].Name
	}
	fmt.Fprintf(&b, "triage=%t\ntriage_threshold=%g\ntriage_model=%s\n", cfg.Triage, cfg.TriageThreshold, triageModel)
	fmt.Fprintf(&b, "skip_new_records=%t\ndrain_on_stop=%t\n", cfg.SkipNewRecords, cfg.DrainOnStop)
	fmt.Fprintf(&b, "flow_idle_timeout=%s\nsweep_interval=%s\n", cfg.FlowIdleTimeout, cfg.SweepInterval)
	fmt.Fprintf(&b, "checkpoint_dir=%s\ncheckpoint_every=%s\ncheckpoint_keep=%d\n", cfg.CheckpointDir, cfg.CheckpointEvery, cfg.CheckpointKeep)
	fmt.Fprintf(&b, "checkpoint_full_every=%d\ncheckpoint_compress=%t\n", cfg.CheckpointFullEvery, cfg.CheckpointCompress)
	fmt.Fprintf(&b, "worker_restart_budget=%d\nstore_retries=%d\n", cfg.WorkerRestartBudget, cfg.StoreRetries)
	fmt.Fprintf(&b, "model_fail_threshold=%d\nmodel_probe_after=%s\nhealth_recency=%s\n", cfg.ModelFailThreshold, cfg.ModelProbeAfter, cfg.HealthRecency)
	fmt.Fprintf(&b, "trace_sample_every=%d\njourney_sample_every=%d\n", cfg.TraceSampleEvery, l.journeys.SampleEvery())
	fmt.Fprintf(&b, "profile_mutex_fraction=%d\nprofile_block_rate_ns=%d\nprofile_dir=%s\n", cfg.ProfileMutexFraction, cfg.ProfileBlockRate, cfg.ProfileDir)
	fmt.Fprintf(&b, "fingerprint=%016x\n", l.fingerprint)
	return b.String()
}

// stopping reports whether Stop has been requested.
func (l *Live) stopping() bool {
	select {
	case <-l.quit:
		return true
	default:
		return false
	}
}

// sleepQuit sleeps for d or until Stop, reporting whether the full
// duration elapsed.
func (l *Live) sleepQuit(d time.Duration) bool {
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-l.quit:
		return false
	case <-timer.C:
		return true
	}
}

// HandleReport ingests one decoded INT report (INT Data Collection →
// Data Processor), applying the telemetry fault schedule when one is
// configured. Safe for concurrent use from any number of producers:
// reports are demuxed onto per-shard ingest queues and journaled by
// the shard's ingester goroutine, so producers only hash the key and
// enqueue.
func (l *Live) HandleReport(r *telemetry.Report) {
	l.Reports.Add(1)
	l.met.reports.Inc()
	// Duplicate suppression runs before the fault schedule and the
	// demux: over a duplicating or reordering wire, one exported report
	// must never become two flow observations (and so two decisions),
	// and a stale straggler must not rewind a flow's history. Reports
	// with no source identity skip dedup — sequence numbers are only
	// meaningful per exporter.
	if l.dedup != nil && r.SourceKey() != "" {
		res := l.dedup.Observe(r.SourceKey(), r.Seq)
		if res.Gaps > 0 {
			l.SeqGaps.Add(int64(res.Gaps))
			l.met.seqGaps.Add(int64(res.Gaps))
		}
		switch res.Verdict {
		case telemetry.SeqDuplicate:
			l.Duplicates.Add(1)
			l.met.dupReports.Inc()
			return
		case telemetry.SeqStale:
			l.StaleReps.Add(1)
			l.met.staleReps.Inc()
			return
		case telemetry.SeqReordered:
			l.Reordered.Add(1)
			l.met.reordered.Inc()
		}
	}
	in := l.cfg.Fault
	if in == nil {
		l.IngestAsync(flow.FromINT(r, now()))
		return
	}
	if in.CorruptReport(r) {
		in.Taint(flow.FromINT(r, 0).Key.String())
	}
	pi := flow.FromINT(r, now())
	if in.DropReport() {
		in.Taint(pi.Key.String())
		return
	}
	if d := in.ReportDelay(); d > 0 {
		in.Taint(pi.Key.String())
		time.Sleep(d)
		pi.At = now()
	}
	l.IngestAsync(pi)
}

// IngestAsync hands a normalized observation to its shard's ingester
// goroutine. The observation timestamp is taken here — arrival order
// at the demux, not queue-drain order, defines the flow's clock. A
// full shard queue blocks the producer (backpressure, like the
// paper's collector socket); after Stop begins the report is dropped
// and counted instead, because the ingesters are gone.
func (l *Live) IngestAsync(pi flow.PacketInfo) {
	if pi.At == 0 {
		pi.At = now()
	}
	select {
	case l.ingestChs[pi.Key.Shard(l.nShards)] <- pi:
		l.ingestAccepted.Add(1)
	case <-l.ingestQuit:
		l.met.ingestDropped.Inc()
	}
}

// IngestBacklog is how many accepted observations are still queued at
// the ingest demux, not yet folded into the flow table and journal.
func (l *Live) IngestBacklog() int64 {
	return l.ingestAccepted.Load() - l.ingestDone.Load()
}

// ingester owns one shard's ingest: it drains the shard's queue into
// the flow-table stripe and journal. One goroutine per shard keeps
// journal appends single-writer per stripe while producers fan in
// concurrently. On Stop it drains what is queued, then exits.
func (l *Live) ingester(shard int) {
	defer l.ingestWg.Done()
	ch := l.ingestChs[shard]
	for {
		select {
		case pi := <-ch:
			l.Ingest(pi)
			l.ingestDone.Add(1)
		case <-l.ingestQuit:
			for {
				select {
				case pi := <-ch:
					l.Ingest(pi)
					l.ingestDone.Add(1)
				default:
					return
				}
			}
		}
	}
}

// Ingest folds a normalized observation into its flow-table stripe
// and writes the snapshot to the database shard, retrying transient
// store errors with backoff. Safe for concurrent use; observations of
// flows on different shards never contend. Most callers want
// IngestAsync — Ingest applies the observation on the calling
// goroutine.
func (l *Live) Ingest(pi flow.PacketInfo) {
	// Checkpoint barrier: a capture in progress parks ingest until the
	// consistent cut is taken. Only this shard's barrier lock is taken,
	// so ingest on different shards never serializes here. A miss on
	// the read lock means the shard's ingest stalled behind the
	// barrier — counted, because from the outside it is
	// indistinguishable from slow ingest.
	shard := pi.Key.Shard(l.nShards)
	bar := &l.ckptMu[shard]
	if !bar.TryRLock() {
		l.met.ingestStalls.Inc()
		bar.RLock()
	}
	defer bar.RUnlock()
	start := time.Now()
	if pi.At == 0 {
		pi.At = now()
	}
	// Triage sketch: fed on the ingest path, under the shard barrier,
	// so a checkpoint capture (which holds every barrier for write)
	// never races an update — the sketch is quiescent at the cut.
	if l.sketches != nil {
		l.sketches[shard].Update(pi.Key.Hash())
	}
	var (
		feats   []float64
		key     flow.Key
		reg     netsim.Time
		last    netsim.Time
		updates int
	)
	l.tables.ObserveFunc(pi, func(st *flow.State) {
		feats = st.Features(nil, l.cfg.Features)
		key, reg, last, updates = st.Key, st.RegisteredAt, st.LastAt, st.Updates
	})
	if l.journeys.ShouldSample() {
		l.journeys.Begin(key.String(), updates, "ingest")
	}
	l.upsertFlow(key, feats, reg, last, updates, pi.Label, pi.AttackType)
	l.jHop(key, updates, "journal")
	l.Snapshots.Add(1)
	l.met.snapshots.Inc()
	l.met.stageIngest.Since(start)
}

// upsertFlow writes one snapshot, retrying transient failures with
// exponential backoff when the store surfaces them. A write still
// failing after the retry budget is dropped — counted, tainted, and
// raised to shedding, because a lost snapshot is a lost record.
func (l *Live) upsertFlow(key flow.Key, feats []float64, reg, last netsim.Time, updates int, truth bool, attackType string) {
	if l.fdb == nil {
		l.DB.UpsertFlow(key, feats, reg, last, updates, truth, attackType)
		return
	}
	backoff := l.cfg.StoreRetryBackoff
	for attempt := 0; ; attempt++ {
		_, err := l.fdb.TryUpsertFlow(key, feats, reg, last, updates, truth, attackType)
		if err == nil {
			return
		}
		l.StoreRetries.Add(1)
		l.met.storeRetries.Inc()
		l.noteDegraded("store upsert retry")
		if attempt >= l.cfg.StoreRetries {
			l.StoreDropped.Add(1)
			l.met.storeDropped.Inc()
			l.taintKey(key)
			l.jAbort(key, updates, "store_dropped")
			l.event("store write dropped", "component", "store",
				"flow", key.String(), "attempts", attempt+1)
			l.noteShedding("store write dropped")
			return
		}
		time.Sleep(backoff)
		backoff *= 2
	}
}

// Decisions returns a copy of the decision log.
func (l *Live) Decisions() []Decision {
	l.decMu.Lock()
	defer l.decMu.Unlock()
	out := make([]Decision, len(l.decisions))
	copy(out, l.decisions)
	return out
}

// DecisionCount returns the decision log's length without copying.
func (l *Live) DecisionCount() int {
	l.decMu.Lock()
	defer l.decMu.Unlock()
	return len(l.decisions)
}

// AbandonedByReason returns the per-reason abandonment counts
// (reasons: stop, panic, worker_down, no_model, malformed).
func (l *Live) AbandonedByReason() map[string]int64 {
	return l.met.abandoned.Values()
}

// abandon accounts n records lost for a reason.
func (l *Live) abandon(n int64, reason string) {
	if n <= 0 {
		return
	}
	l.Abandoned.Add(n)
	l.met.abandoned.With(reason).Add(n)
}

// taintKey marks a flow as fault-touched when an injector is wired.
func (l *Live) taintKey(key flow.Key) {
	if l.cfg.Fault != nil {
		l.cfg.Fault.Taint(key.String())
	}
}

// windowCount sums live vote windows across shards.
func (l *Live) windowCount() int {
	n := 0
	for _, sh := range l.shards {
		sh.mu.Lock()
		n += len(sh.windows)
		sh.mu.Unlock()
	}
	return n
}

// workerFor maps a shard to its prediction worker's channel. The
// static shard→worker assignment (round-robin) is what gives workers
// shard affinity: one flow is always predicted by one worker.
func (l *Live) workerFor(shard int) chan queued {
	return l.workerChs[shard%len(l.workerChs)]
}

// shardPoller is one shard's CentralServer: it polls the shard's
// journal through a private cursor and feeds the shard's worker,
// shedding when the worker queue is full and retrying transient
// store errors. Pollers of different shards share no locks.
func (l *Live) shardPoller(shard int) {
	defer l.pollWg.Done()
	ch := l.workerFor(shard)
	polledC := l.met.shardPolled.With(strconv.Itoa(shard))
	ticker := time.NewTicker(l.cfg.PollInterval)
	defer ticker.Stop()
	var cursor uint64
	for {
		select {
		case <-l.quit:
			return
		case <-ticker.C:
			// Checkpoint barrier: while a capture is in progress no new
			// records are polled or handed off, so in-flight work can
			// only drain. Each poller takes only its own shard's lock.
			l.ckptMu[shard].RLock()
			recs, cur, ok := l.pollOnce(shard, cursor)
			l.met.polls.Inc()
			if !ok {
				// Transient poll failure: the cursor is unchanged, so
				// the same entries come back at the next tick.
				l.ckptMu[shard].RUnlock()
				l.reassessHealth()
				continue
			}
			cursor = cur
			polled := time.Now()
			for _, rec := range recs {
				l.Polled.Add(1)
				l.met.polledRecs.Inc()
				polledC.Inc()
				// Journal wait: snapshot write → this poll.
				updated := time.Unix(0, int64(rec.UpdatedAt))
				l.met.stageJournal.ObserveDuration(polled.Sub(updated))
				l.jHop(rec.Key, rec.Updates, "poll")
				tr := l.tracer.Sample(rec.Key.String())
				tr.StageAt("journal_wait", updated, polled)
				select {
				case ch <- queued{rec: rec, enqueuedAt: polled, tr: tr}:
				default:
					l.Shed.Add(1)
					l.met.shed.Inc()
					l.taintKey(rec.Key)
					l.jAbort(rec.Key, rec.Updates, "shed")
					l.noteShedding("worker queue full")
				}
			}
			l.ckptMu[shard].RUnlock()
			l.reassessHealth()
		}
	}
}

// pollOnce polls one shard's journal, retrying transient store errors
// with backoff inside the tick. On persistent failure it reports !ok
// and the poller retries at the next tick — the cursor only advances
// on success, so no journal entry is ever skipped.
func (l *Live) pollOnce(shard int, cursor uint64) ([]store.FlowRecord, uint64, bool) {
	if l.fdb == nil {
		recs, cur := l.DB.PollShard(shard, cursor, l.cfg.PollBatch)
		l.DB.TrimShard(shard, cur)
		return recs, cur, true
	}
	backoff := l.cfg.StoreRetryBackoff
	for attempt := 0; ; attempt++ {
		recs, cur, err := l.fdb.TryPollShard(shard, cursor, l.cfg.PollBatch)
		if err == nil {
			l.DB.TrimShard(shard, cur)
			return recs, cur, true
		}
		l.StoreRetries.Add(1)
		l.met.storeRetries.Inc()
		l.noteDegraded("store poll retry")
		if attempt >= l.cfg.StoreRetries || !l.sleepQuit(backoff) {
			return nil, cursor, false
		}
		backoff *= 2
	}
}

// sweeper periodically evicts flows idle past FlowIdleTimeout.
func (l *Live) sweeper() {
	defer l.pollWg.Done()
	ticker := time.NewTicker(l.cfg.SweepInterval)
	defer ticker.Stop()
	for {
		select {
		case <-l.quit:
			return
		case <-ticker.C:
			l.sweep()
		}
	}
}

// onEvict is the flow table's eviction hook: when Sweep removes a
// flow, its database record and vote window go with it — exact,
// single-pass eviction instead of the old two-pass scan, which left
// store rows behind for flows created between the scan and the sweep
// and let the store grow without bound under spoofed-source floods.
// Runs under the evicting table shard's lock; it takes only the store
// and window locks (table → store, table → window — no path takes
// those locks and then the table's, so the order is acyclic).
func (l *Live) onEvict(key flow.Key) {
	l.DB.DeleteFlow(key)
	sh := l.shards[key.Shard(l.nShards)]
	sh.mu.Lock()
	if _, ok := sh.windows[key]; ok {
		delete(sh.windows, key)
		if l.deltaTrack {
			sh.removed[key] = struct{}{}
			delete(sh.dirty, key)
		}
	}
	sh.mu.Unlock()
}

// sweep evicts flows idle past FlowIdleTimeout. The table sweep fires
// onEvict per eviction, which removes the database record and vote
// window in the same pass; a safety pass then clears orphaned windows
// (a late decision can re-create a window after its flow was swept).
func (l *Live) sweep() {
	// Checkpoint barrier: sweeps mutate all three stores at once and
	// must not interleave with a capture, so every shard's barrier is
	// held for read — in ascending order, the same order a capture
	// takes the write side.
	for s := range l.ckptMu {
		l.ckptMu[s].RLock()
	}
	defer func() {
		for s := range l.ckptMu {
			l.ckptMu[s].RUnlock()
		}
	}()
	evicted := l.tables.Sweep(now())
	// Orphan pass: collect keys under the window lock, probe the table
	// without holding it (the eviction hook locks window under table;
	// nesting the other way here would deadlock).
	for _, sh := range l.shards {
		sh.mu.Lock()
		keys := make([]flow.Key, 0, len(sh.windows))
		for key := range sh.windows {
			keys = append(keys, key)
		}
		sh.mu.Unlock()
		for _, key := range keys {
			if !l.tables.Get(key, nil) {
				sh.mu.Lock()
				if _, ok := sh.windows[key]; ok {
					delete(sh.windows, key)
					if l.deltaTrack {
						sh.removed[key] = struct{}{}
						delete(sh.dirty, key)
					}
				}
				sh.mu.Unlock()
			}
		}
	}
	l.Evictions.Add(int64(evicted))
	l.met.evictions.Add(int64(evicted))
	if evicted > 0 {
		l.event("flows evicted", "component", "sweep", "evicted", evicted)
	}
}

// batchScratch is a prediction worker's reusable scoring buffers: the
// feature-row view of the current micro-batch, the standardized rows
// the ensemble reads, the vote buffers recycled across batches (only
// the flat per-row vote storage is allocated per batch — callers
// retain those rows in Decisions), and the triage-path buffers. One
// worker owns one scratch, so batch calls never allocate row storage
// after warm-up.
type batchScratch struct {
	rows   [][]float64
	scaled [][]float64

	// scoreBatch buffers (reused headers; see ml.EnsembleVotesInto
	// for the retention rationale).
	votes [][]int
	ones  []int

	// Tiered-inference buffers.
	cs  ml.CascadeScratch
	sus []bool
	sub [][]float64
}

// superviseWorker owns one prediction worker slot: it runs the worker
// and, when the worker dies to a panic, restarts it with exponential
// backoff under the restart budget. A worker that exhausts the budget
// is declared down — its queue is drained into
// intddos_records_abandoned{reason="worker_down"} so shutdown
// accounting still closes, and the pipeline reports shedding.
func (l *Live) superviseWorker(w int) {
	defer l.workWg.Done()
	const maxBackoff = time.Second
	backoff := l.cfg.WorkerRestartBackoff
	restarts := 0
	for {
		if l.runWorker(w) {
			return // clean exit: channel closed at Stop
		}
		l.met.workerPanics.Inc()
		if l.cfg.WorkerRestartBudget >= 0 && restarts >= l.cfg.WorkerRestartBudget {
			l.workersDown.Add(1)
			l.event("worker down", "component", "worker",
				"worker", w, "restarts", restarts)
			l.noteShedding(fmt.Sprintf("worker %d restart budget exhausted", w))
			l.abandonRemaining(w)
			return
		}
		restarts++
		l.WorkerRestarts.Add(1)
		l.met.workerRestarts.Inc()
		l.event("worker restarted", "component", "worker",
			"worker", w, "restarts", restarts)
		l.noteDegraded(fmt.Sprintf("worker %d restarted", w))
		l.sleepQuit(backoff)
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
	}
}

// abandonRemaining consumes a down worker's queue until Stop closes
// it, accounting every record. Consuming (instead of leaving the
// queue to fill) keeps the shard pollers running, so flows of other
// shards mapped to healthy workers are unaffected.
func (l *Live) abandonRemaining(w int) {
	for q := range l.workerChs[w] {
		l.abandon(1, "worker_down")
		l.taintKey(q.rec.Key)
		l.jAbort(q.rec.Key, q.rec.Updates, "worker_down")
	}
}

// runWorker is one prediction worker run: it drains the worker's
// channel into micro-batches and scores them until the channel closes
// (clean=true) or a panic escapes a batch (clean=false, after
// accounting the batch's unfinished records). Panics inside a model
// are already contained by the scoring path; what reaches here is an
// injected worker fault or a genuine bug in the voting/logging path —
// either way the supervisor decides whether to restart.
func (l *Live) runWorker(w int) (clean bool) {
	ch := l.workerChs[w]
	maxBatch := l.cfg.PredictBatch
	scratch := &batchScratch{}
	var cur workerBatch
	cur.batch = make([]queued, 0, maxBatch)
	defer func() {
		if r := recover(); r != nil {
			clean = false
			rest := cur.batch[cur.done:]
			l.abandon(int64(len(rest)), "panic")
			for _, q := range rest {
				l.taintKey(q.rec.Key)
				l.jAbort(q.rec.Key, q.rec.Updates, "panic")
			}
		}
	}()
	for {
		q, ok := <-ch
		if !ok {
			return true
		}
		if l.stopping() && !l.cfg.DrainOnStop {
			l.abandon(1, "stop")
			l.jAbort(q.rec.Key, q.rec.Updates, "stop")
			continue
		}
		cur.batch = append(cur.batch[:0], q)
		cur.done = 0
		closed := l.fillBatch(&cur, ch, maxBatch)
		if l.cfg.Fault.WorkerPanicNow() {
			panic(fault.InjectedPanic{Site: fault.SiteWorkerPanic})
		}
		busyT0 := time.Now()
		l.predictBatch(&cur, scratch)
		l.workerBusy[w].Add(int64(time.Since(busyT0)))
		cur.batch = cur.batch[:0]
		cur.done = 0
		if closed {
			return true
		}
	}
}

// fillBatch tops up the current micro-batch from backlog already
// queued (never blocking) and then, if configured, lingers briefly
// for stragglers. Reports whether the channel closed while filling —
// the batch in hand is still scored.
func (l *Live) fillBatch(cur *workerBatch, ch chan queued, maxBatch int) (closed bool) {
drain:
	for len(cur.batch) < maxBatch {
		select {
		case q, ok := <-ch:
			if !ok {
				return true
			}
			cur.batch = append(cur.batch, q)
		default:
			break drain
		}
	}
	if l.cfg.PredictLinger > 0 && len(cur.batch) < maxBatch {
		timer := time.NewTimer(l.cfg.PredictLinger)
	linger:
		for len(cur.batch) < maxBatch {
			select {
			case <-l.quit:
				break linger
			case q, ok := <-ch:
				if !ok {
					timer.Stop()
					return true
				}
				cur.batch = append(cur.batch, q)
			case <-timer.C:
				break linger
			}
		}
		timer.Stop()
	}
	return false
}

// predictBatch scores one micro-batch — standardization, fault-
// isolated ensemble votes, effective quorum — and finishes every
// record in arrival order, so the per-flow decision sequence a single
// worker produces is independent of how records were grouped into
// batches. Records that cannot be scored (malformed snapshot, no
// model available) are abandoned with a reason, never lost silently.
func (l *Live) predictBatch(b *workerBatch, s *batchScratch) {
	// Shape guard: a snapshot whose width disagrees with the scaler
	// would panic inside a kernel; abandon it instead.
	want := len(l.cfg.Scaler.Mean)
	kept := b.batch[:0]
	for _, q := range b.batch {
		if len(q.rec.Features) != want {
			l.abandon(1, "malformed")
			l.taintKey(q.rec.Key)
			l.jAbort(q.rec.Key, q.rec.Updates, "malformed")
			continue
		}
		kept = append(kept, q)
	}
	b.batch = kept
	if len(b.batch) == 0 {
		return
	}
	dequeued := time.Now()
	s.rows = s.rows[:0]
	for _, q := range b.batch {
		l.met.stageQueue.ObserveDuration(dequeued.Sub(q.enqueuedAt))
		q.tr.StageAt("queue_wait", q.enqueuedAt, dequeued)
		l.jHop(q.rec.Key, q.rec.Updates, "batch")
		s.rows = append(s.rows, q.rec.Features)
	}
	s.scaled = l.cfg.Scaler.TransformBatch(s.scaled, s.rows)
	if l.cascade != nil {
		l.triageBatch(b, s, dequeued)
		return
	}
	votes, ones, navail := l.scoreBatch(s, s.scaled)
	if navail == 0 {
		// Every ensemble member is out: no best-effort answer exists.
		l.abandon(int64(len(b.batch)), "no_model")
		for _, q := range b.batch {
			l.taintKey(q.rec.Key)
			l.jAbort(q.rec.Key, q.rec.Updates, "no_model")
		}
		b.done = len(b.batch)
		return
	}
	quorum := l.effectiveQuorum(navail)
	if navail < len(l.cfg.Models) {
		// Degraded vote: decisions still flow, at reduced fidelity.
		l.met.degradedBatches.Inc()
		for _, q := range b.batch {
			l.taintKey(q.rec.Key)
		}
	}
	n := len(b.batch)
	l.Predictions.Add(int64(n))
	l.met.predictions.Add(int64(n))
	predicted := time.Now()
	// The batch call's cost is attributed evenly to its samples: at
	// batch size one this is the same duration the per-record path
	// observed.
	perSample := predicted.Sub(dequeued) / time.Duration(n)
	l.met.batchSize.Observe(float64(n))
	for i := range b.batch {
		l.met.stagePredict.Observe(perSample.Seconds())
		l.met.sampleLatency.Observe(perSample.Seconds())
		b.batch[i].tr.StageAt("scale_predict", dequeued, predicted)
		l.jHop(b.batch[i].rec.Key, b.batch[i].rec.Updates, "predict")
		raw := 0
		if ones[i] >= quorum {
			raw = 1
		}
		l.finish(b.batch[i], raw, votes[i], predicted, 0)
		b.done++
	}
}

// triageBatch is predictBatch's tiered path: the per-shard sketches
// veto benign exits for suspicious flows, the cascade early-exits
// rows its stage-0 model is confident about, and only the
// fall-through remainder pays for the fault-isolated ensemble vote.
// Records are finished in arrival order regardless of which tier
// decided them, so the per-flow decision sequence is identical to the
// untiered path's — only the votes behind confident rows change.
// With an inert cascade (threshold <= 0) every row falls through and
// the output is bit-identical to the legacy path.
func (l *Live) triageBatch(b *workerBatch, s *batchScratch, dequeued time.Time) {
	triageT0 := time.Now()
	if cap(s.sus) < len(b.batch) {
		s.sus = make([]bool, len(b.batch))
	}
	sus := s.sus[:len(b.batch)]
	for i, q := range b.batch {
		sk := l.sketches[q.rec.Key.Shard(l.nShards)]
		sus[i] = sk.Suspicious(q.rec.Key.Hash(),
			triageHeavyHitterFrac, triageEntropyFloor, triageMinSample)
	}
	stage, tlabel := l.cascade.TriageBatch(s.scaled, sus, &s.cs)
	l.met.triageLatency.Since(triageT0)

	// Full ensemble on the fall-through remainder only, in batch
	// order.
	if cap(s.sub) < len(b.batch) {
		s.sub = make([][]float64, len(b.batch))
	}
	sub := s.sub[:0]
	nExit := 0
	for i := range b.batch {
		if stage[i] == 0 {
			sub = append(sub, s.scaled[i])
		} else {
			nExit++
		}
	}
	var votes [][]int
	var ones []int
	navail, quorum := 0, 0
	if len(sub) > 0 {
		votes, ones, navail = l.scoreBatch(s, sub)
		if navail > 0 {
			quorum = l.effectiveQuorum(navail)
			if navail < len(l.cfg.Models) {
				l.met.degradedBatches.Inc()
			}
		}
	}

	predicted := time.Now()
	n := len(b.batch)
	perSample := predicted.Sub(dequeued) / time.Duration(n)
	l.met.batchSize.Observe(float64(n))
	// Exited rows carry their single stage-0 vote as provenance; the
	// slices are retained in Decisions, so they get fresh storage —
	// one flat allocation for the whole batch.
	exitFlat := make([]int, nExit)
	e, j := 0, 0
	decided := 0
	for i := range b.batch {
		l.met.stagePredict.Observe(perSample.Seconds())
		l.met.sampleLatency.Observe(perSample.Seconds())
		b.batch[i].tr.StageAt("scale_predict", dequeued, predicted)
		l.jHop(b.batch[i].rec.Key, b.batch[i].rec.Updates, "predict")
		if st := stage[i]; st > 0 {
			if st == 1 {
				l.met.triageExitStage1.Inc()
			} else {
				l.met.triageExits.With(strconv.Itoa(st)).Inc()
			}
			ev := exitFlat[e : e+1 : e+1]
			ev[0] = tlabel[i]
			e++
			l.finish(b.batch[i], tlabel[i], ev, predicted, st)
			decided++
			b.done++
			continue
		}
		l.met.triageFallthrough.Inc()
		if navail == 0 {
			// Every ensemble member is out: no best-effort answer
			// exists for fall-through rows. Exited rows still decide —
			// the cascade's stage-0 model answered before the ensemble
			// was consulted.
			q := b.batch[i]
			l.abandon(1, "no_model")
			l.taintKey(q.rec.Key)
			l.jAbort(q.rec.Key, q.rec.Updates, "no_model")
			b.done++
			continue
		}
		if navail < len(l.cfg.Models) {
			l.taintKey(b.batch[i].rec.Key)
		}
		raw := 0
		if ones[j] >= quorum {
			raw = 1
		}
		l.finish(b.batch[i], raw, votes[j], predicted, 0)
		decided++
		j++
		b.done++
	}
	l.Predictions.Add(int64(decided))
	l.met.predictions.Add(int64(decided))
}

// finish applies window voting on the flow's shard and logs the
// decision. stage is the decision's cascade provenance (0 for the
// full-ensemble path).
func (l *Live) finish(q queued, raw int, votes []int, predicted time.Time, stage int) {
	rec := q.rec
	t := now()
	sh := l.shards[rec.Key.Shard(l.nShards)]
	sh.mu.Lock()
	w := append(sh.windows[rec.Key], raw)
	if len(w) > l.cfg.VoteWindow {
		w = w[len(w)-l.cfg.VoteWindow:]
	}
	sh.windows[rec.Key] = w
	if l.deltaTrack {
		sh.dirty[rec.Key] = struct{}{}
		delete(sh.removed, rec.Key)
	}
	sum := 0
	for _, v := range w {
		sum += v
	}
	sh.mu.Unlock()
	label := 0
	if 2*sum > len(w) {
		label = 1
	}
	d := Decision{
		Key:        rec.Key,
		Label:      label,
		Seq:        rec.Updates - 1,
		At:         t,
		Latency:    t - rec.UpdatedAt,
		Votes:      votes,
		Stage:      stage,
		Truth:      rec.Truth,
		AttackType: rec.AttackType,
	}
	l.decMu.Lock()
	l.decisions = append(l.decisions, d)
	cb := l.OnDecision
	l.decMu.Unlock()

	typ := rec.AttackType
	if typ == "" {
		typ = "unknown"
	}
	l.met.decisions.With(typ).Inc()
	if !d.Correct() {
		l.met.misclass.With(typ).Inc()
	}
	l.met.predictLatency.Observe(d.Latency.Seconds())
	voted := time.Now()
	l.met.stageVote.ObserveDuration(voted.Sub(predicted))
	q.tr.StageAt("vote", predicted, voted)
	l.tracer.Finish(q.tr)

	l.DB.AppendPrediction(store.PredictionRecord{
		Key: rec.Key, Label: label, At: t, Latency: d.Latency,
		Votes: votes, Truth: rec.Truth, AttackType: rec.AttackType,
	})
	if cb != nil {
		cb(d)
	}
	// Completion mark for the checkpoint barrier: the record's window
	// vote, decision, and prediction are all durable-state-visible, so
	// a capture that observes this count sees everything the record
	// produced.
	l.jComplete(rec.Key, rec.Updates)
	l.completed.Add(1)
}
