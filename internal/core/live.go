package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/amlight/intddos/internal/flow"
	"github.com/amlight/intddos/internal/ml"
	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/obs"
	"github.com/amlight/intddos/internal/store"
	"github.com/amlight/intddos/internal/telemetry"
)

// LiveConfig parameterizes the wall-clock runtime of the mechanism.
type LiveConfig struct {
	// Features selects the model input vector (default: the paper's
	// 15 INT features).
	Features flow.FeatureSet
	// Models is the pre-trained ensemble.
	Models []ml.Classifier
	// Scaler standardizes snapshots; required.
	Scaler *ml.StandardScaler

	// PollInterval is the CentralServer polling period (default 5 ms
	// wall time). With sharding, every shard poller ticks at this
	// period independently.
	PollInterval time.Duration
	// PollBatch bounds records fetched per poll per shard (default 256).
	PollBatch int
	// QueueCap bounds the prediction input channels (default 4096,
	// divided across workers); beyond it updates are shed and counted.
	QueueCap int
	// Workers is the number of prediction goroutines (default 1,
	// like the paper's single Python predictor). Each worker owns its
	// own input channel; shards are assigned to workers round-robin,
	// so all updates of one flow are predicted by one worker in
	// journal order — the invariant the vote window needs.
	Workers int

	// Shards stripes the flow table, the database journal, and the
	// dispatch to prediction workers by flow.Key hash. Zero selects
	// the legacy single-lock store.DB (the paper's one-database
	// layout); n >= 1 selects a store.ShardedDB with n shards, which
	// at n=1 is observably identical to the legacy layout.
	Shards int

	// PredictBatch caps the micro-batch a prediction worker drains
	// from its shard queue per wakeup: queued records already waiting
	// are scored through the scaler and ensemble batch paths in one
	// amortized call instead of one record per wakeup. The batch
	// contract makes results row-for-row identical to per-record
	// scoring, so this only trades per-record overhead for batching.
	// Zero or one keeps the paper's record-at-a-time behavior.
	PredictBatch int
	// PredictLinger is how long a worker with an unfilled micro-batch
	// waits for more records before scoring what it has (default 0:
	// score immediately — batches only form from backlog). Lingering
	// trades per-record latency for larger batches under load.
	PredictLinger time.Duration

	// ModelQuorum and VoteWindow mirror the simulated mechanism
	// (defaults 2-of-ensemble and 3).
	ModelQuorum int
	VoteWindow  int
	// SkipNewRecords restricts prediction to record updates (§III-3
	// strict reading).
	SkipNewRecords bool

	// FlowIdleTimeout evicts flows idle past this TTL — their vote
	// windows, flow-table state, and database records — so long runs
	// don't accumulate per-flow memory without bound. Zero disables
	// eviction. Evictions are counted in intddos_evictions_total.
	FlowIdleTimeout time.Duration
	// SweepInterval is how often the eviction pass runs (default:
	// FlowIdleTimeout).
	SweepInterval time.Duration

	// Registry receives the runtime's metrics, stage histograms, and
	// decision tracer; nil builds a private registry, readable via
	// Obs(). A registry should be scoped to one pipeline instance.
	Registry *obs.Registry
	// TraceSampleEvery routes 1-in-N flow records through the
	// per-stage span tracer (default 64; negative disables tracing).
	TraceSampleEvery int
}

// liveMetrics bundles the runtime's obs instruments. All fields are
// nil-safe, so a zero value disables instrumentation.
type liveMetrics struct {
	reports     *obs.Counter
	snapshots   *obs.Counter
	predictions *obs.Counter
	shed        *obs.Counter
	polls       *obs.Counter
	evictions   *obs.Counter

	decisions *obs.CounterVec // by attack_type
	misclass  *obs.CounterVec // by attack_type

	predictLatency *obs.Histogram // end-to-end §III-2 prediction latency
	batchSize      *obs.Histogram // records per micro-batch scoring call
	sampleLatency  *obs.Histogram // per-sample share of the batch scoring call

	// Per-stage latency histograms (children of intddos_stage_seconds
	// cached so the hot path skips the vec lookup).
	stageIngest  *obs.Histogram
	stageJournal *obs.Histogram
	stageQueue   *obs.Histogram
	stagePredict *obs.Histogram
	stageVote    *obs.Histogram
}

// newLiveMetrics registers the runtime's instruments on reg.
func newLiveMetrics(reg *obs.Registry) liveMetrics {
	stages := reg.HistogramVec("intddos_stage_seconds", "stage", nil)
	return liveMetrics{
		reports:        reg.Counter("intddos_reports_total"),
		snapshots:      reg.Counter("intddos_snapshots_total"),
		predictions:    reg.Counter("intddos_predictions_total"),
		shed:           reg.Counter("intddos_shed_total"),
		polls:          reg.Counter("intddos_polls_total"),
		evictions:      reg.Counter("intddos_evictions_total"),
		decisions:      reg.CounterVec("intddos_decisions_total", "attack_type"),
		misclass:       reg.CounterVec("intddos_misclassified_total", "attack_type"),
		predictLatency: reg.Histogram("intddos_predict_latency_seconds", nil),
		batchSize:      reg.Histogram("intddos_predict_batch_size", []float64{1, 2, 4, 8, 16, 32, 64, 128, 256}),
		sampleLatency:  reg.Histogram("intddos_predict_sample_seconds", nil),
		stageIngest:    stages.With("ingest"),
		stageJournal:   stages.With("journal_wait"),
		stageQueue:     stages.With("queue_wait"),
		stagePredict:   stages.With("scale_predict"),
		stageVote:      stages.With("vote"),
	}
}

// queued is one flow record in flight to the prediction workers,
// carrying the timestamps and (for sampled records) the span trace
// that make per-stage latencies observable.
type queued struct {
	rec        store.FlowRecord
	enqueuedAt time.Time
	tr         *obs.Trace
}

// liveShard is the per-shard mutable state of the runtime: the vote
// windows of the flows hashed onto the shard. The flow-table stripe
// lives in the ShardedTable and the journal stripe in the Store, both
// indexed by the same Key.Shard value.
type liveShard struct {
	mu      sync.Mutex
	windows map[flow.Key][]int
}

// Live runs the four Figure 2 modules as concurrent goroutines over
// the wall clock — the deployment mode of the paper's production
// implementation — sharing the same flow table, database, and voting
// logic as the simulated Mechanism. Timestamps are wall-clock
// nanoseconds widened into the same Time domain the rest of the
// repository uses.
//
// The hot path is sharded end to end by flow.Key hash: each shard has
// its own flow-table stripe, database journal with cursor, and poller
// goroutine, and shards map to prediction workers round-robin, so
// every update of one flow flows through one lock stripe, one
// journal, one poller, and one worker — per-flow prediction order is
// preserved at any worker count. With Shards=0 (the default) the
// layout degenerates to the legacy single-lock pipeline.
type Live struct {
	cfg     LiveConfig
	nShards int

	tables *flow.ShardedTable
	shards []*liveShard

	DB store.Store

	workerChs []chan queued
	quit      chan struct{}
	wg        sync.WaitGroup
	stop      sync.Once

	reg    *obs.Registry
	met    liveMetrics
	tracer *obs.Tracer

	decMu     sync.Mutex
	decisions []Decision
	// OnDecision observes every final decision (called off the
	// prediction goroutine; keep it fast).
	OnDecision func(Decision)

	// Stats (atomics: read while running). Mirrored into the obs
	// registry; kept for compatibility with existing callers.
	Reports     atomic.Int64
	Snapshots   atomic.Int64
	Predictions atomic.Int64
	Shed        atomic.Int64
	Evictions   atomic.Int64
}

// NewLive validates cfg and builds the runtime.
func NewLive(cfg LiveConfig) (*Live, error) {
	if len(cfg.Models) == 0 {
		return nil, errors.New("core: no models configured")
	}
	if cfg.Scaler == nil {
		return nil, errors.New("core: scaler required")
	}
	if cfg.Features == nil {
		cfg.Features = flow.INTFeatures()
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 5 * time.Millisecond
	}
	if cfg.PollBatch <= 0 {
		cfg.PollBatch = 256
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 4096
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.Shards < 0 {
		cfg.Shards = 0
	}
	if cfg.PredictBatch < 1 {
		cfg.PredictBatch = 1
	}
	if cfg.ModelQuorum <= 0 {
		cfg.ModelQuorum = (len(cfg.Models) + 2) / 2
	}
	if cfg.ModelQuorum > len(cfg.Models) {
		cfg.ModelQuorum = (len(cfg.Models) + 1) / 2
	}
	if cfg.VoteWindow <= 0 {
		cfg.VoteWindow = 3
	}
	if cfg.SweepInterval <= 0 {
		cfg.SweepInterval = cfg.FlowIdleTimeout
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	nShards := cfg.Shards
	if nShards < 1 {
		nShards = 1
	}
	var db store.Store
	if cfg.Shards == 0 {
		db = store.New() // the paper's exact single-lock layout
	} else {
		db = store.NewSharded(cfg.Shards)
	}
	l := &Live{
		cfg:     cfg,
		nShards: nShards,
		tables:  flow.NewShardedTable(nShards),
		shards:  make([]*liveShard, nShards),
		DB:      db,
		quit:    make(chan struct{}),
		reg:     cfg.Registry,
	}
	for i := range l.shards {
		l.shards[i] = &liveShard{windows: make(map[flow.Key][]int)}
	}
	perWorkerCap := cfg.QueueCap / cfg.Workers
	if perWorkerCap < 1 {
		perWorkerCap = 1
	}
	l.workerChs = make([]chan queued, cfg.Workers)
	for i := range l.workerChs {
		l.workerChs[i] = make(chan queued, perWorkerCap)
	}
	l.tables.SetIdleTimeout(netsim.Time(cfg.FlowIdleTimeout))
	l.DB.SetJournalNew(!cfg.SkipNewRecords)
	l.met = newLiveMetrics(l.reg)
	if cfg.TraceSampleEvery >= 0 {
		l.tracer = l.reg.Tracer("intddos_pipeline", cfg.TraceSampleEvery, 64)
	}
	l.reg.GaugeFunc("intddos_queue_depth", func() float64 {
		n := 0
		for _, ch := range l.workerChs {
			n += len(ch)
		}
		return float64(n)
	})
	l.reg.GaugeFunc("intddos_queue_capacity", func() float64 {
		n := 0
		for _, ch := range l.workerChs {
			n += cap(ch)
		}
		return float64(n)
	})
	l.reg.GaugeFunc("intddos_vote_windows", func() float64 { return float64(l.windowCount()) })
	l.reg.GaugeFunc("intddos_pipeline_shards", func() float64 { return float64(l.nShards) })
	l.DB.Instrument(l.reg)
	return l, nil
}

// Obs returns the runtime's metrics registry (the one passed in
// LiveConfig.Registry, or the private default). Mount Obs().Handler()
// to serve /metrics, /healthz, /traces, and pprof.
func (l *Live) Obs() *obs.Registry { return l.reg }

// MetricsSnapshot captures every runtime metric — counters, queue
// gauges, and the per-stage latency histograms — for end-of-run
// summaries.
func (l *Live) MetricsSnapshot() obs.Snapshot { return l.reg.Snapshot() }

// Shards returns the pipeline's stripe count.
func (l *Live) Shards() int { return l.nShards }

// now returns the wall clock in the repository's Time domain.
func now() netsim.Time { return netsim.Time(time.Now().UnixNano()) }

// Start launches the per-shard CentralServer pollers, the Prediction
// workers, and (when a TTL is configured) the eviction sweeper.
func (l *Live) Start() {
	for s := 0; s < l.nShards; s++ {
		l.wg.Add(1)
		go l.shardPoller(s)
	}
	for w := 0; w < l.cfg.Workers; w++ {
		l.wg.Add(1)
		go l.predictionWorker(w)
	}
	if l.cfg.FlowIdleTimeout > 0 {
		l.wg.Add(1)
		go l.sweeper()
	}
}

// Stop terminates the pipeline and waits for the goroutines. Pending
// queue items are abandoned, not drained: records already handed to a
// prediction worker finish and are logged, records still queued are
// dropped silently (they were never acknowledged anywhere). Stop is
// idempotent — extra calls wait for the same shutdown and return.
func (l *Live) Stop() {
	l.stop.Do(func() { close(l.quit) })
	l.wg.Wait()
}

// HandleReport ingests one decoded INT report (INT Data Collection →
// Data Processor). Safe for concurrent use.
func (l *Live) HandleReport(r *telemetry.Report) {
	l.Reports.Add(1)
	l.met.reports.Inc()
	l.Ingest(flow.FromINT(r, now()))
}

// Ingest folds a normalized observation into its flow-table stripe
// and writes the snapshot to the database shard. Safe for concurrent
// use; observations of flows on different shards never contend.
func (l *Live) Ingest(pi flow.PacketInfo) {
	start := time.Now()
	if pi.At == 0 {
		pi.At = now()
	}
	var (
		feats   []float64
		key     flow.Key
		reg     netsim.Time
		last    netsim.Time
		updates int
	)
	l.tables.ObserveFunc(pi, func(st *flow.State) {
		feats = st.Features(nil, l.cfg.Features)
		key, reg, last, updates = st.Key, st.RegisteredAt, st.LastAt, st.Updates
	})
	l.DB.UpsertFlow(key, feats, reg, last, updates, pi.Label, pi.AttackType)
	l.Snapshots.Add(1)
	l.met.snapshots.Inc()
	l.met.stageIngest.Since(start)
}

// Decisions returns a copy of the decision log.
func (l *Live) Decisions() []Decision {
	l.decMu.Lock()
	defer l.decMu.Unlock()
	out := make([]Decision, len(l.decisions))
	copy(out, l.decisions)
	return out
}

// windowCount sums live vote windows across shards.
func (l *Live) windowCount() int {
	n := 0
	for _, sh := range l.shards {
		sh.mu.Lock()
		n += len(sh.windows)
		sh.mu.Unlock()
	}
	return n
}

// workerFor maps a shard to its prediction worker's channel. The
// static shard→worker assignment (round-robin) is what gives workers
// shard affinity: one flow is always predicted by one worker.
func (l *Live) workerFor(shard int) chan queued {
	return l.workerChs[shard%len(l.workerChs)]
}

// shardPoller is one shard's CentralServer: it polls the shard's
// journal through a private cursor and feeds the shard's worker,
// shedding when the worker queue is full. Pollers of different shards
// share no locks.
func (l *Live) shardPoller(shard int) {
	defer l.wg.Done()
	ch := l.workerFor(shard)
	ticker := time.NewTicker(l.cfg.PollInterval)
	defer ticker.Stop()
	var cursor uint64
	for {
		select {
		case <-l.quit:
			return
		case <-ticker.C:
			recs, cur := l.DB.PollShard(shard, cursor, l.cfg.PollBatch)
			cursor = cur
			l.DB.TrimShard(shard, cur)
			l.met.polls.Inc()
			polled := time.Now()
			for _, rec := range recs {
				// Journal wait: snapshot write → this poll.
				updated := time.Unix(0, int64(rec.UpdatedAt))
				l.met.stageJournal.ObserveDuration(polled.Sub(updated))
				tr := l.tracer.Sample(rec.Key.String())
				tr.StageAt("journal_wait", updated, polled)
				select {
				case ch <- queued{rec: rec, enqueuedAt: polled, tr: tr}:
				default:
					l.Shed.Add(1)
					l.met.shed.Inc()
				}
			}
		}
	}
}

// sweeper periodically evicts flows idle past FlowIdleTimeout.
func (l *Live) sweeper() {
	defer l.wg.Done()
	ticker := time.NewTicker(l.cfg.SweepInterval)
	defer ticker.Stop()
	for {
		select {
		case <-l.quit:
			return
		case <-ticker.C:
			l.sweep()
		}
	}
}

// sweep evicts flows idle past FlowIdleTimeout: their vote windows,
// flow-table state, and database records. Shards are swept one at a
// time so the rest of the pipeline keeps running.
func (l *Live) sweep() {
	cutoff := now()
	timeout := netsim.Time(l.cfg.FlowIdleTimeout)
	var stale []flow.Key
	l.tables.Range(func(st *flow.State) bool {
		if cutoff-st.LastAt > timeout {
			stale = append(stale, st.Key)
		}
		return true
	})
	evicted := l.tables.Sweep(cutoff)
	for _, key := range stale {
		l.DB.DeleteFlow(key)
	}
	// Windows die with their table entry, or when their flow record
	// is gone entirely (a late decision can re-create a window after
	// its flow was swept).
	for _, sh := range l.shards {
		sh.mu.Lock()
		for key := range sh.windows {
			alive := l.tables.Get(key, func(st *flow.State) {
				if cutoff-st.LastAt > timeout {
					delete(sh.windows, key)
				}
			})
			if !alive {
				delete(sh.windows, key)
			}
		}
		sh.mu.Unlock()
	}
	l.Evictions.Add(int64(evicted))
	l.met.evictions.Add(int64(evicted))
}

// batchScratch is a prediction worker's reusable scoring buffers: the
// feature-row view of the current micro-batch and the standardized
// rows the ensemble reads. One worker owns one scratch, so batch calls
// never allocate row storage after warm-up.
type batchScratch struct {
	rows   [][]float64
	scaled [][]float64
}

// predictionWorker standardizes snapshots, runs the ensemble, and
// aggregates decisions for the shards assigned to it. Each wakeup
// drains the worker's channel into a micro-batch of up to
// cfg.PredictBatch records and scores them through the scaler and
// ensemble batch paths in one amortized call; results are row-for-row
// identical to record-at-a-time scoring, and PredictBatch=1
// degenerates to exactly that.
func (l *Live) predictionWorker(w int) {
	defer l.wg.Done()
	ch := l.workerChs[w]
	maxBatch := l.cfg.PredictBatch
	batch := make([]queued, 0, maxBatch)
	scratch := &batchScratch{}
	for {
		select {
		case <-l.quit:
			return
		case q := <-ch:
			batch = append(batch[:0], q)
			// Backlog already queued joins the batch without blocking.
		drain:
			for len(batch) < maxBatch {
				select {
				case q := <-ch:
					batch = append(batch, q)
				default:
					break drain
				}
			}
			// An unfilled batch may linger briefly for stragglers. On
			// quit we still score what was dequeued — those records
			// were taken off the channel and would otherwise vanish.
			if l.cfg.PredictLinger > 0 && len(batch) < maxBatch {
				timer := time.NewTimer(l.cfg.PredictLinger)
			linger:
				for len(batch) < maxBatch {
					select {
					case <-l.quit:
						break linger
					case q := <-ch:
						batch = append(batch, q)
					case <-timer.C:
						break linger
					}
				}
				timer.Stop()
			}
			l.predictBatch(batch, scratch)
		}
	}
}

// predictBatch scores one micro-batch — standardization, ensemble
// votes, quorum — and finishes every record in arrival order, so the
// per-flow decision sequence a single worker produces is independent
// of how records were grouped into batches.
func (l *Live) predictBatch(batch []queued, s *batchScratch) {
	dequeued := time.Now()
	s.rows = s.rows[:0]
	for _, q := range batch {
		l.met.stageQueue.ObserveDuration(dequeued.Sub(q.enqueuedAt))
		q.tr.StageAt("queue_wait", q.enqueuedAt, dequeued)
		s.rows = append(s.rows, q.rec.Features)
	}
	s.scaled = l.cfg.Scaler.TransformBatch(s.scaled, s.rows)
	votes, ones := ml.EnsembleVotes(l.cfg.Models, s.scaled)
	n := len(batch)
	l.Predictions.Add(int64(n))
	l.met.predictions.Add(int64(n))
	predicted := time.Now()
	// The batch call's cost is attributed evenly to its samples: at
	// batch size one this is the same duration the per-record path
	// observed.
	perSample := predicted.Sub(dequeued) / time.Duration(n)
	l.met.batchSize.Observe(float64(n))
	for i := range batch {
		l.met.stagePredict.Observe(perSample.Seconds())
		l.met.sampleLatency.Observe(perSample.Seconds())
		batch[i].tr.StageAt("scale_predict", dequeued, predicted)
		raw := 0
		if ones[i] >= l.cfg.ModelQuorum {
			raw = 1
		}
		l.finish(batch[i], raw, votes[i], predicted)
	}
}

// finish applies window voting on the flow's shard and logs the
// decision.
func (l *Live) finish(q queued, raw int, votes []int, predicted time.Time) {
	rec := q.rec
	t := now()
	sh := l.shards[rec.Key.Shard(l.nShards)]
	sh.mu.Lock()
	w := append(sh.windows[rec.Key], raw)
	if len(w) > l.cfg.VoteWindow {
		w = w[len(w)-l.cfg.VoteWindow:]
	}
	sh.windows[rec.Key] = w
	sum := 0
	for _, v := range w {
		sum += v
	}
	sh.mu.Unlock()
	label := 0
	if 2*sum > len(w) {
		label = 1
	}
	d := Decision{
		Key:        rec.Key,
		Label:      label,
		Seq:        rec.Updates - 1,
		At:         t,
		Latency:    t - rec.UpdatedAt,
		Votes:      votes,
		Truth:      rec.Truth,
		AttackType: rec.AttackType,
	}
	l.decMu.Lock()
	l.decisions = append(l.decisions, d)
	cb := l.OnDecision
	l.decMu.Unlock()

	typ := rec.AttackType
	if typ == "" {
		typ = "unknown"
	}
	l.met.decisions.With(typ).Inc()
	if !d.Correct() {
		l.met.misclass.With(typ).Inc()
	}
	l.met.predictLatency.Observe(d.Latency.Seconds())
	voted := time.Now()
	l.met.stageVote.ObserveDuration(voted.Sub(predicted))
	q.tr.StageAt("vote", predicted, voted)
	l.tracer.Finish(q.tr)

	l.DB.AppendPrediction(store.PredictionRecord{
		Key: rec.Key, Label: label, At: t, Latency: d.Latency,
		Votes: votes, Truth: rec.Truth, AttackType: rec.AttackType,
	})
	if cb != nil {
		cb(d)
	}
}
