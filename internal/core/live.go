package core

import (
	"errors"
	"sync"
	"sync/atomic"
	"time"

	"github.com/amlight/intddos/internal/flow"
	"github.com/amlight/intddos/internal/ml"
	"github.com/amlight/intddos/internal/netsim"
	"github.com/amlight/intddos/internal/obs"
	"github.com/amlight/intddos/internal/store"
	"github.com/amlight/intddos/internal/telemetry"
)

// LiveConfig parameterizes the wall-clock runtime of the mechanism.
type LiveConfig struct {
	// Features selects the model input vector (default: the paper's
	// 15 INT features).
	Features flow.FeatureSet
	// Models is the pre-trained ensemble.
	Models []ml.Classifier
	// Scaler standardizes snapshots; required.
	Scaler *ml.StandardScaler

	// PollInterval is the CentralServer polling period (default 5 ms
	// wall time).
	PollInterval time.Duration
	// PollBatch bounds records fetched per poll (default 256).
	PollBatch int
	// QueueCap bounds the prediction input channel (default 4096);
	// beyond it updates are shed and counted.
	QueueCap int
	// Workers is the number of prediction goroutines (default 1,
	// like the paper's single Python predictor).
	Workers int

	// ModelQuorum and VoteWindow mirror the simulated mechanism
	// (defaults 2-of-ensemble and 3).
	ModelQuorum int
	VoteWindow  int
	// SkipNewRecords restricts prediction to record updates (§III-3
	// strict reading).
	SkipNewRecords bool

	// FlowIdleTimeout evicts flows idle past this TTL — their vote
	// windows, flow-table state, and database records — so long runs
	// don't accumulate per-flow memory without bound. Zero disables
	// eviction. Evictions are counted in intddos_evictions_total.
	FlowIdleTimeout time.Duration
	// SweepInterval is how often the eviction pass runs (default:
	// FlowIdleTimeout).
	SweepInterval time.Duration

	// Registry receives the runtime's metrics, stage histograms, and
	// decision tracer; nil builds a private registry, readable via
	// Obs(). A registry should be scoped to one pipeline instance.
	Registry *obs.Registry
	// TraceSampleEvery routes 1-in-N flow records through the
	// per-stage span tracer (default 64; negative disables tracing).
	TraceSampleEvery int
}

// liveMetrics bundles the runtime's obs instruments. All fields are
// nil-safe, so a zero value disables instrumentation.
type liveMetrics struct {
	reports     *obs.Counter
	snapshots   *obs.Counter
	predictions *obs.Counter
	shed        *obs.Counter
	polls       *obs.Counter
	evictions   *obs.Counter

	decisions *obs.CounterVec // by attack_type
	misclass  *obs.CounterVec // by attack_type

	predictLatency *obs.Histogram // end-to-end §III-2 prediction latency

	// Per-stage latency histograms (children of intddos_stage_seconds
	// cached so the hot path skips the vec lookup).
	stageIngest  *obs.Histogram
	stageJournal *obs.Histogram
	stageQueue   *obs.Histogram
	stagePredict *obs.Histogram
	stageVote    *obs.Histogram
}

// newLiveMetrics registers the runtime's instruments on reg.
func newLiveMetrics(reg *obs.Registry) liveMetrics {
	stages := reg.HistogramVec("intddos_stage_seconds", "stage", nil)
	return liveMetrics{
		reports:        reg.Counter("intddos_reports_total"),
		snapshots:      reg.Counter("intddos_snapshots_total"),
		predictions:    reg.Counter("intddos_predictions_total"),
		shed:           reg.Counter("intddos_shed_total"),
		polls:          reg.Counter("intddos_polls_total"),
		evictions:      reg.Counter("intddos_evictions_total"),
		decisions:      reg.CounterVec("intddos_decisions_total", "attack_type"),
		misclass:       reg.CounterVec("intddos_misclassified_total", "attack_type"),
		predictLatency: reg.Histogram("intddos_predict_latency_seconds", nil),
		stageIngest:    stages.With("ingest"),
		stageJournal:   stages.With("journal_wait"),
		stageQueue:     stages.With("queue_wait"),
		stagePredict:   stages.With("scale_predict"),
		stageVote:      stages.With("vote"),
	}
}

// queued is one flow record in flight to the prediction workers,
// carrying the timestamps and (for sampled records) the span trace
// that make per-stage latencies observable.
type queued struct {
	rec        store.FlowRecord
	enqueuedAt time.Time
	tr         *obs.Trace
}

// Live runs the four Figure 2 modules as concurrent goroutines over
// the wall clock — the deployment mode of the paper's production
// implementation — sharing the same flow table, database, and voting
// logic as the simulated Mechanism. Timestamps are wall-clock
// nanoseconds widened into the same Time domain the rest of the
// repository uses.
type Live struct {
	cfg LiveConfig

	mu      sync.Mutex // guards table, windows, decisions
	table   *flow.Table
	windows map[flow.Key][]int

	DB     *store.DB
	cursor uint64

	reqCh chan queued
	quit  chan struct{}
	wg    sync.WaitGroup
	stop  sync.Once

	reg    *obs.Registry
	met    liveMetrics
	tracer *obs.Tracer

	decisions []Decision
	// OnDecision observes every final decision (called off the
	// prediction goroutine; keep it fast).
	OnDecision func(Decision)

	// Stats (atomics: read while running). Mirrored into the obs
	// registry; kept for compatibility with existing callers.
	Reports     atomic.Int64
	Snapshots   atomic.Int64
	Predictions atomic.Int64
	Shed        atomic.Int64
	Evictions   atomic.Int64
}

// NewLive validates cfg and builds the runtime.
func NewLive(cfg LiveConfig) (*Live, error) {
	if len(cfg.Models) == 0 {
		return nil, errors.New("core: no models configured")
	}
	if cfg.Scaler == nil {
		return nil, errors.New("core: scaler required")
	}
	if cfg.Features == nil {
		cfg.Features = flow.INTFeatures()
	}
	if cfg.PollInterval <= 0 {
		cfg.PollInterval = 5 * time.Millisecond
	}
	if cfg.PollBatch <= 0 {
		cfg.PollBatch = 256
	}
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 4096
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.ModelQuorum <= 0 {
		cfg.ModelQuorum = (len(cfg.Models) + 2) / 2
	}
	if cfg.ModelQuorum > len(cfg.Models) {
		cfg.ModelQuorum = (len(cfg.Models) + 1) / 2
	}
	if cfg.VoteWindow <= 0 {
		cfg.VoteWindow = 3
	}
	if cfg.SweepInterval <= 0 {
		cfg.SweepInterval = cfg.FlowIdleTimeout
	}
	if cfg.Registry == nil {
		cfg.Registry = obs.NewRegistry()
	}
	l := &Live{
		cfg:     cfg,
		table:   flow.NewTable(),
		windows: make(map[flow.Key][]int),
		DB:      store.New(),
		reqCh:   make(chan queued, cfg.QueueCap),
		quit:    make(chan struct{}),
		reg:     cfg.Registry,
	}
	l.table.IdleTimeout = netsim.Time(cfg.FlowIdleTimeout)
	l.DB.JournalNew = !cfg.SkipNewRecords
	l.met = newLiveMetrics(l.reg)
	if cfg.TraceSampleEvery >= 0 {
		l.tracer = l.reg.Tracer("intddos_pipeline", cfg.TraceSampleEvery, 64)
	}
	l.reg.GaugeFunc("intddos_queue_depth", func() float64 { return float64(len(l.reqCh)) })
	l.reg.GaugeFunc("intddos_queue_capacity", func() float64 { return float64(cap(l.reqCh)) })
	l.reg.GaugeFunc("intddos_vote_windows", func() float64 {
		l.mu.Lock()
		defer l.mu.Unlock()
		return float64(len(l.windows))
	})
	l.DB.Instrument(l.reg)
	return l, nil
}

// Obs returns the runtime's metrics registry (the one passed in
// LiveConfig.Registry, or the private default). Mount Obs().Handler()
// to serve /metrics, /healthz, /traces, and pprof.
func (l *Live) Obs() *obs.Registry { return l.reg }

// MetricsSnapshot captures every runtime metric — counters, queue
// gauges, and the per-stage latency histograms — for end-of-run
// summaries.
func (l *Live) MetricsSnapshot() obs.Snapshot { return l.reg.Snapshot() }

// now returns the wall clock in the repository's Time domain.
func now() netsim.Time { return netsim.Time(time.Now().UnixNano()) }

// Start launches the CentralServer and Prediction goroutines.
func (l *Live) Start() {
	l.wg.Add(1)
	go l.centralServer()
	for w := 0; w < l.cfg.Workers; w++ {
		l.wg.Add(1)
		go l.predictionWorker()
	}
}

// Stop terminates the pipeline and waits for the goroutines. Pending
// queue items are abandoned, not drained: records already handed to a
// prediction worker finish and are logged, records still queued are
// dropped silently (they were never acknowledged anywhere). Stop is
// idempotent — extra calls wait for the same shutdown and return.
func (l *Live) Stop() {
	l.stop.Do(func() { close(l.quit) })
	l.wg.Wait()
}

// HandleReport ingests one decoded INT report (INT Data Collection →
// Data Processor). Safe for concurrent use.
func (l *Live) HandleReport(r *telemetry.Report) {
	l.Reports.Add(1)
	l.met.reports.Inc()
	l.Ingest(flow.FromINT(r, now()))
}

// Ingest folds a normalized observation into the flow table and
// writes its snapshot to the database. Safe for concurrent use.
func (l *Live) Ingest(pi flow.PacketInfo) {
	start := time.Now()
	if pi.At == 0 {
		pi.At = now()
	}
	l.mu.Lock()
	st, _ := l.table.Observe(pi)
	feats := st.Features(nil, l.cfg.Features)
	key, reg, last, updates := st.Key, st.RegisteredAt, st.LastAt, st.Updates
	l.mu.Unlock()
	l.DB.UpsertFlow(key, feats, reg, last, updates, pi.Label, pi.AttackType)
	l.Snapshots.Add(1)
	l.met.snapshots.Inc()
	l.met.stageIngest.Since(start)
}

// Decisions returns a copy of the decision log.
func (l *Live) Decisions() []Decision {
	l.mu.Lock()
	defer l.mu.Unlock()
	out := make([]Decision, len(l.decisions))
	copy(out, l.decisions)
	return out
}

// centralServer polls the database journal and feeds the prediction
// queue, shedding when it is full. It also runs the idle-flow
// eviction sweeps when a TTL is configured.
func (l *Live) centralServer() {
	defer l.wg.Done()
	ticker := time.NewTicker(l.cfg.PollInterval)
	defer ticker.Stop()
	var sweepC <-chan time.Time
	if l.cfg.FlowIdleTimeout > 0 {
		sweeper := time.NewTicker(l.cfg.SweepInterval)
		defer sweeper.Stop()
		sweepC = sweeper.C
	}
	for {
		select {
		case <-l.quit:
			return
		case <-sweepC:
			l.sweep()
		case <-ticker.C:
			recs, cur := l.DB.PollUpdates(l.cursor, l.cfg.PollBatch)
			l.cursor = cur
			l.DB.TrimJournal(cur)
			l.met.polls.Inc()
			polled := time.Now()
			for _, rec := range recs {
				// Journal wait: snapshot write → this poll.
				updated := time.Unix(0, int64(rec.UpdatedAt))
				l.met.stageJournal.ObserveDuration(polled.Sub(updated))
				tr := l.tracer.Sample(rec.Key.String())
				tr.StageAt("journal_wait", updated, polled)
				select {
				case l.reqCh <- queued{rec: rec, enqueuedAt: polled, tr: tr}:
				default:
					l.Shed.Add(1)
					l.met.shed.Inc()
				}
			}
		}
	}
}

// sweep evicts flows idle past FlowIdleTimeout: their vote windows,
// flow-table state, and database records.
func (l *Live) sweep() {
	cutoff := now()
	timeout := netsim.Time(l.cfg.FlowIdleTimeout)
	var stale []flow.Key
	l.mu.Lock()
	for key := range l.windows {
		st := l.table.Get(key)
		if st == nil || cutoff-st.LastAt > timeout {
			delete(l.windows, key)
		}
	}
	l.table.Range(func(st *flow.State) bool {
		if cutoff-st.LastAt > timeout {
			stale = append(stale, st.Key)
		}
		return true
	})
	evicted := l.table.Sweep(cutoff)
	l.mu.Unlock()
	for _, key := range stale {
		l.DB.DeleteFlow(key)
	}
	l.Evictions.Add(int64(evicted))
	l.met.evictions.Add(int64(evicted))
}

// predictionWorker standardizes snapshots, runs the ensemble, and
// aggregates decisions.
func (l *Live) predictionWorker() {
	defer l.wg.Done()
	scaled := make([]float64, len(l.cfg.Features))
	for {
		select {
		case <-l.quit:
			return
		case q := <-l.reqCh:
			dequeued := time.Now()
			l.met.stageQueue.ObserveDuration(dequeued.Sub(q.enqueuedAt))
			q.tr.StageAt("queue_wait", q.enqueuedAt, dequeued)

			l.cfg.Scaler.TransformRow(scaled, q.rec.Features)
			votes := make([]int, len(l.cfg.Models))
			ones := 0
			for i, m := range l.cfg.Models {
				votes[i] = m.Predict(scaled)
				ones += votes[i]
			}
			l.Predictions.Add(1)
			l.met.predictions.Inc()
			predicted := time.Now()
			l.met.stagePredict.ObserveDuration(predicted.Sub(dequeued))
			q.tr.StageAt("scale_predict", dequeued, predicted)

			raw := 0
			if ones >= l.cfg.ModelQuorum {
				raw = 1
			}
			l.finish(q, raw, votes, predicted)
		}
	}
}

// finish applies window voting and logs the decision.
func (l *Live) finish(q queued, raw int, votes []int, predicted time.Time) {
	rec := q.rec
	t := now()
	l.mu.Lock()
	w := append(l.windows[rec.Key], raw)
	if len(w) > l.cfg.VoteWindow {
		w = w[len(w)-l.cfg.VoteWindow:]
	}
	l.windows[rec.Key] = w
	sum := 0
	for _, v := range w {
		sum += v
	}
	label := 0
	if 2*sum > len(w) {
		label = 1
	}
	d := Decision{
		Key:        rec.Key,
		Label:      label,
		Seq:        rec.Updates - 1,
		At:         t,
		Latency:    t - rec.UpdatedAt,
		Votes:      votes,
		Truth:      rec.Truth,
		AttackType: rec.AttackType,
	}
	l.decisions = append(l.decisions, d)
	cb := l.OnDecision
	l.mu.Unlock()

	typ := rec.AttackType
	if typ == "" {
		typ = "unknown"
	}
	l.met.decisions.With(typ).Inc()
	if !d.Correct() {
		l.met.misclass.With(typ).Inc()
	}
	l.met.predictLatency.Observe(d.Latency.Seconds())
	voted := time.Now()
	l.met.stageVote.ObserveDuration(voted.Sub(predicted))
	q.tr.StageAt("vote", predicted, voted)
	l.tracer.Finish(q.tr)

	l.DB.AppendPrediction(store.PredictionRecord{
		Key: rec.Key, Label: label, At: t, Latency: d.Latency,
		Votes: votes, Truth: rec.Truth, AttackType: rec.AttackType,
	})
	if cb != nil {
		cb(d)
	}
}
